// FaultInjector: turns a declarative FaultPlan into scheduled sim-time
// inject/recover actions against a single IndexNodeRig or a whole Cluster.
//
// Ownership & determinism: the injector owns every EventHandle it arms (all
// are cancelled on destruction, so tearing a rig down mid-plan leaves no
// dangling callbacks in the simulator queue), and holds its own Rng stream
// seeded from the plan — it never draws from the workload's or any machine's
// stream, so enabling faults perturbs only what the faults themselves touch.
// A disabled plan arms nothing: Arm() is a no-op and the run is bit-identical
// to one without an injector.
#ifndef PERFISO_SRC_FAULT_FAULT_INJECTOR_H_
#define PERFISO_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/index_node.h"
#include "src/fault/fault_plan.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {

class FaultInjector {
 public:
  // Single-box target: every event's `node` must be 0; link faults have no
  // fabric to act on and are skipped (counted in stats().skipped).
  FaultInjector(Simulator* sim, const FaultPlan& plan, IndexNodeRig* rig);
  // Cluster target: events address index nodes [0, NumIndexNodes()).
  FaultInjector(Simulator* sim, const FaultPlan& plan, Cluster* cluster);

  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules one inject and one recover event per plan entry (absolute sim
  // times; events already in the past fire immediately on the next step).
  // No-op when the plan is disabled.
  void Arm();

  // Registers a "faults" process with one track; every inject/recover then
  // emits an instant there ("fault.crash", "fault.disk", "fault.link",
  // "fault.straggler", "fault.recover").
  void EnableTracing(Tracer* tracer);

  struct Stats {
    int64_t injected = 0;
    int64_t recovered = 0;
    int64_t skipped = 0;  // e.g. link faults on a single-box rig
  };
  const Stats& stats() const { return stats_; }

  // True while `node` sits inside an armed crash window (the serving process
  // is down). Forwards to the rig's own view so the InvariantChecker can
  // cross-check it against the cluster's routing view.
  bool NodeCrashed(int node) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  int NumNodes() const;
  IndexNodeRig& Node(int index) const;
  void Inject(size_t event_index);
  void Recover(size_t event_index);

  Simulator* sim_;
  FaultPlan plan_;
  IndexNodeRig* rig_ = nullptr;   // single-box target (exclusive with cluster_)
  Cluster* cluster_ = nullptr;
  // The injector's private stream (forked from the plan seed); kept separate
  // from every workload/machine stream by contract.
  Rng rng_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  std::vector<EventHandle> handles_;  // 2 per event: [2i]=inject, [2i+1]=recover
  // Straggler threads spawned per event, killed at its recovery.
  std::vector<std::vector<ThreadId>> straggler_threads_;
  Stats stats_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_FAULT_FAULT_INJECTOR_H_
