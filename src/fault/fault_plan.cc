#include "src/fault/fault_plan.h"

#include <cstdlib>
#include <sstream>

#include "src/util/rng.h"

namespace perfiso {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kDiskDegrade:
      return "disk";
    case FaultKind::kLinkDegrade:
      return "link";
    case FaultKind::kCpuStraggler:
      return "straggler";
  }
  return "?";
}

StatusOr<FaultKind> ParseFaultKind(const std::string& name) {
  if (name == "crash") {
    return FaultKind::kNodeCrash;
  }
  if (name == "disk") {
    return FaultKind::kDiskDegrade;
  }
  if (name == "link") {
    return FaultKind::kLinkDegrade;
  }
  if (name == "straggler") {
    return FaultKind::kCpuStraggler;
  }
  return InvalidArgumentError("unknown fault kind: " + name);
}

namespace {

// One event per list entry: kind:node:at_sec:duration_sec:severity.
std::string EncodeEvents(const std::vector<FaultEvent>& events) {
  std::string out;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += FaultKindName(events[i].kind);
    out += ':';
    out += std::to_string(events[i].node);
    out += ':';
    out += FormatDouble(events[i].at_sec);
    out += ':';
    out += FormatDouble(events[i].duration_sec);
    out += ':';
    out += FormatDouble(events[i].severity);
  }
  return out;
}

StatusOr<double> ParseDoubleField(const std::string& field, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (field.empty() || end != field.c_str() + field.size()) {
    return InvalidArgumentError(std::string("malformed fault event ") + what + ": " + field);
  }
  return value;
}

StatusOr<std::vector<FaultEvent>> DecodeEvents(const std::string& text) {
  if (!text.empty() && text.back() == ',') {
    return InvalidArgumentError("fault.events has a trailing comma");
  }
  std::vector<FaultEvent> events;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::istringstream fields_in(item);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(fields_in, field, ':')) {
      fields.push_back(field);
    }
    if (fields.size() != 5) {
      return InvalidArgumentError("fault event needs kind:node:at:duration:severity, got: " +
                                  item);
    }
    FaultEvent event;
    auto kind = ParseFaultKind(fields[0]);
    PERFISO_RETURN_IF_ERROR(kind.status());
    event.kind = *kind;
    auto node = ParseDoubleField(fields[1], "node");
    PERFISO_RETURN_IF_ERROR(node.status());
    event.node = static_cast<int>(*node);
    auto at = ParseDoubleField(fields[2], "time");
    PERFISO_RETURN_IF_ERROR(at.status());
    event.at_sec = *at;
    auto duration = ParseDoubleField(fields[3], "duration");
    PERFISO_RETURN_IF_ERROR(duration.status());
    event.duration_sec = *duration;
    auto severity = ParseDoubleField(fields[4], "severity");
    PERFISO_RETURN_IF_ERROR(severity.status());
    event.severity = *severity;
    events.push_back(event);
  }
  return events;
}

}  // namespace

Status FaultPlan::Validate() const { return Validate(/*num_nodes=*/0); }

Status FaultPlan::Validate(int num_nodes) const {
  if (!enabled) {
    return OkStatus();
  }
  for (const FaultEvent& event : events) {
    if (event.node < 0) {
      return InvalidArgumentError("fault event node must be >= 0");
    }
    if (num_nodes > 0 && event.node >= num_nodes) {
      return InvalidArgumentError("fault event node " + std::to_string(event.node) +
                                  " outside topology of " + std::to_string(num_nodes) +
                                  " index nodes");
    }
    if (event.at_sec < 0) {
      return InvalidArgumentError("fault event time must be >= 0");
    }
    if (event.duration_sec <= 0) {
      return InvalidArgumentError("fault event duration must be positive");
    }
    switch (event.kind) {
      case FaultKind::kNodeCrash:
        break;
      case FaultKind::kDiskDegrade:
        if (event.severity < 1) {
          return InvalidArgumentError("disk-degrade severity is a latency multiplier >= 1");
        }
        break;
      case FaultKind::kLinkDegrade:
        if (event.severity <= 0 || event.severity > 1) {
          return InvalidArgumentError("link-degrade severity is a rate fraction in (0, 1]");
        }
        break;
      case FaultKind::kCpuStraggler:
        if (event.severity < 1) {
          return InvalidArgumentError("straggler severity is a thread count >= 1");
        }
        break;
    }
  }
  return OkStatus();
}

void FaultPlan::AppendToConfigMap(ConfigMap* map) const {
  if (!enabled) {
    return;  // contractual inertness: a disabled plan leaves no trace
  }
  map->SetBool("fault.enabled", true);
  map->SetInt("fault.seed", static_cast<int64_t>(seed));
  if (!events.empty()) {
    map->SetString("fault.events", EncodeEvents(events));
  }
}

StatusOr<FaultPlan> FaultPlan::FromConfigMap(const ConfigMap& map) {
  FaultPlan plan;
  auto enabled = map.GetBool("fault.enabled", plan.enabled);
  PERFISO_RETURN_IF_ERROR(enabled.status());
  plan.enabled = *enabled;

  auto seed = map.GetInt("fault.seed", static_cast<int64_t>(plan.seed));
  PERFISO_RETURN_IF_ERROR(seed.status());
  plan.seed = static_cast<uint64_t>(*seed);

  auto events = map.GetString("fault.events", "");
  PERFISO_RETURN_IF_ERROR(events.status());
  if (!events->empty()) {
    auto decoded = DecodeEvents(*events);
    PERFISO_RETURN_IF_ERROR(decoded.status());
    plan.events = *decoded;
  } else if (map.Has("fault.events")) {
    return InvalidArgumentError("fault.events must not be empty");
  }

  PERFISO_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

FaultPlan FaultPlan::Sample(uint64_t seed, int num_nodes, double horizon_sec) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  Rng rng(seed ^ 0xfa017ec7ed5eedULL);
  const int count = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < count; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(rng.UniformInt(0, 3));
    event.node = num_nodes > 1 ? static_cast<int>(rng.UniformInt(0, num_nodes - 1)) : 0;
    // Leave room for a recovery inside the horizon so restarts get exercised.
    event.at_sec = rng.Uniform(0, horizon_sec * 0.7);
    event.duration_sec = rng.Uniform(horizon_sec * 0.05, horizon_sec * 0.3);
    switch (event.kind) {
      case FaultKind::kNodeCrash:
        event.severity = 1;
        break;
      case FaultKind::kDiskDegrade:
        event.severity = rng.Uniform(2, 20);
        break;
      case FaultKind::kLinkDegrade:
        event.severity = rng.Uniform(0.05, 0.5);
        break;
      case FaultKind::kCpuStraggler:
        event.severity = static_cast<double>(rng.UniformInt(4, 32));
        break;
    }
    plan.events.push_back(event);
  }
  return plan;
}

}  // namespace perfiso
