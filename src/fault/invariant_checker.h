// InvariantChecker: SLO / conservation assertions that must hold at any
// observation point, faults or not.
//
// Checked invariants:
//   * Query conservation — every submitted query reaches exactly one terminal
//     state: submitted + inflight_at_reset ==
//     completed + dropped_timeout + dropped_admission + dropped_crash +
//     inflight (and inflight == 0 once the simulation drains).
//   * No completions while crashed — a dead machine delivers nothing
//     (IndexServer::Stats::completions_while_crashed stays 0).
//   * Budget caps — hedges never exceed the hedge budget; retries only happen
//     when the retry policy is enabled.
//   * Coverage sanity — recorded per-query coverage fractions stay in [0, 1],
//     and degraded completions never dip below the configured floor.
//   * Machine engine state — SimMachine::CheckInvariants (run-queue/core
//     bookkeeping) holds on every checked machine.
//   * Routing consistency (cluster) — the cluster's health-check view of a
//     node agrees with the node's own crashed flag.
//
// The checker only reads; it never mutates the simulation, so checking is
// digest-neutral and can run every bench iteration.
#ifndef PERFISO_SRC_FAULT_INVARIANT_CHECKER_H_
#define PERFISO_SRC_FAULT_INVARIANT_CHECKER_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/index_node.h"
#include "src/indexserve/index_server.h"

namespace perfiso {

struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void Violation(std::string what) { violations.push_back(std::move(what)); }
  // One violation per line; "invariants ok" when clean.
  std::string ToString() const;
};

class InvariantChecker {
 public:
  // `expect_drained` adds the end-state requirement that nothing is in
  // flight (use after the simulator runs dry; bench mid-run checks pass
  // false).
  static void CheckServer(const IndexServer& server, bool expect_drained,
                          InvariantReport* report);
  // Server checks plus the machine's own engine invariants.
  static void CheckRig(IndexNodeRig& rig, bool expect_drained, InvariantReport* report);
  // Every rig, cluster-level conservation, and routing-view consistency.
  static void CheckCluster(Cluster& cluster, bool expect_drained, InvariantReport* report);
};

}  // namespace perfiso

#endif  // PERFISO_SRC_FAULT_INVARIANT_CHECKER_H_
