#include "src/fault/fault_injector.h"

#include <algorithm>
#include <cassert>

namespace perfiso {

FaultInjector::FaultInjector(Simulator* sim, const FaultPlan& plan, IndexNodeRig* rig)
    : sim_(sim), plan_(plan), rig_(rig), rng_(plan.seed) {
  assert(rig_ != nullptr);
}

FaultInjector::FaultInjector(Simulator* sim, const FaultPlan& plan, Cluster* cluster)
    : sim_(sim), plan_(plan), cluster_(cluster), rng_(plan.seed) {
  assert(cluster_ != nullptr);
}

FaultInjector::~FaultInjector() {
  // Owned-handle contract: an injector torn down mid-plan takes every armed
  // event with it — no callback capturing `this` may outlive us.
  for (EventHandle& handle : handles_) {
    sim_->CancelOwned(handle);
  }
}

int FaultInjector::NumNodes() const { return cluster_ != nullptr ? cluster_->NumIndexNodes() : 1; }

IndexNodeRig& FaultInjector::Node(int index) const {
  return cluster_ != nullptr ? cluster_->index_node(index) : *rig_;
}

bool FaultInjector::NodeCrashed(int node) const { return Node(node).crashed(); }

void FaultInjector::EnableTracing(Tracer* tracer) {
  tracer_ = tracer;
  track_ = tracer->RegisterTrack(tracer->RegisterProcess("faults"), "events");
}

void FaultInjector::Arm() {
  if (!plan_.enabled) {
    return;  // contractual inertness: nothing scheduled, nothing drawn
  }
  assert(plan_.Validate(NumNodes()).ok());
  handles_.assign(plan_.events.size() * 2, EventHandle{});
  straggler_threads_.assign(plan_.events.size(), {});
  const SimTime now = sim_->Now();
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    const SimTime inject_at =
        std::max(now, static_cast<SimTime>(event.at_sec * static_cast<double>(kSecond)));
    const SimTime recover_at =
        inject_at + static_cast<SimDuration>(event.duration_sec * static_cast<double>(kSecond));
    handles_[2 * i] = sim_->Schedule(inject_at, [this, i] {
      handles_[2 * i] = EventHandle();
      Inject(i);
    });
    handles_[2 * i + 1] = sim_->Schedule(recover_at, [this, i] {
      handles_[2 * i + 1] = EventHandle();
      Recover(i);
    });
  }
}

void FaultInjector::Inject(size_t event_index) {
  const FaultEvent& event = plan_.events[event_index];
  const SimTime now = sim_->Now();
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      Node(event.node).Crash();
      if (cluster_ != nullptr) {
        cluster_->SetNodeCrashed(event.node, true);
      }
      if (tracer_ != nullptr) {
        tracer_->Instant("fault.crash", track_, now);
      }
      break;
    case FaultKind::kDiskDegrade: {
      IndexNodeRig& node = Node(event.node);
      node.ssd_volume().SetLatencyMultiplier(event.severity);
      node.hdd_volume().SetLatencyMultiplier(event.severity);
      if (tracer_ != nullptr) {
        tracer_->Instant("fault.disk", track_, now);
      }
      break;
    }
    case FaultKind::kLinkDegrade: {
      if (cluster_ == nullptr) {
        // Single-box rigs have no fabric; the fault has nothing to act on.
        ++stats_.skipped;
        return;
      }
      NetDev& netdev = cluster_->fabric().netdev(event.node);
      netdev.tx().SetRateMultiplier(event.severity);
      netdev.rx().SetRateMultiplier(event.severity);
      if (tracer_ != nullptr) {
        tracer_->Instant("fault.link", track_, now);
      }
      break;
    }
    case FaultKind::kCpuStraggler: {
      // Runaway OS-class threads: unmanaged by PerfIso (like kernel work), so
      // they steal cores even under blind isolation — a realistic straggler.
      IndexNodeRig& node = Node(event.node);
      const int threads = static_cast<int>(event.severity);
      auto& spawned = straggler_threads_[event_index];
      spawned.reserve(static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        spawned.push_back(
            node.machine().SpawnLoopThread("fault-straggler", TenantClass::kOs, JobId{}));
      }
      if (tracer_ != nullptr) {
        tracer_->Instant("fault.straggler", track_, now);
      }
      break;
    }
  }
  ++stats_.injected;
}

void FaultInjector::Recover(size_t event_index) {
  const FaultEvent& event = plan_.events[event_index];
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      Node(event.node).Restart();
      if (cluster_ != nullptr) {
        cluster_->SetNodeCrashed(event.node, false);
      }
      break;
    case FaultKind::kDiskDegrade: {
      // Overlapping windows on one node are allowed; the last recovery wins
      // (multipliers are absolute, not stacked).
      IndexNodeRig& node = Node(event.node);
      node.ssd_volume().SetLatencyMultiplier(1.0);
      node.hdd_volume().SetLatencyMultiplier(1.0);
      break;
    }
    case FaultKind::kLinkDegrade: {
      if (cluster_ == nullptr) {
        return;  // the matching Inject was skipped
      }
      NetDev& netdev = cluster_->fabric().netdev(event.node);
      netdev.tx().SetRateMultiplier(1.0);
      netdev.rx().SetRateMultiplier(1.0);
      break;
    }
    case FaultKind::kCpuStraggler: {
      IndexNodeRig& node = Node(event.node);
      for (ThreadId tid : straggler_threads_[event_index]) {
        if (node.machine().ThreadLive(tid)) {
          node.machine().KillThread(tid);
        }
      }
      straggler_threads_[event_index].clear();
      break;
    }
  }
  ++stats_.recovered;
  if (tracer_ != nullptr) {
    tracer_->Instant("fault.recover", track_, sim_->Now());
  }
}

}  // namespace perfiso
