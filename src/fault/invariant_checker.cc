#include "src/fault/invariant_checker.h"

namespace perfiso {

std::string InvariantReport::ToString() const {
  if (violations.empty()) {
    return "invariants ok";
  }
  std::string out;
  for (const std::string& violation : violations) {
    out += violation;
    out += '\n';
  }
  return out;
}

void InvariantChecker::CheckServer(const IndexServer& server, bool expect_drained,
                                   InvariantReport* report) {
  const IndexServer::Stats& stats = server.stats();

  // Conservation: every query reaches exactly one terminal state.
  const int64_t terminal = stats.completed + stats.dropped_timeout + stats.dropped_admission +
                           stats.dropped_crash;
  const int64_t expected_inflight = stats.submitted + server.inflight_at_reset() - terminal;
  if (server.inflight() != expected_inflight) {
    report->Violation("conservation: submitted=" + std::to_string(stats.submitted) +
                      " +carry=" + std::to_string(server.inflight_at_reset()) +
                      " terminal=" + std::to_string(terminal) +
                      " but inflight=" + std::to_string(server.inflight()));
  }
  if (server.inflight() < 0) {
    report->Violation("inflight negative: " + std::to_string(server.inflight()));
  }
  if (expect_drained && server.inflight() != 0) {
    report->Violation("drained run still has inflight=" + std::to_string(server.inflight()));
  }

  // A crashed machine delivers nothing.
  if (stats.completions_while_crashed != 0) {
    report->Violation("completions while crashed: " +
                      std::to_string(stats.completions_while_crashed));
  }

  // Budget caps. The +1 absorbs the boundary case where the budget check
  // passed just below the cap and the issue tipped it over; hedges_issued is
  // windowed by ResetStats while chunks_started is cumulative, so the bound
  // only ever loosens.
  const IndexServeConfig& config = server.config();
  if (config.hedging_enabled &&
      static_cast<double>(stats.hedges_issued) >
          config.hedge_budget_fraction * static_cast<double>(server.chunks_started()) + 1.0) {
    report->Violation("hedge budget exceeded: issued=" + std::to_string(stats.hedges_issued) +
                      " started=" + std::to_string(server.chunks_started()));
  }
  if (!config.chunk_retry.enabled &&
      (stats.retries_issued != 0 || stats.timeouts_detected != 0)) {
    report->Violation("retry activity with retry disabled: issued=" +
                      std::to_string(stats.retries_issued));
  }

  // Coverage fractions are per-query in [0, 1]; degraded completions never
  // close below the configured floor.
  if (stats.coverage.Count() > 0) {
    if (stats.coverage.Min() < 0.0 || stats.coverage.Max() > 1.0) {
      report->Violation("coverage outside [0,1]: min=" + std::to_string(stats.coverage.Min()) +
                        " max=" + std::to_string(stats.coverage.Max()));
    }
    if (stats.completed_degraded > 0 && config.degrade_deadline > 0 &&
        stats.coverage.Min() < config.min_chunk_coverage) {
      report->Violation("degraded completion below coverage floor: min=" +
                        std::to_string(stats.coverage.Min()));
    }
  }
  if (stats.completed_degraded > stats.completed) {
    report->Violation("degraded exceeds completed");
  }
}

void InvariantChecker::CheckRig(IndexNodeRig& rig, bool expect_drained,
                                InvariantReport* report) {
  CheckServer(rig.server(), expect_drained, report);
  const Status machine_ok = rig.machine().CheckInvariants();
  if (!machine_ok.ok()) {
    report->Violation(rig.machine().name() + ": " + machine_ok.ToString());
  }
}

void InvariantChecker::CheckCluster(Cluster& cluster, bool expect_drained,
                                    InvariantReport* report) {
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    IndexNodeRig& rig = cluster.index_node(i);
    CheckRig(rig, expect_drained, report);
    // The routing (health-check) view must agree with the node itself —
    // otherwise queries are sent to dead machines or steered off live ones.
    if (cluster.NodeCrashed(i) != rig.crashed()) {
      report->Violation("node " + std::to_string(i) + " routing view crashed=" +
                        std::to_string(cluster.NodeCrashed(i)) + " but server crashed=" +
                        std::to_string(rig.crashed()));
    }
  }
  if (cluster.queries_inflight() < 0) {
    report->Violation("cluster inflight negative: " +
                      std::to_string(cluster.queries_inflight()));
  }
  if (expect_drained && cluster.queries_inflight() != 0) {
    report->Violation("drained cluster still has inflight=" +
                      std::to_string(cluster.queries_inflight()));
  }
  const LatencyRecorder& coverage = cluster.LeafCoverage();
  if (coverage.Count() > 0 && (coverage.Min() < 0.0 || coverage.Max() > 1.0)) {
    report->Violation("cluster coverage outside [0,1]");
  }
  if (cluster.queries_degraded() > cluster.queries_completed()) {
    report->Violation("cluster degraded exceeds completed");
  }
}

}  // namespace perfiso
