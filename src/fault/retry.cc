#include "src/fault/retry.h"

#include <algorithm>

namespace perfiso {

SimDuration ComputeBackoff(const RetryPolicy& policy, int retry_index, Rng* rng) {
  const int shift = std::clamp(retry_index, 0, 62);
  // Saturating exponential: base << shift caps at backoff_cap well before the
  // shift can overflow for any sane policy, but clamp anyway.
  SimDuration delay = policy.backoff_base;
  for (int i = 0; i < shift && delay < policy.backoff_cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, policy.backoff_cap);
  if (policy.jitter_fraction > 0 && rng != nullptr) {
    delay += static_cast<SimDuration>(static_cast<double>(delay) * policy.jitter_fraction *
                                      rng->NextDouble());
  }
  return delay;
}

}  // namespace perfiso
