// Declarative fault plans: the fault.* configuration surface of a scenario.
//
// A FaultPlan is a seeded, replayable list of sim-time fault events — index
// node crash/restart windows, disk-degradation windows (latency multiplier),
// fabric link bandwidth degradation / flaps, and CPU stragglers — serialized
// alongside the workload./perfiso./obs. namespaces of a ScenarioSpec.
//
// Determinism contract (DESIGN.md §8): a disabled plan emits nothing when
// serialized, constructs no FaultInjector, schedules no events, and draws
// from no RNG stream, so every golden latency digest is bit-identical with
// the subsystem compiled in. An enabled plan injects through a FaultInjector
// that owns its EventHandles and forks its own Rng stream; a scenario's
// result remains a pure function of its spec.
#ifndef PERFISO_SRC_FAULT_FAULT_PLAN_H_
#define PERFISO_SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/config.h"
#include "src/util/status.h"

namespace perfiso {

enum class FaultKind {
  kNodeCrash,     // index node dies: in-flight work dropped, rejoins after `duration`
  kDiskDegrade,   // both volumes serve at `severity`x latency for `duration`
  kLinkDegrade,   // node's NIC runs at `severity` (fraction) of rate for `duration`
  kCpuStraggler,  // `severity` runaway OS-class threads occupy cores for `duration`
};

const char* FaultKindName(FaultKind kind);
StatusOr<FaultKind> ParseFaultKind(const std::string& name);

// One scheduled fault: injected at `at_sec` (absolute sim time, like the
// flash-crowd window), recovered at `at_sec + duration_sec`.
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  int node = 0;            // index-node id (single-box rigs are node 0)
  double at_sec = 0;
  double duration_sec = 1;
  // Kind-specific magnitude: latency multiplier (disk, >= 1), fraction of
  // nominal rate (link, in (0, 1]), straggler thread count (>= 1). Unused for
  // crashes.
  double severity = 1;
};

struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 13;  // the injector's private Rng stream
  std::vector<FaultEvent> events;

  // `num_nodes` bounds event.node (pass 1 for single-box rigs).
  Status Validate(int num_nodes) const;
  // Shape-only validation when the topology is not yet known.
  Status Validate() const;

  // Emits fault.* keys into `map`; nothing when disabled (strict parsers then
  // reject any stray fault.* key, mirroring obs.*).
  void AppendToConfigMap(ConfigMap* map) const;
  static StatusOr<FaultPlan> FromConfigMap(const ConfigMap& map);

  // Deterministically samples a valid random plan — the fuzz smoke's
  // generator. Draws only from a local Rng seeded with `seed`; events land in
  // [0, horizon_sec) on nodes [0, num_nodes).
  static FaultPlan Sample(uint64_t seed, int num_nodes, double horizon_sec);
};

}  // namespace perfiso

#endif  // PERFISO_SRC_FAULT_FAULT_PLAN_H_
