// Capped exponential backoff with deterministic jitter for chunk-RPC retries.
//
// Every retry arm in the tree must compute its delay through ComputeBackoff —
// perfiso_lint rule FLT-001 flags retry scheduling without a backoff call.
// The jitter draws from the caller's Rng (a query's own stream), so retry
// timing is a pure function of the scenario spec like everything else.
#ifndef PERFISO_SRC_FAULT_RETRY_H_
#define PERFISO_SRC_FAULT_RETRY_H_

#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace perfiso {

// Retry policy for one RPC class (the index server's chunk lookups). Disabled
// by default: no retry timers are armed, no RNG draws happen, and digests are
// bit-identical to the pre-retry behavior.
struct RetryPolicy {
  bool enabled = false;
  // Total attempts per chunk including the first; enabled => >= 2 makes sense
  // but 1 is legal (timeout detection without re-issue).
  int max_attempts = 3;
  // Per-attempt timeout: a chunk not completed this long after an attempt is
  // considered lost and the next attempt is scheduled.
  SimDuration timeout = FromMillis(40);
  SimDuration backoff_base = FromMillis(5);
  SimDuration backoff_cap = FromMillis(80);
  // Uniform jitter added on top: delay * jitter_fraction * U[0,1).
  double jitter_fraction = 0.2;
};

// Backoff delay before retry number `retry_index` (0 = first retry): the
// capped exponential min(cap, base * 2^retry_index) plus deterministic jitter
// drawn from `rng`. When jitter_fraction is 0, no RNG draw happens.
SimDuration ComputeBackoff(const RetryPolicy& policy, int retry_index, Rng* rng);

}  // namespace perfiso

#endif  // PERFISO_SRC_FAULT_RETRY_H_
