#include "src/obs/metrics.h"

#include <cassert>
#include <sstream>
#include <utility>

#include "src/util/config.h"

namespace perfiso {

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry->name == name) {
      return entry.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(const std::string& name) {
  if (Entry* existing = Find(name)) {
    assert(existing->kind == Kind::kCounter);
    return existing->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name) {
  if (Entry* existing = Find(name)) {
    assert(existing->kind == Kind::kGauge);
    return existing->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

HistogramMetric* MetricsRegistry::AddHistogram(const std::string& name, double lo,
                                               double hi, size_t buckets) {
  if (Entry* existing = Find(name)) {
    assert(existing->kind == Kind::kHistogram);
    return existing->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<HistogramMetric>(lo, hi, buckets);
  HistogramMetric* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::AddProbe(const std::string& name, std::function<double()> probe) {
  if (Find(name) != nullptr) {
    return;  // first registration wins
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kProbe;
  entry->probe = std::move(probe);
  entries_.push_back(std::move(entry));
}

std::vector<std::string> MetricsRegistry::ColumnNames() const {
  std::vector<std::string> names;
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
      case Kind::kGauge:
      case Kind::kProbe:
        names.push_back(entry->name);
        break;
      case Kind::kHistogram:
        names.push_back(entry->name + ".count");
        names.push_back(entry->name + ".mean");
        names.push_back(entry->name + ".p50");
        names.push_back(entry->name + ".p95");
        names.push_back(entry->name + ".p99");
        break;
    }
  }
  return names;
}

std::vector<double> MetricsRegistry::ColumnValues() const {
  std::vector<double> values;
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        values.push_back(static_cast<double>(entry->counter->value()));
        break;
      case Kind::kGauge:
        values.push_back(entry->gauge->value());
        break;
      case Kind::kProbe:
        values.push_back(entry->probe());
        break;
      case Kind::kHistogram: {
        const LatencyRecorder& r = entry->histogram->recorder();
        values.push_back(static_cast<double>(r.Count()));
        values.push_back(r.Mean());
        values.push_back(r.P50());
        values.push_back(r.P95());
        values.push_back(r.P99());
        break;
      }
    }
  }
  return values;
}

TimeseriesSampler::TimeseriesSampler(Simulator* sim, MetricsRegistry* registry,
                                     SimTime start, SimDuration period)
    : registry_(registry), period_(period) {
  assert(period > 0);
  task_ = std::make_unique<PeriodicTask>(sim, start, period,
                                         [this](SimTime now) { SampleNow(now); });
}

void TimeseriesSampler::SampleNow(SimTime now) {
  // Idempotent at one instant: the end-of-run flush would otherwise duplicate
  // the last periodic tick when the run ends exactly on the period boundary,
  // and exported times_ns must stay strictly increasing.
  if (!times_.empty() && times_.back() == now) {
    rows_.back() = registry_->ColumnValues();
    return;
  }
  times_.push_back(now);
  rows_.push_back(registry_->ColumnValues());
}

std::string TimeseriesSampler::ToJson() const {
  const std::vector<std::string> columns = registry_->ColumnNames();
  std::ostringstream out;
  out << "{\"period_ns\":" << period_ << ",\"times_ns\":[";
  for (size_t i = 0; i < times_.size(); ++i) {
    out << (i ? "," : "") << times_[i];
  }
  out << "],\"series\":{";
  for (size_t c = 0; c < columns.size(); ++c) {
    out << (c ? "," : "") << "\"" << columns[c] << "\":[";
    for (size_t r = 0; r < rows_.size(); ++r) {
      // Rows recorded before a metric was registered are short; export 0.
      const double v = c < rows_[r].size() ? rows_[r][c] : 0;
      out << (r ? "," : "") << FormatDouble(v);
    }
    out << "]";
  }
  out << "}}";
  return out.str();
}

std::string TimeseriesSampler::ToCsv() const {
  const std::vector<std::string> columns = registry_->ColumnNames();
  std::ostringstream out;
  out << "time_s";
  for (const std::string& column : columns) {
    out << "," << column;
  }
  out << "\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out << FormatDouble(ToSeconds(times_[r]));
    for (size_t c = 0; c < columns.size(); ++c) {
      out << "," << FormatDouble(c < rows_[r].size() ? rows_[r][c] : 0);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace perfiso
