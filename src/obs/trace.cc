#include "src/obs/trace.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace perfiso {

const char* SpanCategoryName(SpanCategory category) {
  switch (category) {
    case SpanCategory::kCpuWait:
      return "cpu_wait";
    case SpanCategory::kDiskQueue:
      return "disk_queue";
    case SpanCategory::kNetTransit:
      return "net_transit";
    case SpanCategory::kSerialization:
      return "serialization";
    case SpanCategory::kService:
      return "service";
  }
  return "?";
}

double& TailAttribution::ByCategory(SpanCategory category) {
  switch (category) {
    case SpanCategory::kCpuWait:
      return cpu_wait_ms;
    case SpanCategory::kDiskQueue:
      return disk_queue_ms;
    case SpanCategory::kNetTransit:
      return net_transit_ms;
    case SpanCategory::kSerialization:
      return serialization_ms;
    case SpanCategory::kService:
      return service_ms;
  }
  return other_ms;
}

void TailAttribution::Accumulate(const TailAttribution& other) {
  cpu_wait_ms += other.cpu_wait_ms;
  disk_queue_ms += other.disk_queue_ms;
  net_transit_ms += other.net_transit_ms;
  serialization_ms += other.serialization_ms;
  service_ms += other.service_ms;
  other_ms += other.other_ms;
}

Tracer::Tracer(const Options& options)
    : options_(options), sample_rng_(options.sample_seed) {}

int Tracer::RegisterProcess(const std::string& name) {
  process_names_.push_back(name);
  return static_cast<int>(process_names_.size());  // pids are 1-based
}

int Tracer::RegisterTrack(int process, const std::string& name) {
  assert(process >= 1 && process <= static_cast<int>(process_names_.size()));
  tracks_.push_back(TrackInfo{process, name});
  return static_cast<int>(tracks_.size());  // tids are 1-based
}

uint32_t Tracer::InternName(const char* name) {
  auto [it, inserted] = name_ids_.try_emplace(name, 0);
  if (inserted) {
    names_.emplace_back(name);
    it->second = static_cast<uint32_t>(names_.size() - 1);
  }
  return it->second;
}

uint64_t Tracer::BeginTrace(const char* scope, SimTime at) {
  const uint64_t ctx = next_ctx_++;
  ActiveTrace& trace = active_[ctx];
  trace.scope_id = InternName(scope);
  trace.begin = at;
  ++stats_.begun;
  return ctx;
}

void Tracer::Span(uint64_t ctx, const char* name, SpanCategory category,
                  int32_t track, SimTime start, SimTime end) {
  auto it = active_.find(ctx);
  if (ctx == 0 || it == active_.end()) {
    ++stats_.orphan_spans;
    return;
  }
  SpanRecord span;
  span.name_id = InternName(name);
  span.category = category;
  span.track = track;
  span.start = start;
  span.end = end;
  it->second.spans.push_back(span);
  ++stats_.spans;
}

void Tracer::Instant(const char* name, int32_t track, SimTime at) {
  if (static_cast<int64_t>(instants_.size()) >= options_.max_events) {
    ++stats_.dropped_instants;
    return;
  }
  InstantRecord instant;
  instant.name_id = InternName(name);
  instant.track = track;
  instant.at = at;
  instants_.push_back(instant);
}

void Tracer::EndTrace(uint64_t ctx, SimTime at, bool dropped) {
  auto it = active_.find(ctx);
  if (ctx == 0 || it == active_.end()) {
    ++stats_.orphan_spans;
    return;
  }
  ActiveTrace& active = it->second;
  ++stats_.ended;

  RetainedTrace trace;
  trace.ctx = ctx;
  trace.scope_id = active.scope_id;
  trace.begin = active.begin;
  trace.end = at;
  trace.latency_ms = ToMillis(at - active.begin);
  trace.dropped = dropped;
  trace.attribution = ComputeAttribution(active.begin, at, active.spans);
  trace.spans = std::move(active.spans);
  active_.erase(it);

  TraceSummary summary;
  summary.ctx = trace.ctx;
  summary.scope_id = trace.scope_id;
  summary.begin = trace.begin;
  summary.latency_ms = trace.latency_ms;
  summary.dropped = trace.dropped;
  summary.attribution = trace.attribution;
  summaries_.push_back(summary);

  // Sampling gates only span retention; the summary above is always kept.
  // The probabilistic draw comes from the tracer's own Rng, never from a
  // simulation stream, so enabling it cannot perturb the run.
  if (options_.sampling == TraceSampling::kProbabilistic &&
      sample_rng_.NextDouble() >= options_.sample_probability) {
    ++stats_.dropped_traces;
    return;
  }
  Retain(std::move(trace));
}

void Tracer::Retain(RetainedTrace trace) {
  const auto span_count = static_cast<int64_t>(trace.spans.size());
  if (options_.sampling == TraceSampling::kSlowestK) {
    if (retained_.size() >= static_cast<size_t>(std::max(options_.slowest_k, 0))) {
      auto slowest_min = retained_.begin();
      if (options_.slowest_k <= 0 || slowest_min->first >= trace.latency_ms) {
        ++stats_.dropped_traces;
        return;
      }
      retained_events_ -= static_cast<int64_t>(slowest_min->second.spans.size());
      --stats_.retained;
      ++stats_.dropped_traces;  // evicted: every ended trace is retained or dropped
      retained_.erase(slowest_min);
    }
  } else if (retained_events_ + span_count > options_.max_events) {
    ++stats_.dropped_traces;
    return;
  }
  retained_events_ += span_count;
  ++stats_.retained;
  const double key = trace.latency_ms;
  retained_.emplace(key, std::move(trace));
}

std::vector<const RetainedTrace*> Tracer::Retained() const {
  std::vector<const RetainedTrace*> out;
  out.reserve(retained_.size());
  for (const auto& [latency, trace] : retained_) {
    out.push_back(&trace);
  }
  return out;
}

TailAttribution Tracer::ComputeAttribution(SimTime begin, SimTime end,
                                           const std::vector<SpanRecord>& spans) {
  TailAttribution out;
  if (end <= begin) {
    return out;
  }
  // Priority interval sweep: +1/-1 edges per category, walk elementary
  // segments, attribute each to the highest-priority active category (the
  // enum is declared in ascending priority). All arithmetic is in integer
  // nanoseconds so the six buckets sum exactly to the latency.
  struct Edge {
    SimTime t;
    int category;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(spans.size() * 2);
  for (const SpanRecord& span : spans) {
    const SimTime lo = std::max(span.start, begin);
    const SimTime hi = std::min(span.end, end);
    if (hi <= lo) {
      continue;
    }
    edges.push_back(Edge{lo, static_cast<int>(span.category), +1});
    edges.push_back(Edge{hi, static_cast<int>(span.category), -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.t < b.t; });

  int64_t covered_ns[kNumSpanCategories] = {0};
  int active[kNumSpanCategories] = {0};
  SimTime prev = begin;
  size_t i = 0;
  while (i < edges.size()) {
    const SimTime t = edges[i].t;
    if (t > prev) {
      for (int category = kNumSpanCategories - 1; category >= 0; --category) {
        if (active[category] > 0) {
          covered_ns[category] += t - prev;
          break;
        }
      }
      prev = t;
    }
    while (i < edges.size() && edges[i].t == t) {
      active[edges[i].category] += edges[i].delta;
      ++i;
    }
  }
  // The trailing segment (and any span-free lifetime) is uncovered.
  int64_t covered_total = 0;
  for (int category = 0; category < kNumSpanCategories; ++category) {
    out.ByCategory(static_cast<SpanCategory>(category)) = ToMillis(covered_ns[category]);
    covered_total += covered_ns[category];
  }
  out.other_ms = ToMillis((end - begin) - covered_total);
  return out;
}

}  // namespace perfiso
