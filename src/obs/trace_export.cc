#include "src/obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/util/config.h"

namespace perfiso {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Sim nanoseconds -> trace microseconds, keeping nanosecond precision.
std::string FormatTs(SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03d", static_cast<long long>(ns / 1000),
                static_cast<int>(ns % 1000));
  return buf;
}

struct PendingEvent {
  SimTime ts = 0;
  std::string json;  // full event object
};

std::string AttributionArgs(const TailAttribution& a) {
  std::ostringstream out;
  out << "\"cpu_wait_ms\":" << FormatDouble(a.cpu_wait_ms)
      << ",\"disk_queue_ms\":" << FormatDouble(a.disk_queue_ms)
      << ",\"net_transit_ms\":" << FormatDouble(a.net_transit_ms)
      << ",\"serialization_ms\":" << FormatDouble(a.serialization_ms)
      << ",\"service_ms\":" << FormatDouble(a.service_ms)
      << ",\"other_ms\":" << FormatDouble(a.other_ms);
  return out.str();
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer) {
  std::vector<PendingEvent> events;
  std::ostringstream head;

  // The synthetic "queries" process hosts per-query lifetime slices and any
  // span recorded without a resource track.
  const int queries_pid = static_cast<int>(tracer.process_names().size()) + 1;

  // Metadata events lead the array unsorted (they carry no timeline position).
  for (size_t p = 0; p < tracer.process_names().size(); ++p) {
    head << ",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << (p + 1)
         << ",\"tid\":0,\"args\":{\"name\":\""
         << JsonEscape(tracer.process_names()[p]) << "\"}}";
  }
  head << ",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << queries_pid
       << ",\"tid\":0,\"args\":{\"name\":\"queries\"}}";
  for (size_t t = 0; t < tracer.tracks().size(); ++t) {
    const Tracer::TrackInfo& track = tracer.tracks()[t];
    head << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << track.process
         << ",\"tid\":" << (t + 1) << ",\"args\":{\"name\":\""
         << JsonEscape(track.name) << "\"}}";
  }

  const auto track_pid = [&](int32_t track) {
    if (track < 1 || track > static_cast<int32_t>(tracer.tracks().size())) {
      return queries_pid;
    }
    return tracer.tracks()[track - 1].process;
  };
  const auto track_tid = [&](int32_t track) {
    if (track < 1 || track > static_cast<int32_t>(tracer.tracks().size())) {
      return 0;
    }
    return static_cast<int>(track);
  };

  char idbuf[32];
  for (const RetainedTrace* trace : tracer.Retained()) {
    std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                  static_cast<unsigned long long>(trace->ctx));
    const std::string& scope = tracer.names()[trace->scope_id];
    {
      std::ostringstream e;
      e << "{\"cat\":\"query\",\"ph\":\"b\",\"name\":\"" << JsonEscape(scope)
        << "\",\"id\":\"" << idbuf << "\",\"pid\":" << queries_pid
        << ",\"tid\":0,\"ts\":" << FormatTs(trace->begin)
        << ",\"args\":{\"latency_ms\":" << FormatDouble(trace->latency_ms)
        << ",\"dropped\":" << (trace->dropped ? "true" : "false") << ","
        << AttributionArgs(trace->attribution) << "}}";
      events.push_back(PendingEvent{trace->begin, e.str()});
    }
    for (const SpanRecord& span : trace->spans) {
      const char* cat = SpanCategoryName(span.category);
      const std::string& name = tracer.names()[span.name_id];
      std::ostringstream b;
      b << "{\"cat\":\"" << cat << "\",\"ph\":\"b\",\"name\":\"" << JsonEscape(name)
        << "\",\"id\":\"" << idbuf << "\",\"pid\":" << track_pid(span.track)
        << ",\"tid\":" << track_tid(span.track)
        << ",\"ts\":" << FormatTs(span.start) << "}";
      events.push_back(PendingEvent{span.start, b.str()});
      std::ostringstream e;
      e << "{\"cat\":\"" << cat << "\",\"ph\":\"e\",\"name\":\"" << JsonEscape(name)
        << "\",\"id\":\"" << idbuf << "\",\"pid\":" << track_pid(span.track)
        << ",\"tid\":" << track_tid(span.track)
        << ",\"ts\":" << FormatTs(span.end) << "}";
      events.push_back(PendingEvent{span.end, e.str()});
    }
    {
      std::ostringstream e;
      e << "{\"cat\":\"query\",\"ph\":\"e\",\"name\":\"" << JsonEscape(scope)
        << "\",\"id\":\"" << idbuf << "\",\"pid\":" << queries_pid
        << ",\"tid\":0,\"ts\":" << FormatTs(trace->end) << "}";
      events.push_back(PendingEvent{trace->end, e.str()});
    }
  }

  for (const InstantRecord& instant : tracer.instants()) {
    std::ostringstream e;
    e << "{\"ph\":\"i\",\"name\":\"" << JsonEscape(tracer.names()[instant.name_id])
      << "\",\"pid\":" << track_pid(instant.track)
      << ",\"tid\":" << track_tid(instant.track)
      << ",\"ts\":" << FormatTs(instant.at) << ",\"s\":\"t\"}";
    events.push_back(PendingEvent{instant.at, e.str()});
  }

  // Global timestamp sort (stable, so a zero-length span's "b" stays ahead of
  // its "e") gives every track a monotone sequence.
  std::stable_sort(events.begin(), events.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     return a.ts < b.ts;
                   });

  std::ostringstream out;
  const Tracer::Stats& stats = tracer.stats();
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"traces_begun\":" << stats.begun << ",\"traces_ended\":" << stats.ended
      << ",\"traces_retained\":" << stats.retained
      << ",\"spans_recorded\":" << stats.spans
      << ",\"orphan_spans\":" << stats.orphan_spans
      << ",\"dropped_traces\":" << stats.dropped_traces
      << ",\"dropped_instants\":" << stats.dropped_instants
      << "},\n\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_sort_index\","
      << "\"pid\":" << queries_pid << ",\"tid\":0,\"args\":{\"sort_index\":-1}}"
      << head.str();
  for (const PendingEvent& event : events) {
    out << ",\n" << event.json;
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace perfiso
