#include "src/obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/util/stats.h"

namespace perfiso {

const char* TraceSamplingName(TraceSampling sampling) {
  switch (sampling) {
    case TraceSampling::kAll:
      return "all";
    case TraceSampling::kSlowestK:
      return "slowest_k";
    case TraceSampling::kProbabilistic:
      return "probabilistic";
  }
  return "?";
}

StatusOr<TraceSampling> ParseTraceSampling(const std::string& name) {
  if (name == "all") {
    return TraceSampling::kAll;
  }
  if (name == "slowest_k") {
    return TraceSampling::kSlowestK;
  }
  if (name == "probabilistic") {
    return TraceSampling::kProbabilistic;
  }
  return InvalidArgumentError("unknown obs.sampling: " + name);
}

Status ObsSpec::Validate() const {
  if (!enabled) {
    return Status::Ok();
  }
  if (metrics_period <= 0) {
    return InvalidArgumentError("obs.metrics_period_ns must be positive");
  }
  if (sampling == TraceSampling::kSlowestK && slowest_k <= 0) {
    return InvalidArgumentError("obs.slowest_k must be positive");
  }
  if (sampling == TraceSampling::kProbabilistic &&
      (sample_probability < 0 || sample_probability > 1)) {
    return InvalidArgumentError("obs.sample_probability must be in [0, 1]");
  }
  if (trace_max_events < 0) {
    return InvalidArgumentError("obs.trace_max_events must be >= 0");
  }
  return Status::Ok();
}

void ObsSpec::AppendToConfigMap(ConfigMap* map) const {
  if (!enabled) {
    return;
  }
  map->SetBool("obs.enabled", true);
  map->SetInt("obs.metrics_period_ns", metrics_period);
  map->SetString("obs.sampling", TraceSamplingName(sampling));
  if (sampling == TraceSampling::kSlowestK) {
    map->SetInt("obs.slowest_k", slowest_k);
  }
  if (sampling == TraceSampling::kProbabilistic) {
    map->SetDouble("obs.sample_probability", sample_probability);
    map->SetInt("obs.sample_seed", static_cast<int64_t>(sample_seed));
  }
  map->SetInt("obs.trace_max_events", trace_max_events);
}

StatusOr<ObsSpec> ObsSpec::FromConfigMap(const ConfigMap& map) {
  ObsSpec spec;
  auto enabled = map.GetBool("obs.enabled", spec.enabled);
  PERFISO_RETURN_IF_ERROR(enabled.status());
  spec.enabled = *enabled;

  auto period = map.GetInt("obs.metrics_period_ns", spec.metrics_period);
  PERFISO_RETURN_IF_ERROR(period.status());
  spec.metrics_period = *period;

  auto sampling_name = map.GetString("obs.sampling", TraceSamplingName(spec.sampling));
  PERFISO_RETURN_IF_ERROR(sampling_name.status());
  auto sampling = ParseTraceSampling(*sampling_name);
  PERFISO_RETURN_IF_ERROR(sampling.status());
  spec.sampling = *sampling;

  auto slowest_k = map.GetInt("obs.slowest_k", spec.slowest_k);
  PERFISO_RETURN_IF_ERROR(slowest_k.status());
  spec.slowest_k = static_cast<int>(*slowest_k);

  auto probability = map.GetDouble("obs.sample_probability", spec.sample_probability);
  PERFISO_RETURN_IF_ERROR(probability.status());
  spec.sample_probability = *probability;

  auto seed = map.GetInt("obs.sample_seed", static_cast<int64_t>(spec.sample_seed));
  PERFISO_RETURN_IF_ERROR(seed.status());
  spec.sample_seed = static_cast<uint64_t>(*seed);

  auto max_events = map.GetInt("obs.trace_max_events", spec.trace_max_events);
  PERFISO_RETURN_IF_ERROR(max_events.status());
  spec.trace_max_events = *max_events;

  PERFISO_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Tracer::Options ObsSpec::TracerOptions() const {
  Tracer::Options options;
  options.sampling = sampling;
  options.slowest_k = slowest_k;
  options.sample_probability = sample_probability;
  options.sample_seed = sample_seed;
  options.max_events = trace_max_events;
  return options;
}

std::string FormatP99AttributionTable(const Tracer& tracer) {
  const std::vector<TraceSummary>& summaries = tracer.summaries();
  LatencyRecorder completed;
  for (const TraceSummary& summary : summaries) {
    if (!summary.dropped) {
      completed.Add(summary.latency_ms);
    }
  }
  if (completed.Count() == 0) {
    return "";
  }
  const double p99 = completed.P99();

  TailAttribution total;
  double latency_sum = 0;
  size_t cohort = 0;
  for (const TraceSummary& summary : summaries) {
    if (summary.dropped || summary.latency_ms < p99) {
      continue;
    }
    total.Accumulate(summary.attribution);
    latency_sum += summary.latency_ms;
    ++cohort;
  }
  if (cohort == 0) {
    return "";
  }

  const double denom = std::max(latency_sum, 1e-12);
  char line[128];
  std::ostringstream out;
  std::snprintf(line, sizeof(line),
                "P99 cohort (%zu/%zu queries, >= %.2f ms): mean latency %.2f ms\n",
                cohort, completed.Count(), p99,
                latency_sum / static_cast<double>(cohort));
  out << line;
  const auto row = [&](const char* label, double ms) {
    std::snprintf(line, sizeof(line), "  %-14s %9.2f ms  %5.1f%%\n", label,
                  ms / static_cast<double>(cohort), 100.0 * ms / denom);
    out << line;
  };
  row("cpu_wait", total.cpu_wait_ms);
  row("disk_queue", total.disk_queue_ms);
  row("net_transit", total.net_transit_ms);
  row("serialization", total.serialization_ms);
  row("service", total.service_ms);
  row("other", total.other_ms);
  return out.str();
}

}  // namespace perfiso
