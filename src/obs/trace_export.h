// Chrome-trace-event JSON export (the "JSON Array Format" with metadata),
// loadable in ui.perfetto.dev or chrome://tracing.
//
// Mapping:
//  * Each registered tracer process (a simulated machine, the fabric, the
//    workload client) becomes a Perfetto process; each registered track (a
//    core, a NIC, a drive) becomes a named thread of it.
//  * Retained query traces export as async "b"/"e" pairs keyed by the trace
//    context id, so overlapping spans (parallel chunk reads, fan-out flows)
//    render without nesting violations; the enclosing query lifetime carries
//    the tail attribution in its args.
//  * Controller/throttler decisions, hedge issues, and arrivals are "i"
//    instant events on their resource track.
// Timestamps are sim-time microseconds; events are emitted globally sorted
// by timestamp, so every track's sequence is monotone.
#ifndef PERFISO_SRC_OBS_TRACE_EXPORT_H_
#define PERFISO_SRC_OBS_TRACE_EXPORT_H_

#include <string>

#include "src/obs/trace.h"

namespace perfiso {

std::string ExportChromeTrace(const Tracer& tracer);

}  // namespace perfiso

#endif  // PERFISO_SRC_OBS_TRACE_EXPORT_H_
