// Sim-time metrics: a registry of named counters/gauges/histograms plus a
// periodic sampler that turns them into in-memory timeseries.
//
// Everything here is passive with respect to the simulation: metric updates
// are plain arithmetic on pre-registered slots, the sampler reads (never
// mutates) metric state on a PeriodicTask cadence, and nothing draws from a
// simulation RNG stream. That is what lets benches run with metrics enabled
// and still produce bit-identical LatencyRecorder digests (the determinism
// contract, DESIGN.md §7).
//
// Metric names are lowercase dot-separated literals ("disk.reads.completed");
// perfiso_lint rule OBS-001 rejects runtime-concatenated names at call sites
// so the hot paths never build strings.
#ifndef PERFISO_SRC_OBS_METRICS_H_
#define PERFISO_SRC_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace perfiso {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Fixed-bucket distribution; the sampler snapshots summary stats per tick.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets) {}

  void Observe(double sample) { recorder_.Add(sample); }
  const LatencyRecorder& recorder() const { return recorder_; }
  HistogramSnapshot Snapshot() const {
    return SnapshotHistogram(recorder_, lo_, hi_, buckets_);
  }

 private:
  LatencyRecorder recorder_;
  double lo_;
  double hi_;
  size_t buckets_;
};

// Owns all metrics of one simulation run. Registration returns stable
// pointers (storage is never reallocated); layers keep the raw pointer and
// update through it with a single null check when observability is off.
// Registering an already-registered name returns the existing metric, so
// independent layers can share a counter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  HistogramMetric* AddHistogram(const std::string& name, double lo, double hi,
                                size_t buckets);
  // A probe is evaluated once per sampler tick; use it to expose state the
  // owner already tracks (queue depths, inflight counts) without mirroring
  // writes into a gauge.
  void AddProbe(const std::string& name, std::function<double()> probe);

  // Current value of every exported column, in registration order.
  // Histograms expand to <name>.count/.mean/.p50/.p95/.p99.
  std::vector<std::string> ColumnNames() const;
  std::vector<double> ColumnValues() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kProbe };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::function<double()> probe;
  };

  Entry* Find(const std::string& name);

  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

// Snapshots a registry's columns every `period` of sim time into in-memory
// series. Rows are row-major so late metric registration only pads earlier
// rows (exported as zeros). The sampler is the only periodic event
// observability adds to a run; it is a pure observer, so its only effect on
// the event engine is sequence-number allocation, which cannot reorder
// same-time events scheduled by the simulation proper.
class TimeseriesSampler {
 public:
  // Starts ticking at `start` and then every `period`.
  TimeseriesSampler(Simulator* sim, MetricsRegistry* registry, SimTime start,
                    SimDuration period);

  // Records one row immediately (used for the final end-of-run sample).
  void SampleNow(SimTime now);

  size_t NumRows() const { return times_.size(); }
  SimDuration period() const { return period_; }

  // {"period_ns":..., "times_ns":[...], "series":{"name":[...],...}}
  std::string ToJson() const;
  // Header row "time_s,<col>,..." then one row per sample.
  std::string ToCsv() const;

 private:
  MetricsRegistry* registry_;
  SimDuration period_;
  std::vector<SimTime> times_;
  std::vector<std::vector<double>> rows_;
  std::unique_ptr<PeriodicTask> task_;  // declared last: cancels before rows die
};

}  // namespace perfiso

#endif  // PERFISO_SRC_OBS_METRICS_H_
