// Per-run observability bundle: the obs.* configuration surface, and the
// context object that owns one run's MetricsRegistry, Tracer, and
// TimeseriesSampler.
//
// Each simulated rig (a single-box node or a cluster) owns at most one
// ObsContext; layers receive nullable raw pointers to its registry/tracer, so
// a disabled run pays exactly one null check per instrumentation site and the
// event engine itself is untouched. See DESIGN.md §7.
#ifndef PERFISO_SRC_OBS_OBS_H_
#define PERFISO_SRC_OBS_OBS_H_

#include <memory>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/config.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace perfiso {

const char* TraceSamplingName(TraceSampling sampling);
StatusOr<TraceSampling> ParseTraceSampling(const std::string& name);

// The obs.* knobs of a scenario. Serialized alongside workload./perfiso.
// keys; nothing is emitted when disabled, so existing configs round-trip
// unchanged.
struct ObsSpec {
  bool enabled = false;
  SimDuration metrics_period = 100 * kMillisecond;
  TraceSampling sampling = TraceSampling::kAll;
  int slowest_k = 64;
  double sample_probability = 0.01;
  uint64_t sample_seed = 1234;
  int64_t trace_max_events = 1'000'000;

  Status Validate() const;
  // Emits obs.* keys into `map` (only when enabled, and only the knobs the
  // active sampling mode uses — the strict scenario parser rejects the rest).
  void AppendToConfigMap(ConfigMap* map) const;
  static StatusOr<ObsSpec> FromConfigMap(const ConfigMap& map);

  Tracer::Options TracerOptions() const;
};

// Owns the observability state of one simulation run. Construct disabled
// (null context pointer) or enabled next to the run's Simulator; call
// StartSampling once the measurement window is known.
struct ObsContext {
  explicit ObsContext(const ObsSpec& s) : spec(s), tracer(s.TracerOptions()) {}

  void StartSampling(Simulator* sim, SimTime start) {
    sampler = std::make_unique<TimeseriesSampler>(sim, &registry, start,
                                                  spec.metrics_period);
  }

  ObsSpec spec;
  MetricsRegistry registry;
  Tracer tracer;
  std::unique_ptr<TimeseriesSampler> sampler;
};

// Formats the paper-style tail-attribution table for the P99 cohort (all
// traced queries whose latency is >= the P99 of completed queries), e.g.:
//   P99 cohort (24/2386 queries, >= 41.2 ms): mean latency 55.1 ms
//     cpu_wait       38.1 ms  69.2%
//     ...
// Returns "" when no queries were traced.
std::string FormatP99AttributionTable(const Tracer& tracer);

}  // namespace perfiso

#endif  // PERFISO_SRC_OBS_OBS_H_
