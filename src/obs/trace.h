// Per-query distributed tracing over simulated time.
//
// A query acquires a trace context (a fresh uint64 minted by BeginTrace) at
// admission and threads it through every layer it touches: TLA fan-out →
// fabric flows → index-server stages → IoScheduler/DiskDevice → hedge/retry.
// Each layer reports spans — named sim-time intervals tagged with a resource
// track and an attribution category — and the tracer folds them into a
// per-query critical-path breakdown (TailAttribution) at EndTrace.
//
// Contract with the simulation (DESIGN.md §7):
//  * Passive: the tracer never schedules events, never draws from simulation
//    RNG streams (probabilistic sampling uses its own Rng), and span
//    recording is plain vector appends. Golden digests are bit-identical
//    with tracing on or off.
//  * Attribution is computed for every query (it is cheap); sampling only
//    decides which queries keep their full span lists for export.
//  * Span and instant names are lowercase dot-separated literals, enforced
//    by perfiso_lint rule OBS-001.
#ifndef PERFISO_SRC_OBS_TRACE_H_
#define PERFISO_SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace perfiso {

// Attribution categories, in ascending critical-path priority: when spans of
// several categories cover the same instant of a query's lifetime, the
// instant is attributed to the highest-priority one (service beats the queue
// wait that overlaps it on another chunk).
enum class SpanCategory : uint8_t {
  kCpuWait = 0,        // runnable but waiting for a core
  kDiskQueue = 1,      // queued in the IO scheduler or device
  kNetTransit = 2,     // propagation delay between racks
  kSerialization = 3,  // bytes moving through a NIC or link
  kService = 4,        // actually executing on a core or drive
};
inline constexpr int kNumSpanCategories = 5;
const char* SpanCategoryName(SpanCategory category);

// Per-query critical-path breakdown in milliseconds. The five categories
// plus `other_ms` (lifetime covered by no span: admission gaps, hedge
// timers, log-buffer stalls) sum exactly to the query latency.
struct TailAttribution {
  double cpu_wait_ms = 0;
  double disk_queue_ms = 0;
  double net_transit_ms = 0;
  double serialization_ms = 0;
  double service_ms = 0;
  double other_ms = 0;

  double Total() const {
    return cpu_wait_ms + disk_queue_ms + net_transit_ms + serialization_ms +
           service_ms + other_ms;
  }
  double& ByCategory(SpanCategory category);
  void Accumulate(const TailAttribution& other);
};

// One recorded span: interned name, category, resource track, sim interval.
struct SpanRecord {
  uint32_t name_id = 0;
  SpanCategory category = SpanCategory::kService;
  int32_t track = -1;  // kNoTrack renders on the query row
  SimTime start = 0;
  SimTime end = 0;
};

// A query whose full span list survived sampling.
struct RetainedTrace {
  uint64_t ctx = 0;
  uint32_t scope_id = 0;  // interned BeginTrace scope name
  SimTime begin = 0;
  SimTime end = 0;
  double latency_ms = 0;
  bool dropped = false;  // timed out / load-shed rather than completed
  TailAttribution attribution;
  std::vector<SpanRecord> spans;
};

// Lightweight record kept for *every* traced query, retained or not; the
// P99-cohort attribution tables aggregate over these.
struct TraceSummary {
  uint64_t ctx = 0;
  uint32_t scope_id = 0;
  SimTime begin = 0;
  double latency_ms = 0;
  bool dropped = false;
  TailAttribution attribution;
};

// A point event on a resource track (controller decisions, hedge issues,
// query arrivals).
struct InstantRecord {
  uint32_t name_id = 0;
  int32_t track = -1;
  SimTime at = 0;
};

// Which queries keep their span lists for export.
enum class TraceSampling : uint8_t {
  kAll = 0,        // every query (bounded by max_events)
  kSlowestK = 1,   // the k highest-latency queries seen so far
  kProbabilistic = 2,  // independent coin per query from a dedicated Rng
};

class Tracer {
 public:
  static constexpr int32_t kNoTrack = -1;

  struct Options {
    TraceSampling sampling = TraceSampling::kAll;
    int slowest_k = 64;
    double sample_probability = 0.01;
    uint64_t sample_seed = 1234;
    // Cap on total retained span records across all retained traces; new
    // traces are dropped (and counted) once reached.
    int64_t max_events = 1'000'000;
  };

  explicit Tracer(const Options& options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // -- Topology. Register once at rig construction; ids are dense.
  int RegisterProcess(const std::string& name);                 // Perfetto pid
  int RegisterTrack(int process, const std::string& name);      // Perfetto tid

  // -- Recording (hot path; all O(1) appends).
  // Mints a fresh context for one query. `scope` names the query class
  // ("isq" for index-server queries, "tla" for cluster-level requests).
  uint64_t BeginTrace(const char* scope, SimTime at);
  // Reports a completed interval of `ctx`'s lifetime. Unknown contexts are
  // counted and ignored (a hedge completing after its query ended).
  void Span(uint64_t ctx, const char* name, SpanCategory category, int32_t track,
            SimTime start, SimTime end);
  void Instant(const char* name, int32_t track, SimTime at);
  // Ends `ctx`: computes attribution, records the summary, and retains the
  // span list if sampling selects it.
  void EndTrace(uint64_t ctx, SimTime at, bool dropped);

  // -- Export surface.
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<std::string>& process_names() const { return process_names_; }
  struct TrackInfo {
    int process = 0;
    std::string name;
  };
  const std::vector<TrackInfo>& tracks() const { return tracks_; }
  const std::vector<InstantRecord>& instants() const { return instants_; }
  const std::vector<TraceSummary>& summaries() const { return summaries_; }
  // Retained traces in a deterministic order (ascending latency for
  // slowest-k, completion order otherwise).
  std::vector<const RetainedTrace*> Retained() const;

  struct Stats {
    uint64_t begun = 0;
    uint64_t ended = 0;
    uint64_t retained = 0;
    uint64_t spans = 0;
    uint64_t orphan_spans = 0;    // span/end for a context no longer active
    uint64_t dropped_traces = 0;  // not retained (sampling or max_events)
    uint64_t dropped_instants = 0;
  };
  const Stats& stats() const { return stats_; }

  // Computes the critical-path breakdown of [begin, end] from `spans` by a
  // priority interval sweep (exposed for tests).
  static TailAttribution ComputeAttribution(SimTime begin, SimTime end,
                                            const std::vector<SpanRecord>& spans);

 private:
  struct ActiveTrace {
    uint32_t scope_id = 0;
    SimTime begin = 0;
    std::vector<SpanRecord> spans;
  };

  uint32_t InternName(const char* name);
  void Retain(RetainedTrace trace);

  Options options_;
  Rng sample_rng_;
  uint64_t next_ctx_ = 1;
  int64_t retained_events_ = 0;
  std::map<uint64_t, ActiveTrace> active_;
  // Keyed by latency so slowest-k eviction is O(log n); equal keys keep
  // insertion order, making eviction deterministic.
  std::multimap<double, RetainedTrace> retained_;
  std::vector<TraceSummary> summaries_;
  std::vector<InstantRecord> instants_;
  std::vector<std::string> names_;
  std::map<std::string, uint32_t> name_ids_;
  std::vector<std::string> process_names_;
  std::vector<TrackInfo> tracks_;
  Stats stats_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_OBS_TRACE_H_
