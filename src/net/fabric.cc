#include "src/net/fabric.h"

#include <cassert>
#include <utility>

namespace perfiso {

Fabric::Fabric(Simulator* sim, const FabricConfig& config) : sim_(sim), config_(config) {
  assert(sim_ != nullptr);
  assert(config_.link_rate_bps > 0);
  assert(config_.uplink_oversubscription >= 1.0);
  assert(config_.machines_per_rack > 0);
  assert(config_.chunk_bytes > 0);
}

int Fabric::AttachMachine(const std::string& name) {
  const int endpoint = static_cast<int>(endpoints_.size());
  auto ep = std::make_unique<Endpoint>();
  ep->name = name;
  ep->rack = endpoint / config_.machines_per_rack;
  ep->dev = std::make_unique<NetDev>(sim_, config_.link_rate_bps, config_.chunk_bytes, name,
                                     config_.tx_priority);
  EnsureRack(ep->rack);
  endpoints_.push_back(std::move(ep));
  return endpoint;
}

void Fabric::EnsureRack(int rack) {
  while (static_cast<int>(racks_.size()) <= rack) {
    const double uplink_rate = config_.link_rate_bps *
                               static_cast<double>(config_.machines_per_rack) /
                               config_.uplink_oversubscription;
    const std::string prefix = "rack" + std::to_string(racks_.size());
    auto r = std::make_unique<Rack>();
    r->up = std::make_unique<Link>(sim_, uplink_rate, config_.chunk_bytes,
                                   Link::Discipline::kFifo, prefix + "-up");
    r->down = std::make_unique<Link>(sim_, uplink_rate, config_.chunk_bytes,
                                     Link::Discipline::kFifo, prefix + "-down");
    racks_.push_back(std::move(r));
  }
}

void Fabric::SetEgressBucketProvider(int endpoint, Link::EgressBucketFn provider) {
  endpoints_[static_cast<size_t>(endpoint)]->dev->SetEgressBucketProvider(std::move(provider));
}

void Fabric::Send(int src, int dst, int64_t bytes, NetClass net_class,
                  Flow::DeliveredFn done, uint64_t trace_ctx) {
  assert(src >= 0 && src < num_endpoints());
  assert(dst >= 0 && dst < num_endpoints());
  auto flow = std::make_shared<Flow>();
  flow->id = next_flow_id_++;
  flow->src = src;
  flow->dst = dst;
  flow->bytes = std::max<int64_t>(bytes, 1);
  flow->net_class = net_class;
  flow->submit_time = sim_->Now();
  flow->on_delivered = std::move(done);
  flow->trace_ctx = trace_ctx;
  ++flows_in_flight_;

  auto& src_stats = endpoints_[static_cast<size_t>(src)]->stats;
  const auto cls = static_cast<size_t>(net_class);
  ++src_stats.flows_sent[cls];
  src_stats.bytes_sent[cls] += flow->bytes;

  if (src == dst) {
    // Loopback: never leaves the machine, no serialization or propagation.
    sim_->ScheduleAfter(0, [this, flow] { Deliver(flow, sim_->Now()); });
    return;
  }
  RunHop(flow, 0);
}

void Fabric::RunHop(const std::shared_ptr<Flow>& flow, int hop) {
  const Endpoint& src = *endpoints_[static_cast<size_t>(flow->src)];
  const Endpoint& dst = *endpoints_[static_cast<size_t>(flow->dst)];
  const bool cross_rack = src.rack != dst.rack;

  // Path: [0] src TX, then (cross-rack only) [1] src rack uplink and [2] dst
  // rack downlink, then propagation, then [3] dst RX, then delivery.
  Link* link = nullptr;
  switch (hop) {
    case 0:
      link = &src.dev->tx();
      break;
    case 1:
      if (!cross_rack) {
        // Intra-rack: the ToR forwards at line rate; skip to propagation.
        sim_->ScheduleAfter(config_.base_latency, [this, flow] { RunHop(flow, 3); });
        return;
      }
      link = racks_[static_cast<size_t>(src.rack)]->up.get();
      break;
    case 2:
      link = racks_[static_cast<size_t>(dst.rack)]->down.get();
      break;
    case 3:
      if (tracer_ != nullptr && flow->trace_ctx != 0 && config_.base_latency > 0) {
        // RunHop(3) fires exactly base_latency after the last switch hop.
        tracer_->Span(flow->trace_ctx, "net.propagate", SpanCategory::kNetTransit,
                      dst.rx_track, sim_->Now() - config_.base_latency, sim_->Now());
      }
      link = &dst.dev->rx();
      break;
    default:
      assert(false);
      return;
  }
  flow->hop_enter = sim_->Now();
  const int next = hop + 1;
  link->Enqueue(flow.get(), [this, flow, hop, next](Flow*, SimTime now) {
    if (tracer_ != nullptr && flow->trace_ctx != 0 && now > flow->hop_enter) {
      EmitHopSpan(*flow, hop, now);
    }
    switch (next) {
      case 1:
      case 2:
        RunHop(flow, next);
        return;
      case 3:
        // Last switch hop done: pay propagation, then serialize into the
        // destination NIC (the incast point).
        sim_->ScheduleAfter(config_.base_latency, [this, flow] { RunHop(flow, 3); });
        return;
      default:
        Deliver(flow, now);
        return;
    }
  });
}

void Fabric::EmitHopSpan(const Flow& flow, int hop, SimTime now) {
  const Endpoint& src = *endpoints_[static_cast<size_t>(flow.src)];
  const Endpoint& dst = *endpoints_[static_cast<size_t>(flow.dst)];
  switch (hop) {
    case 0:
      tracer_->Span(flow.trace_ctx, "net.tx", SpanCategory::kSerialization,
                    src.tx_track, flow.hop_enter, now);
      break;
    case 1:
      tracer_->Span(flow.trace_ctx, "net.uplink", SpanCategory::kNetTransit,
                    racks_[static_cast<size_t>(src.rack)]->up_track, flow.hop_enter, now);
      break;
    case 2:
      tracer_->Span(flow.trace_ctx, "net.downlink", SpanCategory::kNetTransit,
                    racks_[static_cast<size_t>(dst.rack)]->down_track, flow.hop_enter, now);
      break;
    case 3:
      tracer_->Span(flow.trace_ctx, "net.rx", SpanCategory::kSerialization,
                    dst.rx_track, flow.hop_enter, now);
      break;
    default:
      break;
  }
}

void Fabric::EnableTracing(Tracer* tracer) {
  tracer_ = tracer;
  const int pid = tracer->RegisterProcess("fabric");
  for (auto& ep : endpoints_) {
    ep->tx_track = tracer->RegisterTrack(pid, ep->name + "-tx");
    ep->rx_track = tracer->RegisterTrack(pid, ep->name + "-rx");
  }
  for (size_t r = 0; r < racks_.size(); ++r) {
    const std::string prefix = "rack" + std::to_string(r);
    racks_[r]->up_track = tracer->RegisterTrack(pid, prefix + "-up");
    racks_[r]->down_track = tracer->RegisterTrack(pid, prefix + "-down");
  }
}

void Fabric::Deliver(const std::shared_ptr<Flow>& flow, SimTime now) {
  auto& dst_stats = endpoints_[static_cast<size_t>(flow->dst)]->stats;
  const auto cls = static_cast<size_t>(flow->net_class);
  ++dst_stats.flows_delivered[cls];
  dst_stats.bytes_received[cls] += flow->bytes;
  flow_latency_ms_[cls].Add(ToMillis(now - flow->submit_time));
  --flows_in_flight_;
  if (flow->on_delivered) {
    // Move the callback out so its captures die with this scope, not with
    // the last shared_ptr reference to the flow.
    Flow::DeliveredFn done = std::move(flow->on_delivered);
    done(now);
  }
}

void Fabric::ResetStats() {
  for (auto& ep : endpoints_) {
    ep->stats = EndpointStats{};
    ep->dev->tx().ResetStats();
    ep->dev->rx().ResetStats();
  }
  for (auto& rack : racks_) {
    rack->up->ResetStats();
    rack->down->ResetStats();
  }
  for (auto& rec : flow_latency_ms_) {
    rec.Clear();
  }
}

}  // namespace perfiso
