#include "src/net/fabric.h"

#include <cassert>
#include <utility>

#include "src/sim/parallel.h"

namespace perfiso {

Status FabricConfig::Validate() const {
  if (link_rate_bps <= 0) {
    return InvalidArgumentError("net.link_rate_bps must be positive");
  }
  if (uplink_oversubscription < 1.0) {
    return InvalidArgumentError("net.uplink_oversubscription must be >= 1");
  }
  if (machines_per_rack <= 0) {
    return InvalidArgumentError("net.machines_per_rack must be positive");
  }
  if (base_latency <= 0) {
    return InvalidArgumentError(
        "net.base_latency_us must be positive: it is the fabric's one-way "
        "propagation delay and the PDES lookahead for partitioned runs "
        "(zero lookahead means zero-width lockstep windows)");
  }
  if (chunk_bytes <= 0) {
    return InvalidArgumentError("net.chunk_bytes must be positive");
  }
  if (request_bytes <= 0 || leaf_response_bytes <= 0 || final_response_bytes <= 0) {
    return InvalidArgumentError("net RPC payload sizes must be positive");
  }
  return OkStatus();
}

Fabric::Fabric(Simulator* sim, const FabricConfig& config) : sim_(sim), config_(config) {
  assert(sim_ != nullptr);
  assert(config_.link_rate_bps > 0);
  assert(config_.uplink_oversubscription >= 1.0);
  assert(config_.machines_per_rack > 0);
  assert(config_.chunk_bytes > 0);
}

Fabric::Fabric(ParallelSimulation* psim, const FabricConfig& config)
    : Fabric(&psim->sim(0), config) {
  psim_ = psim;
}

Simulator* Fabric::SimFor(int partition) {
  if (psim_ == nullptr) {
    assert(partition == 0 && "partitions require the ParallelSimulation constructor");
    return sim_;
  }
  return &psim_->sim(partition);
}

int Fabric::AttachMachine(const std::string& name, int partition) {
  const int endpoint = static_cast<int>(endpoints_.size());
  Simulator* sim = SimFor(partition);
  auto ep = std::make_unique<Endpoint>();
  ep->name = name;
  ep->partition = partition;
  ep->sim = sim;
  ep->dev = std::make_unique<NetDev>(sim, config_.link_rate_bps, config_.chunk_bytes, name,
                                     config_.tx_priority);
  if (static_cast<size_t>(partition) >= open_rack_.size()) {
    open_rack_.resize(static_cast<size_t>(partition) + 1, -1);
  }
  int rack = open_rack_[static_cast<size_t>(partition)];
  if (rack < 0 || racks_[static_cast<size_t>(rack)]->machines >= config_.machines_per_rack) {
    rack = static_cast<int>(racks_.size());
    const double uplink_rate = config_.link_rate_bps *
                               static_cast<double>(config_.machines_per_rack) /
                               config_.uplink_oversubscription;
    const std::string prefix = "rack" + std::to_string(rack);
    auto r = std::make_unique<Rack>();
    r->partition = partition;
    r->up = std::make_unique<Link>(sim, uplink_rate, config_.chunk_bytes,
                                   Link::Discipline::kFifo, prefix + "-up");
    r->down = std::make_unique<Link>(sim, uplink_rate, config_.chunk_bytes,
                                     Link::Discipline::kFifo, prefix + "-down");
    racks_.push_back(std::move(r));
    open_rack_[static_cast<size_t>(partition)] = rack;
  }
  ep->rack = rack;
  ++racks_[static_cast<size_t>(rack)]->machines;
  endpoints_.push_back(std::move(ep));
  return endpoint;
}

void Fabric::SetEgressBucketProvider(int endpoint, Link::EgressBucketFn provider) {
  endpoints_[static_cast<size_t>(endpoint)]->dev->SetEgressBucketProvider(std::move(provider));
}

void Fabric::Send(int src, int dst, int64_t bytes, NetClass net_class,
                  Flow::DeliveredFn done, uint64_t trace_ctx) {
  assert(src >= 0 && src < num_endpoints());
  assert(dst >= 0 && dst < num_endpoints());
  Endpoint& src_ep = *endpoints_[static_cast<size_t>(src)];
  auto flow = std::make_shared<Flow>();
  // Flow ids are minted per source endpoint (source id in the high bits) so
  // they are deterministic under partition-parallel execution: each source's
  // sequence depends only on that source's own send order.
  flow->id = (static_cast<uint64_t>(src) + 1) << 40 | ++src_ep.next_flow_seq;
  flow->src = src;
  flow->dst = dst;
  flow->bytes = std::max<int64_t>(bytes, 1);
  flow->net_class = net_class;
  flow->submit_time = src_ep.sim->Now();
  flow->on_delivered = std::move(done);
  flow->trace_ctx = trace_ctx;
  ++src_ep.lifetime_flows_sent;

  const auto cls = static_cast<size_t>(net_class);
  ++src_ep.stats.flows_sent[cls];
  src_ep.stats.bytes_sent[cls] += flow->bytes;

  if (src == dst) {
    // Loopback: never leaves the machine, no serialization or propagation.
    src_ep.sim->ScheduleAfter(0, [this, flow, sim = src_ep.sim] { Deliver(flow, sim->Now()); });
    return;
  }
  RunHop(flow, 0);
}

void Fabric::RunHop(const std::shared_ptr<Flow>& flow, int hop) {
  const Endpoint& src = *endpoints_[static_cast<size_t>(flow->src)];
  const Endpoint& dst = *endpoints_[static_cast<size_t>(flow->dst)];
  const bool cross_rack = src.rack != dst.rack;
  // Source-side hops (TX, uplink) run on src's partition; destination-side
  // hops (downlink, RX) on dst's. In sequential mode these are one simulator.
  Simulator* sim = hop <= 1 ? src.sim : dst.sim;

  // Path: [0] src TX, then (cross-rack only) [1] src rack uplink and [2] dst
  // rack downlink, then propagation, then [3] dst RX, then delivery. For a
  // cross-partition flow the propagation delay is paid on the mailbox hop
  // between [1] and [2] instead (it IS the lookahead), flagged by
  // flow->propagation_paid.
  Link* link = nullptr;
  switch (hop) {
    case 0:
      link = &src.dev->tx();
      break;
    case 1:
      if (!cross_rack) {
        // Intra-rack: the ToR forwards at line rate; skip to propagation.
        // Racks never span partitions, so this stays on one simulator.
        sim->ScheduleAfter(config_.base_latency, [this, flow] { RunHop(flow, 3); });
        return;
      }
      link = racks_[static_cast<size_t>(src.rack)]->up.get();
      break;
    case 2:
      link = racks_[static_cast<size_t>(dst.rack)]->down.get();
      break;
    case 3:
      if (tracer_ != nullptr && flow->trace_ctx != 0 && config_.base_latency > 0 &&
          !flow->propagation_paid) {
        // RunHop(3) fires exactly base_latency after the last switch hop.
        tracer_->Span(flow->trace_ctx, "net.propagate", SpanCategory::kNetTransit,
                      dst.rx_track, sim->Now() - config_.base_latency, sim->Now());
      }
      link = &dst.dev->rx();
      break;
    default:
      assert(false);
      return;
  }
  flow->hop_enter = sim->Now();
  const int next = hop + 1;
  link->Enqueue(flow.get(), [this, flow, hop, next](Flow*, SimTime now) {
    if (tracer_ != nullptr && flow->trace_ctx != 0 && now > flow->hop_enter) {
      EmitHopSpan(*flow, hop, now);
    }
    switch (next) {
      case 1:
        RunHop(flow, next);
        return;
      case 2: {
        const int src_part = endpoints_[static_cast<size_t>(flow->src)]->partition;
        const int dst_part = endpoints_[static_cast<size_t>(flow->dst)]->partition;
        if (src_part == dst_part) {
          RunHop(flow, next);
          return;
        }
        // Cross-partition handoff: the propagation delay is exactly the
        // conservative lookahead, so `now + base_latency` always lands at or
        // beyond the current window's end — the Post is legal by
        // construction. Propagation is paid here, not after the downlink.
        psim_->Post(dst_part, now + config_.base_latency, [this, flow] {
          flow->propagation_paid = true;
          RunHop(flow, 2);
        });
        return;
      }
      case 3:
        if (flow->propagation_paid) {
          RunHop(flow, 3);
          return;
        }
        // Last switch hop done: pay propagation, then serialize into the
        // destination NIC (the incast point).
        endpoints_[static_cast<size_t>(flow->dst)]->sim->ScheduleAfter(
            config_.base_latency, [this, flow] { RunHop(flow, 3); });
        return;
      default:
        Deliver(flow, now);
        return;
    }
  });
}

void Fabric::EmitHopSpan(const Flow& flow, int hop, SimTime now) {
  const Endpoint& src = *endpoints_[static_cast<size_t>(flow.src)];
  const Endpoint& dst = *endpoints_[static_cast<size_t>(flow.dst)];
  switch (hop) {
    case 0:
      tracer_->Span(flow.trace_ctx, "net.tx", SpanCategory::kSerialization,
                    src.tx_track, flow.hop_enter, now);
      break;
    case 1:
      tracer_->Span(flow.trace_ctx, "net.uplink", SpanCategory::kNetTransit,
                    racks_[static_cast<size_t>(src.rack)]->up_track, flow.hop_enter, now);
      break;
    case 2:
      tracer_->Span(flow.trace_ctx, "net.downlink", SpanCategory::kNetTransit,
                    racks_[static_cast<size_t>(dst.rack)]->down_track, flow.hop_enter, now);
      break;
    case 3:
      tracer_->Span(flow.trace_ctx, "net.rx", SpanCategory::kSerialization,
                    dst.rx_track, flow.hop_enter, now);
      break;
    default:
      break;
  }
}

void Fabric::EnableTracing(Tracer* tracer) {
  // Per-hop spans assume one clock and one single-threaded tracer; the
  // harness falls back to a sequential run when tracing is requested.
  assert(psim_ == nullptr && "fabric tracing requires sequential mode");
  tracer_ = tracer;
  const int pid = tracer->RegisterProcess("fabric");
  for (auto& ep : endpoints_) {
    ep->tx_track = tracer->RegisterTrack(pid, ep->name + "-tx");
    ep->rx_track = tracer->RegisterTrack(pid, ep->name + "-rx");
  }
  for (size_t r = 0; r < racks_.size(); ++r) {
    const std::string prefix = "rack" + std::to_string(r);
    racks_[r]->up_track = tracer->RegisterTrack(pid, prefix + "-up");
    racks_[r]->down_track = tracer->RegisterTrack(pid, prefix + "-down");
  }
}

void Fabric::Deliver(const std::shared_ptr<Flow>& flow, SimTime now) {
  Endpoint& dst_ep = *endpoints_[static_cast<size_t>(flow->dst)];
  const auto cls = static_cast<size_t>(flow->net_class);
  ++dst_ep.stats.flows_delivered[cls];
  dst_ep.stats.bytes_received[cls] += flow->bytes;
  dst_ep.flow_latency_ms[cls].Add(ToMillis(now - flow->submit_time));
  ++dst_ep.lifetime_flows_delivered;
  if (flow->on_delivered) {
    // Move the callback out so its captures die with this scope, not with
    // the last shared_ptr reference to the flow.
    Flow::DeliveredFn done = std::move(flow->on_delivered);
    done(now);
  }
}

LatencyRecorder Fabric::FlowLatencyMs(NetClass net_class) const {
  LatencyRecorder merged;
  const auto cls = static_cast<size_t>(net_class);
  for (const auto& ep : endpoints_) {
    merged.Merge(ep->flow_latency_ms[cls]);
  }
  return merged;
}

int64_t Fabric::flows_in_flight() const {
  int64_t sent = 0;
  int64_t delivered = 0;
  for (const auto& ep : endpoints_) {
    sent += ep->lifetime_flows_sent;
    delivered += ep->lifetime_flows_delivered;
  }
  return sent - delivered;
}

void Fabric::ResetStats() {
  for (auto& ep : endpoints_) {
    ep->stats = EndpointStats{};
    ep->dev->tx().ResetStats();
    ep->dev->rx().ResetStats();
    for (auto& rec : ep->flow_latency_ms) {
      rec.Clear();
    }
  }
  for (auto& rack : racks_) {
    rack->up->ResetStats();
    rack->down->ResetStats();
  }
}

}  // namespace perfiso
