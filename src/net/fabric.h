// Fabric: the cluster network connecting every machine's NetDev.
//
// Topology is the classic two-tier datacenter fabric: machines attach to a
// top-of-rack switch in groups of `machines_per_rack`; each ToR connects to
// the core over an uplink whose capacity is the rack's aggregate NIC rate
// divided by `uplink_oversubscription` (an oversubscribed fabric, the normal
// cost-saving design). A flow from A to B serializes at A's NIC TX (priority
// queues + egress shaping), crosses the rack uplinks when A and B sit in
// different racks, pays the propagation delay, serializes again at B's NIC RX
// (FIFO — this is where MLA fan-in becomes genuine incast), and then fires
// its completion callback. Replaces the old closed-form
// `base_latency + bytes/bandwidth` NetworkSpec term in src/cluster/.
#ifndef PERFISO_SRC_NET_FABRIC_H_
#define PERFISO_SRC_NET_FABRIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/flow.h"
#include "src/net/netdev.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"

namespace perfiso {

// Every tunable of the fabric (absorbs the old cluster NetworkSpec: the RPC
// payload sizes ride along so cluster code has a single network config).
struct FabricConfig {
  double link_rate_bps = 10e9 / 8;       // 10 GbE per machine NIC, in bytes/s
  double uplink_oversubscription = 4.0;  // rack NIC capacity / ToR uplink capacity
  int machines_per_rack = 16;
  SimDuration base_latency = FromMicros(120);  // one-way propagation + switching
  int64_t chunk_bytes = 64 * 1024;             // serialization/preemption granularity
  bool tx_priority = true;  // false: NIC TX degrades to FIFO (no priority classes)

  // RPC payload sizes used by the cluster layers (formerly NetworkSpec).
  int64_t request_bytes = 2 * 1024;
  int64_t leaf_response_bytes = 16 * 1024;
  int64_t final_response_bytes = 32 * 1024;
};

class Fabric {
 public:
  Fabric(Simulator* sim, const FabricConfig& config);

  // Attaches one machine; returns its endpoint id (dense, starting at 0).
  // Rack membership is by attach order: ids [k*R, (k+1)*R) share rack k.
  int AttachMachine(const std::string& name);

  // Installs the secondary egress shaper for an endpoint's NIC TX. The
  // provider is consulted per chunk, so PerfIso can install/clear the cap at
  // runtime through the platform's token bucket.
  void SetEgressBucketProvider(int endpoint, Link::EgressBucketFn provider);

  // Sends `bytes` from `src` to `dst` and fires `done` when the last byte
  // arrives. src == dst delivers immediately (loopback skips the NIC).
  // `trace_ctx` ties the flow to a query trace (0 = untraced).
  void Send(int src, int dst, int64_t bytes, NetClass net_class, Flow::DeliveredFn done,
            uint64_t trace_ctx = 0);

  // Registers fabric tracks (per-endpoint NIC tx/rx, per-rack uplinks) with
  // the tracer; traced flows then report per-hop serialization/transit spans.
  // Call after all machines are attached.
  void EnableTracing(Tracer* tracer);

  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }
  int num_racks() const { return static_cast<int>(racks_.size()); }
  const FabricConfig& config() const { return config_; }
  NetDev& netdev(int endpoint) { return *endpoints_[static_cast<size_t>(endpoint)]->dev; }
  Link& rack_uplink(int rack) { return *racks_[static_cast<size_t>(rack)]->up; }
  Link& rack_downlink(int rack) { return *racks_[static_cast<size_t>(rack)]->down; }

  // --- Stats -----------------------------------------------------------------

  struct EndpointStats {
    int64_t bytes_sent[kNumNetClasses] = {0, 0};
    int64_t bytes_received[kNumNetClasses] = {0, 0};
    int64_t flows_sent[kNumNetClasses] = {0, 0};
    int64_t flows_delivered[kNumNetClasses] = {0, 0};
  };
  const EndpointStats& endpoint_stats(int endpoint) const {
    return endpoints_[static_cast<size_t>(endpoint)]->stats;
  }
  // Flow completion time (submit to last byte delivered), in milliseconds.
  const LatencyRecorder& FlowLatencyMs(NetClass net_class) const {
    return flow_latency_ms_[static_cast<size_t>(net_class)];
  }
  int64_t flows_in_flight() const { return flows_in_flight_; }
  void ResetStats();

 private:
  struct Endpoint {
    std::string name;
    int rack = 0;
    std::unique_ptr<NetDev> dev;
    EndpointStats stats;
    int32_t tx_track = Tracer::kNoTrack;
    int32_t rx_track = Tracer::kNoTrack;
  };
  struct Rack {
    std::unique_ptr<Link> up;    // rack -> core
    std::unique_ptr<Link> down;  // core -> rack
    int32_t up_track = Tracer::kNoTrack;
    int32_t down_track = Tracer::kNoTrack;
  };

  void EnsureRack(int rack);
  // Advances `flow` to hop `hop` of its path (0 = src TX, then uplinks, then
  // propagation + dst RX); delivers and reclaims the flow after the last hop.
  void RunHop(const std::shared_ptr<Flow>& flow, int hop);
  // Reports the hop the flow just finished as a span on that hop's track.
  void EmitHopSpan(const Flow& flow, int hop, SimTime now);
  void Deliver(const std::shared_ptr<Flow>& flow, SimTime now);

  Simulator* sim_;
  FabricConfig config_;
  Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Rack>> racks_;
  uint64_t next_flow_id_ = 1;
  int64_t flows_in_flight_ = 0;
  LatencyRecorder flow_latency_ms_[kNumNetClasses];
};

}  // namespace perfiso

#endif  // PERFISO_SRC_NET_FABRIC_H_
