// Fabric: the cluster network connecting every machine's NetDev.
//
// Topology is the classic two-tier datacenter fabric: machines attach to a
// top-of-rack switch in groups of `machines_per_rack`; each ToR connects to
// the core over an uplink whose capacity is the rack's aggregate NIC rate
// divided by `uplink_oversubscription` (an oversubscribed fabric, the normal
// cost-saving design). A flow from A to B serializes at A's NIC TX (priority
// queues + egress shaping), crosses the rack uplinks when A and B sit in
// different racks, pays the propagation delay, serializes again at B's NIC RX
// (FIFO — this is where MLA fan-in becomes genuine incast), and then fires
// its completion callback. Replaces the old closed-form
// `base_latency + bytes/bandwidth` NetworkSpec term in src/cluster/.
//
// Partitioned mode: constructed over a ParallelSimulation, each endpoint (and
// each rack — racks never span partitions) lives on the Simulator of the
// partition it was attached to. Flows whose src and dst share a partition run
// entirely on that partition's thread, exactly as in sequential mode.
// Cross-partition flows hand off after the source-side hops via
// ParallelSimulation::Post with a delivery timestamp `now + base_latency`:
// the propagation delay is the minimum cross-partition latency, i.e. the PDES
// lookahead that makes conservative lockstep windows sound (DESIGN.md §10).
#ifndef PERFISO_SRC_NET_FABRIC_H_
#define PERFISO_SRC_NET_FABRIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/flow.h"
#include "src/net/netdev.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/status.h"

namespace perfiso {

class ParallelSimulation;

// Every tunable of the fabric (absorbs the old cluster NetworkSpec: the RPC
// payload sizes ride along so cluster code has a single network config).
struct FabricConfig {
  double link_rate_bps = 10e9 / 8;       // 10 GbE per machine NIC, in bytes/s
  double uplink_oversubscription = 4.0;  // rack NIC capacity / ToR uplink capacity
  int machines_per_rack = 16;
  SimDuration base_latency = FromMicros(120);  // one-way propagation + switching
  int64_t chunk_bytes = 64 * 1024;             // serialization/preemption granularity
  bool tx_priority = true;  // false: NIC TX degrades to FIFO (no priority classes)

  // RPC payload sizes used by the cluster layers (formerly NetworkSpec).
  int64_t request_bytes = 2 * 1024;
  int64_t leaf_response_bytes = 16 * 1024;
  int64_t final_response_bytes = 32 * 1024;

  // Rejects non-physical settings. base_latency must be strictly positive:
  // besides being the propagation delay, it is the PDES lookahead for
  // partitioned runs — zero would mean zero-width lockstep windows and a
  // livelocked window loop.
  Status Validate() const;
};

class Fabric {
 public:
  Fabric(Simulator* sim, const FabricConfig& config);
  // Partitioned fabric: endpoints are attached to partitions and
  // cross-partition flows ride the mailbox protocol. `psim` must outlive the
  // fabric.
  Fabric(ParallelSimulation* psim, const FabricConfig& config);

  // Attaches one machine to `partition`; returns its endpoint id (dense,
  // starting at 0). Rack membership is by attach order *within the
  // partition*: a rack only ever holds machines of one partition, so ToR
  // links never need cross-partition scheduling. With the single-Simulator
  // constructor (everything is partition 0) this reduces to the historical
  // rule: ids [k*R, (k+1)*R) share rack k.
  int AttachMachine(const std::string& name, int partition = 0);

  // Installs the secondary egress shaper for an endpoint's NIC TX. The
  // provider is consulted per chunk, so PerfIso can install/clear the cap at
  // runtime through the platform's token bucket.
  void SetEgressBucketProvider(int endpoint, Link::EgressBucketFn provider);

  // Sends `bytes` from `src` to `dst` and fires `done` when the last byte
  // arrives. src == dst delivers immediately (loopback skips the NIC).
  // `trace_ctx` ties the flow to a query trace (0 = untraced). In partitioned
  // mode this must be called from src's partition (or during setup); `done`
  // fires on dst's partition.
  void Send(int src, int dst, int64_t bytes, NetClass net_class, Flow::DeliveredFn done,
            uint64_t trace_ctx = 0);

  // Registers fabric tracks (per-endpoint NIC tx/rx, per-rack uplinks) with
  // the tracer; traced flows then report per-hop serialization/transit spans.
  // Call after all machines are attached. Sequential mode only.
  void EnableTracing(Tracer* tracer);

  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }
  int num_racks() const { return static_cast<int>(racks_.size()); }
  const FabricConfig& config() const { return config_; }
  NetDev& netdev(int endpoint) { return *endpoints_[static_cast<size_t>(endpoint)]->dev; }
  Link& rack_uplink(int rack) { return *racks_[static_cast<size_t>(rack)]->up; }
  Link& rack_downlink(int rack) { return *racks_[static_cast<size_t>(rack)]->down; }
  int endpoint_partition(int endpoint) const {
    return endpoints_[static_cast<size_t>(endpoint)]->partition;
  }

  // --- Stats -----------------------------------------------------------------

  struct EndpointStats {
    int64_t bytes_sent[kNumNetClasses] = {0, 0};
    int64_t bytes_received[kNumNetClasses] = {0, 0};
    int64_t flows_sent[kNumNetClasses] = {0, 0};
    int64_t flows_delivered[kNumNetClasses] = {0, 0};
  };
  const EndpointStats& endpoint_stats(int endpoint) const {
    return endpoints_[static_cast<size_t>(endpoint)]->stats;
  }
  // Flow completion time (submit to last byte delivered), in milliseconds.
  // Samples are recorded per destination endpoint (so partitions never share
  // a recorder) and merged in endpoint order here; call only while the
  // simulation is quiescent.
  LatencyRecorder FlowLatencyMs(NetClass net_class) const;
  int64_t flows_in_flight() const;
  void ResetStats();

 private:
  struct Endpoint {
    std::string name;
    int rack = 0;
    int partition = 0;
    Simulator* sim = nullptr;  // the partition's simulator
    std::unique_ptr<NetDev> dev;
    EndpointStats stats;
    // Per-endpoint flow id sequence: ids stay deterministic per source no
    // matter how partition threads interleave. Layout: src id in the high
    // bits, per-source sequence below.
    uint64_t next_flow_seq = 0;
    // Lifetime totals, deliberately NOT cleared by ResetStats so
    // flows_in_flight() stays correct across a mid-run stats reset.
    int64_t lifetime_flows_sent = 0;
    int64_t lifetime_flows_delivered = 0;
    LatencyRecorder flow_latency_ms[kNumNetClasses];
    int32_t tx_track = Tracer::kNoTrack;
    int32_t rx_track = Tracer::kNoTrack;
  };
  struct Rack {
    int partition = 0;
    int machines = 0;  // attached so far; a rack closes at machines_per_rack
    std::unique_ptr<Link> up;    // rack -> core
    std::unique_ptr<Link> down;  // core -> rack
    int32_t up_track = Tracer::kNoTrack;
    int32_t down_track = Tracer::kNoTrack;
  };

  Simulator* SimFor(int partition);
  // Advances `flow` to hop `hop` of its path (0 = src TX, then uplinks, then
  // propagation + dst RX); delivers and reclaims the flow after the last hop.
  void RunHop(const std::shared_ptr<Flow>& flow, int hop);
  // Reports the hop the flow just finished as a span on that hop's track.
  void EmitHopSpan(const Flow& flow, int hop, SimTime now);
  void Deliver(const std::shared_ptr<Flow>& flow, SimTime now);

  Simulator* sim_;                     // partition 0's simulator
  ParallelSimulation* psim_ = nullptr; // null in sequential mode
  FabricConfig config_;
  Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Rack>> racks_;
  // Open (not yet full) rack per partition, -1 if none. Indexed lazily.
  std::vector<int> open_rack_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_NET_FABRIC_H_
