#include "src/net/netdev.h"

#include <algorithm>
#include <cassert>

namespace perfiso {

const char* NetClassName(NetClass net_class) {
  switch (net_class) {
    case NetClass::kPrimary:
      return "primary";
    case NetClass::kSecondary:
      return "secondary";
  }
  return "?";
}

Link::Link(Simulator* sim, double rate_bps, int64_t chunk_bytes, Discipline discipline,
           std::string name)
    : sim_(sim),
      rate_bps_(rate_bps),
      chunk_bytes_(chunk_bytes),
      discipline_(discipline),
      name_(std::move(name)) {
  assert(rate_bps_ > 0);
  assert(chunk_bytes_ > 0);
}

void Link::Enqueue(Flow* flow, FlowDoneFn done) {
  assert(flow != nullptr);
  assert(flow->bytes > 0);
  flow->remaining_on_link = flow->bytes;
  flow->arrival_seq = next_arrival_seq_++;
  queued_bytes_ += flow->bytes;
  stats_.max_queued_bytes = std::max(stats_.max_queued_bytes, queued_bytes_);
  const auto qi = static_cast<size_t>(flow->net_class);
  queues_[qi].push_back(Entry{flow, std::move(done)});
  Pump();
}

int Link::PickQueue() const {
  const bool p = !queues_[0].empty();
  const bool s = !queues_[1].empty();
  if (!p && !s) {
    return -1;
  }
  if (p && s && discipline_ == Discipline::kFifo) {
    // Arrival order across classes; a partially-serialized flow keeps its
    // original seq and therefore stays in front.
    return queues_[0].front().flow->arrival_seq < queues_[1].front().flow->arrival_seq ? 0 : 1;
  }
  return p ? 0 : 1;  // strict priority (or only one queue occupied)
}

void Link::Pump() {
  if (busy_) {
    return;
  }
  const int queue = PickQueue();
  if (queue < 0) {
    return;
  }
  Flow* flow = queues_[static_cast<size_t>(queue)].front().flow;
  int64_t chunk = std::min(chunk_bytes_, flow->remaining_on_link);
  const SimTime now = sim_->Now();
  // TX links shape secondary chunks through the machine's egress bucket.
  // Tokens may become available before the wake fires (PerfIso can raise the
  // cap), so re-pump on every enqueue as well.
  if (queue == 1 && egress_bucket_) {
    if (TokenBucket* bucket = egress_bucket_()) {
      // A bucket whose burst is below the chunk size could never satisfy
      // NextAvailable — serve smaller chunks rather than livelock.
      chunk = std::max<int64_t>(1, std::min(chunk, static_cast<int64_t>(bucket->burst())));
      const SimTime available = bucket->NextAvailable(static_cast<double>(chunk), now);
      if (available > now) {
        // Arm the wake, or pull an armed one earlier when PerfIso raised the
        // cap (or the head shrank) and tokens are due sooner. The callback
        // drops its own handle first: it has just fired, and a lingering
        // stale handle would alias whatever recycles the slot.
        sim_->ScheduleOrTighten(retry_event_, available, [this] {
          retry_event_ = EventHandle();
          Pump();
        });
        return;
      }
      bucket->ForceConsume(static_cast<double>(chunk), now);
    }
  }
  // A chunk is going out, and its completion re-pumps; a pending bucket wake
  // is stale, so remove it from the queue eagerly.
  sim_->CancelOwned(retry_event_);
  busy_ = true;
  const auto tx_time = static_cast<SimDuration>(static_cast<double>(chunk) / EffectiveRate() *
                                                static_cast<double>(kSecond));
  sim_->ScheduleAfter(tx_time, [this, queue, chunk] { OnChunkDone(queue, chunk); });
}

void Link::OnChunkDone(int queue, int64_t chunk) {
  busy_ = false;
  auto& q = queues_[static_cast<size_t>(queue)];
  Entry& entry = q.front();
  Flow* flow = entry.flow;
  flow->remaining_on_link -= chunk;
  queued_bytes_ -= chunk;
  ++stats_.chunks;
  stats_.bytes_serialized[queue] += chunk;
  stats_.busy_ns += static_cast<SimDuration>(static_cast<double>(chunk) / EffectiveRate() *
                                             static_cast<double>(kSecond));
  if (flow->remaining_on_link == 0) {
    ++stats_.flows_completed[queue];
    FlowDoneFn done = std::move(entry.done);
    q.pop_front();
    Pump();
    if (done) {
      done(flow, sim_->Now());
    }
    return;
  }
  Pump();
}

NetDev::NetDev(Simulator* sim, double link_rate_bps, int64_t chunk_bytes,
               const std::string& name, bool priority_tx)
    : tx_(sim, link_rate_bps, chunk_bytes,
          priority_tx ? Link::Discipline::kStrictPriority : Link::Discipline::kFifo,
          name + "-tx"),
      rx_(sim, link_rate_bps, chunk_bytes, Link::Discipline::kFifo, name + "-rx") {}

}  // namespace perfiso
