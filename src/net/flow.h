// Flow-level network modeling primitives shared by NetDev and Fabric.
//
// A Flow is one message in flight (an RPC request/response or a bulk block):
// it serializes hop by hop through the links on its path — source NIC TX,
// optionally the ToR uplink pair, then the destination NIC RX — and fires a
// completion callback when the last byte arrives. Traffic is classed like CPU
// time (§3.2: secondary outbound traffic is "throttled and marked
// low-priority"): primary flows preempt secondary flows in NIC TX queues, and
// secondary flows must drain the machine's egress token bucket.
#ifndef PERFISO_SRC_NET_FLOW_H_
#define PERFISO_SRC_NET_FLOW_H_

#include <cstdint>
#include <functional>

#include "src/util/sim_time.h"

namespace perfiso {

// Which service class a flow belongs to. Mirrors TenantClass, but the network
// only distinguishes the two classes a NIC can mark (there is no "OS" band).
enum class NetClass { kPrimary = 0, kSecondary = 1 };

inline constexpr int kNumNetClasses = 2;
const char* NetClassName(NetClass net_class);

// One message in flight. Owned by the Fabric; links see it by pointer while
// it sits in their queues.
struct Flow {
  using DeliveredFn = std::function<void(SimTime)>;

  uint64_t id = 0;
  int src = -1;  // fabric endpoint ids
  int dst = -1;
  int64_t bytes = 0;
  NetClass net_class = NetClass::kPrimary;
  SimTime submit_time = 0;
  DeliveredFn on_delivered;
  // Query trace this flow belongs to (0 = untraced): each hop becomes a
  // serialization/transit span on the corresponding fabric track.
  uint64_t trace_ctx = 0;
  SimTime hop_enter = 0;  // when the flow entered its current hop
  // Partitioned runs pay the propagation delay on the cross-partition mailbox
  // hop (it IS the PDES lookahead), so the downlink->RX transition must not
  // charge it a second time.
  bool propagation_paid = false;

  // Per-hop serialization state, reset by each link when the flow enters it.
  int64_t remaining_on_link = 0;
  uint64_t arrival_seq = 0;  // FIFO order within a link
};

}  // namespace perfiso

#endif  // PERFISO_SRC_NET_FLOW_H_
