// NetDev: one machine's NIC, modeled as a pair of serializing links.
//
// The TX side is what a host can actually control and is where PerfIso's
// network isolation lives (§3.2): two strict-priority queues (primary
// preempts secondary at chunk granularity, the qdisc analogue of marking
// batch traffic low-priority) and an egress token bucket that secondary
// chunks must drain before they reach the wire — the static egress cap. The
// RX side is plain FIFO serialization at line rate: once traffic is on the
// wire the fabric does not honor host priorities, which is exactly why the
// egress cap is needed end to end (a network bully hurts its *victims'*
// ingress, not its own egress).
#ifndef PERFISO_SRC_NET_NETDEV_H_
#define PERFISO_SRC_NET_NETDEV_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/net/flow.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/token_bucket.h"

namespace perfiso {

// A store-and-forward serializing element: flows queue, the link transmits
// one chunk at a time at `rate_bps`, and a flow's on_link_done fires when its
// last chunk leaves. Chunking is what makes priority preemptive in practice —
// a primary flow waits at most one secondary chunk, never a whole bulk block.
class Link {
 public:
  enum class Discipline {
    kStrictPriority,  // NIC TX: primary queue always served first
    kFifo,            // switch ports / NIC RX: arrival order, class-blind
  };

  // Returns the current secondary egress bucket, or null when uncapped. A
  // provider (rather than a raw pointer) lets PerfIso install/clear the cap
  // at runtime; it is consulted before every secondary chunk.
  using EgressBucketFn = std::function<TokenBucket*()>;
  using FlowDoneFn = std::function<void(Flow*, SimTime)>;

  Link(Simulator* sim, double rate_bps, int64_t chunk_bytes, Discipline discipline,
       std::string name);

  // A Link may die with a token-starved wake still armed (e.g. a fabric torn
  // down mid-run); the wake captures `this`, so it must not outlive us.
  ~Link() { sim_->CancelOwned(retry_event_); }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Installs the secondary shaper (TX links; independent of the discipline —
  // on a FIFO TX link a token-starved secondary head blocks primary egress
  // behind it, which is the point of having priority queues).
  void SetEgressBucketProvider(EgressBucketFn provider) { egress_bucket_ = std::move(provider); }

  // Enqueues `flow` for serialization; `done` fires once all of
  // `flow->bytes` have left the link. The flow must outlive the call.
  void Enqueue(Flow* flow, FlowDoneFn done);

  double rate_bps() const { return rate_bps_; }
  const std::string& name() const { return name_; }
  int64_t QueuedBytes() const { return queued_bytes_; }

  // Fault injection (link degradation): chunks *started* while the multiplier
  // is in effect serialize at `fraction` of nominal rate (a chunk already on
  // the wire keeps its original duration). 1.0 restores nominal; the healthy
  // path skips the scaling arithmetic so no-fault runs stay bit-identical.
  void SetRateMultiplier(double fraction) { rate_multiplier_ = fraction; }
  double rate_multiplier() const { return rate_multiplier_; }

  struct LinkStats {
    int64_t bytes_serialized[kNumNetClasses] = {0, 0};
    int64_t flows_completed[kNumNetClasses] = {0, 0};
    int64_t chunks = 0;
    // High-water mark of bytes waiting in the queues — the incast gauge.
    int64_t max_queued_bytes = 0;
    SimDuration busy_ns = 0;
  };
  const LinkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LinkStats{}; }

 private:
  struct Entry {
    Flow* flow = nullptr;
    FlowDoneFn done;
  };

  // Picks the queue to serve next per the discipline; -1 when both are empty.
  int PickQueue() const;
  void Pump();
  void OnChunkDone(int queue, int64_t chunk);
  // Nominal rate scaled by the fault multiplier (branch-free on 1.0).
  double EffectiveRate() const {
    return rate_multiplier_ == 1.0 ? rate_bps_ : rate_bps_ * rate_multiplier_;
  }

  Simulator* sim_;
  double rate_bps_;
  double rate_multiplier_ = 1.0;
  int64_t chunk_bytes_;
  Discipline discipline_;
  std::string name_;
  EgressBucketFn egress_bucket_;
  std::array<std::deque<Entry>, kNumNetClasses> queues_;
  uint64_t next_arrival_seq_ = 0;
  int64_t queued_bytes_ = 0;
  bool busy_ = false;
  // Pending wake for a token-starved secondary head. If a chunk starts first
  // (priority traffic, or PerfIso raised the cap and a re-pump got through),
  // the stale wake is cancelled instead of firing as a no-op; if tokens
  // become due earlier, it is tightened in place.
  EventHandle retry_event_;
  LinkStats stats_;
};

// The two directions of one machine's NIC. `priority_tx` false degrades the
// TX side to FIFO — the "no priority classes" ablation, where a blocked or
// bulky secondary flow head-of-line-blocks the machine's own primary egress.
class NetDev {
 public:
  NetDev(Simulator* sim, double link_rate_bps, int64_t chunk_bytes, const std::string& name,
         bool priority_tx = true);

  Link& tx() { return tx_; }
  Link& rx() { return rx_; }
  const Link& tx() const { return tx_; }
  const Link& rx() const { return rx_; }

  void SetEgressBucketProvider(Link::EgressBucketFn provider) {
    tx_.SetEgressBucketProvider(std::move(provider));
  }

 private:
  Link tx_;
  Link rx_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_NET_NETDEV_H_
