// Key=value configuration parsing.
//
// PerfIso reads its limits from cluster-wide configuration files distributed
// by Autopilot (§4). The format here is a flat `key = value` file with `#`
// comments; keys are dotted (e.g. "cpu.buffer_cores"). Values are typed at
// access time with explicit error reporting.
#ifndef PERFISO_SRC_UTIL_CONFIG_H_
#define PERFISO_SRC_UTIL_CONFIG_H_

#include <map>
#include <string>

#include "src/util/status.h"

namespace perfiso {

// Shortest text that parses back to exactly `value` (std::to_chars): config
// round trips must describe the same experiment, not a 6-digit neighbor.
// Used by ConfigMap::SetDouble and every other serialized-double surface.
std::string FormatDouble(double value);

class ConfigMap {
 public:
  ConfigMap() = default;

  // Parses `text`; returns error with line number on malformed input.
  static StatusOr<ConfigMap> Parse(const std::string& text);

  // Loads and parses a file from disk.
  static StatusOr<ConfigMap> LoadFile(const std::string& path);

  // Serializes back to the text format (sorted by key).
  std::string Serialize() const;

  // Writes Serialize() to `path` atomically (tmp file + rename).
  Status WriteFile(const std::string& path) const;

  void SetString(const std::string& key, std::string value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  // Typed getters: return the default when the key is absent, and an error
  // Status only on present-but-malformed values.
  StatusOr<std::string> GetString(const std::string& key, const std::string& def) const;
  StatusOr<int64_t> GetInt(const std::string& key, int64_t def) const;
  StatusOr<double> GetDouble(const std::string& key, double def) const;
  StatusOr<bool> GetBool(const std::string& key, bool def) const;

  // Unchecked variants used where config was validated up front.
  int64_t GetIntOr(const std::string& key, int64_t def) const;
  double GetDoubleOr(const std::string& key, double def) const;
  bool GetBoolOr(const std::string& key, bool def) const;
  std::string GetStringOr(const std::string& key, const std::string& def) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_CONFIG_H_
