// Simulation time: 64-bit signed nanoseconds since simulation start.
//
// A plain integer (not std::chrono) keeps event-queue keys trivially
// comparable and the arithmetic explicit; helper constants keep call sites
// readable (e.g. `5 * kMicrosecond`).
#ifndef PERFISO_SRC_UTIL_SIM_TIME_H_
#define PERFISO_SRC_UTIL_SIM_TIME_H_

#include <cstdint>

namespace perfiso {

using SimTime = int64_t;      // absolute, ns
using SimDuration = int64_t;  // relative, ns

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;

inline constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
inline constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / kMicrosecond; }
inline constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

inline constexpr SimDuration FromMillis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
inline constexpr SimDuration FromMicros(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}
inline constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_SIM_TIME_H_
