#include "src/util/logging.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace perfiso {
namespace {

LogLevel g_min_level = LogLevel::kInfo;
LogSink g_sink;  // empty => stderr
std::mutex g_sink_mutex;

void DefaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetMinLogLevel(LogLevel level) { g_min_level = level; }
LogLevel MinLogLevel() { return g_min_level; }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace {
thread_local SimClockRegistration t_sim_clock;
}  // namespace

SimClockRegistration SetThreadSimClock(uint64_t (*fn)(const void*), const void* ctx) {
  const SimClockRegistration previous = t_sim_clock;
  t_sim_clock = SimClockRegistration{fn, ctx};
  return previous;
}

void ClearThreadSimClock(SimClockRegistration previous) { t_sim_clock = previous; }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  if (t_sim_clock.fn != nullptr) {
    const uint64_t now_ns = t_sim_clock.fn(t_sim_clock.ctx);
    char stamp[48];
    std::snprintf(stamp, sizeof(stamp), "[t=%.6fs] ",
                  static_cast<double>(now_ns) / 1e9);
    stream_ << stamp;
  }
  // Strip the directory part; file:line is enough to locate the statement.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level_, stream_.str());
  } else {
    DefaultSink(level_, stream_.str());
  }
}

}  // namespace perfiso
