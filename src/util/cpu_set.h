// CpuSet: a fixed-capacity bitmask of logical CPU ids.
//
// This is the currency of CPU blind isolation: the idle-core "syscall"
// returns one, and job-object affinity is set from one. Supports up to
// kMaxCpus logical CPUs (the paper's machines have 48; we leave headroom).
#ifndef PERFISO_SRC_UTIL_CPU_SET_H_
#define PERFISO_SRC_UTIL_CPU_SET_H_

#include <array>
#include <cstdint>
#include <string>

namespace perfiso {

class CpuSet {
 public:
  static constexpr int kMaxCpus = 256;
  static constexpr int kWords = kMaxCpus / 64;

  // Empty set.
  constexpr CpuSet() : words_{} {}

  // Set containing CPUs [0, n).
  static CpuSet FirstN(int n);

  // Set containing CPUs [begin, end).
  static CpuSet Range(int begin, int end);

  // Set containing exactly `cpu`.
  static CpuSet Single(int cpu);

  // Set built from the low 64 bits (convenient for <=64-core machines).
  static CpuSet FromMask64(uint64_t mask);

  void Set(int cpu);
  void Clear(int cpu);
  bool Test(int cpu) const;

  // Number of CPUs in the set.
  int Count() const;
  bool Empty() const { return Count() == 0; }

  // Lowest / highest set CPU id, or -1 if empty.
  int Lowest() const;
  int Highest() const;

  // Lowest set CPU id strictly greater than `cpu`, or -1.
  int NextAfter(int cpu) const;

  CpuSet operator|(const CpuSet& other) const;
  CpuSet operator&(const CpuSet& other) const;
  CpuSet operator~() const;  // complement over [0, kMaxCpus)
  CpuSet Minus(const CpuSet& other) const;

  bool operator==(const CpuSet& other) const { return words_ == other.words_; }
  bool operator!=(const CpuSet& other) const { return !(*this == other); }

  // Low 64 bits, for machines with <= 64 logical CPUs.
  uint64_t Mask64() const { return words_[0]; }

  // Human-readable form, e.g. "0-3,8,10-11" ("(empty)" when empty).
  std::string ToString() const;

 private:
  std::array<uint64_t, kWords> words_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_CPU_SET_H_
