// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** — fast, high-quality, reproducible across platforms (unlike
// std::normal_distribution etc., whose output is implementation-defined).
// All distribution sampling used by the simulator lives here so experiment
// results are bit-identical for a given seed.
#ifndef PERFISO_SRC_UTIL_RNG_H_
#define PERFISO_SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace perfiso {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Normal(double mean, double stddev);

  // Log-normal parameterized by the *underlying* normal's mu/sigma.
  // Median = exp(mu).
  double LogNormal(double mu, double sigma);

  // Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  // Pareto (bounded below by `scale`, shape `alpha` > 0).
  double Pareto(double scale, double alpha);

  // Splits off an independently-seeded child stream; used to give each
  // simulated machine / tenant its own stream so runs stay reproducible when
  // components are added or reordered.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_RNG_H_
