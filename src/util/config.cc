#include "src/util/config.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace perfiso {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

StatusOr<ConfigMap> ConfigMap::Parse(const std::string& text) {
  ConfigMap map;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("config line " + std::to_string(line_number) +
                                  ": missing '=' in \"" + trimmed + "\"");
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      return InvalidArgumentError("config line " + std::to_string(line_number) + ": empty key");
    }
    map.entries_[key] = value;
  }
  return map;
}

StatusOr<ConfigMap> ConfigMap::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string ConfigMap::Serialize() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key + " = " + value + "\n";
  }
  return out;
}

Status ConfigMap::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return InternalError("cannot open for write: " + tmp);
    }
    out << Serialize();
    if (!out.good()) {
      return InternalError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError(std::string("rename failed: ") + std::strerror(errno));
  }
  return OkStatus();
}

void ConfigMap::SetString(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}
void ConfigMap::SetInt(const std::string& key, int64_t value) {
  entries_[key] = std::to_string(value);
}
std::string FormatDouble(double value) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

void ConfigMap::SetDouble(const std::string& key, double value) {
  entries_[key] = FormatDouble(value);
}
void ConfigMap::SetBool(const std::string& key, bool value) {
  entries_[key] = value ? "true" : "false";
}

bool ConfigMap::Has(const std::string& key) const { return entries_.count(key) > 0; }

StatusOr<std::string> ConfigMap::GetString(const std::string& key, const std::string& def) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? def : it->second;
}

StatusOr<int64_t> ConfigMap::GetInt(const std::string& key, int64_t def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("config key \"" + key + "\": not an integer: " + it->second);
  }
  return value;
}

StatusOr<double> ConfigMap::GetDouble(const std::string& key, double def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("config key \"" + key + "\": not a number: " + it->second);
  }
  return value;
}

StatusOr<bool> ConfigMap::GetBool(const std::string& key, bool def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  if (it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") {
    return false;
  }
  return InvalidArgumentError("config key \"" + key + "\": not a bool: " + it->second);
}

int64_t ConfigMap::GetIntOr(const std::string& key, int64_t def) const {
  auto result = GetInt(key, def);
  return result.ok() ? *result : def;
}
double ConfigMap::GetDoubleOr(const std::string& key, double def) const {
  auto result = GetDouble(key, def);
  return result.ok() ? *result : def;
}
bool ConfigMap::GetBoolOr(const std::string& key, bool def) const {
  auto result = GetBool(key, def);
  return result.ok() ? *result : def;
}
std::string ConfigMap::GetStringOr(const std::string& key, const std::string& def) const {
  auto result = GetString(key, def);
  return result.ok() ? *result : def;
}

}  // namespace perfiso
