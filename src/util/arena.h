// Slab-backed block recycling for fixed-shape hot-path state.
//
// SlabArena hands out fixed-size blocks carved from slabs and recycles them
// through per-size free lists, so a steady-state allocate/free churn (one
// QueryState per query, one control block per shared_ptr) touches the real
// heap only while the arena warms up. It is deliberately NOT a general
// allocator:
//   * blocks are bucketed by exact (rounded) size — the expected use is a
//     couple of distinct shapes per arena, so the bucket scan is a short
//     linear walk;
//   * nothing is ever returned to the OS until the arena dies — freed blocks
//     park on their bucket's free list;
//   * single-threaded by design, like everything else in the simulation.
//
// ArenaAllocator<T> adapts an arena to the std allocator interface so
// std::allocate_shared can place an object and its control block in one
// recycled arena block. The allocator holds the arena by shared_ptr, and
// std::allocate_shared stores a copy of the allocator inside the control
// block itself — so a state object that outlives the arena's owner (a query
// completion delivered after its server was torn down) keeps the arena alive
// exactly as long as any block is outstanding. This is the lifetime that made
// the historical "snippet chain" shared_ptr-cycle leak dangerous; the
// allocator shape makes it impossible to get wrong at a call site.
#ifndef PERFISO_SRC_UTIL_ARENA_H_
#define PERFISO_SRC_UTIL_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace perfiso {

class SlabArena {
 public:
  struct Stats {
    uint64_t slab_allocs = 0;     // heap hits: slabs carved into blocks
    uint64_t oversize_allocs = 0; // heap hits: over-aligned or huge requests
    uint64_t block_reuses = 0;    // allocations served from a free list
  };

  explicit SlabArena(size_t blocks_per_slab = 64) : blocks_per_slab_(blocks_per_slab) {
    assert(blocks_per_slab_ > 0);
  }

  ~SlabArena() {
    for (auto& oversize : oversize_blocks_) {
      ::operator delete(oversize.ptr, std::align_val_t(oversize.align));
    }
  }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  void* Alloc(size_t bytes, size_t align) {
    if (align > alignof(std::max_align_t) || bytes > kMaxBlockBytes) {
      // Rare shape; serve it straight from the heap but keep ownership here
      // so Free() stays uniform.
      ++stats_.oversize_allocs;
      void* p = ::operator new(bytes, std::align_val_t(align));
      oversize_blocks_.push_back(Oversize{p, align});
      return p;
    }
    Bucket& bucket = BucketFor(RoundUp(bytes));
    if (bucket.free_blocks.empty()) {
      Refill(bucket);
    } else {
      ++stats_.block_reuses;
    }
    void* p = bucket.free_blocks.back();
    bucket.free_blocks.pop_back();
    return p;
  }

  void Free(void* p, size_t bytes, size_t align) {
    if (p == nullptr) {
      return;
    }
    if (align > alignof(std::max_align_t) || bytes > kMaxBlockBytes) {
      for (size_t i = 0; i < oversize_blocks_.size(); ++i) {
        if (oversize_blocks_[i].ptr == p) {
          ::operator delete(p, std::align_val_t(oversize_blocks_[i].align));
          oversize_blocks_[i] = oversize_blocks_.back();
          oversize_blocks_.pop_back();
          return;
        }
      }
      assert(false && "oversize free of a pointer this arena never produced");
      return;
    }
    BucketFor(RoundUp(bytes)).free_blocks.push_back(p);
  }

  const Stats& stats() const { return stats_; }

 private:
  // Every block is a multiple of the strictest fundamental alignment, so any
  // block satisfies any fundamental-aligned request of its size class.
  static constexpr size_t kBlockQuantum = alignof(std::max_align_t);
  // Past this, slab batching buys nothing; go to the heap per request.
  static constexpr size_t kMaxBlockBytes = 64 * 1024;

  struct Bucket {
    size_t bytes = 0;
    std::vector<void*> free_blocks;
  };
  struct Oversize {
    void* ptr;
    size_t align;
  };

  static size_t RoundUp(size_t bytes) {
    return ((bytes == 0 ? 1 : bytes) + kBlockQuantum - 1) / kBlockQuantum * kBlockQuantum;
  }

  Bucket& BucketFor(size_t rounded_bytes) {
    for (Bucket& bucket : buckets_) {
      if (bucket.bytes == rounded_bytes) {
        return bucket;
      }
    }
    buckets_.push_back(Bucket{rounded_bytes, {}});
    return buckets_.back();
  }

  void Refill(Bucket& bucket) {
    ++stats_.slab_allocs;
    // operator new[] guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__, which is at
    // least alignof(std::max_align_t); quantum-multiple offsets keep it.
    slabs_.push_back(std::make_unique<std::byte[]>(bucket.bytes * blocks_per_slab_));
    std::byte* base = slabs_.back().get();
    bucket.free_blocks.reserve(bucket.free_blocks.size() + blocks_per_slab_);
    // Push in reverse so blocks hand out in ascending address order.
    for (size_t i = blocks_per_slab_; i > 0; --i) {
      bucket.free_blocks.push_back(base + (i - 1) * bucket.bytes);
    }
  }

  size_t blocks_per_slab_;
  Stats stats_;
  std::vector<Bucket> buckets_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<Oversize> oversize_blocks_;
};

// std-allocator adapter over a shared SlabArena. Copies (including the one
// std::allocate_shared embeds in the control block) share the arena and keep
// it alive.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<SlabArena> arena) : arena_(std::move(arena)) {
    assert(arena_ != nullptr);
  }

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) { return static_cast<T*>(arena_->Alloc(n * sizeof(T), alignof(T))); }
  void deallocate(T* p, size_t n) { arena_->Free(p, n * sizeof(T), alignof(T)); }

  const std::shared_ptr<SlabArena>& arena() const { return arena_; }

 private:
  std::shared_ptr<SlabArena> arena_;
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) {
  return a.arena() == b.arena();
}
template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) {
  return !(a == b);
}

// Recycles whole vectors, preserving their heap capacity across uses — the
// companion to SlabArena for state whose size varies per use (per-chunk slots
// sized by query fanout). Get() hands back a cleared vector resized to n;
// Put() parks the carcass for the next Get().
template <typename T>
class VectorPool {
 public:
  struct Stats {
    uint64_t reuses = 0;
    uint64_t fresh = 0;
  };

  std::vector<T> Get(size_t n) {
    std::vector<T> v;
    if (!parked_.empty()) {
      v = std::move(parked_.back());
      parked_.pop_back();
      ++stats_.reuses;
    } else {
      ++stats_.fresh;
    }
    v.clear();
    v.resize(n);
    return v;
  }

  void Put(std::vector<T>&& v) {
    if (parked_.size() < kMaxParked) {
      parked_.push_back(std::move(v));
    }
  }

  const Stats& stats() const { return stats_; }

 private:
  // Bounds pool growth under a burst; beyond this, carcasses just die.
  static constexpr size_t kMaxParked = 1024;

  Stats stats_;
  std::vector<std::vector<T>> parked_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_ARENA_H_
