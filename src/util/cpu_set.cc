#include "src/util/cpu_set.h"

#include <bit>
#include <cassert>

namespace perfiso {

CpuSet CpuSet::FirstN(int n) { return Range(0, n); }

CpuSet CpuSet::Range(int begin, int end) {
  assert(begin >= 0 && end <= kMaxCpus && begin <= end);
  CpuSet set;
  for (int cpu = begin; cpu < end; ++cpu) {
    set.Set(cpu);
  }
  return set;
}

CpuSet CpuSet::Single(int cpu) {
  CpuSet set;
  set.Set(cpu);
  return set;
}

CpuSet CpuSet::FromMask64(uint64_t mask) {
  CpuSet set;
  set.words_[0] = mask;
  return set;
}

void CpuSet::Set(int cpu) {
  assert(cpu >= 0 && cpu < kMaxCpus);
  words_[cpu / 64] |= uint64_t{1} << (cpu % 64);
}

void CpuSet::Clear(int cpu) {
  assert(cpu >= 0 && cpu < kMaxCpus);
  words_[cpu / 64] &= ~(uint64_t{1} << (cpu % 64));
}

bool CpuSet::Test(int cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) {
    return false;
  }
  return (words_[cpu / 64] >> (cpu % 64)) & 1;
}

int CpuSet::Count() const {
  int count = 0;
  for (uint64_t word : words_) {
    count += std::popcount(word);
  }
  return count;
}

int CpuSet::Lowest() const {
  for (int w = 0; w < kWords; ++w) {
    if (words_[w] != 0) {
      return w * 64 + std::countr_zero(words_[w]);
    }
  }
  return -1;
}

int CpuSet::Highest() const {
  for (int w = kWords - 1; w >= 0; --w) {
    if (words_[w] != 0) {
      return w * 64 + 63 - std::countl_zero(words_[w]);
    }
  }
  return -1;
}

int CpuSet::NextAfter(int cpu) const {
  for (int candidate = cpu + 1; candidate < kMaxCpus; ++candidate) {
    const int word = candidate / 64;
    if (words_[word] == 0) {
      candidate = word * 64 + 63;  // skip the empty word
      continue;
    }
    if (Test(candidate)) {
      return candidate;
    }
  }
  return -1;
}

CpuSet CpuSet::operator|(const CpuSet& other) const {
  CpuSet out;
  for (int w = 0; w < kWords; ++w) {
    out.words_[w] = words_[w] | other.words_[w];
  }
  return out;
}

CpuSet CpuSet::operator&(const CpuSet& other) const {
  CpuSet out;
  for (int w = 0; w < kWords; ++w) {
    out.words_[w] = words_[w] & other.words_[w];
  }
  return out;
}

CpuSet CpuSet::operator~() const {
  CpuSet out;
  for (int w = 0; w < kWords; ++w) {
    out.words_[w] = ~words_[w];
  }
  return out;
}

CpuSet CpuSet::Minus(const CpuSet& other) const { return *this & ~other; }

std::string CpuSet::ToString() const {
  if (Empty()) {
    return "(empty)";
  }
  std::string out;
  int run_start = -1;
  int prev = -2;
  auto flush = [&](int run_end) {
    if (run_start < 0) {
      return;
    }
    if (!out.empty()) {
      out += ",";
    }
    out += std::to_string(run_start);
    if (run_end > run_start) {
      out += "-" + std::to_string(run_end);
    }
  };
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    if (!Test(cpu)) {
      continue;
    }
    if (cpu != prev + 1) {
      flush(prev);
      run_start = cpu;
    }
    prev = cpu;
  }
  flush(prev);
  return out;
}

}  // namespace perfiso
