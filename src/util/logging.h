// Minimal leveled logging for the library and its tools.
//
// Usage: PERFISO_LOG(kInfo) << "controller step " << n;
// The default sink writes to stderr; tests can install a capture sink.
#ifndef PERFISO_SRC_UTIL_LOGGING_H_
#define PERFISO_SRC_UTIL_LOGGING_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace perfiso {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

// Global minimum level; messages below it are dropped cheaply.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

// Replaces the log sink. Passing nullptr restores the stderr sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

// Sim-time log stamps. When a simulator is driving the current thread it
// registers a clock here, and every message logged from that thread is
// prefixed with the current simulated time ("[t=1.250000s] "); wall-clock
// stamps are meaningless in-sim. The registration is thread-local so the
// parallel bench runner's per-thread simulators stamp independently.
//
// `fn(ctx)` must return the current sim time in nanoseconds. The returned
// registration restores the previous clock when passed back to
// ClearThreadSimClock, so nested simulators (a sim constructed inside an
// event of another) unwind correctly.
struct SimClockRegistration {
  uint64_t (*fn)(const void*) = nullptr;
  const void* ctx = nullptr;
};
SimClockRegistration SetThreadSimClock(uint64_t (*fn)(const void*), const void* ctx);
void ClearThreadSimClock(SimClockRegistration previous);

// Internal: one log statement. Flushes to the sink on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace perfiso

#define PERFISO_LOG(severity)                                              \
  if (::perfiso::LogLevel::severity < ::perfiso::MinLogLevel()) {          \
  } else                                                                   \
    ::perfiso::LogMessage(::perfiso::LogLevel::severity, __FILE__, __LINE__).stream()

#endif  // PERFISO_SRC_UTIL_LOGGING_H_
