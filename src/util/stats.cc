#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace perfiso {

void LatencyRecorder::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

uint64_t LatencyRecorder::Digest() const {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  const auto mix = [&hash](uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  mix(samples_.size());
  for (double sample : samples_) {
    uint64_t bits;
    std::memcpy(&bits, &sample, sizeof(bits));
    mix(bits);
  }
  return hash;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.samples_.empty()) {
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void LatencyRecorder::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = true;
  sum_ = 0;
}

double LatencyRecorder::Min() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return sorted_.front();
}

double LatencyRecorder::Max() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return sorted_.back();
}

double LatencyRecorder::Mean() const {
  return samples_.empty() ? 0 : sum_ / static_cast<double>(samples_.size());
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  assert(p >= 0 && p <= 100);
  EnsureSorted();
  if (p <= 0) {
    return sorted_.front();
  }
  // Nearest-rank: smallest value with at least ceil(p/100 * N) samples <= it.
  const size_t n = sorted_.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  return sorted_[rank - 1];
}

void LatencyRecorder::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

MovingAverage::MovingAverage(size_t window) : window_(window) { assert(window > 0); }

void MovingAverage::Add(double sample) {
  window_samples_.push_back(sample);
  sum_ += sample;
  if (window_samples_.size() > window_) {
    sum_ -= window_samples_.front();
    window_samples_.pop_front();
  }
}

double MovingAverage::Value() const {
  if (window_samples_.empty()) {
    return 0;
  }
  return sum_ / static_cast<double>(window_samples_.size());
}

void MeanVar::Add(double sample) {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double MeanVar::Variance() const {
  return count_ < 2 ? 0 : m2_ / static_cast<double>(count_ - 1);
}

double MeanVar::StdDev() const { return std::sqrt(Variance()); }

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double sample) {
  size_t index;
  if (sample < lo_) {
    index = 0;
  } else if (sample >= hi_) {
    index = counts_.size() - 1;
  } else {
    index = static_cast<size_t>((sample - lo_) / width_);
    if (index >= counts_.size()) {
      index = counts_.size() - 1;
    }
  }
  ++counts_[index];
  ++total_;
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::ApproxPercentile(double p) const {
  if (total_ == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return BucketLow(i) + width_;  // upper edge of the bucket
    }
  }
  return hi_;
}

HistogramSnapshot SnapshotHistogram(const LatencyRecorder& recorder, double lo,
                                    double hi, size_t buckets) {
  assert(hi > lo && buckets > 0);
  HistogramSnapshot snap;
  snap.lo = lo;
  snap.hi = hi;
  snap.count = recorder.Count();
  snap.min = recorder.Min();
  snap.max = recorder.Max();
  snap.mean = recorder.Mean();
  snap.p50 = recorder.P50();
  snap.p95 = recorder.P95();
  snap.p99 = recorder.P99();
  Histogram hist(lo, hi, buckets);
  for (double sample : recorder.samples()) {
    hist.Add(sample);
  }
  snap.bucket_counts.reserve(buckets);
  for (size_t i = 0; i < buckets; ++i) {
    snap.bucket_counts.push_back(hist.BucketCount(i));
  }
  return snap;
}

}  // namespace perfiso
