#include "src/util/rng.h"

#include <cassert>

namespace perfiso {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Lemire-style rejection-free is overkill here; modulo bias is negligible
  // for the ranges the simulator uses (< 2^32), but reject to stay exact.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) {
    value = Next();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Pareto(double scale, double alpha) {
  assert(scale > 0 && alpha > 0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return scale / std::pow(u, 1.0 / alpha);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace perfiso
