// Online statistics used to measure latency distributions and utilization.
//
// LatencyRecorder keeps exact samples (simulation runs are bounded) so
// percentile queries match the paper's reporting exactly. MovingAverage and
// MeanVar provide the smoothing the PerfIso I/O throttler needs.
#ifndef PERFISO_SRC_UTIL_STATS_H_
#define PERFISO_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace perfiso {

// Records scalar samples and answers percentile queries exactly.
// Samples are stored raw; Percentile() sorts lazily and caches.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  void Add(double sample);
  void Clear();

  // Appends `other`'s samples in their recorded order after this recorder's
  // own. Merging preserves digest semantics: merging B into A yields the same
  // digest as one recorder that saw A's samples then B's. Used by the
  // timeseries sampler and the parallel bench runner to combine shards.
  void Merge(const LatencyRecorder& other);

  size_t Count() const { return samples_.size(); }
  double Min() const;
  double Max() const;
  double Mean() const;

  // p in [0, 100]. Uses the nearest-rank method. Returns 0 when empty.
  double Percentile(double p) const;

  // Convenience accessors matching the paper's reported metrics.
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  // Order-sensitive FNV-1a digest over the raw sample bit patterns: two
  // recorders digest equal iff they saw the same samples in the same order.
  // Used by the determinism tests to compare whole runs bit-exactly (the
  // parallel bench runner's contract, DESIGN.md).
  uint64_t Digest() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = true;
  double sum_ = 0;
};

// Fixed-size sliding-window average (the paper's I/O throttler uses a moving
// average of measured IOPS, §4.1).
class MovingAverage {
 public:
  explicit MovingAverage(size_t window);

  void Add(double sample);
  double Value() const;      // average over the current window (0 when empty)
  size_t Count() const { return window_samples_.size(); }
  bool Full() const { return window_samples_.size() == window_; }

 private:
  size_t window_;
  std::deque<double> window_samples_;
  double sum_ = 0;
};

// Welford online mean/variance.
class MeanVar {
 public:
  void Add(double sample);
  size_t Count() const { return count_; }
  double Mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

// Fixed-bucket histogram for coarse distribution summaries (used by benches
// to print latency CDFs without shipping full sample vectors).
class Histogram {
 public:
  // Buckets span [lo, hi) uniformly; samples outside clamp to the end buckets.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double sample);
  size_t Count() const { return total_; }
  uint64_t BucketCount(size_t i) const { return counts_.at(i); }
  size_t NumBuckets() const { return counts_.size(); }
  double BucketLow(size_t i) const;

  // Approximate percentile from bucket boundaries (nearest-rank on buckets).
  double ApproxPercentile(double p) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  size_t total_ = 0;
};

// Point-in-time copy of a recorder's distribution, cheap to store in a
// metrics timeseries: bucket counts plus the exact summary stats at snapshot
// time (the recorder itself keeps the raw samples).
struct HistogramSnapshot {
  size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::vector<uint64_t> bucket_counts;  // uniform over [lo, hi)
  double lo = 0;
  double hi = 0;
};

// Builds a fixed-bucket snapshot of `recorder` over [lo, hi) with `buckets`
// uniform buckets (out-of-range samples clamp to the end buckets).
HistogramSnapshot SnapshotHistogram(const LatencyRecorder& recorder, double lo,
                                    double hi, size_t buckets);

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_STATS_H_
