// Lightweight error-propagation types used across module boundaries.
//
// Following the os-systems guides we do not throw exceptions across library
// boundaries; fallible operations return Status (or StatusOr<T>) instead.
#ifndef PERFISO_SRC_UTIL_STATUS_H_
#define PERFISO_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace perfiso {

// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kPermissionDenied,
  kUnimplemented,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// Value-semantic result of an operation: either OK or a code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status PermissionDeniedError(std::string message);
Status UnimplementedError(std::string message);

// Either a value of T or a non-OK Status. Accessing value() on error aborts,
// so callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `expr` (a Status) and returns it from the enclosing function on error.
#define PERFISO_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::perfiso::Status perfiso_status_tmp = (expr);   \
    if (!perfiso_status_tmp.ok()) {                  \
      return perfiso_status_tmp;                     \
    }                                                \
  } while (0)

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_STATUS_H_
