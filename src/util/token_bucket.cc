#include "src/util/token_bucket.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace perfiso {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec), burst_(burst), tokens_(burst) {
  assert(rate_per_sec > 0 && burst > 0);
}

void TokenBucket::Refill(SimTime now) {
  if (now <= last_refill_) {
    return;
  }
  const double elapsed_sec = ToSeconds(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
  last_refill_ = now;
}

bool TokenBucket::TryConsume(double tokens, SimTime now) {
  Refill(now);
  if (tokens_ >= tokens) {
    tokens_ -= tokens;
    return true;
  }
  return false;
}

SimTime TokenBucket::NextAvailable(double tokens, SimTime now) {
  Refill(now);
  if (tokens_ >= tokens) {
    return now;
  }
  const double deficit = tokens - tokens_;
  const double wait_sec = deficit / rate_per_sec_;
  return now + static_cast<SimDuration>(std::ceil(wait_sec * static_cast<double>(kSecond)));
}

void TokenBucket::ForceConsume(double tokens, SimTime now) {
  Refill(now);
  tokens_ -= tokens;
}

double TokenBucket::AvailableAt(SimTime now) {
  Refill(now);
  return tokens_;
}

void TokenBucket::set_rate_per_sec(double rate) {
  assert(rate > 0);
  rate_per_sec_ = rate;
}

}  // namespace perfiso
