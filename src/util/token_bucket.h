// Token bucket rate limiter.
//
// Used by the egress-network throttler (§3.2: secondary outbound traffic is
// throttled and marked low-priority) and by disk bandwidth caps. Time is
// supplied by the caller so the same code runs in simulation and live.
#ifndef PERFISO_SRC_UTIL_TOKEN_BUCKET_H_
#define PERFISO_SRC_UTIL_TOKEN_BUCKET_H_

#include <cstdint>

#include "src/util/sim_time.h"

namespace perfiso {

class TokenBucket {
 public:
  // rate: tokens per second; burst: bucket capacity in tokens.
  TokenBucket(double rate_per_sec, double burst);

  // Attempts to consume `tokens` at time `now`. Returns true on success.
  bool TryConsume(double tokens, SimTime now);

  // Earliest time at which `tokens` will be available (now if already).
  SimTime NextAvailable(double tokens, SimTime now);

  // Unconditionally consumes (balance may go negative) — used when a request
  // has already been admitted but must be charged.
  void ForceConsume(double tokens, SimTime now);

  double AvailableAt(SimTime now);
  double rate_per_sec() const { return rate_per_sec_; }
  double burst() const { return burst_; }
  void set_rate_per_sec(double rate);

 private:
  void Refill(SimTime now);

  double rate_per_sec_;
  double burst_;
  double tokens_;
  SimTime last_refill_ = 0;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_UTIL_TOKEN_BUCKET_H_
