// PerfIsoController: the user-mode service of §4.
//
// Polling and updating are split: utilization is polled in a tight loop, but
// control knobs are only touched when the measured state demands a change
// ("constantly updating certain settings can become harmful", §4.1). The
// controller is platform-agnostic — the caller drives Poll(), either from a
// simulator PeriodicTask or from a real-time thread.
#ifndef PERFISO_SRC_PERFISO_CONTROLLER_H_
#define PERFISO_SRC_PERFISO_CONTROLLER_H_

#include <memory>
#include <optional>

#include "src/obs/trace.h"
#include "src/perfiso/io_throttler.h"
#include "src/perfiso/perfiso_config.h"
#include "src/perfiso/policy.h"
#include "src/platform/platform.h"
#include "src/sim/simulator.h"

namespace perfiso {

class PerfIsoController {
 public:
  PerfIsoController(Platform* platform, const PerfIsoConfig& config);

  PerfIsoController(const PerfIsoController&) = delete;
  PerfIsoController& operator=(const PerfIsoController&) = delete;

  // Applies static settings (initial affinity/caps, I/O limits, egress).
  // Must be called once before polling.
  Status Initialize();

  // One control iteration (CPU). Cheap when nothing changed.
  void Poll();

  // One I/O-throttler iteration; drive at config.io_poll_interval.
  void PollIo();

  // Convenience: arms periodic tasks on a simulator for both loops.
  void AttachToSimulator(Simulator* sim);
  void DetachFromSimulator();

  // Registers a "perfiso" track under `process` (the machine the controller
  // manages); control decisions — affinity updates, throttler promotions and
  // demotions, memory kills, kill-switch flips — appear there as instants.
  void EnableTracing(Tracer* tracer, int process);

  // Kill switch (§4.2): deactivate restores OS defaults immediately; PerfIso
  // can later be re-activated and resumes from its configuration.
  Status SetActive(bool active);
  bool active() const { return active_; }

  // Runtime reconfiguration (§4: "resource limits can be altered
  // independently at runtime by issuing a command to PerfIso").
  Status ApplyConfig(const PerfIsoConfig& config);
  const PerfIsoConfig& config() const { return config_; }

  // Crash-recovery support (§4.2): the controller's durable state is its
  // config; recovery = construct + Initialize from the loaded map.
  ConfigMap SaveState() const { return config_.ToConfigMap(); }
  static StatusOr<std::unique_ptr<PerfIsoController>> Recover(Platform* platform,
                                                              const ConfigMap& state);

  struct Stats {
    int64_t polls = 0;
    int64_t affinity_updates = 0;
    int64_t rate_updates = 0;
    int64_t memory_checks = 0;
    int64_t memory_kills = 0;
    int64_t io_polls = 0;
  };
  const Stats& stats() const { return stats_; }
  int secondary_cores() const;
  const IoThrottler* io_throttler() const { return io_throttler_.get(); }

 private:
  Status ApplyCpuMode();
  Status RestoreDefaults();
  void CheckMemory();

  Platform* platform_;
  PerfIsoConfig config_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  bool active_ = false;
  bool initialized_ = false;
  std::optional<BlindIsolationPolicy> blind_policy_;
  std::unique_ptr<IoThrottler> io_throttler_;
  Stats stats_;
  bool secondary_killed_ = false;
  std::unique_ptr<PeriodicTask> cpu_task_;
  std::unique_ptr<PeriodicTask> io_task_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PERFISO_CONTROLLER_H_
