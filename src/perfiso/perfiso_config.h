// PerfIsoConfig: every tunable of the framework, serializable to the
// cluster-wide key=value files Autopilot distributes (§4).
#ifndef PERFISO_SRC_PERFISO_PERFISO_CONFIG_H_
#define PERFISO_SRC_PERFISO_PERFISO_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/perfiso/policy.h"
#include "src/util/config.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace perfiso {

// How the CPU side of the secondary is managed.
enum class CpuIsolationMode {
  kNone,            // colocation without isolation (the paper's "No isolation")
  kBlindIsolation,  // §3.1, the paper's contribution
  kStaticCores,     // OS-native static core restriction (§6.1.4)
  kCpuRateCap,      // OS-native CPU-cycle restriction (§6.1.4)
};

const char* CpuIsolationModeName(CpuIsolationMode mode);
StatusOr<CpuIsolationMode> ParseCpuIsolationMode(const std::string& name);

// Static I/O limit for one secondary I/O owner (e.g. "HDFS clients are
// limited to 60 MB/s", §5.3).
struct IoOwnerLimit {
  int owner = 0;
  double bandwidth_bps = 0;  // <= 0: none
  double iops = 0;           // <= 0: none
  int priority = 2;          // scheduler band, 0 = highest
  double weight = 1.0;       // DWRR weight
  double min_iops_guarantee = 0;  // lim_i in the deficit formula (§4.1)
};

struct PerfIsoConfig {
  // Kill switch (§4.2): when false the controller restores OS defaults and
  // stops intervening, so PerfIso can be excluded while debugging livesite
  // issues.
  bool enabled = true;

  CpuIsolationMode cpu_mode = CpuIsolationMode::kBlindIsolation;
  BlindIsolationSettings blind;
  int static_secondary_cores = 8;   // for kStaticCores
  double cpu_rate_cap = 0.05;       // for kCpuRateCap
  SimDuration poll_interval = FromMillis(1);

  // Memory watchdog (§3.2: "when memory runs very low, secondary processes
  // are killed").
  int64_t min_free_memory_bytes = 4LL * 1024 * 1024 * 1024;
  int memory_check_every_n_polls = 256;

  // Egress throttle for the secondary (§3.2); <= 0 disables.
  double egress_rate_cap_bps = 0;

  // Fabric parameters (src/net/): NIC link rate, ToR uplink oversubscription,
  // whether the NIC TX honors priority classes, etc. Distributed with the
  // rest of the config so a cluster deployment describes its network too.
  FabricConfig net;

  // Static I/O limits and DWRR parameters for secondary I/O owners.
  std::vector<IoOwnerLimit> io_limits;
  // Moving-average window (in polls) for the I/O throttler's IOPS estimate.
  int io_window_polls = 16;
  SimDuration io_poll_interval = FromMillis(100);

  // Serialization to/from the Autopilot config format. I/O limits use keys
  // io.<owner>.bandwidth_bps etc. Unknown keys are ignored (a node must
  // tolerate a config written by a newer rollout).
  ConfigMap ToConfigMap() const;
  static StatusOr<PerfIsoConfig> FromConfigMap(const ConfigMap& map);
  // Strict variant for authoring surfaces (scenario specs, tests): any key
  // FromConfigMap would ignore is an error, so typos fail loudly instead of
  // silently running defaults.
  static StatusOr<PerfIsoConfig> FromConfigMapStrict(const ConfigMap& map);

  // Validation used by the controller before applying.
  Status Validate(int num_cores) const;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PERFISO_PERFISO_CONFIG_H_
