#include "src/perfiso/perfiso_config.h"

#include <charconv>
#include <set>

namespace perfiso {

const char* CpuIsolationModeName(CpuIsolationMode mode) {
  switch (mode) {
    case CpuIsolationMode::kNone:
      return "none";
    case CpuIsolationMode::kBlindIsolation:
      return "blind";
    case CpuIsolationMode::kStaticCores:
      return "static_cores";
    case CpuIsolationMode::kCpuRateCap:
      return "cpu_rate_cap";
  }
  return "?";
}

StatusOr<CpuIsolationMode> ParseCpuIsolationMode(const std::string& name) {
  if (name == "none") {
    return CpuIsolationMode::kNone;
  }
  if (name == "blind") {
    return CpuIsolationMode::kBlindIsolation;
  }
  if (name == "static_cores") {
    return CpuIsolationMode::kStaticCores;
  }
  if (name == "cpu_rate_cap") {
    return CpuIsolationMode::kCpuRateCap;
  }
  return InvalidArgumentError("unknown cpu isolation mode: " + name);
}

namespace {

const char* PlacementName(CorePlacement placement) {
  switch (placement) {
    case CorePlacement::kPackHigh:
      return "pack_high";
    case CorePlacement::kPackLow:
      return "pack_low";
    case CorePlacement::kSpread:
      return "spread";
  }
  return "?";
}

StatusOr<CorePlacement> ParsePlacement(const std::string& name) {
  if (name == "pack_high") {
    return CorePlacement::kPackHigh;
  }
  if (name == "pack_low") {
    return CorePlacement::kPackLow;
  }
  if (name == "spread") {
    return CorePlacement::kSpread;
  }
  return InvalidArgumentError("unknown core placement: " + name);
}

}  // namespace

ConfigMap PerfIsoConfig::ToConfigMap() const {
  ConfigMap map;
  map.SetBool("enabled", enabled);
  map.SetString("cpu.mode", CpuIsolationModeName(cpu_mode));
  map.SetInt("cpu.buffer_cores", blind.buffer_cores);
  map.SetBool("cpu.proportional_step", blind.proportional_step);
  map.SetString("cpu.placement", PlacementName(blind.placement));
  map.SetInt("cpu.initial_secondary_cores", blind.initial_secondary_cores);
  map.SetBool("cpu.update_on_every_poll", blind.update_on_every_poll);
  map.SetInt("cpu.idle_deadband", blind.idle_deadband);
  map.SetInt("cpu.static_secondary_cores", static_secondary_cores);
  map.SetDouble("cpu.rate_cap", cpu_rate_cap);
  map.SetInt("poll_interval_us", static_cast<int64_t>(ToMicros(poll_interval)));
  map.SetInt("memory.min_free_bytes", min_free_memory_bytes);
  map.SetInt("memory.check_every_n_polls", memory_check_every_n_polls);
  map.SetDouble("net.egress_rate_cap_bps", egress_rate_cap_bps);
  map.SetDouble("net.link_rate_bps", net.link_rate_bps);
  map.SetDouble("net.uplink_oversubscription", net.uplink_oversubscription);
  map.SetInt("net.machines_per_rack", net.machines_per_rack);
  map.SetInt("net.base_latency_us", static_cast<int64_t>(ToMicros(net.base_latency)));
  map.SetInt("net.chunk_bytes", net.chunk_bytes);
  map.SetBool("net.tx_priority", net.tx_priority);
  map.SetInt("io.window_polls", io_window_polls);
  map.SetInt("io.poll_interval_us", static_cast<int64_t>(ToMicros(io_poll_interval)));
  for (const IoOwnerLimit& limit : io_limits) {
    const std::string prefix = "io.owner." + std::to_string(limit.owner) + ".";
    map.SetDouble(prefix + "bandwidth_bps", limit.bandwidth_bps);
    map.SetDouble(prefix + "iops", limit.iops);
    map.SetInt(prefix + "priority", limit.priority);
    map.SetDouble(prefix + "weight", limit.weight);
    map.SetDouble(prefix + "min_iops_guarantee", limit.min_iops_guarantee);
  }
  return map;
}

StatusOr<PerfIsoConfig> PerfIsoConfig::FromConfigMap(const ConfigMap& map) {
  PerfIsoConfig config;

  auto enabled = map.GetBool("enabled", config.enabled);
  PERFISO_RETURN_IF_ERROR(enabled.status());
  config.enabled = *enabled;

  auto mode_name = map.GetString("cpu.mode", CpuIsolationModeName(config.cpu_mode));
  PERFISO_RETURN_IF_ERROR(mode_name.status());
  auto mode = ParseCpuIsolationMode(*mode_name);
  PERFISO_RETURN_IF_ERROR(mode.status());
  config.cpu_mode = *mode;

  auto buffer = map.GetInt("cpu.buffer_cores", config.blind.buffer_cores);
  PERFISO_RETURN_IF_ERROR(buffer.status());
  config.blind.buffer_cores = static_cast<int>(*buffer);

  auto step = map.GetBool("cpu.proportional_step", config.blind.proportional_step);
  PERFISO_RETURN_IF_ERROR(step.status());
  config.blind.proportional_step = *step;

  auto placement_name =
      map.GetString("cpu.placement", PlacementName(config.blind.placement));
  PERFISO_RETURN_IF_ERROR(placement_name.status());
  auto placement = ParsePlacement(*placement_name);
  PERFISO_RETURN_IF_ERROR(placement.status());
  config.blind.placement = *placement;

  auto initial =
      map.GetInt("cpu.initial_secondary_cores", config.blind.initial_secondary_cores);
  PERFISO_RETURN_IF_ERROR(initial.status());
  config.blind.initial_secondary_cores = static_cast<int>(*initial);

  auto every_poll =
      map.GetBool("cpu.update_on_every_poll", config.blind.update_on_every_poll);
  PERFISO_RETURN_IF_ERROR(every_poll.status());
  config.blind.update_on_every_poll = *every_poll;

  auto deadband = map.GetInt("cpu.idle_deadband", config.blind.idle_deadband);
  PERFISO_RETURN_IF_ERROR(deadband.status());
  config.blind.idle_deadband = static_cast<int>(*deadband);

  auto static_cores =
      map.GetInt("cpu.static_secondary_cores", config.static_secondary_cores);
  PERFISO_RETURN_IF_ERROR(static_cores.status());
  config.static_secondary_cores = static_cast<int>(*static_cores);

  auto rate = map.GetDouble("cpu.rate_cap", config.cpu_rate_cap);
  PERFISO_RETURN_IF_ERROR(rate.status());
  config.cpu_rate_cap = *rate;

  auto poll_us =
      map.GetInt("poll_interval_us", static_cast<int64_t>(ToMicros(config.poll_interval)));
  PERFISO_RETURN_IF_ERROR(poll_us.status());
  config.poll_interval = FromMicros(static_cast<double>(*poll_us));

  auto min_free = map.GetInt("memory.min_free_bytes", config.min_free_memory_bytes);
  PERFISO_RETURN_IF_ERROR(min_free.status());
  config.min_free_memory_bytes = *min_free;

  auto mem_polls =
      map.GetInt("memory.check_every_n_polls", config.memory_check_every_n_polls);
  PERFISO_RETURN_IF_ERROR(mem_polls.status());
  config.memory_check_every_n_polls = static_cast<int>(*mem_polls);

  auto egress = map.GetDouble("net.egress_rate_cap_bps", config.egress_rate_cap_bps);
  PERFISO_RETURN_IF_ERROR(egress.status());
  config.egress_rate_cap_bps = *egress;

  auto link_rate = map.GetDouble("net.link_rate_bps", config.net.link_rate_bps);
  PERFISO_RETURN_IF_ERROR(link_rate.status());
  config.net.link_rate_bps = *link_rate;

  auto oversub =
      map.GetDouble("net.uplink_oversubscription", config.net.uplink_oversubscription);
  PERFISO_RETURN_IF_ERROR(oversub.status());
  config.net.uplink_oversubscription = *oversub;

  auto rack = map.GetInt("net.machines_per_rack", config.net.machines_per_rack);
  PERFISO_RETURN_IF_ERROR(rack.status());
  config.net.machines_per_rack = static_cast<int>(*rack);

  auto base_us = map.GetInt("net.base_latency_us",
                            static_cast<int64_t>(ToMicros(config.net.base_latency)));
  PERFISO_RETURN_IF_ERROR(base_us.status());
  config.net.base_latency = FromMicros(static_cast<double>(*base_us));

  auto chunk = map.GetInt("net.chunk_bytes", config.net.chunk_bytes);
  PERFISO_RETURN_IF_ERROR(chunk.status());
  config.net.chunk_bytes = *chunk;

  auto tx_priority = map.GetBool("net.tx_priority", config.net.tx_priority);
  PERFISO_RETURN_IF_ERROR(tx_priority.status());
  config.net.tx_priority = *tx_priority;

  auto window = map.GetInt("io.window_polls", config.io_window_polls);
  PERFISO_RETURN_IF_ERROR(window.status());
  config.io_window_polls = static_cast<int>(*window);

  auto io_poll_us = map.GetInt("io.poll_interval_us",
                               static_cast<int64_t>(ToMicros(config.io_poll_interval)));
  PERFISO_RETURN_IF_ERROR(io_poll_us.status());
  config.io_poll_interval = FromMicros(static_cast<double>(*io_poll_us));

  // Collect io.owner.<id>.* keys.
  std::set<int> owners;
  for (const auto& [key, value] : map.entries()) {
    constexpr const char* kPrefix = "io.owner.";
    if (key.rfind(kPrefix, 0) != 0) {
      continue;
    }
    const size_t id_begin = std::string(kPrefix).size();
    const size_t id_end = key.find('.', id_begin);
    if (id_end == std::string::npos) {
      return InvalidArgumentError("malformed io.owner key: " + key);
    }
    const std::string id_text = key.substr(id_begin, id_end - id_begin);
    int owner = 0;
    const auto parsed =
        std::from_chars(id_text.data(), id_text.data() + id_text.size(), owner);
    if (parsed.ec != std::errc() || parsed.ptr != id_text.data() + id_text.size()) {
      return InvalidArgumentError("io.owner id is not an integer: " + key);
    }
    owners.insert(owner);
  }
  for (int owner : owners) {
    const std::string prefix = "io.owner." + std::to_string(owner) + ".";
    IoOwnerLimit limit;
    limit.owner = owner;
    auto bandwidth = map.GetDouble(prefix + "bandwidth_bps", 0);
    PERFISO_RETURN_IF_ERROR(bandwidth.status());
    limit.bandwidth_bps = *bandwidth;
    auto iops = map.GetDouble(prefix + "iops", 0);
    PERFISO_RETURN_IF_ERROR(iops.status());
    limit.iops = *iops;
    auto priority = map.GetInt(prefix + "priority", 2);
    PERFISO_RETURN_IF_ERROR(priority.status());
    limit.priority = static_cast<int>(*priority);
    auto weight = map.GetDouble(prefix + "weight", 1.0);
    PERFISO_RETURN_IF_ERROR(weight.status());
    limit.weight = *weight;
    auto guarantee = map.GetDouble(prefix + "min_iops_guarantee", 0);
    PERFISO_RETURN_IF_ERROR(guarantee.status());
    limit.min_iops_guarantee = *guarantee;
    config.io_limits.push_back(limit);
  }
  return config;
}

StatusOr<PerfIsoConfig> PerfIsoConfig::FromConfigMapStrict(const ConfigMap& map) {
  auto config = FromConfigMap(map);
  PERFISO_RETURN_IF_ERROR(config.status());
  // Every key FromConfigMap understands reappears when the parsed config is
  // re-serialized, so membership in the canonical form is exactly "known".
  const ConfigMap canonical = config->ToConfigMap();
  for (const auto& [key, value] : map.entries()) {
    if (!canonical.Has(key)) {
      return InvalidArgumentError("unknown PerfIso config key: " + key);
    }
  }
  return config;
}

Status PerfIsoConfig::Validate(int num_cores) const {
  // Only the active mode's parameters gate deployment; a config tuned for a
  // 48-core fleet must still load on whatever machine it lands on.
  if (cpu_mode == CpuIsolationMode::kBlindIsolation &&
      (blind.buffer_cores < 0 || blind.buffer_cores >= num_cores)) {
    return InvalidArgumentError("buffer_cores must be in [0, num_cores)");
  }
  if (blind.idle_deadband < 0) {
    return InvalidArgumentError("idle_deadband must be >= 0");
  }
  if (cpu_mode == CpuIsolationMode::kStaticCores &&
      (static_secondary_cores < 0 || static_secondary_cores > num_cores)) {
    return InvalidArgumentError("static_secondary_cores out of range");
  }
  if (cpu_mode == CpuIsolationMode::kCpuRateCap &&
      (cpu_rate_cap <= 0 || cpu_rate_cap > 1.0)) {
    return InvalidArgumentError("cpu_rate_cap must be in (0, 1]");
  }
  if (poll_interval <= 0 || io_poll_interval <= 0) {
    return InvalidArgumentError("poll intervals must be positive");
  }
  if (memory_check_every_n_polls <= 0) {
    return InvalidArgumentError("memory_check_every_n_polls must be positive");
  }
  if (io_window_polls <= 0) {
    return InvalidArgumentError("io_window_polls must be positive");
  }
  // The fabric validates its own tunables (including that base_latency is
  // strictly positive — it doubles as the PDES lookahead).
  PERFISO_RETURN_IF_ERROR(net.Validate());
  return OkStatus();
}

}  // namespace perfiso
