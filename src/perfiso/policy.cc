#include "src/perfiso/policy.h"

#include <algorithm>
#include <cassert>

namespace perfiso {

CpuSet BuildPlacementMask(CorePlacement placement, int count, int num_cores) {
  assert(count >= 0 && count <= num_cores);
  if (count == 0) {
    return CpuSet();
  }
  switch (placement) {
    case CorePlacement::kPackHigh:
      return CpuSet::Range(num_cores - count, num_cores);
    case CorePlacement::kPackLow:
      return CpuSet::FirstN(count);
    case CorePlacement::kSpread: {
      CpuSet mask;
      // Distribute `count` cores evenly; highest-index-first within strides
      // so the low cores stay free for the primary where possible.
      for (int i = 0; i < count; ++i) {
        const int cpu = static_cast<int>(
            (static_cast<int64_t>(num_cores) - 1 - static_cast<int64_t>(i) * num_cores / count) %
            num_cores);
        mask.Set(cpu);
      }
      return mask;
    }
  }
  return CpuSet();
}

BlindIsolationPolicy::BlindIsolationPolicy(const BlindIsolationSettings& settings, int num_cores)
    : settings_(settings), num_cores_(num_cores),
      secondary_cores_(std::clamp(settings.initial_secondary_cores, 0,
                                  num_cores - settings.buffer_cores)) {
  assert(settings.buffer_cores >= 0 && settings.buffer_cores < num_cores);
}

std::optional<CpuSet> BlindIsolationPolicy::Decide(const CpuSet& idle_mask) {
  const int idle = idle_mask.Count();
  const int buffer = settings_.buffer_cores;
  // Asymmetric deadband: small surpluses of idle cores are measurement
  // jitter and not worth an update, but a deficit (idle < buffer) always
  // triggers — protection must never be dulled.
  if (idle > buffer && idle - buffer <= settings_.idle_deadband &&
      !settings_.update_on_every_poll) {
    return std::nullopt;
  }
  int delta = 0;
  if (settings_.proportional_step) {
    delta = idle - buffer;
  } else if (idle > buffer) {
    delta = 1;
  } else if (idle < buffer) {
    delta = -1;
  }
  const int desired =
      std::clamp(secondary_cores_ + delta, 0, num_cores_ - buffer);
  if (desired == secondary_cores_ && !settings_.update_on_every_poll) {
    return std::nullopt;
  }
  secondary_cores_ = desired;
  return BuildPlacementMask(settings_.placement, desired, num_cores_);
}

}  // namespace perfiso
