#include "src/perfiso/controller.h"

#include <cassert>

#include "src/util/logging.h"

namespace perfiso {

PerfIsoController::PerfIsoController(Platform* platform, const PerfIsoConfig& config)
    : platform_(platform), config_(config) {
  assert(platform_ != nullptr);
}

Status PerfIsoController::Initialize() {
  PERFISO_RETURN_IF_ERROR(config_.Validate(platform_->NumCores()));
  initialized_ = true;
  if (!config_.io_limits.empty()) {
    io_throttler_ = std::make_unique<IoThrottler>(
        platform_, config_.io_limits,
        IoThrottler::Options{config_.io_window_polls, 0.5, 0.0});
    if (tracer_ != nullptr) {
      io_throttler_->EnableTracing(tracer_, track_);
    }
    // Static I/O limits apply even when CPU isolation is switched off — they
    // are configuration, not dynamic control.
    Status io_status = io_throttler_->ApplyStaticLimits();
    if (!io_status.ok()) {
      PERFISO_LOG(kWarning) << "perfiso: static I/O limits not applied: "
                            << io_status.ToString();
    }
  }
  return SetActive(config_.enabled);
}

Status PerfIsoController::ApplyCpuMode() {
  const int cores = platform_->NumCores();
  switch (config_.cpu_mode) {
    case CpuIsolationMode::kNone:
      blind_policy_.reset();
      return OkStatus();
    case CpuIsolationMode::kBlindIsolation: {
      blind_policy_.emplace(config_.blind, cores);
      const CpuSet mask = BuildPlacementMask(config_.blind.placement,
                                             blind_policy_->secondary_cores(), cores);
      ++stats_.affinity_updates;
      return platform_->SetSecondaryAffinity(mask);
    }
    case CpuIsolationMode::kStaticCores: {
      blind_policy_.reset();
      const CpuSet mask = BuildPlacementMask(config_.blind.placement,
                                             config_.static_secondary_cores, cores);
      ++stats_.affinity_updates;
      return platform_->SetSecondaryAffinity(mask);
    }
    case CpuIsolationMode::kCpuRateCap: {
      blind_policy_.reset();
      ++stats_.rate_updates;
      return platform_->SetSecondaryCpuRateCap(config_.cpu_rate_cap);
    }
  }
  return InternalError("unreachable cpu mode");
}

Status PerfIsoController::RestoreDefaults() {
  // OS defaults: the secondary may use every core at full rate.
  PERFISO_RETURN_IF_ERROR(platform_->SetSecondaryAffinity(CpuSet::FirstN(platform_->NumCores())));
  PERFISO_RETURN_IF_ERROR(platform_->SetSecondaryCpuRateCap(0));
  if (config_.egress_rate_cap_bps > 0) {
    Status egress = platform_->SetEgressRateCap(0);
    if (!egress.ok()) {
      PERFISO_LOG(kWarning) << "perfiso: egress cap not cleared: " << egress.ToString();
    }
  }
  return OkStatus();
}

Status PerfIsoController::SetActive(bool active) {
  if (!initialized_) {
    return FailedPreconditionError("Initialize() not called");
  }
  if (active == active_) {
    return OkStatus();
  }
  if (!active) {
    active_ = false;
    PERFISO_LOG(kInfo) << "perfiso: kill switch engaged, restoring OS defaults";
    if (tracer_ != nullptr) {
      tracer_->Instant("perfiso.deactivate", track_, platform_->NowNs());
    }
    return RestoreDefaults();
  }
  active_ = true;
  if (tracer_ != nullptr) {
    tracer_->Instant("perfiso.activate", track_, platform_->NowNs());
  }
  if (config_.egress_rate_cap_bps > 0) {
    // Like the static I/O limits above: platforms without an egress shaper
    // (LinuxPlatform needs tc/HTB privileges) degrade to a logged warning
    // instead of failing the whole controller bring-up.
    Status egress = platform_->SetEgressRateCap(config_.egress_rate_cap_bps);
    if (!egress.ok()) {
      PERFISO_LOG(kWarning) << "perfiso: egress cap not applied: " << egress.ToString();
    }
  }
  return ApplyCpuMode();
}

Status PerfIsoController::ApplyConfig(const PerfIsoConfig& config) {
  PERFISO_RETURN_IF_ERROR(config.Validate(platform_->NumCores()));
  const bool was_active = active_;
  config_ = config;
  if (!initialized_) {
    return OkStatus();
  }
  // Reapply from scratch: cheap, and runtime reconfigurations are rare.
  active_ = false;
  if (!config_.enabled) {
    return was_active ? RestoreDefaults() : OkStatus();
  }
  return SetActive(true);
}

void PerfIsoController::Poll() {
  if (!active_) {
    return;
  }
  ++stats_.polls;
  if (blind_policy_.has_value()) {
    const CpuSet idle = platform_->IdleCores();
    std::optional<CpuSet> update = blind_policy_->Decide(idle);
    if (update.has_value()) {
      ++stats_.affinity_updates;
      if (tracer_ != nullptr) {
        tracer_->Instant("perfiso.affinity.update", track_, platform_->NowNs());
      }
      Status status = platform_->SetSecondaryAffinity(*update);
      if (!status.ok()) {
        PERFISO_LOG(kWarning) << "perfiso: affinity update failed: " << status.ToString();
      }
    }
  }
  if (config_.memory_check_every_n_polls > 0 &&
      stats_.polls % config_.memory_check_every_n_polls == 0) {
    CheckMemory();
  }
}

void PerfIsoController::CheckMemory() {
  ++stats_.memory_checks;
  if (secondary_killed_ || config_.min_free_memory_bytes <= 0) {
    return;
  }
  auto free_bytes = platform_->FreeMemoryBytes();
  if (!free_bytes.ok()) {
    return;
  }
  if (*free_bytes < config_.min_free_memory_bytes) {
    PERFISO_LOG(kWarning) << "perfiso: free memory " << *free_bytes << " below floor "
                          << config_.min_free_memory_bytes << ", killing secondary";
    if (platform_->KillSecondary().ok()) {
      ++stats_.memory_kills;
      secondary_killed_ = true;
      if (tracer_ != nullptr) {
        tracer_->Instant("perfiso.memory.kill", track_, platform_->NowNs());
      }
    }
  }
}

void PerfIsoController::EnableTracing(Tracer* tracer, int process) {
  tracer_ = tracer;
  track_ = tracer->RegisterTrack(process, "perfiso");
  if (io_throttler_ != nullptr) {
    io_throttler_->EnableTracing(tracer, track_);
  }
}

void PerfIsoController::PollIo() {
  if (!active_ || io_throttler_ == nullptr) {
    return;
  }
  ++stats_.io_polls;
  io_throttler_->Poll(platform_->NowNs());
}

void PerfIsoController::AttachToSimulator(Simulator* sim) {
  cpu_task_ = std::make_unique<PeriodicTask>(sim, sim->Now() + config_.poll_interval,
                                             config_.poll_interval,
                                             [this](SimTime) { Poll(); });
  io_task_ = std::make_unique<PeriodicTask>(sim, sim->Now() + config_.io_poll_interval,
                                            config_.io_poll_interval,
                                            [this](SimTime) { PollIo(); });
}

void PerfIsoController::DetachFromSimulator() {
  cpu_task_.reset();
  io_task_.reset();
}

StatusOr<std::unique_ptr<PerfIsoController>> PerfIsoController::Recover(
    Platform* platform, const ConfigMap& state) {
  auto config = PerfIsoConfig::FromConfigMap(state);
  PERFISO_RETURN_IF_ERROR(config.status());
  auto controller = std::make_unique<PerfIsoController>(platform, *config);
  PERFISO_RETURN_IF_ERROR(controller->Initialize());
  return controller;
}

int PerfIsoController::secondary_cores() const {
  if (blind_policy_.has_value()) {
    return blind_policy_->secondary_cores();
  }
  if (config_.cpu_mode == CpuIsolationMode::kStaticCores) {
    return config_.static_secondary_cores;
  }
  return platform_->NumCores();
}

}  // namespace perfiso
