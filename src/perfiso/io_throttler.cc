#include "src/perfiso/io_throttler.h"

#include <algorithm>
#include <cassert>

#include "src/util/logging.h"

namespace perfiso {

IoThrottler::IoThrottler(Platform* platform, const std::vector<IoOwnerLimit>& limits,
                         Options options)
    : platform_(platform), options_(options) {
  assert(platform_ != nullptr);
  for (const IoOwnerLimit& limit : limits) {
    owners_.emplace(limit.owner, OwnerState(limit, options_.window_polls));
    total_weight_ += limit.weight;
  }
}

Status IoThrottler::ApplyStaticLimits() {
  for (auto& [owner, state] : owners_) {
    if (state.limit.bandwidth_bps > 0) {
      PERFISO_RETURN_IF_ERROR(platform_->SetIoBandwidthCap(owner, state.limit.bandwidth_bps));
    }
    if (state.limit.iops > 0) {
      PERFISO_RETURN_IF_ERROR(platform_->SetIoIopsCap(owner, state.limit.iops));
    }
    PERFISO_RETURN_IF_ERROR(platform_->SetIoPriority(owner, state.limit.priority));
  }
  return OkStatus();
}

void IoThrottler::Poll(SimTime now) {
  // Pass 1: measure per-owner IOPS over the last poll interval.
  double total_iops = 0;
  for (auto& [owner, state] : owners_) {
    auto ops = platform_->IoOpsCompleted(owner);
    if (!ops.ok()) {
      continue;
    }
    if (state.last_poll < 0) {
      state.last_ops = *ops;
      state.last_poll = now;
      continue;
    }
    const double window_sec = ToSeconds(now - state.last_poll);
    if (window_sec <= 0) {
      continue;
    }
    const double iops = static_cast<double>(*ops - state.last_ops) / window_sec;
    state.last_ops = *ops;
    state.last_poll = now;
    state.iops_window.Add(iops);
    total_iops += iops;
  }

  // Pass 2: demand and deficit per the §4.1 formulas, then adjust priorities.
  for (auto& [owner, state] : owners_) {
    if (state.last_poll != now || total_weight_ <= 0) {
      continue;  // no fresh measurement this round
    }
    // Demand: this owner's weighted share of total measured IOPS, smoothed
    // over the window. The per-owner window already averages curr^{t'}.
    state.demand = state.limit.weight / total_weight_ * total_iops;
    const double curr_i = state.iops_window.Value();
    const double entitlement =
        state.limit.min_iops_guarantee > 0
            ? std::min(state.limit.min_iops_guarantee, std::max(state.demand, 1.0))
            : std::max(state.demand, 1.0);
    state.deficit = (curr_i - entitlement) / entitlement;

    int desired = state.current_priority;
    if (state.deficit > options_.demote_deficit) {
      desired = std::min(state.current_priority + 1, 2);
    } else if (state.deficit < options_.promote_deficit) {
      desired = std::max(state.current_priority - 1, state.limit.priority);
    }
    if (desired != state.current_priority) {
      if (platform_->SetIoPriority(owner, desired).ok()) {
        PERFISO_LOG(kDebug) << "io-throttler: owner " << owner << " priority "
                            << state.current_priority << " -> " << desired
                            << " (deficit " << state.deficit << ")";
        if (tracer_ != nullptr && desired > state.current_priority) {
          tracer_->Instant("io.throttle.demote", track_, now);
        } else if (tracer_ != nullptr) {
          tracer_->Instant("io.throttle.promote", track_, now);
        }
        state.current_priority = desired;
        ++adjustments_;
      }
    }
  }
}

void IoThrottler::EnableTracing(Tracer* tracer, int32_t track) {
  tracer_ = tracer;
  track_ = track;
}

double IoThrottler::SmoothedIops(int owner) const {
  auto it = owners_.find(owner);
  return it == owners_.end() ? 0 : it->second.iops_window.Value();
}

double IoThrottler::Demand(int owner) const {
  auto it = owners_.find(owner);
  return it == owners_.end() ? 0 : it->second.demand;
}

double IoThrottler::Deficit(int owner) const {
  auto it = owners_.find(owner);
  return it == owners_.end() ? 0 : it->second.deficit;
}

}  // namespace perfiso
