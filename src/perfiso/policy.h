// CPU isolation policies.
//
// BlindIsolationPolicy is the paper's contribution (§3.1): keep B buffer
// cores idle for the primary by resizing the secondary's core allocation S
// from the idle-core count I alone — if I < B shrink S, if I > B grow S —
// with no knowledge of the primary beyond the idle bitmask ("blind").
// StaticCorePolicy and the CPU-rate cap are the OS-native alternatives the
// paper compares against (§6.1.4).
#ifndef PERFISO_SRC_PERFISO_POLICY_H_
#define PERFISO_SRC_PERFISO_POLICY_H_

#include <optional>

#include "src/util/cpu_set.h"

namespace perfiso {

// Where the secondary's cores are placed within the machine.
enum class CorePlacement {
  kPackHigh,  // highest-numbered cores (default: the primary packs low)
  kPackLow,
  kSpread,  // evenly strided across the machine
};

// Builds a mask of `count` cores out of `num_cores` under `placement`.
CpuSet BuildPlacementMask(CorePlacement placement, int count, int num_cores);

struct BlindIsolationSettings {
  int buffer_cores = 8;
  // Step S by (I - B) per decision (true) or by +/-1 (false, ablation).
  bool proportional_step = true;
  // Ignore small idle *surpluses* (buffer < I <= buffer + deadband): a bursty
  // primary jitters the instantaneous idle count every poll, and reacting to
  // every wiggle would mean an affinity update (with preemptions) nearly
  // every millisecond. Deficits (I < buffer) always trigger — protection is
  // never dulled. This realizes §4.1's poll/update split: poll constantly,
  // update only on meaningful change. 0 disables (pure paper formula).
  int idle_deadband = 2;
  CorePlacement placement = CorePlacement::kPackHigh;
  int initial_secondary_cores = 0;
  // Re-issue the affinity even when unchanged (ablation of the poll/update
  // split of §4.1; constant updates are "harmful to performance").
  bool update_on_every_poll = false;
};

class BlindIsolationPolicy {
 public:
  BlindIsolationPolicy(const BlindIsolationSettings& settings, int num_cores);

  // One decision from the current idle-core mask. Returns the new secondary
  // mask, or nullopt when no update should be issued.
  std::optional<CpuSet> Decide(const CpuSet& idle_mask);

  int secondary_cores() const { return secondary_cores_; }
  int buffer_cores() const { return settings_.buffer_cores; }
  const BlindIsolationSettings& settings() const { return settings_; }

 private:
  BlindIsolationSettings settings_;
  int num_cores_;
  int secondary_cores_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PERFISO_POLICY_H_
