// The DWRR I/O throttler of §4.1.
//
// OS monitoring gives only per-device IOPS, so PerfIso attributes demand by
// weight: with w_i the weight of process i and curr^t the measured IOPS at
// poll t, the demand of process i over a window Δ is
//
//     D_i^t = sum_{t'=t-Δ..t} w_i * curr^{t'} / sum_j w_j
//
// and its deficit against its guarantee lim_i is
//
//     Def_i^t = (curr_i^t - min(lim_i, D_i^t)) / min(lim_i, D_i^t).
//
// Processes far above their entitlement (large positive deficit) are demoted
// to a lower I/O priority band; starved processes are promoted back toward
// their base band.
#ifndef PERFISO_SRC_PERFISO_IO_THROTTLER_H_
#define PERFISO_SRC_PERFISO_IO_THROTTLER_H_

#include <map>
#include <vector>

#include "src/obs/trace.h"
#include "src/perfiso/perfiso_config.h"
#include "src/platform/platform.h"
#include "src/util/stats.h"

namespace perfiso {

class IoThrottler {
 public:
  struct Options {
    int window_polls = 16;       // Δ, in polls
    double demote_deficit = 0.5; // deficit above which a process is demoted
    double promote_deficit = 0.0;  // deficit below which it is promoted back
  };

  IoThrottler(Platform* platform, const std::vector<IoOwnerLimit>& limits, Options options);

  // Applies the static limits (bandwidth/IOPS caps, base priorities).
  Status ApplyStaticLimits();

  // One measurement + adjustment pass; call at the configured I/O poll
  // interval. `now` is used to convert op-count deltas into IOPS.
  void Poll(SimTime now);

  // Priority demote/promote decisions become instants on `track` (the
  // controller's track on its machine's process).
  void EnableTracing(Tracer* tracer, int32_t track);

  // Per-owner introspection for tests and benches.
  double SmoothedIops(int owner) const;
  double Demand(int owner) const;
  double Deficit(int owner) const;
  int64_t adjustments() const { return adjustments_; }

 private:
  struct OwnerState {
    IoOwnerLimit limit;
    int64_t last_ops = 0;
    SimTime last_poll = -1;
    MovingAverage iops_window;
    double demand = 0;
    double deficit = 0;
    int current_priority = 2;

    OwnerState(const IoOwnerLimit& l, int window)
        : limit(l), iops_window(static_cast<size_t>(window)), current_priority(l.priority) {}
  };

  Platform* platform_;
  Options options_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  std::map<int, OwnerState> owners_;
  double total_weight_ = 0;
  int64_t adjustments_ = 0;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PERFISO_IO_THROTTLER_H_
