// Priority + deficit-weighted-round-robin I/O scheduling in front of a volume.
//
// PerfIso cannot rely on per-process OS I/O accounting ("monitoring provides
// only per-device statistics", §4.1), so it throttles at submission time:
// every process is registered with a priority band and a DWRR weight, and may
// carry bandwidth / IOPS caps (the paper's static limits: HDFS clients
// 60 MB/s, replication 20 MB/s; or the cluster experiment's 100 MB/s /
// 20 IOPS throttles). The scheduler bounds the number of requests outstanding
// at the device so that priority inversion inside device queues is limited.
#ifndef PERFISO_SRC_DISK_IO_SCHEDULER_H_
#define PERFISO_SRC_DISK_IO_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/disk/disk.h"
#include "src/sim/simulator.h"
#include "src/util/status.h"
#include "src/util/token_bucket.h"

namespace perfiso {

class IoScheduler {
 public:
  static constexpr int kNumPriorities = 3;  // 0 = highest

  // `max_outstanding` bounds requests in flight at the volume; a small
  // multiple of the stripe's aggregate concurrency keeps devices busy without
  // letting low-priority work swamp their internal queues.
  IoScheduler(Simulator* sim, StripedVolume* volume, int max_outstanding);

  // The token-bucket wake captures `this`; a scheduler torn down with
  // bucket-blocked requests must take the armed wake with it.
  ~IoScheduler() { sim_->CancelOwned(retry_event_); }

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Registers a submitting process. Requests from unregistered owners get
  // priority kNumPriorities-1 and weight 1.
  void RegisterOwner(int owner, std::string name, int priority, double weight);

  Status SetPriority(int owner, int priority);
  Status SetWeight(int owner, double weight);
  // caps <= 0 clear the limit.
  Status SetBandwidthCap(int owner, double bytes_per_sec);
  Status SetIopsCap(int owner, double iops);

  StatusOr<int> Priority(int owner) const;

  // Enqueues a request for dispatch. The request's completion callback fires
  // after the device finishes it.
  void Submit(IoRequest request);

  // Fault injection (node crash): drops every queued request — scheduler
  // queues plus the volume's queued and in-flight requests — without running
  // any completion callback, resets DWRR/token-bucket dispatch state, and
  // zeroes the outstanding count (the cancelled completions would otherwise
  // never return their slots). Returns the number of dropped requests.
  int CancelAll();

  // Per-owner scheduler-level stats (distinct from device-level OwnerStats:
  // these include time spent queued inside the scheduler).
  struct OwnerSchedStats {
    int64_t submitted = 0;
    int64_t dispatched = 0;
    int64_t completed = 0;
    int64_t bytes_completed = 0;
    LatencyRecorder total_latency_us;  // submit-to-complete incl. queueing
  };
  const OwnerSchedStats& Stats(int owner) const;
  size_t QueuedRequests(int owner) const;
  int outstanding() const { return outstanding_; }

  StripedVolume* volume() const { return volume_; }

  // Adds a scheduler track to the volume's tracer process; traced requests
  // then report their scheduler queueing time there.
  void EnableTracing(Tracer* tracer, int process);

 private:
  struct Owner {
    std::string name;
    int priority = kNumPriorities - 1;
    double weight = 1.0;
    double deficit_bytes = 0;
    std::unique_ptr<TokenBucket> bandwidth_cap;
    std::unique_ptr<TokenBucket> iops_cap;
    std::deque<IoRequest> queue;
    OwnerSchedStats stats;
  };

  Owner& GetOrCreateOwner(int owner);
  // Dispatches as many requests as limits allow; arms a retry timer when
  // progress is blocked only by token buckets.
  void Pump();
  // One DWRR round over a priority band; returns true if anything dispatched.
  bool ServeBand(int priority, SimTime now, SimTime* earliest_retry);
  bool CapsAllow(Owner& owner, const IoRequest& request, SimTime now, SimTime* earliest);
  void ChargeCaps(Owner& owner, const IoRequest& request, SimTime now);

  Simulator* sim_;
  StripedVolume* volume_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  int max_outstanding_;
  int outstanding_ = 0;
  std::map<int, Owner> owners_;
  std::array<int, kNumPriorities> last_served_ = {-1, -1, -1};
  // Owner owed further service in the band (drain cut short by the
  // outstanding bound); -1 when none.
  std::array<int, kNumPriorities> resume_owner_ = {-1, -1, -1};
  // Pending token-bucket wake. Tightened earlier when a newly blocked
  // request becomes admissible sooner; cancelled when nothing is blocked on
  // buckets anymore.
  EventHandle retry_event_;
  // Bytes of deficit granted per DWRR visit per unit weight.
  static constexpr double kQuantumBytes = 64 * 1024;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_DISK_IO_SCHEDULER_H_
