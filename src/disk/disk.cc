#include "src/disk/disk.h"

#include <cassert>
#include <utility>

namespace perfiso {

DiskSpec DiskSpec::Ssd() {
  DiskSpec spec;
  spec.model = "ssd-500g";
  spec.read_latency = FromMicros(80);
  spec.write_latency = FromMicros(60);
  spec.seek_penalty = 0;
  spec.bandwidth_bps = 550e6;
  spec.concurrency = 8;
  return spec;
}

DiskSpec DiskSpec::Hdd() {
  DiskSpec spec;
  spec.model = "hdd-2t-7200";
  spec.read_latency = FromMicros(500);
  spec.write_latency = FromMicros(500);
  spec.seek_penalty = FromMillis(7);
  spec.bandwidth_bps = 160e6;
  spec.concurrency = 1;
  return spec;
}

DiskDevice::DiskDevice(Simulator* sim, DiskSpec spec, std::string name)
    : sim_(sim), spec_(std::move(spec)), name_(std::move(name)) {
  assert(spec_.concurrency > 0 && spec_.bandwidth_bps > 0);
}

SimDuration DiskDevice::ServiceTime(const IoRequest& request) const {
  SimDuration service =
      request.op == IoOp::kRead ? spec_.read_latency : spec_.write_latency;
  if (!request.sequential) {
    service += spec_.seek_penalty;
  }
  service += static_cast<SimDuration>(static_cast<double>(request.bytes) /
                                      spec_.bandwidth_bps * kSecond);
  if (latency_multiplier_ != 1.0) {
    // Only degraded devices take this branch: the healthy path never runs the
    // scaling arithmetic, keeping no-fault digests bit-identical.
    service = static_cast<SimDuration>(static_cast<double>(service) * latency_multiplier_);
  }
  return service;
}

void DiskDevice::Submit(IoRequest request) {
  queue_.push_back(std::move(request));
  TryStart();
}

void DiskDevice::EnableTracing(Tracer* tracer, int process) {
  tracer_ = tracer;
  track_ = tracer->RegisterTrack(process, name_);
}

size_t DiskDevice::AllocInflightSlot() {
  if (!free_slots_.empty()) {
    const size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  inflight_.emplace_back();
  return inflight_.size() - 1;
}

void DiskDevice::TryStart() {
  while (active_ < spec_.concurrency && !queue_.empty()) {
    IoRequest request = std::move(queue_.front());
    queue_.pop_front();
    const SimDuration service = ServiceTime(request);
    last_was_sequential_ = request.sequential;
    ++active_;
    busy_ns_ += service;
    const size_t slot = AllocInflightSlot();
    const int64_t bytes = request.bytes;
    inflight_[slot].started = sim_->Now();
    inflight_[slot].service = service;
    inflight_[slot].trace_ctx = request.trace_ctx;
    if (tracer_ != nullptr && request.trace_ctx != 0 &&
        sim_->Now() > request.submit_time) {
      tracer_->Span(request.trace_ctx, "disk.queue", SpanCategory::kDiskQueue,
                    track_, request.submit_time, sim_->Now());
    }
    // Capture only what the completion needs (this + slot + bytes + the
    // callback) so the event stays within the engine's inline budget; disk
    // completions are the fattest hot-path event, so guard the budget at
    // compile time rather than spilling silently. The trace context rides in
    // the inflight slot for the same reason.
    auto completion = [this, slot, bytes, done = std::move(request.on_complete)] {
      const SimTime started = inflight_[slot].started;
      const uint64_t trace_ctx = inflight_[slot].trace_ctx;
      inflight_[slot] = InFlight{};
      free_slots_.push_back(slot);
      --active_;
      ++completed_ops_;
      completed_bytes_ += bytes;
      if (tracer_ != nullptr && trace_ctx != 0) {
        tracer_->Span(trace_ctx, "disk.service", SpanCategory::kService, track_,
                      started, sim_->Now());
      }
      if (done) {
        done(sim_->Now());
      }
      TryStart();
    };
    static_assert(sizeof(completion) <= EventCallback::kInlineBytes,
                  "disk completion events must stay inline in the event pool");
    inflight_[slot].done_event = sim_->ScheduleAfter(service, std::move(completion));
  }
}

int DiskDevice::CancelAll() {
  int dropped = static_cast<int>(queue_.size());
  queue_.clear();
  for (size_t slot = 0; slot < inflight_.size(); ++slot) {
    if (sim_->Cancel(inflight_[slot].done_event)) {
      // Roll back the unserved remainder of the charged service time.
      busy_ns_ -= inflight_[slot].started + inflight_[slot].service - sim_->Now();
      inflight_[slot] = InFlight{};
      free_slots_.push_back(slot);
      --active_;
      ++dropped;
    }
  }
  assert(active_ == 0);
  return dropped;
}

StripedVolume::StripedVolume(Simulator* sim, const DiskSpec& spec, int num_drives,
                             std::string name)
    : sim_(sim), name_(std::move(name)) {
  assert(num_drives > 0);
  drives_.reserve(static_cast<size_t>(num_drives));
  for (int i = 0; i < num_drives; ++i) {
    drives_.push_back(
        std::make_unique<DiskDevice>(sim, spec, name_ + "-d" + std::to_string(i)));
  }
}

void StripedVolume::Submit(IoRequest request) {
  request.submit_time = sim_->Now();
  OwnerIoStats& stats = owner_stats_[request.owner];
  auto user_cb = std::move(request.on_complete);
  const SimTime submit_time = request.submit_time;
  const int64_t bytes = request.bytes;
  request.on_complete = [this, &stats, submit_time, bytes,
                         user_cb = std::move(user_cb)](SimTime now) {
    ++stats.ops;
    stats.bytes += bytes;
    stats.latency_us.Add(ToMicros(now - submit_time));
    if (user_cb) {
      user_cb(now);
    }
  };
  drives_[next_drive_]->Submit(std::move(request));
  next_drive_ = (next_drive_ + 1) % drives_.size();
}

int StripedVolume::CancelAll() {
  int dropped = 0;
  for (const auto& drive : drives_) {
    dropped += drive->CancelAll();
  }
  return dropped;
}

void StripedVolume::SetLatencyMultiplier(double multiplier) {
  for (const auto& drive : drives_) {
    drive->SetLatencyMultiplier(multiplier);
  }
}

size_t StripedVolume::TotalQueueDepth() const {
  size_t depth = 0;
  for (const auto& drive : drives_) {
    depth += drive->QueueDepth();
  }
  return depth;
}

int64_t StripedVolume::CompletedOps() const {
  int64_t ops = 0;
  for (const auto& drive : drives_) {
    ops += drive->CompletedOps();
  }
  return ops;
}

int64_t StripedVolume::CompletedBytes() const {
  int64_t bytes = 0;
  for (const auto& drive : drives_) {
    bytes += drive->CompletedBytes();
  }
  return bytes;
}

const OwnerIoStats& StripedVolume::OwnerStats(int owner) const { return owner_stats_[owner]; }

int StripedVolume::EnableTracing(Tracer* tracer) {
  const int pid = tracer->RegisterProcess(name_);
  for (const auto& drive : drives_) {
    drive->EnableTracing(tracer, pid);
  }
  return pid;
}

double StripedVolume::NominalBandwidth() const {
  return drives_.empty() ? 0 : drives_[0]->spec().bandwidth_bps * num_drives();
}

}  // namespace perfiso
