// Disk device and striped-volume models.
//
// The paper's testbed has two striped volumes: 4x SSD (exclusive to
// IndexServe's index slice) and 4x HDD (IndexServe logging, shared with the
// secondary's HDFS traffic and the DiskSPD bully). A device serves requests
// with a fixed per-op latency plus a transfer time, with a seek penalty for
// non-sequential HDD accesses, and bounded internal concurrency (NCQ-style
// for SSDs, single-actuator for HDDs).
#ifndef PERFISO_SRC_DISK_DISK_H_
#define PERFISO_SRC_DISK_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace perfiso {

enum class IoOp { kRead, kWrite };

// Static device parameters.
struct DiskSpec {
  std::string model;
  SimDuration read_latency = FromMicros(80);
  SimDuration write_latency = FromMicros(60);
  SimDuration seek_penalty = 0;  // added for non-sequential accesses
  double bandwidth_bps = 550e6;
  int concurrency = 8;  // requests serviced in parallel inside the device

  // A 500 GB SATA SSD, as in the paper's 4x SSD stripe.
  static DiskSpec Ssd();
  // A 2 TB 7200rpm HDD, as in the paper's 4x HDD stripe.
  static DiskSpec Hdd();
};

// One I/O request. `owner` tags the submitting process for per-tenant
// accounting and throttling. The completion callback runs in simulation time.
struct IoRequest {
  int owner = 0;
  IoOp op = IoOp::kRead;
  int64_t bytes = 4096;
  bool sequential = false;
  std::function<void(SimTime)> on_complete;
  SimTime submit_time = 0;  // filled by the volume on submission
  // Query trace this request belongs to (0 = untraced): its queueing and
  // service become disk-queue/service spans on the serving drive's track.
  uint64_t trace_ctx = 0;
};

// Cumulative per-owner I/O accounting.
struct OwnerIoStats {
  int64_t ops = 0;
  int64_t bytes = 0;
  LatencyRecorder latency_us;  // submit-to-complete
};

class DiskDevice {
 public:
  DiskDevice(Simulator* sim, DiskSpec spec, std::string name);

  DiskDevice(const DiskDevice&) = delete;
  DiskDevice& operator=(const DiskDevice&) = delete;

  // Enqueues a request; it is serviced FIFO subject to device concurrency.
  void Submit(IoRequest request);

  // Device-reset model (power loss / hot unplug, for failure-injection
  // scenarios): drops every queued request and cancels every in-flight
  // completion eagerly — no completion callback runs, and the cancelled
  // events leave the simulator queue. Returns the number of dropped requests.
  int CancelAll();

  size_t QueueDepth() const { return queue_.size() + static_cast<size_t>(active_); }
  int64_t CompletedOps() const { return completed_ops_; }
  int64_t CompletedBytes() const { return completed_bytes_; }
  SimDuration BusyTime() const { return busy_ns_; }
  const DiskSpec& spec() const { return spec_; }

  // Service time for a request on an otherwise-idle device.
  SimDuration ServiceTime(const IoRequest& request) const;

  // Fault injection: scales the service time of requests *started* while the
  // multiplier is in effect (in-flight requests keep their original service
  // time). 1.0 — the default — is special-cased to skip the scaling
  // arithmetic entirely, so a never-degraded device is bit-identical to one
  // without the feature.
  void SetLatencyMultiplier(double multiplier) { latency_multiplier_ = multiplier; }
  double latency_multiplier() const { return latency_multiplier_; }

  // Registers this drive as a track of `process` (its volume); traced
  // requests then report queue/service spans there.
  void EnableTracing(Tracer* tracer, int process);

 private:
  void TryStart();
  size_t AllocInflightSlot();

  Simulator* sim_;
  DiskSpec spec_;
  std::string name_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  std::deque<IoRequest> queue_;
  // Requests inside the device: the completion event (so CancelAll can pull
  // it out of the simulator queue) and the dispatch time + service charged to
  // busy_ns_ up front (the unserved remainder is rolled back on cancel).
  // Slots recycle via free_slots_.
  struct InFlight {
    // Lifecycle owned by DiskDevice: completion resets the slot, CancelAll
    // pulls every armed event before reuse.
    EventHandle done_event;  // NOLINT(perfiso-LIFE-001)
    SimTime started = 0;
    SimDuration service = 0;
    // Stored here rather than captured: the completion lambda exactly fills
    // the event pool's inline budget.
    uint64_t trace_ctx = 0;
  };
  std::vector<InFlight> inflight_;
  std::vector<size_t> free_slots_;
  int active_ = 0;
  int64_t completed_ops_ = 0;
  int64_t completed_bytes_ = 0;
  SimDuration busy_ns_ = 0;
  bool last_was_sequential_ = false;
  double latency_multiplier_ = 1.0;
};

// N identical devices in a stripe; requests are distributed round-robin
// (stripe unit >= request size, so a request touches one device).
class StripedVolume {
 public:
  StripedVolume(Simulator* sim, const DiskSpec& spec, int num_drives, std::string name);

  void Submit(IoRequest request);

  // Resets every drive (see DiskDevice::CancelAll); returns dropped requests.
  int CancelAll();

  // Applies a fault-injection latency multiplier to every drive.
  void SetLatencyMultiplier(double multiplier);

  int num_drives() const { return static_cast<int>(drives_.size()); }
  const std::string& name() const { return name_; }
  size_t TotalQueueDepth() const;
  int64_t CompletedOps() const;
  int64_t CompletedBytes() const;

  // Per-owner counters (the PerfIso I/O throttler polls these to compute
  // per-process IOPS with a moving average, §4.1).
  const OwnerIoStats& OwnerStats(int owner) const;

  // Aggregate nominal bandwidth of the stripe, bytes/sec.
  double NominalBandwidth() const;

  // Registers the volume as a tracer process with one track per drive;
  // returns the process id so a fronting scheduler can add its own track.
  int EnableTracing(Tracer* tracer);

 private:
  Simulator* sim_;
  std::string name_;
  std::vector<std::unique_ptr<DiskDevice>> drives_;
  size_t next_drive_ = 0;
  mutable std::map<int, OwnerIoStats> owner_stats_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_DISK_DISK_H_
