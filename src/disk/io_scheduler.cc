#include "src/disk/io_scheduler.h"

#include <cassert>
#include <limits>
#include <utility>

namespace perfiso {

IoScheduler::IoScheduler(Simulator* sim, StripedVolume* volume, int max_outstanding)
    : sim_(sim), volume_(volume), max_outstanding_(max_outstanding) {
  assert(max_outstanding > 0);
}

void IoScheduler::RegisterOwner(int owner, std::string name, int priority, double weight) {
  Owner& state = owners_[owner];
  state.name = std::move(name);
  state.priority = std::clamp(priority, 0, kNumPriorities - 1);
  state.weight = weight > 0 ? weight : 1.0;
}

IoScheduler::Owner& IoScheduler::GetOrCreateOwner(int owner) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    RegisterOwner(owner, "owner-" + std::to_string(owner), kNumPriorities - 1, 1.0);
    it = owners_.find(owner);
  }
  return it->second;
}

Status IoScheduler::SetPriority(int owner, int priority) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return NotFoundError("unregistered I/O owner");
  }
  if (priority < 0 || priority >= kNumPriorities) {
    return InvalidArgumentError("priority out of range");
  }
  it->second.priority = priority;
  Pump();
  return OkStatus();
}

Status IoScheduler::SetWeight(int owner, double weight) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return NotFoundError("unregistered I/O owner");
  }
  if (weight <= 0) {
    return InvalidArgumentError("weight must be positive");
  }
  it->second.weight = weight;
  return OkStatus();
}

Status IoScheduler::SetBandwidthCap(int owner, double bytes_per_sec) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return NotFoundError("unregistered I/O owner");
  }
  if (bytes_per_sec <= 0) {
    it->second.bandwidth_cap.reset();
  } else {
    // Burst of one second's allowance keeps large sequential ops admissible.
    it->second.bandwidth_cap =
        std::make_unique<TokenBucket>(bytes_per_sec, bytes_per_sec);
  }
  Pump();
  return OkStatus();
}

Status IoScheduler::SetIopsCap(int owner, double iops) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return NotFoundError("unregistered I/O owner");
  }
  if (iops <= 0) {
    it->second.iops_cap.reset();
  } else {
    it->second.iops_cap = std::make_unique<TokenBucket>(iops, std::max(1.0, iops / 10));
  }
  Pump();
  return OkStatus();
}

StatusOr<int> IoScheduler::Priority(int owner) const {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return NotFoundError("unregistered I/O owner");
  }
  return it->second.priority;
}

void IoScheduler::Submit(IoRequest request) {
  Owner& owner = GetOrCreateOwner(request.owner);
  ++owner.stats.submitted;
  const SimTime submitted = sim_->Now();
  OwnerSchedStats& stats = owner.stats;
  auto user_cb = std::move(request.on_complete);
  const int64_t bytes = request.bytes;
  request.on_complete = [this, &stats, submitted, bytes,
                         user_cb = std::move(user_cb)](SimTime now) {
    ++stats.completed;
    stats.bytes_completed += bytes;
    stats.total_latency_us.Add(ToMicros(now - submitted));
    --outstanding_;
    if (user_cb) {
      user_cb(now);
    }
    Pump();
  };
  // Stamp scheduler entry so the dispatch below can report queueing time;
  // the volume overwrites this with the dispatch time on its own Submit.
  request.submit_time = submitted;
  owner.queue.push_back(std::move(request));
  Pump();
}

int IoScheduler::CancelAll() {
  int dropped = 0;
  for (auto& entry : owners_) {
    dropped += static_cast<int>(entry.second.queue.size());
    entry.second.queue.clear();
    entry.second.deficit_bytes = 0;
  }
  dropped += volume_->CancelAll();
  // The cancelled in-flight requests would have decremented outstanding_ in
  // their completion wrapper; that wrapper will never run now, so reset the
  // count here or dispatch stalls forever after a restart.
  outstanding_ = 0;
  resume_owner_ = {-1, -1, -1};
  sim_->CancelOwned(retry_event_);
  return dropped;
}

void IoScheduler::EnableTracing(Tracer* tracer, int process) {
  tracer_ = tracer;
  track_ = tracer->RegisterTrack(process, "sched");
}

bool IoScheduler::CapsAllow(Owner& owner, const IoRequest& request, SimTime now,
                            SimTime* earliest) {
  SimTime when = now;
  if (owner.bandwidth_cap != nullptr) {
    when = std::max(when,
                    owner.bandwidth_cap->NextAvailable(static_cast<double>(request.bytes), now));
  }
  if (owner.iops_cap != nullptr) {
    when = std::max(when, owner.iops_cap->NextAvailable(1.0, now));
  }
  if (when > now) {
    *earliest = std::min(*earliest, when);
    return false;
  }
  return true;
}

void IoScheduler::ChargeCaps(Owner& owner, const IoRequest& request, SimTime now) {
  if (owner.bandwidth_cap != nullptr) {
    owner.bandwidth_cap->ForceConsume(static_cast<double>(request.bytes), now);
  }
  if (owner.iops_cap != nullptr) {
    owner.iops_cap->ForceConsume(1.0, now);
  }
}

bool IoScheduler::ServeBand(int priority, SimTime now, SimTime* earliest_retry) {
  // Owners in this band with pending work, in stable (id) order. An owner
  // whose queue drained loses its banked deficit (standard DWRR).
  std::vector<std::map<int, Owner>::iterator> band;
  for (auto it = owners_.begin(); it != owners_.end(); ++it) {
    if (it->second.priority != priority) {
      continue;
    }
    if (it->second.queue.empty()) {
      it->second.deficit_bytes = 0;
      continue;
    }
    band.push_back(it);
  }
  if (band.empty()) {
    return false;
  }

  // Resume semantics: if the previous round stopped mid-drain because the
  // outstanding bound filled up (not because the owner ran out of deficit),
  // continue with that owner — without granting a fresh quantum — so weight
  // ratios hold even when only one request can be in flight at a time.
  const auto p = static_cast<size_t>(priority);
  size_t start = 0;
  bool resuming = false;
  if (resume_owner_[p] >= 0) {
    for (size_t i = 0; i < band.size(); ++i) {
      if (band[i]->first == resume_owner_[p]) {
        start = i;
        resuming = true;
        break;
      }
    }
  }
  if (!resuming) {
    for (size_t i = 0; i < band.size(); ++i) {
      if (band[i]->first > last_served_[p]) {
        start = i;
        break;
      }
    }
  }
  resume_owner_[p] = -1;

  bool progressed = false;
  for (size_t visit = 0; visit < band.size(); ++visit) {
    auto it = band[(start + visit) % band.size()];
    Owner& owner = it->second;
    // One quantum per visit (unless resuming a cut-short drain), then drain
    // while the deficit, the caps, and the outstanding bound allow. Draining
    // multiple requests per visit is what realizes the weight ratios.
    if (!(resuming && visit == 0)) {
      // Banked deficit is bounded, but never below the head request's size —
      // otherwise an owner with requests larger than its bank could starve
      // forever.
      const double cap = std::max(4 * owner.weight * kQuantumBytes,
                                  static_cast<double>(owner.queue.front().bytes));
      owner.deficit_bytes =
          std::min(owner.deficit_bytes + owner.weight * kQuantumBytes, cap);
    }
    bool drained_by_deficit_or_caps = false;
    while (outstanding_ < max_outstanding_) {
      if (owner.queue.empty()) {
        drained_by_deficit_or_caps = true;
        break;
      }
      const IoRequest& head = owner.queue.front();
      if (owner.deficit_bytes < static_cast<double>(head.bytes) ||
          !CapsAllow(owner, head, now, earliest_retry)) {
        drained_by_deficit_or_caps = true;
        break;
      }
      IoRequest request = std::move(owner.queue.front());
      owner.queue.pop_front();
      owner.deficit_bytes -= static_cast<double>(request.bytes);
      ChargeCaps(owner, request, now);
      ++owner.stats.dispatched;
      ++outstanding_;
      if (tracer_ != nullptr && request.trace_ctx != 0 &&
          now > request.submit_time) {
        tracer_->Span(request.trace_ctx, "io.sched.queue",
                      SpanCategory::kDiskQueue, track_, request.submit_time, now);
      }
      volume_->Submit(std::move(request));
      progressed = true;
    }
    last_served_[p] = it->first;
    if (outstanding_ >= max_outstanding_) {
      if (!drained_by_deficit_or_caps) {
        resume_owner_[p] = it->first;  // still owed service this round
      }
      break;
    }
  }
  return progressed;
}

void IoScheduler::Pump() {
  const SimTime now = sim_->Now();
  SimTime earliest_retry = std::numeric_limits<SimTime>::max();

  bool progressed = true;
  while (outstanding_ < max_outstanding_ && progressed) {
    progressed = false;
    for (int priority = 0; priority < kNumPriorities && !progressed; ++priority) {
      progressed = ServeBand(priority, now, &earliest_retry);
    }
  }

  // Everything dispatchable went out; if requests remain blocked purely on
  // token buckets, wake up when the earliest becomes admissible. A cap change
  // can move that point earlier, so the armed wake is rescheduled rather than
  // left to fire late; when nothing is bucket-blocked, the stale wake leaves
  // the queue eagerly.
  if (earliest_retry != std::numeric_limits<SimTime>::max() &&
      outstanding_ < max_outstanding_) {
    // The wake clears its own handle on firing so no stale handle lingers
    // once the slot goes back to the slab.
    sim_->ScheduleOrTighten(retry_event_, earliest_retry, [this] {
      retry_event_ = EventHandle();
      Pump();
    });
  } else {
    sim_->CancelOwned(retry_event_);
  }
}

const IoScheduler::OwnerSchedStats& IoScheduler::Stats(int owner) const {
  static const OwnerSchedStats kEmpty;
  auto it = owners_.find(owner);
  return it == owners_.end() ? kEmpty : it->second.stats;
}

size_t IoScheduler::QueuedRequests(int owner) const {
  auto it = owners_.find(owner);
  return it == owners_.end() ? 0 : it->second.queue.size();
}

}  // namespace perfiso
