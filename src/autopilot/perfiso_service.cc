#include "src/autopilot/perfiso_service.h"

#include "src/util/logging.h"

namespace perfiso {

PerfIsoService::PerfIsoService(Platform* platform, ConfigStore* store, std::string config_name,
                               Simulator* sim)
    : platform_(platform), store_(store), config_name_(std::move(config_name)), sim_(sim) {}

Status PerfIsoService::Start() {
  if (controller_ != nullptr) {
    return OkStatus();
  }
  if (!store_->Exists(config_name_)) {
    // First deployment: persist defaults so recovery always has a state file.
    PERFISO_RETURN_IF_ERROR(store_->Put(config_name_, PerfIsoConfig().ToConfigMap()));
  }
  auto state = store_->Get(config_name_);
  PERFISO_RETURN_IF_ERROR(state.status());
  auto controller = PerfIsoController::Recover(platform_, *state);
  PERFISO_RETURN_IF_ERROR(controller.status());
  controller_ = std::move(*controller);
  if (sim_ != nullptr) {
    controller_->AttachToSimulator(sim_);
  }
  if (!watching_) {
    watching_ = true;
    store_->Watch(config_name_, [this](const ConfigMap& map) {
      if (controller_ == nullptr) {
        return;  // crashed; the new config is picked up at restart
      }
      auto config = PerfIsoConfig::FromConfigMap(map);
      if (!config.ok()) {
        PERFISO_LOG(kError) << "perfiso-service: bad config pushed: "
                            << config.status().ToString();
        return;
      }
      Status status = controller_->ApplyConfig(*config);
      if (!status.ok()) {
        PERFISO_LOG(kError) << "perfiso-service: config apply failed: " << status.ToString();
      }
    });
  }
  return OkStatus();
}

Status PerfIsoService::Stop() {
  if (controller_ == nullptr) {
    return OkStatus();
  }
  // Orderly shutdown restores OS defaults (unlike Crash()).
  Status status = controller_->SetActive(false);
  controller_->DetachFromSimulator();
  controller_.reset();
  return status;
}

void PerfIsoService::Crash() {
  if (controller_ != nullptr) {
    controller_->DetachFromSimulator();  // the process's timers die with it
    controller_.reset();
  }
}

Status PerfIsoService::UpdateConfig(const PerfIsoConfig& config) {
  PERFISO_RETURN_IF_ERROR(store_->Put(config_name_, config.ToConfigMap()));
  return OkStatus();  // the watcher applied it to the live controller
}

}  // namespace perfiso
