// ConfigStore: cluster-wide configuration distribution, Autopilot-style.
//
// PerfIso reads its static limits from cluster-wide configuration files
// distributed through Autopilot [14] and persists its parameters there so a
// crashed instance "will resume its function by loading its state from disk"
// (§4.2). This store keeps one key=value file per config name under a root
// directory, writes atomically, and notifies watchers on updates.
#ifndef PERFISO_SRC_AUTOPILOT_CONFIG_STORE_H_
#define PERFISO_SRC_AUTOPILOT_CONFIG_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/config.h"
#include "src/util/status.h"

namespace perfiso {

class ConfigStore {
 public:
  explicit ConfigStore(std::string root_dir);

  // Writes `config` durably under `name` and notifies watchers.
  Status Put(const std::string& name, const ConfigMap& config);

  // Loads the current contents of `name`.
  StatusOr<ConfigMap> Get(const std::string& name) const;

  bool Exists(const std::string& name) const;

  // Registers `fn` to run after every successful Put of `name`.
  using WatchFn = std::function<void(const ConfigMap&)>;
  void Watch(const std::string& name, WatchFn fn);

  const std::string& root_dir() const { return root_dir_; }

 private:
  std::string PathFor(const std::string& name) const;

  std::string root_dir_;
  std::map<std::string, std::vector<WatchFn>> watchers_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_AUTOPILOT_CONFIG_STORE_H_
