// PerfIsoService: PerfIso packaged as an Autopilot-managed service (§4.2).
//
// On Start it loads its configuration from the ConfigStore (its durable
// state), builds a controller, and begins polling. Config updates pushed
// through the store are applied at runtime; setting `enabled = false` is the
// kill switch. Crash() models a process crash: the controller vanishes
// without restoring OS defaults, and the next Start() recovers from disk —
// the recoverability property of §4.2.
#ifndef PERFISO_SRC_AUTOPILOT_PERFISO_SERVICE_H_
#define PERFISO_SRC_AUTOPILOT_PERFISO_SERVICE_H_

#include <memory>
#include <string>

#include "src/autopilot/config_store.h"
#include "src/autopilot/service_manager.h"
#include "src/perfiso/controller.h"
#include "src/platform/platform.h"
#include "src/sim/simulator.h"

namespace perfiso {

class PerfIsoService : public ManagedService {
 public:
  // `sim` may be null (the caller then drives controller polls manually).
  PerfIsoService(Platform* platform, ConfigStore* store, std::string config_name,
                 Simulator* sim);

  // ManagedService:
  const std::string& name() const override { return name_; }
  Status Start() override;
  Status Stop() override;
  bool Healthy() const override { return controller_ != nullptr; }

  // Simulates a process crash (no cleanup, no default restore).
  void Crash();

  // Issues a runtime command altering one limit (the paper's client app /
  // runtime command path, §4). The change is persisted before being applied.
  Status UpdateConfig(const PerfIsoConfig& config);

  PerfIsoController* controller() { return controller_.get(); }

 private:
  Platform* platform_;
  ConfigStore* store_;
  std::string config_name_;
  std::string name_ = "perfiso";
  Simulator* sim_;
  std::unique_ptr<PerfIsoController> controller_;
  bool watching_ = false;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_AUTOPILOT_PERFISO_SERVICE_H_
