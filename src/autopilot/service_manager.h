// Autopilot-style service supervision.
//
// Autopilot provides "a stable service management interface to start, stop,
// and configure software" and restarts crashed services (§4.2). PerfIso runs
// as one such service; these classes model exactly the lifecycle guarantees
// the paper relies on (restart-on-crash, resume-from-disk).
#ifndef PERFISO_SRC_AUTOPILOT_SERVICE_MANAGER_H_
#define PERFISO_SRC_AUTOPILOT_SERVICE_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace perfiso {

class ManagedService {
 public:
  virtual ~ManagedService() = default;
  virtual const std::string& name() const = 0;
  virtual Status Start() = 0;
  virtual Status Stop() = 0;
  virtual bool Healthy() const = 0;
};

class ServiceManager {
 public:
  // Services are owned by the caller and must outlive the manager.
  void Register(ManagedService* service);

  // Starts every registered service.
  Status StartAll();
  Status StopAll();

  // One supervision pass: restarts any unhealthy service.
  void Tick();

  int64_t Restarts(const std::string& service_name) const;

 private:
  std::vector<ManagedService*> services_;
  std::map<std::string, int64_t> restarts_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_AUTOPILOT_SERVICE_MANAGER_H_
