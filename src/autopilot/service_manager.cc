#include "src/autopilot/service_manager.h"

#include "src/util/logging.h"

namespace perfiso {

void ServiceManager::Register(ManagedService* service) { services_.push_back(service); }

Status ServiceManager::StartAll() {
  for (ManagedService* service : services_) {
    PERFISO_RETURN_IF_ERROR(service->Start());
  }
  return OkStatus();
}

Status ServiceManager::StopAll() {
  Status first_error = OkStatus();
  for (ManagedService* service : services_) {
    Status status = service->Stop();
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

void ServiceManager::Tick() {
  for (ManagedService* service : services_) {
    if (service->Healthy()) {
      continue;
    }
    PERFISO_LOG(kWarning) << "autopilot: service " << service->name()
                          << " unhealthy, restarting";
    (void)service->Stop();
    Status status = service->Start();
    ++restarts_[service->name()];
    if (!status.ok()) {
      PERFISO_LOG(kError) << "autopilot: restart of " << service->name()
                          << " failed: " << status.ToString();
    }
  }
}

int64_t ServiceManager::Restarts(const std::string& service_name) const {
  auto it = restarts_.find(service_name);
  return it == restarts_.end() ? 0 : it->second;
}

}  // namespace perfiso
