#include "src/autopilot/config_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace perfiso {

ConfigStore::ConfigStore(std::string root_dir) : root_dir_(std::move(root_dir)) {
  // Best-effort creation; Put reports failures if the directory is unusable.
  ::mkdir(root_dir_.c_str(), 0755);
}

std::string ConfigStore::PathFor(const std::string& name) const {
  return root_dir_ + "/" + name + ".cfg";
}

Status ConfigStore::Put(const std::string& name, const ConfigMap& config) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return InvalidArgumentError("invalid config name: " + name);
  }
  PERFISO_RETURN_IF_ERROR(config.WriteFile(PathFor(name)));
  auto it = watchers_.find(name);
  if (it != watchers_.end()) {
    for (const WatchFn& fn : it->second) {
      fn(config);
    }
  }
  return OkStatus();
}

StatusOr<ConfigMap> ConfigStore::Get(const std::string& name) const {
  return ConfigMap::LoadFile(PathFor(name));
}

bool ConfigStore::Exists(const std::string& name) const {
  struct stat st{};
  return ::stat(PathFor(name).c_str(), &st) == 0;
}

void ConfigStore::Watch(const std::string& name, WatchFn fn) {
  watchers_[name].push_back(std::move(fn));
}

}  // namespace perfiso
