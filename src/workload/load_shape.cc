#include "src/workload/load_shape.h"

#include <algorithm>
#include <cmath>

namespace perfiso {

const char* LoadShapeKindName(LoadShapeKind kind) {
  switch (kind) {
    case LoadShapeKind::kConstant:
      return "constant";
    case LoadShapeKind::kDiurnal:
      return "diurnal";
    case LoadShapeKind::kRamp:
      return "ramp";
    case LoadShapeKind::kFlashCrowd:
      return "flash_crowd";
    case LoadShapeKind::kSquareWave:
      return "square_wave";
    case LoadShapeKind::kPiecewise:
      return "piecewise";
  }
  return "?";
}

StatusOr<LoadShapeKind> ParseLoadShapeKind(const std::string& name) {
  if (name == "constant") {
    return LoadShapeKind::kConstant;
  }
  if (name == "diurnal") {
    return LoadShapeKind::kDiurnal;
  }
  if (name == "ramp") {
    return LoadShapeKind::kRamp;
  }
  if (name == "flash_crowd") {
    return LoadShapeKind::kFlashCrowd;
  }
  if (name == "square_wave") {
    return LoadShapeKind::kSquareWave;
  }
  if (name == "piecewise") {
    return LoadShapeKind::kPiecewise;
  }
  return InvalidArgumentError("unknown load shape: " + name);
}

double LoadShapeSpec::RateAt(SimDuration t_rel) const {
  const double t = ToSeconds(t_rel);
  switch (kind) {
    case LoadShapeKind::kConstant:
      return qps;
    case LoadShapeKind::kDiurnal: {
      const double f = diurnal_trough_fraction;
      const double phase = 2 * M_PI * t / diurnal_period_sec;
      return qps * (f + (1 - f) * (1 - std::cos(phase)) / 2);
    }
    case LoadShapeKind::kRamp: {
      if (t >= ramp_duration_sec) {
        return ramp_end_qps;
      }
      return qps + (ramp_end_qps - qps) * t / ramp_duration_sec;
    }
    case LoadShapeKind::kFlashCrowd:
      return (t >= flash_start_sec && t < flash_start_sec + flash_duration_sec)
                 ? flash_spike_qps
                 : qps;
    case LoadShapeKind::kSquareWave: {
      const double in_period = std::fmod(t, square_period_sec);
      return in_period < square_duty * square_period_sec ? square_burst_qps : qps;
    }
    case LoadShapeKind::kPiecewise: {
      double rate = piecewise.front().qps;
      for (const PiecewisePoint& point : piecewise) {
        if (t < point.at_sec) {
          break;
        }
        rate = point.qps;
      }
      return rate;
    }
  }
  return qps;
}

double LoadShapeSpec::PeakRate() const {
  switch (kind) {
    case LoadShapeKind::kConstant:
      return qps;
    case LoadShapeKind::kDiurnal:
      return qps;  // trough_fraction <= 1, so the peak is the nominal qps
    case LoadShapeKind::kRamp:
      return std::max(qps, ramp_end_qps);
    case LoadShapeKind::kFlashCrowd:
      return std::max(qps, flash_spike_qps);
    case LoadShapeKind::kSquareWave:
      return std::max(qps, square_burst_qps);
    case LoadShapeKind::kPiecewise: {
      double peak = 0;
      for (const PiecewisePoint& point : piecewise) {
        peak = std::max(peak, point.qps);
      }
      return peak;
    }
  }
  return qps;
}

Status LoadShapeSpec::Validate() const {
  // Reject inf/NaN up front: one-sided range checks below would let them
  // through (NaN comparisons are all false), and an infinite rate wedges the
  // thinning loop at one arrival per tick instead of failing loudly.
  for (double value : {qps, diurnal_period_sec, diurnal_trough_fraction, ramp_end_qps,
                       ramp_duration_sec, flash_spike_qps, flash_start_sec,
                       flash_duration_sec, square_burst_qps, square_period_sec,
                       square_duty}) {
    if (!std::isfinite(value)) {
      return InvalidArgumentError("load shape parameters must be finite");
    }
  }
  for (const PiecewisePoint& point : piecewise) {
    if (!std::isfinite(point.at_sec) || !std::isfinite(point.qps)) {
      return InvalidArgumentError("piecewise entries must be finite");
    }
  }
  if (qps < 0) {
    return InvalidArgumentError("load qps must be >= 0");
  }
  switch (kind) {
    case LoadShapeKind::kConstant:
      if (qps <= 0) {
        return InvalidArgumentError("constant load qps must be positive");
      }
      break;
    case LoadShapeKind::kDiurnal:
      if (qps <= 0) {
        return InvalidArgumentError("diurnal peak qps must be positive");
      }
      if (diurnal_period_sec <= 0) {
        return InvalidArgumentError("diurnal period must be positive");
      }
      if (diurnal_trough_fraction < 0 || diurnal_trough_fraction > 1) {
        return InvalidArgumentError("diurnal trough_fraction must be in [0, 1]");
      }
      break;
    case LoadShapeKind::kRamp:
      if (ramp_end_qps < 0) {
        return InvalidArgumentError("ramp end qps must be >= 0");
      }
      if (ramp_duration_sec <= 0) {
        return InvalidArgumentError("ramp duration must be positive");
      }
      if (qps <= 0 && ramp_end_qps <= 0) {
        return InvalidArgumentError("ramp must reach a positive rate");
      }
      break;
    case LoadShapeKind::kFlashCrowd:
      if (flash_spike_qps < 0) {
        return InvalidArgumentError("flash spike qps must be >= 0");
      }
      if (flash_start_sec < 0 || flash_duration_sec <= 0) {
        return InvalidArgumentError("flash window must be non-negative start, positive duration");
      }
      if (qps <= 0 && flash_spike_qps <= 0) {
        return InvalidArgumentError("flash crowd must have a positive rate somewhere");
      }
      break;
    case LoadShapeKind::kSquareWave:
      if (square_burst_qps < 0) {
        return InvalidArgumentError("square burst qps must be >= 0");
      }
      if (square_period_sec <= 0) {
        return InvalidArgumentError("square period must be positive");
      }
      if (square_duty <= 0 || square_duty >= 1) {
        return InvalidArgumentError("square duty must be in (0, 1)");
      }
      if (qps <= 0 && square_burst_qps <= 0) {
        return InvalidArgumentError("square wave must have a positive rate somewhere");
      }
      break;
    case LoadShapeKind::kPiecewise: {
      if (piecewise.empty()) {
        return InvalidArgumentError("piecewise table must not be empty");
      }
      double prev = -1;
      bool any_positive = false;
      for (const PiecewisePoint& point : piecewise) {
        if (point.at_sec < 0) {
          return InvalidArgumentError("piecewise times must be >= 0");
        }
        if (point.at_sec <= prev) {
          return InvalidArgumentError("piecewise times must be strictly increasing");
        }
        if (point.qps < 0) {
          return InvalidArgumentError("piecewise qps must be >= 0");
        }
        any_positive |= point.qps > 0;
        prev = point.at_sec;
      }
      if (!any_positive) {
        return InvalidArgumentError("piecewise table must contain a positive rate");
      }
      break;
    }
  }
  return OkStatus();
}

LoadShapeSpec ConstantLoad(double qps) {
  LoadShapeSpec shape;
  shape.kind = LoadShapeKind::kConstant;
  shape.qps = qps;
  return shape;
}

LoadShapeSpec DiurnalLoad(double peak_qps, double period_sec, double trough_fraction) {
  LoadShapeSpec shape;
  shape.kind = LoadShapeKind::kDiurnal;
  shape.qps = peak_qps;
  shape.diurnal_period_sec = period_sec;
  shape.diurnal_trough_fraction = trough_fraction;
  return shape;
}

LoadShapeSpec FlashCrowdLoad(double base_qps, double spike_qps, double start_sec,
                             double duration_sec) {
  LoadShapeSpec shape;
  shape.kind = LoadShapeKind::kFlashCrowd;
  shape.qps = base_qps;
  shape.flash_spike_qps = spike_qps;
  shape.flash_start_sec = start_sec;
  shape.flash_duration_sec = duration_sec;
  return shape;
}

}  // namespace perfiso
