// Secondary-tenant workloads.
//
// CpuBully reproduces the paper's micro-benchmark: "a multi-threaded program
// with each worker thread computing the sum of several integer values"
// (§5.3) — pure CPU, negligible memory/disk. DiskBully reproduces the
// DiskSPD configuration from the cluster experiments: mixed 33% read / 67%
// write sequential synchronous I/O against the HDD stripe. HdfsClient models
// the DataNode/NodeManager traffic every IndexServe machine carries, and
// MlTrainingJob models the batch ML training computation of Fig. 10.
#ifndef PERFISO_SRC_WORKLOAD_BULLIES_H_
#define PERFISO_SRC_WORKLOAD_BULLIES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/disk/io_scheduler.h"
#include "src/net/fabric.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {

// CPU-bound bully: `threads` loop workers inside one job object. Progress is
// CPU time (the integer-sum loop does fixed work per cycle, so work done is
// proportional to cycles consumed).
class CpuBully {
 public:
  // Spawns workers inside an existing job object (the unified secondary job).
  CpuBully(SimMachine* machine, JobId job, int threads,
           const std::string& name = "cpu-bully");
  // Convenience: creates a dedicated job object first.
  CpuBully(SimMachine* machine, int threads, const std::string& name = "cpu-bully");

  JobId job() const { return job_; }
  int threads() const { return threads_; }

  // Work completed so far, in core-seconds.
  double Progress() const;

  void Stop();

 private:
  SimMachine* machine_;
  JobId job_;
  int threads_;
};

// Disk-bound bully (DiskSPD-like): keeps `queue_depth` synchronous sequential
// requests in flight against a scheduler, with the given read fraction.
class DiskBully {
 public:
  struct Options {
    int owner = 900;
    int queue_depth = 8;
    int64_t block_bytes = 8 * 1024;   // the cluster experiment uses 8 KB ops
    double read_fraction = 0.33;      // 33% reads / 67% writes
    // A small CPU cost per I/O keeps the issuing threads honest but cheap.
    SimDuration cpu_per_io = FromMicros(5);
  };

  DiskBully(Simulator* sim, SimMachine* machine, IoScheduler* io, JobId job, Options options,
            Rng rng);

  void Start();
  void Stop();

  int64_t completed_ios() const { return completed_ios_; }
  double AchievedIops(SimTime since, SimTime now, int64_t ios_then) const;

 private:
  void IssueOne();

  Simulator* sim_;
  SimMachine* machine_;
  IoScheduler* io_;
  JobId job_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  int64_t completed_ios_ = 0;
};

// HDFS DataNode + NodeManager traffic: replication ingest (sequential writes)
// plus client reads, each at a configured target rate; also burns a small
// amount of CPU inside the secondary job (the paper measures the HDFS client
// at up to 5% of total CPU, §6.2).
class HdfsClient {
 public:
  struct Options {
    int owner = 901;
    int64_t block_bytes = 64 * 1024;
    double client_bytes_per_sec = 60e6;       // paper: HDFS clients 60 MB/s
    double replication_bytes_per_sec = 20e6;  // paper: replication 20 MB/s
    double cpu_fraction = 0.04;               // fraction of one machine's CPU
  };

  HdfsClient(Simulator* sim, SimMachine* machine, IoScheduler* io, JobId job, Options options,
             Rng rng);

  void Start();
  void Stop();
  int64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  void IssueClientIo();
  void IssueReplicationIo();

  Simulator* sim_;
  SimMachine* machine_;
  IoScheduler* io_;
  JobId job_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  int64_t bytes_transferred_ = 0;
  std::unique_ptr<PeriodicTask> cpu_ticker_;
};

// HDFS-replication-style network bully: keeps `streams` block transfers in
// flight to random peers, each preceded by a small CPU burst (the DataNode
// pipeline thread). Flows are secondary-class, so they yield to primary
// traffic in the local NIC's priority TX queues and drain the machine's
// egress bucket when PerfIso caps it — but uncapped they pile into the
// victims' FIFO RX links and the shared ToR uplinks, which is exactly how a
// network bully destroys the cluster tail without touching its own CPU.
class NetworkBully {
 public:
  struct Options {
    int64_t block_bytes = 4 * 1024 * 1024;  // HDFS-style bulk blocks
    int streams = 4;                        // concurrent outstanding blocks
    SimDuration cpu_per_block = FromMicros(50);
    std::vector<int> peers;  // destination fabric endpoints (may include self)
  };

  NetworkBully(Simulator* sim, SimMachine* machine, Fabric* fabric, int endpoint, JobId job,
               Options options, Rng rng);

  void Start();
  void Stop();

  int64_t blocks_delivered() const { return blocks_delivered_; }
  int64_t bytes_delivered() const { return bytes_delivered_; }
  double AchievedBps(SimTime since, SimTime now, int64_t bytes_then) const;

 private:
  void SendBlock();

  Simulator* sim_;
  SimMachine* machine_;
  Fabric* fabric_;
  int endpoint_;
  JobId job_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  int64_t blocks_delivered_ = 0;
  int64_t bytes_delivered_ = 0;
};

// Batch ML training (Fig. 10's secondary): CPU-heavy epochs with periodic
// bulk reads of training data from the HDD stripe and a growing memory
// footprint (which exercises the memory watchdog).
class MlTrainingJob {
 public:
  struct Options {
    int owner = 903;
    int worker_threads = 48;
    int64_t minibatch_read_bytes = 4 * 1024 * 1024;
    SimDuration read_period = FromMillis(250);
    int64_t memory_growth_per_sec = 64LL * 1024 * 1024;
    int64_t memory_cap_bytes = 16LL * 1024 * 1024 * 1024;
  };

  MlTrainingJob(Simulator* sim, SimMachine* machine, IoScheduler* io, JobId job,
                Options options);

  void Start();
  void Stop();
  double Progress() const;  // core-seconds of training compute

 private:
  void Tick(SimTime now);

  Simulator* sim_;
  SimMachine* machine_;
  IoScheduler* io_;
  JobId job_;
  Options options_;
  bool running_ = false;
  std::unique_ptr<PeriodicTask> ticker_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_WORKLOAD_BULLIES_H_
