#include "src/workload/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace perfiso {

const char* ClientKindName(ClientKind kind) {
  switch (kind) {
    case ClientKind::kOpenLoop:
      return "open_loop";
    case ClientKind::kClosedLoop:
      return "closed_loop";
  }
  return "?";
}

StatusOr<ClientKind> ParseClientKind(const std::string& name) {
  if (name == "open_loop") {
    return ClientKind::kOpenLoop;
  }
  if (name == "closed_loop") {
    return ClientKind::kClosedLoop;
  }
  return InvalidArgumentError("unknown client kind: " + name);
}

namespace {

constexpr char kWorkloadPrefix[] = "workload.";
constexpr char kPerfIsoPrefix[] = "perfiso.";
constexpr char kObsPrefix[] = "obs.";
constexpr char kFaultPrefix[] = "fault.";

std::string EncodePiecewise(const std::vector<PiecewisePoint>& points) {
  std::string out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += FormatDouble(points[i].at_sec);
    out += ':';
    out += FormatDouble(points[i].qps);
  }
  return out;
}

StatusOr<std::vector<PiecewisePoint>> DecodePiecewise(const std::string& text) {
  if (!text.empty() && text.back() == ',') {
    return InvalidArgumentError("piecewise table has a trailing comma");
  }
  std::vector<PiecewisePoint> points;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) {
      return InvalidArgumentError("piecewise table has an empty entry");
    }
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("piecewise entry missing ':': " + item);
    }
    char* end = nullptr;
    PiecewisePoint point;
    point.at_sec = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + colon) {
      return InvalidArgumentError("malformed piecewise time: " + item);
    }
    const char* qps_begin = item.c_str() + colon + 1;
    point.qps = std::strtod(qps_begin, &end);
    if (end == qps_begin || *end != '\0') {
      return InvalidArgumentError("malformed piecewise qps: " + item);
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace

ConfigMap ScenarioSpec::ToConfigMap() const {
  ConfigMap map;
  if (!name.empty()) {
    map.SetString("workload.name", name);
  }

  map.SetString("workload.shape", LoadShapeKindName(load.kind));
  if (load.kind != LoadShapeKind::kPiecewise) {
    // Piecewise rates come entirely from the table; emitting qps would let
    // the strict parser accept an inapplicable (silently ignored) knob.
    map.SetDouble("workload.qps", load.qps);
  }
  switch (load.kind) {
    case LoadShapeKind::kConstant:
      break;
    case LoadShapeKind::kDiurnal:
      map.SetDouble("workload.diurnal.period_sec", load.diurnal_period_sec);
      map.SetDouble("workload.diurnal.trough_fraction", load.diurnal_trough_fraction);
      break;
    case LoadShapeKind::kRamp:
      map.SetDouble("workload.ramp.end_qps", load.ramp_end_qps);
      map.SetDouble("workload.ramp.duration_sec", load.ramp_duration_sec);
      break;
    case LoadShapeKind::kFlashCrowd:
      map.SetDouble("workload.flash.spike_qps", load.flash_spike_qps);
      map.SetDouble("workload.flash.start_sec", load.flash_start_sec);
      map.SetDouble("workload.flash.duration_sec", load.flash_duration_sec);
      break;
    case LoadShapeKind::kSquareWave:
      map.SetDouble("workload.square.burst_qps", load.square_burst_qps);
      map.SetDouble("workload.square.period_sec", load.square_period_sec);
      map.SetDouble("workload.square.duty", load.square_duty);
      break;
    case LoadShapeKind::kPiecewise:
      map.SetString("workload.piecewise", EncodePiecewise(load.piecewise));
      break;
  }

  map.SetString("workload.client", ClientKindName(client));
  if (client == ClientKind::kClosedLoop) {
    map.SetInt("workload.closed.outstanding", closed.outstanding);
    map.SetInt("workload.closed.think_time_ns", closed.think_time);
  }

  map.SetInt("workload.tenants.cpu_bully_threads", tenants.cpu_bully_threads);
  map.SetBool("workload.tenants.disk_bully", tenants.disk_bully);
  map.SetBool("workload.tenants.hdfs_client", tenants.hdfs_client);
  map.SetBool("workload.tenants.ml_training", tenants.ml_training);
  if (tenants.ml_training) {
    map.SetInt("workload.tenants.ml_worker_threads", tenants.ml_worker_threads);
  }

  map.SetInt("workload.topology.columns", topology.columns);
  if (topology.columns > 0) {
    map.SetInt("workload.topology.rows", topology.rows);
    map.SetInt("workload.topology.tla_machines", topology.tla_machines);
  }
  if (sim_partitions != 0) {
    map.SetInt("workload.sim.partitions", sim_partitions);
  }

  map.SetInt("workload.warmup_ns", warmup);
  map.SetInt("workload.measure_ns", measure);
  map.SetInt("workload.trace.count", static_cast<int64_t>(trace_count));
  map.SetInt("workload.trace.seed", static_cast<int64_t>(trace_seed));
  map.SetInt("workload.seeds.client", static_cast<int64_t>(client_seed));
  map.SetInt("workload.seeds.node", static_cast<int64_t>(node_seed));

  map.SetString("workload.isolation", perfiso.has_value() ? "perfiso" : "none");
  if (perfiso.has_value()) {
    const ConfigMap perfiso_map = perfiso->ToConfigMap();
    for (const auto& [key, value] : perfiso_map.entries()) {
      map.SetString(kPerfIsoPrefix + key, value);
    }
  }
  obs.AppendToConfigMap(&map);
  fault.AppendToConfigMap(&map);
  return map;
}

StatusOr<ScenarioSpec> ScenarioSpec::FromConfigMap(const ConfigMap& map) {
  ScenarioSpec spec;

  // Split namespaces up front; anything outside workload./perfiso./obs./
  // fault. is foreign.
  ConfigMap perfiso_map;
  for (const auto& [key, value] : map.entries()) {
    if (key.rfind(kPerfIsoPrefix, 0) == 0) {
      perfiso_map.SetString(key.substr(sizeof(kPerfIsoPrefix) - 1), value);
    } else if (key.rfind(kWorkloadPrefix, 0) != 0 && key.rfind(kObsPrefix, 0) != 0 &&
               key.rfind(kFaultPrefix, 0) != 0) {
      return InvalidArgumentError(
          "scenario key outside workload./perfiso./obs./fault.: " + key);
    }
  }

  auto name = map.GetString("workload.name", "");
  PERFISO_RETURN_IF_ERROR(name.status());
  spec.name = *name;

  auto shape_name = map.GetString("workload.shape", LoadShapeKindName(spec.load.kind));
  PERFISO_RETURN_IF_ERROR(shape_name.status());
  auto shape = ParseLoadShapeKind(*shape_name);
  PERFISO_RETURN_IF_ERROR(shape.status());
  spec.load.kind = *shape;

  auto qps = map.GetDouble("workload.qps", spec.load.qps);
  PERFISO_RETURN_IF_ERROR(qps.status());
  spec.load.qps = *qps;

  auto period = map.GetDouble("workload.diurnal.period_sec", spec.load.diurnal_period_sec);
  PERFISO_RETURN_IF_ERROR(period.status());
  spec.load.diurnal_period_sec = *period;
  auto trough =
      map.GetDouble("workload.diurnal.trough_fraction", spec.load.diurnal_trough_fraction);
  PERFISO_RETURN_IF_ERROR(trough.status());
  spec.load.diurnal_trough_fraction = *trough;

  auto ramp_end = map.GetDouble("workload.ramp.end_qps", spec.load.ramp_end_qps);
  PERFISO_RETURN_IF_ERROR(ramp_end.status());
  spec.load.ramp_end_qps = *ramp_end;
  auto ramp_dur = map.GetDouble("workload.ramp.duration_sec", spec.load.ramp_duration_sec);
  PERFISO_RETURN_IF_ERROR(ramp_dur.status());
  spec.load.ramp_duration_sec = *ramp_dur;

  auto spike = map.GetDouble("workload.flash.spike_qps", spec.load.flash_spike_qps);
  PERFISO_RETURN_IF_ERROR(spike.status());
  spec.load.flash_spike_qps = *spike;
  auto flash_start = map.GetDouble("workload.flash.start_sec", spec.load.flash_start_sec);
  PERFISO_RETURN_IF_ERROR(flash_start.status());
  spec.load.flash_start_sec = *flash_start;
  auto flash_dur = map.GetDouble("workload.flash.duration_sec", spec.load.flash_duration_sec);
  PERFISO_RETURN_IF_ERROR(flash_dur.status());
  spec.load.flash_duration_sec = *flash_dur;

  auto burst = map.GetDouble("workload.square.burst_qps", spec.load.square_burst_qps);
  PERFISO_RETURN_IF_ERROR(burst.status());
  spec.load.square_burst_qps = *burst;
  auto square_period = map.GetDouble("workload.square.period_sec", spec.load.square_period_sec);
  PERFISO_RETURN_IF_ERROR(square_period.status());
  spec.load.square_period_sec = *square_period;
  auto duty = map.GetDouble("workload.square.duty", spec.load.square_duty);
  PERFISO_RETURN_IF_ERROR(duty.status());
  spec.load.square_duty = *duty;

  auto piecewise = map.GetString("workload.piecewise", "");
  PERFISO_RETURN_IF_ERROR(piecewise.status());
  if (!piecewise->empty()) {
    auto points = DecodePiecewise(*piecewise);
    PERFISO_RETURN_IF_ERROR(points.status());
    spec.load.piecewise = *points;
  } else if (map.Has("workload.piecewise")) {
    return InvalidArgumentError("workload.piecewise must not be empty");
  }

  auto client_name = map.GetString("workload.client", ClientKindName(spec.client));
  PERFISO_RETURN_IF_ERROR(client_name.status());
  auto client = ParseClientKind(*client_name);
  PERFISO_RETURN_IF_ERROR(client.status());
  spec.client = *client;

  auto outstanding = map.GetInt("workload.closed.outstanding", spec.closed.outstanding);
  PERFISO_RETURN_IF_ERROR(outstanding.status());
  spec.closed.outstanding = static_cast<int>(*outstanding);
  auto think = map.GetInt("workload.closed.think_time_ns", spec.closed.think_time);
  PERFISO_RETURN_IF_ERROR(think.status());
  spec.closed.think_time = *think;

  auto bully = map.GetInt("workload.tenants.cpu_bully_threads", spec.tenants.cpu_bully_threads);
  PERFISO_RETURN_IF_ERROR(bully.status());
  spec.tenants.cpu_bully_threads = static_cast<int>(*bully);
  auto disk = map.GetBool("workload.tenants.disk_bully", spec.tenants.disk_bully);
  PERFISO_RETURN_IF_ERROR(disk.status());
  spec.tenants.disk_bully = *disk;
  auto hdfs = map.GetBool("workload.tenants.hdfs_client", spec.tenants.hdfs_client);
  PERFISO_RETURN_IF_ERROR(hdfs.status());
  spec.tenants.hdfs_client = *hdfs;
  auto ml = map.GetBool("workload.tenants.ml_training", spec.tenants.ml_training);
  PERFISO_RETURN_IF_ERROR(ml.status());
  spec.tenants.ml_training = *ml;
  auto ml_threads =
      map.GetInt("workload.tenants.ml_worker_threads", spec.tenants.ml_worker_threads);
  PERFISO_RETURN_IF_ERROR(ml_threads.status());
  spec.tenants.ml_worker_threads = static_cast<int>(*ml_threads);

  auto columns = map.GetInt("workload.topology.columns", spec.topology.columns);
  PERFISO_RETURN_IF_ERROR(columns.status());
  spec.topology.columns = static_cast<int>(*columns);
  auto rows = map.GetInt("workload.topology.rows", spec.topology.rows);
  PERFISO_RETURN_IF_ERROR(rows.status());
  spec.topology.rows = static_cast<int>(*rows);
  auto tlas = map.GetInt("workload.topology.tla_machines", spec.topology.tla_machines);
  PERFISO_RETURN_IF_ERROR(tlas.status());
  spec.topology.tla_machines = static_cast<int>(*tlas);

  auto partitions = map.GetInt("workload.sim.partitions", spec.sim_partitions);
  PERFISO_RETURN_IF_ERROR(partitions.status());
  spec.sim_partitions = static_cast<int>(*partitions);

  auto warmup = map.GetInt("workload.warmup_ns", spec.warmup);
  PERFISO_RETURN_IF_ERROR(warmup.status());
  spec.warmup = *warmup;
  auto measure = map.GetInt("workload.measure_ns", spec.measure);
  PERFISO_RETURN_IF_ERROR(measure.status());
  spec.measure = *measure;

  auto trace_count = map.GetInt("workload.trace.count", static_cast<int64_t>(spec.trace_count));
  PERFISO_RETURN_IF_ERROR(trace_count.status());
  if (*trace_count <= 0) {
    return InvalidArgumentError("workload.trace.count must be positive");
  }
  spec.trace_count = static_cast<size_t>(*trace_count);
  auto trace_seed = map.GetInt("workload.trace.seed", static_cast<int64_t>(spec.trace_seed));
  PERFISO_RETURN_IF_ERROR(trace_seed.status());
  spec.trace_seed = static_cast<uint64_t>(*trace_seed);
  auto client_seed = map.GetInt("workload.seeds.client", static_cast<int64_t>(spec.client_seed));
  PERFISO_RETURN_IF_ERROR(client_seed.status());
  spec.client_seed = static_cast<uint64_t>(*client_seed);
  auto node_seed = map.GetInt("workload.seeds.node", static_cast<int64_t>(spec.node_seed));
  PERFISO_RETURN_IF_ERROR(node_seed.status());
  spec.node_seed = static_cast<uint64_t>(*node_seed);

  auto isolation = map.GetString("workload.isolation", "none");
  PERFISO_RETURN_IF_ERROR(isolation.status());
  if (*isolation == "perfiso") {
    auto config = PerfIsoConfig::FromConfigMapStrict(perfiso_map);
    PERFISO_RETURN_IF_ERROR(config.status());
    spec.perfiso = *config;
  } else if (*isolation != "none") {
    return InvalidArgumentError("workload.isolation must be none or perfiso, got " + *isolation);
  } else if (!perfiso_map.entries().empty()) {
    return InvalidArgumentError("perfiso.* keys present but workload.isolation = none");
  }

  auto obs = ObsSpec::FromConfigMap(map);
  PERFISO_RETURN_IF_ERROR(obs.status());
  spec.obs = *obs;

  auto fault = FaultPlan::FromConfigMap(map);
  PERFISO_RETURN_IF_ERROR(fault.status());
  spec.fault = *fault;

  PERFISO_RETURN_IF_ERROR(spec.Validate());

  // Unknown-key rejection: re-serialize the parsed spec and require every
  // input key to appear. This catches both typos (workload.flash.spikeqps)
  // and knobs inapplicable to the active shape/client (a ramp key on a
  // constant scenario) — either would otherwise run silently with defaults.
  const ConfigMap canonical = spec.ToConfigMap();
  for (const auto& [key, value] : map.entries()) {
    if (!canonical.Has(key)) {
      return InvalidArgumentError("unknown or inapplicable scenario key: " + key);
    }
  }
  return spec;
}

Status ScenarioSpec::Validate() const {
  PERFISO_RETURN_IF_ERROR(load.Validate());
  if (closed.outstanding <= 0) {
    return InvalidArgumentError("closed.outstanding must be positive");
  }
  if (closed.think_time < 0) {
    return InvalidArgumentError("closed.think_time must be >= 0");
  }
  if (tenants.cpu_bully_threads < 0) {
    return InvalidArgumentError("tenants.cpu_bully_threads must be >= 0");
  }
  if (tenants.ml_worker_threads <= 0) {
    return InvalidArgumentError("tenants.ml_worker_threads must be positive");
  }
  if (topology.columns < 0) {
    return InvalidArgumentError("topology.columns must be >= 0");
  }
  if (topology.columns > 0 && (topology.rows <= 0 || topology.tla_machines <= 0)) {
    return InvalidArgumentError("cluster topologies need rows and tla_machines >= 1");
  }
  if (sim_partitions < 0) {
    return InvalidArgumentError("sim.partitions must be >= 0");
  }
  if (sim_partitions == 1) {
    return InvalidArgumentError("sim.partitions must be 0 (sequential) or >= 2");
  }
  if (sim_partitions > 0 && topology.columns <= 0) {
    return InvalidArgumentError("sim.partitions requires a cluster topology (columns > 0)");
  }
  if (warmup < 0) {
    return InvalidArgumentError("warmup must be >= 0");
  }
  if (measure <= 0) {
    return InvalidArgumentError("measure must be positive");
  }
  if (trace_count == 0) {
    return InvalidArgumentError("trace_count must be positive");
  }
  // Fault nodes must fit the topology (single-box scenarios have one node).
  const int fault_nodes = topology.columns > 0 ? topology.columns * topology.rows : 1;
  PERFISO_RETURN_IF_ERROR(fault.Validate(fault_nodes));
  return OkStatus();
}

}  // namespace perfiso
