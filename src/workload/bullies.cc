#include "src/workload/bullies.h"

#include <cassert>

namespace perfiso {

CpuBully::CpuBully(SimMachine* machine, JobId job, int threads, const std::string& name)
    : machine_(machine), job_(job), threads_(threads) {
  assert(threads >= 0);
  assert(job.valid());
  for (int i = 0; i < threads; ++i) {
    machine_->SpawnLoopThread(name + "-w" + std::to_string(i), TenantClass::kSecondary, job_);
  }
}

CpuBully::CpuBully(SimMachine* machine, int threads, const std::string& name)
    : CpuBully(machine, machine->CreateJob(name), threads, name) {}

double CpuBully::Progress() const {
  auto cpu = machine_->JobCpuTime(job_);
  return cpu.ok() ? ToSeconds(*cpu) : 0;
}

void CpuBully::Stop() { (void)machine_->KillJob(job_); }

DiskBully::DiskBully(Simulator* sim, SimMachine* machine, IoScheduler* io, JobId job,
                     Options options, Rng rng)
    : sim_(sim), machine_(machine), io_(io), job_(job), options_(options), rng_(rng) {}

void DiskBully::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (int i = 0; i < options_.queue_depth; ++i) {
    IssueOne();
  }
}

void DiskBully::Stop() { running_ = false; }

void DiskBully::IssueOne() {
  if (!running_) {
    return;
  }
  // Synchronous pattern: a tiny CPU burst (issuing thread), then the I/O,
  // then the next I/O from the completion.
  machine_->SpawnThread("disk-bully-io", TenantClass::kSecondary, job_, options_.cpu_per_io,
                        [this](SimTime) {
                          IoRequest request;
                          request.owner = options_.owner;
                          request.op = rng_.Bernoulli(options_.read_fraction) ? IoOp::kRead
                                                                              : IoOp::kWrite;
                          request.bytes = options_.block_bytes;
                          request.sequential = true;
                          request.on_complete = [this](SimTime) {
                            ++completed_ios_;
                            IssueOne();
                          };
                          io_->Submit(std::move(request));
                        });
}

double DiskBully::AchievedIops(SimTime since, SimTime now, int64_t ios_then) const {
  const double window_sec = ToSeconds(now - since);
  if (window_sec <= 0) {
    return 0;
  }
  return static_cast<double>(completed_ios_ - ios_then) / window_sec;
}

HdfsClient::HdfsClient(Simulator* sim, SimMachine* machine, IoScheduler* io, JobId job,
                       Options options, Rng rng)
    : sim_(sim), machine_(machine), io_(io), job_(job), options_(options), rng_(rng) {}

void HdfsClient::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  // CPU footprint: run cpu_fraction of the machine as rate-unlimited loop
  // threads would be wrong (they'd expand to fill cores); instead spawn one
  // loop thread per whole core's worth and rely on the job's rate cap being
  // managed by PerfIso. We model the ~5% footprint as periodic short bursts.
  const int cores = machine_->NumCores();
  const SimDuration burst = FromMicros(500);
  const auto period = static_cast<SimDuration>(
      static_cast<double>(burst) / (options_.cpu_fraction * cores));
  cpu_ticker_ = std::make_unique<PeriodicTask>(
      sim_, sim_->Now(), std::max<SimDuration>(period, FromMicros(100)), [this, burst](SimTime) {
        if (running_) {
          machine_->SpawnThread("hdfs-cpu", TenantClass::kSecondary, job_, burst, nullptr);
        }
      });
  IssueClientIo();
  IssueReplicationIo();
}

void HdfsClient::Stop() {
  running_ = false;
  cpu_ticker_.reset();
}

void HdfsClient::IssueClientIo() {
  if (!running_) {
    return;
  }
  IoRequest request;
  request.owner = options_.owner;
  request.op = rng_.Bernoulli(0.5) ? IoOp::kRead : IoOp::kWrite;
  request.bytes = options_.block_bytes;
  request.sequential = true;
  request.on_complete = [this](SimTime now) {
    bytes_transferred_ += options_.block_bytes;
    // Pace to the configured rate (the static 60 MB/s limit is additionally
    // enforced by the I/O scheduler's bandwidth cap).
    const auto gap = static_cast<SimDuration>(static_cast<double>(options_.block_bytes) /
                                              options_.client_bytes_per_sec * kSecond);
    sim_->Schedule(now + gap, [this] { IssueClientIo(); });
  };
  io_->Submit(std::move(request));
}

void HdfsClient::IssueReplicationIo() {
  if (!running_) {
    return;
  }
  IoRequest request;
  request.owner = options_.owner + 1;  // replication registers as its own owner
  request.op = IoOp::kWrite;
  request.bytes = options_.block_bytes;
  request.sequential = true;
  request.on_complete = [this](SimTime now) {
    bytes_transferred_ += options_.block_bytes;
    const auto gap = static_cast<SimDuration>(static_cast<double>(options_.block_bytes) /
                                              options_.replication_bytes_per_sec * kSecond);
    sim_->Schedule(now + gap, [this] { IssueReplicationIo(); });
  };
  io_->Submit(std::move(request));
}

NetworkBully::NetworkBully(Simulator* sim, SimMachine* machine, Fabric* fabric, int endpoint,
                           JobId job, Options options, Rng rng)
    : sim_(sim),
      machine_(machine),
      fabric_(fabric),
      endpoint_(endpoint),
      job_(job),
      options_(options),
      rng_(rng) {
  assert(fabric_ != nullptr);
  assert(!options_.peers.empty());
}

void NetworkBully::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (int i = 0; i < options_.streams; ++i) {
    SendBlock();
  }
}

void NetworkBully::Stop() { running_ = false; }

void NetworkBully::SendBlock() {
  if (!running_) {
    return;
  }
  // Closed loop per stream: a pipeline-thread CPU burst, then the block on
  // the wire, then the next block once the far end acknowledges delivery.
  machine_->SpawnThread("net-bully-tx", TenantClass::kSecondary, job_,
                        options_.cpu_per_block, [this](SimTime) {
                          if (!running_) {  // Stop() raced the CPU burst
                            return;
                          }
                          const auto pick = static_cast<size_t>(rng_.UniformInt(
                              0, static_cast<int64_t>(options_.peers.size()) - 1));
                          const int dst = options_.peers[pick];
                          fabric_->Send(endpoint_, dst, options_.block_bytes,
                                        NetClass::kSecondary, [this](SimTime) {
                                          ++blocks_delivered_;
                                          bytes_delivered_ += options_.block_bytes;
                                          SendBlock();
                                        });
                        });
}

double NetworkBully::AchievedBps(SimTime since, SimTime now, int64_t bytes_then) const {
  const double window_sec = ToSeconds(now - since);
  if (window_sec <= 0) {
    return 0;
  }
  return static_cast<double>(bytes_delivered_ - bytes_then) / window_sec;
}

MlTrainingJob::MlTrainingJob(Simulator* sim, SimMachine* machine, IoScheduler* io, JobId job,
                             Options options)
    : sim_(sim), machine_(machine), io_(io), job_(job), options_(options) {}

void MlTrainingJob::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (int i = 0; i < options_.worker_threads; ++i) {
    machine_->SpawnLoopThread("ml-train-w" + std::to_string(i), TenantClass::kSecondary, job_);
  }
  ticker_ = std::make_unique<PeriodicTask>(sim_, sim_->Now() + options_.read_period,
                                           options_.read_period,
                                           [this](SimTime now) { Tick(now); });
}

void MlTrainingJob::Stop() {
  running_ = false;
  ticker_.reset();
  (void)machine_->KillJob(job_);
}

double MlTrainingJob::Progress() const {
  auto cpu = machine_->JobCpuTime(job_);
  return cpu.ok() ? ToSeconds(*cpu) : 0;
}

void MlTrainingJob::Tick(SimTime) {
  if (!running_) {
    return;
  }
  // Minibatch fetch from the HDD stripe.
  IoRequest request;
  request.owner = options_.owner;
  request.op = IoOp::kRead;
  request.bytes = options_.minibatch_read_bytes;
  request.sequential = true;
  io_->Submit(std::move(request));
  // Footprint growth up to the cap (model state, activations, caches).
  auto memory = machine_->JobMemory(job_);
  if (memory.ok() && *memory < options_.memory_cap_bytes) {
    const int64_t growth = static_cast<int64_t>(
        static_cast<double>(options_.memory_growth_per_sec) * ToSeconds(options_.read_period));
    (void)machine_->AddJobMemory(job_, growth);
  }
}

}  // namespace perfiso
