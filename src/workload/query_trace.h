// Synthetic query-trace generation and trace-replay clients.
//
// The paper replays a trace of 500k real Bing queries through an open-loop
// client whose inter-arrival times follow a Poisson process (§5.3). Real
// traces are proprietary, so we generate synthetic ones whose per-query
// complexity distributions are the calibration knobs of the IndexServe model.
//
// Two clients replay a trace:
//  - OpenLoopClient: arrivals follow a (possibly non-homogeneous) Poisson
//    process described by a LoadShapeSpec, independent of completions. This
//    is the paper's load model and the one every figure bench uses.
//  - ClosedLoopClient: a fixed population of logical users, each submitting,
//    waiting for its completion, thinking, and submitting again — the
//    saturation-study model (throughput is completion-limited, latency
//    feedback caps the offered load).
#ifndef PERFISO_SRC_WORKLOAD_QUERY_TRACE_H_
#define PERFISO_SRC_WORKLOAD_QUERY_TRACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"
#include "src/workload/load_shape.h"

namespace perfiso {

// Complexity of one query, fixed at trace-generation time so that replays at
// different arrival rates process identical work (like replaying a trace).
struct QueryWork {
  uint64_t id = 0;
  int fanout = 1;           // parallel chunk lookups
  double size_factor = 1;   // multiplies all CPU costs of this query
  uint64_t seed = 0;        // per-query stream for chunk-level draws
  // Trace context minted by the submitting layer (the TLA in cluster runs);
  // 0 lets the index server mint its own.
  uint64_t trace_ctx = 0;
};

// Distribution parameters for synthetic traces.
struct TraceSpec {
  int fanout_min = 4;
  int fanout_max = 12;
  // Per-query size factor ~ LogNormal(mu, sigma), normalized to mean 1.
  double size_sigma = 0.45;
};

// Generates `count` queries with complexities drawn from `spec`.
std::vector<QueryWork> GenerateTrace(const TraceSpec& spec, size_t count, Rng* rng);

// Replays a trace in an open loop: queries are submitted at the arrivals of a
// non-homogeneous Poisson process with intensity `shape` (§5.3), regardless
// of completions. Arrivals are realized by thinning: candidate gaps are drawn
// exponentially at the shape's peak rate and accepted with probability
// rate(t)/peak, so any target intensity is matched without inversion. The
// trace wraps around if the duration needs more queries than it holds.
//
// Every inter-arrival gap — including the one before the *first* query — is
// drawn from the exponential; gaps are floored at 1 tick (1 ns) so simulated
// time always advances. The floor biases the realized rate only when the mean
// gap approaches a nanosecond (~1e9 QPS), far beyond anything modeled here.
class OpenLoopClient {
 public:
  using SubmitFn = std::function<void(const QueryWork&, SimTime)>;

  OpenLoopClient(Simulator* sim, std::vector<QueryWork> trace, LoadShapeSpec shape,
                 Rng rng, SubmitFn submit);
  // Constant-rate convenience (the original interface).
  OpenLoopClient(Simulator* sim, std::vector<QueryWork> trace, double queries_per_sec,
                 Rng rng, SubmitFn submit);

  // Starts submitting at `start`, stopping after `duration`. Load-shape times
  // are relative to `start`.
  void Run(SimTime start, SimDuration duration);

  // Marks each submission as a "client.arrival" instant on `track`.
  void SetTracer(Tracer* tracer, int32_t track);

  uint64_t submitted() const { return submitted_; }

 private:
  // Next accepted arrival strictly after `from`, or end_time_ if none.
  SimTime DrawNextArrival(SimTime from);
  void ScheduleArrival(SimTime at);

  Simulator* sim_;
  std::vector<QueryWork> trace_;
  LoadShapeSpec shape_;
  double peak_rate_ = 0;
  Rng rng_;
  SubmitFn submit_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  SimTime start_time_ = 0;
  SimTime end_time_ = 0;
  uint64_t submitted_ = 0;
  size_t cursor_ = 0;
};

// Replays a trace in a closed loop: `outstanding` logical users each submit a
// query, wait for the caller to signal its completion via OnComplete(), think
// for an exponential time with mean `think_time`, and submit again. The
// offered load self-limits to outstanding / (response_time + think_time) —
// the saturation-study companion to the open-loop client.
class ClosedLoopClient {
 public:
  using SubmitFn = std::function<void(const QueryWork&, SimTime)>;

  ClosedLoopClient(Simulator* sim, std::vector<QueryWork> trace, int outstanding,
                   SimDuration think_time, Rng rng, SubmitFn submit);

  // Starts the user population at `start` (each user's first submission is
  // preceded by one think time, desynchronizing the population), stopping new
  // submissions after `duration`.
  void Run(SimTime start, SimDuration duration);

  // Must be called once per completed (or dropped) query; resubmits the
  // user after its think time unless the run window has ended.
  void OnComplete();

  // Marks each submission as a "client.arrival" instant on `track`.
  void SetTracer(Tracer* tracer, int32_t track);

  uint64_t submitted() const { return submitted_; }
  int in_flight() const { return in_flight_; }

 private:
  void SubmitAfterThink();

  Simulator* sim_;
  std::vector<QueryWork> trace_;
  int outstanding_;
  SimDuration think_time_;
  Rng rng_;
  SubmitFn submit_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  SimTime end_time_ = 0;
  uint64_t submitted_ = 0;
  int in_flight_ = 0;
  size_t cursor_ = 0;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_WORKLOAD_QUERY_TRACE_H_
