// Synthetic query-trace generation and open-loop replay.
//
// The paper replays a trace of 500k real Bing queries through an open-loop
// client whose inter-arrival times follow a Poisson process (§5.3). Real
// traces are proprietary, so we generate synthetic ones whose per-query
// complexity distributions are the calibration knobs of the IndexServe model.
#ifndef PERFISO_SRC_WORKLOAD_QUERY_TRACE_H_
#define PERFISO_SRC_WORKLOAD_QUERY_TRACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace perfiso {

// Complexity of one query, fixed at trace-generation time so that replays at
// different arrival rates process identical work (like replaying a trace).
struct QueryWork {
  uint64_t id = 0;
  int fanout = 1;           // parallel chunk lookups
  double size_factor = 1;   // multiplies all CPU costs of this query
  uint64_t seed = 0;        // per-query stream for chunk-level draws
};

// Distribution parameters for synthetic traces.
struct TraceSpec {
  int fanout_min = 4;
  int fanout_max = 12;
  // Per-query size factor ~ LogNormal(mu, sigma), normalized to mean 1.
  double size_sigma = 0.45;
};

// Generates `count` queries with complexities drawn from `spec`.
std::vector<QueryWork> GenerateTrace(const TraceSpec& spec, size_t count, Rng* rng);

// Replays a trace in an open loop: queries are submitted at Poisson arrivals
// of the given rate regardless of completions (§5.3). The trace wraps around
// if the duration needs more queries than it holds.
class OpenLoopClient {
 public:
  using SubmitFn = std::function<void(const QueryWork&, SimTime)>;

  OpenLoopClient(Simulator* sim, std::vector<QueryWork> trace, double queries_per_sec,
                 Rng rng, SubmitFn submit);

  // Starts submitting at `start`, stopping after `duration`.
  void Run(SimTime start, SimDuration duration);

  uint64_t submitted() const { return submitted_; }

 private:
  void ScheduleNext(SimTime now);

  Simulator* sim_;
  std::vector<QueryWork> trace_;
  double rate_;
  Rng rng_;
  SubmitFn submit_;
  SimTime end_time_ = 0;
  uint64_t submitted_ = 0;
  size_t cursor_ = 0;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_WORKLOAD_QUERY_TRACE_H_
