// Load shapes: time-varying arrival intensities for the workload clients.
//
// Production load is not flat — Bing index clusters idle at ~21% average CPU
// because they are provisioned for diurnal peaks and sudden query bursts, and
// PerfIso's blind-isolation buffer is sized to absorb exactly those bursts
// (§1, §3.1, Fig. 2). A LoadShapeSpec describes the target intensity
// lambda(t) in queries/sec; the open-loop client realizes it as a
// non-homogeneous Poisson process by thinning (Lewis & Shedler): candidate
// arrivals are drawn at the peak rate and accepted with probability
// lambda(t) / peak.
#ifndef PERFISO_SRC_WORKLOAD_LOAD_SHAPE_H_
#define PERFISO_SRC_WORKLOAD_LOAD_SHAPE_H_

#include <string>
#include <vector>

#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace perfiso {

enum class LoadShapeKind {
  kConstant,    // flat lambda = qps (the original OpenLoopClient behavior)
  kDiurnal,     // raised-cosine day: trough at t=0, peak at period/2
  kRamp,        // linear qps -> ramp_end_qps over ramp_duration, then flat
  kFlashCrowd,  // base qps with a sudden spike window (Fig. 2's bursts)
  kSquareWave,  // burst train: alternating base / burst at a duty cycle
  kPiecewise,   // step function from an explicit (time, qps) table
};

const char* LoadShapeKindName(LoadShapeKind kind);
StatusOr<LoadShapeKind> ParseLoadShapeKind(const std::string& name);

// One step of a piecewise shape: lambda = qps from `at_sec` (relative to the
// client's start) until the next point's `at_sec`.
struct PiecewisePoint {
  double at_sec = 0;
  double qps = 0;
};

struct LoadShapeSpec {
  LoadShapeKind kind = LoadShapeKind::kConstant;

  // Base rate: the constant level, the diurnal/ramp/flash/square *peak or
  // base* depending on kind (documented per field group below).
  double qps = 2000;

  // kDiurnal: lambda(t) = qps * (f + (1-f) * (1 - cos(2*pi*t/period)) / 2)
  // where f = trough_fraction, i.e. `qps` is the daily peak and the trough is
  // f * qps. Time-average is qps * (1 + f) / 2. The defaults calibrate to
  // Fig. 2: with peak at 4,000 QPS (the paper's high rate, ~40% primary CPU
  // on our machine model) and f = 0.1, the daily average lands at 2,200 QPS
  // — ~21% average CPU utilization, the paper's headline idleness number.
  double diurnal_period_sec = 24;
  double diurnal_trough_fraction = 0.1;

  // kRamp: lambda climbs linearly from `qps` to `ramp_end_qps` over
  // `ramp_duration_sec`, then stays at `ramp_end_qps`.
  double ramp_end_qps = 4000;
  double ramp_duration_sec = 10;

  // kFlashCrowd: lambda = `qps` except in [flash_start_sec,
  // flash_start_sec + flash_duration_sec), where it jumps to flash_spike_qps.
  double flash_spike_qps = 8000;
  double flash_start_sec = 2;
  double flash_duration_sec = 1;

  // kSquareWave: each period spends `square_duty` of its length at
  // `square_burst_qps` (starting at the period boundary) and the rest at
  // `qps`.
  double square_burst_qps = 4000;
  double square_period_sec = 2;
  double square_duty = 0.25;

  // kPiecewise: step table, times relative to client start, must be sorted
  // ascending and non-empty; lambda before the first point is the first
  // point's qps.
  std::vector<PiecewisePoint> piecewise;

  // Target intensity at `t_rel` (relative to the client's start), in
  // queries/sec. Requires Validate().ok().
  double RateAt(SimDuration t_rel) const;

  // Upper bound of RateAt over all t (the thinning majorant).
  double PeakRate() const;

  // Rejects negative rates, empty piecewise tables, unsorted tables,
  // non-positive periods/durations, duty outside (0, 1), etc.
  Status Validate() const;
};

// Convenience constructors for the common shapes.
LoadShapeSpec ConstantLoad(double qps);
LoadShapeSpec DiurnalLoad(double peak_qps, double period_sec,
                          double trough_fraction = 0.1);
LoadShapeSpec FlashCrowdLoad(double base_qps, double spike_qps, double start_sec,
                             double duration_sec);

}  // namespace perfiso

#endif  // PERFISO_SRC_WORKLOAD_LOAD_SHAPE_H_
