// Declarative scenario specifications.
//
// A ScenarioSpec names everything one experiment needs — a load shape, the
// replay client (open- or closed-loop), a secondary-tenant mix, a topology,
// and an optional PerfIso configuration — and serializes through the same
// ConfigMap machinery Autopilot distributes PerfIsoConfig with (§4). Benches
// and tests enumerate scenarios from the registry in bench/harness.h by name
// instead of hand-rolling structs; a spec parsed from a config file runs the
// exact same experiment as a compiled-in one.
//
// Key namespace: all scenario keys live under `workload.`; the embedded
// PerfIso configuration (when `workload.isolation = perfiso`) is flattened
// under `perfiso.`, and observability knobs under `obs.` (src/obs/obs.h).
// Unknown keys in any namespace are rejected at parse time so a typo'd knob
// fails loudly instead of silently running defaults.
#ifndef PERFISO_SRC_WORKLOAD_SCENARIO_H_
#define PERFISO_SRC_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/fault/fault_plan.h"
#include "src/obs/obs.h"
#include "src/perfiso/perfiso_config.h"
#include "src/util/config.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"
#include "src/workload/load_shape.h"

namespace perfiso {

// Which replay client drives the load (src/workload/query_trace.h).
enum class ClientKind {
  kOpenLoop,    // Poisson arrivals at the load shape's intensity
  kClosedLoop,  // fixed user population with think time (saturation studies)
};

const char* ClientKindName(ClientKind kind);
StatusOr<ClientKind> ParseClientKind(const std::string& name);

// The secondary tenants colocated with the index server. All run inside the
// machine's unified secondary job object (§4).
struct TenantMixSpec {
  int cpu_bully_threads = 0;  // 0 = no CPU bully
  bool disk_bully = false;
  bool hdfs_client = false;
  bool ml_training = false;
  int ml_worker_threads = 48;
};

// Cluster shape. columns == 0 selects the single-box rigs of Figs. 4-8;
// columns > 0 selects the TLA/MLA cluster of Figs. 9-10.
struct TopologySpec {
  int columns = 0;
  int rows = 2;
  int tla_machines = 2;
};

// Closed-loop client parameters (ignored for kOpenLoop).
struct ClosedLoopSpec {
  int outstanding = 32;
  SimDuration think_time = FromMillis(1);
};

struct ScenarioSpec {
  std::string name;  // registry key; informational in serialized form

  LoadShapeSpec load;
  ClientKind client = ClientKind::kOpenLoop;
  ClosedLoopSpec closed;
  TenantMixSpec tenants;
  TopologySpec topology;

  // Partition-parallel execution (workload.sim.partitions). 0 = sequential
  // (the default; nothing is serialized, so legacy configs and golden digests
  // are untouched). N >= 2 shards a cluster topology into N simulator
  // partitions — partition 0 for the TLAs + client, rows round-robined over
  // the rest — run in conservative lockstep windows (DESIGN.md §10). Results
  // are a pure function of (spec, partitions), identical at any worker thread
  // count; PERFISO_SIM_THREADS picks the thread count at run time. Only
  // meaningful for cluster topologies (columns > 0).
  int sim_partitions = 0;

  // nullopt = no isolation (the paper's "No isolation" rows).
  std::optional<PerfIsoConfig> perfiso;

  // Observability knobs (obs.* namespace). Disabled by default: nothing is
  // serialized and the run constructs no ObsContext, so legacy configs and
  // golden digests are untouched.
  ObsSpec obs;

  // Fault plan (fault.* namespace). Same contract as obs: disabled by
  // default, serializes nothing, constructs no FaultInjector, and leaves
  // every golden digest bit-identical.
  FaultPlan fault;

  SimDuration warmup = kSecond;
  SimDuration measure = 8 * kSecond;  // benches scale this by BenchScale()

  // Trace replay determinism: the synthetic trace and both clients draw from
  // fixed seeds, so a spec's result is a pure function of its fields (the
  // parallel-runner contract, DESIGN.md §4).
  size_t trace_count = 20000;
  uint64_t trace_seed = 2017;
  uint64_t client_seed = 7;
  uint64_t node_seed = 77;

  // Serialization to/from the Autopilot config format. ToConfigMap emits only
  // the keys relevant to the active shape/client/isolation, so a round trip
  // preserves exactly the knobs that matter.
  ConfigMap ToConfigMap() const;
  static StatusOr<ScenarioSpec> FromConfigMap(const ConfigMap& map);

  // Rejects invalid shapes (negative rates, empty piecewise tables), bad
  // client/topology parameters, and non-positive windows.
  Status Validate() const;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_WORKLOAD_SCENARIO_H_
