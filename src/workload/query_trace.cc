#include "src/workload/query_trace.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace perfiso {

std::vector<QueryWork> GenerateTrace(const TraceSpec& spec, size_t count, Rng* rng) {
  assert(rng != nullptr);
  assert(spec.fanout_min >= 1 && spec.fanout_max >= spec.fanout_min);
  std::vector<QueryWork> trace;
  trace.reserve(count);
  // exp(mu + sigma^2/2) = 1  =>  mu = -sigma^2/2 normalizes the mean to 1.
  const double mu = -spec.size_sigma * spec.size_sigma / 2;
  for (size_t i = 0; i < count; ++i) {
    QueryWork query;
    query.id = i;
    query.fanout = static_cast<int>(rng->UniformInt(spec.fanout_min, spec.fanout_max));
    query.size_factor = rng->LogNormal(mu, spec.size_sigma);
    query.seed = rng->Next();
    trace.push_back(query);
  }
  return trace;
}

OpenLoopClient::OpenLoopClient(Simulator* sim, std::vector<QueryWork> trace,
                               double queries_per_sec, Rng rng, SubmitFn submit)
    : sim_(sim), trace_(std::move(trace)), rate_(queries_per_sec), rng_(rng),
      submit_(std::move(submit)) {
  assert(!trace_.empty());
  assert(rate_ > 0);
}

void OpenLoopClient::Run(SimTime start, SimDuration duration) {
  end_time_ = start + duration;
  ScheduleNext(start);
}

void OpenLoopClient::ScheduleNext(SimTime when) {
  if (when >= end_time_) {
    return;
  }
  sim_->Schedule(when, [this, when] {
    submit_(trace_[cursor_], when);
    ++submitted_;
    cursor_ = (cursor_ + 1) % trace_.size();
    const SimDuration gap = static_cast<SimDuration>(
        std::max(1.0, rng_.Exponential(static_cast<double>(kSecond) / rate_)));
    ScheduleNext(when + gap);
  });
}

}  // namespace perfiso
