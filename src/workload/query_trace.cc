#include "src/workload/query_trace.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace perfiso {

std::vector<QueryWork> GenerateTrace(const TraceSpec& spec, size_t count, Rng* rng) {
  assert(rng != nullptr);
  assert(spec.fanout_min >= 1 && spec.fanout_max >= spec.fanout_min);
  std::vector<QueryWork> trace;
  trace.reserve(count);
  // exp(mu + sigma^2/2) = 1  =>  mu = -sigma^2/2 normalizes the mean to 1.
  const double mu = -spec.size_sigma * spec.size_sigma / 2;
  for (size_t i = 0; i < count; ++i) {
    QueryWork query;
    query.id = i;
    query.fanout = static_cast<int>(rng->UniformInt(spec.fanout_min, spec.fanout_max));
    query.size_factor = rng->LogNormal(mu, spec.size_sigma);
    query.seed = rng->Next();
    trace.push_back(query);
  }
  return trace;
}

OpenLoopClient::OpenLoopClient(Simulator* sim, std::vector<QueryWork> trace,
                               LoadShapeSpec shape, Rng rng, SubmitFn submit)
    : sim_(sim), trace_(std::move(trace)), shape_(shape), rng_(rng),
      submit_(std::move(submit)) {
  assert(!trace_.empty());
  assert(shape_.Validate().ok());
  peak_rate_ = shape_.PeakRate();
  assert(peak_rate_ > 0);
}

OpenLoopClient::OpenLoopClient(Simulator* sim, std::vector<QueryWork> trace,
                               double queries_per_sec, Rng rng, SubmitFn submit)
    : OpenLoopClient(sim, std::move(trace), ConstantLoad(queries_per_sec), rng,
                     std::move(submit)) {}

void OpenLoopClient::Run(SimTime start, SimDuration duration) {
  start_time_ = start;
  end_time_ = start + duration;
  // The first arrival gets a drawn gap like every other one; submitting
  // query #0 at exactly t=start would make the process non-Poisson at the
  // window edge (and bias every short-run rate estimate upward).
  ScheduleArrival(DrawNextArrival(start));
}

SimTime OpenLoopClient::DrawNextArrival(SimTime from) {
  // Thinning (Lewis & Shedler): candidate arrivals at the constant majorant
  // peak_rate_, each accepted with probability rate(t)/peak. Constant shapes
  // accept unconditionally, so they cost exactly one draw per arrival.
  while (from < end_time_) {
    const double gap_ns = rng_.Exponential(static_cast<double>(kSecond) / peak_rate_);
    // Floor at 1 tick so time always advances (see the class comment for the
    // bias bound).
    from += std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(gap_ns)));
    if (from >= end_time_) {
      break;
    }
    const double rate = shape_.RateAt(from - start_time_);
    if (rate >= peak_rate_ || rng_.NextDouble() * peak_rate_ < rate) {
      return from;
    }
  }
  return end_time_;
}

void OpenLoopClient::ScheduleArrival(SimTime at) {
  if (at >= end_time_) {
    return;
  }
  sim_->Schedule(at, [this, at] {
    if (tracer_ != nullptr) {
      tracer_->Instant("client.arrival", track_, at);
    }
    submit_(trace_[cursor_], at);
    ++submitted_;
    cursor_ = (cursor_ + 1) % trace_.size();
    ScheduleArrival(DrawNextArrival(at));
  });
}

void OpenLoopClient::SetTracer(Tracer* tracer, int32_t track) {
  tracer_ = tracer;
  track_ = track;
}

ClosedLoopClient::ClosedLoopClient(Simulator* sim, std::vector<QueryWork> trace,
                                   int outstanding, SimDuration think_time, Rng rng,
                                   SubmitFn submit)
    : sim_(sim), trace_(std::move(trace)), outstanding_(outstanding),
      think_time_(think_time), rng_(rng), submit_(std::move(submit)) {
  assert(!trace_.empty());
  assert(outstanding_ > 0);
  assert(think_time_ >= 0);
}

void ClosedLoopClient::Run(SimTime start, SimDuration duration) {
  end_time_ = start + duration;
  sim_->Schedule(start, [this] {
    for (int user = 0; user < outstanding_; ++user) {
      SubmitAfterThink();
    }
  });
}

void ClosedLoopClient::SubmitAfterThink() {
  const double think_ns =
      think_time_ > 0 ? rng_.Exponential(static_cast<double>(think_time_)) : 0;
  const SimTime at =
      sim_->Now() + std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(think_ns)));
  if (at >= end_time_) {
    return;
  }
  sim_->Schedule(at, [this, at] {
    ++in_flight_;
    ++submitted_;
    const QueryWork& work = trace_[cursor_];
    cursor_ = (cursor_ + 1) % trace_.size();
    if (tracer_ != nullptr) {
      tracer_->Instant("client.arrival", track_, at);
    }
    submit_(work, at);
  });
}

void ClosedLoopClient::SetTracer(Tracer* tracer, int32_t track) {
  tracer_ = tracer;
  track_ = track;
}

void ClosedLoopClient::OnComplete() {
  assert(in_flight_ > 0);
  --in_flight_;
  if (sim_->Now() < end_time_) {
    SubmitAfterThink();
  }
}

}  // namespace perfiso
