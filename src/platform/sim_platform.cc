#include "src/platform/sim_platform.h"

#include <algorithm>
#include <cassert>

namespace perfiso {

SimPlatform::SimPlatform(SimMachine* machine, IoScheduler* hdd_scheduler)
    : machine_(machine), hdd_scheduler_(hdd_scheduler) {
  assert(machine_ != nullptr);
}

void SimPlatform::AddSecondaryJob(JobId job) {
  assert(job.valid());
  secondary_jobs_.push_back(job);
}

Status SimPlatform::SetSecondaryAffinity(const CpuSet& mask) {
  for (JobId job : secondary_jobs_) {
    if (mask.Empty()) {
      PERFISO_RETURN_IF_ERROR(machine_->SetJobSuspended(job, true));
      continue;
    }
    PERFISO_RETURN_IF_ERROR(machine_->SetJobAffinity(job, mask));
    PERFISO_RETURN_IF_ERROR(machine_->SetJobSuspended(job, false));
  }
  return OkStatus();
}

Status SimPlatform::SetSecondaryCpuRateCap(double fraction) {
  for (JobId job : secondary_jobs_) {
    PERFISO_RETURN_IF_ERROR(machine_->SetJobCpuRateCap(job, fraction));
  }
  return OkStatus();
}

Status SimPlatform::KillSecondary() {
  for (JobId job : secondary_jobs_) {
    PERFISO_RETURN_IF_ERROR(machine_->KillJob(job));
  }
  return OkStatus();
}

Status SimPlatform::SetIoPriority(int owner, int priority) {
  if (hdd_scheduler_ == nullptr) {
    return UnimplementedError("no shared disk scheduler on this machine");
  }
  return hdd_scheduler_->SetPriority(owner, priority);
}

Status SimPlatform::SetIoIopsCap(int owner, double iops) {
  if (hdd_scheduler_ == nullptr) {
    return UnimplementedError("no shared disk scheduler on this machine");
  }
  return hdd_scheduler_->SetIopsCap(owner, iops);
}

Status SimPlatform::SetIoBandwidthCap(int owner, double bytes_per_sec) {
  if (hdd_scheduler_ == nullptr) {
    return UnimplementedError("no shared disk scheduler on this machine");
  }
  return hdd_scheduler_->SetBandwidthCap(owner, bytes_per_sec);
}

StatusOr<int64_t> SimPlatform::IoOpsCompleted(int owner) {
  if (hdd_scheduler_ == nullptr) {
    return UnimplementedError("no shared disk scheduler on this machine");
  }
  return hdd_scheduler_->Stats(owner).completed;
}

Status SimPlatform::SetEgressRateCap(double bytes_per_sec) {
  if (bytes_per_sec <= 0) {
    egress_bucket_.reset();
  } else {
    // Bound the burst so large caps cannot bank multi-second line-rate
    // bursts: 250 ms of credit, at most 4 MB (a handful of bulk blocks).
    const double burst = std::min(bytes_per_sec / 4, 4.0 * 1024 * 1024);
    egress_bucket_.emplace(bytes_per_sec, burst);
  }
  return OkStatus();
}

}  // namespace perfiso
