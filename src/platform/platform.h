// Platform: the OS surface PerfIso is written against.
//
// The paper's implementation uses Windows primitives (the idle-core bitmask
// system call, Job Objects for affinity and CPU-rate control, per-device I/O
// statistics). The controller only needs this narrow interface, so it runs
// unchanged on the simulator (SimPlatform) and on a real Linux host
// (LinuxPlatform, using sched_setaffinity(2) and /proc sampling).
//
// Per §4, every secondary-tenant process lives in a unified job object; the
// platform exposes them collectively as "the secondary".
#ifndef PERFISO_SRC_PLATFORM_PLATFORM_H_
#define PERFISO_SRC_PLATFORM_PLATFORM_H_

#include <cstdint>

#include "src/util/cpu_set.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace perfiso {

class Platform {
 public:
  virtual ~Platform() = default;

  virtual int NumCores() const = 0;

  // Monotonic time in nanoseconds (simulated or real).
  virtual SimTime NowNs() = 0;

  // The low-latency idle-core query of §3.1.1: a bitmask with the bits of
  // currently-idle logical CPUs set.
  virtual CpuSet IdleCores() = 0;

  // Restricts all secondary-tenant processes to `mask`. An empty mask
  // suspends the secondary entirely (S = 0).
  virtual Status SetSecondaryAffinity(const CpuSet& mask) = 0;

  // Hard-caps the secondary to `fraction` of total machine CPU (<= 0 clears).
  virtual Status SetSecondaryCpuRateCap(double fraction) = 0;

  // Free physical memory (the watchdog kills the secondary when this drops
  // below the configured floor, §3.2).
  virtual StatusOr<int64_t> FreeMemoryBytes() = 0;

  // Kills all secondary-tenant processes.
  virtual Status KillSecondary() = 0;

  // --- I/O throttling knobs (may be unsupported on a platform) --------------
  virtual Status SetIoPriority(int owner, int priority) = 0;
  virtual Status SetIoIopsCap(int owner, double iops) = 0;
  virtual Status SetIoBandwidthCap(int owner, double bytes_per_sec) = 0;
  // Cumulative completed operations for an owner (the controller derives
  // IOPS from deltas and smooths with a moving average, §4.1).
  virtual StatusOr<int64_t> IoOpsCompleted(int owner) = 0;

  // --- Egress network ---------------------------------------------------------
  // Throttles secondary outbound traffic (<= 0 clears), §3.2.
  virtual Status SetEgressRateCap(double bytes_per_sec) = 0;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PLATFORM_PLATFORM_H_
