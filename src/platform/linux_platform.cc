#include "src/platform/linux_platform.h"

#include <dirent.h>
#include <sched.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace perfiso {

LinuxPlatform::LinuxPlatform() : LinuxPlatform(Options()) {}

LinuxPlatform::LinuxPlatform(Options options) : options_(std::move(options)) {}

void LinuxPlatform::AddSecondaryPid(pid_t pid) { pids_.push_back(pid); }

int LinuxPlatform::NumCores() const {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

SimTime LinuxPlatform::NowNs() {
  timespec ts{};
  // Real-platform path, not simulation: this is the clock PerfIso-on-Linux
  // polls, never a source of simulated time.
  clock_gettime(CLOCK_MONOTONIC, &ts);  // NOLINT(perfiso-DET-001)
  return static_cast<SimTime>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

StatusOr<std::vector<LinuxPlatform::CpuSample>> LinuxPlatform::ParseProcStat(
    const std::string& text) {
  std::vector<CpuSample> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Per-CPU lines look like: cpuN user nice system idle iowait irq softirq steal ...
    if (line.rfind("cpu", 0) != 0 || line.size() < 4 || !isdigit(line[3])) {
      continue;
    }
    std::istringstream fields(line);
    std::string label;
    fields >> label;
    int64_t value = 0;
    int64_t total = 0;
    int64_t idle = 0;
    for (int i = 0; fields >> value; ++i) {
      total += value;
      if (i == 3 || i == 4) {  // idle + iowait
        idle += value;
      }
    }
    if (total == 0) {
      return InternalError("malformed /proc/stat line: " + line);
    }
    samples.push_back(CpuSample{idle, total});
  }
  if (samples.empty()) {
    return InternalError("no per-cpu lines in /proc/stat");
  }
  return samples;
}

CpuSet LinuxPlatform::IdleFromSamples(const std::vector<CpuSample>& prev,
                                      const std::vector<CpuSample>& curr, double threshold) {
  CpuSet idle;
  const size_t n = std::min(prev.size(), curr.size());
  for (size_t cpu = 0; cpu < n && cpu < CpuSet::kMaxCpus; ++cpu) {
    const int64_t idle_delta = curr[cpu].idle - prev[cpu].idle;
    const int64_t total_delta = curr[cpu].total - prev[cpu].total;
    if (total_delta <= 0) {
      // No jiffies elapsed on this CPU since the last sample: it ran nothing
      // measurable, which for our purposes means idle.
      idle.Set(static_cast<int>(cpu));
    } else if (static_cast<double>(idle_delta) / static_cast<double>(total_delta) >=
               threshold) {
      idle.Set(static_cast<int>(cpu));
    }
  }
  return idle;
}

CpuSet LinuxPlatform::IdleCores() {
  std::ifstream in(options_.proc_root + "/stat");
  if (!in) {
    return CpuSet();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseProcStat(buffer.str());
  if (!parsed.ok()) {
    return CpuSet();
  }
  CpuSet idle;
  if (!last_sample_.empty()) {
    idle = IdleFromSamples(last_sample_, *parsed, options_.idle_threshold);
  } else {
    // No baseline yet: report everything idle (conservative for the
    // controller, which will shrink on the next sample if needed).
    idle = CpuSet::FirstN(static_cast<int>(parsed->size()));
  }
  last_sample_ = std::move(*parsed);
  return idle;
}

Status LinuxPlatform::ApplyAffinityToPid(pid_t pid, const CpuSet& mask) {
  cpu_set_t native;
  CPU_ZERO(&native);
  for (int cpu = mask.Lowest(); cpu >= 0; cpu = mask.NextAfter(cpu)) {
    CPU_SET(cpu, &native);
  }
  // Apply to every task of the process so new threads inherit and old ones
  // move (Windows job affinity has the same all-threads semantics).
  const std::string task_dir = options_.proc_root + "/" + std::to_string(pid) + "/task";
  DIR* dir = opendir(task_dir.c_str());
  if (dir == nullptr) {
    // Fall back to the main thread only.
    if (sched_setaffinity(pid, sizeof(native), &native) != 0) {
      return InternalError("sched_setaffinity(" + std::to_string(pid) +
                           "): " + std::strerror(errno));
    }
    return OkStatus();
  }
  Status status = OkStatus();
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') {
      continue;
    }
    const pid_t tid = static_cast<pid_t>(std::strtol(entry->d_name, nullptr, 10));
    if (tid <= 0) {
      continue;
    }
    if (sched_setaffinity(tid, sizeof(native), &native) != 0 && errno != ESRCH) {
      status = InternalError("sched_setaffinity(" + std::to_string(tid) +
                             "): " + std::strerror(errno));
    }
  }
  closedir(dir);
  return status;
}

Status LinuxPlatform::SignalSecondary(int signo) {
  for (pid_t pid : pids_) {
    if (kill(pid, signo) != 0 && errno != ESRCH) {
      return InternalError("kill(" + std::to_string(pid) + "): " + std::strerror(errno));
    }
  }
  return OkStatus();
}

Status LinuxPlatform::SetSecondaryAffinity(const CpuSet& mask) {
  if (mask.Empty()) {
    PERFISO_RETURN_IF_ERROR(SignalSecondary(SIGSTOP));
    suspended_ = true;
    return OkStatus();
  }
  if (suspended_) {
    PERFISO_RETURN_IF_ERROR(SignalSecondary(SIGCONT));
    suspended_ = false;
  }
  for (pid_t pid : pids_) {
    PERFISO_RETURN_IF_ERROR(ApplyAffinityToPid(pid, mask));
  }
  return OkStatus();
}

Status LinuxPlatform::SetSecondaryCpuRateCap(double fraction) {
  if (options_.cgroup_dir.empty()) {
    return UnavailableError("no cgroup directory configured");
  }
  std::ofstream out(options_.cgroup_dir + "/cpu.max");
  if (!out) {
    return UnavailableError("cannot open cpu.max in " + options_.cgroup_dir);
  }
  if (fraction <= 0) {
    out << "max 100000\n";
  } else {
    const long quota = std::lround(fraction * NumCores() * 100000.0);
    out << quota << " 100000\n";
  }
  return out.good() ? OkStatus() : UnavailableError("write to cpu.max failed");
}

StatusOr<int64_t> LinuxPlatform::FreeMemoryBytes() {
  std::ifstream in(options_.proc_root + "/meminfo");
  if (!in) {
    return InternalError("cannot open /proc/meminfo");
  }
  std::string key;
  int64_t value = 0;
  std::string unit;
  while (in >> key >> value >> unit) {
    if (key == "MemAvailable:") {
      return value * 1024;
    }
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  return InternalError("MemAvailable not found in /proc/meminfo");
}

Status LinuxPlatform::KillSecondary() {
  PERFISO_RETURN_IF_ERROR(SignalSecondary(SIGKILL));
  pids_.clear();
  return OkStatus();
}

Status LinuxPlatform::SetIoPriority(int, int) {
  return UnimplementedError("per-process I/O priority requires blkio cgroups");
}
Status LinuxPlatform::SetIoIopsCap(int, double) {
  return UnimplementedError("IOPS caps require blkio cgroups");
}
Status LinuxPlatform::SetIoBandwidthCap(int, double) {
  return UnimplementedError("I/O bandwidth caps require blkio cgroups");
}
StatusOr<int64_t> LinuxPlatform::IoOpsCompleted(int) {
  return UnimplementedError("per-owner I/O accounting requires blkio cgroups");
}
Status LinuxPlatform::SetEgressRateCap(double) {
  return UnimplementedError("egress shaping requires tc/HTB");
}

}  // namespace perfiso
