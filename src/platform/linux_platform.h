// LinuxPlatform: Platform implementation over real Linux syscalls.
//
// Substitutions for the Windows primitives the paper uses:
//   * idle-core bitmask syscall  ->  short-window per-CPU /proc/stat deltas
//     (a CPU is "idle" if it spent >= idle_threshold of the sampling window
//     in idle+iowait). The Windows call is instantaneous; this is the closest
//     unprivileged Linux equivalent and is documented in DESIGN.md.
//   * Job Object affinity        ->  sched_setaffinity(2) applied to every
//     task of every registered secondary pid.
//   * Job Object CPU rate cap    ->  cgroup v2 cpu.max (best effort: returns
//     UNAVAILABLE when the process lacks cgroup write access).
//   * suspend on empty mask      ->  SIGSTOP / SIGCONT.
//
// I/O and egress throttling return UNIMPLEMENTED here: production equivalents
// (blkio cgroups, tc/HTB) need privileges this library does not assume.
#ifndef PERFISO_SRC_PLATFORM_LINUX_PLATFORM_H_
#define PERFISO_SRC_PLATFORM_LINUX_PLATFORM_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "src/platform/platform.h"

namespace perfiso {

class LinuxPlatform : public Platform {
 public:
  struct Options {
    // Fraction of the sampling window a CPU must be idle to count as idle.
    double idle_threshold = 0.9;
    // cgroup v2 directory for the secondary (for the CPU rate cap); empty
    // disables the cgroup path.
    std::string cgroup_dir;
    // Override for /proc (tests point this at a fixture directory).
    std::string proc_root = "/proc";
  };

  LinuxPlatform();
  explicit LinuxPlatform(Options options);

  // Registers a secondary-tenant process (and, transitively, its tasks).
  void AddSecondaryPid(pid_t pid);
  const std::vector<pid_t>& secondary_pids() const { return pids_; }

  // Platform:
  int NumCores() const override;
  SimTime NowNs() override;
  CpuSet IdleCores() override;
  Status SetSecondaryAffinity(const CpuSet& mask) override;
  Status SetSecondaryCpuRateCap(double fraction) override;
  StatusOr<int64_t> FreeMemoryBytes() override;
  Status KillSecondary() override;
  Status SetIoPriority(int owner, int priority) override;
  Status SetIoIopsCap(int owner, double iops) override;
  Status SetIoBandwidthCap(int owner, double bytes_per_sec) override;
  StatusOr<int64_t> IoOpsCompleted(int owner) override;
  Status SetEgressRateCap(double bytes_per_sec) override;

  // Exposed for tests: parses the cpuN lines of a /proc/stat snapshot into
  // per-cpu (idle_jiffies, total_jiffies) pairs.
  struct CpuSample {
    int64_t idle = 0;
    int64_t total = 0;
  };
  static StatusOr<std::vector<CpuSample>> ParseProcStat(const std::string& text);

  // Exposed for tests: idle decision from two samples.
  static CpuSet IdleFromSamples(const std::vector<CpuSample>& prev,
                                const std::vector<CpuSample>& curr, double threshold);

 private:
  Status ApplyAffinityToPid(pid_t pid, const CpuSet& mask);
  Status SignalSecondary(int signo);

  Options options_;
  std::vector<pid_t> pids_;
  std::vector<CpuSample> last_sample_;
  bool suspended_ = false;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PLATFORM_LINUX_PLATFORM_H_
