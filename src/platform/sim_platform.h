// SimPlatform: Platform implementation backed by a SimMachine.
#ifndef PERFISO_SRC_PLATFORM_SIM_PLATFORM_H_
#define PERFISO_SRC_PLATFORM_SIM_PLATFORM_H_

#include <optional>
#include <vector>

#include "src/disk/io_scheduler.h"
#include "src/platform/platform.h"
#include "src/sim/machine.h"
#include "src/util/token_bucket.h"

namespace perfiso {

class SimPlatform : public Platform {
 public:
  // `hdd_scheduler` may be null when the experiment has no shared disk.
  SimPlatform(SimMachine* machine, IoScheduler* hdd_scheduler);

  // Registers a job as part of the secondary tenant; affinity/rate/kill
  // operations apply to every registered job.
  void AddSecondaryJob(JobId job);

  // The egress limiter cluster links consult for secondary flows; null until
  // SetEgressRateCap installs one.
  TokenBucket* egress_bucket() { return egress_bucket_ ? &*egress_bucket_ : nullptr; }

  // Platform:
  int NumCores() const override { return machine_->NumCores(); }
  SimTime NowNs() override { return machine_->sim()->Now(); }
  CpuSet IdleCores() override { return machine_->IdleMask(); }
  Status SetSecondaryAffinity(const CpuSet& mask) override;
  Status SetSecondaryCpuRateCap(double fraction) override;
  StatusOr<int64_t> FreeMemoryBytes() override { return machine_->FreeMemoryBytes(); }
  Status KillSecondary() override;
  Status SetIoPriority(int owner, int priority) override;
  Status SetIoIopsCap(int owner, double iops) override;
  Status SetIoBandwidthCap(int owner, double bytes_per_sec) override;
  StatusOr<int64_t> IoOpsCompleted(int owner) override;
  Status SetEgressRateCap(double bytes_per_sec) override;

 private:
  SimMachine* machine_;
  IoScheduler* hdd_scheduler_;
  std::vector<JobId> secondary_jobs_;
  std::optional<TokenBucket> egress_bucket_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_PLATFORM_SIM_PLATFORM_H_
