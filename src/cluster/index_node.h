// IndexNodeRig: one fully-assembled IndexServe machine.
//
// Bundles the substrate a single server needs — SimMachine, striped SSD/HDD
// volumes with I/O schedulers, the IndexServer, the secondary job object, a
// SimPlatform, and (optionally) a PerfIsoController plus secondary workloads.
// Both the single-machine experiments (Figs. 4-8) and the cluster experiments
// (Figs. 9-10) are built out of these.
#ifndef PERFISO_SRC_CLUSTER_INDEX_NODE_H_
#define PERFISO_SRC_CLUSTER_INDEX_NODE_H_

#include <memory>
#include <string>

#include "src/disk/io_scheduler.h"
#include "src/indexserve/index_server.h"
#include "src/perfiso/controller.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/workload/bullies.h"

namespace perfiso {

struct TenantMixSpec;  // src/workload/scenario.h

// I/O owner ids for secondary traffic on the shared HDD volume.
inline constexpr int kIoOwnerDiskBully = 900;
inline constexpr int kIoOwnerHdfsClient = 901;
inline constexpr int kIoOwnerHdfsReplication = 902;
inline constexpr int kIoOwnerMlTraining = 903;

struct IndexNodeOptions {
  MachineSpec machine;
  IndexServeConfig indexserve;
  int ssd_drives = 4;  // the paper's 4x 500 GB SSD stripe
  int hdd_drives = 4;  // the paper's 4x 2 TB HDD stripe
  uint64_t seed = 1;
};

class IndexNodeRig {
 public:
  IndexNodeRig(Simulator* sim, const IndexNodeOptions& options, const std::string& name);

  // --- Secondary tenants (all share the unified secondary job object, §4) ---
  void StartCpuBully(int threads);
  void StartDiskBully(const DiskBully::Options& options);
  void StartHdfsClient(const HdfsClient::Options& options);
  void StartMlTraining(const MlTrainingJob::Options& options);
  // `endpoint` is this machine's id on `fabric` (the Cluster hands both out).
  void StartNetworkBully(Fabric* fabric, int endpoint, const NetworkBully::Options& options);
  // Starts every tenant a declarative scenario names (CPU/disk bullies, HDFS
  // client, ML training) with the module defaults; single-box and cluster
  // rigs share this entry point.
  void StartTenants(const TenantMixSpec& mix);

  // Attaches a PerfIso controller with `config` and starts its poll loops.
  Status StartPerfIso(const PerfIsoConfig& config);

  // Registers this rig's machine, index server, volumes, and I/O schedulers
  // with the tracer. Call before submitting traced queries; a PerfIso
  // controller started afterwards is wired automatically (decision instants).
  void EnableTracing(Tracer* tracer);

  // --- Fault injection --------------------------------------------------------
  // Crash models the index-serving process and its storage stack dying: every
  // live query fails (IndexServer::Crash), and all queued + in-flight I/O on
  // both volumes is dropped without completions (IoScheduler::CancelAll).
  // Residual CPU bursts of dead queries run to completion but their
  // continuations are inert (finished-flag guards). Secondary tenants are
  // separate processes in this model: their CPU loops keep running, though
  // any I/O chain they had in flight dies with the storage stack. Restart
  // brings the serving process back with cold state; queries flow again on
  // the next submission.
  void Crash() {
    server_->Crash();
    ssd_sched_->CancelAll();
    hdd_sched_->CancelAll();
  }
  void Restart() { server_->Restart(); }
  bool crashed() const { return server_->crashed(); }

  StripedVolume& ssd_volume() { return *ssd_volume_; }
  StripedVolume& hdd_volume() { return *hdd_volume_; }

  // Accessors.
  Simulator* sim() const { return sim_; }
  SimMachine& machine() { return *machine_; }
  IndexServer& server() { return *server_; }
  SimPlatform& platform() { return *platform_; }
  PerfIsoController* perfiso() { return perfiso_.get(); }
  IoScheduler& ssd_scheduler() { return *ssd_sched_; }
  IoScheduler& hdd_scheduler() { return *hdd_sched_; }
  JobId secondary_job() const { return secondary_job_; }
  CpuBully* cpu_bully() { return cpu_bully_.get(); }
  DiskBully* disk_bully() { return disk_bully_.get(); }
  MlTrainingJob* ml_training() { return ml_training_.get(); }
  NetworkBully* network_bully() { return network_bully_.get(); }

  // Secondary progress in core-seconds (CPU time of the secondary job).
  double SecondaryProgress() const;

  // Utilization snapshot support: caller records busy_ns then diffs.
  struct UtilizationSnapshot {
    SimTime at = 0;
    SimDuration busy[kNumTenantClasses] = {0, 0, 0};
  };
  UtilizationSnapshot SnapshotUtilization() const;
  // Fractions of machine capacity used since `snap` per tenant; idle is the
  // remainder to 1.0.
  double UtilizationSince(const UtilizationSnapshot& snap, TenantClass tenant) const;
  double IdleFractionSince(const UtilizationSnapshot& snap) const;

 private:
  Simulator* sim_;
  std::unique_ptr<SimMachine> machine_;
  std::unique_ptr<StripedVolume> ssd_volume_;
  std::unique_ptr<StripedVolume> hdd_volume_;
  std::unique_ptr<IoScheduler> ssd_sched_;
  std::unique_ptr<IoScheduler> hdd_sched_;
  std::unique_ptr<IndexServer> server_;
  std::unique_ptr<SimPlatform> platform_;
  std::unique_ptr<PerfIsoController> perfiso_;
  Tracer* tracer_ = nullptr;
  int machine_pid_ = 0;
  JobId secondary_job_;
  Rng rng_;
  std::unique_ptr<CpuBully> cpu_bully_;
  std::unique_ptr<DiskBully> disk_bully_;
  std::unique_ptr<HdfsClient> hdfs_client_;
  std::unique_ptr<MlTrainingJob> ml_training_;
  std::unique_ptr<NetworkBully> network_bully_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_CLUSTER_INDEX_NODE_H_
