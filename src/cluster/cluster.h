// The multi-machine IndexServe cluster of §5.3 / Fig. 3.
//
// Topology: the index is split into `columns` partitions, replicated across
// `rows` rows; every IndexServe machine holds one (row, column) slice.
// Top-level aggregators (TLAs) run on separate machines; they round-robin
// incoming queries across rows and pick a mid-level aggregator (MLA) from the
// chosen row. The MLA fans the query out to every column of its row
// (including itself), aggregates the responses — the slowest leaf dictates
// the response time [15] — and replies to the TLA.
//
// All inter-machine RPCs travel through a Fabric (src/net/): every machine
// attaches with a priority NIC, racks share oversubscribed ToR uplinks, and
// MLA fan-in serializes at the aggregator's RX link (genuine incast rather
// than a closed-form constant). Secondary-class flows drain the per-machine
// egress bucket, so PerfIso's egress cap has an end-to-end effect.
//
// Latency is measured at each layer as in Fig. 9: per-leaf (IndexServer
// internal), per-MLA (arrival at MLA to reply), and per-TLA (end to end).
#ifndef PERFISO_SRC_CLUSTER_CLUSTER_H_
#define PERFISO_SRC_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/index_node.h"
#include "src/net/fabric.h"
#include "src/util/stats.h"
#include "src/workload/query_trace.h"

namespace perfiso {

struct ClusterTopology {
  int columns = 22;
  int rows = 2;
  int tla_machines = 31;  // separate from the 44 index machines (75 total)
};

struct ClusterOptions {
  ClusterTopology topology;
  FabricConfig fabric;  // absorbs the old NetworkSpec (rates + RPC sizes)
  IndexNodeOptions node;
  // Aggregation CPU costs on MLA/TLA machines.
  double mla_merge_cpu_us = 40;    // per leaf response
  double mla_finalize_cpu_us = 250;
  double tla_cpu_us = 150;
  // Graceful degradation: a query whose answered-leaf fraction is at least
  // this completes (degraded when below 1.0); below it the TLA fails the
  // query. Failed-coverage leaves are crashed leaves plus per-leaf drops.
  double min_leaf_coverage = 0.5;
  uint64_t seed = 42;
};

class Cluster {
 public:
  Cluster(Simulator* sim, const ClusterOptions& options);
  // Partitioned cluster: partition 0 hosts the TLAs (and the submitting
  // client); row r's machines live on partition 1 + (r % (K-1)) of `psim`'s
  // K partitions. Row-granular sharding keeps the leaf fan-out/fan-in — the
  // overwhelming majority of cluster traffic — partition-local; only the
  // TLA<->MLA request/response pairs cross partitions, and those pay the
  // fabric propagation delay, which is exactly the PDES lookahead
  // (DESIGN.md §10). Unsupported in this mode: tracing and fault injection
  // (callers fall back to a sequential run for those).
  Cluster(ParallelSimulation* psim, const ClusterOptions& options);

  // Submits a query to a TLA (round-robin); `done` fires with the end-to-end
  // result at the TLA.
  void SubmitQuery(const QueryWork& work, IndexServer::QueryDoneFn done = nullptr);

  // Runs `fn` on every index node (e.g. to start bullies or PerfIso).
  void ForEachIndexNode(const std::function<void(IndexNodeRig&)>& fn);

  // Enables tracing everywhere: fabric tracks, every index node (machine,
  // server, volumes, schedulers), every TLA machine. Queries submitted
  // afterwards carry one "tla" trace context end to end — TLA forward, fabric
  // hops, every leaf's stages and I/O, MLA merge, and the final reply.
  void EnableTracing(Tracer* tracer);

  int NumIndexNodes() const { return static_cast<int>(index_nodes_.size()); }
  IndexNodeRig& index_node(int i) { return *index_nodes_[static_cast<size_t>(i)]; }

  // --- Fault injection --------------------------------------------------------
  // Marks a node dead/alive for routing (the health-check view): TLAs skip
  // crashed MLAs, and MLAs do not fan out to crashed leaves (the leaf counts
  // as failed coverage immediately). The FaultInjector keeps this in sync
  // with IndexNodeRig::Crash()/Restart(); the InvariantChecker asserts the
  // two views agree.
  void SetNodeCrashed(int node, bool crashed) {
    crashed_[static_cast<size_t>(node)] = crashed;
  }
  bool NodeCrashed(int node) const { return crashed_[static_cast<size_t>(node)]; }

  // The network: index nodes attach first (endpoint i == index node i), TLA
  // machines after.
  Fabric& fabric() { return *fabric_; }
  int index_endpoint(int i) const { return i; }
  int tla_endpoint(int i) const { return NumIndexNodes() + i; }

  // Secondary-class bytes serialized by index-machine NIC TX queues since the
  // given fabric stats reset, summed — the cluster's secondary egress volume.
  int64_t SecondaryEgressBytes() const;

  // --- Per-layer latency distributions (ms), as reported in Fig. 9 ----------
  // Merged across all leaves / MLAs / TLAs. MLA samples are recorded per row
  // (rows on different partitions never share a recorder) and merged in row
  // order here; call only while the simulation is quiescent.
  LatencyRecorder MergedLeafLatency() const;
  LatencyRecorder MlaLatency() const;
  const LatencyRecorder& TlaLatency() const { return tla_latency_ms_; }
  int64_t queries_submitted() const { return queries_submitted_; }
  int64_t queries_completed() const { return queries_completed_; }
  // Queries the TLA failed: leaf coverage below min_leaf_coverage, or the
  // whole row crashed. Disjoint from queries_completed.
  int64_t queries_failed() const { return queries_failed_; }
  // Subset of completed: answered with partial leaf coverage.
  int64_t queries_degraded() const { return queries_degraded_; }
  // Conservation residue (InvariantChecker: >= 0 always, == 0 when drained).
  // Queries in flight at the last ResetStats finish without a matching
  // `submitted` tick, hence the carry term.
  int64_t queries_inflight() const {
    return queries_submitted_ + inflight_at_reset_ - queries_completed_ - queries_failed_;
  }
  // Per completed query: fraction of the row's leaves that answered.
  const LatencyRecorder& LeafCoverage() const { return coverage_fraction_; }
  int64_t leaf_drops() const;

  void ResetStats();

  // Mean utilization fraction across index machines for a tenant since the
  // snapshots were taken with SnapshotAll().
  std::vector<IndexNodeRig::UtilizationSnapshot> SnapshotAll() const;
  double MeanUtilizationSince(const std::vector<IndexNodeRig::UtilizationSnapshot>& snaps,
                              TenantClass tenant) const;
  double MeanBusyFractionSince(
      const std::vector<IndexNodeRig::UtilizationSnapshot>& snaps) const;

 private:
  struct PendingQuery;

  Cluster(Simulator* sim, ParallelSimulation* psim, const ClusterOptions& options);

  // Partition hosting row `row`'s machines (0 when not partitioned).
  int PartitionForRow(int row) const;

  // `now` is the MLA-side arrival time from the fabric delivery callback
  // (sim_->Now() would read the wrong partition's clock here).
  void RunMla(const std::shared_ptr<PendingQuery>& pending, SimTime now);
  // All leaf slots accounted for: finalize on the MLA and reply to the TLA,
  // completing (possibly degraded) or failing on leaf coverage.
  void FinalizeMla(const std::shared_ptr<PendingQuery>& pending);
  // Terminal failure before any MLA was reachable (whole row crashed).
  void FailAtTla(const std::shared_ptr<PendingQuery>& pending, SimTime now);

  Simulator* sim_;                      // partition 0's simulator
  ParallelSimulation* psim_ = nullptr;  // null in sequential mode
  ClusterOptions options_;
  Rng rng_;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<IndexNodeRig>> index_nodes_;  // row-major [row][col]
  std::vector<std::unique_ptr<SimMachine>> tla_machines_;
  size_t next_tla_ = 0;
  int next_row_ = 0;
  std::vector<size_t> next_mla_in_row_;
  std::vector<LatencyRecorder> mla_latency_rows_;  // one per row (per partition)
  LatencyRecorder tla_latency_ms_;
  LatencyRecorder coverage_fraction_;
  int64_t queries_submitted_ = 0;
  int64_t queries_completed_ = 0;
  int64_t queries_failed_ = 0;
  int64_t queries_degraded_ = 0;
  int64_t inflight_at_reset_ = 0;
  std::vector<bool> crashed_;  // routing view, one flag per index node
};

}  // namespace perfiso

#endif  // PERFISO_SRC_CLUSTER_CLUSTER_H_
