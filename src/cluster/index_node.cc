#include "src/cluster/index_node.h"

#include <cassert>

#include "src/workload/scenario.h"

namespace perfiso {

IndexNodeRig::IndexNodeRig(Simulator* sim, const IndexNodeOptions& options,
                           const std::string& name)
    : sim_(sim), rng_(options.seed) {
  machine_ = std::make_unique<SimMachine>(sim, options.machine, name);
  ssd_volume_ =
      std::make_unique<StripedVolume>(sim, DiskSpec::Ssd(), options.ssd_drives, name + "-ssd");
  hdd_volume_ =
      std::make_unique<StripedVolume>(sim, DiskSpec::Hdd(), options.hdd_drives, name + "-hdd");
  // Outstanding bounds: keep SSDs saturated (deep NCQ), keep HDD queues
  // shallow so priority decisions matter.
  ssd_sched_ = std::make_unique<IoScheduler>(sim, ssd_volume_.get(),
                                             options.ssd_drives * DiskSpec::Ssd().concurrency);
  hdd_sched_ = std::make_unique<IoScheduler>(sim, hdd_volume_.get(), options.hdd_drives);
  server_ = std::make_unique<IndexServer>(machine_.get(), ssd_sched_.get(), hdd_sched_.get(),
                                          options.indexserve, rng_.Next());
  secondary_job_ = machine_->CreateJob("secondary");
  platform_ = std::make_unique<SimPlatform>(machine_.get(), hdd_sched_.get());
  platform_->AddSecondaryJob(secondary_job_);
}

void IndexNodeRig::StartCpuBully(int threads) {
  assert(cpu_bully_ == nullptr);
  cpu_bully_ = std::make_unique<CpuBully>(machine_.get(), secondary_job_, threads);
}

void IndexNodeRig::StartDiskBully(const DiskBully::Options& options) {
  assert(disk_bully_ == nullptr);
  hdd_sched_->RegisterOwner(options.owner, "disk-bully", /*priority=*/1, /*weight=*/1);
  disk_bully_ = std::make_unique<DiskBully>(sim_, machine_.get(), hdd_sched_.get(),
                                            secondary_job_, options, rng_.Fork());
  disk_bully_->Start();
}

void IndexNodeRig::StartHdfsClient(const HdfsClient::Options& options) {
  assert(hdfs_client_ == nullptr);
  hdd_sched_->RegisterOwner(options.owner, "hdfs-client", /*priority=*/1, /*weight=*/1);
  hdd_sched_->RegisterOwner(options.owner + 1, "hdfs-replication", /*priority=*/1,
                            /*weight=*/1);
  hdfs_client_ = std::make_unique<HdfsClient>(sim_, machine_.get(), hdd_sched_.get(),
                                              secondary_job_, options, rng_.Fork());
  hdfs_client_->Start();
}

void IndexNodeRig::StartMlTraining(const MlTrainingJob::Options& options) {
  assert(ml_training_ == nullptr);
  hdd_sched_->RegisterOwner(options.owner, "ml-training", /*priority=*/2, /*weight=*/1);
  ml_training_ = std::make_unique<MlTrainingJob>(sim_, machine_.get(), hdd_sched_.get(),
                                                 secondary_job_, options);
  ml_training_->Start();
}

void IndexNodeRig::StartNetworkBully(Fabric* fabric, int endpoint,
                                     const NetworkBully::Options& options) {
  assert(network_bully_ == nullptr);
  network_bully_ = std::make_unique<NetworkBully>(sim_, machine_.get(), fabric, endpoint,
                                                  secondary_job_, options, rng_.Fork());
  network_bully_->Start();
}

void IndexNodeRig::StartTenants(const TenantMixSpec& mix) {
  if (mix.cpu_bully_threads > 0) {
    StartCpuBully(mix.cpu_bully_threads);
  }
  if (mix.disk_bully) {
    StartDiskBully(DiskBully::Options{});
  }
  if (mix.hdfs_client) {
    StartHdfsClient(HdfsClient::Options{});
  }
  if (mix.ml_training) {
    MlTrainingJob::Options options;
    options.worker_threads = mix.ml_worker_threads;
    StartMlTraining(options);
  }
}

Status IndexNodeRig::StartPerfIso(const PerfIsoConfig& config) {
  assert(perfiso_ == nullptr);
  perfiso_ = std::make_unique<PerfIsoController>(platform_.get(), config);
  PERFISO_RETURN_IF_ERROR(perfiso_->Initialize());
  perfiso_->AttachToSimulator(sim_);
  if (tracer_ != nullptr) {
    perfiso_->EnableTracing(tracer_, machine_pid_);
  }
  return OkStatus();
}

void IndexNodeRig::EnableTracing(Tracer* tracer) {
  tracer_ = tracer;
  machine_pid_ = machine_->EnableTracing(tracer);
  server_->EnableTracing(tracer, machine_pid_);
  const int ssd_pid = ssd_volume_->EnableTracing(tracer);
  ssd_sched_->EnableTracing(tracer, ssd_pid);
  const int hdd_pid = hdd_volume_->EnableTracing(tracer);
  hdd_sched_->EnableTracing(tracer, hdd_pid);
  if (perfiso_ != nullptr) {
    perfiso_->EnableTracing(tracer, machine_pid_);
  }
}

double IndexNodeRig::SecondaryProgress() const {
  auto cpu = machine_->JobCpuTime(secondary_job_);
  return cpu.ok() ? ToSeconds(*cpu) : 0;
}

IndexNodeRig::UtilizationSnapshot IndexNodeRig::SnapshotUtilization() const {
  UtilizationSnapshot snap;
  machine_->SettleAccounting();
  snap.at = sim_->Now();
  for (int tenant = 0; tenant < kNumTenantClasses; ++tenant) {
    snap.busy[tenant] = machine_->metrics().busy_ns[tenant];
  }
  return snap;
}

double IndexNodeRig::UtilizationSince(const UtilizationSnapshot& snap,
                                      TenantClass tenant) const {
  machine_->SettleAccounting();  // include in-flight work up to now
  return machine_->UtilizationSince(snap.at, snap.busy, tenant);
}

double IndexNodeRig::IdleFractionSince(const UtilizationSnapshot& snap) const {
  double busy = 0;
  busy += UtilizationSince(snap, TenantClass::kPrimary);
  busy += UtilizationSince(snap, TenantClass::kSecondary);
  busy += UtilizationSince(snap, TenantClass::kOs);
  return 1.0 - busy;
}

}  // namespace perfiso
