#include "src/cluster/cluster.h"

#include <cassert>

#include "src/sim/parallel.h"

namespace perfiso {

struct Cluster::PendingQuery {
  QueryWork work;
  IndexServer::QueryDoneFn done;
  SimTime tla_submit = 0;   // arrival at the TLA
  SimTime mla_arrival = 0;  // arrival at the MLA
  int mla_node = 0;
  int row = 0;
  int leaves_left = 0;
  // Leaves that contributed no answer: crashed at fan-out time, refused the
  // request (crash between send and delivery), or dropped it server-side.
  int leaves_failed = 0;
  int tla_machine = 0;
};

Cluster::Cluster(Simulator* sim, const ClusterOptions& options)
    : Cluster(sim, nullptr, options) {}

Cluster::Cluster(ParallelSimulation* psim, const ClusterOptions& options)
    : Cluster(&psim->sim(0), psim, options) {}

int Cluster::PartitionForRow(int row) const {
  if (psim_ == nullptr || psim_->num_partitions() <= 1) {
    return 0;
  }
  // Partition 0 is reserved for the TLAs and the submitting client; rows
  // round-robin across the rest.
  return 1 + row % (psim_->num_partitions() - 1);
}

Cluster::Cluster(Simulator* sim, ParallelSimulation* psim, const ClusterOptions& options)
    : sim_(sim), psim_(psim), options_(options), rng_(options.seed) {
  const ClusterTopology& topo = options_.topology;
  assert(topo.columns > 0 && topo.rows > 0 && topo.tla_machines > 0);
  fabric_ = psim_ != nullptr ? std::make_unique<Fabric>(psim_, options_.fabric)
                             : std::make_unique<Fabric>(sim_, options_.fabric);
  index_nodes_.reserve(static_cast<size_t>(topo.columns * topo.rows));
  for (int row = 0; row < topo.rows; ++row) {
    // Every machine of a row shares the row's partition, so leaf fan-out and
    // fan-in stay on one simulator.
    const int partition = PartitionForRow(row);
    Simulator* row_sim = psim_ != nullptr ? &psim_->sim(partition) : sim_;
    for (int col = 0; col < topo.columns; ++col) {
      IndexNodeOptions node = options_.node;
      // Seeds are drawn in row-major construction order regardless of
      // partitioning, so node behavior is identical at any partition count
      // modulo the cross-partition hop timing.
      node.seed = rng_.Next();
      auto rig = std::make_unique<IndexNodeRig>(
          row_sim, node, "is-r" + std::to_string(row) + "c" + std::to_string(col));
      const int endpoint = fabric_->AttachMachine(rig->machine().name(), partition);
      assert(endpoint == static_cast<int>(index_nodes_.size()));
      (void)endpoint;
      // Secondary flows leaving this machine drain its PerfIso egress bucket.
      SimPlatform* platform = &rig->platform();
      fabric_->SetEgressBucketProvider(endpoint,
                                       [platform] { return platform->egress_bucket(); });
      index_nodes_.push_back(std::move(rig));
    }
  }
  tla_machines_.reserve(static_cast<size_t>(topo.tla_machines));
  for (int i = 0; i < topo.tla_machines; ++i) {
    tla_machines_.push_back(
        std::make_unique<SimMachine>(sim_, options_.node.machine, "tla-" + std::to_string(i)));
    fabric_->AttachMachine(tla_machines_.back()->name(), /*partition=*/0);
  }
  next_mla_in_row_.assign(static_cast<size_t>(topo.rows), 0);
  mla_latency_rows_.assign(static_cast<size_t>(topo.rows), LatencyRecorder{});
  crashed_.assign(index_nodes_.size(), false);
}

void Cluster::SubmitQuery(const QueryWork& work, IndexServer::QueryDoneFn done) {
  ++queries_submitted_;
  auto pending = std::make_shared<PendingQuery>();
  pending->work = work;
  pending->done = std::move(done);
  pending->tla_submit = sim_->Now();
  pending->tla_machine = static_cast<int>(next_tla_);
  next_tla_ = (next_tla_ + 1) % tla_machines_.size();
  if (tracer_ != nullptr && pending->work.trace_ctx == 0) {
    // One context for the whole tree: TLA forward, fabric hops, every leaf's
    // stages and I/O, MLA merge, final reply. Leaves adopt it via QueryWork.
    pending->work.trace_ctx = tracer_->BeginTrace("tla", pending->tla_submit);
  }

  // TLA request processing, then forward to a row (round-robin).
  pending->row = next_row_;
  next_row_ = (next_row_ + 1) % options_.topology.rows;
  SimMachine* tla = tla_machines_[static_cast<size_t>(pending->tla_machine)].get();
  tla->SpawnThread(
      "tla-fwd", TenantClass::kPrimary, JobId{}, FromMicros(options_.tla_cpu_us),
      [this, pending](SimTime now) {
        // Pick the MLA within the row (TLA load balancing), skipping nodes
        // the health checks know to be crashed. With nothing crashed the
        // first probe hits the cursor, exactly the pre-fault round-robin.
        const int cols = options_.topology.columns;
        auto& cursor = next_mla_in_row_[static_cast<size_t>(pending->row)];
        int chosen = -1;
        for (int probe = 0; probe < cols; ++probe) {
          const int candidate =
              pending->row * cols +
              static_cast<int>((cursor + static_cast<size_t>(probe)) % static_cast<size_t>(cols));
          if (!crashed_[static_cast<size_t>(candidate)]) {
            chosen = candidate;
            cursor = (cursor + static_cast<size_t>(probe) + 1) % static_cast<size_t>(cols);
            break;
          }
        }
        if (chosen < 0) {
          // The whole row is down: nothing can serve this query.
          FailAtTla(pending, now);
          return;
        }
        pending->mla_node = chosen;
        fabric_->Send(tla_endpoint(pending->tla_machine),
                      index_endpoint(pending->mla_node),
                      options_.fabric.request_bytes, NetClass::kPrimary,
                      [this, pending](SimTime arrival) { RunMla(pending, arrival); },
                      pending->work.trace_ctx);
      },
      pending->work.trace_ctx);
}

void Cluster::RunMla(const std::shared_ptr<PendingQuery>& pending, SimTime now) {
  pending->mla_arrival = now;
  const int cols = options_.topology.columns;
  pending->leaves_left = cols;
  IndexNodeRig& mla = *index_nodes_[static_cast<size_t>(pending->mla_node)];

  for (int col = 0; col < cols; ++col) {
    const int leaf_index = pending->row * cols + col;
    IndexNodeRig& leaf = *index_nodes_[static_cast<size_t>(leaf_index)];
    const bool local = leaf_index == pending->mla_node;

    if (crashed_[static_cast<size_t>(leaf_index)]) {
      // Health checks: no request is sent to a known-dead leaf — no events
      // are delivered to crashed machines. It counts as failed coverage
      // immediately.
      ++pending->leaves_failed;
      if (--pending->leaves_left == 0) {
        FinalizeMla(pending);
      }
      continue;
    }

    auto run_leaf = [this, pending, &leaf, &mla, leaf_index, local] {
      leaf.server().SubmitQuery(pending->work, [this, pending, &mla, leaf_index,
                                                local](const QueryResult& leaf_result) {
        // A dropped leaf (timeout, admission, or a crash that raced the
        // request) answered nothing: failed coverage. The (error) response
        // still travels back and merges, keeping the event sequence of
        // no-fault runs untouched.
        if (leaf_result.dropped) {
          ++pending->leaves_failed;
        }
        auto merge = [this, pending, &mla](SimTime) {
          // Merge work on the MLA machine for this leaf response.
          mla.machine().SpawnThread(
              "mla-merge", TenantClass::kPrimary, mla.server().job(),
              FromMicros(options_.mla_merge_cpu_us),
              [this, pending](SimTime) {
                if (--pending->leaves_left == 0) {
                  FinalizeMla(pending);
                }
              },
              pending->work.trace_ctx);
        };
        if (local) {
          // merge() ignores its timestamp; the leaf's own finish time is the
          // correct clock here either way (sim_ would be partition 0's).
          merge(leaf_result.finish_time);
        } else {
          // Leaf response travels back over the fabric (MLA fan-in: all
          // columns' responses converge on the MLA's RX link — incast).
          fabric_->Send(index_endpoint(leaf_index), index_endpoint(pending->mla_node),
                        options_.fabric.leaf_response_bytes, NetClass::kPrimary,
                        std::move(merge), pending->work.trace_ctx);
        }
      });
    };
    if (local) {
      run_leaf();
    } else {
      fabric_->Send(index_endpoint(pending->mla_node), index_endpoint(leaf_index),
                    options_.fabric.request_bytes, NetClass::kPrimary,
                    [run_leaf](SimTime) { run_leaf(); }, pending->work.trace_ctx);
    }
  }
}

void Cluster::FinalizeMla(const std::shared_ptr<PendingQuery>& pending) {
  // All leaf slots accounted for: finalize on the MLA, reply to the TLA.
  IndexNodeRig& mla = *index_nodes_[static_cast<size_t>(pending->mla_node)];
  mla.machine().SpawnThread(
      "mla-final", TenantClass::kPrimary, mla.server().job(),
      FromMicros(options_.mla_finalize_cpu_us),
      [this, pending](SimTime now) {
        // Recorded per row: this runs on the MLA's partition.
        mla_latency_rows_[static_cast<size_t>(pending->row)].Add(
            ToMillis(now - pending->mla_arrival));
        fabric_->Send(
            index_endpoint(pending->mla_node), tla_endpoint(pending->tla_machine),
            options_.fabric.final_response_bytes, NetClass::kPrimary,
            [this, pending](SimTime) {
              SimMachine* tla = tla_machines_[static_cast<size_t>(pending->tla_machine)].get();
              tla->SpawnThread(
                  "tla-reply", TenantClass::kPrimary, JobId{},
                  FromMicros(options_.tla_cpu_us),
                  [this, pending](SimTime end) {
                    const int cols = options_.topology.columns;
                    const double coverage =
                        cols == 0 ? 1.0
                                  : static_cast<double>(cols - pending->leaves_failed) /
                                        static_cast<double>(cols);
                    const bool failed = coverage < options_.min_leaf_coverage;
                    QueryResult result;
                    result.id = pending->work.id;
                    result.submit_time = pending->tla_submit;
                    result.finish_time = end;
                    result.latency_ms = ToMillis(end - pending->tla_submit);
                    result.chunks_total = cols;
                    result.chunks_served = cols - pending->leaves_failed;
                    result.degraded = pending->leaves_failed > 0;
                    result.dropped = failed;
                    if (failed) {
                      ++queries_failed_;
                    } else {
                      ++queries_completed_;
                      if (pending->leaves_failed > 0) {
                        ++queries_degraded_;
                      }
                      coverage_fraction_.Add(coverage);
                      tla_latency_ms_.Add(result.latency_ms);
                    }
                    if (tracer_ != nullptr && pending->work.trace_ctx != 0) {
                      tracer_->EndTrace(pending->work.trace_ctx, end, failed);
                    }
                    if (pending->done) {
                      pending->done(result);
                    }
                  },
                  pending->work.trace_ctx);
            },
            pending->work.trace_ctx);
      },
      pending->work.trace_ctx);
}

void Cluster::FailAtTla(const std::shared_ptr<PendingQuery>& pending, SimTime now) {
  ++queries_failed_;
  if (tracer_ != nullptr && pending->work.trace_ctx != 0) {
    tracer_->EndTrace(pending->work.trace_ctx, now, /*dropped=*/true);
  }
  if (pending->done) {
    QueryResult result;
    result.id = pending->work.id;
    result.submit_time = pending->tla_submit;
    result.finish_time = now;
    result.latency_ms = ToMillis(now - pending->tla_submit);
    result.dropped = true;
    result.chunks_total = options_.topology.columns;
    pending->done(result);
  }
}

void Cluster::ForEachIndexNode(const std::function<void(IndexNodeRig&)>& fn) {
  for (auto& node : index_nodes_) {
    fn(*node);
  }
}

int64_t Cluster::SecondaryEgressBytes() const {
  int64_t bytes = 0;
  for (int i = 0; i < NumIndexNodes(); ++i) {
    bytes += fabric_->netdev(i).tx().stats().bytes_serialized[static_cast<size_t>(
        NetClass::kSecondary)];
  }
  return bytes;
}

void Cluster::EnableTracing(Tracer* tracer) {
  tracer_ = tracer;
  fabric_->EnableTracing(tracer);
  for (auto& node : index_nodes_) {
    node->EnableTracing(tracer);
  }
  for (auto& tla : tla_machines_) {
    tla->EnableTracing(tracer);
  }
}

LatencyRecorder Cluster::MlaLatency() const {
  LatencyRecorder merged;
  for (const auto& row : mla_latency_rows_) {
    merged.Merge(row);
  }
  return merged;
}

LatencyRecorder Cluster::MergedLeafLatency() const {
  LatencyRecorder merged;
  for (const auto& node : index_nodes_) {
    merged.Merge(node->server().stats().latency_ms);
  }
  return merged;
}

int64_t Cluster::leaf_drops() const {
  int64_t drops = 0;
  for (const auto& node : index_nodes_) {
    drops += node->server().stats().TotalDropped();
  }
  return drops;
}

void Cluster::ResetStats() {
  inflight_at_reset_ = queries_inflight();
  for (auto& row : mla_latency_rows_) {
    row.Clear();
  }
  tla_latency_ms_.Clear();
  coverage_fraction_.Clear();
  queries_submitted_ = 0;
  queries_completed_ = 0;
  queries_failed_ = 0;
  queries_degraded_ = 0;
  for (auto& node : index_nodes_) {
    node->server().ResetStats();
  }
  fabric_->ResetStats();
}

std::vector<IndexNodeRig::UtilizationSnapshot> Cluster::SnapshotAll() const {
  std::vector<IndexNodeRig::UtilizationSnapshot> snaps;
  snaps.reserve(index_nodes_.size());
  for (const auto& node : index_nodes_) {
    snaps.push_back(node->SnapshotUtilization());
  }
  return snaps;
}

double Cluster::MeanUtilizationSince(
    const std::vector<IndexNodeRig::UtilizationSnapshot>& snaps, TenantClass tenant) const {
  assert(snaps.size() == index_nodes_.size());
  double sum = 0;
  for (size_t i = 0; i < index_nodes_.size(); ++i) {
    sum += index_nodes_[i]->UtilizationSince(snaps[i], tenant);
  }
  return index_nodes_.empty() ? 0 : sum / static_cast<double>(index_nodes_.size());
}

double Cluster::MeanBusyFractionSince(
    const std::vector<IndexNodeRig::UtilizationSnapshot>& snaps) const {
  double busy = 0;
  busy += MeanUtilizationSince(snaps, TenantClass::kPrimary);
  busy += MeanUtilizationSince(snaps, TenantClass::kSecondary);
  busy += MeanUtilizationSince(snaps, TenantClass::kOs);
  return busy;
}

}  // namespace perfiso
