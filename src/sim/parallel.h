// Conservative time-windowed parallel simulation (PDES) over Simulator
// partitions.
//
// A ParallelSimulation owns K Simulators ("partitions") that advance in
// lockstep windows of fixed width W. Within a window every partition runs its
// own two-band scheduler independently — on a worker thread when more than
// one is configured — and any event destined for *another* partition is not
// scheduled directly but deposited into a per-(src, dst) mailbox via Post().
// At the window barrier the mailboxes are merged single-threaded into the
// destination simulators in a deterministic total order, and the next window
// begins.
//
// Correctness (the conservative-lookahead argument, DESIGN.md §10): the
// caller guarantees every cross-partition message posted at local time t
// carries a delivery time >= t + L, where L is the minimum cross-partition
// latency (for the cluster fabric, `net.base_latency` — one propagation hop).
// With W <= L, a message posted anywhere inside window [w, w + W) delivers at
// >= w + W, i.e. never inside the window that produced it, so running the
// partitions of one window concurrently can never miss or reorder a message
// a peer would have delivered mid-window. Post() enforces this bound.
//
// Determinism: results are a pure function of (inputs, partition count) and
// are bit-identical for ANY worker thread count, including 1:
//   * partitions share no mutable state — each outbox row is written only by
//     its owning partition's thread, and the merge runs with all workers
//     parked at the barrier;
//   * the merge orders messages by (delivery time, source partition, posting
//     order within the source), a total order independent of thread
//     interleaving; merged messages draw their (time, seq) from the
//     destination simulator in that same order;
//   * window boundaries are derived from simulated state only (fixed width,
//     plus a skip-ahead over provably empty windows computed from
//     Simulator::NextEventTime() at the barrier).
//
// With partitions == 1 no windows, threads, or mailboxes exist at all —
// RunUntil forwards to the lone Simulator, so a 1-partition run is the
// plain sequential engine, bit for bit.
#ifndef PERFISO_SRC_SIM_PARALLEL_H_
#define PERFISO_SRC_SIM_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/sim_time.h"

namespace perfiso {

class ParallelSimulation {
 public:
  struct Options {
    // Number of partitions (independent Simulators). 1 = plain sequential.
    int partitions = 1;
    // Lockstep window width W; must be positive when partitions > 1 and at
    // most the minimum cross-partition delivery latency (the PDES lookahead).
    SimDuration window = 0;
    // Worker threads: 0 = one per partition (capped at the partition count),
    // otherwise capped to [1, partitions]. Any value yields identical results.
    int threads = 0;
  };

  struct Stats {
    uint64_t windows_run = 0;        // lockstep windows executed
    uint64_t messages_posted = 0;    // cross-partition mailbox messages
    uint64_t setup_posts = 0;        // Post() calls outside a window (direct)
    uint64_t merge_batches = 0;      // barrier merges that moved >= 1 message
  };

  explicit ParallelSimulation(const Options& options);
  ~ParallelSimulation();

  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  int num_partitions() const { return static_cast<int>(sims_.size()); }
  int num_threads() const { return num_threads_; }
  SimDuration window() const { return window_; }

  Simulator& sim(int partition) { return *sims_[static_cast<size_t>(partition)]; }
  const Simulator& sim(int partition) const { return *sims_[static_cast<size_t>(partition)]; }

  // Partition whose window is executing on the calling thread, or -1 outside
  // a window (setup, barrier merge). Cross-partition senders use this to
  // identify their source mailbox row.
  static int current_partition();

  // Delivers `fn` on partition `dst` at absolute time `deliver_time`.
  //   * From inside a window, posting to another partition: deposited into
  //     the caller's mailbox row and merged at the barrier. `deliver_time`
  //     must be at or after the end of the current window (the lookahead
  //     contract above); violations abort in debug builds and are clamped to
  //     the window end in release builds (a clamp means the configured window
  //     exceeds the real latency floor — a setup bug).
  //   * To the calling thread's own partition, or outside a window (setup /
  //     between RunUntil calls): scheduled directly, no constraint.
  void Post(int dst, SimTime deliver_time, std::function<void()> fn);

  // Runs every partition to `until` inclusive (same contract as
  // Simulator::RunUntil) in lockstep windows, merging mailboxes at each
  // barrier. Callable repeatedly with increasing `until` (warmup, then
  // measurement); between calls all partitions sit at exactly `until` and
  // single-threaded access to any partition state is safe.
  void RunUntil(SimTime until);

  const Stats& stats() const { return stats_; }

  // Sum of events executed across partitions (throughput accounting).
  uint64_t TotalEventsExecuted() const;

 private:
  struct Mailbox;  // per-(src, dst) message buffer, owned by src's thread
  struct Workers;  // thread pool + barriers (absent when 1 thread suffices)

  // Earliest pending timestamp across all partitions (mailboxes are empty at
  // the barrier, where this is called). Simulator::kNoPendingEvent when idle.
  SimTime GlobalNextEventTime() const;
  // Runs every partition to `cap`: inline when single-threaded, else one
  // barrier round trip through the worker pool.
  void RunPartitionsTo(SimTime cap);
  void RunAssignedPartitions(int worker_index, SimTime cap);
  // Schedules all mailboxed messages into their destinations in the
  // deterministic (deliver_time, src, posting order) total order.
  void MergeMailboxes();

  SimDuration window_ = 0;
  int num_threads_ = 1;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<Mailbox>> outboxes_;  // K*K, row-major [src][dst]
  std::unique_ptr<Workers> workers_;
  // Exclusive end of the window currently executing (the Post() lookahead
  // floor); only read by partition threads while they run, written at the
  // barrier before they are released.
  SimTime window_end_ = 0;
  bool in_window_ = false;
  Stats stats_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_SIM_PARALLEL_H_
