// SimMachine: a deterministic model of one multi-core server's scheduler.
//
// The model captures exactly the mechanisms PerfIso's CPU blind isolation
// interacts with (§3.1 of the paper):
//
//   * Per-core ready queues with quantum-based round-robin. A thread that
//     wakes takes an idle core from its allowed set immediately; otherwise it
//     queues on the allowed core with the shortest queue and waits for that
//     core's running thread to exhaust its quantum. There is no
//     same-priority wake preemption — this is why an unrestricted CPU-bound
//     secondary destroys the primary's tail latency.
//   * Job objects (Windows Job Object analogue): a group of threads sharing
//     an affinity mask and an optional hard CPU-rate cap (duty-cycle
//     enforcement per accounting interval), the two static isolation knobs
//     the paper compares against.
//   * An idle-core bitmask query, the low-latency "syscall" blind isolation
//     polls (§3.1.1).
//   * Per-tenant CPU accounting (primary / secondary / OS / idle) matching
//     the breakdowns in Figs. 4b-7b, plus scheduling-delay and burstiness
//     metrics.
//
// Threads run "CPU bursts": a burst is `work` nanoseconds of CPU, after which
// an on-complete callback fires (and may spawn further bursts — that is how
// workloads express blocking on I/O or fan-out). Loop threads (bullies) have
// unbounded work; their progress is their accumulated CPU time.
#ifndef PERFISO_SRC_SIM_MACHINE_H_
#define PERFISO_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/cpu_set.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"
#include "src/util/status.h"

namespace perfiso {

// Which bucket a thread's CPU time is charged to, mirroring the paper's
// utilization breakdown (primary / secondary / OS; idle is the remainder).
enum class TenantClass { kPrimary = 0, kSecondary = 1, kOs = 2 };

inline constexpr int kNumTenantClasses = 3;
const char* TenantClassName(TenantClass tenant);

// Static machine parameters (defaults model the paper's testbed: 2x Intel
// Xeon E5-2673 v3, 48 logical cores, Windows-Server-style long quanta).
struct MachineSpec {
  int num_cores = 48;
  // Scheduler quantum. Windows Server uses long fixed quanta; this is the
  // delay a queued thread can suffer behind a CPU-bound thread. 60 ms
  // reproduces the paper's ~29x unmanaged-colocation degradation given the
  // query pipeline's wake points (see DESIGN.md calibration notes).
  SimDuration quantum = FromMillis(60);
  // Dispatch overhead charged to the OS bucket per context switch.
  SimDuration context_switch = FromMicros(2);
  // Accounting interval for job CPU-rate caps (duty-cycle enforcement).
  // Rate caps are enforced over coarse periods in real systems (cgroup v2
  // cpu.max defaults to 100 ms; Windows CPU rate control is similarly
  // coarse in practice). The ON-window length this produces is what delays
  // woken primary workers (Fig. 7); 300 ms reproduces the paper's observed
  // degradation magnitudes.
  SimDuration throttle_interval = FromMillis(300);
  int64_t memory_bytes = 128LL * 1024 * 1024 * 1024;
};

struct JobId {
  int value = -1;
  bool valid() const { return value >= 0; }
  bool operator==(const JobId&) const = default;
};

struct ThreadId {
  int value = -1;
  bool valid() const { return value >= 0; }
  bool operator==(const ThreadId&) const = default;
};

class SimMachine {
 public:
  using CompletionFn = std::function<void(SimTime)>;

  SimMachine(Simulator* sim, const MachineSpec& spec, std::string name);

  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

  // --- Job objects -----------------------------------------------------------

  JobId CreateJob(const std::string& name);

  // Restricts all threads of `job` to `mask`. Running threads on disallowed
  // cores are preempted immediately; queued threads are re-routed.
  Status SetJobAffinity(JobId job, const CpuSet& mask);
  StatusOr<CpuSet> JobAffinity(JobId job) const;

  // Hard-caps the job to `fraction` of total machine CPU (all cores) per
  // accounting interval; <= 0 removes the cap. Mirrors Windows
  // JOBOBJECT_CPU_RATE_CONTROL_HARD_CAP.
  Status SetJobCpuRateCap(JobId job, double fraction);

  // Suspends/resumes all threads of the job. Blind isolation uses this when
  // the primary needs every core and the secondary's allocation drops to zero
  // (an empty affinity mask is not representable).
  Status SetJobSuspended(JobId job, bool suspended);
  StatusOr<bool> JobSuspended(JobId job) const;

  // Terminates every thread in the job (used by the memory watchdog).
  Status KillJob(JobId job);

  // Cumulative CPU time consumed by the job's threads (progress metric).
  StatusOr<SimDuration> JobCpuTime(JobId job) const;
  StatusOr<int> JobLiveThreads(JobId job) const;

  // Simulated memory accounting (no paging model; the watchdog only needs
  // footprint totals).
  Status AddJobMemory(JobId job, int64_t delta_bytes);
  StatusOr<int64_t> JobMemory(JobId job) const;
  int64_t FreeMemoryBytes() const;

  // --- Threads ---------------------------------------------------------------

  // Spawns a thread that runs `work` ns of CPU then invokes `on_complete`.
  // `job` may be invalid (unmanaged thread, full affinity). `trace_ctx`
  // optionally ties the thread's scheduling to a query trace: its run-queue
  // waits and executed slices become cpu-wait/service spans of that query.
  ThreadId SpawnThread(const std::string& name, TenantClass tenant, JobId job, SimDuration work,
                       CompletionFn on_complete, uint64_t trace_ctx = 0);

  // Spawns a thread with unbounded work (e.g. a CPU bully worker).
  ThreadId SpawnLoopThread(const std::string& name, TenantClass tenant, JobId job);

  // Restricts a single thread to `mask` (intersected with its job's mask).
  // Models a primary that affinitizes its own threads (§4.2).
  Status SetThreadAffinity(ThreadId tid, const CpuSet& mask);

  Status KillThread(ThreadId tid);
  bool ThreadLive(ThreadId tid) const;

  // --- Introspection (the "syscalls" PerfIso uses) ----------------------------

  // Bitmask of cores currently running the idle thread (§3.1.1).
  const CpuSet& IdleMask() const { return idle_mask_; }
  int IdleCount() const { return idle_mask_.Count(); }
  int NumCores() const { return spec_.num_cores; }
  const MachineSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  Simulator* sim() const { return sim_; }

  // --- Metrics ----------------------------------------------------------------

  struct Metrics {
    // Cumulative busy time per tenant class (ns). Idle time over a window is
    // num_cores * window - sum(busy deltas).
    SimDuration busy_ns[kNumTenantClasses] = {0, 0, 0};
    int64_t dispatches = 0;
    int64_t preemptions = 0;
    int64_t steals = 0;
    int64_t threads_spawned = 0;
    // Largest number of threads that became ready within any 5 us window —
    // the paper's burstiness measurement (§1: "up to 15 threads in 5 us").
    int max_ready_burst_5us = 0;
    // Wake-to-dispatch delay of primary threads, in microseconds.
    LatencyRecorder primary_sched_delay_us;

    SimDuration TotalBusy() const { return busy_ns[0] + busy_ns[1] + busy_ns[2]; }
  };

  const Metrics& metrics() const { return metrics_; }

  // --- Observability ----------------------------------------------------------

  // Registers this machine as a tracer process with one track per core.
  // Afterwards, threads spawned with a trace context report cpu-wait and
  // service spans on their core's track. Purely passive: enabling tracing
  // changes no scheduling decision. Returns the machine's process id so
  // co-located components (the index server) can add their own tracks.
  int EnableTracing(Tracer* tracer);

  // Settles the partial CPU time of all currently-running slices into the
  // accounting counters. Call before snapshotting utilization so windows do
  // not absorb work consumed before the snapshot.
  void SettleAccounting();

  // Verifies internal consistency (idle mask vs. core state, queue
  // membership, job thread lists and running counts, accounting bounds).
  // O(threads + cores); intended for tests and debugging.
  Status CheckInvariants() const;

  // Utilization fractions of total capacity since `since` (caller snapshots
  // busy_ns and subtracts). Helper for the common "whole run" case:
  double UtilizationSince(SimTime since, const SimDuration busy_then[kNumTenantClasses],
                          TenantClass tenant) const;

 private:
  struct Thread {
    std::string name;
    TenantClass tenant = TenantClass::kPrimary;
    int job = -1;
    enum class State { kFree, kReady, kRunning, kFinished } state = State::kFree;
    SimDuration remaining = 0;
    bool loop = false;  // unbounded work
    CpuSet affinity;    // thread-level mask (full by default)
    CompletionFn on_complete;
    // The pending end-of-slice event while kRunning. Preemption and kill
    // cancel it eagerly, so a stale slice event never sits in the queue.
    // Lifecycle owned by SimMachine (CancelOwned on every transition).
    EventHandle slice_event;  // NOLINT(perfiso-LIFE-001)
    int core = -1;         // running core, or queued-on core when kReady in a queue
    bool queued = false;   // kReady and sitting in a core's ready queue
    SimTime ready_since = 0;
    SimTime slice_start = 0;
    SimDuration slice_overhead = 0;  // context-switch ns at the head of the slice
    SimDuration cpu_time = 0;
    uint64_t trace_ctx = 0;  // query trace this thread's scheduling reports to
  };

  struct Job {
    std::string name;
    bool live = false;
    CpuSet affinity;
    double rate_cap = 0;  // <= 0: uncapped
    bool throttled = false;
    bool suspended = false;
    int64_t usage_interval = -1;  // interval index of `usage`
    SimDuration usage = 0;        // settled CPU consumed in `usage_interval`
    int running_count = 0;        // running threads (tracked for capped jobs)
    // The single pending budget-exhaustion check for a capped job; an earlier
    // deadline tightens it in place instead of stacking a second event.
    // Lifecycle owned by SimMachine (CancelOwned on kill/uncap/throttle).
    EventHandle exhaust_event;  // NOLINT(perfiso-LIFE-001)
    // Pending end-of-interval unthrottle while `throttled`.
    EventHandle unthrottle_event;  // NOLINT(perfiso-LIFE-001)
    SimDuration cpu_time = 0;
    int64_t memory_bytes = 0;
    std::vector<int> threads;  // live thread ids (unsorted)
  };

  struct Core {
    int running = -1;  // thread id or -1
    std::deque<int> ready;
  };

  // Effective affinity of a thread = thread mask ∩ job mask.
  CpuSet EffectiveAffinity(const Thread& t) const;
  bool JobDispatchable(const Thread& t) const;  // job not throttled / over budget

  int AllocThreadSlot();
  void MakeReady(int tid);
  void Dispatch(int core, int tid, bool context_switch);
  void OnSliceEnd(int core, int tid);
  void DispatchNext(int core);
  // Charges CPU consumed since slice start up to `now`; updates remaining,
  // tenant accounting, and job budget. Returns consumed work (without
  // context-switch overhead).
  SimDuration ChargeRun(Thread& t);
  // Bookkeeping when a running thread stops (completion, preemption, kill):
  // maintains the job's running-thread count for rate-cap math.
  void NoteStopRunning(Thread& t);
  void RemoveFromQueue(Thread& t, int tid);
  void ThrottleJob(int job_id);
  void UnthrottleJob(int job_id);
  // Rate-cap machinery: usage is consumed at `running_count` ns of budget per
  // ns of real time, so exhaustion is predictable exactly. These maintain a
  // single pending "budget exhausted" event per capped job.
  SimDuration InflightWork(const Job& job) const;
  void ScheduleExhaustCheck(int job_id);
  void OnExhaustCheck(int job_id);
  void KickIdleCores(const CpuSet& mask);
  int PickIdleCore(const CpuSet& eff, int preferred) const;
  int PickQueueCore(const CpuSet& eff) const;
  SimDuration RateBudgetLeft(Job& job) const;  // lazily resets per interval
  void NoteReadyBurst(SimTime now);
  void FinishThread(int tid, bool run_callback);

  Simulator* sim_;
  MachineSpec spec_;
  std::string name_;
  Tracer* tracer_ = nullptr;
  int32_t first_core_track_ = 0;  // core c's track is first_core_track_ + c
  CpuSet all_cores_;
  std::vector<Core> cores_;
  std::vector<Thread> threads_;
  std::vector<int> free_threads_;
  std::vector<Job> jobs_;
  CpuSet idle_mask_;
  Metrics metrics_;
  std::deque<SimTime> recent_ready_times_;  // for the 5 us burst metric
  int64_t used_memory_bytes_ = 0;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_SIM_MACHINE_H_
