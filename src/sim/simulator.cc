#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "src/util/logging.h"

namespace perfiso {

namespace {

// Engine-validation failures abort: a violated invariant means the simulation
// state is already unreliable, and the determinism contract makes limping on
// worse than dying loudly. The "SimSan:" prefix is what the death tests match.
[[noreturn]] void EngineDie(const char* what, const std::string& detail) {
  std::fprintf(stderr, "SimSan: %s: %s\n", what, detail.c_str());
  std::abort();
}

#ifdef PERFISO_SIMSAN
constexpr unsigned char kSimSanPoisonByte = 0xA5;
#endif

// Bits at positions >= b of a 64-bit word; safe for b == 64 (shift by the
// word width is UB, so gate it).
inline uint64_t MaskFrom(uint32_t b) { return b >= 64 ? 0 : ~0ull << b; }

}  // namespace

#ifdef PERFISO_SIMSAN
void EventCallback::SimSanPoison() {
  assert(invoke_ == nullptr);
  std::memset(inline_buf_, kSimSanPoisonByte, kInlineBytes);
}

bool EventCallback::SimSanPoisonIntact() const {
  if (invoke_ != nullptr || destroy_ != nullptr || heap_ != nullptr) {
    return false;
  }
  for (unsigned char byte : inline_buf_) {
    if (byte != kSimSanPoisonByte) {
      return false;
    }
  }
  return true;
}
#endif

Simulator::Simulator() {
  std::fill(wheel_, wheel_ + kWheelTotalSlots, kNilId);
  // Stamp log messages from this thread with this simulator's virtual time
  // for as long as it lives; the displaced clock (an outer simulator's, or
  // none) comes back on destruction.
  const SimClockRegistration previous = SetThreadSimClock(
      [](const void* ctx) {
        return static_cast<uint64_t>(static_cast<const Simulator*>(ctx)->Now());
      },
      this);
  prev_log_clock_fn_ = previous.fn;
  prev_log_clock_ctx_ = previous.ctx;
}

Simulator::~Simulator() {
  ClearThreadSimClock(SimClockRegistration{prev_log_clock_fn_, prev_log_clock_ctx_});
}

SimTime Simulator::ClampToNow(SimTime when) {
  if (when >= now_) {
    return when;
  }
  ++stats_.clamped_schedules;
#ifndef NDEBUG
  PERFISO_LOG(kDebug) << "Schedule at t=" << when << " is " << (now_ - when)
                      << " ns in the past; clamped to Now()=" << now_;
#endif
  return now_;
}

uint32_t Simulator::AllocSlot() {
  if (free_ids_.empty()) {
    const auto base = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
    slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
    ++stats_.slab_allocs;
    free_ids_.reserve(kSlabSize);
    // Push in descending order so slots hand out in ascending id order.
    for (uint32_t i = kSlabSize; i > 0; --i) {
      free_ids_.push_back(base + i - 1);
#ifdef PERFISO_SIMSAN
      Event& fresh = Rec(base + i - 1);
      fresh.cb.SimSanPoison();
      fresh.simsan_in_free_list = true;
#endif
    }
  }
  const uint32_t id = free_ids_.back();
  free_ids_.pop_back();
#ifdef PERFISO_SIMSAN
  Event& e = Rec(id);
  if (!e.cb.SimSanPoisonIntact()) {
    EngineDie("use-after-recycle",
              "freed event record " + std::to_string(id) +
                  " was written while on the free list (stale reference scribble)");
  }
  e.simsan_in_free_list = false;
#endif
  return id;
}

void Simulator::FreeSlot(uint32_t id) {
#ifdef PERFISO_SIMSAN
  Event& e = Rec(id);
  if (e.simsan_in_free_list) {
    EngineDie("double-free", "event slot " + std::to_string(id) + " freed twice");
  }
  e.cb.SimSanPoison();
  e.simsan_in_free_list = true;
#endif
  free_ids_.push_back(id);
}

#ifdef PERFISO_SIMSAN
void Simulator::SimSanNoteEnded(Event& e, uint8_t how) {
  e.simsan_ended_gen = e.gen;  // the generation outstanding handles carry
  e.simsan_ended_how = how;
}

void Simulator::SimSanDiagnoseStale(EventHandle handle, const char* op) const {
  if (handle.id_ == EventHandle::kInvalidId) {
    return;  // default-constructed handles are inert by design
  }
  const uint32_t capacity = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
  if (handle.id_ >= capacity) {
    EngineDie(op, "EventHandle id " + std::to_string(handle.id_) +
                      " is out of range (handle from another Simulator, or corrupt)");
  }
  const Event& e = Rec(handle.id_);
  const std::string where = "slot " + std::to_string(handle.id_) + " handle-gen " +
                            std::to_string(handle.gen_) + " slot-gen " + std::to_string(e.gen) +
                            " at t=" + std::to_string(now_);
  const bool armed =
      e.where == kWhereWheel || e.where == kWhereOverflow || e.where == kWhereBatch;
  if (armed) {
    // The slot is armed again under a different generation: the caller's
    // event is long gone and this handle now aliases someone else's event.
    // Without generation counters this would cancel a stranger's event.
    EngineDie("stale-handle-after-recycle",
              std::string(op) + " through a handle whose slot was recycled and re-armed (" +
                  where + "); the owner must clear its handle when the event fires "
                  "(use Simulator::CancelOwned / reset stored handles)");
  }
  if (e.gen - handle.gen_ > 1) {
    EngineDie("stale-handle-after-recycle",
              std::string(op) + " through a handle whose slot was recycled (" + where + ")");
  }
  // e.gen == handle.gen_ + 1: the handle's own event ended exactly once since
  // the handle was minted. Fired is the documented benign-stale case;
  // cancelled means the caller is cancelling (or moving) the same event twice.
  if (e.simsan_ended_how == Event::kEndedCancelled) {
    EngineDie("double-cancel", std::string(op) + " through a handle that was already "
                                   "cancelled (" + where + ")");
  }
}
#endif

Simulator::Event* Simulator::Lookup(EventHandle handle) {
  return const_cast<Event*>(std::as_const(*this).Lookup(handle));
}

const Simulator::Event* Simulator::Lookup(EventHandle handle) const {
  if (handle.id_ >= (static_cast<uint32_t>(slabs_.size()) << kSlabBits)) {
    return nullptr;
  }
  const Event& e = Rec(handle.id_);
  if (e.gen != handle.gen_ ||
      (e.where != kWhereWheel && e.where != kWhereOverflow && e.where != kWhereBatch)) {
    return nullptr;
  }
  return &e;
}

bool Simulator::Pending(EventHandle handle) const { return Lookup(handle) != nullptr; }

SimTime Simulator::NextEventTime() const {
  // Undispatched batch entries all carry Now() (one drained slot == one
  // timestamp); any still-valid one makes Now() the next event time.
  for (size_t pos = batch_pos_; pos < batch_.size(); ++pos) {
    const BatchItem& item = batch_[pos];
    const Event& e = Rec(item.id);
    if (e.where == kWhereBatch && e.gen == item.gen && e.seq == item.seq) {
      return now_;
    }
  }
  // Level 0: the next occupied slot at or after the cursor holds the earliest
  // pending timestamp (everything behind the cursor already fired, and higher
  // bands only hold later times — the DrainNextSlot argument).
  int s = NextOccupied(0, static_cast<uint32_t>(now_) & kWheelSlotMask[0]);
  if (s >= 0) {
    return (now_ & ~static_cast<SimTime>(kWheelSlotMask[0])) | static_cast<SimTime>(s);
  }
  // Levels 1 and 2: within a page slot indexes only increase with time, so
  // the first occupied bucket after the cursor bounds everything at or above
  // this level. Its bucket spans more than one timestamp, so walk the list
  // for the minimum.
  for (int level = 1; level < kWheelLevels; ++level) {
    const int shift = kWheelShift[level];
    const uint32_t cur = static_cast<uint32_t>(now_ >> shift) & kWheelSlotMask[level];
    s = NextOccupied(level, cur + 1);
    if (s < 0) {
      continue;
    }
    SimTime bucket_min = kNoPendingEvent;
    for (uint32_t id = Head(level, static_cast<uint32_t>(s)); id != kNilId; id = Rec(id).next) {
      bucket_min = std::min(bucket_min, Rec(id).time);
    }
    return bucket_min;
  }
  // Whole wheel empty: the far-band minimum is the earliest pending event.
  return heap_.empty() ? kNoPendingEvent : heap_.front().time;
}

bool Simulator::Cancel(EventHandle handle) {
  Event* e = Lookup(handle);
  if (e == nullptr) {
#ifdef PERFISO_SIMSAN
    SimSanDiagnoseStale(handle, "Cancel");
#endif
    return false;
  }
  RemoveFromBand(*e);
#ifdef PERFISO_SIMSAN
  SimSanNoteEnded(*e, Event::kEndedCancelled);
#endif
  ++e->gen;  // any copies of the handle go stale (and any batch entry)
  e->cb.Reset();
  e->where = kWhereFree;
  FreeSlot(handle.id_);
  --pending_count_;
  ++stats_.events_cancelled;
  return true;
}

bool Simulator::Reschedule(EventHandle handle, SimTime when) {
  Event* e = Lookup(handle);
  if (e == nullptr) {
#ifdef PERFISO_SIMSAN
    SimSanDiagnoseStale(handle, "Reschedule");
#endif
    return false;
  }
  RemoveFromBand(*e);
  e->time = ClampToNow(when);
  // A fresh seq orders the moved event as a new scheduling decision among
  // same-time events; it also invalidates a batch-resident record's old
  // scratch entry, since the batch validates (gen, seq) at fire time.
  e->seq = next_seq_++;
  Insert(handle.id_, *e);
  return true;
}

// --- Two-band clock advancement and dispatch ---------------------------------

int Simulator::NextOccupied(int level, uint32_t from) const {
  if (level == 0) {
    if (from >= kWheelSlotCount[0]) {
      return -1;
    }
    uint32_t word = from >> 6;
    const uint64_t bits = occ0_[word] & (~0ull << (from & 63));
    if (bits != 0) {
      return static_cast<int>((word << 6) + std::countr_zero(bits));
    }
    const uint64_t summary = occ0_summary_ & MaskFrom(word + 1);
    if (summary == 0) {
      return -1;
    }
    word = static_cast<uint32_t>(std::countr_zero(summary));
    return static_cast<int>((word << 6) + std::countr_zero(occ0_[word]));
  }
  const uint64_t bits = occ_hi_[level - 1] & MaskFrom(from);
  if (bits == 0) {
    return -1;
  }
  return std::countr_zero(bits);
}

void Simulator::Cascade(int level, uint32_t slot) {
  uint32_t id = Head(level, slot);
  if (id == kNilId) {
    return;
  }
  Head(level, slot) = kNilId;
  OccClear(level, slot);
  while (id != kNilId) {
    Event& e = Rec(id);
    const uint32_t next = e.next;  // Insert overwrites the links
    Insert(id, e);
    ++stats_.wheel_cascades;
    id = next;
  }
}

void Simulator::SetClockTo(SimTime t) {
  const SimTime old = now_;
  if (t == old) {
    return;
  }
  assert(t > old && "simulated time must be monotonic");
  now_ = t;
  if ((t >> kWheelHorizonBits) != (old >> kWheelHorizonBits)) {
    // The clock entered a new horizon page: pull the far-band events that now
    // fall inside it. The heap minimum is the earliest pending event overall
    // here (callers only jump the clock when every structure position behind
    // the target is empty), so no overflow resident can predate t's page.
    while (!heap_.empty() &&
           (heap_.front().time >> kWheelHorizonBits) == (t >> kWheelHorizonBits)) {
      const uint32_t id = heap_.front().id;
      HeapRemoveAt(0);
      Event& e = Rec(id);
      e.heap_pos = -1;
      Insert(id, e);
      ++stats_.overflow_pulls;
    }
  }
  // Cascade the one bucket per level that just became the current page.
  // Buckets between the old and new cursor would hold events earlier than t,
  // which the caller guarantees do not exist — they are provably empty.
  // Top-down so a level-2 bucket can redistribute through level 1.
  for (int level = kWheelLevels - 1; level >= 1; --level) {
    const int shift = kWheelShift[level];
    if ((t >> shift) != (old >> shift)) {
      Cascade(level, static_cast<uint32_t>(t >> shift) & kWheelSlotMask[level]);
    }
  }
}

void Simulator::DrainSlot(uint32_t slot) {
  assert(batch_pos_ == batch_.size() && "draining over an unconsumed batch");
  uint32_t id = Head(0, slot);
  Head(0, slot) = kNilId;
  OccClear(0, slot);
  batch_.clear();
  batch_pos_ = 0;
  while (id != kNilId) {
    Event& e = Rec(id);
    assert(e.time == now_ && "level-0 slot holds a record of another timestamp");
    e.where = kWhereBatch;
    batch_.push_back(BatchItem{e.seq, id, e.gen});
    id = e.next;
  }
  // One level-0 slot == one timestamp, so sorting by seq alone recovers the
  // exact (time, seq) total order the heap engine produced.
  if (batch_.size() > 1) {
    std::sort(batch_.begin(), batch_.end(),
              [](const BatchItem& a, const BatchItem& b) { return a.seq < b.seq; });
  }
  ++stats_.batch_drains;
}

bool Simulator::DrainNextSlot(SimTime cap) {
  for (;;) {
    // Level 0 first: the next occupied slot at or after the cursor holds the
    // earliest pending timestamp (everything behind the cursor already fired,
    // and higher bands only hold later times).
    const uint32_t cur0 = static_cast<uint32_t>(now_) & kWheelSlotMask[0];
    int s = NextOccupied(0, cur0);
    if (s >= 0) {
      const SimTime slot_time = (now_ & ~static_cast<SimTime>(kWheelSlotMask[0])) | s;
      if (slot_time > cap) {
        return false;
      }
      now_ = slot_time;  // same level-0 page: no cascade work
      DrainSlot(static_cast<uint32_t>(s));
      return true;
    }
    // Higher levels: jump to the base of the next occupied bucket and cascade
    // it down, then rescan. The bucket at the cursor itself is impossible —
    // its records' lower-level page would match the clock's, so they would
    // live in a lower level — hence cur + 1.
    bool advanced = false;
    for (int level = 1; level < kWheelLevels; ++level) {
      const int shift = kWheelShift[level];
      const uint32_t cur = static_cast<uint32_t>(now_ >> shift) & kWheelSlotMask[level];
      s = NextOccupied(level, cur + 1);
      if (s >= 0) {
        const SimTime page_mask = (static_cast<SimTime>(1) << kWheelShift[level + 1]) - 1;
        const SimTime base = (now_ & ~page_mask) | (static_cast<SimTime>(s) << shift);
        if (base > cap) {
          return false;  // every band below is empty, so nothing is due by cap
        }
        SetClockTo(base);
        advanced = true;
        break;
      }
    }
    if (advanced) {
      continue;
    }
    // Whole wheel empty: jump to the horizon page of the far-band minimum.
    if (heap_.empty()) {
      return false;
    }
    const SimTime horizon_mask = (static_cast<SimTime>(1) << kWheelHorizonBits) - 1;
    const SimTime base = heap_.front().time & ~horizon_mask;
    if (base > cap) {
      return false;
    }
    SetClockTo(base);
  }
}

void Simulator::Fire(uint32_t id, Event& e) {
  assert(e.time == now_ && "firing a record away from its timestamp");
  e.where = kWhereFiring;
#ifdef PERFISO_SIMSAN
  SimSanNoteEnded(e, Event::kEndedFired);
#endif
  ++e.gen;  // the handle is stale from the moment the callback runs
  --pending_count_;
  ++stats_.events_executed;
  // The record's slab address is stable, so the callback may freely schedule
  // (growing the pool) or cancel other events while it runs. Its own slot is
  // recycled only after the callback finishes and is destroyed.
#ifdef PERFISO_SIMSAN
  simsan_in_callback_ = true;
#endif
  e.cb.Invoke();
#ifdef PERFISO_SIMSAN
  simsan_in_callback_ = false;
#endif
  e.cb.Reset();
  e.where = kWhereFree;
  FreeSlot(id);
#ifdef PERFISO_SIMSAN
  if (stats_.events_executed % kSimSanSweepInterval == 0) {
    CheckEngineInvariants();
  }
#endif
}

bool Simulator::Step() {
  for (;;) {
    while (batch_pos_ < batch_.size()) {
      const BatchItem item = batch_[batch_pos_++];
      Event& e = Rec(item.id);
      if (e.where != kWhereBatch || e.gen != item.gen || e.seq != item.seq) {
        continue;  // cancelled or rescheduled after the drain
      }
      Fire(item.id, e);
      return true;
    }
    if (!DrainNextSlot(std::numeric_limits<SimTime>::max())) {
      return false;
    }
  }
}

void Simulator::RunUntil(SimTime until) {
  while (now_ <= until) {
    bool fired = false;
    while (batch_pos_ < batch_.size()) {
      const BatchItem item = batch_[batch_pos_++];
      Event& e = Rec(item.id);
      if (e.where != kWhereBatch || e.gen != item.gen || e.seq != item.seq) {
        continue;
      }
      Fire(item.id, e);
      fired = true;
      break;
    }
    if (fired) {
      continue;
    }
    if (!DrainNextSlot(until)) {
      break;
    }
  }
  if (now_ < until) {
    SetClockTo(until);
  }
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

void Simulator::CheckEngineInvariants() const {
  const size_t capacity = slabs_.size() * kSlabSize;

  // Near band: bucket-list/bitmap consistency and placement against the clock.
  for (uint32_t word = 0; word < kWheelSlotCount[0] / 64; ++word) {
    const bool summarized = ((occ0_summary_ >> word) & 1) != 0;
    if (summarized != (occ0_[word] != 0)) {
      EngineDie("wheel-bitmap-summary", "level-0 summary bit " + std::to_string(word) +
                                            " disagrees with its occupancy word");
    }
  }
  size_t wheel_count = 0;
  for (int level = 0; level < kWheelLevels; ++level) {
    const int shift = kWheelShift[level];
    const int page_shift = kWheelShift[level + 1];
    const uint32_t cur = static_cast<uint32_t>(now_ >> shift) & kWheelSlotMask[level];
    for (uint32_t slot = 0; slot < kWheelSlotCount[level]; ++slot) {
      const uint32_t head = Head(level, slot);
      const bool occupied = OccTest(level, slot);
      if (occupied != (head != kNilId)) {
        EngineDie("wheel-bitmap", "level " + std::to_string(level) + " slot " +
                                      std::to_string(slot) +
                                      " occupancy bit disagrees with its bucket list");
      }
      uint32_t prev = kNilId;
      for (uint32_t id = head; id != kNilId;) {
        if (id >= capacity) {
          EngineDie("wheel-list-range", "bucket list id " + std::to_string(id) + " out of range");
        }
        const Event& e = Rec(id);
        const std::string who = "record " + std::to_string(id) + " at level " +
                                std::to_string(level) + " slot " + std::to_string(slot);
        if (e.where != kWhereWheel || e.level != level || e.slot != slot) {
          EngineDie("wheel-band-tag", who + " carries a band tag for another home");
        }
        if (e.prev != prev) {
          EngineDie("wheel-backlink", who + " back-link broken");
        }
        if (!e.cb.armed()) {
          EngineDie("unarmed-pending-event", who + " is queued without a callback");
        }
        if (e.time < now_) {
          EngineDie("time-travel", who + " is queued at t=" + std::to_string(e.time) +
                                       " < Now()=" + std::to_string(now_));
        }
        if ((e.time >> page_shift) != (now_ >> page_shift) ||
            (static_cast<uint32_t>(e.time >> shift) & kWheelSlotMask[level]) != slot) {
          EngineDie("wheel-placement", who + " sits in the wrong page or slot for t=" +
                                           std::to_string(e.time));
        }
        if (level > 0 && slot <= cur) {
          // Its level-(L-1) page would match the clock's, so it belongs below.
          EngineDie("wheel-placement", who + " sits at or behind the level cursor");
        }
        ++wheel_count;
        prev = id;
        id = e.next;
      }
    }
  }

  // Far band: heap property, record back-pointers, and horizon placement.
  for (size_t pos = 0; pos < heap_.size(); ++pos) {
    const HeapItem& item = heap_[pos];
    if (pos > 0 && Before(item, heap_[(pos - 1) >> 2])) {
      EngineDie("heap-property", "heap position " + std::to_string(pos) +
                                     " orders before its parent");
    }
    const Event& e = Rec(item.id);
    if (e.where != kWhereOverflow || e.heap_pos != static_cast<int32_t>(pos)) {
      EngineDie("heap-backpointer", "record " + std::to_string(item.id) + " heap_pos " +
                                        std::to_string(e.heap_pos) + " != position " +
                                        std::to_string(pos));
    }
    if (e.time != item.time || e.seq != item.seq) {
      EngineDie("heap-key-mismatch",
                "record " + std::to_string(item.id) + " (time, seq) disagrees with its heap item");
    }
    if (!e.cb.armed()) {
      EngineDie("unarmed-pending-event",
                "record " + std::to_string(item.id) + " is queued without a callback");
    }
    if ((e.time >> kWheelHorizonBits) == (now_ >> kWheelHorizonBits)) {
      EngineDie("overflow-inside-horizon", "record " + std::to_string(item.id) + " at t=" +
                                               std::to_string(e.time) +
                                               " belongs in the wheel, not the far band");
    }
  }

  // Dispatch batch: unconsumed valid entries are pending records at Now().
  // Invalidated entries (cancel/reschedule after the drain) are skipped here
  // exactly as the fire loop skips them.
  size_t batch_valid = 0;
  for (size_t pos = batch_pos_; pos < batch_.size(); ++pos) {
    const BatchItem& item = batch_[pos];
    if (item.id >= capacity) {
      EngineDie("batch-range", "batch entry id " + std::to_string(item.id) + " out of range");
    }
    const Event& e = Rec(item.id);
    if (e.where != kWhereBatch || e.gen != item.gen || e.seq != item.seq) {
      continue;
    }
    if (e.time != now_) {
      EngineDie("batch-time", "batch record " + std::to_string(item.id) + " at t=" +
                                  std::to_string(e.time) + " != Now()=" + std::to_string(now_));
    }
    if (!e.cb.armed()) {
      EngineDie("unarmed-pending-event",
                "batch record " + std::to_string(item.id) + " is queued without a callback");
    }
    ++batch_valid;
  }

  // Free-list consistency and slot conservation.
  for (const uint32_t id : free_ids_) {
    if (id >= capacity) {
      EngineDie("free-list-range", "free id " + std::to_string(id) + " out of range");
    }
    const Event& e = Rec(id);
    if (e.where != kWhereFree) {
      EngineDie("free-while-queued", "free slot " + std::to_string(id) + " is still queued");
    }
#ifdef PERFISO_SIMSAN
    if (!e.simsan_in_free_list) {
      EngineDie("free-list-flag", "slot " + std::to_string(id) +
                                      " is on the free list but not flagged as free");
    }
    if (!e.cb.SimSanPoisonIntact()) {
      EngineDie("use-after-recycle", "freed event record " + std::to_string(id) +
                                         " was written while on the free list");
    }
#endif
  }
  size_t executing = 0;
#ifdef PERFISO_SIMSAN
  executing = simsan_in_callback_ ? 1 : 0;
#endif
  const size_t pending = wheel_count + heap_.size() + batch_valid;
  if (pending + free_ids_.size() + executing != capacity) {
    EngineDie("slot-conservation", "pending " + std::to_string(pending) + " + free " +
                                       std::to_string(free_ids_.size()) + " + executing " +
                                       std::to_string(executing) + " != capacity " +
                                       std::to_string(capacity));
  }
  if (pending_count_ != pending) {
    EngineDie("pending-count", "cached pending count " + std::to_string(pending_count_) +
                                   " != structural count " + std::to_string(pending));
  }
}

// --- 4-ary overflow heap -----------------------------------------------------

void Simulator::Place(size_t pos, const HeapItem& item) {
  heap_[pos] = item;
  Rec(item.id).heap_pos = static_cast<int32_t>(pos);
}

void Simulator::SiftUp(size_t pos) {
  const HeapItem item = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) >> 2;
    if (!Before(item, heap_[parent])) {
      break;
    }
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, item);
}

void Simulator::SiftDown(size_t pos) {
  const HeapItem item = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first = 4 * pos + 1;
    if (first >= n) {
      break;
    }
    size_t best = first;
    const size_t last = std::min(first + 4, n);
    for (size_t child = first + 1; child < last; ++child) {
      if (Before(heap_[child], heap_[best])) {
        best = child;
      }
    }
    if (!Before(heap_[best], item)) {
      break;
    }
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, item);
}

void Simulator::HeapPush(uint32_t id, SimTime time, uint64_t seq) {
  heap_.push_back(HeapItem{time, seq, id});
  Rec(id).heap_pos = static_cast<int32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

void Simulator::HeapRemoveAt(size_t pos) {
  assert(pos < heap_.size());
  const size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const HeapItem moved = heap_[last];
  heap_.pop_back();
  Place(pos, moved);
  SiftDown(pos);
  if (heap_[pos].id == moved.id) {
    SiftUp(pos);  // did not move down; may need to move up
  }
}

// --- PeriodicTask ------------------------------------------------------------

PeriodicTask::PeriodicTask(Simulator* sim, SimTime start, SimDuration period, TickFn on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  assert(period > 0);
  Arm(start);
}

void PeriodicTask::Cancel() {
  if (cancelled_) {
    // Idempotent: the destructor calls Cancel() too, and by then the armed
    // event's slot may have been recycled — touching it again would be the
    // exact stale-handle bug SimSan exists to catch.
    return;
  }
  cancelled_ = true;
  sim_->CancelOwned(event_);  // no-op when called from inside the tick (already fired)
}

void PeriodicTask::Arm(SimTime when) {
  event_ = sim_->Schedule(when, [this] {
    on_tick_(sim_->Now());
    if (!cancelled_) {  // the tick may have cancelled us
      Arm(sim_->Now() + period_);
    }
  });
}

}  // namespace perfiso
