#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace perfiso {

void Simulator::Schedule(SimTime when, EventFn fn) {
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move the callback out before popping so it can schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(event.time >= now_);
  now_ = event.time;
  ++events_executed_;
  event.fn();
  return true;
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator* sim, SimTime start, SimDuration period, TickFn on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)),
      alive_(std::make_shared<bool>(true)) {
  assert(period > 0);
  Arm(start);
}

void PeriodicTask::Cancel() { *alive_ = false; }

void PeriodicTask::Arm(SimTime when) {
  std::shared_ptr<bool> alive = alive_;
  sim_->Schedule(when, [this, alive] {
    if (!*alive) {
      return;
    }
    on_tick_(sim_->Now());
    if (*alive) {  // the tick may have cancelled us
      Arm(sim_->Now() + period_);
    }
  });
}

}  // namespace perfiso
