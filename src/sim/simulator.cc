#include "src/sim/simulator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/logging.h"

namespace perfiso {

namespace {

// Engine-validation failures abort: a violated invariant means the simulation
// state is already unreliable, and the determinism contract makes limping on
// worse than dying loudly. The "SimSan:" prefix is what the death tests match.
[[noreturn]] void EngineDie(const char* what, const std::string& detail) {
  std::fprintf(stderr, "SimSan: %s: %s\n", what, detail.c_str());
  std::abort();
}

#ifdef PERFISO_SIMSAN
constexpr unsigned char kSimSanPoisonByte = 0xA5;
#endif

}  // namespace

#ifdef PERFISO_SIMSAN
void EventCallback::SimSanPoison() {
  assert(invoke_ == nullptr);
  std::memset(inline_buf_, kSimSanPoisonByte, kInlineBytes);
}

bool EventCallback::SimSanPoisonIntact() const {
  if (invoke_ != nullptr || destroy_ != nullptr || heap_ != nullptr) {
    return false;
  }
  for (unsigned char byte : inline_buf_) {
    if (byte != kSimSanPoisonByte) {
      return false;
    }
  }
  return true;
}
#endif

Simulator::Simulator() {
  // Stamp log messages from this thread with this simulator's virtual time
  // for as long as it lives; the displaced clock (an outer simulator's, or
  // none) comes back on destruction.
  const SimClockRegistration previous = SetThreadSimClock(
      [](const void* ctx) {
        return static_cast<uint64_t>(static_cast<const Simulator*>(ctx)->Now());
      },
      this);
  prev_log_clock_fn_ = previous.fn;
  prev_log_clock_ctx_ = previous.ctx;
}

Simulator::~Simulator() {
  ClearThreadSimClock(SimClockRegistration{prev_log_clock_fn_, prev_log_clock_ctx_});
}

SimTime Simulator::ClampToNow(SimTime when) {
  if (when >= now_) {
    return when;
  }
  ++stats_.clamped_schedules;
#ifndef NDEBUG
  PERFISO_LOG(kDebug) << "Schedule at t=" << when << " is " << (now_ - when)
                      << " ns in the past; clamped to Now()=" << now_;
#endif
  return now_;
}

uint32_t Simulator::AllocSlot() {
  if (free_ids_.empty()) {
    const auto base = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
    slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
    ++stats_.slab_allocs;
    free_ids_.reserve(kSlabSize);
    // Push in descending order so slots hand out in ascending id order.
    for (uint32_t i = kSlabSize; i > 0; --i) {
      free_ids_.push_back(base + i - 1);
#ifdef PERFISO_SIMSAN
      Event& fresh = Rec(base + i - 1);
      fresh.cb.SimSanPoison();
      fresh.simsan_in_free_list = true;
#endif
    }
  }
  const uint32_t id = free_ids_.back();
  free_ids_.pop_back();
#ifdef PERFISO_SIMSAN
  Event& e = Rec(id);
  if (!e.cb.SimSanPoisonIntact()) {
    EngineDie("use-after-recycle",
              "freed event record " + std::to_string(id) +
                  " was written while on the free list (stale reference scribble)");
  }
  e.simsan_in_free_list = false;
#endif
  return id;
}

void Simulator::FreeSlot(uint32_t id) {
#ifdef PERFISO_SIMSAN
  Event& e = Rec(id);
  if (e.simsan_in_free_list) {
    EngineDie("double-free", "event slot " + std::to_string(id) + " freed twice");
  }
  e.cb.SimSanPoison();
  e.simsan_in_free_list = true;
#endif
  free_ids_.push_back(id);
}

#ifdef PERFISO_SIMSAN
void Simulator::SimSanNoteEnded(Event& e, uint8_t how) {
  e.simsan_ended_gen = e.gen;  // the generation outstanding handles carry
  e.simsan_ended_how = how;
}

void Simulator::SimSanDiagnoseStale(EventHandle handle, const char* op) const {
  if (handle.id_ == EventHandle::kInvalidId) {
    return;  // default-constructed handles are inert by design
  }
  const uint32_t capacity = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
  if (handle.id_ >= capacity) {
    EngineDie(op, "EventHandle id " + std::to_string(handle.id_) +
                      " is out of range (handle from another Simulator, or corrupt)");
  }
  const Event& e = Rec(handle.id_);
  const std::string where = "slot " + std::to_string(handle.id_) + " handle-gen " +
                            std::to_string(handle.gen_) + " slot-gen " + std::to_string(e.gen) +
                            " at t=" + std::to_string(now_);
  if (e.heap_pos >= 0) {
    // The slot is armed again under a different generation: the caller's
    // event is long gone and this handle now aliases someone else's event.
    // Without generation counters this would cancel a stranger's event.
    EngineDie("stale-handle-after-recycle",
              std::string(op) + " through a handle whose slot was recycled and re-armed (" +
                  where + "); the owner must clear its handle when the event fires "
                  "(use Simulator::CancelOwned / reset stored handles)");
  }
  if (e.gen - handle.gen_ > 1) {
    EngineDie("stale-handle-after-recycle",
              std::string(op) + " through a handle whose slot was recycled (" + where + ")");
  }
  // e.gen == handle.gen_ + 1: the handle's own event ended exactly once since
  // the handle was minted. Fired is the documented benign-stale case;
  // cancelled means the caller is cancelling (or moving) the same event twice.
  if (e.simsan_ended_how == Event::kEndedCancelled) {
    EngineDie("double-cancel", std::string(op) + " through a handle that was already "
                                   "cancelled (" + where + ")");
  }
}
#endif

Simulator::Event* Simulator::Lookup(EventHandle handle) {
  return const_cast<Event*>(std::as_const(*this).Lookup(handle));
}

const Simulator::Event* Simulator::Lookup(EventHandle handle) const {
  if (handle.id_ >= (static_cast<uint32_t>(slabs_.size()) << kSlabBits)) {
    return nullptr;
  }
  const Event& e = Rec(handle.id_);
  if (e.gen != handle.gen_ || e.heap_pos < 0) {
    return nullptr;
  }
  return &e;
}

bool Simulator::Pending(EventHandle handle) const { return Lookup(handle) != nullptr; }

bool Simulator::Cancel(EventHandle handle) {
  Event* e = Lookup(handle);
  if (e == nullptr) {
#ifdef PERFISO_SIMSAN
    SimSanDiagnoseStale(handle, "Cancel");
#endif
    return false;
  }
  HeapRemoveAt(static_cast<size_t>(e->heap_pos));
  e->heap_pos = -1;
#ifdef PERFISO_SIMSAN
  SimSanNoteEnded(*e, Event::kEndedCancelled);
#endif
  ++e->gen;  // any copies of the handle go stale
  e->cb.Reset();
  FreeSlot(handle.id_);
  ++stats_.events_cancelled;
  return true;
}

bool Simulator::Reschedule(EventHandle handle, SimTime when) {
  Event* e = Lookup(handle);
  if (e == nullptr) {
#ifdef PERFISO_SIMSAN
    SimSanDiagnoseStale(handle, "Reschedule");
#endif
    return false;
  }
  HeapRemoveAt(static_cast<size_t>(e->heap_pos));
  e->time = ClampToNow(when);
  e->seq = next_seq_++;
  HeapPush(handle.id_, e->time, e->seq);
  return true;
}

bool Simulator::Step() {
  if (heap_.empty()) {
    return false;
  }
  const uint32_t id = heap_.front().id;
  Event& e = Rec(id);
  assert(e.time >= now_);
  now_ = e.time;
  HeapRemoveAt(0);
  e.heap_pos = -1;
#ifdef PERFISO_SIMSAN
  SimSanNoteEnded(e, Event::kEndedFired);
#endif
  ++e.gen;  // the handle is stale from the moment the callback runs
  ++stats_.events_executed;
  // The record's slab address is stable, so the callback may freely schedule
  // (growing the pool) or cancel other events while it runs. Its own slot is
  // recycled only after the callback finishes and is destroyed.
#ifdef PERFISO_SIMSAN
  simsan_in_callback_ = true;
#endif
  e.cb.Invoke();
#ifdef PERFISO_SIMSAN
  simsan_in_callback_ = false;
#endif
  e.cb.Reset();
  FreeSlot(id);
#ifdef PERFISO_SIMSAN
  if (stats_.events_executed % kSimSanSweepInterval == 0) {
    CheckEngineInvariants();
  }
#endif
  return true;
}

void Simulator::CheckEngineInvariants() const {
  // Heap property and record back-pointers.
  for (size_t pos = 0; pos < heap_.size(); ++pos) {
    const HeapItem& item = heap_[pos];
    if (pos > 0 && Before(item, heap_[(pos - 1) >> 2])) {
      EngineDie("heap-property", "heap position " + std::to_string(pos) +
                                     " orders before its parent");
    }
    const Event& e = Rec(item.id);
    if (e.heap_pos != static_cast<int32_t>(pos)) {
      EngineDie("heap-backpointer", "record " + std::to_string(item.id) + " heap_pos " +
                                        std::to_string(e.heap_pos) + " != position " +
                                        std::to_string(pos));
    }
    if (e.time != item.time || e.seq != item.seq) {
      EngineDie("heap-key-mismatch",
                "record " + std::to_string(item.id) + " (time, seq) disagrees with its heap item");
    }
    if (!e.cb.armed()) {
      EngineDie("unarmed-pending-event",
                "record " + std::to_string(item.id) + " is queued without a callback");
    }
    if (e.time < now_) {
      EngineDie("time-travel", "record " + std::to_string(item.id) + " is queued at t=" +
                                   std::to_string(e.time) + " < Now()=" + std::to_string(now_));
    }
  }
  // Free-list consistency and slot conservation.
  const size_t capacity = slabs_.size() * kSlabSize;
  for (const uint32_t id : free_ids_) {
    if (id >= capacity) {
      EngineDie("free-list-range", "free id " + std::to_string(id) + " out of range");
    }
    const Event& e = Rec(id);
    if (e.heap_pos >= 0) {
      EngineDie("free-while-queued", "free slot " + std::to_string(id) + " is still queued");
    }
#ifdef PERFISO_SIMSAN
    if (!e.simsan_in_free_list) {
      EngineDie("free-list-flag", "slot " + std::to_string(id) +
                                      " is on the free list but not flagged as free");
    }
    if (!e.cb.SimSanPoisonIntact()) {
      EngineDie("use-after-recycle", "freed event record " + std::to_string(id) +
                                         " was written while on the free list");
    }
#endif
  }
  size_t executing = 0;
#ifdef PERFISO_SIMSAN
  executing = simsan_in_callback_ ? 1 : 0;
#endif
  if (heap_.size() + free_ids_.size() + executing != capacity) {
    EngineDie("slot-conservation", "pending " + std::to_string(heap_.size()) + " + free " +
                                       std::to_string(free_ids_.size()) + " + executing " +
                                       std::to_string(executing) + " != capacity " +
                                       std::to_string(capacity));
  }
}

void Simulator::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.front().time <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

// --- 4-ary heap --------------------------------------------------------------

void Simulator::Place(size_t pos, const HeapItem& item) {
  heap_[pos] = item;
  Rec(item.id).heap_pos = static_cast<int32_t>(pos);
}

void Simulator::SiftUp(size_t pos) {
  const HeapItem item = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) >> 2;
    if (!Before(item, heap_[parent])) {
      break;
    }
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, item);
}

void Simulator::SiftDown(size_t pos) {
  const HeapItem item = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first = 4 * pos + 1;
    if (first >= n) {
      break;
    }
    size_t best = first;
    const size_t last = std::min(first + 4, n);
    for (size_t child = first + 1; child < last; ++child) {
      if (Before(heap_[child], heap_[best])) {
        best = child;
      }
    }
    if (!Before(heap_[best], item)) {
      break;
    }
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, item);
}

void Simulator::HeapPush(uint32_t id, SimTime time, uint64_t seq) {
  heap_.push_back(HeapItem{time, seq, id});
  Rec(id).heap_pos = static_cast<int32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

void Simulator::HeapRemoveAt(size_t pos) {
  assert(pos < heap_.size());
  const size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const HeapItem moved = heap_[last];
  heap_.pop_back();
  Place(pos, moved);
  SiftDown(pos);
  if (heap_[pos].id == moved.id) {
    SiftUp(pos);  // did not move down; may need to move up
  }
}

// --- PeriodicTask ------------------------------------------------------------

PeriodicTask::PeriodicTask(Simulator* sim, SimTime start, SimDuration period, TickFn on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  assert(period > 0);
  Arm(start);
}

void PeriodicTask::Cancel() {
  if (cancelled_) {
    // Idempotent: the destructor calls Cancel() too, and by then the armed
    // event's slot may have been recycled — touching it again would be the
    // exact stale-handle bug SimSan exists to catch.
    return;
  }
  cancelled_ = true;
  sim_->CancelOwned(event_);  // no-op when called from inside the tick (already fired)
}

void PeriodicTask::Arm(SimTime when) {
  event_ = sim_->Schedule(when, [this] {
    on_tick_(sim_->Now());
    if (!cancelled_) {  // the tick may have cancelled us
      Arm(sim_->Now() + period_);
    }
  });
}

}  // namespace perfiso
