#include "src/sim/simulator.h"

#include <algorithm>

#include "src/util/logging.h"

namespace perfiso {

Simulator::~Simulator() = default;

SimTime Simulator::ClampToNow(SimTime when) {
  if (when >= now_) {
    return when;
  }
  ++stats_.clamped_schedules;
#ifndef NDEBUG
  PERFISO_LOG(kDebug) << "Schedule at t=" << when << " is " << (now_ - when)
                      << " ns in the past; clamped to Now()=" << now_;
#endif
  return now_;
}

uint32_t Simulator::AllocSlot() {
  if (free_ids_.empty()) {
    const auto base = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
    slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
    ++stats_.slab_allocs;
    free_ids_.reserve(kSlabSize);
    // Push in descending order so slots hand out in ascending id order.
    for (uint32_t i = kSlabSize; i > 0; --i) {
      free_ids_.push_back(base + i - 1);
    }
  }
  const uint32_t id = free_ids_.back();
  free_ids_.pop_back();
  return id;
}

void Simulator::FreeSlot(uint32_t id) { free_ids_.push_back(id); }

Simulator::Event* Simulator::Lookup(EventHandle handle) {
  return const_cast<Event*>(std::as_const(*this).Lookup(handle));
}

const Simulator::Event* Simulator::Lookup(EventHandle handle) const {
  if (handle.id_ >= (static_cast<uint32_t>(slabs_.size()) << kSlabBits)) {
    return nullptr;
  }
  const Event& e = Rec(handle.id_);
  if (e.gen != handle.gen_ || e.heap_pos < 0) {
    return nullptr;
  }
  return &e;
}

bool Simulator::Pending(EventHandle handle) const { return Lookup(handle) != nullptr; }

bool Simulator::Cancel(EventHandle handle) {
  Event* e = Lookup(handle);
  if (e == nullptr) {
    return false;
  }
  HeapRemoveAt(static_cast<size_t>(e->heap_pos));
  e->heap_pos = -1;
  ++e->gen;  // any copies of the handle go stale
  e->cb.Reset();
  FreeSlot(handle.id_);
  ++stats_.events_cancelled;
  return true;
}

bool Simulator::Reschedule(EventHandle handle, SimTime when) {
  Event* e = Lookup(handle);
  if (e == nullptr) {
    return false;
  }
  HeapRemoveAt(static_cast<size_t>(e->heap_pos));
  e->time = ClampToNow(when);
  e->seq = next_seq_++;
  HeapPush(handle.id_, e->time, e->seq);
  return true;
}

bool Simulator::Step() {
  if (heap_.empty()) {
    return false;
  }
  const uint32_t id = heap_.front().id;
  Event& e = Rec(id);
  assert(e.time >= now_);
  now_ = e.time;
  HeapRemoveAt(0);
  e.heap_pos = -1;
  ++e.gen;  // the handle is stale from the moment the callback runs
  ++stats_.events_executed;
  // The record's slab address is stable, so the callback may freely schedule
  // (growing the pool) or cancel other events while it runs. Its own slot is
  // recycled only after the callback finishes and is destroyed.
  e.cb.Invoke();
  e.cb.Reset();
  FreeSlot(id);
  return true;
}

void Simulator::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.front().time <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void Simulator::RunUntilEmpty() {
  while (Step()) {
  }
}

// --- 4-ary heap --------------------------------------------------------------

void Simulator::Place(size_t pos, const HeapItem& item) {
  heap_[pos] = item;
  Rec(item.id).heap_pos = static_cast<int32_t>(pos);
}

void Simulator::SiftUp(size_t pos) {
  const HeapItem item = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) >> 2;
    if (!Before(item, heap_[parent])) {
      break;
    }
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, item);
}

void Simulator::SiftDown(size_t pos) {
  const HeapItem item = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first = 4 * pos + 1;
    if (first >= n) {
      break;
    }
    size_t best = first;
    const size_t last = std::min(first + 4, n);
    for (size_t child = first + 1; child < last; ++child) {
      if (Before(heap_[child], heap_[best])) {
        best = child;
      }
    }
    if (!Before(heap_[best], item)) {
      break;
    }
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, item);
}

void Simulator::HeapPush(uint32_t id, SimTime time, uint64_t seq) {
  heap_.push_back(HeapItem{time, seq, id});
  Rec(id).heap_pos = static_cast<int32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

void Simulator::HeapRemoveAt(size_t pos) {
  assert(pos < heap_.size());
  const size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const HeapItem moved = heap_[last];
  heap_.pop_back();
  Place(pos, moved);
  SiftDown(pos);
  if (heap_[pos].id == moved.id) {
    SiftUp(pos);  // did not move down; may need to move up
  }
}

// --- PeriodicTask ------------------------------------------------------------

PeriodicTask::PeriodicTask(Simulator* sim, SimTime start, SimDuration period, TickFn on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  assert(period > 0);
  Arm(start);
}

void PeriodicTask::Cancel() {
  cancelled_ = true;
  sim_->Cancel(event_);  // no-op when called from inside the tick (already fired)
}

void PeriodicTask::Arm(SimTime when) {
  event_ = sim_->Schedule(when, [this] {
    on_tick_(sim_->Now());
    if (!cancelled_) {  // the tick may have cancelled us
      Arm(sim_->Now() + period_);
    }
  });
}

}  // namespace perfiso
