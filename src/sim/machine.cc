#include "src/sim/machine.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace perfiso {

namespace {
// Window for the "threads ready per 5 us" burstiness metric (§1).
constexpr SimDuration kBurstWindow = 5 * kMicrosecond;
}  // namespace

const char* TenantClassName(TenantClass tenant) {
  switch (tenant) {
    case TenantClass::kPrimary:
      return "primary";
    case TenantClass::kSecondary:
      return "secondary";
    case TenantClass::kOs:
      return "os";
  }
  return "?";
}

SimMachine::SimMachine(Simulator* sim, const MachineSpec& spec, std::string name)
    : sim_(sim), spec_(spec), name_(std::move(name)) {
  assert(spec_.num_cores > 0 && spec_.num_cores <= CpuSet::kMaxCpus);
  assert(spec_.quantum > 0 && spec_.throttle_interval > 0);
  all_cores_ = CpuSet::FirstN(spec_.num_cores);
  cores_.resize(static_cast<size_t>(spec_.num_cores));
  idle_mask_ = all_cores_;
  threads_.reserve(256);
}

// --- Job objects -------------------------------------------------------------

JobId SimMachine::CreateJob(const std::string& job_name) {
  Job job;
  job.name = job_name;
  job.live = true;
  job.affinity = all_cores_;
  jobs_.push_back(std::move(job));
  return JobId{static_cast<int>(jobs_.size()) - 1};
}

Status SimMachine::SetJobAffinity(JobId job_id, const CpuSet& mask) {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  Job& job = jobs_[static_cast<size_t>(job_id.value)];
  if (!job.live) {
    return FailedPreconditionError("job is dead: " + job.name);
  }
  const CpuSet effective = mask & all_cores_;
  if (effective.Empty()) {
    return InvalidArgumentError("job affinity mask has no valid cores");
  }
  if (effective == job.affinity) {
    return OkStatus();
  }
  job.affinity = effective;

  // Preempt running threads that are now on disallowed cores, and pull queued
  // threads off disallowed cores' queues; both get re-placed afterwards.
  std::vector<int> displaced;
  std::vector<int> freed_cores;
  for (int tid : job.threads) {
    Thread& t = threads_[static_cast<size_t>(tid)];
    const CpuSet eff = EffectiveAffinity(t);
    if (t.state == Thread::State::kRunning && !eff.Test(t.core)) {
      ChargeRun(t);
      sim_->CancelOwned(t.slice_event);
      ++metrics_.preemptions;
      NoteStopRunning(t);
      cores_[static_cast<size_t>(t.core)].running = -1;
      freed_cores.push_back(t.core);
      t.state = Thread::State::kReady;
      t.core = -1;
      displaced.push_back(tid);
    } else if (t.state == Thread::State::kReady && t.queued && !eff.Test(t.core)) {
      RemoveFromQueue(t, tid);
      displaced.push_back(tid);
    }
  }
  for (int core : freed_cores) {
    idle_mask_.Set(core);
  }
  for (int tid : displaced) {
    MakeReady(tid);
  }
  for (int core : freed_cores) {
    if (cores_[static_cast<size_t>(core)].running < 0) {
      DispatchNext(core);
    }
  }
  // If the mask grew, idle cores inside it may now be able to serve queued
  // threads of this job (via stealing in DispatchNext).
  KickIdleCores(effective);
  return OkStatus();
}

StatusOr<CpuSet> SimMachine::JobAffinity(JobId job_id) const {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  return jobs_[static_cast<size_t>(job_id.value)].affinity;
}

Status SimMachine::SetJobCpuRateCap(JobId job_id, double fraction) {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  if (fraction > 1.0) {
    return InvalidArgumentError("rate cap must be <= 1.0");
  }
  Job& job = jobs_[static_cast<size_t>(job_id.value)];
  job.rate_cap = fraction;
  if (fraction <= 0) {
    sim_->CancelOwned(job.exhaust_event);  // uncapped: a pending budget check is moot
    if (job.throttled) {
      UnthrottleJob(job_id.value);
    }
  } else {
    // Threads may already be running (dispatched uncapped); arm the budget
    // check now so the cap takes effect within this accounting interval.
    ScheduleExhaustCheck(job_id.value);
  }
  return OkStatus();
}

Status SimMachine::KillJob(JobId job_id) {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  Job& job = jobs_[static_cast<size_t>(job_id.value)];
  const std::vector<int> victims = job.threads;  // KillThread mutates the list
  for (int tid : victims) {
    (void)KillThread(ThreadId{tid});
  }
  used_memory_bytes_ -= job.memory_bytes;
  job.memory_bytes = 0;
  job.live = false;
  sim_->CancelOwned(job.exhaust_event);
  sim_->CancelOwned(job.unthrottle_event);
  return OkStatus();
}

StatusOr<SimDuration> SimMachine::JobCpuTime(JobId job_id) const {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  // Include the in-flight portion of currently-running slices so progress
  // reads are exact at any instant.
  const Job& job = jobs_[static_cast<size_t>(job_id.value)];
  SimDuration total = job.cpu_time;
  for (int tid : job.threads) {
    const Thread& t = threads_[static_cast<size_t>(tid)];
    if (t.state == Thread::State::kRunning) {
      const SimDuration elapsed = sim_->Now() - t.slice_start;
      total += std::max<SimDuration>(0, elapsed - t.slice_overhead);
    }
  }
  return total;
}

StatusOr<int> SimMachine::JobLiveThreads(JobId job_id) const {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  return static_cast<int>(jobs_[static_cast<size_t>(job_id.value)].threads.size());
}

Status SimMachine::AddJobMemory(JobId job_id, int64_t delta_bytes) {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  Job& job = jobs_[static_cast<size_t>(job_id.value)];
  if (job.memory_bytes + delta_bytes < 0) {
    return InvalidArgumentError("job memory would go negative");
  }
  job.memory_bytes += delta_bytes;
  used_memory_bytes_ += delta_bytes;
  return OkStatus();
}

StatusOr<int64_t> SimMachine::JobMemory(JobId job_id) const {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  return jobs_[static_cast<size_t>(job_id.value)].memory_bytes;
}

int64_t SimMachine::FreeMemoryBytes() const { return spec_.memory_bytes - used_memory_bytes_; }

// --- Threads -----------------------------------------------------------------

int SimMachine::AllocThreadSlot() {
  if (!free_threads_.empty()) {
    const int tid = free_threads_.back();
    free_threads_.pop_back();
    return tid;
  }
  threads_.emplace_back();
  return static_cast<int>(threads_.size()) - 1;
}

ThreadId SimMachine::SpawnThread(const std::string& thread_name, TenantClass tenant, JobId job,
                                 SimDuration work, CompletionFn on_complete,
                                 uint64_t trace_ctx) {
  const int tid = AllocThreadSlot();
  Thread& t = threads_[static_cast<size_t>(tid)];
  t = Thread{};
  t.name = thread_name;
  t.tenant = tenant;
  t.job = job.valid() ? job.value : -1;
  t.state = Thread::State::kReady;
  t.remaining = std::max<SimDuration>(1, work);
  t.loop = false;
  t.affinity = all_cores_;
  t.on_complete = std::move(on_complete);
  t.core = -1;
  t.trace_ctx = trace_ctx;
  if (t.job >= 0) {
    assert(jobs_[static_cast<size_t>(t.job)].live);
    jobs_[static_cast<size_t>(t.job)].threads.push_back(tid);
  }
  ++metrics_.threads_spawned;
  t.ready_since = sim_->Now();
  NoteReadyBurst(sim_->Now());
  MakeReady(tid);
  return ThreadId{tid};
}

ThreadId SimMachine::SpawnLoopThread(const std::string& thread_name, TenantClass tenant,
                                     JobId job) {
  const ThreadId tid = SpawnThread(thread_name, tenant, job, kSecond, nullptr);
  threads_[static_cast<size_t>(tid.value)].loop = true;
  return tid;
}

Status SimMachine::SetThreadAffinity(ThreadId tid, const CpuSet& mask) {
  if (!ThreadLive(tid)) {
    return InvalidArgumentError("no such thread");
  }
  Thread& t = threads_[static_cast<size_t>(tid.value)];
  const CpuSet effective = mask & all_cores_;
  if (effective.Empty()) {
    return InvalidArgumentError("thread affinity mask has no valid cores");
  }
  t.affinity = effective;
  const CpuSet eff = EffectiveAffinity(t);
  if (eff.Empty()) {
    return FailedPreconditionError("thread mask disjoint from job mask");
  }
  if (t.state == Thread::State::kRunning && !eff.Test(t.core)) {
    const int core = t.core;
    ChargeRun(t);
    sim_->CancelOwned(t.slice_event);
    ++metrics_.preemptions;
    NoteStopRunning(t);
    cores_[static_cast<size_t>(core)].running = -1;
    idle_mask_.Set(core);
    t.state = Thread::State::kReady;
    t.core = -1;
    MakeReady(tid.value);
    if (cores_[static_cast<size_t>(core)].running < 0) {
      DispatchNext(core);
    }
  } else if (t.state == Thread::State::kReady && t.queued && !eff.Test(t.core)) {
    RemoveFromQueue(t, tid.value);
    MakeReady(tid.value);
  }
  return OkStatus();
}

Status SimMachine::KillThread(ThreadId tid) {
  if (!ThreadLive(tid)) {
    return InvalidArgumentError("no such thread");
  }
  Thread& t = threads_[static_cast<size_t>(tid.value)];
  int freed_core = -1;
  if (t.state == Thread::State::kRunning) {
    ChargeRun(t);
    NoteStopRunning(t);
    freed_core = t.core;
    cores_[static_cast<size_t>(freed_core)].running = -1;
    idle_mask_.Set(freed_core);
  } else if (t.state == Thread::State::kReady && t.queued) {
    RemoveFromQueue(t, tid.value);
  }
  FinishThread(tid.value, /*run_callback=*/false);
  if (freed_core >= 0 && cores_[static_cast<size_t>(freed_core)].running < 0) {
    DispatchNext(freed_core);
  }
  return OkStatus();
}

bool SimMachine::ThreadLive(ThreadId tid) const {
  if (!tid.valid() || tid.value >= static_cast<int>(threads_.size())) {
    return false;
  }
  const Thread::State state = threads_[static_cast<size_t>(tid.value)].state;
  return state == Thread::State::kReady || state == Thread::State::kRunning;
}

// --- Scheduling core ----------------------------------------------------------

CpuSet SimMachine::EffectiveAffinity(const Thread& t) const {
  if (t.job < 0) {
    return t.affinity;
  }
  return t.affinity & jobs_[static_cast<size_t>(t.job)].affinity;
}

SimDuration SimMachine::RateBudgetLeft(Job& job) const {
  const int64_t idx = sim_->Now() / spec_.throttle_interval;
  if (job.usage_interval != idx) {
    job.usage_interval = idx;
    job.usage = 0;
  }
  const auto budget = static_cast<SimDuration>(
      job.rate_cap * static_cast<double>(spec_.throttle_interval) * spec_.num_cores);
  return budget - job.usage;
}

bool SimMachine::JobDispatchable(const Thread& t) const {
  // Budget exhaustion is handled by the per-job exhaust event (which sets
  // `throttled`), so the gates here are the throttle and suspend flags.
  if (t.job < 0) {
    return true;
  }
  const Job& job = jobs_[static_cast<size_t>(t.job)];
  return !job.throttled && !job.suspended;
}

Status SimMachine::SetJobSuspended(JobId job_id, bool suspended) {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  Job& job = jobs_[static_cast<size_t>(job_id.value)];
  if (!job.live) {
    return FailedPreconditionError("job is dead: " + job.name);
  }
  if (job.suspended == suspended) {
    return OkStatus();
  }
  job.suspended = suspended;
  if (suspended) {
    // Preempt running threads; they stay queued until resume.
    std::vector<int> freed_cores;
    for (int tid : job.threads) {
      Thread& t = threads_[static_cast<size_t>(tid)];
      if (t.state != Thread::State::kRunning) {
        continue;
      }
      ChargeRun(t);
      sim_->CancelOwned(t.slice_event);
      ++metrics_.preemptions;
      NoteStopRunning(t);
      const int core = t.core;
      cores_[static_cast<size_t>(core)].running = -1;
      freed_cores.push_back(core);
      t.state = Thread::State::kReady;
      t.queued = true;
      t.ready_since = sim_->Now();
      cores_[static_cast<size_t>(core)].ready.push_back(tid);
    }
    for (int core : freed_cores) {
      if (cores_[static_cast<size_t>(core)].running < 0) {
        idle_mask_.Set(core);
        DispatchNext(core);
      }
    }
  } else {
    // Re-place ready threads onto idle cores inside the job's mask.
    for (int tid : std::vector<int>(job.threads)) {
      Thread& t = threads_[static_cast<size_t>(tid)];
      if (t.state != Thread::State::kReady || !JobDispatchable(t)) {
        continue;
      }
      const int idle_core = PickIdleCore(EffectiveAffinity(t), -1);
      if (idle_core < 0) {
        continue;
      }
      if (t.queued) {
        RemoveFromQueue(t, tid);
      }
      Dispatch(idle_core, tid, /*context_switch=*/true);
    }
  }
  return OkStatus();
}

StatusOr<bool> SimMachine::JobSuspended(JobId job_id) const {
  if (!job_id.valid() || job_id.value >= static_cast<int>(jobs_.size())) {
    return InvalidArgumentError("no such job");
  }
  return jobs_[static_cast<size_t>(job_id.value)].suspended;
}

SimDuration SimMachine::InflightWork(const Job& job) const {
  SimDuration inflight = 0;
  for (int tid : job.threads) {
    const Thread& t = threads_[static_cast<size_t>(tid)];
    if (t.state == Thread::State::kRunning) {
      const SimDuration elapsed = sim_->Now() - t.slice_start;
      inflight += std::max<SimDuration>(0, elapsed - t.slice_overhead);
    }
  }
  return inflight;
}

void SimMachine::ScheduleExhaustCheck(int job_id) {
  Job& job = jobs_[static_cast<size_t>(job_id)];
  if (!job.live || job.rate_cap <= 0 || job.throttled || job.running_count <= 0) {
    sim_->CancelOwned(job.exhaust_event);  // a pending check (if any) is now moot
    return;
  }
  const SimDuration left = RateBudgetLeft(job) - InflightWork(job);
  if (left < job.running_count) {  // less than 1 ns of budget per running thread
    ThrottleJob(job_id);
    return;
  }
  // A pending check that fires no later is kept (it recomputes); a later one
  // is pulled earlier (consumption sped up).
  const SimTime when = sim_->Now() + left / job.running_count;
  sim_->ScheduleOrTighten(job.exhaust_event, when, [this, job_id] { OnExhaustCheck(job_id); });
}

void SimMachine::OnExhaustCheck(int job_id) {
  // This callback is the exhaust event firing: drop the now-stale handle
  // before recomputing, so it never lingers past the slot's recycle.
  jobs_[static_cast<size_t>(job_id)].exhaust_event = EventHandle();
  ScheduleExhaustCheck(job_id);  // recomputes: throttles now or re-arms later
}

int SimMachine::PickIdleCore(const CpuSet& eff, int preferred) const {
  if (preferred >= 0 && idle_mask_.Test(preferred) && eff.Test(preferred)) {
    return preferred;
  }
  return (idle_mask_ & eff).Lowest();
}

int SimMachine::PickQueueCore(const CpuSet& eff) const {
  int best = -1;
  size_t best_len = 0;
  for (int core = eff.Lowest(); core >= 0; core = eff.NextAfter(core)) {
    const size_t len = cores_[static_cast<size_t>(core)].ready.size();
    if (best < 0 || len < best_len) {
      best = core;
      best_len = len;
    }
  }
  return best;
}

void SimMachine::NoteReadyBurst(SimTime now) {
  recent_ready_times_.push_back(now);
  while (!recent_ready_times_.empty() && recent_ready_times_.front() < now - kBurstWindow) {
    recent_ready_times_.pop_front();
  }
  metrics_.max_ready_burst_5us =
      std::max(metrics_.max_ready_burst_5us, static_cast<int>(recent_ready_times_.size()));
}

void SimMachine::MakeReady(int tid) {
  Thread& t = threads_[static_cast<size_t>(tid)];
  assert(t.state == Thread::State::kReady && !t.queued);
  CpuSet eff = EffectiveAffinity(t);
  if (eff.Empty()) {
    // Thread mask became disjoint from its job mask (the job shrank under the
    // thread). Fall back to the job mask — the job's limits take precedence.
    eff = t.job >= 0 ? jobs_[static_cast<size_t>(t.job)].affinity : all_cores_;
  }
  if (JobDispatchable(t)) {
    const int idle_core = PickIdleCore(eff, t.core);
    if (idle_core >= 0) {
      Dispatch(idle_core, tid, /*context_switch=*/true);
      return;
    }
  }
  const int queue_core = PickQueueCore(eff);
  assert(queue_core >= 0);
  t.core = queue_core;
  t.queued = true;
  cores_[static_cast<size_t>(queue_core)].ready.push_back(tid);
}

void SimMachine::Dispatch(int core, int tid, bool context_switch) {
  Thread& t = threads_[static_cast<size_t>(tid)];
  Core& c = cores_[static_cast<size_t>(core)];
  assert(t.state == Thread::State::kReady || (!context_switch && c.running == tid));
  assert(context_switch ? c.running < 0 : true);

  if (context_switch && t.tenant == TenantClass::kPrimary) {
    metrics_.primary_sched_delay_us.Add(ToMicros(sim_->Now() - t.ready_since));
  }
  if (context_switch && tracer_ != nullptr && t.trace_ctx != 0 &&
      sim_->Now() > t.ready_since) {
    tracer_->Span(t.trace_ctx, "cpu.wait", SpanCategory::kCpuWait,
                  first_core_track_ + core, t.ready_since, sim_->Now());
  }

  SimDuration run_len = spec_.quantum;
  if (!t.loop) {
    run_len = std::min(run_len, t.remaining);
  }
  const bool capped = t.job >= 0 && jobs_[static_cast<size_t>(t.job)].rate_cap > 0;
  if (capped) {
    // Keep capped-job slices inside one accounting interval so usage is
    // always charged to the interval the slice started in.
    const SimTime now = sim_->Now();
    const SimTime boundary = (now / spec_.throttle_interval + 1) * spec_.throttle_interval;
    run_len = std::min(run_len, boundary - now);
  }
  run_len = std::max<SimDuration>(1, run_len);

  const SimDuration overhead = context_switch ? spec_.context_switch : 0;
  if (t.state != Thread::State::kRunning && t.job >= 0) {
    ++jobs_[static_cast<size_t>(t.job)].running_count;
  }
  t.state = Thread::State::kRunning;
  t.queued = false;
  t.core = core;
  t.slice_start = sim_->Now();
  t.slice_overhead = overhead;
  c.running = tid;
  idle_mask_.Clear(core);
  ++metrics_.dispatches;

  t.slice_event = sim_->Schedule(sim_->Now() + overhead + run_len,
                                 [this, core, tid] { OnSliceEnd(core, tid); });
  if (capped) {
    // May throttle the job immediately (preempting this thread again).
    ScheduleExhaustCheck(t.job);
  }
}

void SimMachine::NoteStopRunning(Thread& t) {
  if (t.job < 0) {
    return;
  }
  Job& job = jobs_[static_cast<size_t>(t.job)];
  --job.running_count;
  assert(job.running_count >= 0);
  if (job.rate_cap > 0) {
    ScheduleExhaustCheck(t.job);  // consumption rate dropped; no-op if throttled
  }
}

SimDuration SimMachine::ChargeRun(Thread& t) {
  const SimTime now = sim_->Now();
  const SimDuration elapsed = now - t.slice_start;
  if (elapsed <= 0) {
    return 0;
  }
  const SimDuration overhead = std::min(elapsed, t.slice_overhead);
  const SimDuration work = elapsed - overhead;
  const SimTime charge_start = t.slice_start;
  t.slice_start = now;
  t.slice_overhead -= overhead;
  metrics_.busy_ns[static_cast<int>(TenantClass::kOs)] += overhead;
  if (work > 0) {
    metrics_.busy_ns[static_cast<int>(t.tenant)] += work;
    t.cpu_time += work;
    if (!t.loop) {
      t.remaining -= work;
      assert(t.remaining >= 0);
    }
    if (t.job >= 0) {
      Job& job = jobs_[static_cast<size_t>(t.job)];
      job.cpu_time += work;
      if (job.rate_cap > 0) {
        // Charge the interval the slice started in (capped slices never span
        // a boundary by construction, modulo context-switch overhead).
        const int64_t idx = charge_start / spec_.throttle_interval;
        if (job.usage_interval != idx) {
          job.usage_interval = idx;
          job.usage = 0;
        }
        job.usage += work;
      }
    }
    if (tracer_ != nullptr && t.trace_ctx != 0) {
      tracer_->Span(t.trace_ctx, "cpu.run", SpanCategory::kService,
                    first_core_track_ + t.core, charge_start + overhead, now);
    }
  }
  return work;
}

void SimMachine::OnSliceEnd(int core, int tid) {
  // Preemption, kill, and re-dispatch cancel the slice event eagerly, so a
  // stale slice end can never fire.
  Thread& t = threads_[static_cast<size_t>(tid)];
  assert(t.state == Thread::State::kRunning && t.core == core);
  // This callback is the slice event firing: drop the stale handle now. The
  // yield path below parks the thread as kReady without re-arming, and a
  // later kill must not poke at a recycled slot through the old handle.
  t.slice_event = EventHandle();
  ChargeRun(t);

  if (!t.loop && t.remaining <= 0) {
    // Burst complete.
    NoteStopRunning(t);
    cores_[static_cast<size_t>(core)].running = -1;
    idle_mask_.Set(core);
    FinishThread(tid, /*run_callback=*/true);
    if (cores_[static_cast<size_t>(core)].running < 0) {
      DispatchNext(core);
    }
    return;
  }

  // Quantum expired: yield to a waiting eligible thread if any, else renew.
  Core& c = cores_[static_cast<size_t>(core)];
  bool waiter_exists = false;
  for (int waiting_tid : c.ready) {
    const Thread& w = threads_[static_cast<size_t>(waiting_tid)];
    if (EffectiveAffinity(w).Test(core) && JobDispatchable(w)) {
      waiter_exists = true;
      break;
    }
  }
  if (waiter_exists) {
    ++metrics_.preemptions;
    NoteStopRunning(t);
    t.state = Thread::State::kReady;
    t.queued = true;
    t.ready_since = sim_->Now();
    c.running = -1;
    c.ready.push_back(tid);  // t.core stays == core
    DispatchNext(core);
  } else {
    Dispatch(core, tid, /*context_switch=*/false);  // fresh quantum, no switch cost
  }
}

void SimMachine::DispatchNext(int core) {
  Core& c = cores_[static_cast<size_t>(core)];
  assert(c.running < 0);
  std::vector<int> displaced;  // threads whose affinity no longer allows this core

  int chosen = -1;
  for (auto it = c.ready.begin(); it != c.ready.end();) {
    const int tid = *it;
    Thread& t = threads_[static_cast<size_t>(tid)];
    if (!EffectiveAffinity(t).Test(core)) {
      it = c.ready.erase(it);
      t.queued = false;
      t.core = -1;
      displaced.push_back(tid);
      continue;
    }
    if (!JobDispatchable(t)) {
      ++it;  // throttled: stays queued until its job is unthrottled
      continue;
    }
    chosen = tid;
    c.ready.erase(it);
    t.queued = false;
    break;
  }

  if (chosen < 0) {
    // Work stealing: take the longest-waiting eligible thread from any other
    // core's queue. This keeps the machine approximately work-conserving
    // while preserving the no-wake-preemption property.
    int victim_core = -1;
    std::deque<int>::iterator victim_it;
    SimTime oldest = 0;
    for (int other = 0; other < spec_.num_cores; ++other) {
      if (other == core) {
        continue;
      }
      Core& oc = cores_[static_cast<size_t>(other)];
      for (auto it = oc.ready.begin(); it != oc.ready.end(); ++it) {
        Thread& w = threads_[static_cast<size_t>(*it)];
        if (!EffectiveAffinity(w).Test(core) || !JobDispatchable(w)) {
          continue;
        }
        if (victim_core < 0 || w.ready_since < oldest) {
          victim_core = other;
          victim_it = it;
          oldest = w.ready_since;
        }
        break;  // queues are FIFO; the front-most eligible is the oldest here
      }
    }
    if (victim_core >= 0) {
      chosen = *victim_it;
      cores_[static_cast<size_t>(victim_core)].ready.erase(victim_it);
      threads_[static_cast<size_t>(chosen)].queued = false;
      ++metrics_.steals;
    }
  }

  if (chosen >= 0) {
    Dispatch(core, chosen, /*context_switch=*/true);
  } else {
    idle_mask_.Set(core);
  }

  for (int tid : displaced) {
    MakeReady(tid);
  }
}

void SimMachine::RemoveFromQueue(Thread& t, int tid) {
  assert(t.queued && t.core >= 0);
  Core& c = cores_[static_cast<size_t>(t.core)];
  auto it = std::find(c.ready.begin(), c.ready.end(), tid);
  assert(it != c.ready.end());
  c.ready.erase(it);
  t.queued = false;
  t.core = -1;
}

void SimMachine::ThrottleJob(int job_id) {
  Job& job = jobs_[static_cast<size_t>(job_id)];
  if (job.throttled) {
    return;
  }
  job.throttled = true;
  sim_->CancelOwned(job.exhaust_event);  // budget checks are moot while throttled
  std::vector<int> freed_cores;
  for (int tid : job.threads) {
    Thread& t = threads_[static_cast<size_t>(tid)];
    if (t.state != Thread::State::kRunning) {
      continue;
    }
    ChargeRun(t);
    sim_->CancelOwned(t.slice_event);
    ++metrics_.preemptions;
    NoteStopRunning(t);
    const int core = t.core;
    cores_[static_cast<size_t>(core)].running = -1;
    freed_cores.push_back(core);
    t.state = Thread::State::kReady;
    t.queued = true;
    t.ready_since = sim_->Now();
    cores_[static_cast<size_t>(core)].ready.push_back(tid);  // t.core stays
  }
  if (!sim_->Pending(job.unthrottle_event)) {
    const SimTime boundary =
        (sim_->Now() / spec_.throttle_interval + 1) * spec_.throttle_interval;
    job.unthrottle_event = sim_->Schedule(boundary, [this, job_id] { UnthrottleJob(job_id); });
  }
  for (int core : freed_cores) {
    if (cores_[static_cast<size_t>(core)].running < 0) {
      idle_mask_.Set(core);
      DispatchNext(core);
    }
  }
}

void SimMachine::UnthrottleJob(int job_id) {
  Job& job = jobs_[static_cast<size_t>(job_id)];
  job.throttled = false;
  // When called directly (cap removed mid-interval), the armed end-of-interval
  // unthrottle is stale; remove it instead of letting it fire as a no-op.
  // When this *is* the unthrottle event firing, the cancel is a benign no-op
  // and the reset drops the fired handle before its slot can recycle.
  sim_->CancelOwned(job.unthrottle_event);
  if (!job.live) {
    return;
  }
  // Budget resets lazily via RateBudgetLeft. Re-place ready threads onto idle
  // cores; threads queued behind busy cores keep waiting there.
  for (int tid : std::vector<int>(job.threads)) {
    Thread& t = threads_[static_cast<size_t>(tid)];
    if (t.state != Thread::State::kReady || !JobDispatchable(t)) {
      continue;
    }
    const CpuSet eff = EffectiveAffinity(t);
    const int idle_core = PickIdleCore(eff, -1);
    if (idle_core < 0) {
      continue;  // other threads may have wider masks
    }
    if (t.queued) {
      RemoveFromQueue(t, tid);
    }
    Dispatch(idle_core, tid, /*context_switch=*/true);
  }
}

void SimMachine::KickIdleCores(const CpuSet& mask) {
  for (int core = mask.Lowest(); core >= 0; core = mask.NextAfter(core)) {
    if (idle_mask_.Test(core) && cores_[static_cast<size_t>(core)].running < 0) {
      DispatchNext(core);
    }
  }
}

void SimMachine::FinishThread(int tid, bool run_callback) {
  Thread& t = threads_[static_cast<size_t>(tid)];
  sim_->CancelOwned(t.slice_event);  // no-op on the completion path (already fired + cleared)
  t.state = Thread::State::kFinished;
  if (t.job >= 0) {
    auto& siblings = jobs_[static_cast<size_t>(t.job)].threads;
    auto it = std::find(siblings.begin(), siblings.end(), tid);
    assert(it != siblings.end());
    *it = siblings.back();
    siblings.pop_back();
  }
  CompletionFn callback = std::move(t.on_complete);
  t.on_complete = nullptr;
  t.state = Thread::State::kFree;
  free_threads_.push_back(tid);
  if (run_callback && callback) {
    callback(sim_->Now());
  }
}

Status SimMachine::CheckInvariants() const {
  // Core / idle-mask agreement, and running threads point back at their core.
  for (int core = 0; core < spec_.num_cores; ++core) {
    const Core& c = cores_[static_cast<size_t>(core)];
    if ((c.running < 0) != idle_mask_.Test(core)) {
      return InternalError("idle mask disagrees with core " + std::to_string(core));
    }
    if (c.running >= 0) {
      const Thread& t = threads_[static_cast<size_t>(c.running)];
      if (t.state != Thread::State::kRunning || t.core != core) {
        return InternalError("running thread state mismatch on core " + std::to_string(core));
      }
      if (!sim_->Pending(t.slice_event)) {
        return InternalError("running thread on core " + std::to_string(core) +
                             " has no pending slice event");
      }
    }
    for (int tid : c.ready) {
      const Thread& t = threads_[static_cast<size_t>(tid)];
      if (t.state != Thread::State::kReady || !t.queued || t.core != core) {
        return InternalError("queued thread state mismatch on core " + std::to_string(core));
      }
    }
  }
  // Every ready+queued thread appears in exactly one queue; job bookkeeping.
  std::vector<int> queue_appearances(threads_.size(), 0);
  for (const Core& c : cores_) {
    for (int tid : c.ready) {
      ++queue_appearances[static_cast<size_t>(tid)];
    }
  }
  for (size_t tid = 0; tid < threads_.size(); ++tid) {
    const Thread& t = threads_[tid];
    const int expected = t.state == Thread::State::kReady && t.queued ? 1 : 0;
    if (queue_appearances[tid] != expected) {
      return InternalError("thread " + std::to_string(tid) + " appears in " +
                           std::to_string(queue_appearances[tid]) + " queues, expected " +
                           std::to_string(expected));
    }
    if (t.state != Thread::State::kRunning && sim_->Pending(t.slice_event)) {
      return InternalError("non-running thread " + std::to_string(tid) +
                           " still has a pending slice event");
    }
  }
  for (size_t job_id = 0; job_id < jobs_.size(); ++job_id) {
    const Job& job = jobs_[job_id];
    int running = 0;
    for (int tid : job.threads) {
      const Thread& t = threads_[static_cast<size_t>(tid)];
      if (t.job != static_cast<int>(job_id)) {
        return InternalError("job thread list mismatch for job " + job.name);
      }
      if (t.state == Thread::State::kRunning) {
        ++running;
      }
    }
    if (running != job.running_count) {
      return InternalError("job " + job.name + " running_count " +
                           std::to_string(job.running_count) + " != actual " +
                           std::to_string(running));
    }
  }
  // Accounting can never exceed machine capacity.
  if (metrics_.TotalBusy() > sim_->Now() * spec_.num_cores) {
    return InternalError("busy time exceeds machine capacity");
  }
  return OkStatus();
}

int SimMachine::EnableTracing(Tracer* tracer) {
  tracer_ = tracer;
  const int pid = tracer->RegisterProcess(name_);
  for (int core = 0; core < spec_.num_cores; ++core) {
    const int track = tracer->RegisterTrack(pid, "core" + std::to_string(core));
    if (core == 0) {
      first_core_track_ = track;
    }
  }
  return pid;
}

void SimMachine::SettleAccounting() {
  for (Core& core : cores_) {
    if (core.running >= 0) {
      ChargeRun(threads_[static_cast<size_t>(core.running)]);
    }
  }
}

double SimMachine::UtilizationSince(SimTime since, const SimDuration busy_then[kNumTenantClasses],
                                    TenantClass tenant) const {
  const SimDuration window = sim_->Now() - since;
  if (window <= 0) {
    return 0;
  }
  const SimDuration delta =
      metrics_.busy_ns[static_cast<int>(tenant)] - busy_then[static_cast<int>(tenant)];
  return static_cast<double>(delta) / (static_cast<double>(window) * spec_.num_cores);
}

}  // namespace perfiso
