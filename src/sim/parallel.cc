#include "src/sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <thread>
#include <utility>

namespace perfiso {

namespace {

// Partition whose window is executing on this thread; -1 on the orchestrator
// thread, during setup, and at barrier merges.
thread_local int tls_current_partition = -1;

}  // namespace

// One (src, dst) message buffer. Appended only by src's thread while src's
// window runs; drained single-threaded at the barrier. Posting order within
// the buffer is the deterministic per-source order the merge preserves.
struct ParallelSimulation::Mailbox {
  struct Msg {
    SimTime deliver;
    std::function<void()> fn;
  };
  std::vector<Msg> msgs;
};

// Persistent worker pool. Each window is one round trip: the orchestrator
// publishes the cap and arrives at `start`; workers run their assigned
// partitions and arrive at `end`. Both barriers count every worker plus the
// orchestrator, and each arrive_and_wait synchronizes memory between them, so
// plain (non-atomic) fields written before the release barrier are visible
// after it.
struct ParallelSimulation::Workers {
  explicit Workers(int count)
      : start(count + 1), end(count + 1) {}

  std::barrier<> start;
  std::barrier<> end;
  std::atomic<bool> stop{false};
  SimTime cap = 0;
  std::vector<std::thread> threads;
};

ParallelSimulation::ParallelSimulation(const Options& options) {
  assert(options.partitions >= 1);
  const int partitions = std::max(1, options.partitions);
  if (partitions > 1) {
    assert(options.window > 0 && "lockstep windows need a positive width (the PDES lookahead)");
  }
  window_ = options.window;
  sims_.reserve(static_cast<size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  if (partitions == 1) {
    num_threads_ = 1;
    return;
  }
  outboxes_.reserve(static_cast<size_t>(partitions) * static_cast<size_t>(partitions));
  for (int i = 0; i < partitions * partitions; ++i) {
    outboxes_.push_back(std::make_unique<Mailbox>());
  }
  int threads = options.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  num_threads_ = std::clamp(threads, 1, partitions);
  if (num_threads_ == 1) {
    return;  // single-threaded lockstep: same windows, no pool
  }
  workers_ = std::make_unique<Workers>(num_threads_);
  workers_->threads.reserve(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    workers_->threads.emplace_back([this, w] {
      for (;;) {
        workers_->start.arrive_and_wait();
        if (workers_->stop.load(std::memory_order_relaxed)) {
          return;
        }
        RunAssignedPartitions(w, workers_->cap);
        workers_->end.arrive_and_wait();
      }
    });
  }
}

ParallelSimulation::~ParallelSimulation() {
  if (workers_ != nullptr) {
    workers_->stop.store(true, std::memory_order_relaxed);
    workers_->start.arrive_and_wait();
    for (std::thread& t : workers_->threads) {
      t.join();
    }
  }
}

int ParallelSimulation::current_partition() { return tls_current_partition; }

void ParallelSimulation::Post(int dst, SimTime deliver_time, std::function<void()> fn) {
  assert(dst >= 0 && dst < num_partitions());
  const int src = tls_current_partition;
  if (src < 0 || src == dst || !in_window_) {
    // Setup-time scheduling (single-threaded by contract) or a partition
    // talking to itself: no mailbox needed.
    ++stats_.setup_posts;
    sims_[static_cast<size_t>(dst)]->Schedule(deliver_time, std::move(fn));
    return;
  }
  // The conservative-lookahead contract: a cross-partition message must not
  // deliver inside the window that produced it. A violation means the window
  // was configured wider than the real cross-partition latency floor.
  assert(deliver_time >= window_end_ &&
         "cross-partition message inside its own window: window width exceeds the lookahead");
  if (deliver_time < window_end_) {
    deliver_time = window_end_;
  }
  Mailbox& box =
      *outboxes_[static_cast<size_t>(src) * static_cast<size_t>(num_partitions()) +
                 static_cast<size_t>(dst)];
  box.msgs.push_back(Mailbox::Msg{deliver_time, std::move(fn)});
}

SimTime ParallelSimulation::GlobalNextEventTime() const {
  SimTime next = Simulator::kNoPendingEvent;
  for (const auto& sim : sims_) {
    next = std::min(next, sim->NextEventTime());
  }
  return next;
}

void ParallelSimulation::RunAssignedPartitions(int worker_index, SimTime cap) {
  const int partitions = num_partitions();
  for (int p = worker_index; p < partitions; p += num_threads_) {
    tls_current_partition = p;
    sims_[static_cast<size_t>(p)]->RunUntil(cap);
    tls_current_partition = -1;
  }
}

void ParallelSimulation::RunPartitionsTo(SimTime cap) {
  if (workers_ == nullptr) {
    RunAssignedPartitions(0, cap);
    return;
  }
  workers_->cap = cap;
  workers_->start.arrive_and_wait();
  workers_->end.arrive_and_wait();
}

void ParallelSimulation::MergeMailboxes() {
  // Per destination: gather every source's messages, order by (delivery
  // time, source partition, posting order), and schedule. The sort key never
  // ties — (src, index) is unique — so the order is total and independent of
  // which threads ran which partitions. Scheduling here also fixes the
  // destination's (time, seq) order for same-timestamp events: barrier-k
  // messages always order before the destination's own window-k schedules.
  struct Entry {
    SimTime deliver;
    int src;
    size_t index;
    Mailbox::Msg* msg;
  };
  const int partitions = num_partitions();
  std::vector<Entry> entries;
  bool any = false;
  for (int dst = 0; dst < partitions; ++dst) {
    entries.clear();
    for (int src = 0; src < partitions; ++src) {
      Mailbox& box = *outboxes_[static_cast<size_t>(src) * static_cast<size_t>(partitions) +
                                static_cast<size_t>(dst)];
      for (size_t i = 0; i < box.msgs.size(); ++i) {
        entries.push_back(Entry{box.msgs[i].deliver, src, i, &box.msgs[i]});
      }
    }
    if (entries.empty()) {
      continue;
    }
    any = true;
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.deliver != b.deliver) {
        return a.deliver < b.deliver;
      }
      if (a.src != b.src) {
        return a.src < b.src;
      }
      return a.index < b.index;
    });
    Simulator& sim = *sims_[static_cast<size_t>(dst)];
    for (const Entry& e : entries) {
      sim.Schedule(e.deliver, std::move(e.msg->fn));
      ++stats_.messages_posted;
    }
  }
  if (any) {
    ++stats_.merge_batches;
    for (auto& box : outboxes_) {
      box->msgs.clear();
    }
  }
}

void ParallelSimulation::RunUntil(SimTime until) {
  if (num_partitions() == 1) {
    sims_[0]->RunUntil(until);
    return;
  }
  for (;;) {
    // Skip-ahead: the next window is the one containing the earliest pending
    // event anywhere (mailboxes are empty here). Provably idle windows cost
    // nothing; this is what makes W = one fabric hop affordable over a
    // simulated day.
    const SimTime next = GlobalNextEventTime();
    if (next == Simulator::kNoPendingEvent || next > until) {
      break;
    }
    const SimTime window_start = next - (next % window_);
    window_end_ = window_start + window_;
    const SimTime cap = std::min(window_end_ - 1, until);
    in_window_ = true;
    RunPartitionsTo(cap);
    in_window_ = false;
    MergeMailboxes();
    ++stats_.windows_run;
  }
  // Nothing pending at or before `until`: advance every clock to it (same
  // postcondition as Simulator::RunUntil). No events fire, so this needs no
  // window structure or pool.
  for (auto& sim : sims_) {
    sim->RunUntil(until);
  }
}

uint64_t ParallelSimulation::TotalEventsExecuted() const {
  uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->EventsExecuted();
  }
  return total;
}

}  // namespace perfiso
