// Discrete-event simulation engine.
//
// A Simulator owns virtual time and a two-band scheduler over pooled event
// records. Events scheduled at the same timestamp fire in scheduling order
// (FIFO, via a monotonically increasing sequence number), which keeps runs
// deterministic. All higher layers (machines, disks, networks, the PerfIso
// controller) schedule plain callbacks here.
//
// Engine design (see DESIGN.md §"Two-band scheduler"):
//   * Event records live in fixed-size slabs and are recycled through a free
//     list, so the steady-state Schedule/fire path performs no heap
//     allocation. Callbacks are stored with a small-buffer optimization
//     inside the record; callables larger than EventCallback::kInlineBytes
//     fall back to one counted heap allocation.
//   * Every Schedule returns an EventHandle (slot id + generation). Handles
//     make cancellation first-class: Cancel() removes the event from its band
//     eagerly instead of letting it fire as a dead no-op, and Reschedule()
//     moves it. A handle goes stale the moment its event fires, is cancelled,
//     or is superseded; stale handles are safe to pass anywhere.
//   * Near band: a hierarchical timing wheel — 3 levels of power-of-two
//     buckets covering absolute-time bit ranges [0,12), [12,18), [18,24):
//     4096 one-nanosecond level-0 slots (wide enough that microsecond-scale
//     work deltas insert directly at level 0), then 64 slots each at levels
//     1 and 2. Each bucket is an intrusive doubly-linked list through the
//     records with an occupancy bitmap per level (level 0 adds a one-word
//     summary over its 64 bitmap words, so a scan is two countr_zeros).
//     Insert, cancel, and reschedule of a wheel-resident record are O(1);
//     this is the band that absorbs the cancel-heavy timer traffic (hedge
//     timers, I/O deadlines, slice preemptions). Pages are aligned (slot
//     indexes derive from absolute time bits), so a level-0 slot holds
//     records of exactly one timestamp.
//   * Far band: a 4-ary (time, seq) overflow min-heap for events beyond the
//     wheel horizon (2^24 ns ≈ 16.8 ms); records cascade into the wheel as
//     the clock crosses page boundaries.
//   * Batched dispatch: the due level-0 slot is drained into a contiguous
//     scratch vector, sorted by seq (one slot == one timestamp), and fired
//     without touching the wheel or heap between callbacks. Cancelling or
//     rescheduling a batch-resident record invalidates its scratch entry via
//     the (generation, seq) pair, so the (time, seq) total order is exactly
//     the one the previous 4-ary-heap engine produced — golden digests are
//     bit-identical.
//   * -DPERFISO_SIMSAN=ON compiles in SimSan, the engine-validation mode
//     (see DESIGN.md §"Determinism rules & SimSan"): stale-handle
//     Cancel/Reschedule after a slot recycle aborts with a diagnostic instead
//     of silently returning false, double-cancel aborts, freed records are
//     poisoned and checked on reuse, and engine invariants (wheel-list and
//     bitmap consistency, placement, heap property, conservation) are swept
//     periodically. All of it lives behind #ifdef PERFISO_SIMSAN, so the
//     normal build carries zero overhead.
#ifndef PERFISO_SRC_SIM_SIMULATOR_H_
#define PERFISO_SRC_SIM_SIMULATOR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/sim_time.h"

namespace perfiso {

class Simulator;

// True when the engine was built with -DPERFISO_SIMSAN=ON; lets tests select
// between "aborts with a diagnostic" and "silently returns false" behavior.
#ifdef PERFISO_SIMSAN
inline constexpr bool kSimSanEnabled = true;
#else
inline constexpr bool kSimSanEnabled = false;
#endif

// Refers to one scheduled event: a pooled slot id plus the generation the
// slot had when the event was scheduled. Default-constructed (and stale)
// handles are inert: Cancel/Reschedule/Pending on them return false.
class EventHandle {
 public:
  EventHandle() = default;

  // True when minted by a Schedule call and not reset since; says nothing
  // about whether the event is still pending (see Simulator::Pending).
  bool valid() const { return id_ != kInvalidId; }

 private:
  friend class Simulator;
  static constexpr uint32_t kInvalidId = 0xffffffffu;

  EventHandle(uint32_t id, uint32_t gen) : id_(id), gen_(gen) {}

  uint32_t id_ = kInvalidId;
  uint32_t gen_ = 0;
};

// Move-less callback slot embedded in each pooled event record. Callables up
// to kInlineBytes are constructed in place; larger ones take a single heap
// allocation, counted in Simulator::Stats so benches can verify the hot-path
// layers stay inline.
class EventCallback {
 public:
  // Sized so a capture of [this, a shared_ptr, and a couple of words] — the
  // largest shape the hot layers use — still fits inline.
  static constexpr size_t kInlineBytes = 56;

  EventCallback() = default;
  ~EventCallback() { Reset(); }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  template <typename Fn>
  void Emplace(Fn&& fn, uint64_t* heap_allocs) {
    using Decayed = std::decay_t<Fn>;
    static_assert(std::is_invocable_r_v<void, Decayed&>,
                  "event callbacks must be invocable with no arguments");
    assert(invoke_ == nullptr);
    if constexpr (sizeof(Decayed) <= kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(inline_buf_)) Decayed(std::forward<Fn>(fn));
      destroy_ = [](void* p) { static_cast<Decayed*>(p)->~Decayed(); };
    } else {
      heap_ = new Decayed(std::forward<Fn>(fn));
      destroy_ = [](void* p) { delete static_cast<Decayed*>(p); };
      ++*heap_allocs;
    }
    invoke_ = [](void* p) { (*static_cast<Decayed*>(p))(); };
  }

  void Invoke() { invoke_(target()); }

  void Reset() {
    if (invoke_ != nullptr) {
      destroy_(target());
      invoke_ = nullptr;
      destroy_ = nullptr;
      heap_ = nullptr;
    }
  }

  bool armed() const { return invoke_ != nullptr; }

#ifdef PERFISO_SIMSAN
  // Freed records are filled with a poison pattern; a scribble through a
  // stale reference (or an engine bug) is caught when the slot is reused.
  void SimSanPoison();
  bool SimSanPoisonIntact() const;
#endif

 private:
  void* target() { return heap_ != nullptr ? heap_ : static_cast<void*>(inline_buf_); }

  alignas(std::max_align_t) unsigned char inline_buf_[kInlineBytes];
  void* heap_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `when` (clamped to Now() if in the past;
  // clamps are counted in stats and logged in debug builds). Returns a handle
  // that can cancel or move the event while it is still pending.
  template <typename Fn>
  EventHandle Schedule(SimTime when, Fn&& fn) {
    const uint32_t id = AllocSlot();
    Event& e = Rec(id);
    e.time = ClampToNow(when);
    e.seq = next_seq_++;
    e.cb.Emplace(std::forward<Fn>(fn), &stats_.callback_heap_allocs);
    Insert(id, e);
    ++pending_count_;
    ++stats_.events_scheduled;
    return EventHandle(id, e.gen);
  }

  // Schedules `fn` after a relative delay.
  template <typename Fn>
  EventHandle ScheduleAfter(SimDuration delay, Fn&& fn) {
    return Schedule(now_ + delay, std::forward<Fn>(fn));
  }

  // Removes a pending event from the queue (its callback is destroyed, not
  // run). Returns false — and does nothing — if the handle is stale: default
  // constructed, already fired, already cancelled, or superseded. Under
  // SimSan, a cancel through a handle whose slot was recycled (or that was
  // already cancelled) aborts with a diagnostic instead.
  bool Cancel(EventHandle handle);

  // Cancel for a handle the caller *owns* (a member it stores and re-arms):
  // cancels, then resets `handle` to the default stale state so no copy of a
  // dead handle lingers in the owner. This is the handle-hygiene primitive
  // SimSan enforces — a lingering fired/cancelled handle is safe only until
  // its slot recycles. Returns whether a pending event was cancelled.
  bool CancelOwned(EventHandle& handle) {
    const bool cancelled = Cancel(handle);
    handle = EventHandle();
    return cancelled;
  }

  // Moves a pending event to `when` (clamped like Schedule). The event keeps
  // its callback and its handle but is ordered as a fresh scheduling decision
  // among same-time events. Returns false on a stale handle.
  bool Reschedule(EventHandle handle, SimTime when);

  // The arm-or-tighten idiom shared by deadline timers (bucket-retry wakes,
  // budget-exhaustion checks): if `handle` is stale, schedules `fn` at `when`
  // and stores the new handle; if it is pending later than `when`, pulls it
  // earlier. Never delays an armed event, and never stacks a second one.
  template <typename Fn>
  void ScheduleOrTighten(EventHandle& handle, SimTime when, Fn&& fn) {
    if (const Event* e = Lookup(handle)) {
      if (e->time > when) {
        Reschedule(handle, when);
      }
      return;
    }
    handle = Schedule(when, std::forward<Fn>(fn));
  }

  // True while the event is still in the queue.
  bool Pending(EventHandle handle) const;

  // Returned by NextEventTime() when nothing is pending.
  static constexpr SimTime kNoPendingEvent = std::numeric_limits<SimTime>::max();

  // Timestamp of the earliest pending event (== Now() when an undispatched
  // batch entry remains), or kNoPendingEvent when the queue is empty. Exact,
  // not a bound: the parallel window scheduler (src/sim/parallel.h) uses it
  // to skip idle lockstep windows. O(1) except for one bucket-list walk when
  // the earliest event sits in a level-1/2 wheel bucket.
  SimTime NextEventTime() const;

  // Runs the earliest pending event. Returns false if none are pending.
  bool Step();

  // Runs all events with time <= `until`, then advances the clock to `until`.
  void RunUntil(SimTime until);

  // Runs until no events remain. Use only with workloads that terminate.
  void RunUntilEmpty();

  struct Stats {
    uint64_t events_executed = 0;
    uint64_t events_scheduled = 0;
    uint64_t events_cancelled = 0;
    // Schedule() calls whose timestamp was in the past and got clamped to
    // Now(). Nonzero values point at a mis-scheduling layer.
    uint64_t clamped_schedules = 0;
    // Callbacks too large for the record's inline buffer (one heap
    // allocation each). The hot layers should keep this at zero.
    uint64_t callback_heap_allocs = 0;
    // Event-pool slab allocations (pool growth; flat once warmed up).
    uint64_t slab_allocs = 0;
    // Two-band scheduler traffic: records redistributed from a higher wheel
    // level into a lower one (each record cascades at most kWheelLevels - 1
    // times), records pulled from the far-band overflow heap into the wheel,
    // and level-0 slot drains into the dispatch batch.
    uint64_t wheel_cascades = 0;
    uint64_t overflow_pulls = 0;
    uint64_t batch_drains = 0;
  };
  const Stats& stats() const { return stats_; }

  // Number of events executed since construction.
  uint64_t EventsExecuted() const { return stats_.events_executed; }
  // Pending (live) events only: cancelled events leave their band eagerly.
  size_t PendingEvents() const { return pending_count_; }
  // Far-band residents right now (events beyond the wheel horizon).
  size_t OverflowEvents() const { return heap_.size(); }

  // Full engine-state validation: wheel-list and bitmap consistency, band
  // placement against the current clock, overflow-heap property and record
  // back-pointers, batch-entry validity, free-list consistency, slot
  // conservation, and (under SimSan) poison integrity of freed records.
  // Aborts with a diagnostic on any violation. SimSan builds run this
  // automatically every kSimSanSweepInterval executed events; in normal
  // builds it is available for tests but never runs implicitly. Call from
  // outside event callbacks.
  void CheckEngineInvariants() const;

#ifdef PERFISO_SIMSAN
  // Executed events between automatic invariant sweeps (the engine has no
  // scheduler-quantum notion of its own; this is its "per quantum" cadence).
  static constexpr uint64_t kSimSanSweepInterval = 1024;
#endif

 private:
  // 256 event records per slab. Slab storage is stable (records never move),
  // so callbacks may safely schedule/cancel while one of them runs.
  static constexpr uint32_t kSlabBits = 8;
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;
  static constexpr uint32_t kNilId = 0xffffffffu;

  // Wheel geometry: level L buckets are 2^kWheelShift[L] ns wide and a level
  // covers absolute-time bits [kWheelShift[L], kWheelShift[L+1]). Level 0 is
  // deliberately wide (4096 slots) so that microsecond-scale deltas — the
  // common work/timer spacing — insert directly into level 0 instead of
  // paying a level-1 insert plus a cascade. The wheel horizon (beyond which
  // events overflow to the far-band heap) is one level-2 page: 2^24 ns
  // ≈ 16.8 ms. Pages are aligned to absolute-time bit boundaries, so within
  // a page slot indexes only increase and a level-0 slot holds records of
  // exactly one timestamp.
  static constexpr int kWheelLevels = 3;
  static constexpr int kWheelShift[kWheelLevels + 1] = {0, 12, 18, 24};
  static constexpr uint32_t kWheelSlotCount[kWheelLevels] = {4096, 64, 64};
  static constexpr uint32_t kWheelSlotMask[kWheelLevels] = {4095, 63, 63};
  static constexpr uint32_t kWheelSlotBase[kWheelLevels] = {0, 4096, 4096 + 64};
  static constexpr uint32_t kWheelTotalSlots = 4096 + 64 + 64;
  static constexpr int kWheelHorizonBits = kWheelShift[kWheelLevels];

  // Which structure currently holds a record. kWhereBatch means the record
  // sits in the dispatch scratch vector (drained from its level-0 slot but
  // not yet fired); it still counts as pending.
  enum Where : uint8_t {
    kWhereFree = 0,
    kWhereWheel,
    kWhereOverflow,
    kWhereBatch,
    kWhereFiring,
  };

  struct Event {
    SimTime time = 0;
    uint64_t seq = 0;
    uint32_t gen = 0;
    // Intrusive doubly-linked wheel-bucket list (record ids, kNilId ends).
    uint32_t next = kNilId;
    uint32_t prev = kNilId;
    int32_t heap_pos = -1;  // index into heap_ when where == kWhereOverflow
    uint8_t where = kWhereFree;
    uint8_t level = 0;   // wheel coordinates when where == kWhereWheel
    uint16_t slot = 0;
    EventCallback cb;
#ifdef PERFISO_SIMSAN
    // How the slot's most recent event ended, and the generation handles to
    // that event carried. Lets a stale Cancel/Reschedule distinguish the
    // documented benign case (the event fired) from latent lifetime bugs
    // (double-cancel, touch after the slot was recycled).
    enum : uint8_t { kNeverEnded = 0, kEndedFired = 1, kEndedCancelled = 2 };
    uint32_t simsan_ended_gen = 0;
    uint8_t simsan_ended_how = kNeverEnded;
    bool simsan_in_free_list = false;
#endif
  };

  struct HeapItem {
    SimTime time;
    uint64_t seq;
    uint32_t id;
  };

  // One drained (not yet fired) record: the (gen, seq) pair invalidates the
  // entry if the record is cancelled or rescheduled mid-batch. The entry's
  // timestamp is implicit — every record in a batch shares Now().
  struct BatchItem {
    uint64_t seq;
    uint32_t id;
    uint32_t gen;
  };

  static bool Before(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  Event& Rec(uint32_t id) { return slabs_[id >> kSlabBits][id & (kSlabSize - 1)]; }
  const Event& Rec(uint32_t id) const { return slabs_[id >> kSlabBits][id & (kSlabSize - 1)]; }

  // Returns the record iff `handle` refers to a still-pending event.
  Event* Lookup(EventHandle handle);
  const Event* Lookup(EventHandle handle) const;

  SimTime ClampToNow(SimTime when);
  uint32_t AllocSlot();
  void FreeSlot(uint32_t id);
#ifdef PERFISO_SIMSAN
  // Called when Cancel/Reschedule sees a handle Lookup rejected: aborts with
  // a diagnostic if the staleness indicates a lifetime bug, returns for the
  // benign cases (default handle, event fired once since the handle was
  // minted).
  void SimSanDiagnoseStale(EventHandle handle, const char* op) const;
  void SimSanNoteEnded(Event& e, uint8_t how);
#endif

  // --- Two-band placement (hot path, kept inline) ---------------------------

  uint32_t& Head(int level, uint32_t slot) { return wheel_[kWheelSlotBase[level] + slot]; }
  const uint32_t& Head(int level, uint32_t slot) const {
    return wheel_[kWheelSlotBase[level] + slot];
  }

  void OccSet(int level, uint32_t slot) {
    if (level == 0) {
      occ0_[slot >> 6] |= 1ull << (slot & 63);
      occ0_summary_ |= 1ull << (slot >> 6);
    } else {
      occ_hi_[level - 1] |= 1ull << slot;
    }
  }

  void OccClear(int level, uint32_t slot) {
    if (level == 0) {
      if ((occ0_[slot >> 6] &= ~(1ull << (slot & 63))) == 0) {
        occ0_summary_ &= ~(1ull << (slot >> 6));
      }
    } else {
      occ_hi_[level - 1] &= ~(1ull << slot);
    }
  }

  bool OccTest(int level, uint32_t slot) const {
    if (level == 0) {
      return ((occ0_[slot >> 6] >> (slot & 63)) & 1) != 0;
    }
    return ((occ_hi_[level - 1] >> slot) & 1) != 0;
  }

  // Places a pending record into the band its timestamp belongs to, relative
  // to the current clock: the innermost wheel level whose page contains the
  // timestamp, or the overflow heap past the horizon.
  void Insert(uint32_t id, Event& e) {
    const SimTime t = e.time;
    for (int level = 0; level < kWheelLevels; ++level) {
      if ((t >> kWheelShift[level + 1]) == (now_ >> kWheelShift[level + 1])) {
        WheelPush(level,
                  static_cast<uint32_t>(t >> kWheelShift[level]) & kWheelSlotMask[level], id, e);
        return;
      }
    }
    e.where = kWhereOverflow;
    HeapPush(id, t, e.seq);
  }

  // Pushes at the bucket head: O(1), no tail pointer. Bucket order is
  // irrelevant — the level-0 drain sorts its batch by seq, and higher levels
  // redistribute records one by one.
  void WheelPush(int level, uint32_t slot, uint32_t id, Event& e) {
    uint32_t& head = Head(level, slot);
    e.where = kWhereWheel;
    e.level = static_cast<uint8_t>(level);
    e.slot = static_cast<uint16_t>(slot);
    e.prev = kNilId;
    e.next = head;
    if (head != kNilId) {
      Rec(head).prev = id;
    }
    head = id;
    OccSet(level, slot);
  }

  void WheelUnlink(Event& e) {
    if (e.prev != kNilId) {
      Rec(e.prev).next = e.next;
    } else {
      uint32_t& head = Head(e.level, e.slot);
      head = e.next;
      if (e.next == kNilId) {
        OccClear(e.level, e.slot);
      }
    }
    if (e.next != kNilId) {
      Rec(e.next).prev = e.prev;
    }
  }

  // Detaches a pending record from whichever structure holds it. Batch
  // residents need no structural removal — the caller invalidates their
  // scratch entry by changing gen (cancel) or seq (reschedule).
  void RemoveFromBand(Event& e) {
    if (e.where == kWhereWheel) {
      WheelUnlink(e);
    } else if (e.where == kWhereOverflow) {
      HeapRemoveAt(static_cast<size_t>(e.heap_pos));
      e.heap_pos = -1;
    }
  }

  // --- Clock advancement / dispatch (simulator.cc) --------------------------

  // First occupied slot index >= `from` at `level`, or -1.
  int NextOccupied(int level, uint32_t from) const;
  // Advances the clock to `t` (monotonic), cascading the wheel slots and
  // overflow-heap page that become current. Only called with `t` at or below
  // the earliest pending timestamp, so every slot skipped over is empty.
  void SetClockTo(SimTime t);
  // Redistributes one bucket into the bands below it (after the clock moved
  // into the bucket's page).
  void Cascade(int level, uint32_t slot);
  // Advances the clock to the earliest pending timestamp and drains its
  // level-0 slot into the dispatch batch. Returns false — without moving the
  // clock past `cap` — when the earliest pending event is after `cap` (or
  // nothing is pending).
  bool DrainNextSlot(SimTime cap);
  void DrainSlot(uint32_t slot);
  // Fires one validated batch record (the caller advanced the clock).
  void Fire(uint32_t id, Event& e);

  void HeapPush(uint32_t id, SimTime time, uint64_t seq);
  void HeapRemoveAt(size_t pos);
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void Place(size_t pos, const HeapItem& item);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  // Log-stamp clock displaced by this simulator's registration (see
  // util/logging.h); restored on destruction so nested simulators unwind.
  uint64_t (*prev_log_clock_fn_)(const void*) = nullptr;
  const void* prev_log_clock_ctx_ = nullptr;
  Stats stats_;
  // Bucket heads (record ids), all levels packed: level L starts at
  // kWheelSlotBase[L]. Level 0's occupancy is 64 words plus a one-word
  // summary (bit w set iff occ0_[w] != 0); levels 1 and 2 have 64 slots
  // each, so one word per level suffices.
  uint32_t wheel_[kWheelTotalSlots];
  uint64_t occ0_[kWheelSlotCount[0] / 64] = {};
  uint64_t occ0_summary_ = 0;
  uint64_t occ_hi_[kWheelLevels - 1] = {};
  std::vector<HeapItem> heap_;  // far band (overflow)
  std::vector<BatchItem> batch_;
  size_t batch_pos_ = 0;
  size_t pending_count_ = 0;
  std::vector<std::unique_ptr<Event[]>> slabs_;
  std::vector<uint32_t> free_ids_;
#ifdef PERFISO_SIMSAN
  // True while a callback runs: the executing record is in no band and not
  // on the free list, which the conservation sweep must tolerate.
  bool simsan_in_callback_ = false;
#endif
};

// A self-rescheduling task with cancellation, used for polling loops (the
// PerfIso controller polls utilization "continuously in a tight loop", §4.1).
// Destroying the task (or calling Cancel) removes the armed event from the
// queue eagerly. Two lifetime rules: the Simulator must outlive the task
// (Cancel reaches into the queue, so declare tasks after — or owned by —
// structures holding the Simulator), and a tick callback may call Cancel()
// on its own task but must not destroy the task object from inside the tick.
class PeriodicTask {
 public:
  using TickFn = std::function<void(SimTime)>;

  // Starts firing at `start` and then every `period`.
  PeriodicTask(Simulator* sim, SimTime start, SimDuration period, TickFn on_tick);
  ~PeriodicTask() { Cancel(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Cancel();
  bool cancelled() const { return cancelled_; }
  SimDuration period() const { return period_; }

 private:
  void Arm(SimTime when);

  Simulator* sim_;
  SimDuration period_;
  TickFn on_tick_;
  EventHandle event_;
  bool cancelled_ = false;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_SIM_SIMULATOR_H_
