// Discrete-event simulation engine.
//
// A Simulator owns virtual time and a min-heap of events. Events scheduled at
// the same timestamp fire in scheduling order (FIFO), which keeps runs
// deterministic. All higher layers (machines, disks, networks, the PerfIso
// controller) schedule plain callbacks here.
#ifndef PERFISO_SRC_SIM_SIMULATOR_H_
#define PERFISO_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/util/sim_time.h"

namespace perfiso {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `when` (clamped to Now() if in the past).
  void Schedule(SimTime when, EventFn fn);

  // Schedules `fn` after a relative delay.
  void ScheduleAfter(SimDuration delay, EventFn fn) { Schedule(now_ + delay, std::move(fn)); }

  // Runs the earliest pending event. Returns false if none are pending.
  bool Step();

  // Runs all events with time <= `until`, then advances the clock to `until`.
  void RunUntil(SimTime until);

  // Runs until no events remain. Use only with workloads that terminate.
  void RunUntilEmpty();

  // Number of events executed since construction.
  uint64_t EventsExecuted() const { return events_executed_; }
  size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

// A self-rescheduling task with cancellation, used for polling loops (the
// PerfIso controller polls utilization "continuously in a tight loop", §4.1).
// Destroying the handle (or calling Cancel) stops future firings.
class PeriodicTask {
 public:
  using TickFn = std::function<void(SimTime)>;

  // Starts firing at `start` and then every `period`.
  PeriodicTask(Simulator* sim, SimTime start, SimDuration period, TickFn on_tick);
  ~PeriodicTask() { Cancel(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Cancel();
  bool cancelled() const { return !*alive_; }
  SimDuration period() const { return period_; }

 private:
  void Arm(SimTime when);

  Simulator* sim_;
  SimDuration period_;
  TickFn on_tick_;
  std::shared_ptr<bool> alive_;
};

}  // namespace perfiso

#endif  // PERFISO_SRC_SIM_SIMULATOR_H_
