// IndexServe: a model of the Bing web-index serving node used as the paper's
// primary tenant.
//
// The real service is proprietary; this model reproduces the properties
// PerfIso depends on (§2.1):
//   1. layered, parallel query processing — receive -> parse -> parallel
//      chunk lookups (fan-out) -> rank -> snippet generation -> send;
//   2. millisecond service times with a strict tail (standalone: ~4 ms
//      median, ~12 ms P99, §6.1.1);
//   3. extreme burstiness — a query wakes its whole fan-out within
//      microseconds, so many workers become ready almost simultaneously;
//   4. hedged requests: slow chunk lookups are retried in parallel, which is
//      why the paper observes primary CPU *rising* under interference
//      ("IndexServe tries to compensate ... by starting more workers",
//      §6.1.2);
//   5. SSD reads on index-cache misses (the index slice lives on the striped
//      SSD volume, exclusive to the primary) and asynchronous query logging
//      to the shared HDD volume, with bounded buffering — a saturated HDD
//      eventually backpressures query completion, which is the channel disk
//      bullies hurt the primary through.
//
// Queries time out (client-side) at `timeout`; timed-out queries count as
// dropped and are excluded from the latency distribution, as in the paper.
#ifndef PERFISO_SRC_INDEXSERVE_INDEX_SERVER_H_
#define PERFISO_SRC_INDEXSERVE_INDEX_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include <map>

#include "src/disk/io_scheduler.h"
#include "src/fault/retry.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/arena.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/query_trace.h"

namespace perfiso {

// Well-known I/O owner ids for the primary's traffic.
inline constexpr int kIoOwnerIndexData = 1;  // SSD index reads
inline constexpr int kIoOwnerIndexLog = 2;   // HDD query logging

struct IndexServeConfig {
  // --- CPU stage costs (microseconds, multiplied by the query size factor) --
  double receive_cpu_us = 100;  // network receive path, charged as OS time
  double parse_cpu_us = 200;
  // Query-understanding stage (spell/intent/rewrite), serialized before the
  // fan-out.
  double understand_cpu_us = 500;
  // Chunk lookup cost ~ LogNormal(ln(chunk_cpu_median_us), chunk_cpu_sigma).
  double chunk_cpu_median_us = 210;
  double chunk_cpu_sigma = 0.85;
  double chunk_post_read_cpu_us = 30;  // decompress/score after an SSD read
  // Rank cost ~ LogNormal(ln(rank_cpu_median_us), rank_cpu_sigma).
  double rank_cpu_median_us = 1400;
  double rank_cpu_sigma = 0.40;
  double snippet_cpu_us = 300;
  double send_cpu_us = 100;  // network send path, charged as OS time

  // --- Index cache / SSD ----------------------------------------------------
  double chunk_miss_rate = 0.5;  // fraction of lookups that read the SSD
  int64_t chunk_read_bytes = 64 * 1024;
  // Snippet/document reads are issued sequentially (dependent lookups).
  int snippet_reads = 3;
  int64_t snippet_read_bytes = 64 * 1024;

  // --- Hedging (tail-latency compensation) ----------------------------------
  bool hedging_enabled = true;
  SimDuration hedge_delay = FromMillis(10);
  // At most this fraction of started chunk lookups may be hedged (a budget,
  // as in TPC/DDS-style hedging [15, 17]); prevents hedge storms from
  // melting the server when every lookup is slow.
  double hedge_budget_fraction = 0.1;

  // --- Client timeout & admission -------------------------------------------
  SimDuration timeout = FromMillis(450);
  int max_inflight = 1000;

  // --- Graceful degradation (k-of-n chunk coverage) --------------------------
  // When positive, a per-query deadline timer fires this long after arrival;
  // if the fan-out is still open and at least min_chunk_coverage of the chunks
  // have answered, the query closes its fan-out and proceeds to rank with
  // partial coverage (recorded per query, counted as completed_degraded).
  // 0 disables the timer entirely — no event is scheduled, digests are
  // bit-identical to the pre-degradation behavior.
  SimDuration degrade_deadline = 0;
  double min_chunk_coverage = 0.5;

  // --- Chunk retry (timeout detection + capped exponential backoff) ----------
  // Disabled by default: no per-attempt timers, no RNG draws, no digest
  // drift. When enabled, every chunk attempt arms a timeout; a lost chunk is
  // re-issued after ComputeBackoff(...) unless the backoff would land past
  // the client timeout (suppressed, the deadline/timeout path takes over).
  RetryPolicy chunk_retry;

  // --- HDD logging -----------------------------------------------------------
  int64_t log_bytes_per_query = 2048;
  int64_t log_flush_bytes = 256 * 1024;
  // Completions stall when this much log data is waiting to reach the HDD.
  int64_t log_buffer_cap_bytes = 4 * 1024 * 1024;

  // Fixed working set (index cache): the paper's setup uses ~110 GB.
  int64_t working_set_bytes = 110LL * 1024 * 1024 * 1024;
};

struct QueryResult {
  uint64_t id = 0;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  bool dropped = false;  // timed out, rejected at admission, or lost to a crash
  double latency_ms = 0;
  // Chunk coverage: how much of the fan-out answered before the query closed.
  // Full-coverage completions have chunks_served == chunks_total; degraded
  // completions (k-of-n answers under a deadline) have fewer.
  int chunks_total = 0;
  int chunks_served = 0;
  bool degraded = false;

  double Coverage() const {
    return chunks_total == 0 ? 1.0
                             : static_cast<double>(chunks_served) / static_cast<double>(chunks_total);
  }
};

class IndexServer {
 public:
  using QueryDoneFn = std::function<void(const QueryResult&)>;

  // `ssd` may not be null (index reads). `hdd` may be null, disabling the
  // logging path (useful for CPU-only experiments and unit tests).
  IndexServer(SimMachine* machine, IoScheduler* ssd, IoScheduler* hdd,
              const IndexServeConfig& config, uint64_t seed);

  IndexServer(const IndexServer&) = delete;
  IndexServer& operator=(const IndexServer&) = delete;

  // Processes one query; `done` (optional) fires at completion or drop.
  void SubmitQuery(const QueryWork& work, QueryDoneFn done = nullptr);

  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;          // within the timeout (includes degraded)
    int64_t completed_degraded = 0; // subset of completed: closed at partial coverage
    int64_t dropped_timeout = 0;
    int64_t dropped_admission = 0;
    int64_t dropped_crash = 0;      // failed by a crash, or rejected while down
    int64_t hedges_issued = 0;
    int64_t log_stalls = 0;
    int64_t timeouts_detected = 0;  // per-attempt chunk timeouts that fired
    int64_t retries_issued = 0;
    int64_t retry_exhausted = 0;    // chunk timed out with no attempts left
    int64_t retries_suppressed_deadline = 0;  // backoff would land past the deadline
    // Invariant counter (InvariantChecker asserts it stays 0): a query must
    // never reach completion while its server is crashed.
    int64_t completions_while_crashed = 0;
    LatencyRecorder latency_ms;     // completed queries only
    LatencyRecorder coverage;       // per completed query, fraction in [0, 1]

    int64_t TotalDropped() const {
      return dropped_timeout + dropped_admission + dropped_crash;
    }
    double DropFraction() const {
      return submitted == 0 ? 0 : static_cast<double>(TotalDropped()) / submitted;
    }
  };

  const Stats& stats() const { return stats_; }
  // Clears counters/latencies (used to discard warm-up, §5.3).
  void ResetStats();

  // Registers an event track under the machine's tracer process (hedge
  // issues, log stalls). Queries submitted afterwards carry a trace context
  // through every stage: adopted from QueryWork::trace_ctx when the cluster
  // minted one, otherwise minted here with scope "isq" and ended at
  // completion, timeout, or admission drop.
  void EnableTracing(Tracer* tracer, int process);

  // --- Fault injection: process crash / restart ------------------------------
  // Crash models the index-serving process dying: every live query fails
  // exactly once (conservation moves it to dropped_crash), its hedge/retry/
  // deadline timers leave the event queue, and the log pipeline state is
  // lost. New submissions are rejected (dropped_crash) until Restart(). The
  // caller (IndexNodeRig::Crash) also cancels in-flight disk I/O.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  int inflight() const { return inflight_; }
  // Queries that were in flight when ResetStats last ran; they complete (or
  // drop) after the reset without a matching `submitted` tick. Conservation
  // therefore reads: submitted + inflight_at_reset ==
  // completed + dropped_* + inflight.
  int64_t inflight_at_reset() const { return inflight_at_reset_; }
  // Cumulative non-hedge chunk attempts; the hedge budget's denominator.
  int64_t chunks_started() const { return chunks_started_; }
  // Number of QueryState objects currently alive. Test hook for the lifetime
  // regression: after the simulator fully drains and all completion events
  // (including in-flight I/O) have fired, this must return to zero — a stored
  // callback capturing the state's own shared_ptr would keep it nonzero.
  int64_t live_query_states() const { return *live_query_states_; }
  // Arena behind QueryState allocation. Test hook: after warm-up, slab_allocs
  // stops growing — the steady-state query path recycles instead of mallocing.
  const SlabArena::Stats& query_arena_stats() const { return query_arena_->stats(); }
  JobId job() const { return job_; }
  SimMachine* machine() const { return machine_; }
  const IndexServeConfig& config() const { return config_; }

 private:
  struct QueryState;

  // Per-chunk fan-out state: completion/hedge flags, attempt count, and the
  // armed retry/hedge timers, one slot per chunk. A query's slots live in one
  // vector recycled through chunk_pool_, so the steady-state query path does
  // no per-chunk vector allocation.
  struct ChunkSlot {
    // Armed per-attempt timeout (or pending backoff wait); cancelled when the
    // chunk completes or the query reaches a terminal state. Lifecycle owner:
    // IndexServer::DetachTerminal cancels every slot timer on each terminal
    // transition, so the slots themselves stay trivially destructible (they
    // are pooled and recycled across queries).
    EventHandle retry_event;  // NOLINT(perfiso-LIFE-001)
    // Armed hedge timer; cancelled the moment the chunk completes (or the
    // query reaches a terminal state), so hedge timers for fast lookups — the
    // overwhelming majority — leave the event queue instead of firing as dead
    // no-ops holding the query state alive.
    EventHandle hedge_event;  // NOLINT(perfiso-LIFE-001)
    // Attempts issued (original + retries, hedges excluded); meaningful only
    // when the retry policy is enabled.
    uint8_t attempts = 0;
    bool done = false;
    bool hedged = false;
  };

  // Abandons the query if it is past its deadline; returns true if the query
  // is no longer live (expired now or earlier).
  bool ExpireIfOverdue(const std::shared_ptr<QueryState>& q);
  // Removes every still-armed hedge timer of a terminal query from the event
  // queue (each timer holds a reference to the query state).
  void CancelHedges(const std::shared_ptr<QueryState>& q);
  // Same for per-chunk retry timers.
  void CancelRetries(const std::shared_ptr<QueryState>& q);
  // Cancels every timer the query owns and drops it from the live registry;
  // called on every terminal transition (complete, expire, crash).
  void DetachTerminal(const std::shared_ptr<QueryState>& q);
  // Arms the per-attempt chunk timeout (retry must be enabled).
  void ArmRetryTimer(const std::shared_ptr<QueryState>& q, int chunk);
  void OnChunkTimeout(const std::shared_ptr<QueryState>& q, int chunk);
  // Degrade-deadline fired: if coverage has reached the k-of-n floor, close
  // the fan-out and rank with partial results.
  void MaybeDegrade(const std::shared_ptr<QueryState>& q);
  void StartParse(const std::shared_ptr<QueryState>& q);
  void StartFanout(const std::shared_ptr<QueryState>& q);
  void StartChunk(const std::shared_ptr<QueryState>& q, int chunk, bool is_hedge);
  void ChunkDone(const std::shared_ptr<QueryState>& q, int chunk);
  void StartRank(const std::shared_ptr<QueryState>& q);
  void StartSnippets(const std::shared_ptr<QueryState>& q);
  // Issues one dependent snippet read; its completion submits the next.
  void SubmitSnippetRead(const std::shared_ptr<QueryState>& q);
  void FinishQuery(const std::shared_ptr<QueryState>& q);
  void CompleteNow(const std::shared_ptr<QueryState>& q);
  void AppendLog(const std::shared_ptr<QueryState>& q);
  void MaybeFlushLog();

  SimMachine* machine_;
  IoScheduler* ssd_;
  IoScheduler* hdd_;
  Tracer* tracer_ = nullptr;
  int32_t track_ = Tracer::kNoTrack;
  IndexServeConfig config_;
  Rng rng_;
  uint64_t seed_;
  JobId job_;
  Stats stats_;
  int inflight_ = 0;
  int64_t inflight_at_reset_ = 0;
  int64_t chunks_started_ = 0;  // cumulative, for the hedge budget
  bool crashed_ = false;
  // Every live (non-terminal) query, keyed by a server-local monotonic id
  // (trace ids can recur when a closed-loop client wraps its trace). Crash()
  // walks this to fail in-flight queries; weak so the registry never extends
  // a state's lifetime.
  std::map<uint64_t, std::weak_ptr<QueryState>> live_queries_;
  uint64_t next_live_key_ = 0;

  int64_t log_buffered_bytes_ = 0;   // accumulated, not yet in a flush
  int64_t log_inflight_bytes_ = 0;   // handed to the HDD, not yet durable
  std::deque<std::shared_ptr<QueryState>> log_waiters_;
  // Shared with each QueryState, which decrements it on destruction; outlives
  // the server if states do (which is itself the bug the counter detects).
  std::shared_ptr<int64_t> live_query_states_ = std::make_shared<int64_t>(0);
  // Recyclers for the per-query hot-path state: QueryState objects (together
  // with their shared_ptr control blocks, via std::allocate_shared) come from
  // the arena, and per-chunk slot vectors keep their heap capacity across
  // queries. Both are held by shared_ptr because a state can outlive the
  // server (a completion delivered after teardown): the allocator copy inside
  // each control block and the pool pointer inside each state keep the
  // recyclers alive until the last block is returned.
  std::shared_ptr<SlabArena> query_arena_ = std::make_shared<SlabArena>();
  std::shared_ptr<VectorPool<ChunkSlot>> chunk_pool_ =
      std::make_shared<VectorPool<ChunkSlot>>();
};

}  // namespace perfiso

#endif  // PERFISO_SRC_INDEXSERVE_INDEX_SERVER_H_
