#include "src/indexserve/index_server.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace perfiso {

struct IndexServer::QueryState {
  explicit QueryState(std::shared_ptr<int64_t> live) : live_counter(std::move(live)) {
    ++*live_counter;
  }
  ~QueryState() { --*live_counter; }
  QueryState(const QueryState&) = delete;
  QueryState& operator=(const QueryState&) = delete;

  // Destruction tracker shared with the owning server; lets tests assert that
  // no query state survives a drained simulation (lifetime regression hook).
  std::shared_ptr<int64_t> live_counter;
  QueryWork work;
  QueryDoneFn done;
  Rng rng{0};
  SimTime arrival = 0;
  int chunks_left = 0;
  std::vector<bool> chunk_done;
  std::vector<bool> chunk_hedged;
  // Armed hedge timer per chunk; cancelled the moment the chunk completes
  // (or the query reaches a terminal state), so hedge timers for fast
  // lookups — the overwhelming majority — leave the event queue instead of
  // firing as dead no-ops holding the query state alive.
  std::vector<EventHandle> hedge_events;
  int snippet_reads_left = 0;
  bool finished = false;
  uint64_t trace_ctx = 0;
  bool owns_trace = false;  // minted here (standalone) vs adopted from the TLA
};

namespace {

// Scales a microsecond cost by the query's size factor; at least 1 us.
SimDuration ScaledUs(double us, double size_factor) {
  return FromMicros(std::max(1.0, us * size_factor));
}

}  // namespace

IndexServer::IndexServer(SimMachine* machine, IoScheduler* ssd, IoScheduler* hdd,
                         const IndexServeConfig& config, uint64_t seed)
    : machine_(machine), ssd_(ssd), hdd_(hdd), config_(config), rng_(seed), seed_(seed) {
  assert(machine_ != nullptr && ssd_ != nullptr);
  job_ = machine_->CreateJob("indexserve");
  (void)machine_->AddJobMemory(job_, config_.working_set_bytes);
  ssd_->RegisterOwner(kIoOwnerIndexData, "indexserve-data", /*priority=*/0, /*weight=*/8);
  if (hdd_ != nullptr) {
    hdd_->RegisterOwner(kIoOwnerIndexLog, "indexserve-log", /*priority=*/0, /*weight=*/4);
  }
}

void IndexServer::ResetStats() { stats_ = Stats{}; }

void IndexServer::EnableTracing(Tracer* tracer, int process) {
  tracer_ = tracer;
  track_ = tracer->RegisterTrack(process, "indexserve");
}

void IndexServer::SubmitQuery(const QueryWork& work, QueryDoneFn done) {
  ++stats_.submitted;
  if (inflight_ >= config_.max_inflight) {
    ++stats_.dropped_admission;
    if (tracer_ != nullptr && work.trace_ctx == 0) {
      // Zero-length dropped trace so rejected queries appear in summaries.
      const SimTime now = machine_->sim()->Now();
      tracer_->EndTrace(tracer_->BeginTrace("isq", now), now, /*dropped=*/true);
    }
    if (done) {
      QueryResult result;
      result.id = work.id;
      result.submit_time = machine_->sim()->Now();
      result.finish_time = result.submit_time;
      result.dropped = true;
      done(result);
    }
    return;
  }
  ++inflight_;
  auto q = std::make_shared<QueryState>(live_query_states_);
  q->work = work;
  q->done = std::move(done);
  // Mix in the server identity: each machine holds a different index
  // partition, so the same query does *different* work on each leaf. This is
  // what makes the MLA see a max over independent leaf latencies [15].
  q->rng = Rng(work.seed ^ (seed_ * 0x9e3779b97f4a7c15ULL));
  q->arrival = machine_->sim()->Now();
  if (work.trace_ctx != 0) {
    q->trace_ctx = work.trace_ctx;
  } else if (tracer_ != nullptr) {
    q->trace_ctx = tracer_->BeginTrace("isq", q->arrival);
    q->owns_trace = true;
  }
  q->chunks_left = work.fanout;
  q->chunk_done.assign(static_cast<size_t>(work.fanout), false);
  q->chunk_hedged.assign(static_cast<size_t>(work.fanout), false);
  q->hedge_events.assign(static_cast<size_t>(work.fanout), EventHandle{});

  // Network receive path runs in kernel context (OS tenant, outside the job).
  machine_->SpawnThread("is-recv", TenantClass::kOs, JobId{},
                        ScaledUs(config_.receive_cpu_us, 1.0),
                        [this, q](SimTime) { StartParse(q); }, q->trace_ctx);
}

bool IndexServer::ExpireIfOverdue(const std::shared_ptr<QueryState>& q) {
  if (q->finished) {
    return true;
  }
  // Server-side shedding: once a query is past its deadline, further work is
  // wasted; the paper observes that heavy drops *reduce* primary CPU
  // utilization (§6.1.2), which implies abandoned processing.
  if (machine_->sim()->Now() - q->arrival <= config_.timeout) {
    return false;
  }
  q->finished = true;
  --inflight_;
  ++stats_.dropped_timeout;
  if (q->done) {
    QueryResult result;
    result.id = q->work.id;
    result.submit_time = q->arrival;
    result.finish_time = machine_->sim()->Now();
    result.latency_ms = ToMillis(result.finish_time - q->arrival);
    result.dropped = true;
    q->done(result);
  }
  if (q->owns_trace) {
    tracer_->EndTrace(q->trace_ctx, machine_->sim()->Now(), /*dropped=*/true);
  }
  // Terminal state: release the completion callback (it may capture caller
  // state) so the query holds nothing beyond its own fields.
  q->done = nullptr;
  CancelHedges(q);
  return true;
}

void IndexServer::CancelHedges(const std::shared_ptr<QueryState>& q) {
  for (EventHandle& hedge : q->hedge_events) {
    machine_->sim()->CancelOwned(hedge);
  }
}

void IndexServer::StartParse(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  // Parse and query-understanding run as one burst on the same pool thread
  // (no intermediate wake point).
  machine_->SpawnThread(
      "is-parse", TenantClass::kPrimary, job_,
      ScaledUs(config_.parse_cpu_us + config_.understand_cpu_us, q->work.size_factor),
      [this, q](SimTime) { StartFanout(q); }, q->trace_ctx);
}

void IndexServer::StartFanout(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  // All chunk workers wake within the same instant — this is the burst the
  // buffer cores exist to absorb.
  for (int chunk = 0; chunk < q->work.fanout; ++chunk) {
    StartChunk(q, chunk, /*is_hedge=*/false);
  }
}

void IndexServer::StartChunk(const std::shared_ptr<QueryState>& q, int chunk, bool is_hedge) {
  const SimDuration cpu = FromMicros(std::max(
      1.0, q->rng.LogNormal(std::log(config_.chunk_cpu_median_us), config_.chunk_cpu_sigma) *
               q->work.size_factor));
  const bool miss = q->rng.Bernoulli(config_.chunk_miss_rate);

  machine_->SpawnThread(
      "is-chunk", TenantClass::kPrimary, job_, cpu,
      [this, q, chunk, miss](SimTime) {
        if (q->finished) {
          return;
        }
        if (!miss) {
          ChunkDone(q, chunk);
          return;
        }
        IoRequest read;
        read.owner = kIoOwnerIndexData;
        read.op = IoOp::kRead;
        read.bytes = config_.chunk_read_bytes;
        read.sequential = false;
        read.trace_ctx = q->trace_ctx;
        read.on_complete = [this, q, chunk](SimTime) {
          machine_->SpawnThread(
              "is-chunk-post", TenantClass::kPrimary, job_,
              ScaledUs(config_.chunk_post_read_cpu_us, q->work.size_factor),
              [this, q, chunk](SimTime) { ChunkDone(q, chunk); }, q->trace_ctx);
        };
        ssd_->Submit(std::move(read));
      },
      q->trace_ctx);

  if (!is_hedge) {
    ++chunks_started_;
  }
  // Hedge slow lookups once: if this chunk has not completed after
  // hedge_delay, launch a duplicate lookup and take whichever finishes first.
  // The hedge budget caps the added load under systemic slowness.
  if (!is_hedge && config_.hedging_enabled) {
    q->hedge_events[static_cast<size_t>(chunk)] =
        machine_->sim()->ScheduleAfter(config_.hedge_delay, [this, q, chunk] {
          // The timer just fired; clear the stored handle so a later
          // ChunkDone/CancelHedges pass cannot poke at the recycled slot.
          q->hedge_events[static_cast<size_t>(chunk)] = EventHandle();
          const bool budget_ok =
              static_cast<double>(stats_.hedges_issued) <
              config_.hedge_budget_fraction * static_cast<double>(chunks_started_);
          if (!q->finished && !q->chunk_done[static_cast<size_t>(chunk)] &&
              !q->chunk_hedged[static_cast<size_t>(chunk)] && budget_ok) {
            q->chunk_hedged[static_cast<size_t>(chunk)] = true;
            ++stats_.hedges_issued;
            if (tracer_ != nullptr) {
              tracer_->Instant("hedge.issued", track_, machine_->sim()->Now());
            }
            StartChunk(q, chunk, /*is_hedge=*/true);
          }
        });
  }
}

void IndexServer::ChunkDone(const std::shared_ptr<QueryState>& q, int chunk) {
  if (q->finished || q->chunk_done[static_cast<size_t>(chunk)]) {
    return;  // expired, or the other copy of a hedged lookup already finished
  }
  q->chunk_done[static_cast<size_t>(chunk)] = true;
  // The lookup beat its hedge timer (the common case): pull the timer out of
  // the event queue instead of letting it fire as a dead no-op, and drop the
  // handle so the eventual CancelHedges sweep doesn't cancel it twice.
  machine_->sim()->CancelOwned(q->hedge_events[static_cast<size_t>(chunk)]);
  if (--q->chunks_left == 0) {
    StartRank(q);
  }
}

void IndexServer::StartRank(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  const SimDuration cpu = FromMicros(std::max(
      1.0, q->rng.LogNormal(std::log(config_.rank_cpu_median_us), config_.rank_cpu_sigma) *
               q->work.size_factor));
  machine_->SpawnThread("is-rank", TenantClass::kPrimary, job_, cpu,
                        [this, q](SimTime) { StartSnippets(q); }, q->trace_ctx);
}

void IndexServer::StartSnippets(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  if (config_.snippet_reads <= 0) {
    FinishQuery(q);
    return;
  }
  // Dependent document lookups: each read's target comes from the previous
  // one, so they serialize (this is deliberately on the critical path).
  q->snippet_reads_left = config_.snippet_reads;
  SubmitSnippetRead(q);
}

void IndexServer::SubmitSnippetRead(const std::shared_ptr<QueryState>& q) {
  // The continuation lives only in the in-flight IoRequest, never inside *q:
  // storing it in the query (as a reusable "snippet chain") would make the
  // state own a std::function that captures its own shared_ptr — a reference
  // cycle that leaks every query with snippet reads.
  IoRequest read;
  read.owner = kIoOwnerIndexData;
  read.op = IoOp::kRead;
  read.bytes = config_.snippet_read_bytes;
  read.sequential = false;
  read.trace_ctx = q->trace_ctx;
  read.on_complete = [this, q](SimTime) {
    if (q->finished) {
      return;
    }
    if (--q->snippet_reads_left > 0) {
      SubmitSnippetRead(q);
      return;
    }
    machine_->SpawnThread("is-snippet", TenantClass::kPrimary, job_,
                          ScaledUs(config_.snippet_cpu_us, q->work.size_factor),
                          [this, q](SimTime) { FinishQuery(q); }, q->trace_ctx);
  };
  ssd_->Submit(std::move(read));
}

void IndexServer::FinishQuery(const std::shared_ptr<QueryState>& q) {
  if (q->finished) {
    return;
  }
  // Completion requires a log append; if the log pipeline is backed up past
  // its cap (HDD saturated), the query stalls here until space frees up.
  if (hdd_ != nullptr &&
      log_buffered_bytes_ + log_inflight_bytes_ >= config_.log_buffer_cap_bytes) {
    ++stats_.log_stalls;
    if (tracer_ != nullptr) {
      tracer_->Instant("log.stall", track_, machine_->sim()->Now());
    }
    log_waiters_.push_back(q);
    return;
  }
  AppendLog(q);
  CompleteNow(q);
}

void IndexServer::CompleteNow(const std::shared_ptr<QueryState>& q) {
  if (q->finished) {
    return;
  }
  q->finished = true;
  --inflight_;
  CancelHedges(q);
  // Network send path (OS tenant).
  machine_->SpawnThread("is-send", TenantClass::kOs, JobId{},
                        ScaledUs(config_.send_cpu_us, 1.0), nullptr);

  QueryResult result;
  result.id = q->work.id;
  result.submit_time = q->arrival;
  result.finish_time = machine_->sim()->Now();
  const SimDuration latency = result.finish_time - q->arrival;
  result.latency_ms = ToMillis(latency);
  result.dropped = latency > config_.timeout;
  if (result.dropped) {
    ++stats_.dropped_timeout;
  } else {
    ++stats_.completed;
    stats_.latency_ms.Add(result.latency_ms);
  }
  if (q->owns_trace) {
    tracer_->EndTrace(q->trace_ctx, result.finish_time, result.dropped);
  }
  if (q->done) {
    q->done(result);
  }
  q->done = nullptr;
}

void IndexServer::AppendLog(const std::shared_ptr<QueryState>& q) {
  if (hdd_ == nullptr) {
    return;
  }
  log_buffered_bytes_ +=
      static_cast<int64_t>(static_cast<double>(config_.log_bytes_per_query) *
                           q->work.size_factor);
  MaybeFlushLog();
}

void IndexServer::MaybeFlushLog() {
  while (log_buffered_bytes_ >= config_.log_flush_bytes) {
    const int64_t flush_bytes = config_.log_flush_bytes;
    log_buffered_bytes_ -= flush_bytes;
    log_inflight_bytes_ += flush_bytes;
    IoRequest write;
    write.owner = kIoOwnerIndexLog;
    write.op = IoOp::kWrite;
    write.bytes = flush_bytes;
    write.sequential = true;
    write.on_complete = [this, flush_bytes](SimTime) {
      log_inflight_bytes_ -= flush_bytes;
      // Admit stalled completions now that buffer space is available.
      while (!log_waiters_.empty() &&
             log_buffered_bytes_ + log_inflight_bytes_ < config_.log_buffer_cap_bytes) {
        auto waiter = log_waiters_.front();
        log_waiters_.pop_front();
        AppendLog(waiter);
        CompleteNow(waiter);
      }
    };
    hdd_->Submit(std::move(write));
  }
}

}  // namespace perfiso
