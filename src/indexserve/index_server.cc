#include "src/indexserve/index_server.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace perfiso {

struct IndexServer::QueryState {
  QueryState(std::shared_ptr<int64_t> live, std::shared_ptr<VectorPool<ChunkSlot>> pool)
      : live_counter(std::move(live)), chunk_pool(std::move(pool)) {
    ++*live_counter;
  }
  ~QueryState() {
    --*live_counter;
    // Park the slot vector (with its capacity) for the next query. The pool
    // is held by shared_ptr, so a state outliving its server still has a
    // valid place to return the carcass to.
    chunk_pool->Put(std::move(chunks));
  }
  QueryState(const QueryState&) = delete;
  QueryState& operator=(const QueryState&) = delete;

  // Destruction tracker shared with the owning server; lets tests assert that
  // no query state survives a drained simulation (lifetime regression hook).
  std::shared_ptr<int64_t> live_counter;
  std::shared_ptr<VectorPool<ChunkSlot>> chunk_pool;
  QueryWork work;
  QueryDoneFn done;
  Rng rng{0};
  SimTime arrival = 0;
  uint64_t live_key = 0;  // key in the server's live-query registry
  int chunks_left = 0;
  // One slot per fan-out chunk (flags, attempt count, armed timers); the
  // vector itself is recycled through chunk_pool.
  std::vector<ChunkSlot> chunks;
  // Degrade-deadline timer (armed only when degrade_deadline > 0).
  EventHandle deadline_event;
  // Set when the deadline closed the fan-out at partial coverage: late chunk
  // completions are ignored from then on.
  bool fanout_closed = false;
  bool degraded = false;
  int chunks_served_at_close = 0;
  int snippet_reads_left = 0;
  bool finished = false;
  uint64_t trace_ctx = 0;
  bool owns_trace = false;  // minted here (standalone) vs adopted from the TLA
};

namespace {

// Scales a microsecond cost by the query's size factor; at least 1 us.
SimDuration ScaledUs(double us, double size_factor) {
  return FromMicros(std::max(1.0, us * size_factor));
}

}  // namespace

IndexServer::IndexServer(SimMachine* machine, IoScheduler* ssd, IoScheduler* hdd,
                         const IndexServeConfig& config, uint64_t seed)
    : machine_(machine), ssd_(ssd), hdd_(hdd), config_(config), rng_(seed), seed_(seed) {
  assert(machine_ != nullptr && ssd_ != nullptr);
  job_ = machine_->CreateJob("indexserve");
  (void)machine_->AddJobMemory(job_, config_.working_set_bytes);
  ssd_->RegisterOwner(kIoOwnerIndexData, "indexserve-data", /*priority=*/0, /*weight=*/8);
  if (hdd_ != nullptr) {
    hdd_->RegisterOwner(kIoOwnerIndexLog, "indexserve-log", /*priority=*/0, /*weight=*/4);
  }
}

void IndexServer::ResetStats() {
  stats_ = Stats{};
  inflight_at_reset_ = inflight_;
}

void IndexServer::EnableTracing(Tracer* tracer, int process) {
  tracer_ = tracer;
  track_ = tracer->RegisterTrack(process, "indexserve");
}

void IndexServer::SubmitQuery(const QueryWork& work, QueryDoneFn done) {
  ++stats_.submitted;
  if (crashed_) {
    // No events are delivered to a crashed machine: the connection is simply
    // refused. The cluster counts the leaf as failed for this query.
    ++stats_.dropped_crash;
    if (tracer_ != nullptr && work.trace_ctx == 0) {
      const SimTime now = machine_->sim()->Now();
      tracer_->EndTrace(tracer_->BeginTrace("isq", now), now, /*dropped=*/true);
    }
    if (done) {
      QueryResult result;
      result.id = work.id;
      result.submit_time = machine_->sim()->Now();
      result.finish_time = result.submit_time;
      result.dropped = true;
      result.chunks_total = work.fanout;
      done(result);
    }
    return;
  }
  if (inflight_ >= config_.max_inflight) {
    ++stats_.dropped_admission;
    if (tracer_ != nullptr && work.trace_ctx == 0) {
      // Zero-length dropped trace so rejected queries appear in summaries.
      const SimTime now = machine_->sim()->Now();
      tracer_->EndTrace(tracer_->BeginTrace("isq", now), now, /*dropped=*/true);
    }
    if (done) {
      QueryResult result;
      result.id = work.id;
      result.submit_time = machine_->sim()->Now();
      result.finish_time = result.submit_time;
      result.dropped = true;
      done(result);
    }
    return;
  }
  ++inflight_;
  // allocate_shared + the arena allocator puts the state and its control
  // block in one recycled block: the steady-state query path performs no
  // heap allocation for query state.
  auto q = std::allocate_shared<QueryState>(ArenaAllocator<QueryState>(query_arena_),
                                            live_query_states_, chunk_pool_);
  q->work = work;
  q->done = std::move(done);
  // Mix in the server identity: each machine holds a different index
  // partition, so the same query does *different* work on each leaf. This is
  // what makes the MLA see a max over independent leaf latencies [15].
  q->rng = Rng(work.seed ^ (seed_ * 0x9e3779b97f4a7c15ULL));
  q->arrival = machine_->sim()->Now();
  if (work.trace_ctx != 0) {
    q->trace_ctx = work.trace_ctx;
  } else if (tracer_ != nullptr) {
    q->trace_ctx = tracer_->BeginTrace("isq", q->arrival);
    q->owns_trace = true;
  }
  q->chunks_left = work.fanout;
  q->chunks = chunk_pool_->Get(static_cast<size_t>(work.fanout));
  if (config_.chunk_retry.enabled) {
    for (ChunkSlot& slot : q->chunks) {
      slot.attempts = 1;
    }
  }
  q->live_key = next_live_key_++;
  live_queries_.emplace(q->live_key, q);

  // Network receive path runs in kernel context (OS tenant, outside the job).
  machine_->SpawnThread("is-recv", TenantClass::kOs, JobId{},
                        ScaledUs(config_.receive_cpu_us, 1.0),
                        [this, q](SimTime) { StartParse(q); }, q->trace_ctx);
}

bool IndexServer::ExpireIfOverdue(const std::shared_ptr<QueryState>& q) {
  if (q->finished) {
    return true;
  }
  // Server-side shedding: once a query is past its deadline, further work is
  // wasted; the paper observes that heavy drops *reduce* primary CPU
  // utilization (§6.1.2), which implies abandoned processing.
  if (machine_->sim()->Now() - q->arrival <= config_.timeout) {
    return false;
  }
  q->finished = true;
  --inflight_;
  ++stats_.dropped_timeout;
  if (q->done) {
    QueryResult result;
    result.id = q->work.id;
    result.submit_time = q->arrival;
    result.finish_time = machine_->sim()->Now();
    result.latency_ms = ToMillis(result.finish_time - q->arrival);
    result.dropped = true;
    q->done(result);
  }
  if (q->owns_trace) {
    tracer_->EndTrace(q->trace_ctx, machine_->sim()->Now(), /*dropped=*/true);
  }
  // Terminal state: release the completion callback (it may capture caller
  // state) so the query holds nothing beyond its own fields.
  q->done = nullptr;
  DetachTerminal(q);
  return true;
}

void IndexServer::CancelHedges(const std::shared_ptr<QueryState>& q) {
  for (ChunkSlot& slot : q->chunks) {
    machine_->sim()->CancelOwned(slot.hedge_event);
  }
}

void IndexServer::CancelRetries(const std::shared_ptr<QueryState>& q) {
  for (ChunkSlot& slot : q->chunks) {
    machine_->sim()->CancelOwned(slot.retry_event);
  }
}

void IndexServer::DetachTerminal(const std::shared_ptr<QueryState>& q) {
  CancelHedges(q);
  CancelRetries(q);
  machine_->sim()->CancelOwned(q->deadline_event);
  live_queries_.erase(q->live_key);
}

void IndexServer::StartParse(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  // Parse and query-understanding run as one burst on the same pool thread
  // (no intermediate wake point).
  machine_->SpawnThread(
      "is-parse", TenantClass::kPrimary, job_,
      ScaledUs(config_.parse_cpu_us + config_.understand_cpu_us, q->work.size_factor),
      [this, q](SimTime) { StartFanout(q); }, q->trace_ctx);
}

void IndexServer::StartFanout(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  // All chunk workers wake within the same instant — this is the burst the
  // buffer cores exist to absorb.
  for (int chunk = 0; chunk < q->work.fanout; ++chunk) {
    StartChunk(q, chunk, /*is_hedge=*/false);
  }
  if (config_.degrade_deadline > 0) {
    const SimTime deadline = q->arrival + config_.degrade_deadline;
    if (deadline > machine_->sim()->Now()) {
      q->deadline_event = machine_->sim()->Schedule(deadline, [this, q] {
        q->deadline_event = EventHandle();
        MaybeDegrade(q);
      });
    }
  }
}

void IndexServer::MaybeDegrade(const std::shared_ptr<QueryState>& q) {
  if (q->finished || q->fanout_closed || q->chunks_left == 0) {
    return;
  }
  const int total = q->work.fanout;
  const int served = total - q->chunks_left;
  if (static_cast<double>(served) < config_.min_chunk_coverage * static_cast<double>(total)) {
    // Below the k-of-n floor: keep waiting — hedges/retries may still recover
    // the missing chunks, and the client timeout is the backstop.
    return;
  }
  q->fanout_closed = true;
  q->degraded = true;
  q->chunks_served_at_close = served;
  // The open attempts are abandoned: their timers leave the event queue and
  // late completions are ignored by the fanout_closed guard.
  CancelHedges(q);
  CancelRetries(q);
  if (tracer_ != nullptr) {
    tracer_->Instant("query.degraded", track_, machine_->sim()->Now());
  }
  StartRank(q);
}

void IndexServer::StartChunk(const std::shared_ptr<QueryState>& q, int chunk, bool is_hedge) {
  const SimDuration cpu = FromMicros(std::max(
      1.0, q->rng.LogNormal(std::log(config_.chunk_cpu_median_us), config_.chunk_cpu_sigma) *
               q->work.size_factor));
  const bool miss = q->rng.Bernoulli(config_.chunk_miss_rate);

  machine_->SpawnThread(
      "is-chunk", TenantClass::kPrimary, job_, cpu,
      [this, q, chunk, miss](SimTime) {
        if (q->finished) {
          return;
        }
        if (!miss) {
          ChunkDone(q, chunk);
          return;
        }
        IoRequest read;
        read.owner = kIoOwnerIndexData;
        read.op = IoOp::kRead;
        read.bytes = config_.chunk_read_bytes;
        read.sequential = false;
        read.trace_ctx = q->trace_ctx;
        read.on_complete = [this, q, chunk](SimTime) {
          machine_->SpawnThread(
              "is-chunk-post", TenantClass::kPrimary, job_,
              ScaledUs(config_.chunk_post_read_cpu_us, q->work.size_factor),
              [this, q, chunk](SimTime) { ChunkDone(q, chunk); }, q->trace_ctx);
        };
        ssd_->Submit(std::move(read));
      },
      q->trace_ctx);

  if (!is_hedge) {
    ++chunks_started_;
    if (config_.chunk_retry.enabled) {
      ArmRetryTimer(q, chunk);
    }
  }
  // Hedge slow lookups once: if this chunk has not completed after
  // hedge_delay, launch a duplicate lookup and take whichever finishes first.
  // The hedge budget caps the added load under systemic slowness.
  if (!is_hedge && config_.hedging_enabled) {
    q->chunks[static_cast<size_t>(chunk)].hedge_event =
        machine_->sim()->ScheduleAfter(config_.hedge_delay, [this, q, chunk] {
          ChunkSlot& slot = q->chunks[static_cast<size_t>(chunk)];
          // The timer just fired; clear the stored handle so a later
          // ChunkDone/CancelHedges pass cannot poke at the recycled slot.
          slot.hedge_event = EventHandle();
          const bool budget_ok =
              static_cast<double>(stats_.hedges_issued) <
              config_.hedge_budget_fraction * static_cast<double>(chunks_started_);
          if (!q->finished && !slot.done && !slot.hedged && budget_ok) {
            slot.hedged = true;
            ++stats_.hedges_issued;
            if (tracer_ != nullptr) {
              tracer_->Instant("hedge.issued", track_, machine_->sim()->Now());
            }
            StartChunk(q, chunk, /*is_hedge=*/true);
          }
        });
  }
}

void IndexServer::ChunkDone(const std::shared_ptr<QueryState>& q, int chunk) {
  ChunkSlot& slot = q->chunks[static_cast<size_t>(chunk)];
  if (q->finished || q->fanout_closed || slot.done) {
    return;  // expired, degraded, or the other copy of a hedged lookup finished
  }
  slot.done = true;
  // The lookup beat its hedge timer (the common case): pull the timer out of
  // the event queue instead of letting it fire as a dead no-op, and drop the
  // handle so the eventual CancelHedges sweep doesn't cancel it twice.
  machine_->sim()->CancelOwned(slot.hedge_event);
  machine_->sim()->CancelOwned(slot.retry_event);
  if (--q->chunks_left == 0) {
    machine_->sim()->CancelOwned(q->deadline_event);
    StartRank(q);
  }
}

void IndexServer::ArmRetryTimer(const std::shared_ptr<QueryState>& q, int chunk) {
  q->chunks[static_cast<size_t>(chunk)].retry_event =
      machine_->sim()->ScheduleAfter(config_.chunk_retry.timeout, [this, q, chunk] {
        q->chunks[static_cast<size_t>(chunk)].retry_event = EventHandle();
        OnChunkTimeout(q, chunk);
      });
}

void IndexServer::OnChunkTimeout(const std::shared_ptr<QueryState>& q, int chunk) {
  ChunkSlot& slot = q->chunks[static_cast<size_t>(chunk)];
  if (q->finished || q->fanout_closed || slot.done) {
    return;
  }
  ++stats_.timeouts_detected;
  const RetryPolicy& policy = config_.chunk_retry;
  const int attempts = slot.attempts;
  if (attempts >= policy.max_attempts) {
    ++stats_.retry_exhausted;
    return;  // budget spent; the degrade deadline / client timeout take over
  }
  // Capped exponential backoff with jitter from the query's own stream.
  const SimDuration delay = ComputeBackoff(policy, attempts - 1, &q->rng);
  if (machine_->sim()->Now() + delay >= q->arrival + config_.timeout) {
    // A retry that cannot answer before the client gives up is wasted work.
    ++stats_.retries_suppressed_deadline;
    return;
  }
  slot.retry_event =
      machine_->sim()->ScheduleAfter(delay, [this, q, chunk] {
        ChunkSlot& fired = q->chunks[static_cast<size_t>(chunk)];
        fired.retry_event = EventHandle();
        if (q->finished || q->fanout_closed || fired.done) {
          return;
        }
        ++stats_.retries_issued;
        ++fired.attempts;
        if (tracer_ != nullptr) {
          tracer_->Instant("chunk.retry", track_, machine_->sim()->Now());
        }
        // Re-issue as a duplicate lookup (like a hedge: no budget increment,
        // first answer wins) and arm the next per-attempt timeout.
        StartChunk(q, chunk, /*is_hedge=*/true);
        ArmRetryTimer(q, chunk);
      });
}

void IndexServer::StartRank(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  const SimDuration cpu = FromMicros(std::max(
      1.0, q->rng.LogNormal(std::log(config_.rank_cpu_median_us), config_.rank_cpu_sigma) *
               q->work.size_factor));
  machine_->SpawnThread("is-rank", TenantClass::kPrimary, job_, cpu,
                        [this, q](SimTime) { StartSnippets(q); }, q->trace_ctx);
}

void IndexServer::StartSnippets(const std::shared_ptr<QueryState>& q) {
  if (ExpireIfOverdue(q)) {
    return;
  }
  if (config_.snippet_reads <= 0) {
    FinishQuery(q);
    return;
  }
  // Dependent document lookups: each read's target comes from the previous
  // one, so they serialize (this is deliberately on the critical path).
  q->snippet_reads_left = config_.snippet_reads;
  SubmitSnippetRead(q);
}

void IndexServer::SubmitSnippetRead(const std::shared_ptr<QueryState>& q) {
  // The continuation lives only in the in-flight IoRequest, never inside *q:
  // storing it in the query (as a reusable "snippet chain") would make the
  // state own a std::function that captures its own shared_ptr — a reference
  // cycle that leaks every query with snippet reads.
  IoRequest read;
  read.owner = kIoOwnerIndexData;
  read.op = IoOp::kRead;
  read.bytes = config_.snippet_read_bytes;
  read.sequential = false;
  read.trace_ctx = q->trace_ctx;
  read.on_complete = [this, q](SimTime) {
    if (q->finished) {
      return;
    }
    if (--q->snippet_reads_left > 0) {
      SubmitSnippetRead(q);
      return;
    }
    machine_->SpawnThread("is-snippet", TenantClass::kPrimary, job_,
                          ScaledUs(config_.snippet_cpu_us, q->work.size_factor),
                          [this, q](SimTime) { FinishQuery(q); }, q->trace_ctx);
  };
  ssd_->Submit(std::move(read));
}

void IndexServer::FinishQuery(const std::shared_ptr<QueryState>& q) {
  if (q->finished) {
    return;
  }
  // Completion requires a log append; if the log pipeline is backed up past
  // its cap (HDD saturated), the query stalls here until space frees up.
  if (hdd_ != nullptr &&
      log_buffered_bytes_ + log_inflight_bytes_ >= config_.log_buffer_cap_bytes) {
    ++stats_.log_stalls;
    if (tracer_ != nullptr) {
      tracer_->Instant("log.stall", track_, machine_->sim()->Now());
    }
    log_waiters_.push_back(q);
    return;
  }
  AppendLog(q);
  CompleteNow(q);
}

void IndexServer::CompleteNow(const std::shared_ptr<QueryState>& q) {
  if (q->finished) {
    return;
  }
  q->finished = true;
  --inflight_;
  DetachTerminal(q);
  if (crashed_) {
    // Invariant violation recorded for the checker: a crashed server must not
    // deliver completions (Crash() fails every live query first).
    ++stats_.completions_while_crashed;
  }
  // Network send path (OS tenant).
  machine_->SpawnThread("is-send", TenantClass::kOs, JobId{},
                        ScaledUs(config_.send_cpu_us, 1.0), nullptr);

  QueryResult result;
  result.id = q->work.id;
  result.submit_time = q->arrival;
  result.finish_time = machine_->sim()->Now();
  const SimDuration latency = result.finish_time - q->arrival;
  result.latency_ms = ToMillis(latency);
  result.dropped = latency > config_.timeout;
  result.chunks_total = q->work.fanout;
  result.chunks_served = q->fanout_closed ? q->chunks_served_at_close : q->work.fanout;
  result.degraded = q->degraded;
  if (result.dropped) {
    ++stats_.dropped_timeout;
  } else {
    ++stats_.completed;
    stats_.latency_ms.Add(result.latency_ms);
    stats_.coverage.Add(result.Coverage());
    if (q->degraded) {
      ++stats_.completed_degraded;
    }
  }
  if (q->owns_trace) {
    tracer_->EndTrace(q->trace_ctx, result.finish_time, result.dropped);
  }
  if (q->done) {
    q->done(result);
  }
  q->done = nullptr;
}

void IndexServer::AppendLog(const std::shared_ptr<QueryState>& q) {
  if (hdd_ == nullptr) {
    return;
  }
  log_buffered_bytes_ +=
      static_cast<int64_t>(static_cast<double>(config_.log_bytes_per_query) *
                           q->work.size_factor);
  MaybeFlushLog();
}

void IndexServer::MaybeFlushLog() {
  while (log_buffered_bytes_ >= config_.log_flush_bytes) {
    const int64_t flush_bytes = config_.log_flush_bytes;
    log_buffered_bytes_ -= flush_bytes;
    log_inflight_bytes_ += flush_bytes;
    IoRequest write;
    write.owner = kIoOwnerIndexLog;
    write.op = IoOp::kWrite;
    write.bytes = flush_bytes;
    write.sequential = true;
    write.on_complete = [this, flush_bytes](SimTime) {
      log_inflight_bytes_ -= flush_bytes;
      // Admit stalled completions now that buffer space is available.
      while (!log_waiters_.empty() &&
             log_buffered_bytes_ + log_inflight_bytes_ < config_.log_buffer_cap_bytes) {
        auto waiter = log_waiters_.front();
        log_waiters_.pop_front();
        AppendLog(waiter);
        CompleteNow(waiter);
      }
    };
    hdd_->Submit(std::move(write));
  }
}

void IndexServer::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  const SimTime now = machine_->sim()->Now();
  if (tracer_ != nullptr) {
    tracer_->Instant("server.crash", track_, now);
  }
  // Fail every live query exactly once: conservation moves each of them to
  // dropped_crash. Steal the registry first — done callbacks may re-enter the
  // server (closed-loop clients resubmit on completion).
  auto live = std::move(live_queries_);
  live_queries_.clear();
  for (auto& entry : live) {
    auto q = entry.second.lock();
    if (!q || q->finished) {
      continue;
    }
    q->finished = true;
    --inflight_;
    ++stats_.dropped_crash;
    CancelHedges(q);
    CancelRetries(q);
    machine_->sim()->CancelOwned(q->deadline_event);
    if (q->owns_trace) {
      tracer_->EndTrace(q->trace_ctx, now, /*dropped=*/true);
    }
    if (q->done) {
      QueryResult result;
      result.id = q->work.id;
      result.submit_time = q->arrival;
      result.finish_time = now;
      result.latency_ms = ToMillis(now - q->arrival);
      result.dropped = true;
      result.chunks_total = q->work.fanout;
      result.chunks_served = q->work.fanout - q->chunks_left;
      auto done = std::move(q->done);
      q->done = nullptr;
      done(result);
    }
  }
  // The log pipeline dies with the process: buffered bytes are lost and
  // stalled completions were failed above. In-flight HDD writes are cancelled
  // by the rig (volume CancelAll), so their completions never fire.
  log_waiters_.clear();
  log_buffered_bytes_ = 0;
  log_inflight_bytes_ = 0;
}

void IndexServer::Restart() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  if (tracer_ != nullptr) {
    tracer_->Instant("server.restart", track_, machine_->sim()->Now());
  }
}

}  // namespace perfiso
