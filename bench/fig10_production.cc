// Figure 10: production results — a large IndexServe cluster serving live
// user queries while colocated with an ML-training batch job, over one hour.
// The paper reports three time series: load (QPS), P99 at the TLA, and mean
// CPU utilization across machines (averaging ~70%).
//
// Substitutions (documented in DESIGN.md): the paper's 650 machines are
// represented by a sampled 6-column x 2-row cluster (every machine is
// statistically identical, so per-machine load — not machine count — drives
// the metrics), and the hour is compressed into 30 intervals of 2 simulated
// seconds. The whole run is the registry's "fig10-production" scenario: a
// diurnal load shape driving one continuous non-homogeneous Poisson client
// (no per-interval client restarts), HDFS + ML training as the secondary,
// and blind isolation plus the ML disk cap.
#include <cstdio>

#include "bench/harness.h"
#include "src/cluster/cluster.h"

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("fig10_production");
  PrintHeader("Production colocation with ML training", "Fig. 10",
              "650-machine cluster, 1 hour: P99 at TLA stays flat while mean CPU "
              "utilization averages ~70%");

  // Unlike the scenario-grid benches, this is one continuous simulation
  // (state carries across intervals), so it cannot fan out across threads;
  // it keeps the runner's compute-then-report structure: all interval rows
  // are computed first, then printed/recorded in order.
  struct IntervalRow {
    double row_qps = 0;
    double tla_p99_ms = 0;
    double busy = 0;
    double ml_progress = 0;
  };
  const int intervals = std::max(6, static_cast<int>(30 * BenchScale()));
  const SimDuration interval_len = 2 * kSecond;

  ScenarioSpec spec = MustFindScenario("fig10-production");
  // One diurnal period spans the (scale-dependent) compressed hour.
  spec.load.diurnal_period_sec = ToSeconds(intervals * interval_len);
  spec.measure = intervals * interval_len;

  auto run = [intervals, interval_len, &spec] {
    std::vector<IntervalRow> rows;
    Simulator sim;
    Cluster cluster(&sim, MakeClusterOptions(spec));
    ApplyScenarioTenants(&cluster, spec);

    Rng trace_rng(spec.trace_seed);
    auto trace = GenerateTrace(TraceSpec{}, spec.trace_count, &trace_rng);
    OpenLoopClient client(&sim, std::move(trace), spec.load, Rng(spec.client_seed),
                          [&cluster](const QueryWork& work, SimTime) {
                            cluster.SubmitQuery(work);
                          });
    client.Run(0, spec.measure);

    double prev_progress = 0;
    for (int interval = 0; interval < intervals; ++interval) {
      cluster.ResetStats();
      const auto snaps = cluster.SnapshotAll();
      sim.RunUntil(sim.Now() + interval_len);

      IntervalRow row;
      row.row_qps =
          spec.load.RateAt(interval * interval_len + interval_len / 2);  // midpoint
      row.tla_p99_ms = cluster.TlaLatency().P99();
      row.busy = cluster.MeanBusyFractionSince(snaps);
      double progress = 0;
      cluster.ForEachIndexNode([&](IndexNodeRig& node) {
        progress += node.ml_training() != nullptr ? node.ml_training()->Progress() : 0;
      });
      row.ml_progress = progress - prev_progress;
      prev_progress = progress;
      rows.push_back(row);
    }
    return rows;
  };
  const std::vector<IntervalRow> rows = run();

  std::printf("%8s %10s %12s %12s %14s\n", "minute", "QPS/row", "TLA p99(ms)", "busy(%)",
              "ml-progress(s)");
  double total_busy = 0;
  for (int interval = 0; interval < intervals; ++interval) {
    const IntervalRow& row = rows[static_cast<size_t>(interval)];
    total_busy += row.busy;
    std::printf("%8d %10.0f %12.2f %11.1f%% %14.1f\n", 2 * interval, row.row_qps / 2,
                row.tla_p99_ms, row.busy * 100, row.ml_progress);
    ReportRow("minute=" + std::to_string(2 * interval),
              {
                  {"qps_per_machine", row.row_qps / 2},
                  {"tla_p99_ms", row.tla_p99_ms},
                  {"busy", row.busy},
                  {"ml_progress_core_s", row.ml_progress},
              });
  }
  std::printf("\nmean CPU utilization over the run: %.1f%%   (paper: ~70%%)\n",
              100 * total_busy / intervals);
  ReportRow("summary", {{"mean_busy", total_busy / intervals}});
  return 0;
}
