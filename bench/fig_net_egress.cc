// Network egress isolation: the network analogue of Fig. 5.
//
// Every index machine runs an HDFS-replication-style network bully
// (src/workload/ NetworkBully) that streams bulk blocks to random peers.
// Uncapped, the bully's traffic floods the victims' NIC RX links and the
// oversubscribed ToR uplinks — MLA fan-in incast lands behind megabytes of
// batch blocks and the TLA tail collapses, even though the bully's *own*
// machine keeps its primary egress safe in the NIC priority queues. The
// static egress cap of §3.2 (PerfIso's `net.egress_rate_cap_bps`) shapes the
// bully at every source, which restores the cluster tail end to end while
// the bully keeps exactly its allotted bandwidth.
//
// Reported per scenario: per-layer latency (leaf/MLA/TLA), secondary egress
// throughput per machine, and bully goodput. Expectation: TLA P99 degrades
// >= 2x uncapped and returns to within 10% of the bully-free baseline under
// the cap, with secondary egress held at the cap.
#include <cstdio>

#include "bench/harness.h"
#include "src/cluster/cluster.h"

namespace {

using namespace perfiso;

constexpr double kEgressCapBps = 50e6;  // 50 MB/s of a 1.25 GB/s NIC

struct NetResult {
  double leaf_p99 = 0;
  double mla_p99 = 0;
  double tla_avg = 0;
  double tla_p95 = 0;
  double tla_p99 = 0;
  double secondary_egress_bps_per_machine = 0;  // serialized on NIC TX
  double bully_goodput_bps_per_machine = 0;     // delivered end to end
  int64_t completed = 0;
};

NetResult RunScenario(bool bully, double egress_cap_bps) {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{8, 2, 8};

  // The fabric comes from the PerfIso config's net.* knobs — the same
  // key=value file Autopilot would distribute describes the network.
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  config.blind.buffer_cores = 8;
  config.egress_rate_cap_bps = egress_cap_bps;
  options.fabric = config.net;

  Cluster cluster(&sim, options);
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    IndexNodeRig& node = cluster.index_node(i);
    node.StartHdfsClient(HdfsClient::Options{});
    if (bully) {
      NetworkBully::Options net;
      // HDFS replication streams its 64-128 MB blocks as ~1 MB pipeline
      // sub-blocks; with store-and-forward hops the sub-block size is also
      // the burst a victim's RX link absorbs per transfer.
      net.block_bytes = 1024 * 1024;
      net.streams = 8;
      for (int p = 0; p < cluster.NumIndexNodes(); ++p) {
        if (p != i) {
          net.peers.push_back(cluster.index_endpoint(p));
        }
      }
      node.StartNetworkBully(&cluster.fabric(), cluster.index_endpoint(i), net);
    }
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }

  Rng trace_rng(1717);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/3000, Rng(18),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster.SubmitQuery(work);
                        });

  const SimDuration warmup = kSecond / 2;
  const auto measure = static_cast<SimDuration>(4 * kSecond * bench::BenchScale());
  client.Run(0, warmup + measure);
  sim.RunUntil(warmup);
  cluster.ResetStats();
  int64_t bully_bytes_then = 0;
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    if (NetworkBully* b = cluster.index_node(i).network_bully()) {
      bully_bytes_then += b->bytes_delivered();
    }
  }
  sim.RunUntil(warmup + measure);

  NetResult result;
  result.leaf_p99 = cluster.MergedLeafLatency().P99();
  result.mla_p99 = cluster.MlaLatency().P99();
  result.tla_avg = cluster.TlaLatency().Mean();
  result.tla_p95 = cluster.TlaLatency().P95();
  result.tla_p99 = cluster.TlaLatency().P99();
  result.completed = cluster.queries_completed();
  const double window_sec = ToSeconds(measure);
  const double machines = cluster.NumIndexNodes();
  result.secondary_egress_bps_per_machine =
      static_cast<double>(cluster.SecondaryEgressBytes()) / window_sec / machines;
  int64_t bully_bytes = 0;
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    if (NetworkBully* b = cluster.index_node(i).network_bully()) {
      bully_bytes += b->bytes_delivered();
    }
  }
  result.bully_goodput_bps_per_machine =
      static_cast<double>(bully_bytes - bully_bytes_then) / window_sec / machines;
  return result;
}

void PrintNet(const char* label, const NetResult& r) {
  bench::ReportRow(label, {
                              {"leaf_p99_ms", r.leaf_p99},
                              {"mla_p99_ms", r.mla_p99},
                              {"tla_avg_ms", r.tla_avg},
                              {"tla_p95_ms", r.tla_p95},
                              {"tla_p99_ms", r.tla_p99},
                              {"secondary_egress_mbps", r.secondary_egress_bps_per_machine / 1e6},
                              {"bully_goodput_mbps", r.bully_goodput_bps_per_machine / 1e6},
                              {"completed", static_cast<double>(r.completed)},
                          });
  std::printf("%-26s | leaf/MLA/TLA p99: %7.2f %7.2f %7.2f | TLA avg %6.2f | "
              "egress %6.1f MB/s/machine | done %lld\n",
              label, r.leaf_p99, r.mla_p99, r.tla_p99, r.tla_avg,
              r.secondary_egress_bps_per_machine / 1e6, static_cast<long long>(r.completed));
}

}  // namespace

int main() {
  using namespace perfiso::bench;
  StartReport("fig_net_egress");
  PrintHeader("network bully vs the static egress cap", "net analogue of Fig. 5",
              "uncapped network bully >= 2x TLA P99; egress cap restores the tail to within "
              "10% of baseline while the bully holds the cap");

  // Independent cluster simulations; run across hardware threads, print in
  // input order.
  const std::vector<NetResult> results = RunParallel<NetResult>({
      [] { return RunScenario(/*bully=*/false, /*egress_cap_bps=*/0); },
      [] { return RunScenario(/*bully=*/true, /*egress_cap_bps=*/0); },
      [] { return RunScenario(/*bully=*/true, kEgressCapBps); },
  });
  const NetResult& baseline = results[0];
  const NetResult& uncapped = results[1];
  const NetResult& capped = results[2];
  PrintNet("baseline (no net bully)", baseline);
  PrintNet("net bully, uncapped", uncapped);
  PrintNet("net bully + egress cap", capped);

  std::printf("\nTLA P99: baseline %.2f ms -> uncapped %.2f ms (%.1fx) -> capped %.2f ms "
              "(%+.1f%% vs baseline)\n",
              baseline.tla_p99, uncapped.tla_p99, uncapped.tla_p99 / baseline.tla_p99,
              capped.tla_p99, (capped.tla_p99 / baseline.tla_p99 - 1) * 100);
  std::printf("secondary egress under cap: %.1f MB/s/machine (cap %.1f MB/s)\n",
              capped.secondary_egress_bps_per_machine / 1e6, kEgressCapBps / 1e6);
  return 0;
}
