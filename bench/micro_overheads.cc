// Micro-benchmarks for the mechanisms PerfIso relies on being cheap: the
// idle-core query, one controller poll, an affinity update, thread dispatch,
// and — since the event-engine overhaul — raw engine throughput. The paper's
// design requires "a low-latency, low-overhead means of obtaining CPU
// utilization information" (§3.1.1); the reproduction additionally requires
// the event engine itself to be off the critical path of every figure.
//
// The engine section compares the pooled/handle engine (src/sim/simulator.h)
// against LegacySimulator below — a faithful copy of the pre-overhaul engine
// (std::priority_queue of heap-allocated std::function events) kept in this
// binary as the recorded baseline. Heap allocations are counted via the
// global operator new replacement at the bottom of this file, so
// "allocations per event" is measured, not claimed.
//
// Results are recorded into BENCH_micro_overheads.json like every other
// bench. No external benchmark library is required.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <vector>

#include "bench/harness.h"
#include "src/perfiso/controller.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/workload/bullies.h"

// Counted by the operator new/delete replacements at file scope below.
extern std::atomic<uint64_t> g_heap_allocs;

namespace perfiso {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- The pre-overhaul event engine, verbatim ---------------------------------
//
// PR 1-3 shipped this engine: a binary priority_queue of events whose
// callbacks are std::function (heap-allocating for captures above the
// ~16-byte SSO), with no cancellation — dead events fire as no-ops. It is the
// in-binary baseline for the speedup row.
class LegacySimulator {
 public:
  using EventFn = std::function<void()>;

  SimTime Now() const { return now_; }

  void Schedule(SimTime when, EventFn fn) {
    if (when < now_) {
      when = now_;
    }
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(SimDuration delay, EventFn fn) { Schedule(now_ + delay, std::move(fn)); }

  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    event.fn();
    return true;
  }

  void RunUntilEmpty() {
    while (Step()) {
    }
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

// --- The previous pooled engine generation: 4-ary heap, no wheel -------------
//
// The same pooled records, generation-checked handles, eager cancel, and
// (time, seq) total order as src/sim/simulator.h before the two-band
// scheduler — with the 4-ary heap as the only priority structure. Kept in
// this binary so the wheel_vs_heap4 rows measure exactly the data-structure
// swap (O(1) bucket ops vs O(log n) sifts), not incidental engine
// differences.
class Heap4Simulator {
 public:
  struct Handle {
    uint32_t id = 0xffffffffu;
    uint32_t gen = 0;
  };

  SimTime Now() const { return now_; }

  template <typename Fn>
  Handle Schedule(SimTime when, Fn&& fn) {
    const uint32_t id = AllocSlot();
    Event& e = rec(id);
    e.time = when < now_ ? now_ : when;
    e.seq = next_seq_++;
    e.cb.Emplace(std::forward<Fn>(fn), &cb_heap_allocs_);
    HeapPush(id, e.time, e.seq);
    return Handle{id, e.gen};
  }
  template <typename Fn>
  Handle ScheduleAfter(SimDuration delay, Fn&& fn) {
    return Schedule(now_ + delay, std::forward<Fn>(fn));
  }

  bool Cancel(Handle h) {
    if ((h.id >> kSlabBits) >= slabs_.size()) {
      return false;
    }
    Event& e = rec(h.id);
    if (e.gen != h.gen || e.heap_pos < 0) {
      return false;
    }
    HeapRemoveAt(static_cast<size_t>(e.heap_pos));
    e.heap_pos = -1;
    ++e.gen;
    e.cb.Reset();
    free_ids_.push_back(h.id);
    return true;
  }

  bool Step() {
    if (heap_.empty()) {
      return false;
    }
    const uint32_t id = heap_.front().id;
    Event& e = rec(id);
    now_ = e.time;
    HeapRemoveAt(0);
    e.heap_pos = -1;
    ++e.gen;
    e.cb.Invoke();
    e.cb.Reset();
    free_ids_.push_back(id);
    return true;
  }

 private:
  static constexpr uint32_t kSlabBits = 8;
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;

  struct Event {
    SimTime time = 0;
    uint64_t seq = 0;
    uint32_t gen = 0;
    int32_t heap_pos = -1;
    EventCallback cb;
  };
  struct HeapItem {
    SimTime time;
    uint64_t seq;
    uint32_t id;
  };

  static bool Before(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  Event& rec(uint32_t id) { return slabs_[id >> kSlabBits][id & (kSlabSize - 1)]; }

  uint32_t AllocSlot() {
    if (free_ids_.empty()) {
      const auto base = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
      slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
      for (uint32_t i = kSlabSize; i > 0; --i) {
        free_ids_.push_back(base + i - 1);
      }
    }
    const uint32_t id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }

  void Place(size_t pos, const HeapItem& item) {
    heap_[pos] = item;
    rec(item.id).heap_pos = static_cast<int32_t>(pos);
  }

  void SiftUp(size_t pos) {
    const HeapItem item = heap_[pos];
    while (pos > 0) {
      const size_t parent = (pos - 1) >> 2;
      if (!Before(item, heap_[parent])) {
        break;
      }
      Place(pos, heap_[parent]);
      pos = parent;
    }
    Place(pos, item);
  }

  void SiftDown(size_t pos) {
    const HeapItem item = heap_[pos];
    const size_t n = heap_.size();
    for (;;) {
      const size_t first = 4 * pos + 1;
      if (first >= n) {
        break;
      }
      size_t best = first;
      const size_t last = std::min(first + 4, n);
      for (size_t child = first + 1; child < last; ++child) {
        if (Before(heap_[child], heap_[best])) {
          best = child;
        }
      }
      if (!Before(heap_[best], item)) {
        break;
      }
      Place(pos, heap_[best]);
      pos = best;
    }
    Place(pos, item);
  }

  void HeapPush(uint32_t id, SimTime time, uint64_t seq) {
    heap_.push_back(HeapItem{time, seq, id});
    rec(id).heap_pos = static_cast<int32_t>(heap_.size() - 1);
    SiftUp(heap_.size() - 1);
  }

  void HeapRemoveAt(size_t pos) {
    const size_t last = heap_.size() - 1;
    if (pos == last) {
      heap_.pop_back();
      return;
    }
    const HeapItem moved = heap_[last];
    heap_.pop_back();
    Place(pos, moved);
    SiftDown(pos);
    if (heap_[pos].id == moved.id) {
      SiftUp(pos);
    }
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t cb_heap_allocs_ = 0;
  std::vector<HeapItem> heap_;
  std::vector<std::unique_ptr<Event[]>> slabs_;
  std::vector<uint32_t> free_ids_;
};

// --- Engine throughput -------------------------------------------------------
//
// The workload is the shape every layer of this repo produces: each unit of
// work fires, arms a timeout guard far in the future (a hedge timer, a slice
// preemption, an I/O deadline), and schedules the next unit; when the work
// completes — long before the guard — the guard is obsolete.
//
//   * The pooled engine cancels the guard, which leaves the queue eagerly.
//   * The legacy engine cannot cancel: the guard stays queued for its full
//     delay and eventually fires as a generation-checked no-op (the exact
//     pre-overhaul SimMachine / PeriodicTask / hedge-timer pattern). At
//     steady state that doubles the events executed and inflates the heap to
//     guard_timeout/work_period entries per chain, so every push/pop pays a
//     much deeper sift plus one std::function heap allocation per event.
//
// Throughput is reported in *useful* (work) events per second, wall-clocked
// over the steady state.

constexpr SimDuration kWorkPeriod = 1000;          // 1 us between work items per chain
constexpr SimDuration kGuardTimeout = 10'000'000;  // 10 ms guard — the hedge delay (§2)

struct EngineScore {
  double useful_events_per_sec = 0;
  double allocs_per_event = 0;  // steady state, after the pool is warm
  uint64_t dead_fires = 0;      // guards that fired as no-ops
};

// Guard bodies: sized like real callbacks (above std::function's ~16-byte
// inline buffer, inside EventCallback::kInlineBytes).
struct PooledGuard {
  uint64_t* dead;
  uint64_t pad[3];
  void operator()() const { ++*dead; }
};

struct PooledWork {
  Simulator* sim;
  uint64_t* fired;
  uint64_t* dead;
  // Armed when this work item was scheduled; operator() below cancels it, so
  // the lifecycle lives with the scheduled callback, not a destructor.
  EventHandle guard;  // NOLINT(perfiso-LIFE-001)
  void operator()() const {
    ++*fired;
    sim->Cancel(guard);  // work beat its timeout: the guard leaves the queue
    const EventHandle next_guard =
        sim->ScheduleAfter(kGuardTimeout, PooledGuard{dead, {}});
    sim->ScheduleAfter(kWorkPeriod, PooledWork{sim, fired, dead, next_guard});
  }
};

// The same chain bodies against the previous engine generation, so the
// wheel_vs_heap4 rows isolate the priority-structure swap.
struct Heap4Guard {
  uint64_t* dead;
  uint64_t pad[3];
  void operator()() const { ++*dead; }
};

struct Heap4Work {
  Heap4Simulator* sim;
  uint64_t* fired;
  uint64_t* dead;
  Heap4Simulator::Handle guard;
  void operator()() const {
    ++*fired;
    sim->Cancel(guard);
    const Heap4Simulator::Handle next_guard =
        sim->ScheduleAfter(kGuardTimeout, Heap4Guard{dead, {}});
    sim->ScheduleAfter(kWorkPeriod, Heap4Work{sim, fired, dead, next_guard});
  }
};

struct LegacyGuard {
  const uint64_t* chain_gen;
  uint64_t gen;
  uint64_t* dead;
  void operator()() const {
    if (*chain_gen == gen) {  // never true: the work always completes first
      return;
    }
    ++*dead;  // dead no-op fire
  }
};

struct LegacyWork {
  LegacySimulator* sim;
  uint64_t* fired;
  uint64_t* chain_gen;
  uint64_t* dead;
  void operator()() const {
    ++*fired;
    ++*chain_gen;  // invalidate the outstanding guard (the gen-counter trick)
    sim->ScheduleAfter(kGuardTimeout, LegacyGuard{chain_gen, *chain_gen, dead});
    sim->ScheduleAfter(kWorkPeriod, *this);
  }
};

// Shared measurement loop: `sim` already has `chains` work chains scheduled;
// steps until `fired` crosses the warmup mark, then wall-clocks the next
// `measured_fires` useful events.
template <typename Sim>
EngineScore MeasureSteadyState(Sim& sim, const uint64_t& fired, const uint64_t& dead,
                               uint64_t warmup_fires, uint64_t measured_fires) {
  while (fired < warmup_fires) {
    sim.Step();
  }
  const uint64_t dead_before = dead;
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  const uint64_t target = warmup_fires + measured_fires;
  while (fired < target) {
    sim.Step();
  }
  const double elapsed = SecondsSince(start);
  const uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);

  EngineScore score;
  score.useful_events_per_sec = static_cast<double>(measured_fires) / elapsed;
  score.allocs_per_event = static_cast<double>(allocs_after - allocs_before) /
                           static_cast<double>(measured_fires);
  score.dead_fires = dead - dead_before;
  return score;
}

EngineScore MeasurePooledEngine(int chains, uint64_t warmup_fires, uint64_t measured_fires) {
  Simulator sim;
  uint64_t fired = 0;
  uint64_t dead = 0;
  for (int i = 0; i < chains; ++i) {
    const EventHandle guard =
        sim.Schedule(i + kGuardTimeout, PooledGuard{&dead, {}});
    sim.Schedule(i, PooledWork{&sim, &fired, &dead, guard});
  }
  return MeasureSteadyState(sim, fired, dead, warmup_fires, measured_fires);
}

EngineScore MeasureHeap4Engine(int chains, uint64_t warmup_fires, uint64_t measured_fires) {
  Heap4Simulator sim;
  uint64_t fired = 0;
  uint64_t dead = 0;
  for (int i = 0; i < chains; ++i) {
    const Heap4Simulator::Handle guard = sim.Schedule(i + kGuardTimeout, Heap4Guard{&dead, {}});
    sim.Schedule(i, Heap4Work{&sim, &fired, &dead, guard});
  }
  return MeasureSteadyState(sim, fired, dead, warmup_fires, measured_fires);
}

EngineScore MeasureLegacyEngine(int chains, uint64_t warmup_fires, uint64_t measured_fires) {
  LegacySimulator sim;
  uint64_t fired = 0;
  uint64_t dead = 0;
  std::vector<uint64_t> gens(static_cast<size_t>(chains), 0);
  for (int i = 0; i < chains; ++i) {
    sim.Schedule(i, LegacyWork{&sim, &fired, &gens[static_cast<size_t>(i)], &dead});
  }
  return MeasureSteadyState(sim, fired, dead, warmup_fires, measured_fires);
}

// Schedule/Cancel churn (no legacy counterpart: the old engine could not
// cancel at all — dead events fired as no-ops). Templated so the same churn
// runs against the wheel engine and the heap4 generation.
template <typename Sim>
double MeasureCancelThroughput(int batch, int rounds) {
  Sim sim;
  uint64_t sink = 0;
  auto arm = [&sim, &sink](int i) { return sim.ScheduleAfter(1000 + i, [&sink] { ++sink; }); };
  std::vector<decltype(arm(0))> handles(static_cast<size_t>(batch));
  const auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < batch; ++i) {
      handles[static_cast<size_t>(i)] = arm(i);
    }
    for (int i = 0; i < batch; ++i) {
      sim.Cancel(handles[static_cast<size_t>(i)]);
    }
  }
  const double elapsed = SecondsSince(start);
  if (sink != 0) {
    std::abort();  // every event must have been cancelled before firing
  }
  return static_cast<double>(batch) * rounds / elapsed;  // schedule+cancel pairs/sec
}

// --- PerfIso control-plane micro costs ---------------------------------------

struct ControllerRig {
  Simulator sim;
  MachineSpec spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimPlatform> platform;
  std::unique_ptr<CpuBully> bully;
  std::unique_ptr<PerfIsoController> controller;

  ControllerRig() {
    machine = std::make_unique<SimMachine>(&sim, spec, "m0");
    platform = std::make_unique<SimPlatform>(machine.get(), nullptr);
    const JobId job = machine->CreateJob("secondary");
    platform->AddSecondaryJob(job);
    bully = std::make_unique<CpuBully>(machine.get(), job, 48);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    controller = std::make_unique<PerfIsoController>(platform.get(), config);
    if (!controller->Initialize().ok()) {
      std::abort();
    }
  }
};

// Nanoseconds per call of `op`, amortized over enough iterations to be
// readable on a shared CI core.
template <typename Op>
double MeasureNsPerOp(int iterations, Op&& op) {
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    op(i);
  }
  return SecondsSince(start) * 1e9 / iterations;
}

}  // namespace
}  // namespace perfiso

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("micro_overheads");
  PrintHeader("Micro-overheads", "engine + control plane",
              "pooled event engine vs. the legacy std::function/priority_queue baseline, "
              "plus the cheap-syscall costs of §3.1.1");

  // Engine throughput: 32 concurrent work chains, each arming a timeout
  // guard per work item (the hedge/slice/deadline shape every layer emits).
  // Warmup runs past the guard horizon so the legacy engine is measured at
  // its steady state: guard_timeout/work_period queued dead events per chain.
  const int kChains = 32;
  const uint64_t kWarmup = 2 * kChains * static_cast<uint64_t>(kGuardTimeout / kWorkPeriod);
  const auto kMeasured = static_cast<uint64_t>(500'000 * BenchScale());

  const EngineScore legacy = MeasureLegacyEngine(kChains, kWarmup, kMeasured);
  const EngineScore pooled = MeasurePooledEngine(kChains, kWarmup, kMeasured);
  const EngineScore heap4 = MeasureHeap4Engine(kChains, kWarmup, kMeasured);
  const double speedup = pooled.useful_events_per_sec / legacy.useful_events_per_sec;
  const int kCancelRounds = static_cast<int>(200 * BenchScale());
  const double cancel_pairs = MeasureCancelThroughput<Simulator>(1024, kCancelRounds);
  const double heap4_cancel_pairs = MeasureCancelThroughput<Heap4Simulator>(1024, kCancelRounds);
  const double wheel_vs_heap4 = pooled.useful_events_per_sec / heap4.useful_events_per_sec;
  const double wheel_vs_heap4_cancel = cancel_pairs / heap4_cancel_pairs;

  std::printf("engine throughput (%d chains, 1 timeout guard per work item):\n", kChains);
  std::printf("  legacy  %10.2f M useful events/s   %5.2f heap allocs/event   %8llu dead fires\n",
              legacy.useful_events_per_sec / 1e6, legacy.allocs_per_event,
              static_cast<unsigned long long>(legacy.dead_fires));
  std::printf("  heap4   %10.2f M useful events/s   %5.2f heap allocs/event   %8llu dead fires\n",
              heap4.useful_events_per_sec / 1e6, heap4.allocs_per_event,
              static_cast<unsigned long long>(heap4.dead_fires));
  std::printf("  pooled  %10.2f M useful events/s   %5.2f heap allocs/event   %8llu dead fires\n",
              pooled.useful_events_per_sec / 1e6, pooled.allocs_per_event,
              static_cast<unsigned long long>(pooled.dead_fires));
  std::printf("  speedup %9.2fx   (acceptance floor: 5x)\n", speedup);
  std::printf("  wheel vs heap4 %6.2fx work chains, %.2fx schedule+cancel\n", wheel_vs_heap4,
              wheel_vs_heap4_cancel);
  std::printf("  schedule+cancel %6.2f M pairs/s (heap4: %.2f M; legacy: not cancellable)\n",
              cancel_pairs / 1e6, heap4_cancel_pairs / 1e6);
  if (speedup < 5.0) {
    std::printf("  WARNING: speedup below the 5x floor on this machine\n");
  }
  ReportRow("engine_throughput",
            {
                {"pooled_events_per_sec", pooled.useful_events_per_sec},
                {"legacy_events_per_sec", legacy.useful_events_per_sec},
                {"speedup", speedup},
                {"pooled_allocs_per_event_steady", pooled.allocs_per_event},
                {"legacy_allocs_per_event", legacy.allocs_per_event},
                {"pooled_dead_fires", static_cast<double>(pooled.dead_fires)},
                {"legacy_dead_fires", static_cast<double>(legacy.dead_fires)},
                {"cancel_pairs_per_sec", cancel_pairs},
            });
  // The data-structure swap in isolation: the same pooled records, handles,
  // and eager cancel, timing wheel vs the previous 4-ary-heap generation.
  ReportRow("wheel_vs_heap4",
            {
                {"heap4_events_per_sec", heap4.useful_events_per_sec},
                {"heap4_cancel_pairs_per_sec", heap4_cancel_pairs},
                {"wheel_vs_heap4_speedup", wheel_vs_heap4},
                {"wheel_vs_heap4_cancel_speedup", wheel_vs_heap4_cancel},
            });

  // Control-plane costs (the "syscalls" the controller's tight loop issues).
  const int kIters = static_cast<int>(200'000 * BenchScale());
  double idle_ns;
  double poll_ns;
  double affinity_ns;
  {
    ControllerRig rig;
    volatile int sink = 0;
    idle_ns = MeasureNsPerOp(kIters, [&](int) { sink += rig.platform->IdleCores().Count(); });
    poll_ns = MeasureNsPerOp(kIters, [&](int) { rig.controller->Poll(); });
    affinity_ns = MeasureNsPerOp(kIters / 10, [&](int i) {
      const int cores = (i & 1) != 0 ? 16 : 8;  // force a real update every call
      (void)rig.platform->SetSecondaryAffinity(CpuSet::Range(48 - cores, 48));
    });
  }
  double dispatch_ns;
  {
    // Cost of one thread spawn+dispatch+completion round trip in the machine.
    Simulator sim;
    MachineSpec spec;
    spec.context_switch = 0;
    SimMachine machine(&sim, spec, "m0");
    dispatch_ns = MeasureNsPerOp(kIters / 10, [&](int) {
      machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, 1000, nullptr);
      sim.RunUntilEmpty();
    });
  }

  std::printf("control plane:\n");
  std::printf("  idle-core query    %8.1f ns\n", idle_ns);
  std::printf("  controller poll    %8.1f ns\n", poll_ns);
  std::printf("  affinity update    %8.1f ns\n", affinity_ns);
  std::printf("  thread round trip  %8.1f ns\n", dispatch_ns);
  ReportRow("control_plane", {
                                 {"idle_query_ns", idle_ns},
                                 {"controller_poll_ns", poll_ns},
                                 {"affinity_update_ns", affinity_ns},
                                 {"thread_round_trip_ns", dispatch_ns},
                             });
  return 0;
}

// --- Allocation counting -----------------------------------------------------
//
// Replacing the global allocation functions lets the engine section report
// measured allocations per event. Counting is relaxed-atomic; the replacement
// otherwise forwards to malloc/free.
std::atomic<uint64_t> g_heap_allocs{0};

namespace {
void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
