// Micro-benchmarks (google-benchmark) for the mechanisms PerfIso relies on
// being cheap: the idle-core query, one controller poll, an affinity update,
// and raw event-queue throughput. The paper's design requires "a low-latency,
// low-overhead means of obtaining CPU utilization information" (§3.1.1).
#include <benchmark/benchmark.h>

#include "src/perfiso/controller.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/workload/bullies.h"

namespace perfiso {
namespace {

struct ControllerRig {
  Simulator sim;
  MachineSpec spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimPlatform> platform;
  std::unique_ptr<CpuBully> bully;
  std::unique_ptr<PerfIsoController> controller;

  ControllerRig() {
    machine = std::make_unique<SimMachine>(&sim, spec, "m0");
    platform = std::make_unique<SimPlatform>(machine.get(), nullptr);
    const JobId job = machine->CreateJob("secondary");
    platform->AddSecondaryJob(job);
    bully = std::make_unique<CpuBully>(machine.get(), job, 48);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    controller = std::make_unique<PerfIsoController>(platform.get(), config);
    if (!controller->Initialize().ok()) {
      std::abort();
    }
  }
};

void BM_IdleCoreQuery(benchmark::State& state) {
  ControllerRig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.platform->IdleCores());
  }
}
BENCHMARK(BM_IdleCoreQuery);

void BM_ControllerPoll(benchmark::State& state) {
  ControllerRig rig;
  for (auto _ : state) {
    rig.controller->Poll();
  }
}
BENCHMARK(BM_ControllerPoll);

void BM_AffinityUpdate(benchmark::State& state) {
  ControllerRig rig;
  int cores = 8;
  for (auto _ : state) {
    cores = cores == 8 ? 16 : 8;  // force a real update every iteration
    benchmark::DoNotOptimize(
        rig.platform->SetSecondaryAffinity(CpuSet::Range(48 - cores, 48)));
  }
}
BENCHMARK(BM_AffinityUpdate);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.Schedule(i, [] {});
    }
    sim.RunUntilEmpty();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_SchedulerDispatch(benchmark::State& state) {
  // Cost of one thread spawn+dispatch+completion round trip in the machine.
  Simulator sim;
  MachineSpec spec;
  spec.context_switch = 0;
  SimMachine machine(&sim, spec, "m0");
  for (auto _ : state) {
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, 1000, nullptr);
    sim.RunUntilEmpty();
  }
}
BENCHMARK(BM_SchedulerDispatch);

}  // namespace
}  // namespace perfiso

BENCHMARK_MAIN();
