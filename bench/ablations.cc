// Ablations of PerfIso's design choices (DESIGN.md §4). Not a paper figure;
// each block isolates one knob of blind isolation at 2,000 QPS with a
// 48-thread bully and reports p99 degradation + secondary work.
//
//   1. Buffer size sweep (B = 0..16): B=0 recovers work-conserving behaviour
//      and loses the tail; the paper's B=8 is where degradation flattens.
//   2. Poll interval sweep: slower polling reacts late to bursts.
//   3. Proportional vs unit step: unit steps converge too slowly to track
//      load swings.
//   4. Core placement: PackHigh/PackLow/Spread.
//   5. Poll/update split: update_on_every_poll reissues the mask every poll.
#include "bench/harness.h"

namespace {

using namespace perfiso;
using namespace perfiso::bench;

SingleBoxScenario BlindScenario(const std::function<void(PerfIsoConfig&)>& tweak) {
  SingleBoxScenario scenario;
  scenario.load = ConstantLoad(2000);
  scenario.tenants.cpu_bully_threads = 48;
  scenario.measure = 5 * kSecond;
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  tweak(config);
  scenario.perfiso = config;
  return scenario;
}

}  // namespace

int main() {
  StartReport("ablations");
  PrintHeader("Design-choice ablations", "DESIGN.md §4",
              "buffer size, poll interval, step policy, placement, update policy");

  // One parallel batch over every ablation row; sections print afterwards.
  std::vector<SingleBoxScenario> scenarios;
  SingleBoxScenario base;
  base.load = ConstantLoad(2000);
  base.measure = 5 * kSecond;
  scenarios.push_back(base);  // row 0: standalone

  const int kBuffers[] = {0, 2, 4, 8, 12, 16};
  for (int buffer : kBuffers) {
    scenarios.push_back(BlindScenario([&](PerfIsoConfig& c) { c.blind.buffer_cores = buffer; }));
  }
  const double kPollMs[] = {0.2, 1.0, 5.0, 20.0, 100.0};
  for (double ms : kPollMs) {
    scenarios.push_back(BlindScenario([&](PerfIsoConfig& c) { c.poll_interval = FromMillis(ms); }));
  }
  for (bool proportional : {true, false}) {
    scenarios.push_back(
        BlindScenario([&](PerfIsoConfig& c) { c.blind.proportional_step = proportional; }));
  }
  const struct {
    CorePlacement placement;
    const char* name;
  } kPlacements[] = {{CorePlacement::kPackHigh, "pack_high"},
                     {CorePlacement::kPackLow, "pack_low"},
                     {CorePlacement::kSpread, "spread"}};
  for (const auto& p : kPlacements) {
    scenarios.push_back(BlindScenario([&](PerfIsoConfig& c) { c.blind.placement = p.placement; }));
  }
  scenarios.push_back(BlindScenario([](PerfIsoConfig&) {}));  // update=on_demand
  scenarios.push_back(BlindScenario([](PerfIsoConfig& c) { c.blind.idle_deadband = 0; }));
  scenarios.push_back(BlindScenario([](PerfIsoConfig& c) { c.blind.update_on_every_poll = true; }));

  const std::vector<SingleBoxResult> results = RunScenarios(scenarios);

  size_t row = 0;
  const SingleBoxResult standalone = results[row++];
  RecordRow("standalone", standalone);
  std::printf("standalone p99: %.2f ms\n\n", standalone.p99_ms);

  std::printf("--- 1. buffer cores (B) ---\n");
  for (int buffer : kBuffers) {
    const SingleBoxResult& r = results[row++];
    RecordRow("buffer_cores=" + std::to_string(buffer), r);
    std::printf("  B=%-2d  p99 %+7.2f ms   secondary %5.1f%%   work %6.1f core-s\n", buffer,
                r.p99_ms - standalone.p99_ms, r.secondary_util * 100, r.secondary_progress);
  }

  std::printf("--- 2. poll interval ---\n");
  for (double ms : kPollMs) {
    const SingleBoxResult& r = results[row++];
    RecordRow("poll_interval_ms=" + std::to_string(ms), r);
    std::printf("  poll=%-6.1fms  p99 %+7.2f ms   secondary %5.1f%%\n", ms,
                r.p99_ms - standalone.p99_ms, r.secondary_util * 100);
  }

  std::printf("--- 3. step policy ---\n");
  for (bool proportional : {true, false}) {
    const SingleBoxResult& r = results[row++];
    RecordRow(proportional ? "step=proportional" : "step=unit", r);
    std::printf("  %-13s p99 %+7.2f ms   secondary %5.1f%%\n",
                proportional ? "proportional" : "unit-step", r.p99_ms - standalone.p99_ms,
                r.secondary_util * 100);
  }

  std::printf("--- 4. core placement ---\n");
  for (const auto& p : kPlacements) {
    const SingleBoxResult& r = results[row++];
    RecordRow(std::string("placement=") + p.name, r);
    std::printf("  %-10s p99 %+7.2f ms   secondary %5.1f%%\n", p.name,
                r.p99_ms - standalone.p99_ms, r.secondary_util * 100);
  }

  std::printf("--- 5. update policy ---\n");
  {
    const SingleBoxResult& on_demand = results[row++];
    const SingleBoxResult& no_deadband = results[row++];
    const SingleBoxResult& every_poll = results[row++];
    RecordRow("update=on_demand", on_demand);
    RecordRow("update=no_deadband", no_deadband);
    RecordRow("update=every_poll", every_poll);
    std::printf("  on-demand (deadband 2)   p99 %+7.2f ms  secondary %5.1f%%\n",
                on_demand.p99_ms - standalone.p99_ms, on_demand.secondary_util * 100);
    std::printf("  no deadband              p99 %+7.2f ms  secondary %5.1f%%\n",
                no_deadband.p99_ms - standalone.p99_ms, no_deadband.secondary_util * 100);
    std::printf("  update every poll        p99 %+7.2f ms  secondary %5.1f%%\n",
                every_poll.p99_ms - standalone.p99_ms, every_poll.secondary_util * 100);
  }
  return 0;
}
