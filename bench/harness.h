// Shared harness for the paper-reproduction benches.
//
// Each bench binary reproduces one figure of the paper's evaluation (§6) by
// running single-box or cluster scenarios and printing the same rows the
// figure reports, alongside the paper's reference values. Durations scale
// with the PERFISO_BENCH_SCALE environment variable (default 1.0).
//
// Scenarios are declarative ScenarioSpec values (src/workload/scenario.h): a
// load shape, a replay client, a tenant mix, and an optional PerfIso config.
// The registry below names the canonical ones so benches and tests enumerate
// them by name instead of hand-rolling structs.
#ifndef PERFISO_BENCH_HARNESS_H_
#define PERFISO_BENCH_HARNESS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/index_node.h"
#include "src/perfiso/perfiso_config.h"
#include "src/workload/query_trace.h"
#include "src/workload/scenario.h"

namespace perfiso {
namespace bench {

// Scale factor from PERFISO_BENCH_SCALE (clamped to [0.05, 100]).
double BenchScale();

// The measurement window RunSingleBox actually uses: the spec's `measure`
// scaled by BenchScale(), floored at one second.
SimDuration ScaledMeasure(const ScenarioSpec& scenario);

// Compresses the spec's timeline to the scaled window: `measure` becomes
// ScaledMeasure() and every one-shot shape feature (flash window, piecewise
// steps, the ramp's end) keeps its position *relative to the measurement
// window*, while the periods of repeating shapes (diurnal, square wave)
// shrink by the same factor. Identity at scale 1. RunSingleBox applies this
// itself, so a registry scenario measures its whole shape — spike, bursts,
// full diurnal period — at any PERFISO_BENCH_SCALE. Fault-plan events remap
// the same way: inject times like flash windows, durations by the factor, so
// a scaled run still sees its crash/degradation windows inside the window.
ScenarioSpec ScaleScenarioForBench(const ScenarioSpec& scenario);

// Builds the rig a single-box spec describes — node seeded from the spec,
// tenants started, PerfIso attached (abort on failure). Shared by
// RunSingleBox and continuous-run benches like fig02.
std::unique_ptr<IndexNodeRig> MakeSingleBoxRig(Simulator* sim, const ScenarioSpec& scenario,
                                               const IndexNodeOptions& node = IndexNodeOptions{});

// One single-machine colocation scenario (the setting of Figs. 4-8) — now the
// declarative spec itself; benches fill in the load shape and tenant mix.
using SingleBoxScenario = ScenarioSpec;

struct SingleBoxResult {
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double drop_fraction = 0;
  double primary_util = 0;
  double secondary_util = 0;
  double os_util = 0;
  double idle_fraction = 0;
  // Secondary work completed during the measurement window, in core-seconds.
  double secondary_progress = 0;
  int64_t hedges = 0;
  int64_t queries = 0;
  // Robustness metrics (src/fault): mean per-query chunk coverage over
  // completed queries (1.0 when nothing degraded, 0 when nothing completed),
  // degraded completions, chunk retries issued, and crash drops. All zero /
  // 1.0 in a healthy run; the invariant checker (run after every measurement
  // window) aborts the bench on any violation, so a result you can read is a
  // result whose conservation and budget invariants held.
  double coverage_mean = 0;
  int64_t degraded = 0;
  int64_t retries = 0;
  int64_t dropped_crash = 0;
  int64_t faults_injected = 0;
  // Order-sensitive digest of the latency recorder after the measurement
  // window — the golden-regression anchor (tests/bench_determinism_test.cc).
  uint64_t latency_digest = 0;
};

// --- Observability artifacts --------------------------------------------------
//
// When a spec enables obs.* (src/obs/obs.h), RunSingleBox builds a per-run
// ObsContext, registers every layer with its tracer, samples metrics over the
// run, and — if the caller passes an ObsArtifacts — exports the run's trace
// and metrics payloads. The tracer is passive, so an observed run produces
// bit-identical latency digests to an unobserved one (pinned by
// tests/bench_determinism_test.cc).
struct ObsArtifacts {
  bool enabled = false;      // set by RunSingleBox when the spec enabled obs
  std::string trace_json;    // Chrome-trace-event JSON (Perfetto-loadable)
  std::string metrics_json;  // TimeseriesSampler timeseries payload
  std::string attribution;   // P99-cohort table ("" when nothing was traced)
};

// The observability configuration benches use for their flagship traced run:
// slowest-k trace retention (the P99 cohort is what the attribution table
// explains; retaining every query would dwarf the BENCH_ report) with the
// default full-rate metrics sampling.
ScenarioSpec WithBenchObs(ScenarioSpec spec);

// Path of `filename` in the bench output directory (PERFISO_BENCH_OUT, or
// the working directory when unset).
std::string BenchOutPath(const std::string& filename);

// Writes TRACE_<name>.json / METRICS_<name>.json into the bench output
// directory and prints the tail-attribution table. No-op when `obs.enabled`
// is false, so benches call it unconditionally.
void WriteObsArtifacts(const std::string& name, const ObsArtifacts& obs);

// Runs one single-box spec (topology.columns must be 0). Aborts loudly on an
// invalid spec — benches are not in the error-propagation business.
SingleBoxResult RunSingleBox(const ScenarioSpec& scenario,
                             const IndexNodeOptions& node = IndexNodeOptions{},
                             ObsArtifacts* obs = nullptr);

// --- Scenario registry --------------------------------------------------------
//
// Canonical named scenarios: the figure settings (standalone, bully tiers,
// each isolation technique) plus the load-shape library (diurnal day, flash
// crowd, burst train, ramp, closed-loop saturation). Keyed by name;
// FindScenario returns NotFound for unknown names.

std::vector<std::string> ScenarioNames();
StatusOr<ScenarioSpec> FindScenario(const std::string& name);
// Bench-main variant: aborts with the status message on an unknown name.
ScenarioSpec MustFindScenario(const std::string& name);

// Sweep runner: resolves each name in the registry and runs the single-box
// specs through the parallel runner, returning results in input order.
// Aborts on unknown names or cluster specs.
std::vector<SingleBoxResult> RunNamedScenarios(const std::vector<std::string>& names);

// --- Cluster scenarios --------------------------------------------------------

// Builds ClusterOptions from a cluster spec (topology.columns > 0 required).
ClusterOptions MakeClusterOptions(const ScenarioSpec& scenario);

// Starts the spec's tenant mix and PerfIso config on every index node.
// Aborts if PerfIso fails to start (mirrors RunSingleBox).
void ApplyScenarioTenants(Cluster* cluster, const ScenarioSpec& scenario);

// --- Partition-parallel cluster runner ----------------------------------------
//
// RunClusterScenario drives one cluster spec end to end. When the spec sets
// sim_partitions >= 2 the cluster is sharded across that many simulator
// partitions (src/sim/parallel.h) running in conservative lockstep windows of
// width net.base_latency — the cross-partition latency floor, i.e. the PDES
// lookahead. Results are a pure function of (spec, partition count):
// bit-identical digests at any worker thread count (pinned by
// tests/cluster_partition_determinism_test.cc). Specs that need features the
// partitioned engine does not support — fault injection, tracing/obs, or a
// non-positive latency floor — fall back to a sequential run with a warning
// (fell_back_sequential below).

// Worker threads for partitioned runs: PERFISO_SIM_THREADS when set
// (1 = single-threaded lockstep), otherwise the hardware concurrency. Read
// each call so determinism tests can flip it at runtime.
int SimThreads();

struct ClusterRunResult {
  // Order-sensitive digests of the per-layer latency recorders — the
  // partition-determinism anchors.
  uint64_t leaf_digest = 0;
  uint64_t mla_digest = 0;
  uint64_t tla_digest = 0;
  uint64_t flow_digest = 0;  // primary-class fabric flow latency
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t degraded = 0;
  double tla_p99_ms = 0;
  double tla_mean_ms = 0;
  double mean_busy = 0;
  int64_t faults_injected = 0;
  uint64_t events_executed = 0;
  int partitions_used = 1;  // 1 = sequential
  int threads_used = 1;
  bool fell_back_sequential = false;  // partitioning requested but unsupported
};

ClusterRunResult RunClusterScenario(const ScenarioSpec& scenario);

// --- Parallel scenario runner ------------------------------------------------
//
// Scenario rows are embarrassingly parallel: each owns a fully isolated
// Simulator and seeds its RNGs deterministically, so a row's result is a pure
// function of its inputs — running rows across hardware threads produces
// bit-identical metrics to a sequential run (the determinism contract in
// DESIGN.md). Jobs must not print or touch shared mutable state; compute in
// the job, then print/record from the results vector in input order.

// Worker count: PERFISO_BENCH_THREADS when set (1 = force sequential),
// otherwise the hardware concurrency.
int BenchThreads();

// Runs every job (each returning a Result) and returns results in input
// order, regardless of which worker ran which job.
template <typename Result>
std::vector<Result> RunParallel(std::vector<std::function<Result()>> jobs) {
  std::vector<Result> results(jobs.size());
  const int workers =
      std::min<int>(BenchThreads(), static_cast<int>(jobs.size()));
  if (workers <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      results[i] = jobs[i]();
    }
    return results;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
        results[i] = jobs[i]();
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

// Runs single-box scenario rows in parallel (one isolated Simulator each);
// results come back in input order.
std::vector<SingleBoxResult> RunScenarios(const std::vector<ScenarioSpec>& scenarios);

// --- Machine-readable reports ------------------------------------------------
//
// Every bench binary calls StartReport("<name>") once at startup; rows are
// then accumulated (PrintRow records automatically) and serialized to
// BENCH_<name>.json when the process exits — this is the perf-baseline
// trajectory the ROADMAP tracks. The output directory defaults to the current
// working directory and can be overridden with PERFISO_BENCH_OUT.

// Opens the report and registers the at-exit writer. Safe to call once only.
void StartReport(const std::string& bench_name);
// Records one row of named metrics (generic form, for cluster-style benches).
void ReportRow(const std::string& label,
               const std::vector<std::pair<std::string, double>>& metrics);
// Records the standard single-box row (what PrintRow also does internally).
void RecordRow(const std::string& label, const SingleBoxResult& result);
// Serializes the report now; otherwise runs automatically at exit.
void FinishReport();

// --- Output helpers -----------------------------------------------------------

void PrintHeader(const std::string& title, const std::string& figure,
                 const std::string& paper_summary);
// Prints one labeled result row with the standard latency/util columns, and
// records it into the active report.
void PrintRow(const std::string& label, const SingleBoxResult& result);
void PrintRowHeader();
// "paper: ..." annotation line under a row.
void PrintPaperNote(const std::string& note);

}  // namespace bench
}  // namespace perfiso

#endif  // PERFISO_BENCH_HARNESS_H_
