// Figure 2: the utilization-over-the-day story. Bing index clusters idle at
// ~21% average CPU because they are provisioned for the diurnal peak and for
// sudden bursts (§1, §3.1, Fig. 2); PerfIso's pitch is harvesting that idle
// capacity without losing the burst-absorption buffer.
//
// Two parts, all rows computed through the parallel runner:
//  1. The diurnal day: the registry's "diurnal-no-isolation" and
//     "diurnal-blind" scenarios run continuously over one simulated day
//     (raised-cosine load, trough at the edges, peak mid-day), sampled per
//     interval. Under PerfIso the secondary harvests the troughs while the
//     peak-hour P99 stays within a few percent of a constant-rate-at-peak
//     baseline; without isolation the peak hours collapse.
//  2. The flash crowd: "flash-crowd-*" scenarios show the idle-core buffer
//     absorbing a 4x query spike — P99 degradation under blind isolation is
//     a tiny fraction of the no-isolation degradation.
//
// Per-day latency digests are printed so parallel and sequential runs can be
// compared bit-for-bit (PERFISO_BENCH_THREADS=1 forces sequential; the
// determinism test pins this).
#include <cinttypes>
#include <cstdio>

#include "bench/harness.h"

namespace {

using namespace perfiso;
using namespace perfiso::bench;

struct DayRow {
  double qps = 0;
  double p99_ms = 0;
  double primary_util = 0;
  double secondary_util = 0;
};

struct DayRun {
  std::vector<DayRow> rows;
  uint64_t digest = 0;     // order-sensitive digest over the whole day
  int64_t completed = 0;
};

// One continuous single-box simulation over a full diurnal period, sampled
// every `interval_len`. Pure function of its inputs (the parallel-runner
// contract): all seeds come from the spec.
DayRun RunDay(const ScenarioSpec& spec, int intervals, SimDuration interval_len) {
  Simulator sim;
  const std::unique_ptr<IndexNodeRig> rig_ptr = MakeSingleBoxRig(&sim, spec);
  IndexNodeRig& rig = *rig_ptr;

  Rng trace_rng(spec.trace_seed);
  auto trace = GenerateTrace(TraceSpec{}, spec.trace_count, &trace_rng);

  DayRun day;
  LatencyRecorder day_latency;
  OpenLoopClient client(&sim, std::move(trace), spec.load, Rng(spec.client_seed),
                        [&rig, &day, &day_latency](const QueryWork& work, SimTime) {
                          rig.server().SubmitQuery(
                              work, [&day, &day_latency](const QueryResult& result) {
                                if (!result.dropped) {
                                  day_latency.Add(result.latency_ms);
                                  ++day.completed;
                                }
                              });
                        });
  client.Run(0, intervals * interval_len);

  for (int interval = 0; interval < intervals; ++interval) {
    rig.server().ResetStats();
    const auto snap = rig.SnapshotUtilization();
    sim.RunUntil(sim.Now() + interval_len);
    DayRow row;
    row.qps = spec.load.RateAt(interval * interval_len + interval_len / 2);
    row.p99_ms = rig.server().stats().latency_ms.P99();
    row.primary_util = rig.UtilizationSince(snap, TenantClass::kPrimary);
    row.secondary_util = rig.UtilizationSince(snap, TenantClass::kSecondary);
    day.rows.push_back(row);
  }
  day.digest = day_latency.Digest();
  return day;
}

}  // namespace

int main() {
  StartReport("fig02_diurnal");
  PrintHeader("Diurnal load and burst absorption", "Fig. 2 + §3.1",
              "clusters average ~21% CPU provisioned for diurnal peaks and bursts; "
              "PerfIso harvests the troughs and the idle buffer absorbs spikes");

  const int intervals = std::max(8, static_cast<int>(24 * BenchScale()));
  const SimDuration interval_len = kSecond;

  auto day_spec = [&](const char* name) {
    ScenarioSpec spec = MustFindScenario(name);
    // One diurnal period spans the whole (scale-dependent) day.
    spec.load.diurnal_period_sec = ToSeconds(intervals * interval_len);
    return spec;
  };
  const ScenarioSpec no_iso = day_spec("diurnal-no-isolation");
  const ScenarioSpec blind = day_spec("diurnal-blind");

  // The constant-rate baseline the peak hour is judged against: same tenants
  // and isolation as diurnal-blind, but flat at the diurnal peak.
  ScenarioSpec peak_baseline = blind;
  peak_baseline.name = "peak-constant-blind";
  peak_baseline.load = ConstantLoad(blind.load.qps);
  peak_baseline.measure = 8 * kSecond;

  // Every row through the parallel runner: the two continuous days, the
  // constant baseline, and the flash-crowd trio.
  struct Job {
    DayRun day;                // set for the two day runs
    SingleBoxResult box;       // set for the single-box rows
  };
  std::vector<std::function<Job()>> jobs;
  jobs.emplace_back([&] { return Job{RunDay(no_iso, intervals, interval_len), {}}; });
  jobs.emplace_back([&] { return Job{RunDay(blind, intervals, interval_len), {}}; });
  jobs.emplace_back([&] { return Job{{}, RunSingleBox(peak_baseline)}; });
  // RunSingleBox compresses the flash timeline to the bench scale itself
  // (ScaleScenarioForBench), so the spike stays inside the smoke window.
  for (const char* name : {"flash-crowd-standalone", "flash-crowd-no-isolation",
                           "flash-crowd-blind"}) {
    jobs.emplace_back([spec = MustFindScenario(name)] { return Job{{}, RunSingleBox(spec)}; });
  }
  const std::vector<Job> results = RunParallel(std::move(jobs));
  const DayRun& day_no_iso = results[0].day;
  const DayRun& day_blind = results[1].day;
  const SingleBoxResult& baseline = results[2].box;

  // --- Part 1: the diurnal day ----------------------------------------------
  std::printf("%6s %8s | %12s %7s %7s | %12s %7s %7s\n", "hour", "QPS",
              "noiso p99", "prim%", "sec%", "blind p99", "prim%", "sec%");
  size_t peak_interval = 0;
  for (size_t i = 0; i < day_blind.rows.size(); ++i) {
    const DayRow& a = day_no_iso.rows[i];
    const DayRow& b = day_blind.rows[i];
    if (b.qps > day_blind.rows[peak_interval].qps) {
      peak_interval = i;
    }
    std::printf("%6zu %8.0f | %12.2f %6.1f%% %6.1f%% | %12.2f %6.1f%% %6.1f%%\n", i, b.qps,
                a.p99_ms, a.primary_util * 100, a.secondary_util * 100, b.p99_ms,
                b.primary_util * 100, b.secondary_util * 100);
    ReportRow("hour=" + std::to_string(i),
              {
                  {"qps", b.qps},
                  {"noiso_p99_ms", a.p99_ms},
                  {"noiso_secondary_util", a.secondary_util},
                  {"blind_p99_ms", b.p99_ms},
                  {"blind_primary_util", b.primary_util},
                  {"blind_secondary_util", b.secondary_util},
              });
  }

  const DayRow& peak = day_blind.rows[peak_interval];
  // The raised cosine troughs at both ends of the day; sample the *final*
  // interval, which is fully warmed up (interval 0 measures the controller
  // and tenants still converging from cold start).
  const DayRow& trough = day_blind.rows.back();
  std::printf("\npeak-hour p99 under PerfIso: %.2f ms vs constant-rate baseline %.2f ms "
              "(%+.1f%%; target: within +5%%)\n",
              peak.p99_ms, baseline.p99_ms,
              100 * (peak.p99_ms - baseline.p99_ms) / baseline.p99_ms);
  std::printf("harvested secondary utilization: trough %.1f%% vs peak %.1f%% "
              "(troughs are harvested)\n",
              trough.secondary_util * 100, peak.secondary_util * 100);
  std::printf("day digests (bit-identical across sequential/parallel runs): "
              "noiso=%016" PRIx64 " (%lld queries) blind=%016" PRIx64 " (%lld queries)\n",
              day_no_iso.digest, static_cast<long long>(day_no_iso.completed),
              day_blind.digest, static_cast<long long>(day_blind.completed));
  PrintPaperNote("Fig. 2: diurnal load, ~21% average CPU; blind isolation harvests idle "
                 "capacity without losing the peak");
  ReportRow("summary", {
                           {"peak_p99_ms", peak.p99_ms},
                           {"baseline_p99_ms", baseline.p99_ms},
                           {"trough_secondary_util", trough.secondary_util},
                           {"peak_secondary_util", peak.secondary_util},
                           {"noiso_digest_lo32", static_cast<double>(day_no_iso.digest &
                                                                     0xffffffffu)},
                           {"blind_digest_lo32", static_cast<double>(day_blind.digest &
                                                                     0xffffffffu)},
                       });

  // --- Part 2: the flash crowd ----------------------------------------------
  std::printf("\nflash crowd (1,500 QPS -> 6,000 QPS spike mid-window):\n");
  PrintRowHeader();
  const SingleBoxResult& fc_standalone = results[3].box;
  const SingleBoxResult& fc_no_iso = results[4].box;
  const SingleBoxResult& fc_blind = results[5].box;
  PrintRow("flash-crowd standalone", fc_standalone);
  PrintRow("flash-crowd no isolation", fc_no_iso);
  PrintRow("flash-crowd blind (B=8)", fc_blind);
  const double no_iso_degradation = fc_no_iso.p99_ms - fc_standalone.p99_ms;
  const double blind_degradation = fc_blind.p99_ms - fc_standalone.p99_ms;
  std::printf("\np99 degradation vs standalone: no-isolation %+.2f ms, blind %+.2f ms "
              "(buffer absorbs the spike)\n",
              no_iso_degradation, blind_degradation);
  ReportRow("flash_crowd", {
                               {"standalone_p99_ms", fc_standalone.p99_ms},
                               {"no_isolation_p99_ms", fc_no_iso.p99_ms},
                               {"blind_p99_ms", fc_blind.p99_ms},
                           });

  // --- Traced run -----------------------------------------------------------
  // One more diurnal-blind day with observability on: emits the Perfetto
  // trace + metrics timeseries artifacts and the P99-cohort attribution
  // table. The tracer is passive, so this run's digest is bit-identical to
  // an unobserved run of the same spec (tests/bench_determinism_test.cc).
  std::printf("\ntraced run (diurnal-blind, obs on):\n");
  PrintRowHeader();
  ObsArtifacts obs;
  const SingleBoxResult traced = RunSingleBox(WithBenchObs(blind), {}, &obs);
  PrintRow("diurnal-blind (traced)", traced);
  WriteObsArtifacts("fig02_diurnal", obs);
  return 0;
}
