// Figure 8 + §6.1.4 "Progress of the secondary": cross-technique comparison
// on a single machine at 2,000 QPS with a high (48-thread) bully.
//
//   8a: P99 latency — standalone, no isolation, blind isolation (B=8),
//       static CPU cores (8), CPU cycles (5%). Blind and cores protect the
//       tail; cycles and no-isolation do not.
//   8b: idle CPU — blind isolation reduces idle CPU by a further ~13%
//       compared to static cores.
//   8c: secondary progress — blind isolation lets the secondary do ~17% more
//       work than static cores; cycles manage only ~9% of unrestricted.
//
// The §6.1.4 progress table (blind 62%/25%, cores 45%/30%, cycles 9%/9% of
// unrestricted work at 2,000/4,000 QPS) is printed as well.
#include "bench/harness.h"

namespace {

perfiso::bench::SingleBoxScenario Base(double qps) {
  perfiso::bench::SingleBoxScenario scenario;
  scenario.load = perfiso::ConstantLoad(qps);
  scenario.tenants.cpu_bully_threads = 48;
  return scenario;
}

}  // namespace

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("fig08_comparison");
  PrintHeader("Comparison of isolation approaches", "Fig. 8a/8b/8c + §6.1.4",
              "blind & cores protect p99; blind has 13% less idle CPU and 17% more "
              "secondary work than cores; cycles fail");
  PrintRowHeader();

  struct Case {
    std::string label;
    SingleBoxResult result[2];  // per rate
  };
  std::vector<Case> cases;
  const double kRates[2] = {2000, 4000};

  // All technique rows (5 cases x 2 rates) plus the "best static cores"
  // progress rows (x 2) run as one parallel batch.
  std::vector<SingleBoxScenario> scenarios;
  cases.push_back(Case{"standalone", {}});
  for (int i = 0; i < 2; ++i) {
    SingleBoxScenario scenario;
    scenario.load = ConstantLoad(kRates[i]);
    scenarios.push_back(scenario);
  }
  cases.push_back(Case{"no isolation", {}});
  for (int i = 0; i < 2; ++i) {
    scenarios.push_back(Base(kRates[i]));
  }
  cases.push_back(Case{"blind isolation (B=8)", {}});
  for (int i = 0; i < 2; ++i) {
    auto scenario = Base(kRates[i]);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    config.blind.buffer_cores = 8;
    scenario.perfiso = config;
    scenarios.push_back(scenario);
  }
  cases.push_back(Case{"CPU cores (8 for secondary)", {}});
  for (int i = 0; i < 2; ++i) {
    auto scenario = Base(kRates[i]);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kStaticCores;
    config.static_secondary_cores = 8;
    scenario.perfiso = config;
    scenarios.push_back(scenario);
  }
  cases.push_back(Case{"CPU cycles (5%)", {}});
  for (int i = 0; i < 2; ++i) {
    auto scenario = Base(kRates[i]);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kCpuRateCap;
    config.cpu_rate_cap = 0.05;
    scenario.perfiso = config;
    scenarios.push_back(scenario);
  }
  // 8c / §6.1.4 "best" static-cores rows (24 cores at 2,000 QPS, 16 at 4,000).
  const int kBestCores[2] = {24, 16};
  for (int i = 0; i < 2; ++i) {
    auto scenario = Base(kRates[i]);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kStaticCores;
    config.static_secondary_cores = kBestCores[i];
    scenario.perfiso = config;
    scenarios.push_back(scenario);
  }

  const std::vector<SingleBoxResult> results = RunScenarios(scenarios);
  for (size_t c = 0; c < cases.size(); ++c) {
    cases[c].result[0] = results[2 * c];
    cases[c].result[1] = results[2 * c + 1];
  }
  SingleBoxResult cores_best[2] = {results[2 * cases.size()], results[2 * cases.size() + 1]};

  for (const Case& c : cases) {
    PrintRow(c.label + " @2000", c.result[0]);
  }
  std::printf("\nFig. 8a paper p99 (2,000 QPS): standalone 12, no-isolation 349, blind ~12, "
              "cores ~12, cycles ~35+ ms\n");
  std::printf("Fig. 8b paper idle CPU: standalone ~80%%, no-isolation ~0%%, blind ~17%%, "
              "cores ~30%%, cycles ~75%%\n\n");

  // 8c / §6.1.4: secondary progress relative to unrestricted colocation. The
  // paper reports each technique "at the point where latency degradation was
  // lowest for that experiment" — for static cores that is the largest
  // setting that still protects the SLO (the cores_best rows above).
  const double unrestricted[2] = {cases[1].result[0].secondary_progress,
                                  cases[1].result[1].secondary_progress};
  std::printf("%-34s %24s %24s\n", "secondary progress", "@2000 (frac of unrestr.)",
              "@4000 (frac of unrestr.)");
  auto print_progress = [&](const std::string& label, const SingleBoxResult r[2],
                            const char* note) {
    std::printf("%-34s %15.1fs (%4.0f%%) %15.1fs (%4.0f%%)   %s\n", label.c_str(),
                r[0].secondary_progress, 100 * r[0].secondary_progress / unrestricted[0],
                r[1].secondary_progress, 100 * r[1].secondary_progress / unrestricted[1],
                note);
  };
  print_progress("blind isolation (B=8)", cases[2].result, "paper: 62% / 25%");
  print_progress("CPU cores (best: 24 / 16)", cores_best, "paper: 45% / 30%");
  print_progress("CPU cycles (5%)", cases[4].result, "paper: 9% / 9%");
  return 0;
}
