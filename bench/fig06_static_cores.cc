// Figure 6: single machine, the secondary statically restricted to 24/16/8
// cores via job-object affinity (the OS-native alternative of §6.1.4).
// Reports latency degradation vs standalone (6a) and CPU utilization (6b).
//
// Paper shape: 8 cores protect the tail (like blind isolation) but strand
// idle capacity; 24/16 cores still degrade latency at peak. Static
// restriction must be provisioned for peak, wasting idle capacity off-peak
// (secondary gets at most ~17% of CPU at 4,000 QPS).
#include "bench/harness.h"

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("fig06_static_cores");
  PrintHeader("Static CPU core restriction", "Fig. 6a/6b",
              "24/16 cores degrade latency under load; 8 cores protect the tail but cap "
              "secondary work at ~17% of CPU under peak");
  PrintRowHeader();

  const double kRates[2] = {2000, 4000};
  std::vector<SingleBoxScenario> scenarios;
  for (int i = 0; i < 2; ++i) {
    SingleBoxScenario scenario;
    scenario.load = ConstantLoad(kRates[i]);
    scenarios.push_back(scenario);
  }
  for (int cores : {24, 16, 8}) {
    for (int i = 0; i < 2; ++i) {
      SingleBoxScenario scenario;
      scenario.load = ConstantLoad(kRates[i]);
      scenario.tenants.cpu_bully_threads = 48;
      PerfIsoConfig config;
      config.cpu_mode = CpuIsolationMode::kStaticCores;
      config.static_secondary_cores = cores;
      scenario.perfiso = config;
      scenarios.push_back(scenario);
    }
  }
  const std::vector<SingleBoxResult> results = RunScenarios(scenarios);

  const SingleBoxResult* baseline = results.data();  // rows 0-1
  for (int i = 0; i < 2; ++i) {
    PrintRow("standalone @" + std::to_string(static_cast<int>(kRates[i])), baseline[i]);
  }
  size_t row = 2;
  for (int cores : {24, 16, 8}) {
    for (int i = 0; i < 2; ++i) {
      const SingleBoxResult& result = results[row++];
      PrintRow("static " + std::to_string(cores) + " cores @" +
                   std::to_string(static_cast<int>(kRates[i])),
               result);
      std::printf("    degradation vs standalone: p50 %+0.2f ms  p95 %+0.2f ms  p99 %+0.2f ms\n",
                  result.p50_ms - baseline[i].p50_ms, result.p95_ms - baseline[i].p95_ms,
                  result.p99_ms - baseline[i].p99_ms);
    }
  }
  PrintPaperNote("paper: secondary claims up to 33% of CPU at 2k QPS but only ~17% with the "
                 "8-core setting needed for peak");
  return 0;
}
