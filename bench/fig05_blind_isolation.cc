// Figure 5: single machine, IndexServe colocated with a high (48-thread) CPU
// bully under PerfIso CPU blind isolation with 4 vs 8 buffer cores. Reports
// the latency *degradation* relative to standalone (5a) and the CPU
// utilization breakdown (5b).
//
// Paper shape: with 8 buffer cores the P99 degradation stays under 1 ms at
// both 2,000 and 4,000 QPS; 4 buffer cores show slightly higher degradation.
// The abstract's headline (average CPU utilization 21% -> 66% at off-peak)
// is also derived from this experiment.
#include "bench/harness.h"

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("fig05_blind_isolation");
  PrintHeader("CPU blind isolation", "Fig. 5a/5b",
              "8 buffer cores keep p99 degradation < 1 ms; avg CPU util rises 21% -> 66% "
              "at 2,000 QPS");
  PrintRowHeader();

  // Standalone baselines (rows 0-1) + blind-isolation rows, all run in
  // parallel; printed afterwards in input order.
  const double kRates[2] = {2000, 4000};
  std::vector<SingleBoxScenario> scenarios;
  for (int i = 0; i < 2; ++i) {
    SingleBoxScenario scenario;
    scenario.load = ConstantLoad(kRates[i]);
    scenarios.push_back(scenario);
  }
  for (int buffer_cores : {4, 8}) {
    for (int i = 0; i < 2; ++i) {
      SingleBoxScenario scenario;
      scenario.load = ConstantLoad(kRates[i]);
      scenario.tenants.cpu_bully_threads = 48;
      PerfIsoConfig config;
      config.cpu_mode = CpuIsolationMode::kBlindIsolation;
      config.blind.buffer_cores = buffer_cores;
      scenario.perfiso = config;
      scenarios.push_back(scenario);
    }
  }
  const std::vector<SingleBoxResult> results = RunScenarios(scenarios);

  const SingleBoxResult* baseline = results.data();  // rows 0-1
  for (int i = 0; i < 2; ++i) {
    PrintRow("standalone @" + std::to_string(static_cast<int>(kRates[i])), baseline[i]);
  }
  size_t row = 2;
  for (int buffer_cores : {4, 8}) {
    for (int i = 0; i < 2; ++i) {
      const SingleBoxResult& result = results[row++];
      const std::string label = "blind B=" + std::to_string(buffer_cores) + " @" +
                                std::to_string(static_cast<int>(kRates[i]));
      PrintRow(label, result);
      std::printf("    degradation vs standalone: p50 %+0.2f ms  p95 %+0.2f ms  p99 %+0.2f ms"
                  "  | total util %.1f%% (standalone %.1f%%)\n",
                  result.p50_ms - baseline[i].p50_ms, result.p95_ms - baseline[i].p95_ms,
                  result.p99_ms - baseline[i].p99_ms, (1 - result.idle_fraction) * 100,
                  (1 - baseline[i].idle_fraction) * 100);
      PrintPaperNote(buffer_cores == 8 ? "p99 degradation < 1 ms; util 21% -> 66% at 2k"
                                       : "4 buffer cores: degradation up to ~1.5 ms");
    }
  }
  return 0;
}
