// Figure 7: single machine, the secondary statically restricted to 45%/25%/5%
// of CPU cycles via the job object's hard rate cap (§6.1.4). Reports latency
// degradation (7a), CPU utilization (7b), and dropped queries (7c).
//
// Paper shape: cycle caps fail to protect the tail — even a 5% cap causes
// latency degradation, and *some* fraction of queries is always dropped
// (from ~50% down to ~1%), because the capped bully still occupies every
// core during its duty window and delays woken primary workers.
#include "bench/harness.h"

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("fig07_cpu_cycles");
  PrintHeader("Static CPU cycle restriction", "Fig. 7a/7b/7c",
              "45%/25%/5% cycle caps all degrade latency and always drop queries "
              "(50% .. ~1%)");
  PrintRowHeader();

  const double kRates[2] = {2000, 4000};
  std::vector<SingleBoxScenario> scenarios;
  for (int i = 0; i < 2; ++i) {
    SingleBoxScenario scenario;
    scenario.load = ConstantLoad(kRates[i]);
    scenarios.push_back(scenario);
  }
  for (double cap : {0.45, 0.25, 0.05}) {
    for (int i = 0; i < 2; ++i) {
      SingleBoxScenario scenario;
      scenario.load = ConstantLoad(kRates[i]);
      scenario.tenants.cpu_bully_threads = 48;
      PerfIsoConfig config;
      config.cpu_mode = CpuIsolationMode::kCpuRateCap;
      config.cpu_rate_cap = cap;
      scenario.perfiso = config;
      scenarios.push_back(scenario);
    }
  }
  const std::vector<SingleBoxResult> results = RunScenarios(scenarios);

  const SingleBoxResult* baseline = results.data();  // rows 0-1
  for (int i = 0; i < 2; ++i) {
    PrintRow("standalone @" + std::to_string(static_cast<int>(kRates[i])), baseline[i]);
  }
  size_t row = 2;
  for (double cap : {0.45, 0.25, 0.05}) {
    for (int i = 0; i < 2; ++i) {
      const SingleBoxResult& result = results[row++];
      PrintRow("cycles " + std::to_string(static_cast<int>(cap * 100)) + "% @" +
                   std::to_string(static_cast<int>(kRates[i])),
               result);
      std::printf("    degradation: p99 %+0.2f ms  dropped %.1f%%\n",
                  result.p99_ms - baseline[i].p99_ms, result.drop_fraction * 100);
    }
  }
  PrintPaperNote("paper Fig. 7c: dropped queries range from ~50% (45% cap at peak) to ~1% "
                 "(5% cap)");
  return 0;
}
