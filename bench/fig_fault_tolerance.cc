// Fault tolerance: graceful degradation under injected faults (DESIGN.md §8).
//
// Not a paper figure — the paper's cluster (§5.3) assumes healthy machines —
// but the serving stack it models (TLA/MLA fan-out where "the slowest leaf
// dictates the response time") only stays usable in production because a
// crashed leaf costs *coverage*, not latency: the aggregator answers from the
// leaves that did respond instead of waiting on the dead one.
//
// Two experiments:
//   A. Cluster, one crashed leaf — a 6x2 cluster under the Fig. 9b colocation
//      (48-thread CPU bully + blind isolation) with one index node crashed
//      for the middle half of the measurement window. Expectation: queries
//      routed to the crashed node's row complete degraded (5/6 leaf
//      coverage), mean coverage drops, and the P99 of *surviving* queries
//      stays within tolerance of the healthy run.
//   B. Single box, degraded disk — the registry's fault-disk-degrade-blind
//      spec (40x SSD/HDD latency for a two-second window) run three ways:
//      fault disabled, fault with no resilience (slow chunks ride to the
//      client timeout), and fault with the robustness stack on — per-chunk
//      retry with capped exponential backoff plus the k-of-n degrade
//      deadline. The resilient run trades full coverage for a bounded tail.
//
// Every run finishes with an InvariantChecker pass (conservation, no
// completions while crashed, budget caps, coverage bounds); a violation
// aborts the bench, so any printed row is a checked row.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "src/cluster/cluster.h"
#include "src/fault/fault_injector.h"
#include "src/fault/invariant_checker.h"
#include "src/obs/obs.h"
#include "src/obs/trace_export.h"

namespace {

using namespace perfiso;

struct ClusterRow {
  double tla_p99_ms = 0;
  double tla_p95_ms = 0;
  double coverage_mean = 1.0;
  int64_t completed = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  int64_t faults_injected = 0;
};

// Runs the Fig. 9b-style colocated cluster with `plan` armed; when `obs` is
// non-null the run carries tracing (fault instants land on the "faults"
// track) and exports the artifacts.
ClusterRow RunClusterWithFaults(const FaultPlan& plan, bench::ObsArtifacts* obs = nullptr) {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{6, 2, 2};
  Cluster cluster(&sim, options);

  cluster.ForEachIndexNode([](IndexNodeRig& node) {
    node.StartCpuBully(48);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    config.blind.buffer_cores = 8;
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  });

  std::unique_ptr<ObsContext> obs_ctx;
  if (obs != nullptr) {
    ObsSpec spec;
    spec.enabled = true;
    spec.sampling = TraceSampling::kSlowestK;
    spec.slowest_k = 32;
    obs_ctx = std::make_unique<ObsContext>(spec);
    cluster.EnableTracing(&obs_ctx->tracer);
    obs_ctx->registry.AddProbe("cluster.completed", [&cluster] {
      return static_cast<double>(cluster.queries_completed());
    });
    obs_ctx->registry.AddProbe("cluster.failed", [&cluster] {
      return static_cast<double>(cluster.queries_failed());
    });
    obs_ctx->registry.AddProbe("cluster.degraded", [&cluster] {
      return static_cast<double>(cluster.queries_degraded());
    });
  }

  FaultInjector injector(&sim, plan, &cluster);
  if (obs_ctx != nullptr) {
    injector.EnableTracing(&obs_ctx->tracer);
  }
  injector.Arm();

  Rng trace_rng(4242);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/4000, Rng(9),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster.SubmitQuery(work);
                        });

  const SimDuration warmup = kSecond / 2;
  const auto measure = static_cast<SimDuration>(4 * kSecond * bench::BenchScale());
  if (obs_ctx != nullptr) {
    const int client_pid = obs_ctx->tracer.RegisterProcess("client");
    client.SetTracer(&obs_ctx->tracer, obs_ctx->tracer.RegisterTrack(client_pid, "arrivals"));
    obs_ctx->StartSampling(&sim, warmup);
  }
  client.Run(0, warmup + measure);
  sim.RunUntil(warmup);
  cluster.ResetStats();
  sim.RunUntil(warmup + measure);

  InvariantReport report;
  InvariantChecker::CheckCluster(cluster, /*expect_drained=*/false, &report);
  if (!report.ok()) {
    std::fprintf(stderr, "cluster invariant violations:\n%s", report.ToString().c_str());
    std::abort();
  }

  ClusterRow row;
  row.tla_p99_ms = cluster.TlaLatency().P99();
  row.tla_p95_ms = cluster.TlaLatency().P95();
  row.coverage_mean =
      cluster.LeafCoverage().Count() > 0 ? cluster.LeafCoverage().Mean() : 1.0;
  row.completed = cluster.queries_completed();
  row.degraded = cluster.queries_degraded();
  row.failed = cluster.queries_failed();
  row.faults_injected = injector.stats().injected;

  if (obs_ctx != nullptr) {
    obs_ctx->sampler->SampleNow(sim.Now());
    obs->enabled = true;
    obs->trace_json = ExportChromeTrace(obs_ctx->tracer);
    obs->metrics_json = obs_ctx->sampler->ToJson();
    obs->attribution = FormatP99AttributionTable(obs_ctx->tracer);
  }
  return row;
}

void PrintClusterRow(const char* label, const ClusterRow& r) {
  bench::ReportRow(label, {
                              {"tla_p95_ms", r.tla_p95_ms},
                              {"tla_p99_ms", r.tla_p99_ms},
                              {"coverage_mean", r.coverage_mean},
                              {"completed", static_cast<double>(r.completed)},
                              {"degraded", static_cast<double>(r.degraded)},
                              {"failed", static_cast<double>(r.failed)},
                              {"faults_injected", static_cast<double>(r.faults_injected)},
                          });
  std::printf("%-26s | TLA p95/p99: %6.2f %6.2f ms | coverage %5.3f | "
              "done %6lld deg %5lld fail %4lld | faults %lld\n",
              label, r.tla_p95_ms, r.tla_p99_ms, r.coverage_mean,
              static_cast<long long>(r.completed), static_cast<long long>(r.degraded),
              static_cast<long long>(r.failed), static_cast<long long>(r.faults_injected));
}

// The robustness stack experiment B turns on: chunk retries with capped
// exponential backoff, plus the k-of-n degrade deadline.
IndexNodeOptions ResilientNodeOptions() {
  IndexNodeOptions node;
  node.indexserve.chunk_retry.enabled = true;
  node.indexserve.chunk_retry.max_attempts = 3;
  node.indexserve.chunk_retry.timeout = FromMillis(10);
  node.indexserve.chunk_retry.backoff_base = FromMillis(2);
  node.indexserve.chunk_retry.backoff_cap = FromMillis(20);
  node.indexserve.degrade_deadline = FromMillis(30);
  node.indexserve.min_chunk_coverage = 0.5;
  return node;
}

void PrintSingleBoxRow(const char* label, const bench::SingleBoxResult& r) {
  bench::RecordRow(label, r);
  std::printf("%-26s | p95/p99: %6.2f %6.2f ms | drop %5.1f%% | coverage %5.3f | "
              "deg %5lld retry %5lld crash-drop %lld\n",
              label, r.p95_ms, r.p99_ms, r.drop_fraction * 100, r.coverage_mean,
              static_cast<long long>(r.degraded), static_cast<long long>(r.retries),
              static_cast<long long>(r.dropped_crash));
}

}  // namespace

int main() {
  using namespace perfiso::bench;
  StartReport("fig_fault_tolerance");
  PrintHeader("Fault tolerance: crash = lost coverage, not lost tail", "robustness",
              "not a paper figure; asserts the aggregation property Fig. 3's fan-out relies on");

  // --- A: cluster with one crashed leaf --------------------------------------
  const double warmup_sec = 0.5;
  const double measure_sec = 4.0 * BenchScale();

  FaultPlan one_crash;
  one_crash.enabled = true;
  one_crash.events.push_back(FaultEvent{FaultKind::kNodeCrash, /*node=*/0,
                                        /*at_sec=*/warmup_sec + 0.25 * measure_sec,
                                        /*duration_sec=*/0.5 * measure_sec,
                                        /*severity=*/1.0});

  ObsArtifacts obs;
  const std::vector<ClusterRow> cluster_rows = RunParallel<ClusterRow>({
      [] { return RunClusterWithFaults(FaultPlan{}); },
      [&obs, &one_crash] { return RunClusterWithFaults(one_crash, &obs); },
  });
  std::printf("A. 6x2 cluster, CPU bully + blind isolation, 4000 QPS:\n");
  PrintClusterRow("A1 healthy", cluster_rows[0]);
  PrintClusterRow("A2 one leaf crashed", cluster_rows[1]);
  std::printf("   surviving-query TLA P99 delta: %+0.2f ms; mean coverage %5.3f -> %5.3f\n\n",
              cluster_rows[1].tla_p99_ms - cluster_rows[0].tla_p99_ms,
              cluster_rows[0].coverage_mean, cluster_rows[1].coverage_mean);

  // --- B: single box, degraded disk, with and without the robustness stack ---
  ScenarioSpec degraded = MustFindScenario("fault-disk-degrade-blind");
  ScenarioSpec baseline = degraded;
  baseline.fault.enabled = false;
  baseline.fault.events.clear();

  const SingleBoxResult b1 = RunSingleBox(baseline);
  const SingleBoxResult b2 = RunSingleBox(degraded);
  const SingleBoxResult b3 = RunSingleBox(degraded, ResilientNodeOptions());
  std::printf("B. single box, 40x disk-latency window under blind isolation:\n");
  PrintSingleBoxRow("B1 no fault", b1);
  PrintSingleBoxRow("B2 fault, no resilience", b2);
  PrintSingleBoxRow("B3 fault + retry/degrade", b3);
  std::printf("   resilience: p99 %0.2f -> %0.2f ms, coverage %5.3f (floor 0.5), "
              "invariants held on every run\n\n",
              b2.p99_ms, b3.p99_ms, b3.coverage_mean);

  WriteObsArtifacts("fig_fault_tolerance", obs);
  return 0;
}
