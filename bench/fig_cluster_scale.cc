// Cluster-scale parallel-simulation bench: the headline for the time-windowed
// PDES engine (src/sim/parallel.h, DESIGN.md §10).
//
// Scenario: a 1,000-leaf cluster (50 index rows x 20 columns, 31 TLA
// machines) serving one full — compressed — diurnal day of query load at
// 2,000 QPS peak, with the paper's colocated CPU bully and blind isolation
// (B=8) on every leaf. The cluster is sharded into 21 simulator partitions
// (TLAs + client on partition 0, rows round-robined over the other 20) run
// in conservative lockstep windows of width net.base_latency.
//
// Rows: one sequential baseline (the pre-partitioning single-Simulator
// engine) and one partitioned run per worker thread count in {1, 2, 4, 8}.
// Reported per row: wall seconds, events/sec, speedup over sequential, and
// the run's latency digests. The determinism contract is asserted, not just
// reported: every partitioned run must produce bit-identical digests to the
// 1-thread run, or the bench aborts.
//
// The summary row `cluster_scale` anchors the CI regression guard:
// events_per_sec_best normalized by events_per_sec_t1 (the same binary's
// single-thread throughput) so the guard tracks scaling, not machine speed.
//
// Paper tie-in: §6.2 runs PerfIso on a 75-machine production slice because
// that is what fits an evaluation; this bench is the simulator making the
// 1,000-machine version of that experiment a single command.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/workload/scenario.h"

namespace {

using namespace perfiso;
using bench::ClusterRunResult;
using bench::RunClusterScenario;

constexpr int kPartitions = 21;  // TLA shard + 20 row shards

ScenarioSpec ClusterScaleScenario() {
  ScenarioSpec spec;
  spec.name = "cluster-scale-diurnal";
  // One full day per measurement window (ScaleScenarioForBench keeps that
  // ratio at any PERFISO_BENCH_SCALE).
  spec.load = DiurnalLoad(/*peak_qps=*/2000, /*period_sec=*/8, /*trough_fraction=*/0.25);
  spec.measure = 8 * kSecond;
  spec.warmup = kSecond / 2;
  spec.topology.columns = 20;
  spec.topology.rows = 50;  // 1,000 IndexServe machines
  spec.topology.tla_machines = 31;
  spec.tenants.cpu_bully_threads = 8;
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  config.blind.buffer_cores = 8;
  spec.perfiso = config;
  spec.trace_count = 20000;
  return spec;
}

struct TimedRun {
  ClusterRunResult result;
  double wall_s = 0;
};

TimedRun RunTimed(const ScenarioSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = RunClusterScenario(spec);
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

void RecordRun(const std::string& label, const TimedRun& run, double seq_wall_s) {
  const ClusterRunResult& r = run.result;
  const double events_per_sec =
      run.wall_s > 0 ? static_cast<double>(r.events_executed) / run.wall_s : 0;
  const double speedup = run.wall_s > 0 ? seq_wall_s / run.wall_s : 0;
  bench::ReportRow(label, {
                              {"wall_s", run.wall_s},
                              {"events_per_sec", events_per_sec},
                              {"speedup_vs_sequential", speedup},
                              {"partitions", static_cast<double>(r.partitions_used)},
                              {"threads", static_cast<double>(r.threads_used)},
                              {"completed", static_cast<double>(r.completed)},
                              {"tla_p99_ms", r.tla_p99_ms},
                          });
  std::printf("%-14s %8.2fs wall  %10.0f events/s  %5.2fx vs sequential  "
              "p99 %.2f ms  %lld queries\n",
              label.c_str(), run.wall_s, events_per_sec, speedup, r.tla_p99_ms,
              static_cast<long long>(r.completed));
}

// The determinism contract is the bench's precondition: a speedup over runs
// that disagree on results would be measuring a bug.
void CheckDigestsMatch(const ClusterRunResult& a, const ClusterRunResult& b,
                       const std::string& what) {
  if (a.leaf_digest != b.leaf_digest || a.mla_digest != b.mla_digest ||
      a.tla_digest != b.tla_digest || a.flow_digest != b.flow_digest ||
      a.completed != b.completed || a.events_executed != b.events_executed) {
    std::fprintf(stderr,
                 "determinism violation (%s): digests differ across thread counts\n"
                 "  leaf %016llx vs %016llx  tla %016llx vs %016llx\n",
                 what.c_str(), static_cast<unsigned long long>(a.leaf_digest),
                 static_cast<unsigned long long>(b.leaf_digest),
                 static_cast<unsigned long long>(a.tla_digest),
                 static_cast<unsigned long long>(b.tla_digest));
    std::abort();
  }
}

}  // namespace

int main() {
  bench::StartReport("cluster_scale");
  bench::PrintHeader("Cluster-scale parallel simulation (1,000 leaves, diurnal day)",
                     "PDES scaling", "simulator headline; extends the fig09/fig10 setting");

  const ScenarioSpec spec = ClusterScaleScenario();

  // Sequential baseline: sim_partitions = 0 keeps the single-Simulator
  // engine (and its golden digests) untouched.
  ScenarioSpec sequential = spec;
  sequential.sim_partitions = 0;
  std::printf("sequential baseline...\n");
  const TimedRun seq = RunTimed(sequential);
  RecordRun("sequential", seq, seq.wall_s);

  ScenarioSpec partitioned = spec;
  partitioned.sim_partitions = kPartitions;

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<TimedRun> runs;
  for (int threads : thread_counts) {
    setenv("PERFISO_SIM_THREADS", std::to_string(threads).c_str(), 1);
    std::printf("partitioned, %d thread(s)...\n", threads);
    runs.push_back(RunTimed(partitioned));
    RecordRun("threads_" + std::to_string(threads), runs.back(), seq.wall_s);
    if (runs.size() > 1) {
      CheckDigestsMatch(runs.front().result, runs.back().result,
                        "threads=" + std::to_string(threads) + " vs 1");
    }
  }

  double best_wall = runs.front().wall_s;
  int best_threads = thread_counts.front();
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].wall_s < best_wall) {
      best_wall = runs[i].wall_s;
      best_threads = thread_counts[i];
    }
  }
  const double events = static_cast<double>(runs.front().result.events_executed);
  const double events_per_sec_t1 = events / runs.front().wall_s;
  const double events_per_sec_best = events / best_wall;
  bench::ReportRow("cluster_scale", {
                                        {"events_per_sec_t1", events_per_sec_t1},
                                        {"events_per_sec_best", events_per_sec_best},
                                        {"speedup_best", seq.wall_s / best_wall},
                                        {"threads_best", static_cast<double>(best_threads)},
                                        {"digests_equal", 1.0},
                                    });
  std::printf("best: %d thread(s), %.2fx over sequential; digests identical "
              "across all thread counts\n",
              best_threads, seq.wall_s / best_wall);
  std::printf("paper: n/a — simulator scaling headline (the paper's cluster tops "
              "out at 75 machines)\n");
  return 0;
}
