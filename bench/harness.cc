#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {
namespace bench {

namespace {

struct ReportRowData {
  std::string label;
  std::vector<std::pair<std::string, double>> metrics;
};

struct Report {
  std::string name;
  std::vector<ReportRowData> rows;
  bool written = false;
};

Report* ActiveReport() {
  static Report report;
  return &report;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void StartReport(const std::string& bench_name) {
  Report* report = ActiveReport();
  report->name = bench_name;
  // Benches return from main() through several paths; serializing at exit
  // keeps the mains free of bookkeeping.
  std::atexit([] { FinishReport(); });
}

void ReportRow(const std::string& label,
               const std::vector<std::pair<std::string, double>>& metrics) {
  ActiveReport()->rows.push_back(ReportRowData{label, metrics});
}

void RecordRow(const std::string& label, const SingleBoxResult& r) {
  ReportRow(label, {
                       {"p50_ms", r.p50_ms},
                       {"p95_ms", r.p95_ms},
                       {"p99_ms", r.p99_ms},
                       {"mean_ms", r.mean_ms},
                       {"drop_fraction", r.drop_fraction},
                       {"primary_util", r.primary_util},
                       {"secondary_util", r.secondary_util},
                       {"os_util", r.os_util},
                       {"idle_fraction", r.idle_fraction},
                       {"secondary_progress_core_s", r.secondary_progress},
                       {"hedges", static_cast<double>(r.hedges)},
                       {"queries", static_cast<double>(r.queries)},
                   });
}

void FinishReport() {
  Report* report = ActiveReport();
  if (report->written || report->name.empty()) {
    return;
  }
  report->written = true;
  const char* out_dir = std::getenv("PERFISO_BENCH_OUT");
  const std::string path =
      (out_dir != nullptr && out_dir[0] != '\0' ? std::string(out_dir) + "/" : std::string()) +
      "BENCH_" + report->name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %.6g,\n  \"rows\": [",
               JsonEscape(report->name).c_str(), BenchScale());
  for (size_t i = 0; i < report->rows.size(); ++i) {
    const ReportRowData& row = report->rows[i];
    std::fprintf(f, "%s\n    {\"label\": \"%s\", \"metrics\": {", i == 0 ? "" : ",",
                 JsonEscape(row.label).c_str());
    for (size_t m = 0; m < row.metrics.size(); ++m) {
      std::fprintf(f, "%s\"%s\": %.9g", m == 0 ? "" : ", ",
                   JsonEscape(row.metrics[m].first).c_str(), row.metrics[m].second);
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), report->rows.size());
}

double BenchScale() {
  const char* env = std::getenv("PERFISO_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double scale = std::atof(env);
  return std::clamp(scale > 0 ? scale : 1.0, 0.05, 100.0);
}

int BenchThreads() {
  // Read each call (not cached): determinism tests flip the variable at
  // runtime to compare parallel and sequential executions.
  const char* env = std::getenv("PERFISO_BENCH_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int threads = std::atoi(env);
    if (threads > 0) {
      return std::min(threads, 256);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<SingleBoxResult> RunScenarios(const std::vector<SingleBoxScenario>& scenarios) {
  std::vector<std::function<SingleBoxResult()>> jobs;
  jobs.reserve(scenarios.size());
  for (const SingleBoxScenario& scenario : scenarios) {
    jobs.emplace_back([scenario] { return RunSingleBox(scenario); });
  }
  return RunParallel(std::move(jobs));
}

SingleBoxResult RunSingleBox(const SingleBoxScenario& scenario) {
  Simulator sim;
  IndexNodeOptions node = scenario.node;
  node.seed = scenario.node_seed;
  IndexNodeRig rig(&sim, node, "m0");

  if (scenario.cpu_bully_threads > 0) {
    rig.StartCpuBully(scenario.cpu_bully_threads);
  }
  if (scenario.disk_bully) {
    rig.StartDiskBully(DiskBully::Options{});
  }
  if (scenario.perfiso.has_value()) {
    Status status = rig.StartPerfIso(*scenario.perfiso);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }

  Rng trace_rng(scenario.trace_seed);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), scenario.qps, Rng(7),
                        [&rig](const QueryWork& work, SimTime) {
                          rig.server().SubmitQuery(work);
                        });

  const SimDuration measure =
      std::max<SimDuration>(kSecond, static_cast<SimDuration>(
                                         static_cast<double>(scenario.measure) * BenchScale()));
  client.Run(0, scenario.warmup + measure);
  sim.RunUntil(scenario.warmup);
  rig.server().ResetStats();
  const auto snap = rig.SnapshotUtilization();
  const double progress_then = rig.SecondaryProgress();
  sim.RunUntil(scenario.warmup + measure);

  SingleBoxResult result;
  const auto& stats = rig.server().stats();
  result.p50_ms = stats.latency_ms.P50();
  result.p95_ms = stats.latency_ms.P95();
  result.p99_ms = stats.latency_ms.P99();
  result.mean_ms = stats.latency_ms.Mean();
  result.drop_fraction = stats.DropFraction();
  result.primary_util = rig.UtilizationSince(snap, TenantClass::kPrimary);
  result.secondary_util = rig.UtilizationSince(snap, TenantClass::kSecondary);
  result.os_util = rig.UtilizationSince(snap, TenantClass::kOs);
  result.idle_fraction = rig.IdleFractionSince(snap);
  result.secondary_progress = rig.SecondaryProgress() - progress_then;
  result.hedges = stats.hedges_issued;
  result.queries = stats.submitted;
  return result;
}

void PrintHeader(const std::string& title, const std::string& figure,
                 const std::string& paper_summary) {
  std::printf("================================================================================\n");
  std::printf("%s  [%s]\n", title.c_str(), figure.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("scale: %.2f (set PERFISO_BENCH_SCALE to change)\n", BenchScale());
  std::printf("================================================================================\n");
}

void PrintRowHeader() {
  std::printf("%-34s %8s %8s %8s %7s | %6s %6s %5s %6s | %10s\n", "scenario", "p50(ms)",
              "p95(ms)", "p99(ms)", "drop%", "prim%", "sec%", "os%", "idle%", "sec-prog");
}

void PrintRow(const std::string& label, const SingleBoxResult& result) {
  RecordRow(label, result);
  std::printf("%-34s %8.2f %8.2f %8.2f %6.1f%% | %5.1f%% %5.1f%% %4.1f%% %5.1f%% | %9.1fs\n",
              label.c_str(), result.p50_ms, result.p95_ms, result.p99_ms,
              result.drop_fraction * 100, result.primary_util * 100,
              result.secondary_util * 100, result.os_util * 100, result.idle_fraction * 100,
              result.secondary_progress);
}

void PrintPaperNote(const std::string& note) {
  std::printf("    paper: %s\n", note.c_str());
}

}  // namespace bench
}  // namespace perfiso
