#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/invariant_checker.h"
#include "src/obs/obs.h"
#include "src/obs/trace_export.h"
#include "src/sim/parallel.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {
namespace bench {

namespace {

struct ReportRowData {
  std::string label;
  std::vector<std::pair<std::string, double>> metrics;
};

struct Report {
  std::string name;
  std::vector<ReportRowData> rows;
  bool written = false;
};

Report* ActiveReport() {
  static Report report;
  return &report;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

}  // namespace

std::string BenchOutPath(const std::string& filename) {
  const char* out_dir = std::getenv("PERFISO_BENCH_OUT");
  if (out_dir != nullptr && out_dir[0] != '\0') {
    return std::string(out_dir) + "/" + filename;
  }
  return filename;
}

void StartReport(const std::string& bench_name) {
  Report* report = ActiveReport();
  report->name = bench_name;
  // Benches return from main() through several paths; serializing at exit
  // keeps the mains free of bookkeeping.
  std::atexit([] { FinishReport(); });
}

void ReportRow(const std::string& label,
               const std::vector<std::pair<std::string, double>>& metrics) {
  ActiveReport()->rows.push_back(ReportRowData{label, metrics});
}

void RecordRow(const std::string& label, const SingleBoxResult& r) {
  ReportRow(label, {
                       {"p50_ms", r.p50_ms},
                       {"p95_ms", r.p95_ms},
                       {"p99_ms", r.p99_ms},
                       {"mean_ms", r.mean_ms},
                       {"drop_fraction", r.drop_fraction},
                       {"primary_util", r.primary_util},
                       {"secondary_util", r.secondary_util},
                       {"os_util", r.os_util},
                       {"idle_fraction", r.idle_fraction},
                       {"secondary_progress_core_s", r.secondary_progress},
                       {"hedges", static_cast<double>(r.hedges)},
                       {"queries", static_cast<double>(r.queries)},
                       {"coverage_mean", r.coverage_mean},
                       {"degraded", static_cast<double>(r.degraded)},
                       {"retries", static_cast<double>(r.retries)},
                       {"dropped_crash", static_cast<double>(r.dropped_crash)},
                       {"faults_injected", static_cast<double>(r.faults_injected)},
                   });
}

void FinishReport() {
  Report* report = ActiveReport();
  if (report->written || report->name.empty()) {
    return;
  }
  report->written = true;
  const std::string path = BenchOutPath("BENCH_" + report->name + ".json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %.6g,\n  \"rows\": [",
               JsonEscape(report->name).c_str(), BenchScale());
  for (size_t i = 0; i < report->rows.size(); ++i) {
    const ReportRowData& row = report->rows[i];
    std::fprintf(f, "%s\n    {\"label\": \"%s\", \"metrics\": {", i == 0 ? "" : ",",
                 JsonEscape(row.label).c_str());
    for (size_t m = 0; m < row.metrics.size(); ++m) {
      std::fprintf(f, "%s\"%s\": %.9g", m == 0 ? "" : ", ",
                   JsonEscape(row.metrics[m].first).c_str(), row.metrics[m].second);
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), report->rows.size());
}

double BenchScale() {
  const char* env = std::getenv("PERFISO_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double scale = std::atof(env);
  return std::clamp(scale > 0 ? scale : 1.0, 0.05, 100.0);
}

SimDuration ScaledMeasure(const ScenarioSpec& scenario) {
  return std::max<SimDuration>(
      kSecond,
      static_cast<SimDuration>(static_cast<double>(scenario.measure) * BenchScale()));
}

ScenarioSpec ScaleScenarioForBench(const ScenarioSpec& scenario) {
  ScenarioSpec scaled = scenario;
  scaled.measure = ScaledMeasure(scenario);
  if (scaled.measure == scenario.measure) {
    return scaled;  // scale 1 (or the 1 s floor equals the spec): identity
  }
  const double factor =
      static_cast<double>(scaled.measure) / static_cast<double>(scenario.measure);
  const double warmup_sec = ToSeconds(scenario.warmup);
  // Absolute shape times keep their position relative to the measurement
  // window; the (unscaled) warmup region maps to itself.
  const auto remap = [factor, warmup_sec](double t_sec) {
    return t_sec <= warmup_sec ? t_sec : warmup_sec + (t_sec - warmup_sec) * factor;
  };
  switch (scaled.load.kind) {
    case LoadShapeKind::kConstant:
      break;
    case LoadShapeKind::kDiurnal:
      scaled.load.diurnal_period_sec *= factor;
      break;
    case LoadShapeKind::kRamp:
      // The ramp is a one-shot feature like the flash window: its end must
      // keep its position relative to the measurement window, not compress
      // into the unscaled warmup.
      scaled.load.ramp_duration_sec = remap(scaled.load.ramp_duration_sec);
      break;
    case LoadShapeKind::kFlashCrowd:
      scaled.load.flash_start_sec = remap(scaled.load.flash_start_sec);
      scaled.load.flash_duration_sec *= factor;
      break;
    case LoadShapeKind::kSquareWave:
      scaled.load.square_period_sec *= factor;
      break;
    case LoadShapeKind::kPiecewise:
      for (PiecewisePoint& point : scaled.load.piecewise) {
        point.at_sec = remap(point.at_sec);
      }
      break;
  }
  // Fault events are one-shot features like the flash window: remap both
  // endpoints so a window keeps its position *and* its overlap with the
  // measurement window at any scale.
  for (FaultEvent& event : scaled.fault.events) {
    const double end_sec = remap(event.at_sec + event.duration_sec);
    event.at_sec = remap(event.at_sec);
    event.duration_sec = std::max(end_sec - event.at_sec, 1e-3);
  }
  return scaled;
}

namespace {

// The one place a spec's tenants + isolation attach to a rig; single-box and
// cluster runs of the same spec must not diverge.
void StartScenarioOnRig(IndexNodeRig* rig, const ScenarioSpec& scenario) {
  rig->StartTenants(scenario.tenants);
  if (scenario.perfiso.has_value()) {
    Status status = rig->StartPerfIso(*scenario.perfiso);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
}

}  // namespace

std::unique_ptr<IndexNodeRig> MakeSingleBoxRig(Simulator* sim, const ScenarioSpec& scenario,
                                               const IndexNodeOptions& node_options) {
  IndexNodeOptions node = node_options;
  node.seed = scenario.node_seed;
  auto rig = std::make_unique<IndexNodeRig>(sim, node, "m0");
  StartScenarioOnRig(rig.get(), scenario);
  return rig;
}

int BenchThreads() {
  // Read each call (not cached): determinism tests flip the variable at
  // runtime to compare parallel and sequential executions.
  const char* env = std::getenv("PERFISO_BENCH_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int threads = std::atoi(env);
    if (threads > 0) {
      return std::min(threads, 256);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<SingleBoxResult> RunScenarios(const std::vector<ScenarioSpec>& scenarios) {
  std::vector<std::function<SingleBoxResult()>> jobs;
  jobs.reserve(scenarios.size());
  for (const ScenarioSpec& scenario : scenarios) {
    jobs.emplace_back([scenario] { return RunSingleBox(scenario); });
  }
  return RunParallel(std::move(jobs));
}

ScenarioSpec WithBenchObs(ScenarioSpec spec) {
  spec.obs.enabled = true;
  spec.obs.sampling = TraceSampling::kSlowestK;
  spec.obs.slowest_k = 128;
  return spec;
}

void WriteObsArtifacts(const std::string& name, const ObsArtifacts& obs) {
  if (!obs.enabled) {
    return;
  }
  const std::string trace_path = BenchOutPath("TRACE_" + name + ".json");
  const std::string metrics_path = BenchOutPath("METRICS_" + name + ".json");
  WriteTextFile(trace_path, obs.trace_json);
  WriteTextFile(metrics_path, obs.metrics_json);
  std::printf("wrote %s + %s (load the trace at ui.perfetto.dev)\n", trace_path.c_str(),
              metrics_path.c_str());
  if (!obs.attribution.empty()) {
    std::printf("\ntail-latency attribution of the traced run:\n%s", obs.attribution.c_str());
  }
}

SingleBoxResult RunSingleBox(const ScenarioSpec& input, const IndexNodeOptions& node_options,
                             ObsArtifacts* obs) {
  if (Status status = input.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid scenario %s: %s\n", input.name.c_str(),
                 status.ToString().c_str());
    std::abort();
  }
  if (input.topology.columns != 0) {
    std::fprintf(stderr, "scenario %s is a cluster spec; RunSingleBox needs columns == 0\n",
                 input.name.c_str());
    std::abort();
  }
  // Compress the whole timeline — window *and* shape times — to the bench
  // scale, so a smoke run still measures the spike/bursts/full period.
  const ScenarioSpec scenario = ScaleScenarioForBench(input);

  Simulator sim;
  const std::unique_ptr<IndexNodeRig> rig_ptr = MakeSingleBoxRig(&sim, scenario, node_options);
  IndexNodeRig& rig = *rig_ptr;

  // Observability: one context per run, destroyed before the rig it probes.
  // The tracer is passive, so results below are identical with or without it.
  std::unique_ptr<ObsContext> obs_ctx;
  HistogramMetric* latency_hist = nullptr;
  int32_t client_track = Tracer::kNoTrack;
  if (scenario.obs.enabled) {
    obs_ctx = std::make_unique<ObsContext>(scenario.obs);
    rig.EnableTracing(&obs_ctx->tracer);
    const int client_pid = obs_ctx->tracer.RegisterProcess("client");
    client_track = obs_ctx->tracer.RegisterTrack(client_pid, "arrivals");
    latency_hist = obs_ctx->registry.AddHistogram("indexserve.latency_ms", 0, 200, 40);
    obs_ctx->registry.AddProbe("indexserve.inflight", [&rig] {
      return static_cast<double>(rig.server().inflight());
    });
    obs_ctx->registry.AddProbe("indexserve.completed", [&rig] {
      return static_cast<double>(rig.server().stats().completed);
    });
    obs_ctx->registry.AddProbe("indexserve.dropped", [&rig] {
      return static_cast<double>(rig.server().stats().TotalDropped());
    });
    obs_ctx->registry.AddProbe("indexserve.hedges", [&rig] {
      return static_cast<double>(rig.server().stats().hedges_issued);
    });
    obs_ctx->registry.AddProbe("machine.secondary_core_s",
                               [&rig] { return rig.SecondaryProgress(); });
    obs_ctx->StartSampling(&sim, scenario.warmup);
  }

  // Fault injection: disabled plans construct nothing, so a fault-free run is
  // bit-identical to one built before the subsystem existed. The injector is
  // declared after the rig and owns its event handles, so teardown order is
  // safe even when the plan outlives the measurement window.
  std::unique_ptr<FaultInjector> injector;
  if (scenario.fault.enabled) {
    injector = std::make_unique<FaultInjector>(&sim, scenario.fault, &rig);
    if (obs_ctx != nullptr) {
      injector->EnableTracing(&obs_ctx->tracer);
    }
    injector->Arm();
  }

  Rng trace_rng(scenario.trace_seed);
  auto trace = GenerateTrace(TraceSpec{}, scenario.trace_count, &trace_rng);

  const SimDuration measure = scenario.measure;  // already scaled

  // Both clients live on the stack; the simulator drains inside this scope.
  std::optional<OpenLoopClient> open_client;
  std::optional<ClosedLoopClient> closed_client;
  if (scenario.client == ClientKind::kOpenLoop) {
    open_client.emplace(&sim, std::move(trace), scenario.load, Rng(scenario.client_seed),
                        [&rig, latency_hist](const QueryWork& work, SimTime) {
                          if (latency_hist == nullptr) {
                            rig.server().SubmitQuery(work);
                            return;
                          }
                          rig.server().SubmitQuery(work, [latency_hist](const QueryResult& r) {
                            if (!r.dropped) {
                              latency_hist->Observe(r.latency_ms);
                            }
                          });
                        });
    if (obs_ctx != nullptr) {
      open_client->SetTracer(&obs_ctx->tracer, client_track);
    }
    open_client->Run(0, scenario.warmup + measure);
  } else {
    closed_client.emplace(&sim, std::move(trace), scenario.closed.outstanding,
                          scenario.closed.think_time, Rng(scenario.client_seed),
                          [&rig, &closed_client, latency_hist](const QueryWork& work, SimTime) {
                            rig.server().SubmitQuery(
                                work, [&closed_client, latency_hist](const QueryResult& r) {
                                  if (latency_hist != nullptr && !r.dropped) {
                                    latency_hist->Observe(r.latency_ms);
                                  }
                                  closed_client->OnComplete();
                                });
                          });
    if (obs_ctx != nullptr) {
      closed_client->SetTracer(&obs_ctx->tracer, client_track);
    }
    closed_client->Run(0, scenario.warmup + measure);
  }

  sim.RunUntil(scenario.warmup);
  rig.server().ResetStats();
  const auto snap = rig.SnapshotUtilization();
  const double progress_then = rig.SecondaryProgress();
  sim.RunUntil(scenario.warmup + measure);

  SingleBoxResult result;
  const auto& stats = rig.server().stats();
  result.p50_ms = stats.latency_ms.P50();
  result.p95_ms = stats.latency_ms.P95();
  result.p99_ms = stats.latency_ms.P99();
  result.mean_ms = stats.latency_ms.Mean();
  result.drop_fraction = stats.DropFraction();
  result.primary_util = rig.UtilizationSince(snap, TenantClass::kPrimary);
  result.secondary_util = rig.UtilizationSince(snap, TenantClass::kSecondary);
  result.os_util = rig.UtilizationSince(snap, TenantClass::kOs);
  result.idle_fraction = rig.IdleFractionSince(snap);
  result.secondary_progress = rig.SecondaryProgress() - progress_then;
  result.hedges = stats.hedges_issued;
  result.queries = stats.submitted;
  result.coverage_mean = stats.coverage.Count() > 0 ? stats.coverage.Mean() : 0.0;
  result.degraded = stats.completed_degraded;
  result.retries = stats.retries_issued;
  result.dropped_crash = stats.dropped_crash;
  result.faults_injected = injector != nullptr ? injector->stats().injected : 0;
  result.latency_digest = stats.latency_ms.Digest();

  // Conservation/budget/coverage invariants must hold at the end of every
  // bench run, faults or not; the checker only reads, so this is
  // digest-neutral. Aborting keeps bad rows out of BENCH_*.json.
  InvariantReport invariants;
  InvariantChecker::CheckRig(rig, /*expect_drained=*/false, &invariants);
  if (!invariants.ok()) {
    std::fprintf(stderr, "invariant violations in scenario %s:\n%s", input.name.c_str(),
                 invariants.ToString().c_str());
    std::abort();
  }

  if (obs_ctx != nullptr) {
    obs_ctx->sampler->SampleNow(sim.Now());
    if (obs != nullptr) {
      obs->enabled = true;
      obs->trace_json = ExportChromeTrace(obs_ctx->tracer);
      obs->metrics_json = obs_ctx->sampler->ToJson();
      obs->attribution = FormatP99AttributionTable(obs_ctx->tracer);
    }
  }
  return result;
}

// --- Scenario registry --------------------------------------------------------

namespace {

ScenarioSpec BaseScenario(const char* name, LoadShapeSpec load) {
  ScenarioSpec spec;
  spec.name = name;
  spec.load = load;
  return spec;
}

PerfIsoConfig BlindConfig(int buffer_cores = 8) {
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  config.blind.buffer_cores = buffer_cores;
  return config;
}

// The canonical named scenarios. Kept in one place so benches, tests, and the
// golden-digest regressions all agree on what e.g. "diurnal-blind" means;
// changing a spec here is a results-affecting change and will trip the golden
// tests (see the update procedure in tests/bench_determinism_test.cc).
std::vector<ScenarioSpec> BuildRegistry() {
  std::vector<ScenarioSpec> registry;

  registry.push_back(BaseScenario("standalone", ConstantLoad(2000)));

  {
    ScenarioSpec spec = BaseScenario("no-isolation-high", ConstantLoad(2000));
    spec.tenants.cpu_bully_threads = 48;
    registry.push_back(spec);
  }
  {
    ScenarioSpec spec = BaseScenario("blind-high", ConstantLoad(2000));
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    registry.push_back(spec);
  }

  // The diurnal day (Fig. 2): one full period over the measurement window,
  // peak at the paper's high rate. With trough_fraction 0.1 the daily average
  // is 0.55x peak — ~21% average CPU on our machine model, the paper's
  // headline idle number.
  {
    ScenarioSpec spec = BaseScenario("diurnal-no-isolation", DiurnalLoad(4000, 24));
    spec.measure = 24 * kSecond;
    spec.tenants.cpu_bully_threads = 48;
    registry.push_back(spec);
  }
  {
    ScenarioSpec spec = BaseScenario("diurnal-blind", DiurnalLoad(4000, 24));
    spec.measure = 24 * kSecond;
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    registry.push_back(spec);
  }

  // Flash crowd (§3.1's sudden burst): 1,500 QPS background jumping to 6,000
  // for one second mid-window. The idle-core buffer is what absorbs it.
  {
    ScenarioSpec spec =
        BaseScenario("flash-crowd-standalone", FlashCrowdLoad(1500, 6000, 3, 1));
    registry.push_back(spec);
  }
  {
    ScenarioSpec spec =
        BaseScenario("flash-crowd-no-isolation", FlashCrowdLoad(1500, 6000, 3, 1));
    spec.tenants.cpu_bully_threads = 48;
    registry.push_back(spec);
  }
  {
    ScenarioSpec spec = BaseScenario("flash-crowd-blind", FlashCrowdLoad(1500, 6000, 3, 1));
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    registry.push_back(spec);
  }

  // Burst train: square wave between 1,000 and 4,000 QPS, 25% duty.
  {
    ScenarioSpec spec = BaseScenario("burst-train-blind", ConstantLoad(1000));
    spec.load.kind = LoadShapeKind::kSquareWave;
    spec.load.square_burst_qps = 4000;
    spec.load.square_period_sec = 2;
    spec.load.square_duty = 0.25;
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    registry.push_back(spec);
  }

  // Linear ramp into saturation under blind isolation.
  {
    ScenarioSpec spec = BaseScenario("ramp-blind", ConstantLoad(500));
    spec.load.kind = LoadShapeKind::kRamp;
    spec.load.ramp_end_qps = 4000;
    spec.load.ramp_duration_sec = 8;
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    registry.push_back(spec);
  }

  // Closed-loop saturation study: 64 users, 1 ms think time — offered load is
  // completion-limited instead of a fixed rate.
  {
    ScenarioSpec spec = BaseScenario("closed-loop-saturation", ConstantLoad(2000));
    spec.client = ClientKind::kClosedLoop;
    spec.closed.outstanding = 64;
    spec.closed.think_time = FromMillis(1);
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    registry.push_back(spec);
  }

  // Fault-injection rows (DESIGN.md §8): the standard colocation with a
  // declared fault window mid-measurement. "fault-crash-restart" kills the
  // serving process for two seconds (in-flight queries drop, storage I/O
  // cancels, the node rejoins cold); the disk and straggler rows degrade
  // rather than kill, which blind isolation's buffer should largely absorb.
  {
    ScenarioSpec spec = BaseScenario("fault-crash-restart", ConstantLoad(2000));
    spec.fault.enabled = true;
    spec.fault.events.push_back(
        FaultEvent{FaultKind::kNodeCrash, /*node=*/0, /*at_sec=*/3.0, /*duration_sec=*/2.0,
                   /*severity=*/1.0});
    registry.push_back(spec);
  }
  {
    ScenarioSpec spec = BaseScenario("fault-disk-degrade-blind", ConstantLoad(2000));
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    spec.fault.enabled = true;
    spec.fault.events.push_back(
        FaultEvent{FaultKind::kDiskDegrade, /*node=*/0, /*at_sec=*/3.0, /*duration_sec=*/2.0,
                   /*severity=*/40.0});
    registry.push_back(spec);
  }
  {
    ScenarioSpec spec = BaseScenario("fault-straggler-blind", ConstantLoad(2000));
    spec.tenants.cpu_bully_threads = 48;
    spec.perfiso = BlindConfig();
    spec.fault.enabled = true;
    spec.fault.events.push_back(
        FaultEvent{FaultKind::kCpuStraggler, /*node=*/0, /*at_sec=*/3.0, /*duration_sec=*/2.0,
                   /*severity=*/16});
    registry.push_back(spec);
  }

  // Fig. 10's production colocation, as a cluster spec: diurnal load over a
  // 6x2 sampled cluster, HDFS + ML training as the secondary, blind isolation
  // plus the ML job's disk cap.
  {
    ScenarioSpec spec = BaseScenario("fig10-production", DiurnalLoad(7600, 60, 0.37));
    spec.measure = 60 * kSecond;
    spec.topology = TopologySpec{6, 2, 4};
    spec.tenants.hdfs_client = true;
    spec.tenants.ml_training = true;
    spec.tenants.ml_worker_threads = 20;
    PerfIsoConfig config = BlindConfig();
    config.io_limits.push_back(
        IoOwnerLimit{kIoOwnerMlTraining, 100e6, 0, /*priority=*/2, 1.0, 0});
    spec.perfiso = config;
    registry.push_back(spec);
  }

  return registry;
}

const std::vector<ScenarioSpec>& Registry() {
  static const std::vector<ScenarioSpec>* registry =
      new std::vector<ScenarioSpec>(BuildRegistry());
  return *registry;
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const ScenarioSpec& spec : Registry()) {
    names.push_back(spec.name);
  }
  return names;
}

StatusOr<ScenarioSpec> FindScenario(const std::string& name) {
  for (const ScenarioSpec& spec : Registry()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return NotFoundError("no scenario named " + name);
}

ScenarioSpec MustFindScenario(const std::string& name) {
  auto spec = FindScenario(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::abort();
  }
  return *spec;
}

std::vector<SingleBoxResult> RunNamedScenarios(const std::vector<std::string>& names) {
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(names.size());
  for (const std::string& name : names) {
    scenarios.push_back(MustFindScenario(name));
  }
  return RunScenarios(scenarios);
}

ClusterOptions MakeClusterOptions(const ScenarioSpec& scenario) {
  if (scenario.topology.columns <= 0) {
    std::fprintf(stderr, "scenario %s is single-box; MakeClusterOptions needs columns > 0\n",
                 scenario.name.c_str());
    std::abort();
  }
  ClusterOptions options;
  options.topology = ClusterTopology{scenario.topology.columns, scenario.topology.rows,
                                     scenario.topology.tla_machines};
  options.node.seed = scenario.node_seed;
  return options;
}

void ApplyScenarioTenants(Cluster* cluster, const ScenarioSpec& scenario) {
  cluster->ForEachIndexNode(
      [&scenario](IndexNodeRig& node) { StartScenarioOnRig(&node, scenario); });
}

int SimThreads() {
  // Read each call (not cached): determinism tests flip the variable at
  // runtime to compare thread counts against each other.
  const char* env = std::getenv("PERFISO_SIM_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int threads = std::atoi(env);
    if (threads > 0) {
      return std::min(threads, 256);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ClusterRunResult RunClusterScenario(const ScenarioSpec& input) {
  if (Status status = input.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid scenario %s: %s\n", input.name.c_str(),
                 status.ToString().c_str());
    std::abort();
  }
  if (input.topology.columns <= 0) {
    std::fprintf(stderr, "scenario %s is single-box; RunClusterScenario needs columns > 0\n",
                 input.name.c_str());
    std::abort();
  }
  const ScenarioSpec scenario = ScaleScenarioForBench(input);
  const ClusterOptions options = MakeClusterOptions(scenario);

  // Decide the execution mode. The partitioned engine does not support fault
  // injection (crash routing mutates shared state mid-run), tracing (one
  // tracer, one clock), or a fabric with no positive cross-partition latency
  // floor (base_latency is the PDES lookahead; zero would livelock the
  // window loop) — those run sequentially, with a warning so a benchmark
  // invocation can't silently measure the wrong engine.
  int partitions = scenario.sim_partitions;
  const char* fallback_reason = nullptr;
  if (partitions >= 2) {
    if (scenario.fault.enabled) {
      fallback_reason = "fault injection is sequential-only";
    } else if (scenario.obs.enabled) {
      fallback_reason = "tracing/observability is sequential-only";
    } else if (options.fabric.base_latency <= 0) {
      fallback_reason =
          "net.base_latency must be positive to serve as the cross-partition lookahead";
    }
  }
  if (fallback_reason != nullptr) {
    std::fprintf(stderr, "scenario %s: %s; falling back to a sequential run\n",
                 scenario.name.c_str(), fallback_reason);
    partitions = 0;
  }
  // More partitions than rows+1 would leave simulators idle; clamp.
  partitions = std::min(partitions, scenario.topology.rows + 1);
  const bool parallel = partitions >= 2;

  ParallelSimulation::Options popt;
  popt.partitions = parallel ? partitions : 1;
  popt.window = parallel ? options.fabric.base_latency : 0;
  popt.threads = parallel ? SimThreads() : 1;
  ParallelSimulation psim(popt);
  Simulator& sim = psim.sim(0);

  // Sequential runs use the plain single-Simulator constructor so they stay
  // bit-identical to pre-partitioning builds (and keep tracing available).
  auto cluster = parallel ? std::make_unique<Cluster>(&psim, options)
                          : std::make_unique<Cluster>(&sim, options);
  ApplyScenarioTenants(cluster.get(), scenario);

  std::unique_ptr<FaultInjector> injector;
  if (scenario.fault.enabled) {
    injector = std::make_unique<FaultInjector>(&sim, scenario.fault, cluster.get());
    injector->Arm();
  }

  Rng trace_rng(scenario.trace_seed);
  auto trace = GenerateTrace(TraceSpec{}, scenario.trace_count, &trace_rng);
  const SimDuration measure = scenario.measure;  // already scaled

  std::optional<OpenLoopClient> open_client;
  std::optional<ClosedLoopClient> closed_client;
  if (scenario.client == ClientKind::kOpenLoop) {
    open_client.emplace(&sim, std::move(trace), scenario.load, Rng(scenario.client_seed),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster->SubmitQuery(work);
                        });
    open_client->Run(0, scenario.warmup + measure);
  } else {
    closed_client.emplace(&sim, std::move(trace), scenario.closed.outstanding,
                          scenario.closed.think_time, Rng(scenario.client_seed),
                          [&cluster, &closed_client](const QueryWork& work, SimTime) {
                            cluster->SubmitQuery(work, [&closed_client](const QueryResult&) {
                              closed_client->OnComplete();
                            });
                          });
    closed_client->Run(0, scenario.warmup + measure);
  }

  psim.RunUntil(scenario.warmup);
  cluster->ResetStats();
  const auto snaps = cluster->SnapshotAll();
  psim.RunUntil(scenario.warmup + measure);

  if (scenario.fault.enabled) {
    InvariantReport report;
    InvariantChecker::CheckCluster(*cluster, /*expect_drained=*/false, &report);
    if (!report.ok()) {
      std::fprintf(stderr, "cluster invariant violations:\n%s", report.ToString().c_str());
      std::abort();
    }
  }

  ClusterRunResult result;
  result.leaf_digest = cluster->MergedLeafLatency().Digest();
  result.mla_digest = cluster->MlaLatency().Digest();
  result.tla_digest = cluster->TlaLatency().Digest();
  result.flow_digest = cluster->fabric().FlowLatencyMs(NetClass::kPrimary).Digest();
  result.completed = cluster->queries_completed();
  result.failed = cluster->queries_failed();
  result.degraded = cluster->queries_degraded();
  result.tla_p99_ms = cluster->TlaLatency().P99();
  result.tla_mean_ms = cluster->TlaLatency().Mean();
  result.mean_busy = cluster->MeanBusyFractionSince(snaps);
  result.faults_injected = injector != nullptr ? injector->stats().injected : 0;
  result.events_executed = psim.TotalEventsExecuted();
  result.partitions_used = parallel ? partitions : 1;
  result.threads_used = parallel ? psim.num_threads() : 1;
  result.fell_back_sequential = fallback_reason != nullptr;
  return result;
}

void PrintHeader(const std::string& title, const std::string& figure,
                 const std::string& paper_summary) {
  std::printf("================================================================================\n");
  std::printf("%s  [%s]\n", title.c_str(), figure.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("scale: %.2f (set PERFISO_BENCH_SCALE to change)\n", BenchScale());
  std::printf("================================================================================\n");
}

void PrintRowHeader() {
  std::printf("%-34s %8s %8s %8s %7s | %6s %6s %5s %6s | %10s\n", "scenario", "p50(ms)",
              "p95(ms)", "p99(ms)", "drop%", "prim%", "sec%", "os%", "idle%", "sec-prog");
}

void PrintRow(const std::string& label, const SingleBoxResult& result) {
  RecordRow(label, result);
  std::printf("%-34s %8.2f %8.2f %8.2f %6.1f%% | %5.1f%% %5.1f%% %4.1f%% %5.1f%% | %9.1fs\n",
              label.c_str(), result.p50_ms, result.p95_ms, result.p99_ms,
              result.drop_fraction * 100, result.primary_util * 100,
              result.secondary_util * 100, result.os_util * 100, result.idle_fraction * 100,
              result.secondary_progress);
}

void PrintPaperNote(const std::string& note) {
  std::printf("    paper: %s\n", note.c_str());
}

}  // namespace bench
}  // namespace perfiso
