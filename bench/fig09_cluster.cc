// Figure 9: the 75-machine production cluster experiment (§5.3, §6.2).
//
// Topology: 22 index columns x 2 rows (44 IndexServe machines) + 31 TLA
// machines. A client submits queries at 8,000 QPS total; TLAs round-robin
// across rows, so each IndexServe machine sees ~4,000 QPS (peak load).
// Three scenarios:
//   9a standalone        — IndexServe + HDFS client only (the baseline also
//                          carries HDFS, which uses up to 5% CPU, §6.2);
//   9b CPU-bound bully   — 48-thread CPU bully per machine, PerfIso blind
//                          isolation (B=8);
//   9c disk-bound bully  — DiskSPD-like bully on the HDD stripe, PerfIso
//                          disk throttles (100 MB/s + 20 IOPS for the bully;
//                          HDFS 60 MB/s, replication 20 MB/s).
// Reported: AVG/P95/P99 latency at each layer (leaf IndexServe, MLA, TLA).
//
// Paper shape: colocation under PerfIso stays within ~1.2 ms of the
// standalone P99 at every layer.
//
// The paper replays 200k queries (25 s at 8,000 QPS) 8 times; the default
// scale here runs a 4 s measurement once — set PERFISO_BENCH_SCALE=6 (or
// more) to approach the full run.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "src/cluster/cluster.h"
#include "src/obs/obs.h"
#include "src/obs/trace_export.h"

namespace {

using namespace perfiso;

enum class Secondary { kNone, kCpu, kDisk };

struct LayerRow {
  double avg = 0;
  double p95 = 0;
  double p99 = 0;
};

struct ClusterResult {
  LayerRow leaf;
  LayerRow mla;
  LayerRow tla;
  double mean_busy = 0;
  int64_t completed = 0;
  int64_t drops = 0;
};

LayerRow Summarize(const LatencyRecorder& rec) {
  return LayerRow{rec.Mean(), rec.P95(), rec.P99()};
}

// When `obs` is non-null the run carries a full observability context —
// cluster-wide tracing (TLA fan-out, fabric hops, every leaf's stages and
// I/O) plus cluster-level metric probes — and exports the artifacts into it.
// The tracer is passive, so observed and unobserved runs report identical
// latencies.
ClusterResult RunCluster(Secondary secondary, bench::ObsArtifacts* obs = nullptr) {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{22, 2, 31};
  Cluster cluster(&sim, options);

  cluster.ForEachIndexNode([&](IndexNodeRig& node) {
    // Every IndexServe machine runs an HDFS client (§5.3).
    node.StartHdfsClient(HdfsClient::Options{});

    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    config.blind.buffer_cores = 8;
    // Static disk limits from §5.3: HDFS 60 MB/s, replication 20 MB/s; the
    // disk bully gets the cluster experiment's 100 MB/s + 20 IOPS throttle.
    config.io_limits.push_back(
        IoOwnerLimit{kIoOwnerHdfsClient, 60e6, 0, /*priority=*/1, 1.0, 0});
    config.io_limits.push_back(
        IoOwnerLimit{kIoOwnerHdfsReplication, 20e6, 0, /*priority=*/1, 1.0, 0});
    if (secondary == Secondary::kCpu) {
      node.StartCpuBully(48);
    } else if (secondary == Secondary::kDisk) {
      DiskBully::Options bully;
      bully.owner = kIoOwnerDiskBully;
      node.StartDiskBully(bully);
      config.io_limits.push_back(
          IoOwnerLimit{kIoOwnerDiskBully, 100e6, 20, /*priority=*/2, 1.0, 0});
    }
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  });

  std::unique_ptr<ObsContext> obs_ctx;
  if (obs != nullptr) {
    ObsSpec spec;
    spec.enabled = true;
    spec.sampling = TraceSampling::kSlowestK;
    // A cluster trace fans out across every leaf of a row, so one retained
    // query is ~1k span records; 32 keeps the artifact in the single-digit
    // megabytes while still covering the whole P99 cohort of a smoke run.
    spec.slowest_k = 32;
    obs_ctx = std::make_unique<ObsContext>(spec);
    cluster.EnableTracing(&obs_ctx->tracer);
    obs_ctx->registry.AddProbe("cluster.completed", [&cluster] {
      return static_cast<double>(cluster.queries_completed());
    });
    obs_ctx->registry.AddProbe("cluster.leaf_drops", [&cluster] {
      return static_cast<double>(cluster.leaf_drops());
    });
    obs_ctx->registry.AddProbe("cluster.tla_p99_ms",
                               [&cluster] { return cluster.TlaLatency().P99(); });
  }

  Rng trace_rng(4242);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/8000, Rng(9),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster.SubmitQuery(work);
                        });

  const SimDuration warmup = kSecond / 2;
  const auto measure = static_cast<SimDuration>(4 * kSecond * bench::BenchScale());
  if (obs_ctx != nullptr) {
    const int client_pid = obs_ctx->tracer.RegisterProcess("client");
    client.SetTracer(&obs_ctx->tracer, obs_ctx->tracer.RegisterTrack(client_pid, "arrivals"));
    obs_ctx->StartSampling(&sim, warmup);
  }
  client.Run(0, warmup + measure);
  sim.RunUntil(warmup);
  cluster.ResetStats();
  const auto snaps = cluster.SnapshotAll();
  sim.RunUntil(warmup + measure);

  ClusterResult result;
  result.leaf = Summarize(cluster.MergedLeafLatency());
  result.mla = Summarize(cluster.MlaLatency());
  result.tla = Summarize(cluster.TlaLatency());
  result.mean_busy = cluster.MeanBusyFractionSince(snaps);
  result.completed = cluster.queries_completed();
  result.drops = cluster.leaf_drops();

  if (obs_ctx != nullptr) {
    obs_ctx->sampler->SampleNow(sim.Now());
    obs->enabled = true;
    obs->trace_json = ExportChromeTrace(obs_ctx->tracer);
    obs->metrics_json = obs_ctx->sampler->ToJson();
    obs->attribution = FormatP99AttributionTable(obs_ctx->tracer);
  }
  return result;
}

void RecordCluster(const char* label, const ClusterResult& r) {
  bench::ReportRow(label, {
                              {"leaf_avg_ms", r.leaf.avg},
                              {"leaf_p95_ms", r.leaf.p95},
                              {"leaf_p99_ms", r.leaf.p99},
                              {"mla_avg_ms", r.mla.avg},
                              {"mla_p95_ms", r.mla.p95},
                              {"mla_p99_ms", r.mla.p99},
                              {"tla_avg_ms", r.tla.avg},
                              {"tla_p95_ms", r.tla.p95},
                              {"tla_p99_ms", r.tla.p99},
                              {"mean_busy", r.mean_busy},
                              {"completed", static_cast<double>(r.completed)},
                              {"drops", static_cast<double>(r.drops)},
                          });
}

void PrintCluster(const char* label, const ClusterResult& r) {
  RecordCluster(label, r);
  std::printf("%-28s | leaf avg/p95/p99: %6.2f %6.2f %6.2f | MLA: %6.2f %6.2f %6.2f | "
              "TLA: %6.2f %6.2f %6.2f | busy %4.1f%% | done %lld drops %lld\n",
              label, r.leaf.avg, r.leaf.p95, r.leaf.p99, r.mla.avg, r.mla.p95, r.mla.p99,
              r.tla.avg, r.tla.p95, r.tla.p99, r.mean_busy * 100,
              static_cast<long long>(r.completed), static_cast<long long>(r.drops));
}

}  // namespace

int main() {
  using namespace perfiso::bench;
  StartReport("fig09_cluster");
  PrintHeader("75-machine cluster, per-layer latency", "Fig. 9a/9b/9c",
              "P99 increase vs standalone at most: CPU-bound 0.8/0.4/1.1 ms and disk-bound "
              "0.8/1.2/1.1 ms at IndexServe/MLA/TLA");

  // The three cluster scenarios are independent simulations; run them across
  // hardware threads and print in input order. The CPU-bound run (9b) carries
  // the observability context and exports the trace/metrics artifacts.
  ObsArtifacts obs;
  const std::vector<ClusterResult> results = RunParallel<ClusterResult>({
      [] { return RunCluster(Secondary::kNone); },
      [&obs] { return RunCluster(Secondary::kCpu, &obs); },
      [] { return RunCluster(Secondary::kDisk); },
  });
  const ClusterResult& standalone = results[0];
  const ClusterResult& cpu = results[1];
  const ClusterResult& disk = results[2];
  PrintCluster("9a standalone (+HDFS)", standalone);
  PrintCluster("9b CPU-bound + PerfIso", cpu);
  PrintCluster("9c disk-bound + PerfIso", disk);

  std::printf("\nP99 deltas vs standalone (ms):\n");
  std::printf("  CPU-bound : leaf %+0.2f  MLA %+0.2f  TLA %+0.2f   (paper: +0.8 +0.4 +1.1)\n",
              cpu.leaf.p99 - standalone.leaf.p99, cpu.mla.p99 - standalone.mla.p99,
              cpu.tla.p99 - standalone.tla.p99);
  std::printf("  disk-bound: leaf %+0.2f  MLA %+0.2f  TLA %+0.2f   (paper: +0.8 +1.2 +1.1)\n",
              disk.leaf.p99 - standalone.leaf.p99, disk.mla.p99 - standalone.mla.p99,
              disk.tla.p99 - standalone.tla.p99);
  std::printf("\n");
  WriteObsArtifacts("fig09_cluster", obs);
  return 0;
}
