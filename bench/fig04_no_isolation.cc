// Figure 4: single machine, IndexServe standalone vs. colocated with an
// unrestricted CPU bully (mid = 24 threads, high = 48 threads) at 2,000 and
// 4,000 QPS. Reports query latency percentiles (4a) and the CPU utilization
// breakdown (4b).
//
// Paper shape: mid raises P99 to ~15/18 ms (up to +42%); high raises it to
// ~349/354 ms (~29x), with 11-32% of queries timing out.
#include "bench/harness.h"

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  StartReport("fig04_no_isolation");
  PrintHeader("Colocation without isolation", "Fig. 4a/4b",
              "standalone p50=4ms p99=12ms; mid p99=15/18ms; high p99=349/354ms, "
              "11-32% queries dropped");
  PrintRowHeader();

  const struct {
    const char* label;
    int bully_threads;
    const char* note_2000;
    const char* note_4000;
  } kCases[] = {
      {"standalone", 0, "p50=4 p99=12 idle~80%", "p50=4 p99=12 idle~60%"},
      {"mid secondary (24 threads)", 24, "p99=15 (+3ms)", "p99=18 (+6ms)"},
      {"high secondary (48 threads)", 48, "p99=349, drops~11%", "p99=354, drops~32%"},
  };

  // Rows execute across hardware threads (each with its own Simulator);
  // printing happens afterwards in input order.
  std::vector<ScenarioSpec> scenarios;
  for (const auto& c : kCases) {
    for (double qps : {2000.0, 4000.0}) {
      ScenarioSpec scenario;
      scenario.load = ConstantLoad(qps);
      scenario.tenants.cpu_bully_threads = c.bully_threads;
      scenarios.push_back(scenario);
    }
  }
  const std::vector<SingleBoxResult> results = RunScenarios(scenarios);

  size_t row = 0;
  for (const auto& c : kCases) {
    for (double qps : {2000.0, 4000.0}) {
      PrintRow(std::string(c.label) + " @" + std::to_string(static_cast<int>(qps)),
               results[row++]);
      PrintPaperNote(qps == 2000 ? c.note_2000 : c.note_4000);
    }
  }

  // Traced run: the high-interference case at 2,000 QPS with observability
  // on — the attribution table shows where the 29x P99 inflation comes from
  // (cpu_wait, per §6.1.2), and the trace/metrics artifacts let Perfetto
  // show it query by query.
  std::printf("\ntraced run (high secondary @2000, obs on):\n");
  ScenarioSpec traced;
  traced.name = "fig04-high-2000";
  traced.load = ConstantLoad(2000);
  traced.tenants.cpu_bully_threads = 48;
  ObsArtifacts obs;
  const SingleBoxResult traced_result = RunSingleBox(WithBenchObs(traced), {}, &obs);
  PrintRow("high secondary @2000 (traced)", traced_result);
  WriteObsArtifacts("fig04_no_isolation", obs);
  return 0;
}
