#!/usr/bin/env python3
"""Engine-throughput regression guard for bench-smoke CI.

Compares a freshly produced BENCH_micro_overheads.json against the committed
baseline and fails if either guarded metric (pooled_events_per_sec,
cancel_pairs_per_sec) dropped by more than --max-drop (default 15%).

Absolute events-per-second numbers track the machine as much as the code, so
CI passes --normalize-key legacy_events_per_sec: both sides are divided by
the legacy-engine rate measured in the same process, turning the guard into
"the pooled engine's advantage over the in-binary baseline must not shrink
>15%" — stable across runner generations while still catching every real
hot-path regression. Run without --normalize-key for same-machine A/B runs.

Standard library only; exit code 0 = pass, 1 = regression, 2 = usage error.
"""

import argparse
import json
import sys

GUARDED_METRICS = ("pooled_events_per_sec", "cancel_pairs_per_sec")
ROW_LABEL = "engine_throughput"


def load_row(path, label):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    for row in doc.get("rows", []):
        if row.get("label") == label:
            return row.get("metrics", {})
    sys.exit(f"error: {path} has no '{label}' row")


def guarded_value(metrics, key, normalize_key, path):
    if key not in metrics:
        sys.exit(f"error: {path} row '{ROW_LABEL}' lacks metric '{key}'")
    value = float(metrics[key])
    if normalize_key is None:
        return value
    if normalize_key not in metrics:
        sys.exit(f"error: {path} row '{ROW_LABEL}' lacks normalize key '{normalize_key}'")
    denom = float(metrics[normalize_key])
    if denom <= 0:
        sys.exit(f"error: {path} normalize key '{normalize_key}' is not positive")
    return value / denom


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-produced BENCH_micro_overheads.json")
    parser.add_argument("--baseline", required=True, help="committed BENCH_micro_overheads.json")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="maximum tolerated fractional drop (default 0.15)")
    parser.add_argument("--normalize-key", default=None,
                        help="divide guarded metrics by this same-row metric on both sides "
                             "(e.g. legacy_events_per_sec) before comparing")
    args = parser.parse_args()
    if not 0 <= args.max_drop < 1:
        parser.error("--max-drop must be in [0, 1)")

    fresh = load_row(args.fresh, ROW_LABEL)
    baseline = load_row(args.baseline, ROW_LABEL)

    failures = []
    for key in GUARDED_METRICS:
        fresh_v = guarded_value(fresh, key, args.normalize_key, args.fresh)
        base_v = guarded_value(baseline, key, args.normalize_key, args.baseline)
        if base_v <= 0:
            sys.exit(f"error: baseline {key} is not positive")
        change = fresh_v / base_v - 1.0
        unit = f" (normalized by {args.normalize_key})" if args.normalize_key else ""
        print(f"{key}{unit}: baseline {base_v:.4g}, fresh {fresh_v:.4g} ({change:+.1%})")
        if change < -args.max_drop:
            failures.append(key)

    if failures:
        print(f"FAIL: {', '.join(failures)} dropped more than {args.max_drop:.0%} "
              f"below the committed baseline", file=sys.stderr)
        return 1
    print(f"OK: guarded metrics within {args.max_drop:.0%} of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
