#!/usr/bin/env python3
"""Bench regression guard for bench-smoke CI.

Two checks against the committed baseline, both required:

1. Coverage: every row and every metric present in the baseline must also be
   present in the fresh run. Only the guarded row was ever read before, so a
   bench that silently stopped producing a row (or renamed a metric) slipped
   through as a "pass" — a vanished row is a coverage regression, not a pass.

2. Throughput: the guarded metrics of --row (default: engine_throughput's
   pooled_events_per_sec and cancel_pairs_per_sec) must not drop by more
   than --max-drop (default 15%).

Absolute events-per-second numbers track the machine as much as the code, so
CI passes --normalize-key: both sides are divided by the named same-row
metric measured in the same process (legacy_events_per_sec for the engine
row; events_per_sec_t1 for the cluster-scale row), turning the guard into
"the relative advantage must not shrink" — stable across runner generations
while still catching every real hot-path regression. Run without
--normalize-key for same-machine A/B comparisons.

Standard library only; exit code 0 = pass, 1 = regression or lost coverage,
2 = usage error.
"""

import argparse
import json
import sys

DEFAULT_ROW = "engine_throughput"
DEFAULT_METRICS = "pooled_events_per_sec,cancel_pairs_per_sec"


def load_rows(path):
    """Returns {label: metrics-dict} for every row in a BENCH_*.json."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    rows = {}
    for row in doc.get("rows", []):
        label = row.get("label")
        if label is not None:
            rows[label] = row.get("metrics", {})
    return rows


def coverage_failures(baseline, fresh, fresh_path):
    """Every baseline row and metric must still exist in the fresh run."""
    failures = []
    for label, base_metrics in baseline.items():
        if label not in fresh:
            failures.append(f"{fresh_path} no longer produces row '{label}'")
            continue
        missing = sorted(set(base_metrics) - set(fresh[label]))
        if missing:
            failures.append(
                f"{fresh_path} row '{label}' lost metric(s): {', '.join(missing)}")
    return failures


def guarded_value(metrics, row, key, normalize_key, path):
    if key not in metrics:
        sys.exit(f"error: {path} row '{row}' lacks guarded metric '{key}'")
    value = float(metrics[key])
    if normalize_key is None:
        return value
    if normalize_key not in metrics:
        sys.exit(f"error: {path} row '{row}' lacks normalize key '{normalize_key}'")
    denom = float(metrics[normalize_key])
    if denom <= 0:
        sys.exit(f"error: {path} normalize key '{normalize_key}' is not positive")
    return value / denom


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-produced BENCH_*.json")
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--row", default=DEFAULT_ROW,
                        help=f"row label to guard for drops (default {DEFAULT_ROW})")
    parser.add_argument("--metrics", default=DEFAULT_METRICS,
                        help="comma-separated metric keys to guard for drops "
                             f"(default {DEFAULT_METRICS})")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="maximum tolerated fractional drop (default 0.15)")
    parser.add_argument("--normalize-key", default=None,
                        help="divide guarded metrics by this same-row metric on both "
                             "sides (e.g. legacy_events_per_sec) before comparing")
    args = parser.parse_args()
    if not 0 <= args.max_drop < 1:
        parser.error("--max-drop must be in [0, 1)")
    guarded_metrics = [m for m in args.metrics.split(",") if m]
    if not guarded_metrics:
        parser.error("--metrics must name at least one metric")

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)
    if args.row not in baseline:
        sys.exit(f"error: {args.baseline} has no '{args.row}' row")
    if args.row not in fresh:
        sys.exit(f"error: {args.fresh} has no '{args.row}' row")

    failures = coverage_failures(baseline, fresh, args.fresh)
    for line in failures:
        print(f"coverage: {line}", file=sys.stderr)

    for key in guarded_metrics:
        fresh_v = guarded_value(fresh[args.row], args.row, key, args.normalize_key,
                                args.fresh)
        base_v = guarded_value(baseline[args.row], args.row, key, args.normalize_key,
                               args.baseline)
        if base_v <= 0:
            sys.exit(f"error: baseline {key} is not positive")
        change = fresh_v / base_v - 1.0
        unit = f" (normalized by {args.normalize_key})" if args.normalize_key else ""
        print(f"{key}{unit}: baseline {base_v:.4g}, fresh {fresh_v:.4g} ({change:+.1%})")
        if change < -args.max_drop:
            failures.append(f"{key} dropped {-change:.1%} (> {args.max_drop:.0%})")

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed against the committed baseline",
              file=sys.stderr)
        return 1
    print(f"OK: full baseline coverage; guarded metrics within {args.max_drop:.0%} "
          f"of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
