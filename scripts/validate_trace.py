#!/usr/bin/env python3
"""Schema validator for the bench observability artifacts.

Checks TRACE_*.json (Chrome-trace-event / Perfetto JSON) and METRICS_*.json
(TimeseriesSampler payloads) emitted by the bench binaries:

  TRACE:   top-level traceEvents list; every event has a known "ph"; timeline
           events carry numeric ts >= 0 and integer pid/tid; per-(pid,tid)
           timestamps are monotone in array order; async b/e pairs balance per
           (cat, id, name) with no end-before-begin; every referenced pid has
           a process_name metadata record.
  METRICS: period_ns/times_ns/series present; times_ns strictly increasing;
           every series has exactly one value per sample time.

Stdlib only. Exit 0 when every file validates, 1 otherwise.

Usage: validate_trace.py FILE.json [FILE.json ...]
"""

import json
import sys

TIMELINE_PHASES = {"b", "e", "i"}
KNOWN_PHASES = TIMELINE_PHASES | {"M"}


def validate_trace(data, errors):
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("traceEvents missing, not a list, or empty")
        return

    last_ts = {}  # (pid, tid) -> last seen ts
    open_pairs = {}  # (cat, id, name) -> currently-open begin count
    named_pids = set()
    used_pids = set()

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown or missing ph {ph!r}")
            continue
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            continue

        ts = ev.get("ts")
        pid = ev.get("pid")
        tid = ev.get("tid")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: ph={ph} needs a numeric ts >= 0, got {ts!r}")
            continue
        if not isinstance(pid, int) or not isinstance(tid, int):
            errors.append(f"{where}: pid/tid must be integers, got {pid!r}/{tid!r}")
            continue
        used_pids.add(pid)

        track = (pid, tid)
        if ts < last_ts.get(track, 0):
            errors.append(
                f"{where}: ts {ts} goes backwards on track pid={pid} tid={tid} "
                f"(previous {last_ts[track]})")
        last_ts[track] = ts

        if ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if key[1] is None:
                errors.append(f"{where}: async {ph} event has no id")
                continue
            if ph == "b":
                open_pairs[key] = open_pairs.get(key, 0) + 1
            else:
                open_pairs[key] = open_pairs.get(key, 0) - 1
                if open_pairs[key] < 0:
                    errors.append(
                        f"{where}: async end before begin for cat={key[0]!r} "
                        f"id={key[1]!r} name={key[2]!r}")

    for key, depth in sorted(open_pairs.items(), key=repr):
        if depth > 0:
            errors.append(
                f"unbalanced async pair: {depth} unclosed begin(s) for "
                f"cat={key[0]!r} id={key[1]!r} name={key[2]!r}")
    for pid in sorted(used_pids - named_pids):
        errors.append(f"pid {pid} has timeline events but no process_name metadata")


def validate_metrics(data, errors):
    period = data.get("period_ns")
    times = data.get("times_ns")
    series = data.get("series")
    if not isinstance(period, int) or period <= 0:
        errors.append(f"period_ns must be a positive integer, got {period!r}")
    if not isinstance(times, list):
        errors.append("times_ns missing or not a list")
        return
    for i in range(1, len(times)):
        if times[i] <= times[i - 1]:
            errors.append(f"times_ns not strictly increasing at index {i}")
            break
    if not isinstance(series, dict):
        errors.append("series missing or not an object")
        return
    for name, values in series.items():
        if not isinstance(values, list) or len(values) != len(times):
            errors.append(
                f"series {name!r}: {len(values) if isinstance(values, list) else '?'} "
                f"values for {len(times)} sample times")


def validate_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable or invalid JSON: {e}"]

    errors = []
    if isinstance(data, dict) and "traceEvents" in data:
        validate_trace(data, errors)
    elif isinstance(data, dict) and "series" in data:
        validate_metrics(data, errors)
    else:
        errors.append("neither a Chrome trace (traceEvents) nor a metrics payload (series)")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    failed = False
    for path in argv[1:]:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
