#!/usr/bin/env bash
# Tier-1 verification + sanitizer gate for the PerfIso reproduction.
#
#   1. Plain build: configure, build everything, run all ctest suites
#      (includes the perfiso_lint self-test and the repo-wide lint gate).
#   2. Static analysis: perfiso_lint over the whole tree (determinism &
#      lifetime rules, tools/lint/), plus clang-tidy when it is installed.
#   3. Sanitizer build: the same suite under ASan + UBSan (LeakSanitizer is
#      part of ASan on Linux), so callback-cycle leaks like the IndexServer
#      QueryState bug fail the gate instead of shipping.
#
# Usage: scripts/verify.sh [--skip-sanitizers] [--bench]
#
# --bench adds an optional stage: a Release build of bench/micro_overheads,
# run at full scale and checked against the committed
# BENCH_micro_overheads.json by scripts/check_bench_regression.py (>15%
# throughput drop fails). Off by default because a loaded dev machine makes
# absolute throughput noisy; run it before touching engine hot paths.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_SAN=0
RUN_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SAN=1 ;;
    --bench) RUN_BENCH=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== static analysis: perfiso_lint (+ clang-tidy when available) ==="
./build/perfiso_lint --root . --json build/lint_report.json

if command -v clang-tidy >/dev/null 2>&1; then
  # clang-tidy wants a compilation database; generate one in a scratch config
  # so the main build dir stays untouched.
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Sources only: headers are covered through HeaderFilterRegex.
  find src bench tools/lint -name '*.cc' | sort | \
    xargs -P "$JOBS" -n 4 clang-tidy -p build-tidy --quiet
else
  echo "clang-tidy not installed; skipping (CI runs it in the lint job)"
fi

if [[ "$RUN_BENCH" == "1" ]]; then
  echo "=== bench gate: micro_overheads vs committed baseline ==="
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-bench -j "$JOBS" --target micro_overheads
  mkdir -p build-bench/bench-out
  PERFISO_BENCH_OUT="$PWD/build-bench/bench-out" ./build-bench/bench/micro_overheads
  python3 scripts/check_bench_regression.py \
    --fresh build-bench/bench-out/BENCH_micro_overheads.json \
    --baseline BENCH_micro_overheads.json
fi

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "verify: OK (sanitizer pass skipped)"
  exit 0
fi

echo "=== sanitizer gate: ASan/UBSan/LSan over the full suite ==="
cmake -B build-asan -S . -DPERFISO_SANITIZE=ON
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "verify: OK"
