#!/usr/bin/env bash
# Tier-1 verification + sanitizer gate for the PerfIso reproduction.
#
#   1. Plain build: configure, build everything, run all ctest suites.
#   2. Sanitizer build: the same suite under ASan + UBSan (LeakSanitizer is
#      part of ASan on Linux), so callback-cycle leaks like the IndexServer
#      QueryState bug fail the gate instead of shipping.
#
# Usage: scripts/verify.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_SAN=0
if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  SKIP_SAN=1
fi

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "verify: OK (sanitizer pass skipped)"
  exit 0
fi

echo "=== sanitizer gate: ASan/UBSan/LSan over the full suite ==="
cmake -B build-asan -S . -DPERFISO_SANITIZE=ON
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "verify: OK"
