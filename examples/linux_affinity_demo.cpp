// linux_affinity_demo: the REAL syscall path, no simulation.
//
//   build/examples/linux_affinity_demo [seconds]
//
// Forks a few CPU-burner children as the "secondary tenant", registers them
// with LinuxPlatform, and runs the actual PerfIsoController poll loop in real
// time: /proc/stat sampling for the idle-core mask, sched_setaffinity(2) for
// job-object-style affinity, SIGSTOP/SIGCONT for the suspend path. On a
// many-core host you can watch the secondary's mask shrink when you load the
// machine; on a small container it mostly demonstrates the plumbing.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/perfiso/controller.h"
#include "src/platform/linux_platform.h"

using namespace perfiso;

namespace {

pid_t SpawnBurner() {
  const pid_t pid = fork();
  if (pid == 0) {
    volatile uint64_t sum = 0;
    for (;;) {
      // The paper's CPU bully: "each worker thread computing the sum of
      // several integer values".
      for (int i = 0; i < 1 << 20; ++i) {
        sum = sum + static_cast<uint64_t>(i);
      }
    }
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 5;

  LinuxPlatform platform;
  const int cores = platform.NumCores();
  std::printf("host has %d logical CPUs\n", cores);

  std::vector<pid_t> children;
  for (int i = 0; i < 2; ++i) {
    const pid_t pid = SpawnBurner();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    children.push_back(pid);
    platform.AddSecondaryPid(pid);
  }
  std::printf("spawned secondary pids:");
  for (pid_t pid : children) {
    std::printf(" %d", pid);
  }
  std::printf("\n");

  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  // Keep one core free for the "primary" (whatever else runs on this host);
  // clamp for single-core containers.
  config.blind.buffer_cores = cores > 1 ? 1 : 0;
  config.memory_check_every_n_polls = 50;
  PerfIsoController controller(&platform, config);
  Status status = controller.Initialize();
  if (!status.ok()) {
    std::fprintf(stderr, "controller init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Real-time poll loop (the simulator normally drives this).
  const auto poll_every = std::chrono::milliseconds(100);
  const int iterations = seconds * 10;
  for (int i = 0; i < iterations; ++i) {
    std::this_thread::sleep_for(poll_every);
    controller.Poll();
    if (i % 10 == 0) {
      const CpuSet idle = platform.IdleCores();
      std::printf("t=%2ds idle mask: %-20s secondary cores: %d (updates so far: %lld)\n",
                  i / 10, idle.ToString().c_str(), controller.secondary_cores(),
                  static_cast<long long>(controller.stats().affinity_updates));
    }
  }

  std::printf("killing secondary and exiting\n");
  (void)platform.KillSecondary();
  for (pid_t pid : children) {
    int wait_status = 0;
    ::waitpid(pid, &wait_status, 0);
  }
  return 0;
}
