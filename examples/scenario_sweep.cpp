// Scenario sweep: the declarative workload path end to end.
//
// 1. Enumerates the bench harness's scenario registry and runs a few named
//    entries through the parallel runner.
// 2. Parses a scenario from Autopilot-style config text — the same flat
//    key=value format PerfIso configs are distributed in — and runs it.
//    Editing the text below (a different load shape, another tenant, an
//    isolation knob) is all it takes to define a new experiment.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace perfiso;
  using namespace perfiso::bench;

  std::printf("registered scenarios:\n");
  for (const std::string& name : ScenarioNames()) {
    std::printf("  %s\n", name.c_str());
  }

  const std::vector<std::string> sweep = {"standalone", "no-isolation-high", "blind-high",
                                          "flash-crowd-blind"};
  std::printf("\nsweep over %zu registry scenarios (parallel runner):\n", sweep.size());
  PrintRowHeader();
  const std::vector<SingleBoxResult> results = RunNamedScenarios(sweep);
  for (size_t i = 0; i < sweep.size(); ++i) {
    PrintRow(sweep[i], results[i]);
  }

  const char* kSpecText = R"(
# A burst train against a 48-thread bully under blind isolation, declared in
# the same config format Autopilot distributes.
workload.name = example-burst-train
workload.shape = square_wave
workload.qps = 1000
workload.square.burst_qps = 4000
workload.square.period_sec = 2
workload.square.duty = 0.25
workload.client = open_loop
workload.tenants.cpu_bully_threads = 48
workload.measure_ns = 6000000000
workload.isolation = perfiso
perfiso.cpu.mode = blind
perfiso.cpu.buffer_cores = 8
)";
  auto map = ConfigMap::Parse(kSpecText);
  if (!map.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", map.status().ToString().c_str());
    return 1;
  }
  auto spec = ScenarioSpec::FromConfigMap(*map);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec rejected: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("\nscenario parsed from config text (%s):\n", spec->name.c_str());
  PrintRowHeader();
  PrintRow(spec->name, RunSingleBox(*spec));
  return 0;
}
