// search_colocation: a configurable single-machine colocation experiment.
//
//   build/examples/search_colocation [qps] [bully_threads] [mode] [param]
//
//   qps            query rate (default 2000)
//   bully_threads  CPU bully worker count (default 48; 0 = standalone)
//   mode           none | blind | static_cores | cpu_rate_cap (default blind)
//   param          buffer cores for blind (default 8), secondary cores for
//                  static_cores, cap fraction for cpu_rate_cap
//
// Prints the full per-tenant utilization breakdown, latency distribution,
// scheduler burstiness, and secondary progress — everything the paper's
// single-box evaluation looks at.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/cluster/index_node.h"
#include "src/workload/query_trace.h"

using namespace perfiso;

int main(int argc, char** argv) {
  const double qps = argc > 1 ? std::atof(argv[1]) : 2000;
  const int bully_threads = argc > 2 ? std::atoi(argv[2]) : 48;
  const std::string mode_name = argc > 3 ? argv[3] : "blind";
  const double param = argc > 4 ? std::atof(argv[4]) : -1;

  Simulator sim;
  IndexNodeRig node(&sim, IndexNodeOptions{}, "search");
  if (bully_threads > 0) {
    node.StartCpuBully(bully_threads);
  }

  if (mode_name != "none") {
    auto mode = ParseCpuIsolationMode(mode_name);
    if (!mode.ok()) {
      std::fprintf(stderr, "unknown mode: %s\n", mode_name.c_str());
      return 1;
    }
    PerfIsoConfig config;
    config.cpu_mode = *mode;
    if (*mode == CpuIsolationMode::kBlindIsolation) {
      config.blind.buffer_cores = param > 0 ? static_cast<int>(param) : 8;
    } else if (*mode == CpuIsolationMode::kStaticCores) {
      config.static_secondary_cores = param > 0 ? static_cast<int>(param) : 8;
    } else if (*mode == CpuIsolationMode::kCpuRateCap) {
      config.cpu_rate_cap = param > 0 ? param : 0.05;
    }
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  Rng trace_rng(2017);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), qps, Rng(7),
                        [&](const QueryWork& query, SimTime) {
                          node.server().SubmitQuery(query);
                        });
  const SimDuration warmup = kSecond;
  const SimDuration measure = 6 * kSecond;
  client.Run(0, warmup + measure);
  sim.RunUntil(warmup);
  node.server().ResetStats();
  const auto snapshot = node.SnapshotUtilization();
  const double progress_before = node.SecondaryProgress();
  sim.RunUntil(warmup + measure);

  const auto& stats = node.server().stats();
  const auto& metrics = node.machine().metrics();
  std::printf("scenario: %.0f QPS, %d bully threads, mode=%s\n", qps, bully_threads,
              mode_name.c_str());
  std::printf("queries   : %lld submitted, %lld completed, %.2f%% dropped\n",
              static_cast<long long>(stats.submitted), static_cast<long long>(stats.completed),
              stats.DropFraction() * 100);
  std::printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n", stats.latency_ms.P50(),
              stats.latency_ms.P95(), stats.latency_ms.P99(), stats.latency_ms.Max());
  std::printf("cpu       : primary %.1f%%  secondary %.1f%%  os %.1f%%  idle %.1f%%\n",
              node.UtilizationSince(snapshot, TenantClass::kPrimary) * 100,
              node.UtilizationSince(snapshot, TenantClass::kSecondary) * 100,
              node.UtilizationSince(snapshot, TenantClass::kOs) * 100,
              node.IdleFractionSince(snapshot) * 100);
  std::printf("scheduler : max burst %d threads/5us, p99 primary wake delay %.0f us, "
              "%lld steals\n",
              metrics.max_ready_burst_5us, metrics.primary_sched_delay_us.P99(),
              static_cast<long long>(metrics.steals));
  std::printf("secondary : %.1f core-seconds of batch work\n",
              node.SecondaryProgress() - progress_before);
  if (node.perfiso() != nullptr) {
    std::printf("perfiso   : %lld polls, %lld affinity updates, S=%d cores\n",
                static_cast<long long>(node.perfiso()->stats().polls),
                static_cast<long long>(node.perfiso()->stats().affinity_updates),
                node.perfiso()->secondary_cores());
  }
  return 0;
}
