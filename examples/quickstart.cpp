// Quickstart: protect a latency-sensitive service from a batch job with CPU
// blind isolation, in ~40 lines.
//
//   build/examples/quickstart
//
// We assemble one simulated IndexServe machine (IndexNodeRig), colocate a
// 48-thread CPU bully, turn PerfIso on, and replay a few seconds of query
// traffic. The run prints tail latency and CPU utilization with and without
// isolation.
#include <cstdio>

#include "src/cluster/index_node.h"
#include "src/workload/query_trace.h"

using namespace perfiso;

namespace {

void RunOnce(bool with_perfiso) {
  Simulator sim;
  IndexNodeRig node(&sim, IndexNodeOptions{}, "demo");

  node.StartCpuBully(/*threads=*/48);
  if (with_perfiso) {
    PerfIsoConfig config;  // defaults: blind isolation, 8 buffer cores
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso failed to start: %s\n", status.ToString().c_str());
      return;
    }
  }

  Rng trace_rng(1);
  auto trace = GenerateTrace(TraceSpec{}, 10000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*queries_per_sec=*/2000, Rng(2),
                        [&](const QueryWork& query, SimTime) {
                          node.server().SubmitQuery(query);
                        });
  client.Run(0, 4 * kSecond);
  sim.RunUntil(kSecond);  // warm-up
  node.server().ResetStats();
  const auto snapshot = node.SnapshotUtilization();
  sim.RunUntil(4 * kSecond);

  const auto& stats = node.server().stats();
  std::printf("%-18s p50 %6.2f ms   p99 %7.2f ms   dropped %4.1f%%   CPU busy %5.1f%%   "
              "batch work %.0f core-s\n",
              with_perfiso ? "with PerfIso" : "without PerfIso", stats.latency_ms.P50(),
              stats.latency_ms.P99(), stats.DropFraction() * 100,
              (1 - node.IdleFractionSince(snapshot)) * 100, node.SecondaryProgress());
}

}  // namespace

int main() {
  std::printf("IndexServe (2,000 QPS) colocated with a 48-thread CPU bully:\n\n");
  RunOnce(/*with_perfiso=*/false);
  RunOnce(/*with_perfiso=*/true);
  std::printf("\nBlind isolation keeps the tail at its standalone level while the batch job\n"
              "soaks up the idle cores (the paper's Fig. 8 in miniature).\n");
  return 0;
}
