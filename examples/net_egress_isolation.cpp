// net_egress_isolation: the network fabric and the §3.2 egress cap, end to end.
//
//   build/examples/net_egress_isolation [egress_cap_mbps]
//
// Builds a small TLA -> MLA -> leaf cluster whose RPCs travel the src/net/
// fabric, starts an HDFS-replication-style network bully on every index
// machine, and compares the TLA tail with and without PerfIso's static
// egress cap. The bully never hurts its own machine (primary traffic
// preempts it in the NIC priority TX queues) — it hurts its *victims'* RX
// links and the shared ToR uplinks, which only shaping at the source fixes.
#include <cstdio>
#include <cstdlib>

#include "src/cluster/cluster.h"
#include "src/workload/query_trace.h"

using namespace perfiso;

namespace {

double RunOnce(double egress_cap_bps, double* secondary_egress_bps) {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{6, 1, 2};
  Cluster cluster(&sim, options);

  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    IndexNodeRig& node = cluster.index_node(i);
    NetworkBully::Options net;
    net.streams = 8;
    for (int p = 0; p < cluster.NumIndexNodes(); ++p) {
      if (p != i) {
        net.peers.push_back(cluster.index_endpoint(p));
      }
    }
    node.StartNetworkBully(&cluster.fabric(), cluster.index_endpoint(i), net);

    PerfIsoConfig config;  // blind isolation, 8 buffer cores
    config.egress_rate_cap_bps = egress_cap_bps;
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  Rng trace_rng(5);
  auto trace = GenerateTrace(TraceSpec{}, 8000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*queries_per_sec=*/1500, Rng(6),
                        [&](const QueryWork& query, SimTime) { cluster.SubmitQuery(query); });
  client.Run(0, 3 * kSecond);
  sim.RunUntil(kSecond);
  cluster.ResetStats();
  sim.RunUntil(3 * kSecond);

  *secondary_egress_bps = static_cast<double>(cluster.SecondaryEgressBytes()) /
                          ToSeconds(2 * kSecond) / cluster.NumIndexNodes();
  return cluster.TlaLatency().P99();
}

}  // namespace

int main(int argc, char** argv) {
  const double cap_mbps = argc > 1 ? std::atof(argv[1]) : 50;

  double uncapped_egress = 0;
  const double uncapped_p99 = RunOnce(0, &uncapped_egress);
  double capped_egress = 0;
  const double capped_p99 = RunOnce(cap_mbps * 1e6, &capped_egress);

  std::printf("network bully on every index machine (8 x 1 MB streams each)\n\n");
  std::printf("%-24s %12s %22s\n", "scenario", "TLA p99(ms)", "egress/machine(MB/s)");
  std::printf("%-24s %12.2f %22.1f\n", "uncapped", uncapped_p99, uncapped_egress / 1e6);
  std::printf("%-24s %12.2f %22.1f\n", "egress cap", capped_p99, capped_egress / 1e6);
  std::printf("\nthe cap (%g MB/s) shapes the bully at the source; the cluster tail recovers "
              "%.1fx\n",
              cap_mbps, uncapped_p99 / capped_p99);
  return 0;
}
