// cluster_fanout: a miniature of the paper's 75-machine experiment (§5.3).
//
//   build/examples/cluster_fanout [columns] [rows] [qps]
//
// Builds a TLA -> MLA -> leaf IndexServe cluster, colocates a CPU bully with
// PerfIso blind isolation on every index machine, and reports per-layer
// latency — demonstrating that the slowest leaf dictates the response time
// and that PerfIso protects all layers.
#include <cstdio>
#include <cstdlib>

#include "src/cluster/cluster.h"
#include "src/workload/query_trace.h"

using namespace perfiso;

int main(int argc, char** argv) {
  ClusterOptions options;
  options.topology.columns = argc > 1 ? std::atoi(argv[1]) : 8;
  options.topology.rows = argc > 2 ? std::atoi(argv[2]) : 2;
  options.topology.tla_machines = 4;
  const double qps = argc > 3 ? std::atof(argv[3]) : 4000;

  Simulator sim;
  Cluster cluster(&sim, options);
  cluster.ForEachIndexNode([](IndexNodeRig& node) {
    node.StartCpuBully(48);
    PerfIsoConfig config;  // blind isolation, 8 buffer cores
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      std::fprintf(stderr, "PerfIso start failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  });

  Rng trace_rng(11);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), qps, Rng(12),
                        [&](const QueryWork& query, SimTime) { cluster.SubmitQuery(query); });
  client.Run(0, 3 * kSecond);
  sim.RunUntil(kSecond);
  cluster.ResetStats();
  const auto snaps = cluster.SnapshotAll();
  sim.RunUntil(3 * kSecond);

  const LatencyRecorder leaf = cluster.MergedLeafLatency();
  std::printf("cluster: %d columns x %d rows (+%d TLAs), %.0f QPS total, bully + PerfIso "
              "everywhere\n\n",
              options.topology.columns, options.topology.rows, options.topology.tla_machines,
              qps);
  std::printf("%-22s %8s %8s %8s\n", "layer", "avg(ms)", "p95(ms)", "p99(ms)");
  std::printf("%-22s %8.2f %8.2f %8.2f\n", "leaf IndexServe", leaf.Mean(), leaf.P95(),
              leaf.P99());
  std::printf("%-22s %8.2f %8.2f %8.2f\n", "mid-level aggregator", cluster.MlaLatency().Mean(),
              cluster.MlaLatency().P95(), cluster.MlaLatency().P99());
  std::printf("%-22s %8.2f %8.2f %8.2f\n", "top-level aggregator", cluster.TlaLatency().Mean(),
              cluster.TlaLatency().P95(), cluster.TlaLatency().P99());
  std::printf("\nmean machine utilization: %.1f%% (batch colocated under blind isolation)\n",
              cluster.MeanBusyFractionSince(snaps) * 100);
  std::printf("queries completed: %lld, leaf drops: %lld\n",
              static_cast<long long>(cluster.queries_completed()),
              static_cast<long long>(cluster.leaf_drops()));
  return 0;
}
