#include "tools/lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace perfiso {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer. Comments, string/char/raw-string literals, and preprocessor
// lines are consumed without emitting tokens; NOLINT directives found inside
// comments are collected into a per-line suppression map. Only `::` and `->`
// are merged into multi-character punctuation — `<` and `>` stay single so a
// `>>` closing two template levels never confuses the template-argument scan.
// ---------------------------------------------------------------------------
struct Token {
  // kString carries the literal's inner text (quotes stripped, escapes kept
  // verbatim) so OBS-001 can validate metric/span names; the determinism and
  // lifetime rules ignore string tokens entirely.
  enum class Kind { kIdent, kPunct, kString };
  Kind kind;
  std::string text;
  int line;
};

struct Suppression {
  bool all = false;
  std::set<std::string> rules;
};

struct Lexed {
  std::vector<Token> tokens;
  std::map<int, Suppression> suppressions;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Scans a comment's text for NOLINT / NOLINTNEXTLINE directives.
// `comment_line` is the line the comment starts on; occurrences inside a
// multi-line block comment are attributed to the line they appear on.
void ParseNolint(const std::string& text, int comment_line, Lexed* out) {
  size_t pos = 0;
  while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
    const int here =
        comment_line + static_cast<int>(std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
    size_t after = pos + 6;
    int target = here;
    if (text.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = here + 1;
    }
    Suppression& s = out->suppressions[target];
    if (after < text.size() && text[after] == '(') {
      const size_t close = text.find(')', after);
      const std::string inner =
          text.substr(after + 1, (close == std::string::npos ? text.size() : close) - after - 1);
      std::istringstream in(inner);
      std::string rule;
      while (std::getline(in, rule, ',')) {
        rule = Trim(rule);
        if (!rule.empty()) {
          s.rules.insert(rule);
        }
      }
      pos = (close == std::string::npos) ? text.size() : close + 1;
    } else {
      s.all = true;
      pos = after;
    }
  }
}

Lexed Lex(const std::string& s) {
  Lexed out;
  const size_t n = s.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // nothing but whitespace so far on this line
  bool in_preproc = false;

  const auto emit = [&](Token::Kind kind, std::string text, int at) {
    if (!in_preproc) {
      out.tokens.push_back(Token{kind, std::move(text), at});
    }
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      in_preproc = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor line continuation.
    if (in_preproc && c == '\\' && i + 1 < n && (s[i + 1] == '\n' || s[i + 1] == '\r')) {
      i += (i + 2 < n && s[i + 1] == '\r' && s[i + 2] == '\n') ? 3 : 2;
      ++line;
      continue;
    }
    if (c == '#' && at_line_start) {
      in_preproc = true;
      at_line_start = false;
      ++i;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const size_t end = s.find('\n', i);
      const size_t stop = (end == std::string::npos) ? n : end;
      ParseNolint(s.substr(i, stop - i), line, &out);
      i = stop;  // leave the '\n' for the line counter
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const size_t end = s.find("*/", i + 2);
      const size_t stop = (end == std::string::npos) ? n : end + 2;
      const std::string body = s.substr(i, stop - i);
      ParseNolint(body, line, &out);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = stop;
      continue;
    }
    // Raw string literals: (u8|u|U|L)?R"delim( ... )delim"
    if (IsIdentStart(c)) {
      size_t p = i;
      if (s[p] == 'u' && p + 1 < n && s[p + 1] == '8') {
        p += 2;
      } else if (s[p] == 'u' || s[p] == 'U' || s[p] == 'L') {
        p += 1;
      }
      if (p < n && s[p] == 'R' && p + 1 < n && s[p + 1] == '"') {
        const size_t open = s.find('(', p + 2);
        if (open != std::string::npos) {
          const std::string delim = ")" + s.substr(p + 2, open - (p + 2)) + "\"";
          const size_t end = s.find(delim, open + 1);
          const size_t stop = (end == std::string::npos) ? n : end + delim.size();
          line += static_cast<int>(
              std::count(s.begin() + static_cast<std::ptrdiff_t>(i),
                         s.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
          i = stop;
          continue;
        }
      }
      // Plain identifier.
      size_t e = i;
      while (e < n && IsIdentChar(s[e])) {
        ++e;
      }
      emit(Token::Kind::kIdent, s.substr(i, e - i), line);
      i = e;
      continue;
    }
    // Numbers (consumed so 1'000'000 digit separators can't open a char
    // literal; exponent signs ride along).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      size_t e = i;
      while (e < n) {
        const char d = s[e];
        if (IsIdentChar(d) || d == '.') {
          ++e;
        } else if (d == '\'' && e + 1 < n && IsIdentChar(s[e + 1])) {
          e += 2;
        } else if ((d == '+' || d == '-') && e > i &&
                   (s[e - 1] == 'e' || s[e - 1] == 'E' || s[e - 1] == 'p' || s[e - 1] == 'P')) {
          ++e;
        } else {
          break;
        }
      }
      i = e;
      continue;
    }
    // String / char literals. Double-quoted literals become kString tokens
    // (OBS-001 validates them); char literals are consumed silently.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      size_t e = i + 1;
      while (e < n) {
        if (s[e] == '\\' && e + 1 < n) {
          e += 2;
          continue;
        }
        if (s[e] == quote) {
          ++e;
          break;
        }
        if (s[e] == '\n') {
          ++line;  // ill-formed C++, but keep line numbers sane
        }
        ++e;
      }
      if (quote == '"') {
        const size_t body = i + 1;
        const size_t body_end = (e > i + 1 && s[e - 1] == '"') ? e - 1 : e;
        emit(Token::Kind::kString, s.substr(body, body_end - body), start_line);
      }
      i = e;
      continue;
    }
    // Punctuation; merge only :: and ->.
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      emit(Token::Kind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      emit(Token::Kind::kPunct, "->", line);
      i += 2;
      continue;
    }
    emit(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule helpers.
// ---------------------------------------------------------------------------
bool SuffixMatch(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size() || path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/';
}

bool MatchesAny(const std::string& path, const std::vector<std::string>& suffixes) {
  for (const std::string& suffix : suffixes) {
    if (SuffixMatch(path, suffix)) {
      return true;
    }
  }
  return false;
}

const std::set<std::string> kClockIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday", "clock_gettime",
};
const std::set<std::string> kRngIdents = {
    "random_device", "mt19937",     "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24",  "ranlux48",
};
const std::set<std::string> kUnorderedIdents = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
};
const std::set<std::string> kOrderedByKey = {
    "map", "set", "multimap", "multiset", "priority_queue",
};

// OBS-001: the observability sinks whose name argument must be a single
// lowercase dot-separated string literal, and which argument carries the
// name (Tracer::Span takes the context first). Registration calls
// (RegisterProcess/RegisterTrack) are deliberately absent: topology names
// are per-machine and may be built at rig-construction time.
const std::map<std::string, int> kObsSinkNameArg = {
    {"AddCounter", 0}, {"AddGauge", 0}, {"AddProbe", 0}, {"AddHistogram", 0},
    {"Instant", 0},    {"BeginTrace", 0}, {"Span", 1},
};

// Lowercase dot-separated: [a-z0-9_]+(\.[a-z0-9_]+)*
bool IsObsMetricName(const std::string& s) {
  bool segment_empty = true;
  for (const char c : s) {
    if (c == '.') {
      if (segment_empty) {
        return false;
      }
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  return !segment_empty;
}

// Splits the call starting at toks[open] == "(" into top-level argument
// spans and returns the tokens of argument `arg_index` (empty when the call
// has fewer arguments or the parens never close).
std::vector<const Token*> CallArgument(const std::vector<Token>& toks, size_t open,
                                       int arg_index) {
  std::vector<const Token*> arg;
  int depth = 1;
  int current = 0;
  for (size_t j = open + 1; j < toks.size() && depth > 0; ++j) {
    const std::string& p = toks[j].text;
    if (p == "(" || p == "[" || p == "{") {
      ++depth;
    } else if (p == ")" || p == "]" || p == "}") {
      --depth;
      if (depth == 0) {
        return current == arg_index ? arg : std::vector<const Token*>{};
      }
    } else if (p == "," && depth == 1) {
      if (current == arg_index) {
        return arg;
      }
      ++current;
      continue;
    }
    if (current == arg_index) {
      arg.push_back(&toks[j]);
    }
  }
  return {};
}

// True when tokens[idx] reads as a free-function call: `name(` not reached
// through `.`/`->` (member access) and not preceded by a non-keyword
// identifier (which would make it a declaration like `SimTime time(...)`).
bool IsFreeCall(const std::vector<Token>& toks, size_t idx) {
  static const std::set<std::string> kCallContextKeywords = {
      "return", "co_return", "co_yield", "case", "if", "while", "else", "do",
  };
  if (idx + 1 >= toks.size() || toks[idx + 1].text != "(") {
    return false;
  }
  if (idx == 0) {
    return true;
  }
  const Token& prev = toks[idx - 1];
  if (prev.text == "." || prev.text == "->") {
    return false;
  }
  return prev.kind != Token::Kind::kIdent || kCallContextKeywords.count(prev.text) != 0;
}

bool PrecededByStd(const std::vector<Token>& toks, size_t idx) {
  return idx >= 2 && toks[idx - 1].text == "::" && toks[idx - 2].text == "std";
}

// ---------------------------------------------------------------------------
// LIFE-001 scope machine: tracks class/struct bodies, their EventHandle
// members, and whether the class declares a destructor or any Cancel* member.
// ---------------------------------------------------------------------------
struct ClassScope {
  bool is_class = false;
  std::string name;
  bool has_dtor = false;
  bool has_cancel = false;
  std::vector<std::pair<int, std::string>> handle_members;  // (line, name)
};

// Case-insensitive substring probe for FLT-001's identifier matching, so
// retry_count, RetryLoop, and kMaxRetries all read as retry-related.
bool IdentContains(const std::string& text, const std::string& lowered_needle) {
  std::string lowered;
  lowered.reserve(text.size());
  for (const char c : text) {
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lowered.find(lowered_needle) != std::string::npos;
}

bool BufferContains(const std::vector<const Token*>& buf, const std::string& text) {
  for (const Token* t : buf) {
    if (t->text == text) {
      return true;
    }
  }
  return false;
}

void InspectStatement(const std::vector<const Token*>& buf, ClassScope* scope) {
  if (!scope->is_class || buf.empty()) {
    return;
  }
  for (size_t k = 0; k + 1 < buf.size(); ++k) {
    if (buf[k]->text == "~" && buf[k + 1]->text == scope->name) {
      scope->has_dtor = true;
    }
    if (buf[k]->kind == Token::Kind::kIdent &&
        buf[k]->text.find("Cancel") != std::string::npos && buf[k + 1]->text == "(") {
      scope->has_cancel = true;
    }
  }
  // Member declaration: a statement at class depth mentioning EventHandle
  // with no parentheses (parens mean a function signature or NSDMI call).
  if (BufferContains(buf, "EventHandle") && !BufferContains(buf, "(") &&
      !BufferContains(buf, "using") && !BufferContains(buf, "typedef") &&
      !BufferContains(buf, "friend") && !BufferContains(buf, "class") &&
      !BufferContains(buf, "struct")) {
    const Token* name = nullptr;
    for (const Token* t : buf) {
      if (t->kind == Token::Kind::kIdent) {
        name = t;
      }
    }
    if (name != nullptr && name->text != "EventHandle") {
      scope->handle_members.emplace_back(name->line, name->text);
    }
  }
}

}  // namespace

FileCategory CategorizeByPath(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  FileCategory category = FileCategory::kOther;
  size_t pos = 0;
  while (pos <= norm.size()) {
    const size_t next = norm.find('/', pos);
    const std::string part = norm.substr(pos, (next == std::string::npos ? norm.size() : next) - pos);
    // Right-most wins so tools/lint/testdata/src/... categorizes as src.
    if (part == "src") {
      category = FileCategory::kSrc;
    } else if (part == "bench") {
      category = FileCategory::kBench;
    } else if (part == "tests") {
      category = FileCategory::kTests;
    } else if (part == "examples") {
      category = FileCategory::kExamples;
    }
    if (next == std::string::npos) {
      break;
    }
    pos = next + 1;
  }
  return category;
}

const char* CategoryName(FileCategory category) {
  switch (category) {
    case FileCategory::kSrc:
      return "src";
    case FileCategory::kBench:
      return "bench";
    case FileCategory::kTests:
      return "tests";
    case FileCategory::kExamples:
      return "examples";
    case FileCategory::kOther:
      return "other";
  }
  return "?";
}

std::vector<Finding> LintSource(const std::string& path, const std::string& content,
                                const LintOptions& options) {
  const Lexed lx = Lex(content);
  const std::vector<Token>& toks = lx.tokens;
  const FileCategory category = CategorizeByPath(path);
  const bool det001_allowed = MatchesAny(path, options.det001_allowlist);
  const bool det002_allowed = MatchesAny(path, options.det002_allowlist);
  const bool sim_visible = category == FileCategory::kSrc || category == FileCategory::kBench;

  std::vector<Finding> findings;
  const auto add = [&](int line, const std::string& rule, std::string message) {
    const auto it = lx.suppressions.find(line);
    if (it != lx.suppressions.end()) {
      const Suppression& s = it->second;
      // Accept both NOLINT(perfiso-DET-003) and NOLINT(DET-003).
      const std::string bare = rule.rfind("perfiso-", 0) == 0 ? rule.substr(8) : rule;
      if (s.all || s.rules.count(rule) != 0 || s.rules.count(bare) != 0) {
        return;
      }
    }
    findings.push_back(Finding{path, line, rule, std::move(message)});
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) {
      continue;
    }
    // DET-001: wall-clock reads. Clock type identifiers are flagged anywhere
    // (aliasing `using Clock = std::chrono::steady_clock` must not launder
    // the read); time() only as a free call so `e.time` stays quiet.
    if (!det001_allowed) {
      if (kClockIdents.count(t.text) != 0) {
        add(t.line, "perfiso-DET-001",
            "wall-clock source '" + t.text +
                "' — simulated time must come from Simulator::Now(); real-time "
                "measurement belongs in the bench harness allowlist");
      } else if (t.text == "time" && IsFreeCall(toks, i)) {
        add(t.line, "perfiso-DET-001",
            "wall-clock call 'time()' — simulated time must come from Simulator::Now()");
      }
    }
    // DET-002: ad-hoc randomness.
    if (!det002_allowed) {
      if (kRngIdents.count(t.text) != 0) {
        add(t.line, "perfiso-DET-002",
            "ad-hoc randomness '" + t.text +
                "' — use a seeded perfiso::Rng (src/util/rng.h) so runs replay "
                "bit-identically");
      } else if ((t.text == "rand" || t.text == "srand") && IsFreeCall(toks, i)) {
        add(t.line, "perfiso-DET-002",
            "ad-hoc randomness '" + t.text +
                "()' — use a seeded perfiso::Rng (src/util/rng.h)");
      }
    }
    // DET-003: hash containers in simulation-visible code.
    if (sim_visible && kUnorderedIdents.count(t.text) != 0) {
      add(t.line, "perfiso-DET-003",
          "'std::" + t.text +
              "' in simulation-visible code — hash-seed iteration order varies "
              "across runs; use std::map/std::set or an index-keyed vector");
    }
    // DET-004: ordered containers keyed by raw pointer value.
    if (kOrderedByKey.count(t.text) != 0 && PrecededByStd(toks, i) && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      int depth = 1;
      const Token* last = nullptr;  // last token of the first template argument
      for (size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
        const std::string& p = toks[j].text;
        if (p == "<") {
          ++depth;
        } else if (p == ">") {
          --depth;
          if (depth == 0) {
            break;
          }
        } else if (p == "," && depth == 1) {
          break;
        }
        last = &toks[j];
      }
      if (last != nullptr && last->text == "*") {
        add(t.line, "perfiso-DET-004",
            "'std::" + t.text +
                "' keyed by raw pointer value — address order differs across "
                "runs; key by a stable id (or supply a by-value comparator and "
                "suppress with rationale)");
      }
    }
    // OBS-001: names passed to the observability sinks must be single
    // lowercase dot-separated string literals. Sinks are always reached as
    // member calls (registry.Add*, tracer->Instant/Span/BeginTrace), which
    // keeps their declarations and definitions out of scope.
    if (const auto sink = kObsSinkNameArg.find(t.text);
        sink != kObsSinkNameArg.end() && i >= 1 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const std::vector<const Token*> arg = CallArgument(toks, i + 1, sink->second);
      const bool single_literal = arg.size() == 1 && arg[0]->kind == Token::Kind::kString;
      if (!single_literal || !IsObsMetricName(arg[0]->text)) {
        add(t.line, "perfiso-OBS-001",
            "name argument of '" + t.text +
                "' must be a single lowercase dot-separated string literal "
                "(\"layer.event\") — hot paths never build metric/span names, "
                "and the export vocabulary stays greppable");
      }
    }
  }

  // FLT-001 pass: retries must be bounded and backed off. Two shapes:
  //  (a) ScheduleAfter(...) arming something retry-named with no
  //      backoff-derived delay anywhere nearby — a fixed-delay retry hammers
  //      a degraded resource at line rate instead of yielding to it;
  //  (b) a while/for loop whose header names a retry variable but carries no
  //      bound comparison — an unbounded retry loop can spin forever when the
  //      fault never clears. ScheduleOrTighten is exempt (the disk/net bucket
  //      wakes reuse a retry_event_ slot but are paced by the resource model,
  //      not a retry policy), as are range-for loops (bounded by their
  //      container).
  {
    std::set<int> retry_lines;    // lines holding a retry-named identifier
    std::set<int> backoff_lines;  // lines holding a backoff-named identifier
    for (const Token& t : toks) {
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }
      if (IdentContains(t.text, "retry")) {
        retry_lines.insert(t.line);
      }
      if (IdentContains(t.text, "backoff")) {
        backoff_lines.insert(t.line);
      }
    }
    const auto any_in = [](const std::set<int>& lines, int lo, int hi) {
      const auto it = lines.lower_bound(lo);
      return it != lines.end() && *it <= hi;
    };
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent || i + 1 >= toks.size() || toks[i + 1].text != "(") {
        continue;
      }
      // (a) Retry arming without backoff. "Retry-named" means an identifier
      // containing "retry" on the call's own line or the two above (the
      // handle being assigned, or the callback being armed); "nearby" backoff
      // evidence is any backoff-named identifier within ±20 lines, which
      // keeps a ComputeBackoff() a few statements earlier in scope.
      if (t.text == "ScheduleAfter") {
        if (any_in(retry_lines, t.line - 2, t.line) &&
            !any_in(backoff_lines, t.line - 20, t.line + 20)) {
          add(t.line, "perfiso-FLT-001",
              "retry armed via ScheduleAfter with no backoff in sight — "
              "re-issues must use ComputeBackoff (src/fault/retry.h) so a "
              "degraded resource is not hammered at a fixed cadence");
        }
        continue;
      }
      // (b) Unbounded retry loop. Scan the loop header: a retry-named
      // identifier with no `<`/`>` bound comparison is flagged; a top-level
      // `:` marks a range-for, bounded by its container.
      if (t.text == "while" || t.text == "for") {
        int depth = 1;
        bool names_retry = false;
        bool has_bound = false;
        bool range_for = false;
        for (size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
          const Token& h = toks[j];
          if (h.text == "(") {
            ++depth;
          } else if (h.text == ")") {
            --depth;
          } else if (h.kind == Token::Kind::kIdent) {
            names_retry = names_retry || IdentContains(h.text, "retry");
          } else if (h.kind == Token::Kind::kPunct) {
            has_bound = has_bound || h.text == "<" || h.text == ">";
            range_for = range_for || (depth == 1 && h.text == ":");
          }
        }
        if (names_retry && !has_bound && !range_for) {
          add(t.line, "perfiso-FLT-001",
              "retry loop with no bound in its header — cap attempts "
              "(RetryPolicy::max_attempts) so a fault that never clears "
              "cannot spin the simulation forever");
        }
      }
    }
  }

  // PERF-001 pass: re-arming a held handle inside a loop body. The shape
  //
  //   handle = sim->Schedule(...);       // or ScheduleAfter
  //
  // in a loop allocates, links, and (next trip) orphans a fresh event record
  // per iteration, when Reschedule(handle, when) relinks the already-armed
  // record in O(1) on the timing wheel — or ScheduleOrTighten when the
  // handle may be stale. Only a *bare* identifier target is flagged:
  // `slots[i] = ...` and `obj.h = ...` arm one event per distinct owner, and
  // `auto h = ...` declares a fresh handle. Lambda bodies reset the loop
  // context (a callback defined inside a loop does not *run* per iteration),
  // as does any other non-control brace (class, function, initializer).
  if (sim_visible) {
    static const std::set<std::string> kControlBraces = {
        "for", "while", "do", "if", "else", "switch", "case", "default", "try", "catch",
    };
    int loop_depth = 0;
    int paren = 0;
    std::vector<std::pair<int, int>> saved;  // per '{': (loop_depth, paren)
    std::vector<const Token*> stmt;
    const auto inspect = [&](std::vector<const Token*> span) {
      bool in_loop = loop_depth > 0;
      // Peel control headers off the front: a peeled for/while/do makes the
      // remainder a (braceless) loop body even outside any braced loop.
      while (!span.empty()) {
        const std::string& head = span[0]->text;
        if ((head == "for" || head == "while" || head == "if") && span.size() > 1 &&
            span[1]->text == "(") {
          int depth = 0;
          size_t j = 1;
          for (; j < span.size(); ++j) {
            if (span[j]->text == "(") {
              ++depth;
            } else if (span[j]->text == ")" && --depth == 0) {
              ++j;
              break;
            }
          }
          if (depth != 0) {
            return;  // header runs past the end of this fragment
          }
          in_loop = in_loop || head != "if";
          span.erase(span.begin(), span.begin() + static_cast<std::ptrdiff_t>(j));
        } else if (head == "else" || head == "do") {
          in_loop = in_loop || head == "do";
          span.erase(span.begin());
        } else {
          break;
        }
      }
      if (!in_loop || span.size() < 4 || span[0]->kind != Token::Kind::kIdent ||
          span[1]->text != "=" || span[2]->text == "=") {
        return;  // not `bare_ident = ...` (the `==` probe: two '=' tokens)
      }
      for (size_t k = 2; k + 1 < span.size(); ++k) {
        if (span[k]->kind == Token::Kind::kIdent &&
            (span[k]->text == "Schedule" || span[k]->text == "ScheduleAfter") &&
            span[k + 1]->text == "(") {
          add(span[k]->line, "perfiso-PERF-001",
              "'" + span[k]->text + "' re-arms '" + span[0]->text +
                  "' every loop iteration — Reschedule(" + span[0]->text +
                  ", when) relinks the pending event in O(1) instead of paying "
                  "allocate + sift churn per trip (ScheduleOrTighten if the "
                  "handle may be stale; suppress if each iteration truly needs "
                  "a distinct event)");
          return;
        }
      }
    };
    for (const Token& t : toks) {
      if (t.kind == Token::Kind::kPunct && t.text == "(") {
        ++paren;
        stmt.push_back(&t);
      } else if (t.kind == Token::Kind::kPunct && t.text == ")") {
        paren = std::max(paren - 1, 0);
        stmt.push_back(&t);
      } else if (t.kind == Token::Kind::kPunct && t.text == ";" && paren == 0) {
        inspect(stmt);
        stmt.clear();
      } else if (t.kind == Token::Kind::kPunct && t.text == "{") {
        inspect(stmt);  // catches `h = Schedule(t, [cap] {` before the split
        saved.emplace_back(loop_depth, paren);
        if (!stmt.empty() && kControlBraces.count(stmt[0]->text) == 0) {
          loop_depth = 0;  // lambda / class / function / init-list barrier
        } else if (!stmt.empty() &&
                   (stmt[0]->text == "for" || stmt[0]->text == "while" || stmt[0]->text == "do")) {
          ++loop_depth;
        }
        paren = 0;
        stmt.clear();
      } else if (t.kind == Token::Kind::kPunct && t.text == "}") {
        if (!saved.empty()) {
          loop_depth = saved.back().first;
          paren = saved.back().second;
          saved.pop_back();
        }
        stmt.clear();
      } else {
        stmt.push_back(&t);
      }
    }
    inspect(stmt);
  }

  // LIFE-001 pass: class scopes, members, destructors / Cancel members.
  {
    std::vector<ClassScope> stack;
    std::vector<const Token*> stmt;
    const auto current_class = [&]() -> ClassScope* {
      return (!stack.empty() && stack.back().is_class) ? &stack.back() : nullptr;
    };
    const auto finalize = [&](const ClassScope& scope) {
      if (!scope.is_class || scope.has_dtor || scope.has_cancel) {
        return;
      }
      for (const auto& [line, name] : scope.handle_members) {
        add(line, "perfiso-LIFE-001",
            "EventHandle member '" + name + "' but class '" + scope.name +
                "' has no destructor and no Cancel* member — an armed event can "
                "outlive its owner; cancel it in a destructor (or suppress with "
                "a note naming the owner of the lifecycle)");
      }
    };
    for (const Token& t : toks) {
      if (t.kind == Token::Kind::kString) {
        continue;  // "EventHandle" in a log message is not a member
      }
      if (t.text == ";") {
        if (ClassScope* scope = current_class()) {
          InspectStatement(stmt, scope);
        }
        stmt.clear();
      } else if (t.text == "{") {
        // Class header iff the statement names a class/struct (not an enum
        // class, not a template parameter list of a function — functions
        // carry a '(' after the keyword).
        ClassScope scope;
        for (size_t k = 0; k + 1 < stmt.size(); ++k) {
          const bool keyword = stmt[k]->text == "class" || stmt[k]->text == "struct";
          const bool enum_prefixed = k > 0 && stmt[k - 1]->text == "enum";
          if (keyword && !enum_prefixed && stmt[k + 1]->kind == Token::Kind::kIdent) {
            bool paren_after = false;
            for (size_t m = k + 1; m < stmt.size(); ++m) {
              if (stmt[m]->text == "(") {
                paren_after = true;
                break;
              }
            }
            if (!paren_after) {
              // Follow a qualified name (struct Outer::Inner { ... }) to its
              // last component so `~Inner` matches as the destructor.
              size_t name_at = k + 1;
              while (name_at + 2 < stmt.size() && stmt[name_at + 1]->text == "::" &&
                     stmt[name_at + 2]->kind == Token::Kind::kIdent) {
                name_at += 2;
              }
              scope.is_class = true;
              scope.name = stmt[name_at]->text;
            }
          }
        }
        if (ClassScope* enclosing = current_class()) {
          InspectStatement(stmt, enclosing);  // dtor/Cancel headers end in '{'
        }
        stack.push_back(scope);
        stmt.clear();
      } else if (t.text == "}") {
        if (!stack.empty()) {
          finalize(stack.back());
          stack.pop_back();
        }
        stmt.clear();
      } else {
        stmt.push_back(&t);
      }
    }
    // Unbalanced braces (truncated input): still report what was collected.
    for (const ClassScope& scope : stack) {
      finalize(scope);
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> LintFile(const std::string& path, const LintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "perfiso-IO", "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintSource(path, buf.str(), options);
}

std::string ToJson(const std::vector<Finding>& findings) {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            std::snprintf(hex, sizeof(hex), "\\u%04x", c);
            out += hex;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "{\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "{\"file\":\"" << escape(f.file) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << escape(f.rule) << "\",\"message\":\"" << escape(f.message) << "\"}";
  }
  out << "],\"count\":" << findings.size() << "}";
  return out.str();
}

}  // namespace lint
}  // namespace perfiso
