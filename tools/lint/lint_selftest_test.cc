// Self-test for perfiso_lint: fixture files under tools/lint/testdata/ carry
// seeded violations (asserted by exact rule id + line) next to clean decoys
// (comments, strings, raw strings, preprocessor text, allowlisted paths,
// category-scoped files) that must stay quiet, plus suppression coverage.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lint_core.h"

namespace perfiso {
namespace lint {
namespace {

#ifndef PERFISO_LINT_TESTDATA
#error "PERFISO_LINT_TESTDATA must point at tools/lint/testdata"
#endif

std::vector<std::pair<std::string, int>> RuleLines(const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    out.emplace_back(f.rule, f.line);
  }
  return out;
}

std::vector<Finding> LintFixture(const std::string& rel) {
  return LintFile(std::string(PERFISO_LINT_TESTDATA) + "/" + rel);
}

using RL = std::vector<std::pair<std::string, int>>;

TEST(LintFixtures, Det001FlagsEveryWallClockReadAndHonorsSuppression) {
  const RL got = RuleLines(LintFixture("src/bad_clock.cc"));
  const RL want = {
      {"perfiso-DET-001", 11},  // steady_clock::now()
      {"perfiso-DET-001", 15},  // alias laundering: using X = system_clock
      {"perfiso-DET-001", 17},  // time(nullptr)
  };
  EXPECT_EQ(got, want);  // line 20 is NOLINT-suppressed
}

TEST(LintFixtures, Det002FlagsAdHocRandomness) {
  const RL got = RuleLines(LintFixture("src/bad_rng.cc"));
  const RL want = {
      {"perfiso-DET-002", 8},   // std::mt19937
      {"perfiso-DET-002", 12},  // std::random_device
      {"perfiso-DET-002", 14},  // rand()
  };
  EXPECT_EQ(got, want);  // line 17 is NOLINTNEXTLINE-suppressed
}

TEST(LintFixtures, Det003FlagsHashContainersInSrc) {
  const RL got = RuleLines(LintFixture("src/bad_unordered.cc"));
  const RL want = {
      {"perfiso-DET-003", 9},
      {"perfiso-DET-003", 10},
  };
  EXPECT_EQ(got, want);  // includes on lines 4-5 are preprocessor text
}

TEST(LintFixtures, Det003IsScopedToSimulationVisibleCode) {
  EXPECT_TRUE(LintFixture("tests/unordered_ok.cc").empty());
}

TEST(LintFixtures, Det004FlagsPointerKeyedContainers) {
  const RL got = RuleLines(LintFixture("src/bad_ptr_key.cc"));
  const RL want = {
      {"perfiso-DET-004", 11},  // std::set<Node*>
      {"perfiso-DET-004", 12},  // std::map<Node*, int>
      {"perfiso-DET-004", 13},  // std::priority_queue<Node*>
  };
  EXPECT_EQ(got, want);  // pointer *values* and nested keys stay clean
}

TEST(LintFixtures, Life001FlagsHandleMembersWithoutTeardown) {
  const RL got = RuleLines(LintFixture("src/bad_life.cc"));
  const RL want = {
      {"perfiso-LIFE-001", 11},  // Leaky::pending_
  };
  EXPECT_EQ(got, want);  // dtor / CancelAll / NOLINT classes stay clean
}

TEST(LintFixtures, Flt001FlagsRetryWithoutBackoffAndUnboundedLoops) {
  const RL got = RuleLines(LintFixture("src/bad_retry.cc"));
  const RL want = {
      {"perfiso-FLT-001", 26},  // ScheduleAfter-armed retry, no backoff near
      {"perfiso-FLT-001", 31},  // while (r->NeedsRetry()) with no bound
  };
  // Quiet by design: the NOLINTNEXTLINE probe, ScheduleOrTighten bucket
  // wakes, range-for over retry handles, ComputeBackoff-fed ScheduleAfter,
  // the `<`-bounded retry loop, and the retry-free plain timer.
  EXPECT_EQ(got, want);
}

TEST(LintSource, Flt001BackoffEvidenceWindowIsTwentyLines) {
  // Backoff evidence exactly 20 lines above the arming line still counts...
  const std::string near_backoff =
      "void A(S* s) { auto d = ComputeBackoff(p, n, r); }\n" + std::string(19, '\n') +
      "void B(S* s) { s->retry_h = s->sim->ScheduleAfter(d, cb); }\n";
  EXPECT_TRUE(LintSource("src/x.cc", near_backoff).empty());
  // ...but 21 lines away it no longer reaches.
  const std::string far_backoff =
      "void A(S* s) { auto d = ComputeBackoff(p, n, r); }\n" + std::string(20, '\n') +
      "void B(S* s) { s->retry_h = s->sim->ScheduleAfter(d, cb); }\n";
  const auto findings = LintSource("src/x.cc", far_backoff);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perfiso-FLT-001");
  EXPECT_EQ(findings[0].line, 22);
}

TEST(LintSource, Flt001RetryNameWindowIsTwoLinesAboveTheCall) {
  // A retry identifier two lines above the ScheduleAfter still marks it as a
  // retry arm; three lines above does not.
  const auto in_window = LintSource(
      "src/x.cc", "int retry_budget;\nint y;\nauto h = sim->ScheduleAfter(d, cb);\n");
  ASSERT_EQ(in_window.size(), 1u);
  EXPECT_EQ(in_window[0].rule, "perfiso-FLT-001");
  const auto out_of_window = LintSource(
      "src/x.cc", "int retry_budget;\nint y;\nint z;\nauto h = sim->ScheduleAfter(d, cb);\n");
  EXPECT_TRUE(out_of_window.empty());
}

TEST(LintSource, Flt001LoopHeaderOnlyNotBody) {
  // Retry identifiers in the loop *body* do not make the loop a retry loop —
  // only the header is inspected.
  const auto findings = LintSource(
      "src/x.cc", "void F(S* s) { while (s->Pending()) { s->retry_count++; } }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, Flt001CaseInsensitiveIdentifiers) {
  const auto findings = LintSource(
      "src/x.cc", "void F(S* s) { while (s->NeedsRETRY()) { s->Go(); } }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perfiso-FLT-001");
}

TEST(LintFixtures, Perf001FlagsLoopReArmsAndHonorsSuppression) {
  const RL got = RuleLines(LintFixture("src/bad_rearm_loop.cc"));
  const RL want = {
      {"perfiso-PERF-001", 20},  // braced while body
      {"perfiso-PERF-001", 27},  // braceless for body
      {"perfiso-PERF-001", 33},  // conditional re-arm inside the loop
  };
  // Quiet by design: the NOLINTNEXTLINE fan-out, Reschedule, indexed and
  // member targets, the lambda defined inside the loop, and the
  // straight-line arm.
  EXPECT_EQ(got, want);
}

TEST(LintSource, Perf001BracelessAndDoWhileBodies) {
  const auto braceless = LintSource(
      "src/x.cc", "void F(S* s, H h) { while (s->Busy()) h = s->sim->Schedule(5, cb); }\n");
  ASSERT_EQ(braceless.size(), 1u);
  EXPECT_EQ(braceless[0].rule, "perfiso-PERF-001");
  const auto do_while = LintSource(
      "src/x.cc",
      "void F(S* s, H h) { do h = s->sim->ScheduleAfter(5, cb); while (s->Busy()); }\n");
  ASSERT_EQ(do_while.size(), 1u);
  EXPECT_EQ(do_while[0].rule, "perfiso-PERF-001");
}

TEST(LintSource, Perf001LambdaArgumentSplitFlagsOnce) {
  // The callback lambda's '{' splits the statement mid-call; the re-arm must
  // still be seen, and seen exactly once.
  const auto findings = LintSource(
      "src/x.cc",
      "void F(S* s, H h) { while (s->Busy()) { h = s->Schedule(5, [s] { s->Go(); }); } }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perfiso-PERF-001");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintSource, Perf001LambdaDefinedInLoopIsNotALoopBody) {
  // The lambda body runs per fire, not per iteration — no churn to flag.
  const auto findings = LintSource(
      "src/x.cc",
      "void F(S* s, H h) { while (s->Busy()) { s->Defer([&] { h = s->Schedule(5, cb); }); } }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, Perf001OnlyBitesBareIdentifierTargetsInSimVisibleCode) {
  const std::string indexed =
      "void F(S* s) { for (int i = 0; i < 4; ++i) s->slots[i] = s->Schedule(5, cb); }\n";
  EXPECT_TRUE(LintSource("src/x.cc", indexed).empty());
  const std::string bare =
      "void F(S* s, H h) { for (int i = 0; i < 4; ++i) h = s->Schedule(5, cb); }\n";
  ASSERT_EQ(LintSource("src/x.cc", bare).size(), 1u);
  EXPECT_TRUE(LintSource("tests/x.cc", bare).empty());
}

TEST(LintSource, Perf001StraightLineAndScheduleOrTightenAreClean) {
  EXPECT_TRUE(LintSource(
      "src/x.cc", "void F(S* s, H h) { if (s->Stale(h)) h = s->Schedule(5, cb); }\n").empty());
  EXPECT_TRUE(LintSource(
      "src/x.cc",
      "void F(S* s, H h) { while (s->Busy()) { s->ScheduleOrTighten(h, 5, cb); } }\n").empty());
}

TEST(LintFixtures, Obs001FlagsNonLiteralMetricNames) {
  const RL got = RuleLines(LintFixture("src/bad_obs_name.cc"));
  const RL want = {
      {"perfiso-OBS-001", 20},  // AddCounter(dynamic_name)
      {"perfiso-OBS-001", 21},  // AddGauge("Mixed.Case")
      {"perfiso-OBS-001", 22},  // AddHistogram("disk..queue", ...)
      {"perfiso-OBS-001", 23},  // Instant(ternary ? ... : ...)
      {"perfiso-OBS-001", 24},  // Span(ctx, dynamic_name, ...): name is arg 1
  };
  EXPECT_EQ(got, want);  // Clean() block: literals, RegisterProcess, NOLINT
}

TEST(LintSource, Obs001AcceptsNestedCallInContextArgument) {
  // The name of Span is argument 1; a nested BeginTrace call (with its own
  // comma) in argument 0 must not shift the argument split.
  const auto findings = LintSource(
      "src/x.cc", "void F(T* t) { t->Span(t->BeginTrace(\"isq\", 0), \"cpu.run\", c, 0, a, b); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, Obs001IgnoresDeclarationsAndFreeFunctions) {
  // Member declarations / definitions (no preceding . or ->) and unrelated
  // free functions named like sinks stay quiet.
  const auto findings = LintSource(
      "src/x.cc",
      "struct T { void Instant(const char* n, int t, long a); };\n"
      "void Tracer::Instant(const char* name, int track, long at) {}\n"
      "long Instant(long x) { return x; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, Obs001StringMemberDoesNotTripLife001) {
  // A string literal mentioning EventHandle inside a class must not register
  // as a handle member now that the lexer emits string tokens.
  const auto findings = LintSource(
      "src/x.cc", "class Owner {\n  const char* doc_ = \"EventHandle lives here\";\n};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtures, DecoyCorpusIsEntirelyClean) {
  const std::vector<Finding> got = LintFixture("src/clean_decoys.cc");
  EXPECT_TRUE(got.empty()) << (got.empty() ? "" : got.front().message);
}

TEST(LintFixtures, AllowlistsExemptTheSanctionedFiles) {
  EXPECT_TRUE(LintFixture("bench/micro_overheads.cc").empty());
  EXPECT_TRUE(LintFixture("src/util/rng.h").empty());
}

// --- Direct LintSource coverage of tokenizer / suppression corners --------

TEST(LintSource, BareNolintSuppressesEveryRule) {
  const auto findings = LintSource(
      "src/x.cc", "auto t = std::chrono::steady_clock::now();  // NOLINT\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, WrongRuleInNolintDoesNotSuppress) {
  const auto findings = LintSource(
      "src/x.cc", "auto t = std::chrono::steady_clock::now();  // NOLINT(perfiso-DET-002)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perfiso-DET-001");
}

TEST(LintSource, BareRuleNameInNolintSuppresses) {
  const auto findings =
      LintSource("src/x.cc", "std::unordered_map<int, int> m;  // NOLINT(DET-003)\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, DoubleAngleCloseDoesNotConfuseDet004) {
  // The '>>' closing two template levels must lex as two tokens; the key of
  // the outer map is a by-value pair, so this is clean.
  const auto findings = LintSource(
      "src/x.cc", "std::map<std::pair<int, int>, std::vector<int>> m;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, Det004SeesPointerKeyBehindNestedArgs) {
  const auto findings =
      LintSource("src/x.cc", "std::map<Thing*, std::vector<int>> m;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perfiso-DET-004");
}

TEST(LintSource, MultiLineBlockCommentKeepsLineNumbers) {
  const auto findings = LintSource(
      "src/x.cc", "/* line one\nline two\n*/\nstd::mt19937 gen;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintSource, PreprocessorContinuationSkipsWholeDirective) {
  const auto findings = LintSource(
      "src/x.cc", "#define PICK_CLOCK \\\n  std::chrono::steady_clock\nint x;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, MemberFunctionNamedCancelCountsAsTeardown) {
  const auto findings = LintSource(
      "src/x.cc",
      "class Owner {\n public:\n  void CancelPending();\n private:\n"
      "  EventHandle h_;\n};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintSource, VectorOfHandlesWithoutTeardownIsFlagged) {
  const auto findings = LintSource(
      "src/x.cc",
      "class Owner {\n  std::vector<EventHandle> handles_;\n};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perfiso-LIFE-001");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintSource, QualifiedClassNameMatchesItsDestructor) {
  // struct Outer::Inner { ~Inner(); ... } — the dtor must count as teardown.
  const auto findings = LintSource(
      "src/x.cc",
      "struct Outer::Inner {\n  ~Inner();\n  EventHandle h_;\n};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Categorize, RightmostComponentWins) {
  EXPECT_EQ(CategorizeByPath("/repo/src/sim/simulator.cc"), FileCategory::kSrc);
  EXPECT_EQ(CategorizeByPath("tools/lint/testdata/bench/x.cc"), FileCategory::kBench);
  EXPECT_EQ(CategorizeByPath("tools/lint/lint_core.cc"), FileCategory::kOther);
}

TEST(Json, EscapesAndCounts) {
  const std::string json = ToJson({Finding{"a\"b.cc", 7, "perfiso-DET-001", "msg"}});
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b.cc"), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace perfiso
