// CLI for the perfiso determinism & lifetime linter (see lint_core.h for the
// rules). With no path arguments it walks src/, bench/, tests/, examples/
// under --root (default: the current directory), in sorted order so output —
// like everything else in this repo — is deterministic.
//
//   perfiso_lint [--root DIR] [--json FILE] [--quiet] [paths...]
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint_core.h"

namespace fs = std::filesystem;
using perfiso::lint::Finding;
using perfiso::lint::LintFile;
using perfiso::lint::LintOptions;

namespace {

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

// Collects every lintable file under `dir` (which may not exist), sorted.
void CollectDir(const fs::path& dir, std::vector<std::string>* files) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return;
  }
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
      files->push_back(it->path().generic_string());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: perfiso_lint [--root DIR] [--json FILE] [--quiet] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perfiso_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::string> files;
  if (paths.empty()) {
    for (const char* dir : {"src", "bench", "tests", "examples"}) {
      CollectDir(fs::path(root) / dir, &files);
    }
    if (files.empty()) {
      std::cerr << "perfiso_lint: no lintable files under '" << root << "'\n";
      return 2;
    }
  } else {
    for (const std::string& p : paths) {
      std::error_code ec;
      if (fs::is_directory(p, ec)) {
        CollectDir(p, &files);
      } else {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const LintOptions options;
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> fs_found = LintFile(file, options);
    findings.insert(findings.end(), fs_found.begin(), fs_found.end());
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << " " << f.rule << " " << f.message << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "perfiso_lint: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << perfiso::lint::ToJson(findings) << "\n";
  }
  if (!quiet) {
    std::cerr << "perfiso_lint: " << files.size() << " files, " << findings.size()
              << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
