// Category decoy: DET-003 only bites simulation-visible code (src/, bench/),
// so a hash container in tests/ is fine.
#include <unordered_map>

inline std::unordered_map<int, int> g_fine_in_tests;
