// Allowlist decoy: this path suffix-matches the DET-001 allowlist entry
// bench/micro_overheads.cc, so its real-clock timing must not be flagged.
#include <chrono>

using Clock = std::chrono::steady_clock;

inline long RealElapsed() { return Clock::now().time_since_epoch().count(); }
