// PERF-001 fixture: handle re-arms inside loop bodies, next to the
// sanctioned shapes (Reschedule, indexed and member targets, lambda bodies
// defined in loops, straight-line re-arms) that must stay quiet.
#include "src/sim/simulator.h"

namespace fixture {

struct Rig {
  perfiso::Simulator* sim;
  perfiso::EventHandle deadline;
  std::vector<perfiso::EventHandle> slots;
  bool Busy() const;
  void Tick();
  ~Rig();
};

// Violation (a): braced loop body re-arming a bare handle each trip.
void PumpDeadline(Rig* r, perfiso::EventHandle h) {
  while (r->Busy()) {
    h = r->sim->ScheduleAfter(100, [r] { r->Tick(); });
  }
}

// Violation (b): braceless for body — header and body are one statement.
void SweepDeadline(Rig* r, perfiso::EventHandle h) {
  for (int i = 0; i < 8; ++i)
    h = r->sim->Schedule(1000, [r] { r->Tick(); });
}

// Violation (c): a conditional re-arm inside the loop still churns.
void LazyPump(Rig* r, perfiso::EventHandle h) {
  while (r->Busy()) {
    if (r->Busy()) h = r->sim->ScheduleAfter(50, [r] { r->Tick(); });
  }
}

// Suppressed: each iteration intentionally arms a distinct one-shot.
void FanOut(Rig* r, perfiso::EventHandle h) {
  while (r->Busy()) {
    // NOLINTNEXTLINE(perfiso-PERF-001) -- every trip arms a distinct event
    h = r->sim->ScheduleAfter(10, [r] { r->Tick(); });
  }
}

// Clean: Reschedule is the sanctioned loop re-arm.
void Glide(Rig* r, perfiso::EventHandle h) {
  while (r->Busy()) {
    r->sim->Reschedule(h, 100);
  }
}

// Clean: indexed target — one event per slot, not a re-arm.
void ArmAll(Rig* r, std::vector<perfiso::EventHandle>& slots) {
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i] = r->sim->ScheduleAfter(10 + i, [r] { r->Tick(); });
  }
}

// Clean: member target — each owner holds its own event.
void ArmOwner(Rig* r) {
  while (r->Busy()) {
    r->deadline = r->sim->ScheduleAfter(10, [r] { r->Tick(); });
  }
}

// Clean: the inner lambda is *defined* in the loop, but its body runs once
// per fire, not once per iteration — no churn to flag.
void Defer(Rig* r, perfiso::EventHandle h) {
  while (r->Busy()) {
    r->sim->Schedule(5, [r, &h] { h = r->sim->Schedule(9, [r] { r->Tick(); }); });
  }
}

// Clean: a straight-line re-arm (no loop) is the normal arming idiom.
void ArmOnce(Rig* r, perfiso::EventHandle h) {
  if (r->Busy()) h = r->sim->ScheduleAfter(10, [r] { r->Tick(); });
}

}  // namespace fixture
