// DET-003 fixture: hash containers in simulation-visible code. The
// #include lines below are also decoys — preprocessor text must not trip.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

inline std::unordered_map<int, int> g_bad_map;
inline std::unordered_set<std::string> g_bad_set;

// Iteration order here never reaches a digest; suppressed with rationale.
inline std::unordered_map<int, int> g_ok;  // NOLINT(perfiso-DET-003) fixture

}  // namespace fixture
