// Decoy corpus: every forbidden spelling below appears only where the
// tokenizer must not look. A correct linter reports nothing in this file.

// std::chrono::steady_clock::now(), std::mt19937, std::unordered_map.

/* block comment: time(nullptr); std::random_device; std::set<Node*> */

namespace fixture {

inline const char* kString = "std::unordered_set<int> rand() time(0)";
inline const char* kRaw = R"(std::mt19937 gen; gettimeofday(nullptr);)";
inline const char* kEscaped = "quote \" std::system_clock";
inline const char* kDelimRaw = R"lint(std::unordered_map<int, int> )lint";

// A member named `time` and member access through ./-> are not time().
struct Accessor {
  long time = 0;
};
inline long Member(const Accessor& a) { return a.time; }

// Digit separators must not open a char literal that swallows code.
inline long kBig = 1'000'000;
inline long AfterSeparators() { return kBig; }

}  // namespace fixture
