// OBS-001 fixture: metric/span names at observability sinks.
namespace fixture {

struct FakeRegistry {
  void* AddCounter(const char*) { return nullptr; }
  void* AddGauge(const char*) { return nullptr; }
  void* AddProbe(const char*) { return nullptr; }
  void* AddHistogram(const char*, double, double, int) { return nullptr; }
};

struct FakeTracer {
  int RegisterProcess(const char*) { return 0; }
  void Instant(const char*, int, long) {}
  unsigned long BeginTrace(const char*, long) { return 1; }
  void Span(unsigned long, const char*, int, int, long, long) {}
};

inline void Bad(FakeRegistry& registry, FakeTracer* tracer, bool hedged,
                const char* dynamic_name) {
  registry.AddCounter(dynamic_name);                              // line 20: not a literal
  registry.AddGauge("Mixed.Case");                                // line 21: uppercase
  registry.AddHistogram("disk..queue", 0, 1, 8);                  // line 22: empty segment
  tracer->Instant(hedged ? "is.hedge" : "is.retry", 0, 7);        // line 23: ternary
  tracer->Span(1, dynamic_name, 0, 0, 0, 7);                      // line 24: name is arg 1
}

inline void Clean(FakeRegistry& registry, FakeTracer* tracer, const char* machine) {
  registry.AddCounter("disk.reads.completed");
  registry.AddHistogram("indexserve.latency_ms", 0, 200, 40);
  tracer->Instant("perfiso.activate", 0, 7);
  tracer->Span(tracer->BeginTrace("isq", 0), "cpu.run", 4, 0, 0, 7);
  // Topology registration may build names — not a sink.
  tracer->RegisterProcess(machine);
  // NOLINTNEXTLINE(perfiso-OBS-001) fixture: suppressed dynamic name
  registry.AddGauge(machine);
  // Decoys: sink names in comments (AddCounter("X")) and strings stay quiet.
  const char* decoy = "tracer->Instant(name)";
  (void)decoy;
}

}  // namespace fixture
