// Allowlist decoy: suffix-matches the DET-002 allowlist entry src/util/rng.h
// — the one place sanctioned to touch raw engines for seeding.
#include <random>

inline unsigned FixtureSeedEntropy() { return std::random_device{}(); }
