// DET-004 fixture: containers keyed by raw pointer value.
#include <map>
#include <queue>
#include <set>
#include <utility>

namespace fixture {

struct Node {};

inline std::set<Node*> g_bad_set;
inline std::map<Node*, int> g_bad_map;
inline std::priority_queue<Node*> g_bad_heap;

// Decoys: pointers as mapped values (not keys) are fine, by-value keys are
// fine, and nested template args must not be mistaken for the key.
inline std::map<int, Node*> g_ok_values;
inline std::set<std::pair<int, int>> g_ok_pairs;
inline std::map<std::pair<int, int>, Node*> g_ok_nested;

// NOLINTNEXTLINE(perfiso-DET-004) fixture: comparator dereferences
inline std::set<Node*> g_suppressed;

}  // namespace fixture
