// FLT-001 fixture: retries without backoff and unbounded retry loops, next
// to the sanctioned shapes (ComputeBackoff nearby, bounded loops, range-for,
// ScheduleOrTighten) that must stay quiet. Layout note: the clean
// ComputeBackoff call sits more than 20 lines below the violations so its
// presence cannot exempt them.
#include "src/fault/retry.h"
#include "src/sim/simulator.h"

namespace fixture {

struct Rig {
  perfiso::Simulator* sim;
  perfiso::EventHandle retry_event;
  std::vector<perfiso::EventHandle> retry_events;
  perfiso::RetryPolicy policy;
  perfiso::Rng* rng;
  int retry_count = 0;
  bool NeedsRetry() const;
  void Reissue();
  ~Rig();
};

// Violation (a): a fixed-cadence retry — ScheduleAfter arming a retry with
// no backoff anywhere nearby.
void HammerRetry(Rig* r) {
  r->retry_event = r->sim->ScheduleAfter(100, [r] { r->Reissue(); });
}

// Violation (b): a retry loop whose header carries no bound.
void SpinRetry(Rig* r) {
  while (r->NeedsRetry()) {
    r->Reissue();
  }
}

// Suppressed: the cadence here is intentional (probe, not a retry).
void SuppressedProbe(Rig* r) {
  // NOLINTNEXTLINE(perfiso-FLT-001) -- fixed-cadence health probe by design
  r->retry_event = r->sim->ScheduleAfter(100, [r] { r->Reissue(); });
}

// Clean: ScheduleOrTighten bucket wakes are paced by the resource model.
void BucketWake(Rig* r) {
  r->sim->ScheduleOrTighten(r->retry_event, 100, [r] { r->Reissue(); });
}

// Clean: range-for over retry handles is bounded by the container.
void DrainRetries(Rig* r) {
  for (perfiso::EventHandle& pending : r->retry_events) {
    r->sim->CancelOwned(pending);
  }
}

// --------------------------------------------------------------------------
// Sanctioned backoff shapes. This block sits more than 20 lines below every
// violation above: the ComputeBackoff identifier here must not leak into
// their ±20-line evidence window, or the seeded findings would go quiet.
// --------------------------------------------------------------------------

// Clean: the re-issue delay comes from ComputeBackoff one line up.
void BackedOffRetry(Rig* r) {
  const perfiso::SimDuration delay = perfiso::ComputeBackoff(r->policy, r->retry_count, r->rng);
  r->retry_event = r->sim->ScheduleAfter(delay, [r] { r->Reissue(); });
}

// Clean: bounded retry loop (explicit `<` comparison in the header).
void BoundedRetry(Rig* r) {
  for (int retry = 0; retry < r->policy.max_attempts; ++retry) {
    r->Reissue();
  }
}

// Clean: ScheduleAfter with nothing retry-named on its line or the two
// above (the backoff evidence above also keeps this window quiet).
void PlainTimer(Rig* r) {
  r->sim->ScheduleAfter(100, [r] { r->Reissue(); });
}

}  // namespace fixture
