// DET-002 fixture: ad-hoc randomness.
#include <cstdlib>
#include <random>

namespace fixture {

inline int Bad1() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

inline unsigned Bad2() { return std::random_device{}(); }

inline int Bad3() { return rand() % 6; }

// NOLINTNEXTLINE(perfiso-DET-002) fixture: suppressed engine
inline std::mt19937_64 g_suppressed;

// Decoy: the word mt19937 in a comment, and "rand()" in a string.
inline const char* kDecoy = "std::random_device and rand()";

}  // namespace fixture
