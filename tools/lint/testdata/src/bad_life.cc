// LIFE-001 fixture: EventHandle members without a teardown path.
#include "src/sim/simulator.h"

namespace fixture {

class Leaky {
 public:
  void Arm();

 private:
  perfiso::EventHandle pending_;
  int counter_ = 0;
};

class HasDtor {
 public:
  ~HasDtor();

 private:
  perfiso::EventHandle pending_;
};

class HasCancel {
 public:
  void CancelAll();

 private:
  perfiso::EventHandle pending_;
};

class Suppressed {
 public:
  void Arm();

 private:
  // Lifecycle owned by the enclosing engine fixture.
  perfiso::EventHandle pending_;  // NOLINT(perfiso-LIFE-001)
};

struct PlainData {
  int x = 0;
};

}  // namespace fixture
