// DET-001 fixture: wall-clock reads in simulation-visible code.
#include <chrono>
#include <ctime>

namespace fixture {

// Decoy: mentioning std::chrono::steady_clock in a comment is fine.
inline const char* kDecoy = "std::chrono::system_clock::now()";

inline long Bad1() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

using LaunderedClock = std::chrono::system_clock;

inline long Bad2() { return time(nullptr); }

inline long Suppressed() {
  return time(nullptr);  // NOLINT(perfiso-DET-001) fixture: sanctioned read
}

}  // namespace fixture
