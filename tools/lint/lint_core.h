// perfiso_lint: repo-specific determinism & lifetime rules for the PerfIso
// reproduction, run over src/, bench/, tests/, and examples/.
//
// The checker is a real single-pass tokenizer, not a grep: it skips line and
// block comments, string / char / raw-string literals, and preprocessor
// lines, so `// no std::rand() here` or `"steady_clock"` in a log message
// never trip a rule. Findings can be silenced inline with
// `// NOLINT(perfiso-DET-003)` on the offending line or
// `// NOLINTNEXTLINE(perfiso-DET-003)` on the line above; a bare `NOLINT`
// silences every rule on that line. Every suppression should carry a
// rationale comment — the rules exist because one stray wall-clock read or
// address-ordered container silently breaks golden-digest reproducibility.
//
// Rules:
//   DET-001  no wall-clock reads (chrono system/steady/high_resolution
//            clocks, time(), gettimeofday, clock_gettime) outside the bench
//            timing harness allowlist — simulated time comes from Simulator.
//   DET-002  no std::rand / std::random_device / ad-hoc std engines — all
//            randomness flows through util/rng.h seeded generators.
//   DET-003  no std::unordered_{map,set,...} in simulation-visible code
//            (src/, bench/): hash-seed iteration order varies across runs.
//   DET-004  no ordered containers keyed by raw pointer value: address order
//            is nondeterministic across runs.
//   FLT-001  retries must be bounded and backed off: (a) a ScheduleAfter
//            arming a retry-named handle/callback with no backoff-named
//            identifier within ±20 lines (re-issues go through
//            ComputeBackoff, src/fault/retry.h); (b) a while/for loop whose
//            header names a retry variable but carries no bound comparison.
//            ScheduleOrTighten (resource-model bucket wakes) and range-for
//            loops are exempt.
//   PERF-001 hot-loop re-arm: `handle = Schedule(...)` / `ScheduleAfter(...)`
//            assigning a bare identifier inside a loop body in
//            simulation-visible code (src/, bench/) pays allocate + sift
//            churn every iteration and orphans the previously armed event —
//            Reschedule(handle, when) relinks the pending record in O(1) on
//            the timing wheel (ScheduleOrTighten when the handle may be
//            stale). Indexed / member targets (one event per distinct owner),
//            declarations, and lambda bodies merely defined inside a loop
//            are exempt.
//   LIFE-001 EventHandle members in a class with no destructor and no
//            Cancel* member: armed events can outlive their owner (heuristic,
//            suppress when another object owns the lifecycle).
//   OBS-001  the name argument of the observability sinks (MetricsRegistry::
//            AddCounter/AddGauge/AddProbe/AddHistogram, Tracer::Instant/
//            BeginTrace/Span) must be a single lowercase dot-separated string
//            literal — hot paths never build metric/span name strings, and
//            the Perfetto export vocabulary stays greppable. Topology
//            registration (RegisterProcess/RegisterTrack) is exempt: machine
//            and track names are constructed per rig.
#ifndef PERFISO_TOOLS_LINT_LINT_CORE_H_
#define PERFISO_TOOLS_LINT_LINT_CORE_H_

#include <string>
#include <vector>

namespace perfiso {
namespace lint {

// Where a file sits in the repo; decides which rules apply (DET-003 only
// bites simulation-visible code). Derived from path components so fixture
// trees under tools/lint/testdata/<category>/ categorize like the real tree.
enum class FileCategory { kSrc, kBench, kTests, kExamples, kOther };

FileCategory CategorizeByPath(const std::string& path);
const char* CategoryName(FileCategory category);

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // e.g. "perfiso-DET-001"
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct LintOptions {
  // Files exempt per rule, matched as path suffixes ('/'-separated).
  std::vector<std::string> det001_allowlist = {
      "bench/harness.h",         // wall-clock timing of real benches
      "bench/harness.cc",
      "bench/micro_overheads.cc",   // measures the engine with a real clock
      "bench/fig_cluster_scale.cc",  // measures PDES speedup with a real clock
  };
  std::vector<std::string> det002_allowlist = {
      "src/util/rng.h",  // the one sanctioned randomness implementation
      "src/util/rng.cc",
  };
};

// Lints one translation unit's text. `path` is used for reporting, category
// selection, and allowlist matching; findings come back in line order.
std::vector<Finding> LintSource(const std::string& path, const std::string& content,
                                const LintOptions& options = LintOptions());

// Reads `path` and lints it. Unreadable files produce a single synthetic
// finding with rule "perfiso-IO" so CI fails loudly instead of skipping.
std::vector<Finding> LintFile(const std::string& path,
                              const LintOptions& options = LintOptions());

// Machine-readable report: {"findings":[{file,line,rule,message},...]}.
std::string ToJson(const std::vector<Finding>& findings);

}  // namespace lint
}  // namespace perfiso

#endif  // PERFISO_TOOLS_LINT_LINT_CORE_H_
