// Fuzz/stress: random sequences of scheduler operations must preserve the
// machine's internal invariants and its accounting bounds. This is the
// failure-injection net under the blind-isolation control loop, which churns
// affinity masks constantly in production.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {
namespace {

class MachineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachineFuzzTest, RandomOpsPreserveInvariants) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 8;
  spec.quantum = FromMillis(3);
  spec.context_switch = FromMicros(1);
  spec.throttle_interval = FromMillis(10);
  SimMachine machine(&sim, spec, "fuzz");
  Rng rng(GetParam());

  std::vector<JobId> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(machine.CreateJob("job" + std::to_string(i)));
  }
  std::vector<ThreadId> threads;

  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    const JobId job = jobs[static_cast<size_t>(rng.UniformInt(0, 2))];
    switch (op) {
      case 0:
      case 1: {  // spawn a finite burst
        const SimDuration work = FromMicros(rng.Uniform(10, 4000));
        const TenantClass tenant =
            rng.Bernoulli(0.5) ? TenantClass::kPrimary : TenantClass::kSecondary;
        threads.push_back(machine.SpawnThread("w", tenant, job, work, nullptr));
        break;
      }
      case 2: {  // spawn a loop thread
        threads.push_back(machine.SpawnLoopThread("hog", TenantClass::kSecondary, job));
        break;
      }
      case 3: {  // kill a random thread (may already be dead: both paths ok)
        if (!threads.empty()) {
          const auto victim = threads[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(threads.size()) - 1))];
          (void)machine.KillThread(victim);
        }
        break;
      }
      case 4: {  // random affinity
        CpuSet mask = CpuSet::FromMask64(rng.Next() & 0xFF);
        if (mask.Empty()) {
          mask = CpuSet::FirstN(8);
        }
        ASSERT_TRUE(machine.SetJobAffinity(job, mask).ok());
        break;
      }
      case 5: {  // rate cap on/off
        const double cap = rng.Bernoulli(0.5) ? rng.Uniform(0.05, 0.9) : 0.0;
        ASSERT_TRUE(machine.SetJobCpuRateCap(job, cap).ok());
        break;
      }
      case 6: {  // suspend/resume
        ASSERT_TRUE(machine.SetJobSuspended(job, rng.Bernoulli(0.5)).ok());
        break;
      }
      case 7: {  // thread affinity on a random live thread
        if (!threads.empty()) {
          const auto tid = threads[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(threads.size()) - 1))];
          if (machine.ThreadLive(tid)) {
            CpuSet mask = CpuSet::FromMask64(rng.Next() & 0xFF);
            if (mask.Empty()) {
              mask = CpuSet::FirstN(8);
            }
            (void)machine.SetThreadAffinity(tid, mask);
          }
        }
        break;
      }
      case 8: {  // kill a whole job
        if (rng.Bernoulli(0.1)) {
          (void)machine.KillJob(job);
          // Dead jobs stay dead; replace with a fresh one.
          for (auto& slot : jobs) {
            if (slot == job) {
              slot = machine.CreateJob("respawn");
            }
          }
        }
        break;
      }
      default: {  // advance time
        sim.RunUntil(sim.Now() + FromMicros(rng.Uniform(10, 2000)));
        break;
      }
    }
    ASSERT_TRUE(machine.CheckInvariants().ok())
        << "step " << step << ": " << machine.CheckInvariants().ToString();
  }

  // Drain: kill everything, run to idle, and re-verify.
  for (JobId job : jobs) {
    (void)machine.KillJob(job);
  }
  sim.RunUntil(sim.Now() + kSecond);
  ASSERT_TRUE(machine.CheckInvariants().ok());
  EXPECT_EQ(machine.IdleCount(), 8);
  EXPECT_LE(machine.metrics().TotalBusy(), 8 * sim.Now());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

TEST(MachineStressTest, SuspendResumeChurnLosesNoCpuAccounting) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 4;
  spec.context_switch = 0;
  SimMachine machine(&sim, spec, "m0");
  const JobId job = machine.CreateJob("sec");
  for (int i = 0; i < 4; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  // Suspend for 1 ms out of every 2 ms, 100 times.
  for (int cycle = 0; cycle < 100; ++cycle) {
    sim.Schedule(cycle * FromMillis(2), [&] {
      ASSERT_TRUE(machine.SetJobSuspended(job, true).ok());
    });
    sim.Schedule(cycle * FromMillis(2) + FromMillis(1), [&] {
      ASSERT_TRUE(machine.SetJobSuspended(job, false).ok());
    });
  }
  sim.RunUntil(100 * FromMillis(2));
  // Exactly half the wall time on all 4 cores.
  EXPECT_EQ(*machine.JobCpuTime(job), 4 * FromMillis(100));
  ASSERT_TRUE(machine.CheckInvariants().ok());
}

TEST(MachineStressTest, RepeatedAffinityFlappingUnderLoad) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 8;
  spec.quantum = FromMillis(5);
  spec.context_switch = 0;
  SimMachine machine(&sim, spec, "m0");
  const JobId job = machine.CreateJob("sec");
  for (int i = 0; i < 16; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  // Flap between disjoint masks every 100 us for 100 ms.
  for (int i = 0; i < 1000; ++i) {
    sim.Schedule(i * FromMicros(100), [&, i] {
      const CpuSet mask = i % 2 == 0 ? CpuSet::FirstN(4) : CpuSet::Range(4, 8);
      ASSERT_TRUE(machine.SetJobAffinity(job, mask).ok());
    });
  }
  sim.RunUntil(FromMillis(100));
  // 4 allowed cores at all times, fully consumed.
  EXPECT_EQ(*machine.JobCpuTime(job), 4 * FromMillis(100));
  EXPECT_GT(machine.metrics().preemptions, 900);
  ASSERT_TRUE(machine.CheckInvariants().ok());
}

}  // namespace
}  // namespace perfiso
