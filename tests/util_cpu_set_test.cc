#include "src/util/cpu_set.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(CpuSetTest, EmptyByDefault) {
  CpuSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.Lowest(), -1);
  EXPECT_EQ(s.Highest(), -1);
  EXPECT_EQ(s.ToString(), "(empty)");
}

TEST(CpuSetTest, SetClearTest) {
  CpuSet s;
  s.Set(5);
  EXPECT_TRUE(s.Test(5));
  EXPECT_FALSE(s.Test(4));
  s.Clear(5);
  EXPECT_FALSE(s.Test(5));
}

TEST(CpuSetTest, FirstNAndRange) {
  const CpuSet first = CpuSet::FirstN(48);
  EXPECT_EQ(first.Count(), 48);
  EXPECT_EQ(first.Lowest(), 0);
  EXPECT_EQ(first.Highest(), 47);

  const CpuSet range = CpuSet::Range(40, 48);
  EXPECT_EQ(range.Count(), 8);
  EXPECT_EQ(range.Lowest(), 40);
  EXPECT_EQ(range.Highest(), 47);
}

TEST(CpuSetTest, CrossesWordBoundary) {
  const CpuSet s = CpuSet::Range(60, 70);
  EXPECT_EQ(s.Count(), 10);
  EXPECT_TRUE(s.Test(63));
  EXPECT_TRUE(s.Test(64));
  EXPECT_EQ(s.Lowest(), 60);
  EXPECT_EQ(s.Highest(), 69);
}

TEST(CpuSetTest, NextAfterSkipsGaps) {
  CpuSet s;
  s.Set(2);
  s.Set(64);
  s.Set(130);
  EXPECT_EQ(s.NextAfter(-1), 2);
  EXPECT_EQ(s.NextAfter(2), 64);
  EXPECT_EQ(s.NextAfter(64), 130);
  EXPECT_EQ(s.NextAfter(130), -1);
}

TEST(CpuSetTest, SetOperations) {
  const CpuSet a = CpuSet::FirstN(10);
  const CpuSet b = CpuSet::Range(5, 15);
  EXPECT_EQ((a & b).Count(), 5);
  EXPECT_EQ((a | b).Count(), 15);
  EXPECT_EQ(a.Minus(b), CpuSet::FirstN(5));
  EXPECT_EQ(((~a) & CpuSet::FirstN(15)), CpuSet::Range(10, 15));
}

TEST(CpuSetTest, Mask64RoundTrip) {
  const CpuSet s = CpuSet::FromMask64(0b1011);
  EXPECT_EQ(s.Count(), 3);
  EXPECT_EQ(s.Mask64(), 0b1011u);
}

TEST(CpuSetTest, ToStringRuns) {
  CpuSet s;
  s.Set(0);
  s.Set(1);
  s.Set(2);
  s.Set(8);
  s.Set(10);
  s.Set(11);
  EXPECT_EQ(s.ToString(), "0-2,8,10-11");
  EXPECT_EQ(CpuSet::Single(7).ToString(), "7");
}

TEST(CpuSetTest, OutOfRangeTestIsFalse) {
  const CpuSet s = CpuSet::FirstN(4);
  EXPECT_FALSE(s.Test(-1));
  EXPECT_FALSE(s.Test(CpuSet::kMaxCpus));
}

}  // namespace
}  // namespace perfiso
