// ParallelSimulation: conservative time-windowed lockstep over Simulator
// partitions (src/sim/parallel.h).
//
// The determinism contract under test: a run's observable results are a pure
// function of (inputs, partition count) — bit-identical for every worker
// thread count. The SimSan-relevant cases (cancel/reschedule of handles
// minted by mailbox-delivered callbacks) run here in every build and trip
// SimSan's diagnostics when compiled with -DPERFISO_SIMSAN=ON.
#include "src/sim/parallel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace perfiso {
namespace {

constexpr SimDuration kWindow = FromMicros(120);

TEST(ParallelSimulationTest, SinglePartitionIsPlainSequential) {
  // partitions == 1 must behave exactly like a lone Simulator: no windows,
  // no mailboxes, same clock semantics.
  ParallelSimulation psim({/*partitions=*/1, /*window=*/0, /*threads=*/4});
  EXPECT_EQ(psim.num_partitions(), 1);
  std::vector<int> order;
  psim.sim(0).Schedule(20, [&] { order.push_back(2); });
  psim.sim(0).Schedule(10, [&] { order.push_back(1); });
  psim.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(psim.sim(0).Now(), 100);
  EXPECT_EQ(psim.stats().windows_run, 0u);
}

TEST(ParallelSimulationTest, CrossPartitionMessageDeliversAtItsTimestamp) {
  ParallelSimulation psim({/*partitions=*/2, kWindow, /*threads=*/1});
  SimTime delivered_at = -1;
  // Partition 0 posts to partition 1 mid-run with one window of lookahead.
  psim.sim(0).Schedule(1000, [&] {
    const SimTime deliver = psim.sim(0).Now() + kWindow;
    psim.Post(1, deliver, [&psim, &delivered_at] { delivered_at = psim.sim(1).Now(); });
  });
  psim.RunUntil(kSecond);
  EXPECT_EQ(delivered_at, 1000 + kWindow);
  EXPECT_EQ(psim.stats().messages_posted, 1u);
  EXPECT_EQ(psim.sim(0).Now(), kSecond);
  EXPECT_EQ(psim.sim(1).Now(), kSecond);
}

TEST(ParallelSimulationTest, SetupPostsScheduleDirectly) {
  ParallelSimulation psim({/*partitions=*/2, kWindow, /*threads=*/1});
  bool ran = false;
  psim.Post(1, 500, [&] { ran = true; });  // outside any window
  EXPECT_EQ(psim.stats().setup_posts, 1u);
  psim.RunUntil(1000);
  EXPECT_TRUE(ran);
}

TEST(ParallelSimulationTest, SkipAheadCrossesIdleSpans) {
  // Two events a full simulated second apart: the lockstep loop must not
  // grind through ~8000 empty 120 us windows between them.
  ParallelSimulation psim({/*partitions=*/2, kWindow, /*threads=*/1});
  int fired = 0;
  psim.sim(0).Schedule(10, [&] { ++fired; });
  psim.sim(1).Schedule(kSecond, [&] { ++fired; });
  psim.RunUntil(2 * kSecond);
  EXPECT_EQ(fired, 2);
  EXPECT_LE(psim.stats().windows_run, 4u);
}

// Deterministic ping-pong workload: queries bounce between partition 0
// (client/TLA side) and partitions 1..K-1 (rows), with per-partition local
// timer churn layered on top. Returns an order-sensitive digest.
uint64_t RunPingPong(int partitions, int threads) {
  ParallelSimulation psim({partitions, kWindow, threads});
  LatencyRecorder latency;
  Rng rng(99);
  // Local churn on every partition: timers that also exercise cancel traffic
  // inside each partition's own window.
  std::vector<uint64_t> churn(static_cast<size_t>(partitions), 0);
  for (int p = 0; p < partitions; ++p) {
    Simulator& sim = psim.sim(p);
    for (int i = 0; i < 50; ++i) {
      sim.Schedule(FromMicros(17) * i, [&sim, &churn, p] {
        ++churn[static_cast<size_t>(p)];
        EventHandle doomed = sim.ScheduleAfter(FromMicros(5), [] {});
        sim.Cancel(doomed);
      });
    }
  }
  // 200 queries from partition 0: hop to a row partition, "serve" for a
  // deterministic service time, hop back, record end-to-end latency.
  for (int q = 0; q < 200; ++q) {
    const SimTime submit = FromMicros(30) * q;
    const int target = partitions == 1 ? 0 : 1 + static_cast<int>(rng.Next() %
                                                static_cast<uint64_t>(partitions - 1));
    psim.sim(0).Schedule(submit, [&psim, &latency, submit, target] {
      const SimTime hop = psim.sim(0).Now() + kWindow;
      psim.Post(target, hop, [&psim, &latency, submit, target] {
        Simulator& row = psim.sim(target);
        const SimDuration service = FromMicros(40 + (submit % 7) * 11);
        row.ScheduleAfter(service, [&psim, &latency, submit, target, &row] {
          const SimTime back = row.Now() + kWindow;
          psim.Post(0, back, [&psim, &latency, submit] {
            latency.Add(ToMillis(psim.sim(0).Now() - submit));
          });
        });
      });
    });
  }
  psim.RunUntil(kSecond);
  return latency.Digest() ^ (latency.Count() << 1);
}

TEST(ParallelSimulationTest, DigestsIdenticalAcrossThreadCounts) {
  const uint64_t t1 = RunPingPong(/*partitions=*/4, /*threads=*/1);
  const uint64_t t2 = RunPingPong(/*partitions=*/4, /*threads=*/2);
  const uint64_t t4 = RunPingPong(/*partitions=*/4, /*threads=*/4);
  const uint64_t t8 = RunPingPong(/*partitions=*/4, /*threads=*/8);  // capped to 4
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t8);
  // Repeat runs are bit-identical too (no hidden run-to-run state).
  EXPECT_EQ(t1, RunPingPong(4, 1));
  EXPECT_EQ(t2, RunPingPong(4, 2));
}

TEST(ParallelSimulationTest, MailboxMergeOrdersByTimeSourceThenPostingOrder) {
  // Three sources post same-timestamp messages to one destination across the
  // same window; the merged callbacks must run ordered by (deliver, src,
  // posting order) regardless of thread count.
  for (int threads : {1, 2, 4}) {
    ParallelSimulation psim({/*partitions=*/4, kWindow, threads});
    std::vector<int> order;
    const SimTime deliver = kWindow * 2;  // window end for posts made in [W, 2W)
    for (int src = 1; src <= 3; ++src) {
      psim.sim(src).Schedule(kWindow + src, [&psim, &order, src, deliver] {
        psim.Post(0, deliver, [&order, src] { order.push_back(src * 10); });
        psim.Post(0, deliver, [&order, src] { order.push_back(src * 10 + 1); });
      });
    }
    psim.RunUntil(kWindow * 3);
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31})) << "threads=" << threads;
  }
}

// --- Handle lifetime across the mailbox boundary (SimSan coverage) ----------

TEST(ParallelSimulationTest, CancelAndRescheduleOfMailboxMintedHandles) {
  // A mailbox-delivered callback schedules work on its destination; a LATER
  // mailbox delivery to the same partition cancels or reschedules it through
  // the stored handle. Handles never cross partitions (they are meaningless
  // in another Simulator); what crosses is the instruction to cancel. Under
  // -DPERFISO_SIMSAN=ON the engine validates every one of these transitions.
  for (int threads : {1, 2}) {
    ParallelSimulation psim({/*partitions=*/2, kWindow, threads});
    struct RowState {
      // The test body owns the lifecycle: `work` is CancelOwned()'d below,
      // before RowState goes out of scope.
      // NOLINTNEXTLINE(perfiso-LIFE-001)
      EventHandle work;
      bool work_fired = false;
      bool moved_fired = false;
    };
    RowState state;
    // Window 0: partition 0 tells partition 1 to arm two far-out events.
    psim.sim(0).Schedule(10, [&psim, &state] {
      psim.Post(1, psim.sim(0).Now() + kWindow, [&psim, &state] {
        Simulator& row = psim.sim(1);
        state.work = row.ScheduleAfter(50 * kWindow, [&state] { state.work_fired = true; });
      });
    });
    // A later window: cancel the armed event through its handle, then arm a
    // replacement and reschedule it forward — all driven cross-partition.
    psim.sim(0).Schedule(10 + 2 * kWindow, [&psim, &state] {
      psim.Post(1, psim.sim(0).Now() + kWindow, [&psim, &state] {
        Simulator& row = psim.sim(1);
        EXPECT_TRUE(row.CancelOwned(state.work));
        EventHandle moved = row.ScheduleAfter(40 * kWindow, [&state] { state.moved_fired = true; });
        EXPECT_TRUE(row.Reschedule(moved, row.Now() + 2 * kWindow));
      });
    });
    psim.RunUntil(100 * kWindow);
    EXPECT_FALSE(state.work_fired) << "threads=" << threads;
    EXPECT_TRUE(state.moved_fired) << "threads=" << threads;
    psim.sim(0).CheckEngineInvariants();
    psim.sim(1).CheckEngineInvariants();
  }
}

TEST(ParallelSimulationTest, RepeatedRunUntilSegmentsMatchOneShot) {
  // warmup/measure style: RunUntil in two segments must equal one RunUntil
  // over the whole span (the harness pattern: run warmup, reset stats at the
  // barrier, run measurement).
  auto run = [](bool split) {
    ParallelSimulation psim({/*partitions=*/3, kWindow, /*threads=*/2});
    LatencyRecorder rec;
    for (int q = 0; q < 60; ++q) {
      const SimTime submit = FromMicros(100) * q;
      const int target = 1 + (q % 2);
      psim.sim(0).Schedule(submit, [&psim, &rec, submit, target] {
        psim.Post(target, psim.sim(0).Now() + kWindow, [&psim, &rec, submit, target] {
          psim.sim(target).ScheduleAfter(FromMicros(30), [&psim, &rec, submit, target] {
            psim.Post(0, psim.sim(target).Now() + kWindow, [&psim, &rec, submit] {
              rec.Add(ToMillis(psim.sim(0).Now() - submit));
            });
          });
        });
      });
    }
    if (split) {
      psim.RunUntil(FromMicros(3000));
      psim.RunUntil(FromMicros(20000));
    } else {
      psim.RunUntil(FromMicros(20000));
    }
    return rec.Digest();
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace perfiso
