#include <gtest/gtest.h>

#include <cstdio>

#include "src/autopilot/config_store.h"
#include "src/autopilot/perfiso_service.h"
#include "src/autopilot/service_manager.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/workload/bullies.h"

namespace perfiso {
namespace {

std::string TempRoot(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/perfiso_autopilot_" + tag;
  std::string cleanup = "rm -rf " + dir;
  std::system(cleanup.c_str());
  return dir;
}

TEST(ConfigStoreTest, PutGetRoundTrip) {
  ConfigStore store(TempRoot("roundtrip"));
  ConfigMap config;
  config.SetInt("cpu.buffer_cores", 8);
  ASSERT_TRUE(store.Put("perfiso", config).ok());
  EXPECT_TRUE(store.Exists("perfiso"));
  auto loaded = store.Get("perfiso");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetIntOr("cpu.buffer_cores", 0), 8);
}

TEST(ConfigStoreTest, MissingConfigNotFound) {
  ConfigStore store(TempRoot("missing"));
  EXPECT_FALSE(store.Exists("nope"));
  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(ConfigStoreTest, InvalidNamesRejected) {
  ConfigStore store(TempRoot("names"));
  EXPECT_FALSE(store.Put("", ConfigMap()).ok());
  EXPECT_FALSE(store.Put("../escape", ConfigMap()).ok());
}

TEST(ConfigStoreTest, WatchersNotifiedOnPut) {
  ConfigStore store(TempRoot("watch"));
  int notified = 0;
  store.Watch("perfiso", [&](const ConfigMap& map) {
    ++notified;
    EXPECT_TRUE(map.Has("x"));
  });
  ConfigMap config;
  config.SetInt("x", 1);
  ASSERT_TRUE(store.Put("perfiso", config).ok());
  ASSERT_TRUE(store.Put("other", config).ok());  // different name: no notify
  EXPECT_EQ(notified, 1);
}

// --- ServiceManager ------------------------------------------------------------

class FlakyService : public ManagedService {
 public:
  const std::string& name() const override { return name_; }
  Status Start() override {
    running_ = true;
    ++starts_;
    return OkStatus();
  }
  Status Stop() override {
    running_ = false;
    return OkStatus();
  }
  bool Healthy() const override { return running_; }

  void Crash() { running_ = false; }
  int starts() const { return starts_; }

 private:
  std::string name_ = "flaky";
  bool running_ = false;
  int starts_ = 0;
};

TEST(ServiceManagerTest, RestartsCrashedService) {
  FlakyService service;
  ServiceManager manager;
  manager.Register(&service);
  ASSERT_TRUE(manager.StartAll().ok());
  EXPECT_EQ(service.starts(), 1);
  manager.Tick();  // healthy: nothing happens
  EXPECT_EQ(manager.Restarts("flaky"), 0);
  service.Crash();
  manager.Tick();
  EXPECT_EQ(service.starts(), 2);
  EXPECT_EQ(manager.Restarts("flaky"), 1);
  EXPECT_TRUE(service.Healthy());
}

// --- PerfIsoService (recovery, kill switch via config) ---------------------------

struct ServiceRig {
  Simulator sim;
  MachineSpec spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimPlatform> platform;
  JobId job;
  std::unique_ptr<CpuBully> bully;

  ServiceRig() {
    spec.context_switch = 0;
    machine = std::make_unique<SimMachine>(&sim, spec, "m0");
    platform = std::make_unique<SimPlatform>(machine.get(), nullptr);
    job = machine->CreateJob("secondary");
    platform->AddSecondaryJob(job);
    bully = std::make_unique<CpuBully>(machine.get(), job, 48);
  }
};

TEST(PerfIsoServiceTest, StartPersistsDefaultsAndIsolates) {
  ServiceRig rig;
  ConfigStore store(TempRoot("svc_start"));
  PerfIsoService service(rig.platform.get(), &store, "perfiso", &rig.sim);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(store.Exists("perfiso"));  // durable state written
  rig.sim.RunUntil(FromMillis(50));
  EXPECT_EQ(rig.machine->IdleCount(), 8);  // default blind isolation, B=8
}

TEST(PerfIsoServiceTest, CrashLeavesKnobsThenRecoveryResumes) {
  ServiceRig rig;
  ConfigStore store(TempRoot("svc_crash"));
  PerfIsoService service(rig.platform.get(), &store, "perfiso", &rig.sim);
  ASSERT_TRUE(service.Start().ok());
  rig.sim.RunUntil(FromMillis(50));
  ASSERT_EQ(rig.machine->IdleCount(), 8);

  service.Crash();
  EXPECT_FALSE(service.Healthy());
  // A crash does not restore OS defaults — the mask stays as it was.
  rig.sim.RunUntil(FromMillis(60));
  EXPECT_EQ(rig.machine->IdleCount(), 8);

  // Autopilot restarts it; state comes from disk (§4.2).
  ServiceManager manager;
  manager.Register(&service);
  manager.Tick();
  EXPECT_TRUE(service.Healthy());
  rig.sim.RunUntil(FromMillis(200));
  EXPECT_EQ(rig.machine->IdleCount(), 8);
  EXPECT_EQ(manager.Restarts("perfiso"), 1);
}

TEST(PerfIsoServiceTest, KillSwitchViaConfigPush) {
  ServiceRig rig;
  ConfigStore store(TempRoot("svc_kill"));
  PerfIsoService service(rig.platform.get(), &store, "perfiso", &rig.sim);
  ASSERT_TRUE(service.Start().ok());
  rig.sim.RunUntil(FromMillis(50));
  ASSERT_EQ(rig.machine->IdleCount(), 8);

  PerfIsoConfig disabled;
  disabled.enabled = false;
  ASSERT_TRUE(service.UpdateConfig(disabled).ok());
  rig.sim.RunUntil(FromMillis(60));
  EXPECT_EQ(rig.machine->IdleCount(), 0);  // defaults restored immediately

  PerfIsoConfig enabled;
  enabled.enabled = true;
  ASSERT_TRUE(service.UpdateConfig(enabled).ok());
  rig.sim.RunUntil(FromMillis(300));
  EXPECT_EQ(rig.machine->IdleCount(), 8);
}

TEST(PerfIsoServiceTest, RuntimeLimitChangeViaStore) {
  ServiceRig rig;
  ConfigStore store(TempRoot("svc_update"));
  PerfIsoService service(rig.platform.get(), &store, "perfiso", &rig.sim);
  ASSERT_TRUE(service.Start().ok());
  rig.sim.RunUntil(FromMillis(50));
  ASSERT_EQ(rig.machine->IdleCount(), 8);

  PerfIsoConfig wider;
  wider.blind.buffer_cores = 16;
  ASSERT_TRUE(service.UpdateConfig(wider).ok());
  rig.sim.RunUntil(FromMillis(300));
  EXPECT_EQ(rig.machine->IdleCount(), 16);
}

TEST(PerfIsoServiceTest, OrderlyStopRestoresDefaults) {
  ServiceRig rig;
  ConfigStore store(TempRoot("svc_stop"));
  PerfIsoService service(rig.platform.get(), &store, "perfiso", &rig.sim);
  ASSERT_TRUE(service.Start().ok());
  rig.sim.RunUntil(FromMillis(50));
  ASSERT_EQ(rig.machine->IdleCount(), 8);
  ASSERT_TRUE(service.Stop().ok());
  rig.sim.RunUntil(FromMillis(60));
  EXPECT_EQ(rig.machine->IdleCount(), 0);
}

}  // namespace
}  // namespace perfiso
