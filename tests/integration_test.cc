// End-to-end single-machine integration: IndexServe + CPU bully + PerfIso,
// asserting the paper's headline claims at reduced (test-speed) duration.
#include <gtest/gtest.h>

#include "src/cluster/index_node.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

struct RunResult {
  double p99 = 0;
  double drop_fraction = 0;
  double idle = 0;
  double secondary_util = 0;
  double sched_delay_p99_us = 0;
};

RunResult RunScenario(double qps, int bully_threads, std::optional<PerfIsoConfig> perfiso,
                      SimDuration measure = 3 * kSecond) {
  Simulator sim;
  IndexNodeOptions options;
  options.seed = 99;
  IndexNodeRig rig(&sim, options, "m0");
  if (bully_threads > 0) {
    rig.StartCpuBully(bully_threads);
  }
  if (perfiso.has_value()) {
    EXPECT_TRUE(rig.StartPerfIso(*perfiso).ok());
  }
  Rng trace_rng(555);
  auto trace = GenerateTrace(TraceSpec{}, 10000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), qps, Rng(3),
                        [&](const QueryWork& work, SimTime) { rig.server().SubmitQuery(work); });
  client.Run(0, kSecond + measure);
  sim.RunUntil(kSecond);
  rig.server().ResetStats();
  const auto snap = rig.SnapshotUtilization();
  sim.RunUntil(kSecond + measure);
  RunResult result;
  result.p99 = rig.server().stats().latency_ms.P99();
  result.drop_fraction = rig.server().stats().DropFraction();
  result.idle = rig.IdleFractionSince(snap);
  result.secondary_util = rig.UtilizationSince(snap, TenantClass::kSecondary);
  result.sched_delay_p99_us = rig.machine().metrics().primary_sched_delay_us.P99();
  return result;
}

PerfIsoConfig Blind(int buffer) {
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  config.blind.buffer_cores = buffer;
  return config;
}

TEST(PerfIsoIntegrationTest, UnmanagedColocationDestroysTailLatency) {
  const RunResult standalone = RunScenario(2000, 0, std::nullopt);
  const RunResult unmanaged = RunScenario(2000, 48, std::nullopt);
  // The paper's ~29x degradation (we assert at least 10x).
  EXPECT_GT(unmanaged.p99, 10 * standalone.p99);
}

TEST(PerfIsoIntegrationTest, BlindIsolationKeepsP99WithinOneMs) {
  const RunResult standalone = RunScenario(2000, 0, std::nullopt);
  const RunResult blind = RunScenario(2000, 48, Blind(8));
  EXPECT_LT(blind.p99 - standalone.p99, 1.0);  // the paper's SLO bound (§2.1)
  EXPECT_EQ(blind.drop_fraction, 0);
  // While still letting the secondary do substantial work.
  EXPECT_GT(blind.secondary_util, 0.4);
}

TEST(PerfIsoIntegrationTest, BlindIsolationHoldsAtPeakLoad) {
  const RunResult standalone = RunScenario(4000, 0, std::nullopt);
  const RunResult blind = RunScenario(4000, 48, Blind(8));
  EXPECT_LT(blind.p99 - standalone.p99, 1.0);
  EXPECT_EQ(blind.drop_fraction, 0);
}

TEST(PerfIsoIntegrationTest, BufferCoresAbsorbWakeups) {
  // With 8 buffer cores the primary's wake-to-dispatch delay stays well under
  // a millisecond even under full colocation (occasional bursts wider than
  // the buffer wait for a chunk to finish, not for a bully quantum — this is
  // the mechanism behind the <1 ms bound). Without isolation the same
  // quantile sits at tens of milliseconds.
  const RunResult blind = RunScenario(2000, 48, Blind(8));
  EXPECT_LT(blind.sched_delay_p99_us, 1000);
  const RunResult unmanaged = RunScenario(2000, 48, std::nullopt);
  EXPECT_GT(unmanaged.sched_delay_p99_us, 10000);
}

TEST(PerfIsoIntegrationTest, FourBufferCoresWeakerThanEight) {
  const RunResult standalone = RunScenario(2000, 0, std::nullopt);
  const RunResult b4 = RunScenario(2000, 48, Blind(4));
  const RunResult b8 = RunScenario(2000, 48, Blind(8));
  // Both stay near the SLO, but the smaller buffer degrades at least as much
  // and leaves more cores to the secondary.
  EXPECT_GE(b4.p99 - standalone.p99, b8.p99 - standalone.p99);
  EXPECT_GE(b4.secondary_util, b8.secondary_util);
}

TEST(PerfIsoIntegrationTest, UtilizationRisesUnderColocation) {
  const RunResult standalone = RunScenario(2000, 0, std::nullopt);
  const RunResult blind = RunScenario(2000, 48, Blind(8));
  // The abstract's 21% -> 66%: colocation must at least triple utilization.
  EXPECT_GT((1 - blind.idle) / (1 - standalone.idle), 3.0);
}

TEST(PerfIsoIntegrationTest, BlindBeatsStaticCoresOnWorkDone) {
  PerfIsoConfig cores;
  cores.cpu_mode = CpuIsolationMode::kStaticCores;
  cores.static_secondary_cores = 8;  // peak-provisioned static setting
  const RunResult static_run = RunScenario(2000, 48, cores);
  const RunResult blind_run = RunScenario(2000, 48, Blind(8));
  EXPECT_GT(blind_run.secondary_util, static_run.secondary_util + 0.10);
}

TEST(PerfIsoIntegrationTest, CycleCapFailsToProtectTail) {
  PerfIsoConfig cycles;
  cycles.cpu_mode = CpuIsolationMode::kCpuRateCap;
  cycles.cpu_rate_cap = 0.25;
  const RunResult standalone = RunScenario(2000, 0, std::nullopt);
  const RunResult capped = RunScenario(2000, 48, cycles);
  EXPECT_GT(capped.p99 - standalone.p99, 5.0);  // well outside the SLO
}

}  // namespace
}  // namespace perfiso
