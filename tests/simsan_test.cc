// SimSan regression suite. Built twice by CI: once plain, once with
// -DPERFISO_SIMSAN=ON. Each hazard asserts BOTH sides of the contract:
//
//   * plain build  — the lenient documented behavior (stale handles are
//     silently inert no-ops; this is what makes the ScheduleOrTighten idiom
//     safe), i.e. the engine "silently accepts" the buggy call;
//   * SimSan build — the same call aborts with a "SimSan: ..." diagnostic,
//     because silent acceptance is exactly how a handle-hygiene bug hides
//     until it cancels a stranger's event and breaks a golden digest.
//
// The death tests anchor on the diagnostic prefix so a regression that turns
// an abort into a plain crash (or the wrong rule firing) still fails.
#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace perfiso {
namespace {

TEST(SimSanTest, BuildModeMatchesCompileDefinition) {
#ifdef PERFISO_SIMSAN
  EXPECT_TRUE(kSimSanEnabled);
#else
  EXPECT_FALSE(kSimSanEnabled);
#endif
}

// The acceptance hazard: reschedule through a handle whose slot was recycled
// and re-armed by an unrelated event. Without generation checking this would
// move a stranger's event; the plain build's generation counters make it an
// inert no-op, and SimSan turns it into a hard abort.
TEST(SimSanTest, StaleRescheduleAfterRecycleAbortsUnderSimSanOnly) {
  Simulator sim;
  EventHandle first = sim.Schedule(10, [] {});
  ASSERT_TRUE(sim.Cancel(first));
  int fired = 0;
  EventHandle second = sim.Schedule(20, [&] { ++fired; });  // recycles the slot
  ASSERT_TRUE(sim.Pending(second));
  if constexpr (kSimSanEnabled) {
    EXPECT_DEATH((void)sim.Reschedule(first, 99), "SimSan: stale-handle-after-recycle");
  } else {
    EXPECT_FALSE(sim.Reschedule(first, 99));  // silently accepted as stale
    sim.RunUntilEmpty();
    EXPECT_EQ(fired, 1);  // and the squatter event was untouched
    EXPECT_EQ(sim.Now(), 20);
  }
}

TEST(SimSanTest, StaleCancelAfterRecycleAbortsUnderSimSanOnly) {
  Simulator sim;
  EventHandle first = sim.Schedule(10, [] {});
  ASSERT_TRUE(sim.Cancel(first));
  EventHandle second = sim.Schedule(20, [] {});  // re-arms the freed slot
  if constexpr (kSimSanEnabled) {
    EXPECT_DEATH((void)sim.Cancel(first), "SimSan: stale-handle-after-recycle");
  } else {
    EXPECT_FALSE(sim.Cancel(first));
    EXPECT_TRUE(sim.Pending(second));
  }
}

TEST(SimSanTest, DoubleCancelAbortsUnderSimSanOnly) {
  Simulator sim;
  EventHandle h = sim.Schedule(10, [] {});
  ASSERT_TRUE(sim.Cancel(h));
  if constexpr (kSimSanEnabled) {
    EXPECT_DEATH((void)sim.Cancel(h), "SimSan: double-cancel");
  } else {
    EXPECT_FALSE(sim.Cancel(h));
  }
}

// Distance-two staleness: the handle's slot went through a full
// recycle-and-retire cycle, so the slot is idle again (not re-armed) when the
// stale call arrives — the generation distance is the only evidence left.
TEST(SimSanTest, UseAfterFullRecycleAbortsUnderSimSanOnly) {
  Simulator sim;
  EventHandle h = sim.Schedule(10, [] {});
  ASSERT_TRUE(sim.Cancel(h));
  EventHandle squatter = sim.Schedule(20, [] {});
  ASSERT_TRUE(sim.Cancel(squatter));  // slot ends a second life, gen distance 2
  if constexpr (kSimSanEnabled) {
    EXPECT_DEATH((void)sim.Cancel(h), "SimSan: stale-handle-after-recycle");
  } else {
    EXPECT_FALSE(sim.Cancel(h));
  }
}

// The documented benign-stale case must stay benign under SimSan: a handle
// whose event simply fired is inert for Cancel/Reschedule/Pending. This is
// the contract ScheduleOrTighten and cancel-on-completion paths rely on.
TEST(SimSanTest, FiredHandleStaysBenignEvenUnderSimSan) {
  Simulator sim;
  EventHandle h = sim.Schedule(5, [] {});
  sim.RunUntilEmpty();
  EXPECT_FALSE(sim.Pending(h));
  EXPECT_FALSE(sim.Cancel(h));
  EXPECT_FALSE(sim.Reschedule(h, 50));
  EXPECT_FALSE(sim.Cancel(EventHandle{}));  // default handles always inert
}

// CancelOwned is the hygiene SimSan enforces: cancel + clear in one step, so
// repeating it is safe in every build mode.
TEST(SimSanTest, CancelOwnedIsIdempotentInBothModes) {
  Simulator sim;
  EventHandle h = sim.Schedule(10, [] {});
  EXPECT_TRUE(sim.CancelOwned(h));
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sim.CancelOwned(h));  // now a default handle: inert, no abort
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimSanTest, PeriodicTaskExplicitCancelThenDestructorDoesNotAbort) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(&sim, /*start=*/5, /*period=*/10, [&](SimTime) { ++ticks; });
    sim.RunUntil(6);
    task.Cancel();
    task.Cancel();  // explicitly idempotent
  }                 // destructor cancels again; must not double-cancel
  sim.RunUntilEmpty();
  EXPECT_EQ(ticks, 1);
}

// Drives well past kSimSanSweepInterval executed events so the periodic
// engine-invariant sweep runs many times over live heap/pool churn.
TEST(SimSanTest, InvariantSweepStaysQuietOverHeavyChurn) {
  Simulator sim;
  int remaining = 5000;
  std::vector<EventHandle> batch;
  std::function<void()> tick = [&] {
    if (--remaining <= 0) {
      return;
    }
    // Churn the pool: a few cancelled side events per tick recycle slots.
    for (int i = 0; i < 3; ++i) {
      batch.push_back(sim.ScheduleAfter(100, [] {}));
    }
    for (EventHandle& h : batch) {
      sim.CancelOwned(h);
    }
    batch.clear();
    sim.ScheduleAfter(10, tick);
  };
  sim.Schedule(0, tick);
  sim.RunUntilEmpty();
  EXPECT_EQ(remaining, 0);
  sim.CheckEngineInvariants();  // and once more, explicitly, at quiescence
}

}  // namespace
}  // namespace perfiso
