#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace perfiso {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.EventsExecuted(), 3u);
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunUntilEmpty();
  SimTime fired_at = -1;
  sim.Schedule(50, [&] { fired_at = sim.Now(); });  // in the past
  sim.RunUntilEmpty();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(10, recurse);
    }
  };
  sim.Schedule(0, recurse);
  sim.RunUntilEmpty();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 40);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(&sim, /*start=*/5, /*period=*/10, [&](SimTime now) { fires.push_back(now); });
  sim.RunUntil(36);
  EXPECT_EQ(fires, (std::vector<SimTime>{5, 15, 25, 35}));
  task.Cancel();
  sim.RunUntil(100);
  EXPECT_EQ(fires.size(), 4u);
}

TEST(PeriodicTaskTest, CancelFromWithinTick) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(&sim, 0, 10, [&](SimTime) {
    if (++count == 3) {
      task.Cancel();
    }
  });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, DestructionStopsFiring) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(&sim, 0, 10, [&](SimTime) { ++count; });
    sim.RunUntil(25);
  }
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);  // t=0, 10, 20
}

}  // namespace
}  // namespace perfiso
