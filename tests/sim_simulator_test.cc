#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace perfiso {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.EventsExecuted(), 3u);
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunUntilEmpty();
  SimTime fired_at = -1;
  sim.Schedule(50, [&] { fired_at = sim.Now(); });  // in the past
  sim.RunUntilEmpty();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(10, recurse);
    }
  };
  sim.Schedule(0, recurse);
  sim.RunUntilEmpty();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 40);
}

TEST(SimulatorTest, CancelRemovesEventEagerly) {
  Simulator sim;
  int fired = 0;
  EventHandle keep = sim.Schedule(10, [&] { ++fired; });
  EventHandle cancel = sim.Schedule(20, [&] { fired += 100; });
  ASSERT_EQ(sim.PendingEvents(), 2u);
  EXPECT_TRUE(sim.Pending(cancel));
  EXPECT_TRUE(sim.Cancel(cancel));
  EXPECT_EQ(sim.PendingEvents(), 1u);  // left the queue, did not become a no-op
  EXPECT_FALSE(sim.Pending(cancel));
  if constexpr (!kSimSanEnabled) {
    // Lenient contract only: SimSan turns a double-cancel into an abort.
    EXPECT_FALSE(sim.Cancel(cancel));  // idempotent on a stale handle
  }
  sim.RunUntilEmpty();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Pending(keep) == false);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
  EXPECT_EQ(sim.stats().events_executed, 1u);
}

TEST(SimulatorTest, CancelledCallbackIsDestroyedNotRun) {
  Simulator sim;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  EventHandle h = sim.Schedule(10, [token] { FAIL() << "cancelled event ran"; });
  token.reset();
  EXPECT_FALSE(alive.expired());  // the queued callback holds the capture
  EXPECT_TRUE(sim.Cancel(h));
  EXPECT_TRUE(alive.expired());  // cancel destroys the callback immediately
  sim.RunUntilEmpty();
}

TEST(SimulatorTest, HandlesGoStaleWhenTheEventFires) {
  Simulator sim;
  EventHandle h = sim.Schedule(5, [] {});
  EXPECT_TRUE(sim.Pending(h));
  sim.RunUntilEmpty();
  EXPECT_FALSE(sim.Pending(h));
  EXPECT_FALSE(sim.Cancel(h));
  EXPECT_FALSE(sim.Reschedule(h, 50));
  EXPECT_FALSE(sim.Cancel(EventHandle{}));  // default handle is inert
}

TEST(SimulatorTest, StaleHandleDoesNotCancelSlotReuse) {
  Simulator sim;
  std::vector<int> order;
  EventHandle first = sim.Schedule(10, [&] { order.push_back(1); });
  ASSERT_TRUE(sim.Cancel(first));
  // The freed slot is recycled for the next event; the stale handle must not
  // reach it.
  EventHandle second = sim.Schedule(20, [&] { order.push_back(2); });
  if constexpr (!kSimSanEnabled) {
    // Lenient contract only: SimSan aborts on a cancel through a handle
    // whose slot has been recycled (this is its headline catch).
    EXPECT_FALSE(sim.Cancel(first));
  }
  EXPECT_TRUE(sim.Pending(second));
  sim.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(SimulatorTest, RescheduleMovesTheEvent) {
  Simulator sim;
  std::vector<int> order;
  EventHandle h = sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.Reschedule(h, 30));  // push back past the other event
  sim.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, RescheduleOrdersAsFreshDecisionAmongSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  EventHandle h = sim.Schedule(5, [&] { order.push_back(1); });
  sim.Schedule(10, [&] { order.push_back(2); });
  sim.Reschedule(h, 10);  // same timestamp as event 2, but rescheduled later
  sim.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimulatorTest, ClampedSchedulesAreCounted) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunUntilEmpty();
  EXPECT_EQ(sim.stats().clamped_schedules, 0u);
  SimTime fired_at = -1;
  sim.Schedule(50, [&] { fired_at = sim.Now(); });  // in the past
  EXPECT_EQ(sim.stats().clamped_schedules, 1u);
  EventHandle h = sim.Schedule(200, [] {});
  sim.Reschedule(h, 10);  // reschedule into the past clamps too
  EXPECT_EQ(sim.stats().clamped_schedules, 2u);
  sim.RunUntilEmpty();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, LargeCallbacksFallBackToCountedHeapAllocation) {
  Simulator sim;
  uint64_t big[16] = {};  // 128-byte capture: above the inline buffer
  big[0] = 41;
  uint64_t got = 0;
  sim.Schedule(1, [big, &got] { got = big[0] + 1; });
  EXPECT_EQ(sim.stats().callback_heap_allocs, 1u);
  sim.Schedule(2, [&got] { ++got; });  // small captures stay inline
  EXPECT_EQ(sim.stats().callback_heap_allocs, 1u);
  sim.RunUntilEmpty();
  EXPECT_EQ(got, 43u);
}

TEST(SimulatorTest, PoolRecyclesSlotsWithoutGrowth) {
  Simulator sim;
  // Self-rescheduling chain: after the first slab, steady state allocates no
  // further slabs no matter how many events run.
  int remaining = 10000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) {
      sim.ScheduleAfter(10, tick);
    }
  };
  sim.Schedule(0, tick);
  sim.RunUntilEmpty();
  EXPECT_EQ(sim.stats().events_executed, 10000u);
  EXPECT_EQ(sim.stats().slab_allocs, 1u);
}

TEST(SimulatorTest, ManyEventsInterleavedCancelKeepOrder) {
  // Heap stress for the 4-ary sift paths: cancel every third event out of a
  // shuffled schedule and verify the survivors fire in (time, seq) order.
  Simulator sim;
  std::vector<std::pair<SimTime, int>> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 300; ++i) {
    const SimTime when = (i * 7919) % 101;  // scrambled times with collisions
    handles.push_back(sim.Schedule(when, [&fired, when, i] { fired.push_back({when, i}); }));
  }
  for (size_t i = 0; i < handles.size(); i += 3) {
    EXPECT_TRUE(sim.Cancel(handles[i]));
  }
  sim.RunUntilEmpty();
  EXPECT_EQ(fired.size(), 200u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // FIFO within a timestamp
    }
  }
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(&sim, /*start=*/5, /*period=*/10, [&](SimTime now) { fires.push_back(now); });
  sim.RunUntil(36);
  EXPECT_EQ(fires, (std::vector<SimTime>{5, 15, 25, 35}));
  task.Cancel();
  sim.RunUntil(100);
  EXPECT_EQ(fires.size(), 4u);
}

TEST(PeriodicTaskTest, CancelFromWithinTick) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(&sim, 0, 10, [&](SimTime) {
    if (++count == 3) {
      task.Cancel();
    }
  });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

// Regression (event-engine overhaul): a cancelled task's already-armed event
// must leave the queue eagerly instead of staying behind to fire as a dead
// no-op. Observable as PendingEvents() dropping at Cancel() time.
TEST(PeriodicTaskTest, CancelRemovesArmedEventFromQueue) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, /*start=*/5, /*period=*/10, [&](SimTime) { ++ticks; });
  sim.RunUntil(6);
  ASSERT_EQ(ticks, 1);
  ASSERT_EQ(sim.PendingEvents(), 1u);  // the next tick is armed
  task.Cancel();
  EXPECT_EQ(sim.PendingEvents(), 0u);  // removed eagerly, not left as a no-op
  EXPECT_TRUE(task.cancelled());
  sim.RunUntilEmpty();
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTaskTest, CancelFromWithinTickAlsoEmptiesQueue) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 0, 10, [&](SimTime) {
    if (++ticks == 2) {
      task.Cancel();
    }
  });
  sim.RunUntil(15);
  EXPECT_EQ(ticks, 2);
  EXPECT_EQ(sim.PendingEvents(), 0u);  // no re-arm, nothing left behind
}

TEST(PeriodicTaskTest, DestructionStopsFiring) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(&sim, 0, 10, [&](SimTime) { ++count; });
    sim.RunUntil(25);
  }
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);  // t=0, 10, 20
}

}  // namespace
}  // namespace perfiso
