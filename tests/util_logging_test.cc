// Sim-time log stamping: a simulator registers a thread-local clock at
// construction, every message logged while it is alive carries the current
// simulated time, and teardown (including nested simulators) restores the
// previous clock.
#include "src/util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/sim_time.h"

namespace perfiso {
namespace {

class CaptureSink {
 public:
  CaptureSink() {
    SetLogSink([this](LogLevel, const std::string& message) { lines_.push_back(message); });
  }
  ~CaptureSink() { SetLogSink(nullptr); }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

TEST(SimTimeLogging, MessagesCarryCurrentSimTimeWhileSimulatorIsAlive) {
  CaptureSink sink;
  {
    Simulator sim;
    PERFISO_LOG(kInfo) << "at zero";
    sim.Schedule(FromMillis(1250), [] { PERFISO_LOG(kInfo) << "mid-run"; });
    sim.RunUntil(FromMillis(2000));
    PERFISO_LOG(kInfo) << "after run";
  }
  PERFISO_LOG(kInfo) << "no simulator";

  ASSERT_EQ(sink.lines().size(), 4u);
  EXPECT_TRUE(StartsWith(sink.lines()[0], "[t=0.000000s] ")) << sink.lines()[0];
  EXPECT_TRUE(StartsWith(sink.lines()[1], "[t=1.250000s] ")) << sink.lines()[1];
  EXPECT_TRUE(StartsWith(sink.lines()[2], "[t=2.000000s] ")) << sink.lines()[2];
  // Once the simulator is gone the wall-clock-free prefix disappears.
  EXPECT_FALSE(StartsWith(sink.lines()[3], "[t=")) << sink.lines()[3];
}

TEST(SimTimeLogging, NestedSimulatorsUnwindToTheOuterClock) {
  CaptureSink sink;
  Simulator outer;
  outer.Schedule(FromMillis(500), [] {});
  outer.RunUntil(FromMillis(500));
  {
    Simulator inner;
    PERFISO_LOG(kInfo) << "inner clock";
  }
  PERFISO_LOG(kInfo) << "outer restored";

  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_TRUE(StartsWith(sink.lines()[0], "[t=0.000000s] ")) << sink.lines()[0];
  EXPECT_TRUE(StartsWith(sink.lines()[1], "[t=0.500000s] ")) << sink.lines()[1];
}

TEST(SimTimeLogging, ManualRegistrationRestoresPrevious) {
  CaptureSink sink;
  static constexpr uint64_t kNow = 3'000'000;  // 3 ms
  const SimClockRegistration previous =
      SetThreadSimClock([](const void*) -> uint64_t { return kNow; }, nullptr);
  PERFISO_LOG(kInfo) << "manual";
  ClearThreadSimClock(previous);
  PERFISO_LOG(kInfo) << "cleared";

  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_TRUE(StartsWith(sink.lines()[0], "[t=0.003000s] ")) << sink.lines()[0];
  EXPECT_FALSE(StartsWith(sink.lines()[1], "[t=")) << sink.lines()[1];
}

}  // namespace
}  // namespace perfiso
