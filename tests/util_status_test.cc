#include "src/util/status.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad core count");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad core count");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad core count");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(InternalError("a"), InternalError("a"));
  EXPECT_FALSE(InternalError("a") == InternalError("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

Status ReturnsEarly(bool fail) {
  PERFISO_RETURN_IF_ERROR(fail ? InternalError("boom") : OkStatus());
  return NotFoundError("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(ReturnsEarly(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ReturnsEarly(false).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace perfiso
