#include "src/sim/machine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace perfiso {
namespace {

// A small spec with zero context-switch cost for exact timing arithmetic.
MachineSpec TinySpec(int cores, SimDuration quantum = FromMillis(10)) {
  MachineSpec spec;
  spec.num_cores = cores;
  spec.quantum = quantum;
  spec.context_switch = 0;
  spec.throttle_interval = FromMillis(20);
  return spec;
}

TEST(SimMachineTest, AllCoresIdleInitially) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(4), "m0");
  EXPECT_EQ(machine.IdleCount(), 4);
  EXPECT_EQ(machine.IdleMask(), CpuSet::FirstN(4));
}

TEST(SimMachineTest, SingleThreadRunsToCompletion) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1), "m0");
  SimTime done_at = -1;
  machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMillis(3),
                      [&](SimTime now) { done_at = now; });
  EXPECT_EQ(machine.IdleCount(), 0);  // dispatched immediately
  sim.RunUntilEmpty();
  EXPECT_EQ(done_at, FromMillis(3));
  EXPECT_EQ(machine.IdleCount(), 1);
  EXPECT_EQ(machine.metrics().busy_ns[static_cast<int>(TenantClass::kPrimary)], FromMillis(3));
}

TEST(SimMachineTest, ContextSwitchChargedToOs) {
  Simulator sim;
  MachineSpec spec = TinySpec(1);
  spec.context_switch = FromMicros(2);
  SimMachine machine(&sim, spec, "m0");
  SimTime done_at = -1;
  machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMillis(1),
                      [&](SimTime now) { done_at = now; });
  sim.RunUntilEmpty();
  EXPECT_EQ(done_at, FromMillis(1) + FromMicros(2));
  EXPECT_EQ(machine.metrics().busy_ns[static_cast<int>(TenantClass::kOs)], FromMicros(2));
  EXPECT_EQ(machine.metrics().busy_ns[static_cast<int>(TenantClass::kPrimary)], FromMillis(1));
}

TEST(SimMachineTest, RoundRobinOnOneCore) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1, FromMillis(10)), "m0");
  SimTime done_a = -1;
  SimTime done_b = -1;
  machine.SpawnThread("a", TenantClass::kPrimary, JobId{}, FromMillis(15),
                      [&](SimTime now) { done_a = now; });
  machine.SpawnThread("b", TenantClass::kPrimary, JobId{}, FromMillis(15),
                      [&](SimTime now) { done_b = now; });
  sim.RunUntilEmpty();
  // a: [0,10) + [20,25); b: [10,20) + [25,30).
  EXPECT_EQ(done_a, FromMillis(25));
  EXPECT_EQ(done_b, FromMillis(30));
}

TEST(SimMachineTest, WakeTakesIdleCoreImmediately) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(2), "m0");
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, JobId{});
  SimTime done_at = -1;
  sim.Schedule(FromMillis(5), [&] {
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMillis(1),
                        [&](SimTime now) { done_at = now; });
  });
  sim.RunUntil(FromMillis(100));
  EXPECT_EQ(done_at, FromMillis(6));  // no queueing: second core was idle
  const auto& delays = machine.metrics().primary_sched_delay_us;
  ASSERT_EQ(delays.Count(), 1u);
  EXPECT_EQ(delays.Max(), 0);
}

TEST(SimMachineTest, NoWakePreemptionOfEqualPriority) {
  // The core mechanism of the paper: a woken thread cannot evict a running
  // CPU-bound thread; it waits for the quantum to expire.
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1, FromMillis(10)), "m0");
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, JobId{});
  SimTime done_at = -1;
  sim.Schedule(FromMillis(3), [&] {
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMillis(1),
                        [&](SimTime now) { done_at = now; });
  });
  sim.RunUntil(FromMillis(100));
  // Waits from t=3ms until the hog's quantum ends at t=10ms, then runs 1ms.
  EXPECT_EQ(done_at, FromMillis(11));
  const auto& delays = machine.metrics().primary_sched_delay_us;
  ASSERT_EQ(delays.Count(), 1u);
  EXPECT_EQ(delays.Max(), 7000);  // 7 ms in us
}

TEST(SimMachineTest, QuantumRenewalWithoutWaiters) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1, FromMillis(10)), "m0");
  const JobId job = machine.CreateJob("bully");
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  sim.RunUntil(FromMillis(95));
  // Hog runs continuously; renewals must not accumulate context switches.
  EXPECT_EQ(*machine.JobCpuTime(job), FromMillis(95));
  EXPECT_EQ(machine.metrics().busy_ns[static_cast<int>(TenantClass::kOs)], 0);
}

TEST(SimMachineTest, JobAffinityRestrictsPlacement) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(2), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobAffinity(job, CpuSet::Single(1)).ok());
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  sim.RunUntil(FromMillis(5));
  EXPECT_EQ(machine.IdleMask(), CpuSet::Single(0));  // core 1 busy, core 0 idle
}

TEST(SimMachineTest, ShrinkingAffinityPreemptsImmediately) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(2), "m0");
  const JobId job = machine.CreateJob("sec");
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  sim.RunUntil(FromMillis(5));
  EXPECT_FALSE(machine.IdleMask().Test(0));  // hog took the lowest idle core
  ASSERT_TRUE(machine.SetJobAffinity(job, CpuSet::Single(1)).ok());
  EXPECT_TRUE(machine.IdleMask().Test(0));
  EXPECT_FALSE(machine.IdleMask().Test(1));
  EXPECT_GE(machine.metrics().preemptions, 1);
  sim.RunUntil(FromMillis(10));
  EXPECT_EQ(*machine.JobCpuTime(job), FromMillis(10));  // no CPU time lost
}

TEST(SimMachineTest, GrowingAffinityPicksUpQueuedThreads) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(2, FromMillis(50)), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobAffinity(job, CpuSet::Single(0)).ok());
  machine.SpawnLoopThread("hog1", TenantClass::kSecondary, job);
  machine.SpawnLoopThread("hog2", TenantClass::kSecondary, job);  // queues behind hog1
  sim.RunUntil(FromMillis(5));
  EXPECT_TRUE(machine.IdleMask().Test(1));
  ASSERT_TRUE(machine.SetJobAffinity(job, CpuSet::FirstN(2)).ok());
  EXPECT_EQ(machine.IdleCount(), 0);  // hog2 stolen onto core 1 immediately
  sim.RunUntil(FromMillis(10));
  EXPECT_EQ(*machine.JobCpuTime(job), FromMillis(15));  // 10 + 5
}

TEST(SimMachineTest, EmptyAffinityMaskRejected) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(2), "m0");
  const JobId job = machine.CreateJob("sec");
  EXPECT_FALSE(machine.SetJobAffinity(job, CpuSet()).ok());
  EXPECT_FALSE(machine.SetJobAffinity(job, CpuSet::Range(10, 12)).ok());  // outside machine
}

TEST(SimMachineTest, RateCapEnforcesDutyCycle) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1), "m0");  // throttle interval 20 ms
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobCpuRateCap(job, 0.25).ok());
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  sim.RunUntil(kSecond);
  // 25% of one core: 5 ms per 20 ms interval, 50 intervals.
  EXPECT_EQ(*machine.JobCpuTime(job), FromMillis(250));
}

TEST(SimMachineTest, RateCapAppliesAcrossCores) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(4), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobCpuRateCap(job, 0.5).ok());
  for (int i = 0; i < 4; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  sim.RunUntil(kSecond);
  // 50% of 4 cores = 2 core-seconds per second.
  EXPECT_NEAR(ToSeconds(*machine.JobCpuTime(job)), 2.0, 0.05);
}

TEST(SimMachineTest, ThrottledJobFreesCoresForOthers) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1, FromMillis(100)), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobCpuRateCap(job, 0.10).ok());  // 2 ms per 20 ms
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  SimTime done_at = -1;
  sim.Schedule(FromMillis(3), [&] {
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMillis(1),
                        [&](SimTime now) { done_at = now; });
  });
  sim.RunUntil(FromMillis(100));
  // Hog exhausts its 2 ms budget at t=2 ms and the core goes idle, so the
  // primary worker dispatches immediately at t=3 ms despite the 100 ms quantum.
  EXPECT_EQ(done_at, FromMillis(4));
}

TEST(SimMachineTest, RemovingRateCapUnthrottles) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobCpuRateCap(job, 0.05).ok());
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  sim.RunUntil(FromMillis(100));
  ASSERT_TRUE(machine.SetJobCpuRateCap(job, 0).ok());
  const SimDuration before = *machine.JobCpuTime(job);
  sim.RunUntil(FromMillis(200));
  EXPECT_EQ(*machine.JobCpuTime(job) - before, FromMillis(100));  // full speed
}

TEST(SimMachineTest, WorkStealingWhenCoreIdles) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(2, FromMillis(50)), "m0");
  machine.SpawnLoopThread("hog0", TenantClass::kSecondary, JobId{});
  const ThreadId hog1 = machine.SpawnLoopThread("hog1", TenantClass::kSecondary, JobId{});
  SimTime done_at = -1;
  sim.Schedule(FromMillis(1), [&] {
    // Queues on core 0 (lowest id wins the shortest-queue tie).
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMillis(1),
                        [&](SimTime now) { done_at = now; });
  });
  sim.Schedule(FromMillis(2), [&] { ASSERT_TRUE(machine.KillThread(hog1).ok()); });
  sim.RunUntil(FromMillis(40));
  // The worker queued behind hog0 on core 0; when hog1 died at t=2, core 1
  // went idle and stole the worker from core 0's queue.
  EXPECT_EQ(done_at, FromMillis(3));
  EXPECT_EQ(machine.metrics().steals, 1);
}

TEST(SimMachineTest, KillJobTerminatesAllThreads) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(4), "m0");
  const JobId job = machine.CreateJob("sec");
  for (int i = 0; i < 8; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  sim.RunUntil(FromMillis(5));
  EXPECT_EQ(machine.IdleCount(), 0);
  EXPECT_EQ(*machine.JobLiveThreads(job), 8);
  ASSERT_TRUE(machine.KillJob(job).ok());
  EXPECT_EQ(machine.IdleCount(), 4);
  EXPECT_EQ(*machine.JobLiveThreads(job), 0);
  // CPU accounting is preserved after death.
  EXPECT_EQ(*machine.JobCpuTime(job), FromMillis(20));
}

TEST(SimMachineTest, JobCpuTimeIncludesInFlightSlice) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1, kSecond), "m0");
  const JobId job = machine.CreateJob("sec");
  machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  sim.RunUntil(FromMillis(7));  // mid-slice
  EXPECT_EQ(*machine.JobCpuTime(job), FromMillis(7));
}

TEST(SimMachineTest, BurstMetricCountsReadyThreads) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(4), "m0");
  for (int i = 0; i < 15; ++i) {
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, FromMicros(100), nullptr);
  }
  sim.RunUntilEmpty();
  EXPECT_GE(machine.metrics().max_ready_burst_5us, 15);
}

TEST(SimMachineTest, ThreadAffinityIntersectsJobMask) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(4), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobAffinity(job, CpuSet::Range(0, 2)).ok());
  const ThreadId tid = machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  ASSERT_TRUE(machine.SetThreadAffinity(tid, CpuSet::Single(1)).ok());
  sim.RunUntil(FromMillis(5));
  EXPECT_FALSE(machine.IdleMask().Test(1));
  EXPECT_TRUE(machine.IdleMask().Test(0));
}

TEST(SimMachineTest, MemoryAccounting) {
  Simulator sim;
  MachineSpec spec = TinySpec(1);
  spec.memory_bytes = 1000;
  SimMachine machine(&sim, spec, "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.AddJobMemory(job, 600).ok());
  EXPECT_EQ(machine.FreeMemoryBytes(), 400);
  EXPECT_EQ(*machine.JobMemory(job), 600);
  EXPECT_FALSE(machine.AddJobMemory(job, -700).ok());  // would go negative
  ASSERT_TRUE(machine.KillJob(job).ok());
  EXPECT_EQ(machine.FreeMemoryBytes(), 1000);  // killing releases memory
}

TEST(SimMachineTest, CompletionCallbackCanSpawn) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1), "m0");
  SimTime chained_done = -1;
  machine.SpawnThread("parent", TenantClass::kPrimary, JobId{}, FromMillis(1), [&](SimTime) {
    machine.SpawnThread("child", TenantClass::kPrimary, JobId{}, FromMillis(2),
                        [&](SimTime now) { chained_done = now; });
  });
  sim.RunUntilEmpty();
  EXPECT_EQ(chained_done, FromMillis(3));
}

TEST(SimMachineTest, InvalidIdsAreErrors) {
  Simulator sim;
  SimMachine machine(&sim, TinySpec(1), "m0");
  EXPECT_FALSE(machine.SetJobAffinity(JobId{5}, CpuSet::FirstN(1)).ok());
  EXPECT_FALSE(machine.KillJob(JobId{}).ok());
  EXPECT_FALSE(machine.KillThread(ThreadId{99}).ok());
  EXPECT_FALSE(machine.JobCpuTime(JobId{-1}).ok());
  EXPECT_FALSE(machine.SetJobCpuRateCap(JobId{0}, 0.5).ok());  // no job created yet
}

}  // namespace
}  // namespace perfiso
