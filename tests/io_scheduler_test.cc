#include "src/disk/io_scheduler.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace perfiso {
namespace {

// A slow single-drive volume makes scheduling decisions visible.
struct Rig {
  Simulator sim;
  DiskSpec spec;
  std::unique_ptr<StripedVolume> volume;
  std::unique_ptr<IoScheduler> scheduler;

  explicit Rig(int max_outstanding = 1) {
    spec.model = "test";
    spec.read_latency = FromMillis(1);
    spec.write_latency = FromMillis(1);
    spec.seek_penalty = 0;
    spec.bandwidth_bps = 1e12;
    spec.concurrency = 1;
    volume = std::make_unique<StripedVolume>(&sim, spec, 1, "vol");
    scheduler = std::make_unique<IoScheduler>(&sim, volume.get(), max_outstanding);
  }

  void Submit(int owner, int64_t bytes, std::function<void(SimTime)> cb = nullptr) {
    IoRequest request;
    request.owner = owner;
    request.bytes = bytes;
    request.sequential = true;
    request.on_complete = std::move(cb);
    scheduler->Submit(std::move(request));
  }
};

TEST(IoSchedulerTest, HigherPriorityDispatchesFirst) {
  Rig rig;
  rig.scheduler->RegisterOwner(1, "high", /*priority=*/0, /*weight=*/1);
  rig.scheduler->RegisterOwner(2, "low", /*priority=*/2, /*weight=*/1);
  std::vector<int> completion_order;
  // Fill the device with one request so the next two queue in the scheduler.
  rig.Submit(2, 512, [&](SimTime) { completion_order.push_back(2); });
  rig.Submit(2, 512, [&](SimTime) { completion_order.push_back(2); });
  rig.Submit(1, 512, [&](SimTime) { completion_order.push_back(1); });
  rig.sim.RunUntilEmpty();
  ASSERT_EQ(completion_order.size(), 3u);
  // First was already dispatched; the high-priority request jumps the queue.
  EXPECT_EQ(completion_order[1], 1);
}

TEST(IoSchedulerTest, DwrrSharesByWeightWithinBand) {
  Rig rig;
  rig.scheduler->RegisterOwner(1, "heavy", 1, /*weight=*/3);
  rig.scheduler->RegisterOwner(2, "light", 1, /*weight=*/1);
  int done1 = 0;
  int done2 = 0;
  for (int i = 0; i < 200; ++i) {
    rig.Submit(1, 64 * 1024, [&](SimTime) { ++done1; });
    rig.Submit(2, 64 * 1024, [&](SimTime) { ++done2; });
  }
  // Run long enough for ~100 completions (1 ms each).
  rig.sim.RunUntil(FromMillis(100));
  ASSERT_GT(done1 + done2, 80);
  const double ratio = static_cast<double>(done1) / std::max(1, done2);
  EXPECT_NEAR(ratio, 3.0, 0.8);
}

TEST(IoSchedulerTest, BandwidthCapLimitsThroughput) {
  Rig rig(/*max_outstanding=*/4);
  rig.scheduler->RegisterOwner(1, "capped", 1, 1);
  ASSERT_TRUE(rig.scheduler->SetBandwidthCap(1, 1e6).ok());  // 1 MB/s
  int64_t bytes_done = 0;
  for (int i = 0; i < 1000; ++i) {
    rig.Submit(1, 64 * 1024, [&](SimTime) { bytes_done += 64 * 1024; });
  }
  rig.sim.RunUntil(2 * kSecond);
  // 2 s at 1 MB/s plus the initial 1 s burst allowance.
  EXPECT_LE(bytes_done, static_cast<int64_t>(3.2e6));
  EXPECT_GE(bytes_done, static_cast<int64_t>(2.0e6));
}

TEST(IoSchedulerTest, IopsCapLimitsRate) {
  Rig rig(4);
  rig.scheduler->RegisterOwner(1, "capped", 1, 1);
  ASSERT_TRUE(rig.scheduler->SetIopsCap(1, 20).ok());
  int ops = 0;
  for (int i = 0; i < 500; ++i) {
    rig.Submit(1, 512, [&](SimTime) { ++ops; });
  }
  rig.sim.RunUntil(2 * kSecond);
  EXPECT_LE(ops, 50);  // 2 s * 20 IOPS + burst
  EXPECT_GE(ops, 35);
}

TEST(IoSchedulerTest, ClearingCapRestoresThroughput) {
  Rig rig(4);
  rig.scheduler->RegisterOwner(1, "capped", 1, 1);
  ASSERT_TRUE(rig.scheduler->SetIopsCap(1, 10).ok());
  int ops = 0;
  for (int i = 0; i < 500; ++i) {
    rig.Submit(1, 512, [&](SimTime) { ++ops; });
  }
  rig.sim.RunUntil(kSecond);
  const int capped_ops = ops;
  ASSERT_TRUE(rig.scheduler->SetIopsCap(1, 0).ok());
  rig.sim.RunUntil(2 * kSecond);
  // Uncapped, the 1 ms device does ~1000 ops/s.
  EXPECT_GT(ops - capped_ops, 300);
}

TEST(IoSchedulerTest, UnregisteredOwnerGetsDefaults) {
  Rig rig;
  int done = 0;
  rig.Submit(77, 512, [&](SimTime) { ++done; });
  rig.sim.RunUntilEmpty();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(*rig.scheduler->Priority(77), IoScheduler::kNumPriorities - 1);
}

TEST(IoSchedulerTest, SettingKnobsOnUnknownOwnerFails) {
  Rig rig;
  EXPECT_FALSE(rig.scheduler->SetPriority(5, 0).ok());
  EXPECT_FALSE(rig.scheduler->SetWeight(5, 2).ok());
  EXPECT_FALSE(rig.scheduler->SetBandwidthCap(5, 100).ok());
  EXPECT_FALSE(rig.scheduler->SetIopsCap(5, 100).ok());
  EXPECT_FALSE(rig.scheduler->Priority(5).ok());
}

TEST(IoSchedulerTest, PriorityChangeAppliesToQueuedWork) {
  Rig rig;
  rig.scheduler->RegisterOwner(1, "a", 2, 1);
  rig.scheduler->RegisterOwner(2, "b", 2, 1);
  std::vector<int> order;
  rig.Submit(1, 512, [&](SimTime) { order.push_back(1); });  // occupies device
  for (int i = 0; i < 3; ++i) {
    rig.Submit(1, 512, [&](SimTime) { order.push_back(1); });
    rig.Submit(2, 512, [&](SimTime) { order.push_back(2); });
  }
  ASSERT_TRUE(rig.scheduler->SetPriority(2, 0).ok());
  rig.sim.RunUntilEmpty();
  // After the in-flight request, owner 2's queued requests finish first.
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 2);
}

TEST(IoSchedulerTest, StatsTrackLifecycle) {
  Rig rig;
  rig.scheduler->RegisterOwner(1, "a", 0, 1);
  for (int i = 0; i < 5; ++i) {
    rig.Submit(1, 1024);
  }
  rig.sim.RunUntilEmpty();
  const auto& stats = rig.scheduler->Stats(1);
  EXPECT_EQ(stats.submitted, 5);
  EXPECT_EQ(stats.dispatched, 5);
  EXPECT_EQ(stats.completed, 5);
  EXPECT_EQ(stats.bytes_completed, 5 * 1024);
  EXPECT_EQ(rig.scheduler->outstanding(), 0);
}

}  // namespace
}  // namespace perfiso
