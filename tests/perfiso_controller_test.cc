#include "src/perfiso/controller.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/platform/linux_platform.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/workload/bullies.h"

namespace perfiso {
namespace {

struct Rig {
  Simulator sim;
  MachineSpec spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimPlatform> platform;
  JobId secondary;
  std::unique_ptr<CpuBully> bully;

  explicit Rig(int bully_threads = 48) {
    spec.context_switch = 0;
    machine = std::make_unique<SimMachine>(&sim, spec, "m0");
    platform = std::make_unique<SimPlatform>(machine.get(), nullptr);
    secondary = machine->CreateJob("secondary");
    platform->AddSecondaryJob(secondary);
    if (bully_threads > 0) {
      bully = std::make_unique<CpuBully>(machine.get(), secondary, bully_threads);
    }
  }

  PerfIsoController MakeController(const PerfIsoConfig& config) {
    return PerfIsoController(platform.get(), config);
  }
};

PerfIsoConfig BlindConfig(int buffer = 8) {
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  config.blind.buffer_cores = buffer;
  return config;
}

TEST(PerfIsoControllerTest, BlindIsolationConvergesToBufferIdleCores) {
  Rig rig;
  auto controller = rig.MakeController(BlindConfig(8));
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  rig.sim.RunUntil(FromMillis(50));
  // Bully-only machine: the secondary should own 40 cores, 8 stay idle.
  EXPECT_EQ(rig.machine->IdleCount(), 8);
  EXPECT_EQ(controller.secondary_cores(), 40);
}

TEST(PerfIsoControllerTest, PollUpdateSplitAvoidsRedundantUpdates) {
  Rig rig;
  auto controller = rig.MakeController(BlindConfig(8));
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  rig.sim.RunUntil(kSecond);
  // ~1000 polls at steady state, but only a handful of affinity updates.
  EXPECT_GT(controller.stats().polls, 900);
  EXPECT_LT(controller.stats().affinity_updates, 10);
}

TEST(PerfIsoControllerTest, ReactsToPrimaryBurst) {
  Rig rig;
  auto controller = rig.MakeController(BlindConfig(8));
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  rig.sim.RunUntil(FromMillis(20));
  ASSERT_EQ(controller.secondary_cores(), 40);
  // A burst of primary threads occupies 20 of the buffer/primary cores.
  rig.sim.Schedule(FromMillis(20), [&] {
    for (int i = 0; i < 20; ++i) {
      rig.machine->SpawnThread("burst", TenantClass::kPrimary, JobId{}, FromMillis(300),
                               nullptr);
    }
  });
  rig.sim.RunUntil(FromMillis(100));
  // The controller must have shrunk the secondary to restore the buffer:
  // S = 48 - 20 (primary) - 8 (buffer) = 20.
  EXPECT_EQ(controller.secondary_cores(), 20);
  EXPECT_EQ(rig.machine->IdleCount(), 8);
  // After the burst drains, the secondary grows back.
  rig.sim.RunUntil(kSecond);
  EXPECT_EQ(controller.secondary_cores(), 40);
}

TEST(PerfIsoControllerTest, KillSwitchRestoresDefaults) {
  Rig rig;
  auto controller = rig.MakeController(BlindConfig(8));
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  rig.sim.RunUntil(FromMillis(50));
  ASSERT_EQ(rig.machine->IdleCount(), 8);

  ASSERT_TRUE(controller.SetActive(false).ok());
  rig.sim.RunUntil(FromMillis(60));
  EXPECT_EQ(rig.machine->IdleCount(), 0);  // secondary unrestricted again

  ASSERT_TRUE(controller.SetActive(true).ok());
  rig.sim.RunUntil(FromMillis(200));
  EXPECT_EQ(rig.machine->IdleCount(), 8);
}

TEST(PerfIsoControllerTest, DisabledConfigNeverTouchesKnobs) {
  Rig rig;
  PerfIsoConfig config = BlindConfig(8);
  config.enabled = false;
  auto controller = rig.MakeController(config);
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  rig.sim.RunUntil(FromMillis(100));
  EXPECT_FALSE(controller.active());
  EXPECT_EQ(rig.machine->IdleCount(), 0);
  EXPECT_EQ(controller.stats().polls, 0);
}

TEST(PerfIsoControllerTest, StaticCoresModeApplied) {
  Rig rig;
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kStaticCores;
  config.static_secondary_cores = 8;
  auto controller = rig.MakeController(config);
  ASSERT_TRUE(controller.Initialize().ok());
  rig.sim.RunUntil(FromMillis(10));
  EXPECT_EQ(rig.machine->IdleCount(), 40);  // bully pinned to 8 high cores
  EXPECT_EQ((*rig.machine->JobAffinity(rig.secondary)), CpuSet::Range(40, 48));
}

TEST(PerfIsoControllerTest, CpuRateCapModeApplied) {
  Rig rig;
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kCpuRateCap;
  config.cpu_rate_cap = 0.05;
  auto controller = rig.MakeController(config);
  ASSERT_TRUE(controller.Initialize().ok());
  rig.sim.RunUntil(2 * kSecond);
  const double fraction = ToSeconds(*rig.machine->JobCpuTime(rig.secondary)) / (2.0 * 48);
  EXPECT_NEAR(fraction, 0.05, 0.01);
}

TEST(PerfIsoControllerTest, MemoryWatchdogKillsSecondary) {
  Rig rig;
  PerfIsoConfig config = BlindConfig(8);
  config.min_free_memory_bytes = 8LL * 1024 * 1024 * 1024;
  config.memory_check_every_n_polls = 10;
  auto controller = rig.MakeController(config);
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  // The secondary balloons to within 4 GB of the 128 GB machine.
  ASSERT_TRUE(rig.machine
                  ->AddJobMemory(rig.secondary, rig.machine->FreeMemoryBytes() -
                                                    4LL * 1024 * 1024 * 1024)
                  .ok());
  rig.sim.RunUntil(FromMillis(100));
  EXPECT_EQ(controller.stats().memory_kills, 1);
  EXPECT_EQ(*rig.machine->JobLiveThreads(rig.secondary), 0);
  EXPECT_EQ(rig.machine->IdleCount(), 48);
}

TEST(PerfIsoControllerTest, RuntimeReconfiguration) {
  Rig rig;
  auto controller = rig.MakeController(BlindConfig(8));
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  rig.sim.RunUntil(FromMillis(50));
  ASSERT_EQ(rig.machine->IdleCount(), 8);

  PerfIsoConfig next;
  next.cpu_mode = CpuIsolationMode::kStaticCores;
  next.static_secondary_cores = 4;
  ASSERT_TRUE(controller.ApplyConfig(next).ok());
  rig.sim.RunUntil(FromMillis(60));
  EXPECT_EQ(rig.machine->IdleCount(), 44);
}

TEST(PerfIsoControllerTest, InvalidConfigRejected) {
  Rig rig;
  PerfIsoConfig config = BlindConfig(48);  // buffer == cores
  auto controller = rig.MakeController(config);
  EXPECT_FALSE(controller.Initialize().ok());
}

TEST(PerfIsoControllerTest, RecoverRebuildsFromState) {
  Rig rig;
  PerfIsoConfig config = BlindConfig(6);
  config.cpu_mode = CpuIsolationMode::kStaticCores;
  config.static_secondary_cores = 12;
  const ConfigMap state = PerfIsoConfig(config).ToConfigMap();
  auto recovered = PerfIsoController::Recover(rig.platform.get(), state);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->config().static_secondary_cores, 12);
  rig.sim.RunUntil(FromMillis(10));
  EXPECT_EQ(rig.machine->IdleCount(), 36);
}

// A platform whose egress shaper is unavailable (LinuxPlatform without
// tc/HTB privileges); everything else behaves normally.
class NoEgressPlatform : public SimPlatform {
 public:
  using SimPlatform::SimPlatform;
  Status SetEgressRateCap(double) override {
    return UnimplementedError("egress shaping requires tc/HTB");
  }
};

TEST(PerfIsoControllerTest, EgressCapUnimplementedDegradesToWarning) {
  // Regression: a cluster config with an egress cap used to hard-fail
  // Initialize() on LinuxPlatform (controller.cc propagated the
  // UNIMPLEMENTED from linux_platform.cc). Like the other unimplemented
  // Linux knobs it must degrade to a logged warning — CPU isolation still
  // comes up, and the kill switch still restores defaults.
  {
    LinuxPlatform platform;
    PerfIsoConfig config = BlindConfig(std::min(8, platform.NumCores() - 1));
    config.egress_rate_cap_bps = 50e6;
    PerfIsoController controller(&platform, config);
    EXPECT_TRUE(controller.Initialize().ok());
  }
  {
    Simulator sim;
    MachineSpec spec;
    SimMachine machine(&sim, spec, "m0");
    NoEgressPlatform platform(&machine, nullptr);
    JobId secondary = machine.CreateJob("secondary");
    platform.AddSecondaryJob(secondary);
    PerfIsoConfig config = BlindConfig(8);
    config.egress_rate_cap_bps = 50e6;
    PerfIsoController controller(&platform, config);
    ASSERT_TRUE(controller.Initialize().ok());
    // The kill switch must also survive the unimplemented egress-cap clear.
    EXPECT_TRUE(controller.SetActive(false).ok());
  }
}

TEST(PerfIsoControllerTest, SecondarySuspendedWhenPrimaryNeedsEverything) {
  Rig rig;
  auto controller = rig.MakeController(BlindConfig(8));
  ASSERT_TRUE(controller.Initialize().ok());
  controller.AttachToSimulator(&rig.sim);
  // Saturate the machine with primary work.
  for (int i = 0; i < 48; ++i) {
    rig.machine->SpawnThread("p", TenantClass::kPrimary, JobId{}, 2 * kSecond, nullptr);
  }
  rig.sim.RunUntil(kSecond);
  EXPECT_EQ(controller.secondary_cores(), 0);
  EXPECT_TRUE(*rig.machine->JobSuspended(rig.secondary));
  // Primary work ends; the secondary resumes.
  rig.sim.RunUntil(4 * kSecond);
  EXPECT_FALSE(*rig.machine->JobSuspended(rig.secondary));
  EXPECT_EQ(controller.secondary_cores(), 40);
}

}  // namespace
}  // namespace perfiso
