#include "src/indexserve/index_server.h"

#include <gtest/gtest.h>

#include "src/cluster/index_node.h"
#include "src/sim/simulator.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

QueryWork MakeQuery(uint64_t id, int fanout = 5, double size = 1.0, uint64_t seed = 99) {
  QueryWork work;
  work.id = id;
  work.fanout = fanout;
  work.size_factor = size;
  work.seed = seed;
  return work;
}

TEST(IndexServerTest, SingleQueryCompletes) {
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  QueryResult result;
  bool done = false;
  rig.server().SubmitQuery(MakeQuery(1), [&](const QueryResult& r) {
    result = r;
    done = true;
  });
  sim.RunUntil(kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.dropped);
  EXPECT_GT(result.latency_ms, 0.5);
  EXPECT_LT(result.latency_ms, 50);
  EXPECT_EQ(rig.server().stats().completed, 1);
  EXPECT_EQ(rig.server().stats().latency_ms.Count(), 1u);
}

TEST(IndexServerTest, FanoutCreatesReadyBurst) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.hedging_enabled = false;
  IndexNodeRig rig(&sim, options, "m0");
  rig.server().SubmitQuery(MakeQuery(1, /*fanout=*/15));
  sim.RunUntil(kSecond);
  // The fan-out spawns all chunk workers within the same instant — at least
  // `fanout` threads ready within 5 us (the paper's measurement, §1).
  EXPECT_GE(rig.machine().metrics().max_ready_burst_5us, 15);
}

TEST(IndexServerTest, QueryExceedingTimeoutIsDropped) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.timeout = FromMicros(100);  // absurdly tight
  IndexNodeRig rig(&sim, options, "m0");
  QueryResult result;
  rig.server().SubmitQuery(MakeQuery(1), [&](const QueryResult& r) { result = r; });
  sim.RunUntil(kSecond);
  EXPECT_TRUE(result.dropped);
  EXPECT_EQ(rig.server().stats().dropped_timeout, 1);
  EXPECT_EQ(rig.server().stats().latency_ms.Count(), 0u);  // excluded from stats
}

TEST(IndexServerTest, AdmissionControlRejectsWhenSaturated) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.max_inflight = 1;
  IndexNodeRig rig(&sim, options, "m0");
  int drops = 0;
  for (int i = 0; i < 3; ++i) {
    rig.server().SubmitQuery(MakeQuery(static_cast<uint64_t>(i)),
                             [&](const QueryResult& r) { drops += r.dropped ? 1 : 0; });
  }
  sim.RunUntil(kSecond);
  EXPECT_EQ(rig.server().stats().dropped_admission, 2);
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(rig.server().stats().completed, 1);
}

TEST(IndexServerTest, HedgingFiresForSlowChunks) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.chunk_cpu_median_us = 5000;  // slow lookups
  options.indexserve.hedge_delay = FromMillis(1);
  IndexNodeRig rig(&sim, options, "m0");
  for (int i = 0; i < 20; ++i) {
    rig.server().SubmitQuery(MakeQuery(static_cast<uint64_t>(i), 5, 1.0, 1000 + i));
  }
  sim.RunUntil(kSecond);
  EXPECT_GT(rig.server().stats().hedges_issued, 0);
  EXPECT_EQ(rig.server().stats().completed, 20);
}

TEST(IndexServerTest, HedgingDisabledIssuesNone) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.chunk_cpu_median_us = 5000;
  options.indexserve.hedge_delay = FromMillis(1);
  options.indexserve.hedging_enabled = false;
  IndexNodeRig rig(&sim, options, "m0");
  for (int i = 0; i < 20; ++i) {
    rig.server().SubmitQuery(MakeQuery(static_cast<uint64_t>(i), 5, 1.0, 1000 + i));
  }
  sim.RunUntil(kSecond);
  EXPECT_EQ(rig.server().stats().hedges_issued, 0);
}

TEST(IndexServerTest, DeterministicAcrossRuns) {
  // The same trace must produce bit-identical results (replay semantics);
  // a different trace seed must not.
  auto run = [](uint64_t trace_seed) {
    Simulator sim;
    IndexNodeOptions options;
    IndexNodeRig rig(&sim, options, "m0");
    Rng trace_rng(trace_seed);
    auto trace = GenerateTrace(TraceSpec{}, 200, &trace_rng);
    OpenLoopClient client(&sim, trace, 2000, Rng(5),
                          [&](const QueryWork& q, SimTime) { rig.server().SubmitQuery(q); });
    client.Run(0, kSecond);
    sim.RunUntil(2 * kSecond);
    return rig.server().stats().latency_ms.Mean();
  };
  EXPECT_DOUBLE_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(IndexServerTest, LogBackpressureStallsCompletions) {
  Simulator sim;
  IndexNodeOptions options;
  options.hdd_drives = 1;
  options.indexserve.log_bytes_per_query = 64 * 1024;
  options.indexserve.log_flush_bytes = 64 * 1024;
  options.indexserve.log_buffer_cap_bytes = 128 * 1024;
  IndexNodeRig rig(&sim, options, "m0");
  // Saturate the lone HDD with bully traffic at equal priority.
  rig.hdd_scheduler().RegisterOwner(kIoOwnerDiskBully, "bully", /*priority=*/0, /*weight=*/50);
  DiskBully::Options bully_options;
  bully_options.queue_depth = 16;
  bully_options.block_bytes = 1024 * 1024;
  DiskBully bully(&sim, &rig.machine(), &rig.hdd_scheduler(), rig.secondary_job(),
                  bully_options, Rng(3));
  bully.Start();
  for (int i = 0; i < 200; ++i) {
    rig.server().SubmitQuery(MakeQuery(static_cast<uint64_t>(i), 5, 1.0, 5000 + i));
  }
  sim.RunUntil(5 * kSecond);
  EXPECT_GT(rig.server().stats().log_stalls, 0);
}

// --- Calibration against the paper's standalone baseline (§6.1.1) -----------
//
// Targets: median ~4 ms and P99 ~12 ms at both 2,000 and 4,000 QPS; CPU idle
// ~80% at 2,000 QPS and ~60% at 4,000 QPS.
struct CalibrationResult {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double idle = 0;
  double primary_util = 0;
  int64_t dropped = 0;
};

CalibrationResult RunStandalone(double qps, SimDuration measure = 6 * kSecond) {
  Simulator sim;
  IndexNodeOptions options;
  options.seed = 77;
  IndexNodeRig rig(&sim, options, "m0");
  Rng trace_rng(2017);
  auto trace = GenerateTrace(TraceSpec{}, 20000, &trace_rng);
  OpenLoopClient client(&sim, trace, qps, Rng(7),
                        [&](const QueryWork& q, SimTime) { rig.server().SubmitQuery(q); });
  const SimDuration warmup = kSecond;
  client.Run(0, warmup + measure);
  sim.RunUntil(warmup);
  rig.server().ResetStats();
  const auto snap = rig.SnapshotUtilization();
  sim.RunUntil(warmup + measure);
  CalibrationResult result;
  result.p50 = rig.server().stats().latency_ms.P50();
  result.p95 = rig.server().stats().latency_ms.P95();
  result.p99 = rig.server().stats().latency_ms.P99();
  result.idle = rig.IdleFractionSince(snap);
  result.primary_util = rig.UtilizationSince(snap, TenantClass::kPrimary);
  result.dropped = rig.server().stats().TotalDropped();
  return result;
}

// Lifetime regression for the QueryState shared_ptr cycle: a callback stored
// inside the state that captures the state's own shared_ptr (as the old
// "snippet chain" did) keeps every query alive forever. The live-state counter
// decrements in ~QueryState, so any such cycle shows up as a nonzero count
// after the simulator drains.
TEST(IndexServerTest, AllQueryStateDestroyedAfterDrain) {
  Simulator sim;
  IndexNodeOptions options;  // defaults: snippet reads on, hedging on, HDD log on
  IndexNodeRig rig(&sim, options, "m0");
  ASSERT_GT(rig.server().config().snippet_reads, 0);
  for (int i = 0; i < 200; ++i) {
    rig.server().SubmitQuery(MakeQuery(static_cast<uint64_t>(i)));
  }
  EXPECT_GT(rig.server().live_query_states(), 0);
  sim.RunUntilEmpty();
  EXPECT_EQ(rig.server().stats().completed + rig.server().stats().TotalDropped(), 200);
  EXPECT_EQ(rig.server().inflight(), 0);
  EXPECT_EQ(rig.server().live_query_states(), 0);
}

// Same invariant on the expiry path: queries abandoned mid-pipeline (including
// with snippet reads already in flight) must also release all state.
TEST(IndexServerTest, ExpiredQueryStateDestroyedAfterDrain) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.timeout = FromMillis(2);  // expires mid-pipeline
  IndexNodeRig rig(&sim, options, "m0");
  for (int i = 0; i < 200; ++i) {
    rig.server().SubmitQuery(MakeQuery(static_cast<uint64_t>(i)));
  }
  sim.RunUntilEmpty();
  EXPECT_GT(rig.server().stats().dropped_timeout, 0);
  EXPECT_EQ(rig.server().live_query_states(), 0);
}

TEST(IndexServeCalibration, StandaloneAt2000Qps) {
  const CalibrationResult r = RunStandalone(2000);
  ::testing::Test::RecordProperty("p50", r.p50);
  std::printf("[calibration 2000qps] p50=%.2fms p95=%.2fms p99=%.2fms idle=%.1f%% "
              "primary=%.1f%% dropped=%lld\n",
              r.p50, r.p95, r.p99, r.idle * 100, r.primary_util * 100,
              static_cast<long long>(r.dropped));
  EXPECT_GE(r.p50, 3.0);
  EXPECT_LE(r.p50, 5.0);
  EXPECT_GE(r.p99, 9.0);
  EXPECT_LE(r.p99, 15.0);
  EXPECT_GE(r.idle, 0.74);
  EXPECT_LE(r.idle, 0.86);
  EXPECT_EQ(r.dropped, 0);
}

TEST(IndexServeCalibration, StandaloneAt4000Qps) {
  const CalibrationResult r = RunStandalone(4000);
  std::printf("[calibration 4000qps] p50=%.2fms p95=%.2fms p99=%.2fms idle=%.1f%% "
              "primary=%.1f%% dropped=%lld\n",
              r.p50, r.p95, r.p99, r.idle * 100, r.primary_util * 100,
              static_cast<long long>(r.dropped));
  EXPECT_GE(r.p50, 3.0);
  EXPECT_LE(r.p50, 5.5);
  EXPECT_GE(r.p99, 9.0);
  EXPECT_LE(r.p99, 16.0);
  EXPECT_GE(r.idle, 0.52);
  EXPECT_LE(r.idle, 0.70);
  EXPECT_EQ(r.dropped, 0);
}

}  // namespace
}  // namespace perfiso
