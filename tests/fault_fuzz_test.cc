// Seeded fault-scenario fuzz smoke: random (but replayable) FaultPlans run
// against registry scenarios, with the full InvariantChecker asserted after
// every run. A failure prints the serialized ScenarioSpec — paste it back
// through ScenarioSpec::FromConfigMap to replay the exact run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariant_checker.h"
#include "src/sim/simulator.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

// Shrinks a registry spec to fuzz size: short window, small trace.
ScenarioSpec FuzzSized(ScenarioSpec spec) {
  spec.measure = 2 * kSecond;
  spec.trace_count = 4000;
  return spec;
}

// One fuzz iteration: arm `plan` on the spec's single-box rig, drive the
// spec's client over warmup+measure, keep simulating through the recovery
// tail, then assert every invariant. Returns the failure report ("" if ok).
std::string RunSingleBoxFuzz(ScenarioSpec spec, const FaultPlan& plan) {
  spec.fault = plan;
  const Status valid = spec.Validate();
  if (!valid.ok()) {
    return "sampled spec failed Validate(): " + valid.ToString();
  }
  const std::string replay = spec.ToConfigMap().Serialize();

  Simulator sim;
  const std::unique_ptr<IndexNodeRig> rig = bench::MakeSingleBoxRig(&sim, spec);
  FaultInjector injector(&sim, spec.fault, rig.get());
  injector.Arm();

  Rng trace_rng(spec.trace_seed);
  auto trace = GenerateTrace(TraceSpec{}, spec.trace_count, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), spec.load, Rng(spec.client_seed),
                        [&rig](const QueryWork& work, SimTime) {
                          rig->server().SubmitQuery(work);
                        });
  const SimDuration horizon = spec.warmup + spec.measure;
  client.Run(0, horizon);
  // Run past the horizon so recovery events land; bully loop threads keep the
  // event queue alive forever, so this cannot be RunUntilEmpty.
  sim.RunUntil(horizon + 2 * kSecond);

  InvariantReport report;
  InvariantChecker::CheckRig(*rig, /*expect_drained=*/false, &report);
  if (report.ok()) {
    return "";
  }
  return report.ToString() + "\nreplay this run with the scenario:\n" + replay;
}

TEST(FaultFuzzTest, RandomPlansHoldInvariantsOnRegistryScenarios) {
  const char* const kScenarios[] = {"standalone", "flash-crowd-blind"};
  for (const char* name : kScenarios) {
    const ScenarioSpec base = FuzzSized(bench::MustFindScenario(name));
    const double horizon_sec = ToSeconds(base.warmup + base.measure);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      const FaultPlan plan = FaultPlan::Sample(seed, /*num_nodes=*/1, horizon_sec);
      const std::string failure = RunSingleBoxFuzz(base, plan);
      EXPECT_TRUE(failure.empty())
          << "scenario " << name << ", fault seed " << seed << ":\n" << failure;
    }
  }
}

TEST(FaultFuzzTest, RandomPlansHoldInvariantsOnCluster) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Simulator sim;
    ClusterOptions options;
    options.topology = ClusterTopology{2, 2, 1};
    Cluster cluster(&sim, options);
    const FaultPlan plan = FaultPlan::Sample(seed, cluster.NumIndexNodes(),
                                             /*horizon_sec=*/2.0);
    FaultInjector injector(&sim, plan, &cluster);
    injector.Arm();

    Rng trace_rng(2017);
    auto trace = GenerateTrace(TraceSpec{}, 4000, &trace_rng);
    OpenLoopClient client(&sim, std::move(trace), /*qps=*/2000, Rng(7),
                          [&cluster](const QueryWork& work, SimTime) {
                            cluster.SubmitQuery(work);
                          });
    client.Run(0, 2 * kSecond);
    sim.RunUntil(4 * kSecond);

    InvariantReport report;
    InvariantChecker::CheckCluster(cluster, /*expect_drained=*/false, &report);
    ConfigMap replay;
    plan.AppendToConfigMap(&replay);
    EXPECT_TRUE(report.ok()) << "fault seed " << seed << ":\n" << report.ToString()
                             << "\nreplay plan:\n" << replay.Serialize();
  }
}

}  // namespace
}  // namespace perfiso
