// Partition-determinism contract of the time-windowed PDES cluster runner
// (bench::RunClusterScenario, DESIGN.md §10): a partitioned run's result is a
// pure function of (scenario, partition count) — the worker thread count is
// an execution detail. Every latency-recorder digest, query counter, and the
// total event count must be bit-identical whether the lockstep windows run on
// 1 thread or 8. Scenarios the partitioned engine does not support (fault
// plans) must fall back to a sequential run that matches a plain
// sim_partitions = 0 run exactly.
//
// Cross-partition cancel/reschedule of mailbox-delivered handles is pinned
// separately, under SimSan engine validation, in tests/sim_parallel_test.cc.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/sim/simulator.h"
#include "src/workload/scenario.h"

namespace perfiso {
namespace {

using bench::ClusterRunResult;
using bench::MustFindScenario;
using bench::RunClusterScenario;

// Restores an environment variable on scope exit, so a mid-test ASSERT
// cannot leak a pinned value into later tests in the binary (and a caller's
// own setting survives the test).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    old_value_ = had_old_ ? old : "";
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_value_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_value_;
};

// Shrinks a registry spec to a small cluster the test can run four times
// over: 6 rows x 2 columns plus 2 TLAs, a short window, and a partition
// count that actually exercises the row round-robin (rows > partitions - 1).
ScenarioSpec SmallCluster(ScenarioSpec spec, int partitions) {
  spec.topology.columns = 2;
  spec.topology.rows = 6;
  spec.topology.tla_machines = 2;
  spec.sim_partitions = partitions;
  spec.warmup = kSecond / 2;
  spec.measure = kSecond;  // ScaleScenarioForBench floors here at scale 1
  spec.trace_count = 4000;
  return spec;
}

// Exact equality across the board: integer-time simulation, so a rerun that
// differs in any bit is a determinism bug, not noise.
void ExpectIdentical(const ClusterRunResult& a, const ClusterRunResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.leaf_digest, b.leaf_digest) << what;
  EXPECT_EQ(a.mla_digest, b.mla_digest) << what;
  EXPECT_EQ(a.tla_digest, b.tla_digest) << what;
  EXPECT_EQ(a.flow_digest, b.flow_digest) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.failed, b.failed) << what;
  EXPECT_EQ(a.degraded, b.degraded) << what;
  EXPECT_EQ(a.tla_p99_ms, b.tla_p99_ms) << what;
  EXPECT_EQ(a.tla_mean_ms, b.tla_mean_ms) << what;
  EXPECT_EQ(a.mean_busy, b.mean_busy) << what;
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
  EXPECT_EQ(a.partitions_used, b.partitions_used) << what;
}

// Runs `spec` once per thread count and checks every run against the first.
void ExpectThreadCountInvariant(const ScenarioSpec& spec) {
  const std::vector<const char*> thread_counts = {"1", "2", "4", "8"};
  ClusterRunResult baseline;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const ScopedEnv threads_guard("PERFISO_SIM_THREADS", thread_counts[i]);
    const ClusterRunResult result = RunClusterScenario(spec);
    EXPECT_FALSE(result.fell_back_sequential) << spec.name;
    EXPECT_EQ(result.partitions_used, spec.sim_partitions) << spec.name;
    ASSERT_GT(result.completed, 0) << spec.name << " completed no queries";
    if (i == 0) {
      baseline = result;
    } else {
      ExpectIdentical(baseline, result,
                      spec.name + " threads=" + thread_counts[i] + " vs 1");
    }
  }
}

TEST(ClusterPartitionDeterminismTest, ConstantLoadDigestsMatchAcrossThreadCounts) {
  // fig02-style steady state: constant load, blind isolation.
  ExpectThreadCountInvariant(SmallCluster(MustFindScenario("blind-high"), 4));
}

TEST(ClusterPartitionDeterminismTest, DiurnalDigestsMatchAcrossThreadCounts) {
  // fig09/fig10-style shaped load over a whole (compressed) day.
  ExpectThreadCountInvariant(SmallCluster(MustFindScenario("diurnal-blind"), 4));
}

TEST(ClusterPartitionDeterminismTest, FlashCrowdDigestsMatchAcrossThreadCounts) {
  ExpectThreadCountInvariant(
      SmallCluster(MustFindScenario("flash-crowd-no-isolation"), 3));
}

TEST(ClusterPartitionDeterminismTest, PartitionedRerunIsBitIdentical) {
  const ScopedEnv threads_guard("PERFISO_SIM_THREADS", "4");
  const ScenarioSpec spec = SmallCluster(MustFindScenario("blind-high"), 4);
  const ClusterRunResult first = RunClusterScenario(spec);
  const ClusterRunResult second = RunClusterScenario(spec);
  ExpectIdentical(first, second, "partitioned rerun");
}

TEST(ClusterPartitionDeterminismTest, PartitionsClampToRowsPlusOne) {
  // 6 rows can use at most 7 partitions; asking for more must not break
  // determinism or leave idle shards unaccounted.
  const ScopedEnv threads_guard("PERFISO_SIM_THREADS", "4");
  const ScenarioSpec spec = SmallCluster(MustFindScenario("blind-high"), 16);
  const ClusterRunResult result = RunClusterScenario(spec);
  EXPECT_EQ(result.partitions_used, 7);
  EXPECT_GT(result.completed, 0);
}

TEST(ClusterPartitionDeterminismTest, FaultPlanFallsBackToSequentialRun) {
  // The partitioned engine does not support fault injection; a fault-plan
  // registry scenario must fall back — and the fallback must be bit-identical
  // to an explicitly sequential (sim_partitions = 0) run of the same spec.
  const ScopedEnv threads_guard("PERFISO_SIM_THREADS", "4");
  ScenarioSpec partitioned = SmallCluster(MustFindScenario("fault-crash-restart"), 4);
  const ClusterRunResult fallback = RunClusterScenario(partitioned);
  EXPECT_TRUE(fallback.fell_back_sequential);
  EXPECT_EQ(fallback.partitions_used, 1);
  EXPECT_EQ(fallback.threads_used, 1);

  ScenarioSpec sequential = partitioned;
  sequential.sim_partitions = 0;
  const ClusterRunResult plain = RunClusterScenario(sequential);
  EXPECT_FALSE(plain.fell_back_sequential);
  ExpectIdentical(fallback, plain, "fault fallback vs explicit sequential");
  EXPECT_EQ(fallback.faults_injected, plain.faults_injected);
}

TEST(ClusterPartitionDeterminismTest, SequentialPathIgnoresThreadEnv) {
  // sim_partitions = 0 never consults PERFISO_SIM_THREADS: the sequential
  // digests are the pre-partitioning goldens and must not move.
  ScenarioSpec spec = SmallCluster(MustFindScenario("blind-high"), 0);
  ClusterRunResult with_env;
  {
    const ScopedEnv threads_guard("PERFISO_SIM_THREADS", "8");
    with_env = RunClusterScenario(spec);
  }
  const ScopedEnv threads_guard("PERFISO_SIM_THREADS", "1");
  const ClusterRunResult without = RunClusterScenario(spec);
  EXPECT_EQ(with_env.threads_used, 1);
  ExpectIdentical(with_env, without, "sequential vs PERFISO_SIM_THREADS");
}

}  // namespace
}  // namespace perfiso
