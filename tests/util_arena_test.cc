#include "src/util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace perfiso {
namespace {

TEST(SlabArenaTest, RecyclesBlocksOfTheSameSizeClass) {
  SlabArena arena(/*blocks_per_slab=*/4);
  void* a = arena.Alloc(48, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.stats().slab_allocs, 1u);
  arena.Free(a, 48, 8);
  void* b = arena.Alloc(48, 8);
  EXPECT_EQ(b, a);  // LIFO free list hands the same block back
  EXPECT_EQ(arena.stats().slab_allocs, 1u);
  EXPECT_EQ(arena.stats().block_reuses, 1u);
  arena.Free(b, 48, 8);
}

TEST(SlabArenaTest, SlabGrowthIsAmortized) {
  SlabArena arena(/*blocks_per_slab=*/8);
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(arena.Alloc(32, 8));
  }
  EXPECT_EQ(arena.stats().slab_allocs, 1u);  // one slab covers all eight
  blocks.push_back(arena.Alloc(32, 8));
  EXPECT_EQ(arena.stats().slab_allocs, 2u);  // ninth block forces growth
  for (void* p : blocks) {
    arena.Free(p, 32, 8);
  }
  // The warmed-up arena never touches the heap again for this shape.
  for (int i = 0; i < 64; ++i) {
    void* p = arena.Alloc(32, 8);
    arena.Free(p, 32, 8);
  }
  EXPECT_EQ(arena.stats().slab_allocs, 2u);
}

TEST(SlabArenaTest, DistinctSizeClassesDoNotAlias) {
  SlabArena arena(/*blocks_per_slab=*/2);
  void* small = arena.Alloc(16, 8);
  void* large = arena.Alloc(200, 8);
  EXPECT_NE(small, large);
  arena.Free(small, 16, 8);
  // A large request must not be served from the small bucket's free list.
  void* large2 = arena.Alloc(200, 8);
  EXPECT_NE(large2, small);
  arena.Free(large, 200, 8);
  arena.Free(large2, 200, 8);
}

TEST(SlabArenaTest, BlocksSatisfyFundamentalAlignment) {
  SlabArena arena;
  for (size_t bytes : {1u, 7u, 24u, 100u}) {
    void* p = arena.Alloc(bytes, alignof(std::max_align_t));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
    arena.Free(p, bytes, alignof(std::max_align_t));
  }
}

TEST(SlabArenaTest, OversizeRequestsFallBackToTheHeap) {
  SlabArena arena;
  void* huge = arena.Alloc(1 << 20, 8);  // > kMaxBlockBytes
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(arena.stats().oversize_allocs, 1u);
  EXPECT_EQ(arena.stats().slab_allocs, 0u);
  arena.Free(huge, 1 << 20, 8);
  // Over-aligned requests take the same path.
  void* aligned = arena.Alloc(64, 2 * alignof(std::max_align_t));
  ASSERT_NE(aligned, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(aligned) % (2 * alignof(std::max_align_t)), 0u);
  EXPECT_EQ(arena.stats().oversize_allocs, 2u);
  arena.Free(aligned, 64, 2 * alignof(std::max_align_t));
}

TEST(SlabArenaTest, UnfreedOversizeBlocksAreReleasedByTheDestructor) {
  // Covered by ASan: the arena owns the oversize block and must delete it.
  SlabArena arena;
  (void)arena.Alloc(1 << 20, 8);
}

struct Tracked {
  explicit Tracked(int* live) : live_counter(live) { ++*live_counter; }
  ~Tracked() { --*live_counter; }
  int* live_counter;
  uint64_t payload[4] = {};
};

TEST(ArenaAllocatorTest, AllocateSharedPlacesObjectAndControlBlockInOneBlock) {
  auto arena = std::make_shared<SlabArena>();
  int live = 0;
  {
    auto obj = std::allocate_shared<Tracked>(ArenaAllocator<Tracked>(arena), &live);
    EXPECT_EQ(live, 1);
    // One combined allocation: the arena saw exactly one block request.
    EXPECT_EQ(arena->stats().slab_allocs + arena->stats().oversize_allocs, 1u);
  }
  EXPECT_EQ(live, 0);
  // The block came back: the next same-shape object reuses it.
  auto obj2 = std::allocate_shared<Tracked>(ArenaAllocator<Tracked>(arena), &live);
  EXPECT_GE(arena->stats().block_reuses, 1u);
}

TEST(ArenaAllocatorTest, ObjectKeepsArenaAliveAfterOwnerDropsIt) {
  // The control block stores a copy of the allocator (which holds the arena
  // by shared_ptr), so releasing the test's reference must not free the
  // arena while the object is alive — the regression shape is a query
  // completion delivered after its server died.
  int live = 0;
  std::shared_ptr<Tracked> survivor;
  {
    auto arena = std::make_shared<SlabArena>();
    survivor = std::allocate_shared<Tracked>(ArenaAllocator<Tracked>(arena), &live);
  }
  EXPECT_EQ(live, 1);
  EXPECT_EQ(survivor->payload[0], 0u);  // block is still valid memory
  survivor.reset();                     // destroys the object, then the arena
  EXPECT_EQ(live, 0);
}

TEST(ArenaAllocatorTest, ComparesEqualOnlyForTheSameArena) {
  auto a = std::make_shared<SlabArena>();
  auto b = std::make_shared<SlabArena>();
  EXPECT_TRUE(ArenaAllocator<int>(a) == ArenaAllocator<long>(a));
  EXPECT_TRUE(ArenaAllocator<int>(a) != ArenaAllocator<int>(b));
}

TEST(VectorPoolTest, ReusesCarcassesAndKeepsCapacity) {
  VectorPool<int> pool;
  std::vector<int> v = pool.Get(100);
  EXPECT_EQ(v.size(), 100u);
  const size_t cap = v.capacity();
  v[99] = 7;
  pool.Put(std::move(v));
  std::vector<int> w = pool.Get(10);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_GE(w.capacity(), cap);  // the parked carcass kept its heap buffer
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.stats().fresh, 1u);
}

TEST(VectorPoolTest, GetClearsRecycledContents) {
  VectorPool<int> pool;
  std::vector<int> v = pool.Get(4);
  v.assign({1, 2, 3, 4});
  pool.Put(std::move(v));
  std::vector<int> w = pool.Get(4);
  EXPECT_EQ(w, std::vector<int>({0, 0, 0, 0}));  // value-initialized, not stale
}

}  // namespace
}  // namespace perfiso
