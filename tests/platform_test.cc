#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "src/platform/linux_platform.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/workload/bullies.h"

namespace perfiso {
namespace {

// --- SimPlatform ---------------------------------------------------------------

struct SimRig {
  Simulator sim;
  MachineSpec spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimPlatform> platform;
  JobId job;

  SimRig() {
    spec.num_cores = 8;
    spec.context_switch = 0;
    machine = std::make_unique<SimMachine>(&sim, spec, "m0");
    platform = std::make_unique<SimPlatform>(machine.get(), nullptr);
    job = machine->CreateJob("secondary");
    platform->AddSecondaryJob(job);
  }
};

TEST(SimPlatformTest, IdleCoresReflectsMachine) {
  SimRig rig;
  EXPECT_EQ(rig.platform->IdleCores().Count(), 8);
  rig.machine->SpawnLoopThread("hog", TenantClass::kSecondary, rig.job);
  rig.sim.RunUntil(kMillisecond);
  EXPECT_EQ(rig.platform->IdleCores().Count(), 7);
}

TEST(SimPlatformTest, EmptyAffinitySuspendsSecondary) {
  SimRig rig;
  CpuBully bully(rig.machine.get(), rig.job, 4);
  rig.sim.RunUntil(kMillisecond);
  ASSERT_EQ(rig.platform->IdleCores().Count(), 4);
  ASSERT_TRUE(rig.platform->SetSecondaryAffinity(CpuSet()).ok());
  EXPECT_EQ(rig.platform->IdleCores().Count(), 8);
  EXPECT_TRUE(*rig.machine->JobSuspended(rig.job));
  // A non-empty mask resumes.
  ASSERT_TRUE(rig.platform->SetSecondaryAffinity(CpuSet::FirstN(2)).ok());
  EXPECT_FALSE(*rig.machine->JobSuspended(rig.job));
  rig.sim.RunUntil(2 * kMillisecond);
  EXPECT_EQ(rig.platform->IdleCores().Count(), 6);
}

TEST(SimPlatformTest, AffinityAppliesToAllSecondaryJobs) {
  SimRig rig;
  const JobId job2 = rig.machine->CreateJob("secondary2");
  rig.platform->AddSecondaryJob(job2);
  rig.machine->SpawnLoopThread("a", TenantClass::kSecondary, rig.job);
  rig.machine->SpawnLoopThread("b", TenantClass::kSecondary, job2);
  ASSERT_TRUE(rig.platform->SetSecondaryAffinity(CpuSet::Single(7)).ok());
  EXPECT_EQ(*rig.machine->JobAffinity(rig.job), CpuSet::Single(7));
  EXPECT_EQ(*rig.machine->JobAffinity(job2), CpuSet::Single(7));
}

TEST(SimPlatformTest, KillSecondaryRemovesThreads) {
  SimRig rig;
  CpuBully bully(rig.machine.get(), rig.job, 4);
  rig.sim.RunUntil(kMillisecond);
  ASSERT_TRUE(rig.platform->KillSecondary().ok());
  EXPECT_EQ(*rig.machine->JobLiveThreads(rig.job), 0);
}

TEST(SimPlatformTest, IoKnobsUnavailableWithoutScheduler) {
  SimRig rig;
  EXPECT_EQ(rig.platform->SetIoPriority(1, 0).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(rig.platform->IoOpsCompleted(1).status().code(), StatusCode::kUnimplemented);
}

TEST(SimPlatformTest, EgressBucketInstalledAndCleared) {
  SimRig rig;
  EXPECT_EQ(rig.platform->egress_bucket(), nullptr);
  ASSERT_TRUE(rig.platform->SetEgressRateCap(1e6).ok());
  ASSERT_NE(rig.platform->egress_bucket(), nullptr);
  EXPECT_DOUBLE_EQ(rig.platform->egress_bucket()->rate_per_sec(), 1e6);
  ASSERT_TRUE(rig.platform->SetEgressRateCap(0).ok());
  EXPECT_EQ(rig.platform->egress_bucket(), nullptr);
}

// --- LinuxPlatform ---------------------------------------------------------------

TEST(LinuxPlatformTest, ParseProcStatExtractsPerCpuLines) {
  const std::string text =
      "cpu  100 0 50 800 20 0 5 0 0 0\n"
      "cpu0 60 0 30 400 10 0 3 0 0 0\n"
      "cpu1 40 0 20 400 10 0 2 0 0 0\n"
      "intr 12345\n";
  auto samples = LinuxPlatform::ParseProcStat(text);
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 2u);
  EXPECT_EQ((*samples)[0].idle, 410);  // idle + iowait
  EXPECT_EQ((*samples)[0].total, 503);
  EXPECT_EQ((*samples)[1].idle, 410);
}

TEST(LinuxPlatformTest, ParseProcStatRejectsGarbage) {
  EXPECT_FALSE(LinuxPlatform::ParseProcStat("nonsense\n").ok());
}

TEST(LinuxPlatformTest, IdleFromSamplesThreshold) {
  using Sample = LinuxPlatform::CpuSample;
  const std::vector<Sample> prev = {{1000, 2000}, {1000, 2000}, {1000, 2000}};
  // cpu0: fully idle since; cpu1: 50% idle; cpu2: no time elapsed.
  const std::vector<Sample> curr = {{1100, 2100}, {1050, 2100}, {1000, 2000}};
  const CpuSet idle = LinuxPlatform::IdleFromSamples(prev, curr, 0.9);
  EXPECT_TRUE(idle.Test(0));
  EXPECT_FALSE(idle.Test(1));
  EXPECT_TRUE(idle.Test(2));  // quiescent CPU counts as idle
}

TEST(LinuxPlatformTest, ReadsRealProcStat) {
  LinuxPlatform platform;
  // First call has no baseline: everything reports idle.
  const CpuSet first = platform.IdleCores();
  EXPECT_EQ(first.Count(), platform.NumCores());
  // Second call is delta-based and must not exceed the core count.
  const CpuSet second = platform.IdleCores();
  EXPECT_LE(second.Count(), platform.NumCores());
}

TEST(LinuxPlatformTest, NumCoresAndMemoryPositive) {
  LinuxPlatform platform;
  EXPECT_GE(platform.NumCores(), 1);
  auto memory = platform.FreeMemoryBytes();
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  EXPECT_GT(*memory, 0);
}

TEST(LinuxPlatformTest, MonotonicClockAdvances) {
  LinuxPlatform platform;
  const SimTime a = platform.NowNs();
  const SimTime b = platform.NowNs();
  EXPECT_GE(b, a);
}

TEST(LinuxPlatformTest, AffinityAppliedToChildProcess) {
  // Spawn a sleeping child, restrict it to CPU 0 via the platform, and
  // verify with sched_getaffinity. This is the real syscall path the paper's
  // repro hint calls out.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::sleep(30);
    ::_exit(0);
  }
  LinuxPlatform platform;
  platform.AddSecondaryPid(child);
  const Status status = platform.SetSecondaryAffinity(CpuSet::Single(0));
  EXPECT_TRUE(status.ok()) << status.ToString();
  cpu_set_t mask;
  CPU_ZERO(&mask);
  ASSERT_EQ(sched_getaffinity(child, sizeof(mask), &mask), 0);
  EXPECT_TRUE(CPU_ISSET(0, &mask));
  EXPECT_EQ(CPU_COUNT(&mask), 1);
  // Suspend (empty mask) and resume.
  EXPECT_TRUE(platform.SetSecondaryAffinity(CpuSet()).ok());
  EXPECT_TRUE(platform.SetSecondaryAffinity(CpuSet::Single(0)).ok());
  // Kill and reap.
  EXPECT_TRUE(platform.KillSecondary().ok());
  int wait_status = 0;
  EXPECT_EQ(::waitpid(child, &wait_status, 0), child);
  EXPECT_TRUE(WIFSIGNALED(wait_status));
}

TEST(LinuxPlatformTest, UnsupportedKnobsReportUnimplemented) {
  LinuxPlatform platform;
  EXPECT_EQ(platform.SetIoPriority(1, 0).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(platform.SetIoIopsCap(1, 10).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(platform.SetIoBandwidthCap(1, 10).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(platform.SetEgressRateCap(10).code(), StatusCode::kUnimplemented);
}

TEST(LinuxPlatformTest, CpuRateCapWithoutCgroupIsUnavailable) {
  LinuxPlatform platform;
  EXPECT_EQ(platform.SetSecondaryCpuRateCap(0.5).code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace perfiso
