#include "src/util/rng.h"

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace perfiso {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(13);
  MeanVar mv;
  for (int i = 0; i < 200000; ++i) {
    mv.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(mv.Mean(), 4.0, 0.05);
}

TEST(RngTest, NormalMeanAndStdDevConverge) {
  Rng rng(17);
  MeanVar mv;
  for (int i = 0; i < 200000; ++i) {
    mv.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(mv.Mean(), 10.0, 0.05);
  EXPECT_NEAR(mv.StdDev(), 2.0, 0.05);
}

TEST(RngTest, LogNormalMedianIsExpMu) {
  Rng rng(19);
  LatencyRecorder rec;
  for (int i = 0; i < 100000; ++i) {
    rec.Add(rng.LogNormal(1.0, 0.5));
  }
  EXPECT_NEAR(rec.P50(), std::exp(1.0), 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ParetoBoundedBelowByScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace perfiso
