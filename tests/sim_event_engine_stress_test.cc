// Randomized stress for the pooled event engine: interleaves Schedule /
// Cancel / Reschedule / Step against a trivially correct reference model (a
// sorted (time, seq) map) and checks that firing order, pending counts, and
// handle staleness agree exactly. A second battery churns a SimMachine on top
// of the engine and asserts CheckInvariants() throughout — the machine is the
// engine's most demanding consumer (slice preemption cancels, rate-cap
// reschedules).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {
namespace {

class EngineVsReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineVsReferenceTest, RandomOpsMatchReferenceModel) {
  Simulator sim;
  Rng rng(GetParam());

  // Reference model: fire order is ascending (time, seq); a Reschedule gets a
  // fresh seq, exactly like the engine's contract.
  struct RefEvent {
    int id;
  };
  std::map<std::pair<SimTime, uint64_t>, RefEvent> reference;
  uint64_t ref_seq = 0;

  struct LiveEvent {
    // Bookkeeping only: the test loop cancels/erases entries as they retire.
    EventHandle handle;  // NOLINT(perfiso-LIFE-001)
    std::pair<SimTime, uint64_t> ref_key;
  };
  std::vector<LiveEvent> live;
  std::vector<int> engine_fired;  // filled by engine callbacks
  std::vector<int> reference_fired;
  int next_id = 0;

  const auto fire_reference_until = [&](SimTime until) {
    while (!reference.empty() && reference.begin()->first.first <= until) {
      reference_fired.push_back(reference.begin()->second.id);
      reference.erase(reference.begin());
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op <= 4 || live.empty()) {  // schedule
      const SimTime when = sim.Now() + rng.UniformInt(0, 500);
      const int id = next_id++;
      const EventHandle handle = sim.Schedule(when, [&engine_fired, id] {
        engine_fired.push_back(id);
      });
      const auto key = std::make_pair(when, ref_seq++);
      reference.emplace(key, RefEvent{id});
      live.push_back(LiveEvent{handle, key});
    } else if (op <= 6) {  // cancel a random live event
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      const LiveEvent victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      EXPECT_TRUE(sim.Cancel(victim.handle));
      if constexpr (!kSimSanEnabled) {
        // The lenient contract: a second cancel is a stale no-op. SimSan
        // promotes exactly this to an abort (see simsan_test.cc).
        EXPECT_FALSE(sim.Cancel(victim.handle));
      }
      ASSERT_EQ(reference.erase(victim.ref_key), 1u);
    } else if (op == 7) {  // reschedule a random live event
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      LiveEvent& victim = live[pick];
      const SimTime when = sim.Now() + rng.UniformInt(0, 500);
      EXPECT_TRUE(sim.Reschedule(victim.handle, when));
      const RefEvent ref = reference.at(victim.ref_key);
      reference.erase(victim.ref_key);
      victim.ref_key = std::make_pair(when, ref_seq++);
      reference.emplace(victim.ref_key, ref);
    } else {  // advance time, firing everything due
      const SimTime until = sim.Now() + rng.UniformInt(0, 300);
      sim.RunUntil(until);
      fire_reference_until(until);
      std::erase_if(live, [&](const LiveEvent& e) { return !sim.Pending(e.handle); });
    }
    ASSERT_EQ(sim.PendingEvents(), reference.size()) << "at step " << step;
    ASSERT_EQ(engine_fired, reference_fired) << "at step " << step;
  }

  sim.RunUntilEmpty();
  fire_reference_until(std::numeric_limits<SimTime>::max());
  EXPECT_EQ(engine_fired, reference_fired);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.stats().events_executed, engine_fired.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsReferenceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- Timing-wheel edge cases -------------------------------------------------
//
// Deterministic probes of the two-band scheduler's geometry: level pages
// cover absolute-time bits [0,12), [12,18), [18,24); the wheel horizon is
// 2^24 ns, past which events live in the overflow heap. The constants are
// private to the engine, so these tests pin behavior (fire times, order,
// overflow residency) at the boundaries rather than peeking at internals.

constexpr SimTime kL0Page = SimTime{1} << 12;
constexpr SimTime kL1Page = SimTime{1} << 18;
constexpr SimTime kHorizon = SimTime{1} << 24;

TEST(WheelEdgeCaseTest, SlotAndPageBoundaryEventsFireInTimeOrder) {
  Simulator sim;
  std::vector<SimTime> fired;
  // One event on each side of every geometry boundary: level-0 slot (1 ns),
  // level-0 page, level-1 page, and the horizon itself.
  std::vector<SimTime> times;
  for (SimTime boundary : {SimTime{1}, kL0Page, kL1Page, kHorizon}) {
    times.push_back(boundary - 1);
    times.push_back(boundary);
    times.push_back(boundary + 1);
  }
  // Schedule in reversed order so bucket order cannot accidentally match.
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const SimTime t = *it;
    sim.Schedule(t, [&fired, t, &sim] {
      EXPECT_EQ(sim.Now(), t);
      fired.push_back(t);
    });
  }
  sim.CheckEngineInvariants();
  sim.RunUntilEmpty();
  std::sort(times.begin(), times.end());
  EXPECT_EQ(fired, times);
  sim.CheckEngineInvariants();
}

TEST(WheelEdgeCaseTest, OverflowResidentsCascadeThroughLevelsToExactTimes) {
  Simulator sim;
  std::vector<SimTime> fired;
  // Far-band events several horizon pages out, at offsets that exercise every
  // level on the way down (page base, mid-level-1, mid-level-0, odd ns).
  std::vector<SimTime> times;
  for (uint64_t page : {1u, 2u, 5u}) {
    for (SimTime offset : {SimTime{0}, kL1Page + 3, kL0Page + 9, SimTime{4097}}) {
      times.push_back(static_cast<SimTime>(page) * kHorizon + offset);
    }
  }
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const SimTime t = *it;
    sim.Schedule(t, [&fired, t, &sim] {
      EXPECT_EQ(sim.Now(), t);
      fired.push_back(t);
    });
  }
  EXPECT_EQ(sim.OverflowEvents(), times.size());  // all beyond the horizon
  sim.CheckEngineInvariants();
  sim.RunUntilEmpty();
  std::sort(times.begin(), times.end());
  EXPECT_EQ(fired, times);
  EXPECT_EQ(sim.OverflowEvents(), 0u);
  EXPECT_GT(sim.stats().overflow_pulls, 0u);
  EXPECT_GT(sim.stats().wheel_cascades, 0u);
}

TEST(WheelEdgeCaseTest, CancelRemovesWheelAndOverflowResidentsEagerly) {
  Simulator sim;
  int fired = 0;
  // One resident per band: level 0, level 1, level 2, overflow.
  const EventHandle l0 = sim.Schedule(100, [&fired] { ++fired; });
  const EventHandle l1 = sim.Schedule(2 * kL0Page, [&fired] { ++fired; });
  const EventHandle l2 = sim.Schedule(2 * kL1Page, [&fired] { ++fired; });
  const EventHandle far = sim.Schedule(2 * kHorizon, [&fired] { ++fired; });
  EXPECT_EQ(sim.PendingEvents(), 4u);
  EXPECT_EQ(sim.OverflowEvents(), 1u);
  EXPECT_TRUE(sim.Cancel(l1));
  EXPECT_TRUE(sim.Cancel(far));  // overflow resident leaves the heap eagerly
  EXPECT_EQ(sim.OverflowEvents(), 0u);
  sim.CheckEngineInvariants();
  EXPECT_TRUE(sim.Cancel(l0));
  EXPECT_TRUE(sim.Cancel(l2));
  EXPECT_EQ(sim.PendingEvents(), 0u);
  sim.RunUntilEmpty();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.stats().events_cancelled, 4u);
}

TEST(WheelEdgeCaseTest, RescheduleMovesRecordsBetweenBands) {
  Simulator sim;
  std::vector<int> fired;
  // Wheel -> overflow -> wheel round trip on one handle.
  const EventHandle moved = sim.Schedule(500, [&fired] { fired.push_back(0); });
  EXPECT_EQ(sim.OverflowEvents(), 0u);
  EXPECT_TRUE(sim.Reschedule(moved, 3 * kHorizon));
  EXPECT_EQ(sim.OverflowEvents(), 1u);
  sim.CheckEngineInvariants();
  EXPECT_TRUE(sim.Reschedule(moved, 700));
  EXPECT_EQ(sim.OverflowEvents(), 0u);
  // A same-time rival scheduled before the final move: the move is a fresh
  // scheduling decision, so the rival (older seq) fires first.
  sim.Schedule(700, [&fired] { fired.push_back(1); });
  EXPECT_TRUE(sim.Reschedule(moved, 700));
  sim.CheckEngineInvariants();
  sim.RunUntilEmpty();
  EXPECT_EQ(fired, (std::vector<int>{1, 0}));
}

TEST(WheelEdgeCaseTest, SameTimeEventsKeepScheduleOrderAcrossBatchDrain) {
  Simulator sim;
  std::vector<int> fired;
  const SimTime when = 4096;  // one level-0 slot == one timestamp
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(sim.Schedule(when, [&fired, i] { fired.push_back(i); }));
  }
  // Mid-batch mutations, exercised via the first callback: cancelling a
  // not-yet-fired batch resident must suppress it; rescheduling one to the
  // same timestamp re-orders it to the back (fresh seq).
  sim.Schedule(when - 1, [&] {
    EXPECT_TRUE(sim.Cancel(handles[3]));
    EXPECT_TRUE(sim.Reschedule(handles[1], when));
    // A brand-new same-time event scheduled while the prior slot drains
    // still fires behind everything already queued at `when`.
    sim.Schedule(when, [&fired] { fired.push_back(100); });
  });
  sim.RunUntilEmpty();
  EXPECT_EQ(fired, (std::vector<int>{0, 2, 4, 5, 6, 7, 1, 100}));
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(WheelEdgeCaseTest, CallbackCancelOfALaterBatchResidentSuppressesIt) {
  Simulator sim;
  std::vector<int> fired;
  EventHandle second;
  sim.Schedule(1000, [&] {
    fired.push_back(0);
    EXPECT_TRUE(sim.Cancel(second));  // drained into the same batch, not yet fired
  });
  second = sim.Schedule(1000, [&fired] { fired.push_back(1); });
  sim.RunUntilEmpty();
  EXPECT_EQ(fired, (std::vector<int>{0}));
}

TEST(WheelEdgeCaseTest, ClockNearTopLevelHorizonCrossesPagesCleanly) {
  Simulator sim;
  // Drive the clock to just shy of a high horizon-page boundary with an
  // empty wheel, then straddle the boundary with events on both sides.
  const SimTime base = 41 * kHorizon;
  sim.RunUntil(base - 2);
  EXPECT_EQ(sim.Now(), base - 2);
  std::vector<SimTime> fired;
  for (const SimTime t : {base + 1, base, base - 1, base + kHorizon}) {
    sim.Schedule(t, [&fired, t] { fired.push_back(t); });
  }
  // Pages are aligned to absolute-time bits, not sliding windows: base is 1 ns
  // away from Now() but already in the next horizon page, so it and everything
  // after it live in the far band until the clock crosses the boundary.
  EXPECT_EQ(sim.OverflowEvents(), 3u);
  sim.CheckEngineInvariants();
  sim.RunUntil(base);
  EXPECT_EQ(fired, (std::vector<SimTime>{base - 1, base}));
  sim.RunUntilEmpty();
  EXPECT_EQ(fired, (std::vector<SimTime>{base - 1, base, base + 1, base + kHorizon}));
  sim.CheckEngineInvariants();
}

// --- Machine churn on top of the engine --------------------------------------

class MachineOnEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachineOnEngineTest, RateCapAndAffinityChurnKeepInvariants) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 6;
  spec.quantum = FromMillis(2);
  spec.context_switch = FromMicros(1);
  spec.throttle_interval = FromMillis(8);
  SimMachine machine(&sim, spec, "engine-churn");
  Rng rng(GetParam());

  const JobId capped = machine.CreateJob("capped");
  const JobId free_job = machine.CreateJob("free");
  for (int i = 0; i < 4; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, capped);
  }

  for (int step = 0; step < 400; ++step) {
    switch (rng.UniformInt(0, 5)) {
      case 0:  // flip the rate cap (arms/cancels/reschedules exhaust checks)
        ASSERT_TRUE(machine.SetJobCpuRateCap(capped, rng.Uniform(0.0, 0.6)).ok());
        break;
      case 1:
        ASSERT_TRUE(machine.SetJobCpuRateCap(capped, 0).ok());
        break;
      case 2: {  // affinity churn (cancels slice events via preemption)
        CpuSet mask = CpuSet::FromMask64(rng.Next() & 0x3F);
        if (mask.Empty()) {
          mask = CpuSet::FirstN(spec.num_cores);
        }
        ASSERT_TRUE(machine.SetJobAffinity(capped, mask).ok());
        break;
      }
      case 3:  // short primary bursts compete for cores
        machine.SpawnThread("burst", TenantClass::kPrimary, free_job,
                            FromMicros(rng.Uniform(5, 500)), nullptr);
        break;
      case 4:  // suspend/resume
        ASSERT_TRUE(machine.SetJobSuspended(capped, rng.Bernoulli(0.5)).ok());
        break;
      default:
        break;
    }
    sim.RunUntil(sim.Now() + rng.UniformInt(0, static_cast<int64_t>(FromMicros(400))));
    const Status invariants = machine.CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << "step " << step << ": " << invariants.ToString();
  }
  ASSERT_TRUE(machine.SetJobSuspended(capped, false).ok());
  (void)machine.KillJob(capped);
  sim.RunUntil(sim.Now() + kSecond);
  ASSERT_TRUE(machine.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineOnEngineTest, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace perfiso
