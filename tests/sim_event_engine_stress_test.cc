// Randomized stress for the pooled event engine: interleaves Schedule /
// Cancel / Reschedule / Step against a trivially correct reference model (a
// sorted (time, seq) map) and checks that firing order, pending counts, and
// handle staleness agree exactly. A second battery churns a SimMachine on top
// of the engine and asserts CheckInvariants() throughout — the machine is the
// engine's most demanding consumer (slice preemption cancels, rate-cap
// reschedules).
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {
namespace {

class EngineVsReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineVsReferenceTest, RandomOpsMatchReferenceModel) {
  Simulator sim;
  Rng rng(GetParam());

  // Reference model: fire order is ascending (time, seq); a Reschedule gets a
  // fresh seq, exactly like the engine's contract.
  struct RefEvent {
    int id;
  };
  std::map<std::pair<SimTime, uint64_t>, RefEvent> reference;
  uint64_t ref_seq = 0;

  struct LiveEvent {
    // Bookkeeping only: the test loop cancels/erases entries as they retire.
    EventHandle handle;  // NOLINT(perfiso-LIFE-001)
    std::pair<SimTime, uint64_t> ref_key;
  };
  std::vector<LiveEvent> live;
  std::vector<int> engine_fired;  // filled by engine callbacks
  std::vector<int> reference_fired;
  int next_id = 0;

  const auto fire_reference_until = [&](SimTime until) {
    while (!reference.empty() && reference.begin()->first.first <= until) {
      reference_fired.push_back(reference.begin()->second.id);
      reference.erase(reference.begin());
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op <= 4 || live.empty()) {  // schedule
      const SimTime when = sim.Now() + rng.UniformInt(0, 500);
      const int id = next_id++;
      const EventHandle handle = sim.Schedule(when, [&engine_fired, id] {
        engine_fired.push_back(id);
      });
      const auto key = std::make_pair(when, ref_seq++);
      reference.emplace(key, RefEvent{id});
      live.push_back(LiveEvent{handle, key});
    } else if (op <= 6) {  // cancel a random live event
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      const LiveEvent victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      EXPECT_TRUE(sim.Cancel(victim.handle));
      if constexpr (!kSimSanEnabled) {
        // The lenient contract: a second cancel is a stale no-op. SimSan
        // promotes exactly this to an abort (see simsan_test.cc).
        EXPECT_FALSE(sim.Cancel(victim.handle));
      }
      ASSERT_EQ(reference.erase(victim.ref_key), 1u);
    } else if (op == 7) {  // reschedule a random live event
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      LiveEvent& victim = live[pick];
      const SimTime when = sim.Now() + rng.UniformInt(0, 500);
      EXPECT_TRUE(sim.Reschedule(victim.handle, when));
      const RefEvent ref = reference.at(victim.ref_key);
      reference.erase(victim.ref_key);
      victim.ref_key = std::make_pair(when, ref_seq++);
      reference.emplace(victim.ref_key, ref);
    } else {  // advance time, firing everything due
      const SimTime until = sim.Now() + rng.UniformInt(0, 300);
      sim.RunUntil(until);
      fire_reference_until(until);
      std::erase_if(live, [&](const LiveEvent& e) { return !sim.Pending(e.handle); });
    }
    ASSERT_EQ(sim.PendingEvents(), reference.size()) << "at step " << step;
    ASSERT_EQ(engine_fired, reference_fired) << "at step " << step;
  }

  sim.RunUntilEmpty();
  fire_reference_until(std::numeric_limits<SimTime>::max());
  EXPECT_EQ(engine_fired, reference_fired);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.stats().events_executed, engine_fired.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsReferenceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- Machine churn on top of the engine --------------------------------------

class MachineOnEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachineOnEngineTest, RateCapAndAffinityChurnKeepInvariants) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 6;
  spec.quantum = FromMillis(2);
  spec.context_switch = FromMicros(1);
  spec.throttle_interval = FromMillis(8);
  SimMachine machine(&sim, spec, "engine-churn");
  Rng rng(GetParam());

  const JobId capped = machine.CreateJob("capped");
  const JobId free_job = machine.CreateJob("free");
  for (int i = 0; i < 4; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, capped);
  }

  for (int step = 0; step < 400; ++step) {
    switch (rng.UniformInt(0, 5)) {
      case 0:  // flip the rate cap (arms/cancels/reschedules exhaust checks)
        ASSERT_TRUE(machine.SetJobCpuRateCap(capped, rng.Uniform(0.0, 0.6)).ok());
        break;
      case 1:
        ASSERT_TRUE(machine.SetJobCpuRateCap(capped, 0).ok());
        break;
      case 2: {  // affinity churn (cancels slice events via preemption)
        CpuSet mask = CpuSet::FromMask64(rng.Next() & 0x3F);
        if (mask.Empty()) {
          mask = CpuSet::FirstN(spec.num_cores);
        }
        ASSERT_TRUE(machine.SetJobAffinity(capped, mask).ok());
        break;
      }
      case 3:  // short primary bursts compete for cores
        machine.SpawnThread("burst", TenantClass::kPrimary, free_job,
                            FromMicros(rng.Uniform(5, 500)), nullptr);
        break;
      case 4:  // suspend/resume
        ASSERT_TRUE(machine.SetJobSuspended(capped, rng.Bernoulli(0.5)).ok());
        break;
      default:
        break;
    }
    sim.RunUntil(sim.Now() + rng.UniformInt(0, static_cast<int64_t>(FromMicros(400))));
    const Status invariants = machine.CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << "step " << step << ": " << invariants.ToString();
  }
  ASSERT_TRUE(machine.SetJobSuspended(capped, false).ok());
  (void)machine.KillJob(capped);
  sim.RunUntil(sim.Now() + kSecond);
  ASSERT_TRUE(machine.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineOnEngineTest, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace perfiso
