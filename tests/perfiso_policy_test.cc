#include "src/perfiso/policy.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(PlacementMaskTest, PackHigh) {
  EXPECT_EQ(BuildPlacementMask(CorePlacement::kPackHigh, 8, 48), CpuSet::Range(40, 48));
  EXPECT_EQ(BuildPlacementMask(CorePlacement::kPackHigh, 0, 48), CpuSet());
  EXPECT_EQ(BuildPlacementMask(CorePlacement::kPackHigh, 48, 48), CpuSet::FirstN(48));
}

TEST(PlacementMaskTest, PackLow) {
  EXPECT_EQ(BuildPlacementMask(CorePlacement::kPackLow, 8, 48), CpuSet::FirstN(8));
}

TEST(PlacementMaskTest, SpreadHasExactCountAndNoDuplicates) {
  for (int count = 1; count <= 48; ++count) {
    const CpuSet mask = BuildPlacementMask(CorePlacement::kSpread, count, 48);
    EXPECT_EQ(mask.Count(), count) << "count=" << count;
  }
}

BlindIsolationSettings Settings(int buffer, bool proportional = true) {
  BlindIsolationSettings settings;
  settings.buffer_cores = buffer;
  settings.proportional_step = proportional;
  return settings;
}

TEST(BlindIsolationPolicyTest, GrowsWhenIdleAboveBuffer) {
  BlindIsolationPolicy policy(Settings(8), 48);
  EXPECT_EQ(policy.secondary_cores(), 0);
  // All 48 cores idle: I=48 > B=8 -> S grows by I-B=40 (capped at 48-8=40).
  auto mask = policy.Decide(CpuSet::FirstN(48));
  ASSERT_TRUE(mask.has_value());
  EXPECT_EQ(policy.secondary_cores(), 40);
  EXPECT_EQ(mask->Count(), 40);
}

TEST(BlindIsolationPolicyTest, ShrinksWhenIdleBelowBuffer) {
  BlindIsolationSettings settings = Settings(8);
  settings.initial_secondary_cores = 40;
  BlindIsolationPolicy policy(settings, 48);
  // Only 2 idle cores: I=2 < B=8 -> S -= 6.
  auto mask = policy.Decide(CpuSet::FirstN(2));
  ASSERT_TRUE(mask.has_value());
  EXPECT_EQ(policy.secondary_cores(), 34);
}

TEST(BlindIsolationPolicyTest, SteadyStateIssuesNoUpdate) {
  BlindIsolationSettings settings = Settings(8);
  settings.initial_secondary_cores = 20;
  BlindIsolationPolicy policy(settings, 48);
  // Exactly B idle cores: no change, no update.
  EXPECT_FALSE(policy.Decide(CpuSet::FirstN(8)).has_value());
  EXPECT_EQ(policy.secondary_cores(), 20);
}

TEST(BlindIsolationPolicyTest, UpdateOnEveryPollAblation) {
  BlindIsolationSettings settings = Settings(8);
  settings.initial_secondary_cores = 20;
  settings.update_on_every_poll = true;
  BlindIsolationPolicy policy(settings, 48);
  EXPECT_TRUE(policy.Decide(CpuSet::FirstN(8)).has_value());  // unchanged but issued
}

TEST(BlindIsolationPolicyTest, UnitStepAblation) {
  BlindIsolationPolicy policy(Settings(8, /*proportional=*/false), 48);
  policy.Decide(CpuSet::FirstN(48));
  EXPECT_EQ(policy.secondary_cores(), 1);  // grows one core at a time
  policy.Decide(CpuSet::FirstN(48));
  EXPECT_EQ(policy.secondary_cores(), 2);
  policy.Decide(CpuSet());
  EXPECT_EQ(policy.secondary_cores(), 1);  // shrinks one core at a time
}

TEST(BlindIsolationPolicyTest, NeverExceedsCoresMinusBuffer) {
  BlindIsolationPolicy policy(Settings(4), 16);
  for (int i = 0; i < 10; ++i) {
    policy.Decide(CpuSet::FirstN(16));
  }
  EXPECT_EQ(policy.secondary_cores(), 12);
}

TEST(BlindIsolationPolicyTest, CanShrinkToZero) {
  BlindIsolationSettings settings = Settings(8);
  settings.initial_secondary_cores = 3;
  BlindIsolationPolicy policy(settings, 48);
  auto mask = policy.Decide(CpuSet());  // zero idle cores
  ASSERT_TRUE(mask.has_value());
  EXPECT_EQ(policy.secondary_cores(), 0);
  EXPECT_TRUE(mask->Empty());
}

TEST(BlindIsolationPolicyTest, ConvergesToEquilibrium) {
  // Closed loop against a synthetic machine: primary occupies P cores, the
  // secondary saturates whatever it is given. Idle = N - P - S.
  constexpr int kCores = 48;
  constexpr int kBuffer = 8;
  BlindIsolationPolicy policy(Settings(kBuffer), kCores);
  for (int primary : {10, 25, 4, 38, 0}) {
    for (int step = 0; step < 10; ++step) {
      const int busy = std::min(kCores, primary + policy.secondary_cores());
      policy.Decide(CpuSet::FirstN(kCores - busy));
    }
    EXPECT_EQ(policy.secondary_cores(), std::max(0, kCores - primary - kBuffer))
        << "primary=" << primary;
  }
}

}  // namespace
}  // namespace perfiso
