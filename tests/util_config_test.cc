#include "src/util/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace perfiso {
namespace {

TEST(ConfigTest, ParsesKeysCommentsAndBlanks) {
  auto result = ConfigMap::Parse(
      "# PerfIso cluster config\n"
      "cpu.buffer_cores = 8\n"
      "\n"
      "io.hdfs_limit_mbps = 60.5\n"
      "kill_switch = false\n"
      "name = IndexServe-Row1\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ConfigMap& config = *result;
  EXPECT_EQ(config.GetIntOr("cpu.buffer_cores", 0), 8);
  EXPECT_DOUBLE_EQ(config.GetDoubleOr("io.hdfs_limit_mbps", 0), 60.5);
  EXPECT_FALSE(config.GetBoolOr("kill_switch", true));
  EXPECT_EQ(config.GetStringOr("name", ""), "IndexServe-Row1");
}

TEST(ConfigTest, MissingKeysReturnDefaults) {
  auto config = ConfigMap::Parse("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetIntOr("absent", 42), 42);
  EXPECT_TRUE(config->GetBoolOr("absent", true));
}

TEST(ConfigTest, MalformedLineReportsLineNumber) {
  auto result = ConfigMap::Parse("a = 1\nbroken line\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ConfigTest, MalformedIntIsError) {
  auto config = ConfigMap::Parse("x = notanumber\n");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->GetInt("x", 0).ok());
  EXPECT_EQ(config->GetIntOr("x", 5), 5);
}

TEST(ConfigTest, MalformedBoolIsError) {
  auto config = ConfigMap::Parse("x = yes\n");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->GetBool("x", false).ok());
}

TEST(ConfigTest, SerializeRoundTrip) {
  ConfigMap config;
  config.SetInt("cpu.buffer_cores", 8);
  config.SetBool("kill_switch", true);
  config.SetDouble("rate", 0.25);
  config.SetString("mode", "blind");
  auto reparsed = ConfigMap::Parse(config.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->entries(), config.entries());
}

TEST(ConfigTest, DoubleRoundTripIsBitExact) {
  // SetDouble writes the shortest text that parses back to the identical
  // double — a serialized scenario must describe the same experiment, not a
  // 6-significant-digit neighbor.
  ConfigMap config;
  for (double value : {2000.125, 0.123456789012345, 1.0 / 3.0, 5e8, 160e6}) {
    config.SetDouble("v", value);
    auto reparsed = ConfigMap::Parse(config.Serialize());
    ASSERT_TRUE(reparsed.ok());
    auto back = reparsed->GetDouble("v", 0);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, value);
  }
  // Friendly values still serialize compactly.
  config.SetDouble("v", 0.25);
  EXPECT_EQ(config.entries().at("v"), "0.25");
}

TEST(ConfigTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/perfiso_config_test.cfg";
  ConfigMap config;
  config.SetInt("a", 1);
  config.SetString("b", "two");
  ASSERT_TRUE(config.WriteFile(path).ok());
  auto loaded = ConfigMap::LoadFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entries(), config.entries());
  std::remove(path.c_str());
}

TEST(ConfigTest, LoadMissingFileIsNotFound) {
  auto result = ConfigMap::LoadFile("/nonexistent/perfiso.cfg");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ConfigTest, EqualsSignInValueKept) {
  auto config = ConfigMap::Parse("expr = a=b\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetStringOr("expr", ""), "a=b");
}

}  // namespace
}  // namespace perfiso
