// Retry/backoff math (src/fault/retry.h) and the index server's chunk-retry
// behavior built on it: exact backoff sequences per seed, budget exhaustion,
// and backoff-vs-deadline suppression.
#include "src/fault/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/index_node.h"
#include "src/fault/invariant_checker.h"
#include "src/sim/simulator.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.enabled = true;
  policy.backoff_base = FromMillis(5);
  policy.backoff_cap = FromMillis(80);
  policy.jitter_fraction = 0;
  return policy;
}

TEST(ComputeBackoffTest, ExactDoublingSequenceWithoutJitter) {
  const RetryPolicy policy = NoJitterPolicy();
  // min(cap, base * 2^i): 5, 10, 20, 40, 80, 80, 80, ...
  const std::vector<SimDuration> expected = {FromMillis(5),  FromMillis(10), FromMillis(20),
                                             FromMillis(40), FromMillis(80), FromMillis(80)};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(ComputeBackoff(policy, static_cast<int>(i), nullptr), expected[i])
        << "retry_index=" << i;
  }
  EXPECT_EQ(ComputeBackoff(policy, 1000, nullptr), FromMillis(80));  // saturates, no overflow
}

TEST(ComputeBackoffTest, NegativeIndexClampsToFirstRetry) {
  const RetryPolicy policy = NoJitterPolicy();
  EXPECT_EQ(ComputeBackoff(policy, -5, nullptr), policy.backoff_base);
}

TEST(ComputeBackoffTest, CapBelowBaseCapsImmediately) {
  RetryPolicy policy = NoJitterPolicy();
  policy.backoff_base = FromMillis(10);
  policy.backoff_cap = FromMillis(4);
  EXPECT_EQ(ComputeBackoff(policy, 0, nullptr), FromMillis(4));
  EXPECT_EQ(ComputeBackoff(policy, 3, nullptr), FromMillis(4));
}

TEST(ComputeBackoffTest, JitterIsDeterministicPerSeed) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.2;
  const auto sequence = [&policy](uint64_t seed) {
    Rng rng(seed);
    std::vector<SimDuration> out;
    for (int i = 0; i < 8; ++i) {
      out.push_back(ComputeBackoff(policy, i, &rng));
    }
    return out;
  };
  // Same seed replays the exact sequence; a different seed diverges.
  EXPECT_EQ(sequence(42), sequence(42));
  EXPECT_NE(sequence(42), sequence(43));
}

TEST(ComputeBackoffTest, JitterStaysWithinFraction) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.25;
  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    const int index = i % 6;
    const SimDuration raw = ComputeBackoff(policy, index, nullptr);
    const SimDuration jittered = ComputeBackoff(policy, index, &rng);
    EXPECT_GE(jittered, raw);
    EXPECT_LT(static_cast<double>(jittered),
              static_cast<double>(raw) * (1.0 + policy.jitter_fraction));
  }
}

TEST(ComputeBackoffTest, ZeroJitterDrawsNothingFromRng) {
  const RetryPolicy policy = NoJitterPolicy();  // jitter_fraction = 0
  Rng used(99);
  Rng untouched(99);
  (void)ComputeBackoff(policy, 2, &used);
  // The determinism contract: a no-jitter policy must not consume a draw.
  EXPECT_EQ(used.Next(), untouched.Next());
}

// --- Server-level retry behavior ----------------------------------------------

QueryWork MakeQuery(uint64_t id, int fanout = 5) {
  QueryWork work;
  work.id = id;
  work.fanout = fanout;
  work.size_factor = 1.0;
  work.seed = 4000 + id;
  return work;
}

IndexNodeOptions SlowChunkOptions() {
  IndexNodeOptions options;
  // Chunk lookups take ~20 ms of CPU — far past the retry timeout below — so
  // every first attempt is "lost" from the retry logic's perspective.
  options.indexserve.chunk_cpu_median_us = 20000;
  options.indexserve.chunk_cpu_sigma = 0.05;
  options.indexserve.hedging_enabled = false;
  options.indexserve.chunk_miss_rate = 0;  // pure CPU, no disk variance
  return options;
}

TEST(ChunkRetryTest, TimeoutsDetectedAndRetriesIssued) {
  Simulator sim;
  IndexNodeOptions options = SlowChunkOptions();
  options.indexserve.chunk_retry.enabled = true;
  options.indexserve.chunk_retry.timeout = FromMillis(5);
  options.indexserve.chunk_retry.backoff_base = FromMillis(1);
  options.indexserve.chunk_retry.backoff_cap = FromMillis(4);
  IndexNodeRig rig(&sim, options, "m0");
  for (uint64_t i = 0; i < 8; ++i) {
    rig.server().SubmitQuery(MakeQuery(i));
  }
  sim.RunUntilEmpty();
  const auto& stats = rig.server().stats();
  EXPECT_GT(stats.timeouts_detected, 0);
  EXPECT_GT(stats.retries_issued, 0);
  // Retries are attempts 2..max_attempts: never more than (max_attempts - 1)
  // per started chunk.
  EXPECT_LE(stats.retries_issued,
            (options.indexserve.chunk_retry.max_attempts - 1) * rig.server().chunks_started());
  InvariantReport report;
  InvariantChecker::CheckRig(rig, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ChunkRetryTest, BudgetExhaustionStopsReissuing) {
  Simulator sim;
  IndexNodeOptions options = SlowChunkOptions();
  options.indexserve.chunk_retry.enabled = true;
  options.indexserve.chunk_retry.max_attempts = 2;  // one retry, then exhausted
  options.indexserve.chunk_retry.timeout = FromMillis(2);
  options.indexserve.chunk_retry.backoff_base = FromMillis(1);
  options.indexserve.chunk_retry.backoff_cap = FromMillis(1);
  IndexNodeRig rig(&sim, options, "m0");
  for (uint64_t i = 0; i < 4; ++i) {
    rig.server().SubmitQuery(MakeQuery(i));
  }
  sim.RunUntilEmpty();
  const auto& stats = rig.server().stats();
  // With 20 ms chunks and a 2 ms per-attempt timeout, the retry also times
  // out, so the budget must bottom out on every chunk that retried.
  EXPECT_GT(stats.retry_exhausted, 0);
  EXPECT_LE(stats.retries_issued, rig.server().chunks_started());
  InvariantReport report;
  InvariantChecker::CheckRig(rig, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ChunkRetryTest, BackoffPastDeadlineIsSuppressed) {
  Simulator sim;
  IndexNodeOptions options = SlowChunkOptions();
  options.indexserve.timeout = FromMillis(40);  // client deadline
  options.indexserve.chunk_retry.enabled = true;
  options.indexserve.chunk_retry.timeout = FromMillis(5);
  // Backoff lands the re-issue past the client deadline every time: the retry
  // must be suppressed (counted), not scheduled to fire into a dead query.
  options.indexserve.chunk_retry.backoff_base = FromMillis(100);
  options.indexserve.chunk_retry.backoff_cap = FromMillis(100);
  options.indexserve.chunk_retry.jitter_fraction = 0;
  IndexNodeRig rig(&sim, options, "m0");
  for (uint64_t i = 0; i < 4; ++i) {
    rig.server().SubmitQuery(MakeQuery(i));
  }
  sim.RunUntilEmpty();
  const auto& stats = rig.server().stats();
  EXPECT_GT(stats.retries_suppressed_deadline, 0);
  EXPECT_EQ(stats.retries_issued, 0);
  InvariantReport report;
  InvariantChecker::CheckRig(rig, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ChunkRetryTest, DisabledPolicyTouchesNothing) {
  // Identical slow-chunk runs with retry disabled vs never-configured must
  // produce bit-identical latency digests (the inertness contract).
  const auto run = [](bool mention_retry) {
    Simulator sim;
    IndexNodeOptions options = SlowChunkOptions();
    if (mention_retry) {
      options.indexserve.chunk_retry.enabled = false;
      options.indexserve.chunk_retry.timeout = FromMillis(1);  // would be hot if live
    }
    IndexNodeRig rig(&sim, options, "m0");
    for (uint64_t i = 0; i < 8; ++i) {
      rig.server().SubmitQuery(MakeQuery(i));
    }
    sim.RunUntilEmpty();
    EXPECT_EQ(rig.server().stats().timeouts_detected, 0);
    EXPECT_EQ(rig.server().stats().retries_issued, 0);
    return rig.server().stats().latency_ms.Digest();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace perfiso
