// End-to-end disk-interference coverage: the HDD-backpressure channel and
// PerfIso's DWRR/static-cap protection of the primary's logging path
// (the single-box analogue of Fig. 9c).
#include <gtest/gtest.h>

#include "src/cluster/index_node.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

struct DiskRunResult {
  double p99 = 0;
  int64_t completed = 0;
  int64_t log_stalls = 0;
  int64_t bully_ios = 0;
};

// A node with an aggressive log profile (big entries, tiny buffer) so disk
// contention has a short path to query latency, plus a large-block disk
// bully. `protect` applies the paper's static caps + priority bands. The log
// volume (2,000 QPS x 16 KB = 32 MB/s on one 160 MB/s HDD, 8x the paper's)
// is chosen to leave the bully-free path real headroom: at 64 MB/s the
// system sits at the congestion-collapse threshold and whether a run wedges
// becomes a coin flip on the arrival realization.
DiskRunResult RunDiskScenario(bool with_bully, bool protect) {
  Simulator sim;
  IndexNodeOptions options;
  options.hdd_drives = 1;
  options.indexserve.log_bytes_per_query = 16 * 1024;
  options.indexserve.log_flush_bytes = 128 * 1024;
  options.indexserve.log_buffer_cap_bytes = 512 * 1024;
  IndexNodeRig rig(&sim, options, "m0");

  if (with_bully) {
    DiskBully::Options bully;
    bully.owner = kIoOwnerDiskBully;
    bully.queue_depth = 16;
    bully.block_bytes = 1024 * 1024;
    rig.StartDiskBully(bully);
    if (!protect) {
      // "No isolation": the bully competes at the same band with a huge
      // weight, swamping DWRR like an unmanaged OS queue would.
      rig.hdd_scheduler().RegisterOwner(kIoOwnerDiskBully, "bully", /*priority=*/0,
                                        /*weight=*/100);
    } else {
      PerfIsoConfig config;
      config.cpu_mode = CpuIsolationMode::kNone;  // isolate the disk effect
      config.io_limits.push_back(
          IoOwnerLimit{kIoOwnerDiskBully, 20e6, 0, /*priority=*/2, 1.0, 0});
      EXPECT_TRUE(rig.StartPerfIso(config).ok());
    }
  }

  Rng trace_rng(77);
  auto trace = GenerateTrace(TraceSpec{}, 8000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), 2000, Rng(5),
                        [&](const QueryWork& work, SimTime) { rig.server().SubmitQuery(work); });
  client.Run(0, 3 * kSecond);
  sim.RunUntil(kSecond);
  rig.server().ResetStats();
  sim.RunUntil(3 * kSecond);

  DiskRunResult result;
  result.p99 = rig.server().stats().latency_ms.P99();
  result.completed = rig.server().stats().completed;
  result.log_stalls = rig.server().stats().log_stalls;
  result.bully_ios = rig.disk_bully() != nullptr ? rig.disk_bully()->completed_ios() : 0;
  return result;
}

TEST(DiskInterferenceTest, UnmanagedDiskBullyStallsQueryCompletion) {
  const DiskRunResult baseline = RunDiskScenario(false, false);
  const DiskRunResult bullied = RunDiskScenario(true, false);
  // Logging backpressure: completions pile up behind the swamped HDD and the
  // measured window finishes only a fraction of the baseline's queries.
  EXPECT_GT(bullied.log_stalls, 0);
  EXPECT_LT(bullied.completed, baseline.completed / 2);
}

TEST(DiskInterferenceTest, PerfIsoDiskThrottlesProtectTheTail) {
  const DiskRunResult baseline = RunDiskScenario(false, false);
  const DiskRunResult protected_run = RunDiskScenario(true, true);
  // This scenario is deliberately harsher than the paper's (one HDD instead
  // of four, 8x the log volume), so the shared disk runs near saturation
  // even when throttled: allow a few ms instead of Fig. 9c's 1.2 ms, which
  // the paper-faithful configuration meets (see fig09_cluster).
  EXPECT_LT(protected_run.p99 - baseline.p99, 5.0);
  // And the bully still makes progress under its caps.
  EXPECT_GT(protected_run.bully_ios, 0);
}

TEST(DiskInterferenceTest, ThrottledBullyRespectsBandwidthCap) {
  const DiskRunResult protected_run = RunDiskScenario(true, true);
  // 20 MB/s cap, 1 MiB blocks, 2 s measured (+1 s warm-up, + burst
  // allowance): ~60 IOs within a generous bound.
  EXPECT_LT(protected_run.bully_ios, 90);
}

TEST(DiskInterferenceTest, ThrottledRunCompletesLikeBaseline) {
  // Ablation: with caps + priority bands the measured window completes the
  // full query volume; the unmanaged run loses most of it to log stalls.
  const DiskRunResult baseline = RunDiskScenario(false, false);
  const DiskRunResult uncapped = RunDiskScenario(true, false);
  const DiskRunResult capped = RunDiskScenario(true, true);
  EXPECT_GT(capped.completed, uncapped.completed);
  EXPECT_GT(capped.completed, baseline.completed * 9 / 10);
}

}  // namespace
}  // namespace perfiso
