#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/workload/bullies.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

TEST(QueryTraceTest, GeneratesRequestedCountWithBoundedFanout) {
  Rng rng(1);
  TraceSpec spec;
  spec.fanout_min = 2;
  spec.fanout_max = 9;
  auto trace = GenerateTrace(spec, 5000, &rng);
  ASSERT_EQ(trace.size(), 5000u);
  for (const QueryWork& q : trace) {
    EXPECT_GE(q.fanout, 2);
    EXPECT_LE(q.fanout, 9);
    EXPECT_GT(q.size_factor, 0);
  }
}

TEST(QueryTraceTest, SizeFactorMeanIsOne) {
  Rng rng(2);
  TraceSpec spec;
  auto trace = GenerateTrace(spec, 100000, &rng);
  MeanVar mv;
  for (const QueryWork& q : trace) {
    mv.Add(q.size_factor);
  }
  EXPECT_NEAR(mv.Mean(), 1.0, 0.02);
}

TEST(QueryTraceTest, DeterministicForSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  auto a = GenerateTrace(TraceSpec{}, 100, &rng_a);
  auto b = GenerateTrace(TraceSpec{}, 100, &rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fanout, b[i].fanout);
    EXPECT_DOUBLE_EQ(a[i].size_factor, b[i].size_factor);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(OpenLoopClientTest, RateIsApproximatelyPoisson) {
  Simulator sim;
  Rng rng(3);
  auto trace = GenerateTrace(TraceSpec{}, 100, &rng);
  int submitted = 0;
  std::vector<SimTime> arrivals;
  OpenLoopClient client(&sim, trace, /*qps=*/1000, Rng(4), [&](const QueryWork&, SimTime now) {
    ++submitted;
    arrivals.push_back(now);
  });
  client.Run(0, 10 * kSecond);
  sim.RunUntilEmpty();
  // 10 s at 1000 QPS: ~10000 arrivals (Poisson, sd ~100).
  EXPECT_NEAR(submitted, 10000, 400);
  // Open loop: submissions continue regardless of completion (nothing
  // consumes them here).
  EXPECT_EQ(client.submitted(), static_cast<uint64_t>(submitted));
  // Inter-arrival CV should be ~1 for a Poisson process.
  MeanVar gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.Add(static_cast<double>(arrivals[i] - arrivals[i - 1]));
  }
  EXPECT_NEAR(gaps.StdDev() / gaps.Mean(), 1.0, 0.1);
}

TEST(OpenLoopClientTest, WrapsTraceWhenExhausted) {
  Simulator sim;
  Rng rng(5);
  auto trace = GenerateTrace(TraceSpec{}, 10, &rng);
  std::vector<uint64_t> ids;
  OpenLoopClient client(&sim, trace, 1000, Rng(6),
                        [&](const QueryWork& q, SimTime) { ids.push_back(q.id); });
  client.Run(0, kSecond);
  sim.RunUntilEmpty();
  ASSERT_GT(ids.size(), 20u);
  EXPECT_EQ(ids[0], ids[10]);  // wrapped around
}

TEST(CpuBullyTest, ProgressTracksCpuTime) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 4;
  spec.context_switch = 0;
  SimMachine machine(&sim, spec, "m0");
  CpuBully bully(&machine, 8, "bully");
  EXPECT_EQ(bully.threads(), 8);
  sim.RunUntil(kSecond);
  EXPECT_NEAR(bully.Progress(), 4.0, 0.01);  // 4 cores saturated for 1 s
  bully.Stop();
  sim.RunUntil(2 * kSecond);
  EXPECT_NEAR(bully.Progress(), 4.0, 0.01);  // no progress after stop
}

struct DiskRig {
  Simulator sim;
  MachineSpec machine_spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<StripedVolume> volume;
  std::unique_ptr<IoScheduler> scheduler;
  JobId job;

  DiskRig() {
    machine_spec.num_cores = 4;
    machine_spec.context_switch = 0;
    machine = std::make_unique<SimMachine>(&sim, machine_spec, "m0");
    volume = std::make_unique<StripedVolume>(&sim, DiskSpec::Hdd(), 4, "hdd");
    scheduler = std::make_unique<IoScheduler>(&sim, volume.get(), 4);
    job = machine->CreateJob("secondary");
  }
};

TEST(DiskBullyTest, KeepsQueueDepthAndMixesOps) {
  DiskRig rig;
  DiskBully::Options options;
  options.queue_depth = 4;
  DiskBully bully(&rig.sim, rig.machine.get(), rig.scheduler.get(), rig.job, options, Rng(9));
  bully.Start();
  rig.sim.RunUntil(5 * kSecond);
  // Sequential 8 KB ops on 4 HDDs at ~0.55 ms each -> thousands of IOPS.
  EXPECT_GT(bully.completed_ios(), 5000);
  bully.Stop();
  const int64_t after_stop = bully.completed_ios();
  rig.sim.RunUntil(6 * kSecond);
  EXPECT_LE(bully.completed_ios() - after_stop, options.queue_depth);
}

TEST(HdfsClientTest, ApproachesConfiguredRates) {
  DiskRig rig;
  HdfsClient::Options options;
  options.client_bytes_per_sec = 10e6;
  options.replication_bytes_per_sec = 5e6;
  options.cpu_fraction = 0.05;
  HdfsClient hdfs(&rig.sim, rig.machine.get(), rig.scheduler.get(), rig.job, options, Rng(11));
  hdfs.Start();
  rig.sim.RunUntil(5 * kSecond);
  // Self-paced at ~15 MB/s combined.
  EXPECT_NEAR(static_cast<double>(hdfs.bytes_transferred()), 75e6, 15e6);
  // The CPU footprint is near the configured fraction of the machine.
  const double cpu_fraction =
      ToSeconds(rig.machine->metrics().busy_ns[static_cast<int>(TenantClass::kSecondary)]) /
      (5.0 * rig.machine_spec.num_cores);
  EXPECT_NEAR(cpu_fraction, 0.05, 0.02);
  hdfs.Stop();
}

TEST(MlTrainingJobTest, ComputesAndGrowsMemory) {
  DiskRig rig;
  MlTrainingJob::Options options;
  options.worker_threads = 8;
  options.memory_growth_per_sec = 1024 * 1024;
  MlTrainingJob job(&rig.sim, rig.machine.get(), rig.scheduler.get(), rig.job, options);
  job.Start();
  rig.sim.RunUntil(4 * kSecond);
  EXPECT_NEAR(job.Progress(), 16.0, 0.5);  // 4 cores * 4 s
  const int64_t memory = *rig.machine->JobMemory(rig.job);
  EXPECT_NEAR(static_cast<double>(memory), 4e6, 1.5e6);
  job.Stop();
  EXPECT_EQ(*rig.machine->JobLiveThreads(rig.job), 0);
}

}  // namespace
}  // namespace perfiso
