#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/workload/bullies.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

TEST(QueryTraceTest, GeneratesRequestedCountWithBoundedFanout) {
  Rng rng(1);
  TraceSpec spec;
  spec.fanout_min = 2;
  spec.fanout_max = 9;
  auto trace = GenerateTrace(spec, 5000, &rng);
  ASSERT_EQ(trace.size(), 5000u);
  for (const QueryWork& q : trace) {
    EXPECT_GE(q.fanout, 2);
    EXPECT_LE(q.fanout, 9);
    EXPECT_GT(q.size_factor, 0);
  }
}

TEST(QueryTraceTest, SizeFactorMeanIsOne) {
  Rng rng(2);
  TraceSpec spec;
  auto trace = GenerateTrace(spec, 100000, &rng);
  MeanVar mv;
  for (const QueryWork& q : trace) {
    mv.Add(q.size_factor);
  }
  EXPECT_NEAR(mv.Mean(), 1.0, 0.02);
}

TEST(QueryTraceTest, DeterministicForSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  auto a = GenerateTrace(TraceSpec{}, 100, &rng_a);
  auto b = GenerateTrace(TraceSpec{}, 100, &rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fanout, b[i].fanout);
    EXPECT_DOUBLE_EQ(a[i].size_factor, b[i].size_factor);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(OpenLoopClientTest, RateIsApproximatelyPoisson) {
  Simulator sim;
  Rng rng(3);
  auto trace = GenerateTrace(TraceSpec{}, 100, &rng);
  int submitted = 0;
  std::vector<SimTime> arrivals;
  OpenLoopClient client(&sim, trace, /*qps=*/1000, Rng(4), [&](const QueryWork&, SimTime now) {
    ++submitted;
    arrivals.push_back(now);
  });
  client.Run(0, 10 * kSecond);
  sim.RunUntilEmpty();
  // 10 s at 1000 QPS: ~10000 arrivals (Poisson, sd ~100).
  EXPECT_NEAR(submitted, 10000, 400);
  // Open loop: submissions continue regardless of completion (nothing
  // consumes them here).
  EXPECT_EQ(client.submitted(), static_cast<uint64_t>(submitted));
  // Inter-arrival CV should be ~1 for a Poisson process.
  MeanVar gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.Add(static_cast<double>(arrivals[i] - arrivals[i - 1]));
  }
  EXPECT_NEAR(gaps.StdDev() / gaps.Mean(), 1.0, 0.1);
}

TEST(OpenLoopClientTest, WrapsTraceWithIdenticalQueryWork) {
  Simulator sim;
  Rng rng(5);
  auto trace = GenerateTrace(TraceSpec{}, 10, &rng);
  std::vector<QueryWork> submitted;
  OpenLoopClient client(&sim, trace, 1000, Rng(6),
                        [&](const QueryWork& q, SimTime) { submitted.push_back(q); });
  client.Run(0, kSecond);
  sim.RunUntilEmpty();
  ASSERT_GT(submitted.size(), 20u);
  // Wraparound must replay the *same work*, not just the same ids: every
  // submission i equals trace[i % 10] field for field.
  for (size_t i = 0; i < submitted.size(); ++i) {
    const QueryWork& expected = trace[i % trace.size()];
    EXPECT_EQ(submitted[i].id, expected.id) << i;
    EXPECT_EQ(submitted[i].fanout, expected.fanout) << i;
    EXPECT_DOUBLE_EQ(submitted[i].size_factor, expected.size_factor) << i;
    EXPECT_EQ(submitted[i].seed, expected.seed) << i;
  }
}

// Regression for the first-arrival bug: ScheduleNext used to submit query #0
// at exactly t=start with no exponential gap, so every run began with a
// deterministic arrival and short-window rate estimates were biased high.
TEST(OpenLoopClientTest, FirstArrivalGetsAnExponentialGap) {
  // Across many seeds the first-arrival time must behave like Exp(1/rate):
  // mean 1/rate, and essentially never exactly at t=start.
  const double kRate = 1000;
  MeanVar first_arrivals;
  int at_start = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    Simulator sim;
    Rng rng(9);
    auto trace = GenerateTrace(TraceSpec{}, 4, &rng);
    SimTime first = -1;
    OpenLoopClient client(&sim, std::move(trace), kRate, Rng(seed + 1),
                          [&first](const QueryWork&, SimTime now) {
                            if (first < 0) {
                              first = now;
                            }
                          });
    client.Run(0, kSecond);
    sim.RunUntilEmpty();
    ASSERT_GE(first, 0) << "no arrival in a 1 s window at 1000 QPS";
    at_start += first == 0 ? 1 : 0;
    first_arrivals.Add(static_cast<double>(first));
  }
  EXPECT_EQ(at_start, 0) << "first query submitted at exactly t=start";
  // Mean of Exp(1 ms) over 400 draws: sd of the mean is 1ms/20.
  EXPECT_NEAR(first_arrivals.Mean(), static_cast<double>(kMillisecond),
              0.2 * static_cast<double>(kMillisecond));
}

// The documented 1-tick floor: at absurd rates every drawn gap rounds to 0
// and clamps to 1 ns, so arrivals advance one tick at a time instead of
// stacking at one timestamp (and instead of the old max(1.0, gap) clamp
// biasing moderate-rate draws, the floor only binds at ~1e9 QPS).
TEST(OpenLoopClientTest, GapsAreFlooredAtOneTick) {
  Simulator sim;
  Rng rng(10);
  auto trace = GenerateTrace(TraceSpec{}, 8, &rng);
  std::vector<SimTime> arrivals;
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/1e12, Rng(11),
                        [&](const QueryWork&, SimTime now) { arrivals.push_back(now); });
  client.Run(0, kMicrosecond);
  sim.RunUntilEmpty();
  // One arrival per nanosecond tick, none before t=1.
  ASSERT_EQ(arrivals.size(), static_cast<size_t>(kMicrosecond) - 1);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], static_cast<SimTime>(i + 1));
  }
}

// At moderate rates the floor must not bias the realized rate (the old
// max(1.0, gap) clamp added a full nanosecond to a measurable fraction of
// draws at high-but-realistic rates).
TEST(OpenLoopClientTest, RealizedRateIsUnbiasedAtHighRate) {
  Simulator sim;
  Rng rng(12);
  auto trace = GenerateTrace(TraceSpec{}, 64, &rng);
  uint64_t submitted = 0;
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/1e6, Rng(13),
                        [&](const QueryWork&, SimTime) { ++submitted; });
  client.Run(0, kSecond);
  sim.RunUntilEmpty();
  // 1e6 expected arrivals, Poisson sd 1e3: 4 sigma.
  EXPECT_NEAR(static_cast<double>(submitted), 1e6, 4e3);
}

TEST(ClosedLoopClientTest, KeepsAtMostOutstandingInFlight) {
  Simulator sim;
  Rng rng(14);
  auto trace = GenerateTrace(TraceSpec{}, 16, &rng);
  ClosedLoopClient* client_ptr = nullptr;
  std::vector<SimTime> completions;
  int in_flight = 0;
  int max_in_flight = 0;
  ClosedLoopClient client(&sim, std::move(trace), /*outstanding=*/4,
                          /*think_time=*/FromMillis(1), Rng(15),
                          [&](const QueryWork&, SimTime now) {
                            ++in_flight;
                            max_in_flight = std::max(max_in_flight, in_flight);
                            // Serve each query 500 us later.
                            sim.Schedule(now + 500 * kMicrosecond, [&] {
                              --in_flight;
                              completions.push_back(sim.Now());
                              client_ptr->OnComplete();
                            });
                          });
  client_ptr = &client;
  client.Run(0, kSecond);
  sim.RunUntilEmpty();
  EXPECT_LE(max_in_flight, 4);
  EXPECT_GT(client.submitted(), 100u);
  // Per-user cycle = think (1 ms mean) + service (0.5 ms): ~2,667 completions
  // from 4 users in one second; generous bounds to stay seed-robust.
  EXPECT_GT(completions.size(), 1500u);
  EXPECT_LT(completions.size(), 4000u);
  EXPECT_EQ(client.in_flight(), 0);
}

TEST(ClosedLoopClientTest, StopsSubmittingAfterWindowEnds) {
  Simulator sim;
  Rng rng(16);
  auto trace = GenerateTrace(TraceSpec{}, 16, &rng);
  ClosedLoopClient* client_ptr = nullptr;
  ClosedLoopClient client(&sim, std::move(trace), /*outstanding=*/2,
                          /*think_time=*/FromMillis(1), Rng(17),
                          [&](const QueryWork&, SimTime now) {
                            sim.Schedule(now + 100 * kMicrosecond,
                                         [&] { client_ptr->OnComplete(); });
                          });
  client_ptr = &client;
  client.Run(0, 100 * kMillisecond);
  sim.RunUntil(100 * kMillisecond);
  const uint64_t at_window_end = client.submitted();
  sim.RunUntilEmpty();
  // In-flight queries may still complete, but no new submissions start.
  EXPECT_EQ(client.submitted(), at_window_end);
}

TEST(CpuBullyTest, ProgressTracksCpuTime) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 4;
  spec.context_switch = 0;
  SimMachine machine(&sim, spec, "m0");
  CpuBully bully(&machine, 8, "bully");
  EXPECT_EQ(bully.threads(), 8);
  sim.RunUntil(kSecond);
  EXPECT_NEAR(bully.Progress(), 4.0, 0.01);  // 4 cores saturated for 1 s
  bully.Stop();
  sim.RunUntil(2 * kSecond);
  EXPECT_NEAR(bully.Progress(), 4.0, 0.01);  // no progress after stop
}

struct DiskRig {
  Simulator sim;
  MachineSpec machine_spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<StripedVolume> volume;
  std::unique_ptr<IoScheduler> scheduler;
  JobId job;

  DiskRig() {
    machine_spec.num_cores = 4;
    machine_spec.context_switch = 0;
    machine = std::make_unique<SimMachine>(&sim, machine_spec, "m0");
    volume = std::make_unique<StripedVolume>(&sim, DiskSpec::Hdd(), 4, "hdd");
    scheduler = std::make_unique<IoScheduler>(&sim, volume.get(), 4);
    job = machine->CreateJob("secondary");
  }
};

TEST(DiskBullyTest, KeepsQueueDepthAndMixesOps) {
  DiskRig rig;
  DiskBully::Options options;
  options.queue_depth = 4;
  DiskBully bully(&rig.sim, rig.machine.get(), rig.scheduler.get(), rig.job, options, Rng(9));
  bully.Start();
  rig.sim.RunUntil(5 * kSecond);
  // Sequential 8 KB ops on 4 HDDs at ~0.55 ms each -> thousands of IOPS.
  EXPECT_GT(bully.completed_ios(), 5000);
  bully.Stop();
  const int64_t after_stop = bully.completed_ios();
  rig.sim.RunUntil(6 * kSecond);
  EXPECT_LE(bully.completed_ios() - after_stop, options.queue_depth);
}

TEST(HdfsClientTest, ApproachesConfiguredRates) {
  DiskRig rig;
  HdfsClient::Options options;
  options.client_bytes_per_sec = 10e6;
  options.replication_bytes_per_sec = 5e6;
  options.cpu_fraction = 0.05;
  HdfsClient hdfs(&rig.sim, rig.machine.get(), rig.scheduler.get(), rig.job, options, Rng(11));
  hdfs.Start();
  rig.sim.RunUntil(5 * kSecond);
  // Self-paced at ~15 MB/s combined.
  EXPECT_NEAR(static_cast<double>(hdfs.bytes_transferred()), 75e6, 15e6);
  // The CPU footprint is near the configured fraction of the machine.
  const double cpu_fraction =
      ToSeconds(rig.machine->metrics().busy_ns[static_cast<int>(TenantClass::kSecondary)]) /
      (5.0 * rig.machine_spec.num_cores);
  EXPECT_NEAR(cpu_fraction, 0.05, 0.02);
  hdfs.Stop();
}

TEST(MlTrainingJobTest, ComputesAndGrowsMemory) {
  DiskRig rig;
  MlTrainingJob::Options options;
  options.worker_threads = 8;
  options.memory_growth_per_sec = 1024 * 1024;
  MlTrainingJob job(&rig.sim, rig.machine.get(), rig.scheduler.get(), rig.job, options);
  job.Start();
  rig.sim.RunUntil(4 * kSecond);
  EXPECT_NEAR(job.Progress(), 16.0, 0.5);  // 4 cores * 4 s
  const int64_t memory = *rig.machine->JobMemory(rig.job);
  EXPECT_NEAR(static_cast<double>(memory), 4e6, 1.5e6);
  job.Stop();
  EXPECT_EQ(*rig.machine->JobLiveThreads(rig.job), 0);
}

}  // namespace
}  // namespace perfiso
