// Focused scheduling-delay distribution tests: the quantitative heart of the
// paper is where a woken thread's delay comes from. These pin the delay
// distribution for each isolation regime on a machine with a deterministic
// synthetic "primary" (periodic short bursts), independent of the IndexServe
// model's randomness.
#include <gtest/gtest.h>

#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/perfiso/controller.h"
#include "src/workload/bullies.h"

namespace perfiso {
namespace {

struct DelayRig {
  Simulator sim;
  MachineSpec spec;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimPlatform> platform;
  JobId secondary;
  std::unique_ptr<CpuBully> bully;
  std::unique_ptr<PerfIsoController> controller;
  std::unique_ptr<PeriodicTask> primary_driver;

  DelayRig() {
    spec.num_cores = 16;
    spec.quantum = FromMillis(20);
    spec.context_switch = 0;
    machine = std::make_unique<SimMachine>(&sim, spec, "m0");
    platform = std::make_unique<SimPlatform>(machine.get(), nullptr);
    secondary = machine->CreateJob("secondary");
    platform->AddSecondaryJob(secondary);
  }

  // A primary that wakes `burst` workers of 200 us every millisecond.
  void StartPrimary(int burst) {
    primary_driver = std::make_unique<PeriodicTask>(
        &sim, 0, FromMillis(1), [this, burst](SimTime) {
          for (int i = 0; i < burst; ++i) {
            machine->SpawnThread("p", TenantClass::kPrimary, JobId{}, FromMicros(200), nullptr);
          }
        });
  }

  void StartBully(int threads) {
    bully = std::make_unique<CpuBully>(machine.get(), secondary, threads);
  }

  void StartBlind(int buffer) {
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    config.blind.buffer_cores = buffer;
    controller = std::make_unique<PerfIsoController>(platform.get(), config);
    ASSERT_TRUE(controller->Initialize().ok());
    controller->AttachToSimulator(&sim);
  }

  const LatencyRecorder& Delays() { return machine->metrics().primary_sched_delay_us; }
};

TEST(SchedulerLatencyTest, AloneAllWakesDispatchInstantly) {
  DelayRig rig;
  rig.StartPrimary(4);
  rig.sim.RunUntil(kSecond);
  EXPECT_GT(rig.Delays().Count(), 3000u);
  EXPECT_EQ(rig.Delays().Max(), 0);  // 4 wakes, 16 idle cores: never queued
}

TEST(SchedulerLatencyTest, UnmanagedBullyDelaysWakesByQuantumScale) {
  DelayRig rig;
  rig.StartBully(16);
  rig.StartPrimary(4);
  rig.sim.RunUntil(kSecond);
  // Every wake lands behind a bully quantum (20 ms).
  EXPECT_GT(rig.Delays().P99(), 5000);                  // > 5 ms
  EXPECT_LE(rig.Delays().Max(), ToMicros(FromMillis(25)));  // bounded by ~quantum
}

TEST(SchedulerLatencyTest, BlindIsolationEliminatesQuantumWaits) {
  DelayRig rig;
  rig.StartBully(16);
  rig.StartPrimary(4);
  rig.StartBlind(6);  // buffer comfortably above the burst width
  rig.sim.RunUntil(kSecond);
  // After convergence, wakes land on buffer cores. Allow the first
  // milliseconds of convergence to contribute a tiny tail.
  EXPECT_LT(rig.Delays().P99(), 300);
  EXPECT_EQ(rig.Delays().P50(), 0);
}

TEST(SchedulerLatencyTest, BufferSmallerThanBurstLeaksDelays) {
  DelayRig rig;
  rig.StartBully(16);
  rig.StartPrimary(6);
  rig.StartBlind(2);  // buffer < burst width: the 3rd..6th wakes queue
  rig.sim.RunUntil(kSecond);
  // Excess wakes wait for a short primary burst (~200 us), not a bully
  // quantum — still far better than unmanaged, but measurably nonzero.
  EXPECT_GT(rig.Delays().P99(), 50);
  EXPECT_LT(rig.Delays().P99(), 5000);
}

TEST(SchedulerLatencyTest, StaticCoresAlsoProtectButStrandCapacity) {
  DelayRig rig;
  rig.StartBully(16);
  rig.StartPrimary(4);
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kStaticCores;
  config.static_secondary_cores = 4;
  rig.controller = std::make_unique<PerfIsoController>(rig.platform.get(), config);
  ASSERT_TRUE(rig.controller->Initialize().ok());
  // Sample between primary bursts (the periodic spawner fires on whole
  // milliseconds; its 200 us workers are done by +0.5 ms).
  rig.sim.RunUntil(kSecond + FromMicros(500));
  EXPECT_LT(rig.Delays().P99(), 300);
  // But 12 primary cores for ~0.8 cores of demand: ~12 cores stranded.
  EXPECT_GE(rig.machine->IdleCount(), 11);
}

TEST(SchedulerLatencyTest, CycleCapLeavesOnWindowDelays) {
  DelayRig rig;
  rig.StartBully(16);
  rig.StartPrimary(4);
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kCpuRateCap;
  config.cpu_rate_cap = 0.25;
  rig.controller = std::make_unique<PerfIsoController>(rig.platform.get(), config);
  ASSERT_TRUE(rig.controller->Initialize().ok());
  rig.sim.RunUntil(kSecond);
  // During the duty-cycle ON window all cores are held by the bully, so some
  // wakes still wait milliseconds: worse than blind isolation by orders of
  // magnitude.
  EXPECT_GT(rig.Delays().P99(), 1000);
}

}  // namespace
}  // namespace perfiso
