// Property-style sweeps over the scheduler: conservation of CPU time,
// work-conservation without affinity restrictions, and rate-cap accuracy.
#include <gtest/gtest.h>

#include <tuple>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace perfiso {
namespace {

MachineSpec SpecWith(int cores, SimDuration quantum) {
  MachineSpec spec;
  spec.num_cores = cores;
  spec.quantum = quantum;
  spec.context_switch = 0;
  spec.throttle_interval = FromMillis(20);
  return spec;
}

// --- Work conservation: N loop threads on C cores use min(N, C) * T of CPU ---

class WorkConservationTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WorkConservationTest, LoopThreadsSaturateExactly) {
  const int cores = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  Simulator sim;
  SimMachine machine(&sim, SpecWith(cores, FromMillis(10)), "m0");
  const JobId job = machine.CreateJob("hogs");
  for (int i = 0; i < threads; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  const SimDuration window = FromMillis(200);
  sim.RunUntil(window);
  const SimDuration expected = static_cast<SimDuration>(std::min(cores, threads)) * window;
  EXPECT_EQ(*machine.JobCpuTime(job), expected);
  EXPECT_EQ(machine.IdleCount(), std::max(0, cores - threads));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkConservationTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 48),
                                            ::testing::Values(1, 3, 8, 48, 64)));

// --- CPU-time conservation under random fan-out workloads ---------------------

class ConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservationTest, BusyTimeEqualsWorkSubmitted) {
  Simulator sim;
  SimMachine machine(&sim, SpecWith(8, FromMillis(5)), "m0");
  Rng rng(GetParam());
  SimDuration total_work = 0;
  int completions = 0;
  int spawns = 0;

  // Each completion may fan out into more threads, like a query pipeline.
  std::function<void(int)> spawn_tree = [&](int depth) {
    const SimDuration work = FromMicros(rng.Uniform(50, 3000));
    total_work += work;
    ++spawns;
    machine.SpawnThread("w", TenantClass::kPrimary, JobId{}, work, [&, depth](SimTime) {
      ++completions;
      if (depth < 3) {
        const int children = static_cast<int>(rng.UniformInt(0, 3));
        for (int c = 0; c < children; ++c) {
          spawn_tree(depth + 1);
        }
      }
    });
  };
  for (int i = 0; i < 40; ++i) {
    sim.Schedule(FromMicros(rng.Uniform(0, 5000)), [&] { spawn_tree(0); });
  }
  sim.RunUntilEmpty();

  EXPECT_EQ(completions, spawns);
  EXPECT_EQ(machine.metrics().busy_ns[static_cast<int>(TenantClass::kPrimary)], total_work);
  EXPECT_EQ(machine.IdleCount(), 8);
  // Capacity bound: busy cannot exceed cores * elapsed.
  EXPECT_LE(machine.metrics().TotalBusy(), 8 * sim.Now());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Rate caps: measured duty cycle matches the configured cap ----------------

class RateCapTest : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(RateCapTest, MeasuredFractionMatchesCap) {
  const double cap = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  constexpr int kCores = 8;
  Simulator sim;
  SimMachine machine(&sim, SpecWith(kCores, FromMillis(10)), "m0");
  const JobId job = machine.CreateJob("capped");
  ASSERT_TRUE(machine.SetJobCpuRateCap(job, cap).ok());
  for (int i = 0; i < threads; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  const SimDuration window = 2 * kSecond;
  sim.RunUntil(window);
  const double measured =
      ToSeconds(*machine.JobCpuTime(job)) / (ToSeconds(window) * kCores);
  // The job can use at most min(cap, threads/cores) of the machine; with
  // enough threads it should achieve the cap almost exactly.
  const double achievable = std::min(cap, static_cast<double>(threads) / kCores);
  EXPECT_LE(measured, achievable + 0.02);
  EXPECT_GE(measured, achievable - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RateCapTest,
                         ::testing::Combine(::testing::Values(0.05, 0.25, 0.45, 0.75),
                                            ::testing::Values(1, 4, 8, 16)));

// --- Affinity sweeps: a restricted job never exceeds its mask's capacity ------

class AffinityCapacityTest : public ::testing::TestWithParam<int> {};

TEST_P(AffinityCapacityTest, RestrictedJobBoundedByMask) {
  const int allowed = GetParam();
  constexpr int kCores = 16;
  Simulator sim;
  SimMachine machine(&sim, SpecWith(kCores, FromMillis(10)), "m0");
  const JobId job = machine.CreateJob("sec");
  ASSERT_TRUE(machine.SetJobAffinity(job, CpuSet::Range(kCores - allowed, kCores)).ok());
  for (int i = 0; i < kCores; ++i) {  // more threads than allowed cores
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  const SimDuration window = FromMillis(500);
  sim.RunUntil(window);
  EXPECT_EQ(*machine.JobCpuTime(job), static_cast<SimDuration>(allowed) * window);
  // Cores outside the mask stay idle.
  EXPECT_EQ(machine.IdleCount(), kCores - allowed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AffinityCapacityTest, ::testing::Values(1, 2, 4, 8, 15));

// --- Dynamic affinity changes never lose or double-count CPU time -------------

class AffinityChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AffinityChurnTest, AccountingSurvivesRandomMaskChanges) {
  constexpr int kCores = 8;
  Simulator sim;
  SimMachine machine(&sim, SpecWith(kCores, FromMillis(10)), "m0");
  Rng rng(GetParam());
  const JobId job = machine.CreateJob("sec");
  for (int i = 0; i < kCores; ++i) {
    machine.SpawnLoopThread("hog", TenantClass::kSecondary, job);
  }
  // Change the mask every millisecond to a random non-empty subset.
  SimDuration allowed_integral = 0;  // sum over time of allowed core count
  int current_allowed = kCores;
  SimTime last_change = 0;
  for (SimTime t = FromMillis(1); t <= FromMillis(200); t += FromMillis(1)) {
    sim.Schedule(t, [&, t] {
      allowed_integral += (t - last_change) * current_allowed;
      last_change = t;
      CpuSet mask;
      while (mask.Empty()) {
        mask = CpuSet::FromMask64(rng.Next() & ((1u << kCores) - 1));
      }
      current_allowed = mask.Count();
      ASSERT_TRUE(machine.SetJobAffinity(job, mask).ok());
    });
  }
  sim.RunUntil(FromMillis(200));
  allowed_integral += (FromMillis(200) - last_change) * current_allowed;
  // With one hog per core, the job consumes exactly the allowed capacity.
  EXPECT_EQ(*machine.JobCpuTime(job), allowed_integral);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffinityChurnTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace perfiso
