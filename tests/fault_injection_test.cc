// Fault subsystem tests: plan serialization, injector semantics (crash /
// restart / disk / straggler windows), crash-mid-query lifetime (the SimSan
// regression), zero-completion stat paths, and the disabled-plan inertness
// contract.
#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/cluster.h"
#include "src/cluster/index_node.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariant_checker.h"
#include "src/sim/simulator.h"
#include "src/util/config.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

QueryWork MakeQuery(uint64_t id, int fanout = 5) {
  QueryWork work;
  work.id = id;
  work.fanout = fanout;
  work.size_factor = 1.0;
  work.seed = 7000 + id;
  return work;
}

// --- FaultPlan serialization ----------------------------------------------------

TEST(FaultPlanTest, DisabledPlanSerializesNothing) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kNodeCrash, 0, 1.0, 2.0, 1.0});
  ConfigMap map;
  plan.AppendToConfigMap(&map);
  EXPECT_TRUE(map.entries().empty());
}

TEST(FaultPlanTest, RoundTripPreservesEvents) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 1234;
  plan.events.push_back(FaultEvent{FaultKind::kNodeCrash, 3, 1.5, 2.25, 1.0});
  plan.events.push_back(FaultEvent{FaultKind::kDiskDegrade, 0, 0.5, 1.0, 8.5});
  plan.events.push_back(FaultEvent{FaultKind::kLinkDegrade, 1, 2.0, 0.75, 0.25});
  plan.events.push_back(FaultEvent{FaultKind::kCpuStraggler, 2, 3.0, 1.0, 16.0});
  ConfigMap map;
  plan.AppendToConfigMap(&map);

  auto parsed = FaultPlan::FromConfigMap(map);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->enabled);
  EXPECT_EQ(parsed->seed, 1234u);
  ASSERT_EQ(parsed->events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(parsed->events[i].node, plan.events[i].node) << i;
    EXPECT_DOUBLE_EQ(parsed->events[i].at_sec, plan.events[i].at_sec) << i;
    EXPECT_DOUBLE_EQ(parsed->events[i].duration_sec, plan.events[i].duration_sec) << i;
    EXPECT_DOUBLE_EQ(parsed->events[i].severity, plan.events[i].severity) << i;
  }
}

TEST(FaultPlanTest, RejectsMalformedEvents) {
  const auto parse = [](const std::string& events) {
    ConfigMap map;
    map.SetBool("fault.enabled", true);
    map.SetString("fault.events", events);
    return FaultPlan::FromConfigMap(map).status();
  };
  EXPECT_FALSE(parse("meteor:0:1:1:1").ok());       // unknown kind
  EXPECT_FALSE(parse("crash:0:1:1").ok());          // missing field
  EXPECT_FALSE(parse("crash:0:1:1:1,").ok());       // trailing comma
  EXPECT_FALSE(parse("crash:0:x:1:1").ok());        // malformed number
  EXPECT_FALSE(parse("crash:0:-1:1:1").ok());       // negative time
  EXPECT_FALSE(parse("crash:0:1:0:1").ok());        // zero duration
  EXPECT_FALSE(parse("disk:0:1:1:0.5").ok());       // disk multiplier < 1
  EXPECT_FALSE(parse("link:0:1:1:1.5").ok());       // link fraction > 1
  EXPECT_FALSE(parse("").ok());                     // present but empty
}

TEST(FaultPlanTest, ValidateBoundsNodesToTopology) {
  FaultPlan plan;
  plan.enabled = true;
  plan.events.push_back(FaultEvent{FaultKind::kNodeCrash, 4, 1.0, 1.0, 1.0});
  EXPECT_TRUE(plan.Validate(5).ok());
  EXPECT_FALSE(plan.Validate(4).ok());
  EXPECT_TRUE(plan.Validate().ok());  // shape-only: node bound unknown
}

TEST(FaultPlanTest, SampleIsDeterministicAndValid) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const FaultPlan a = FaultPlan::Sample(seed, /*num_nodes=*/4, /*horizon_sec=*/8);
    const FaultPlan b = FaultPlan::Sample(seed, /*num_nodes=*/4, /*horizon_sec=*/8);
    ASSERT_TRUE(a.Validate(4).ok()) << "seed " << seed;
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].kind, b.events[i].kind);
      EXPECT_DOUBLE_EQ(a.events[i].at_sec, b.events[i].at_sec);
    }
  }
}

// --- Crash / restart semantics --------------------------------------------------

TEST(FaultInjectionTest, CrashFailsInflightAndRejectsUntilRestart) {
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  int dropped = 0;
  int completed = 0;
  const auto done = [&](const QueryResult& r) { (r.dropped ? dropped : completed)++; };
  for (uint64_t i = 0; i < 10; ++i) {
    rig.server().SubmitQuery(MakeQuery(i), done);
  }
  sim.RunUntil(FromMillis(1));  // mid-flight: fan-outs are open
  ASSERT_GT(rig.server().inflight(), 0);
  rig.Crash();
  EXPECT_EQ(rig.server().inflight(), 0);  // every live query failed exactly once

  // Submissions while down are rejected without touching the machine.
  rig.server().SubmitQuery(MakeQuery(100), done);
  EXPECT_GE(rig.server().stats().dropped_crash, 11);

  rig.Restart();
  rig.server().SubmitQuery(MakeQuery(101), done);
  sim.RunUntilEmpty();
  EXPECT_EQ(completed, 1);  // the post-restart query
  EXPECT_EQ(dropped, 11);
  EXPECT_EQ(rig.server().stats().completions_while_crashed, 0);

  InvariantReport report;
  InvariantChecker::CheckRig(rig, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(FaultInjectionTest, CrashMidQueryLeavesNoLiveStates) {
  // Lifetime / SimSan regression: crash with open fan-outs, hedge timers, and
  // in-flight disk completions, then drain. Every QueryState must be
  // destroyed (no stored callback may keep one alive), and no cancelled
  // timer/completion may fire into freed state — under -DPERFISO_SIMSAN=ON
  // (the CI simsan lane runs this test) a stale handle aborts the process.
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.hedge_delay = FromMillis(1);  // hedges armed early
  IndexNodeRig rig(&sim, options, "m0");
  for (uint64_t i = 0; i < 32; ++i) {
    rig.server().SubmitQuery(MakeQuery(i, /*fanout=*/8));
  }
  sim.RunUntil(FromMillis(2));
  ASSERT_GT(rig.server().inflight(), 0);
  rig.Crash();
  sim.RunUntil(FromMillis(10));
  rig.Restart();
  sim.RunUntilEmpty();
  EXPECT_EQ(rig.server().live_query_states(), 0);
  sim.CheckEngineInvariants();  // aborts on a corrupt event queue
}

TEST(FaultInjectionTest, AllQueriesFailingKeepsStatPathsSafe) {
  // Zero-completion regression: a window where *nothing* completes must leave
  // the percentile/mean/digest surfaces readable (0, not UB or a crash).
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  rig.Crash();  // down before anything arrives
  for (uint64_t i = 0; i < 16; ++i) {
    rig.server().SubmitQuery(MakeQuery(i));
  }
  sim.RunUntilEmpty();
  const auto& stats = rig.server().stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.dropped_crash, 16);
  EXPECT_EQ(stats.latency_ms.Count(), 0u);
  EXPECT_EQ(stats.latency_ms.P99(), 0);
  EXPECT_EQ(stats.latency_ms.Mean(), 0);
  EXPECT_EQ(stats.latency_ms.Min(), 0);
  EXPECT_EQ(stats.coverage.Count(), 0u);
  EXPECT_EQ(stats.DropFraction(), 1.0);
  InvariantReport report;
  InvariantChecker::CheckRig(rig, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- Injector scheduling ---------------------------------------------------------

// Drives a single-box rig through `plan` with a steady open-loop load.
struct InjectedRun {
  uint64_t digest = 0;
  IndexServer::Stats stats;
  FaultInjector::Stats fault_stats;
};

InjectedRun RunWithPlan(const FaultPlan& plan, SimDuration horizon = 4 * kSecond) {
  Simulator sim;
  IndexNodeOptions options;
  auto rig = std::make_unique<IndexNodeRig>(&sim, options, "m0");
  FaultInjector injector(&sim, plan, rig.get());
  injector.Arm();
  Rng trace_rng(2017);
  auto trace = GenerateTrace(TraceSpec{}, 4000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/1000, Rng(7),
                        [&rig](const QueryWork& work, SimTime) {
                          rig->server().SubmitQuery(work);
                        });
  client.Run(0, horizon);
  sim.RunUntilEmpty();
  InjectedRun run;
  run.digest = rig->server().stats().latency_ms.Digest();
  run.stats = rig->server().stats();
  run.fault_stats = injector.stats();
  InvariantReport report;
  InvariantChecker::CheckRig(*rig, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  return run;
}

TEST(FaultInjectionTest, DisabledPlanIsBitIdenticalToNoInjector) {
  // The hard contract: constructing + arming an injector with a disabled plan
  // must not perturb the run at all.
  const InjectedRun armed = RunWithPlan(FaultPlan{});
  EXPECT_EQ(armed.fault_stats.injected, 0);

  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  Rng trace_rng(2017);
  auto trace = GenerateTrace(TraceSpec{}, 4000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/1000, Rng(7),
                        [&rig](const QueryWork& work, SimTime) {
                          rig.server().SubmitQuery(work);
                        });
  client.Run(0, 4 * kSecond);
  sim.RunUntilEmpty();
  EXPECT_EQ(armed.digest, rig.server().stats().latency_ms.Digest());
}

TEST(FaultInjectionTest, CrashWindowDropsAndRecovers) {
  FaultPlan plan;
  plan.enabled = true;
  plan.events.push_back(FaultEvent{FaultKind::kNodeCrash, 0, 1.0, 1.0, 1.0});
  const InjectedRun run = RunWithPlan(plan);
  EXPECT_EQ(run.fault_stats.injected, 1);
  EXPECT_EQ(run.fault_stats.recovered, 1);
  EXPECT_GT(run.stats.dropped_crash, 0);   // queries died in / arrived into the window
  EXPECT_GT(run.stats.completed, 0);       // traffic resumed after restart
  EXPECT_EQ(run.stats.completions_while_crashed, 0);
}

TEST(FaultInjectionTest, DiskDegradeWindowRaisesTailThenRecovers) {
  FaultPlan plan;
  plan.enabled = true;
  plan.events.push_back(FaultEvent{FaultKind::kDiskDegrade, 0, 1.0, 1.0, 40.0});
  const InjectedRun degraded = RunWithPlan(plan);
  const InjectedRun healthy = RunWithPlan(FaultPlan{});
  EXPECT_EQ(degraded.fault_stats.injected, 1);
  EXPECT_EQ(degraded.fault_stats.recovered, 1);
  EXPECT_GT(degraded.stats.latency_ms.P99(), healthy.stats.latency_ms.P99());
  // Recovery restores the multiplier: the run drains with normal service.
  EXPECT_GT(degraded.stats.completed, 0);
}

TEST(FaultInjectionTest, StragglerThreadsAreKilledAtRecovery) {
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  FaultPlan plan;
  plan.enabled = true;
  plan.events.push_back(FaultEvent{FaultKind::kCpuStraggler, 0, 0.001, 0.01, 8.0});
  FaultInjector injector(&sim, plan, &rig);
  injector.Arm();
  sim.RunUntil(FromMillis(5));  // inside the window
  EXPECT_EQ(injector.stats().injected, 1);
  sim.RunUntil(FromMillis(20));  // past recovery
  EXPECT_EQ(injector.stats().recovered, 1);
  EXPECT_TRUE(rig.machine().CheckInvariants().ok());
}

TEST(FaultInjectionTest, LinkFaultOnSingleBoxIsSkipped) {
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  FaultPlan plan;
  plan.enabled = true;
  plan.events.push_back(FaultEvent{FaultKind::kLinkDegrade, 0, 0.001, 0.01, 0.5});
  FaultInjector injector(&sim, plan, &rig);
  injector.Arm();
  sim.RunUntil(FromMillis(20));
  EXPECT_EQ(injector.stats().injected, 0);
  EXPECT_EQ(injector.stats().skipped, 1);
}

TEST(FaultInjectionTest, DestructionCancelsPendingFaults) {
  // Tearing the injector down mid-plan must remove its scheduled events; the
  // rig then runs to the horizon unfaulted. Under SimSan a leaked handle
  // firing into a freed injector aborts, so this doubles as a lifetime test.
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  {
    FaultPlan plan;
    plan.enabled = true;
    plan.events.push_back(FaultEvent{FaultKind::kNodeCrash, 0, 1.0, 1.0, 1.0});
    FaultInjector injector(&sim, plan, &rig);
    injector.Arm();
  }  // destroyed before the crash fires
  rig.server().SubmitQuery(MakeQuery(1));
  sim.RunUntil(3 * kSecond);
  EXPECT_FALSE(rig.crashed());
  EXPECT_EQ(rig.server().stats().completed, 1);
}

// --- Cluster routing view ---------------------------------------------------------

TEST(FaultInjectionTest, ClusterCrashKeepsRoutingViewInSync) {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{3, 2, 1};
  Cluster cluster(&sim, options);
  FaultPlan plan;
  plan.enabled = true;
  plan.events.push_back(FaultEvent{FaultKind::kNodeCrash, 1, 0.1, 0.2, 1.0});
  FaultInjector injector(&sim, plan, &cluster);
  injector.Arm();

  Rng trace_rng(2017);
  auto trace = GenerateTrace(TraceSpec{}, 2000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/2000, Rng(7),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster.SubmitQuery(work);
                        });
  client.Run(0, kSecond / 2);

  sim.RunUntil(FromMillis(200));  // inside the crash window
  EXPECT_TRUE(cluster.NodeCrashed(1));
  EXPECT_TRUE(cluster.index_node(1).crashed());
  InvariantReport mid;
  InvariantChecker::CheckCluster(cluster, /*expect_drained=*/false, &mid);
  EXPECT_TRUE(mid.ok()) << mid.ToString();

  sim.RunUntilEmpty();
  EXPECT_FALSE(cluster.NodeCrashed(1));
  EXPECT_GT(cluster.queries_degraded(), 0);  // 1-of-3 leaves missing: degraded coverage
  EXPECT_GT(cluster.queries_completed(), 0);
  InvariantReport report;
  InvariantChecker::CheckCluster(cluster, /*expect_drained=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace perfiso
