// Edge-case battery for the timing wheel's horizon boundary (the two-band
// engine's wheel/overflow split at 2^24 ns) and for NextEventTime(), the
// skip-ahead probe the parallel window scheduler relies on.
//
// The wheel covers exactly one level-2 page: an event is wheel-resident iff
// its timestamp shares the clock's bits above kWheelShift[3] = 24. These
// tests pin the boundary cases the parallel engine leans on: an event exactly
// 2^24 ns ahead must start in the overflow heap and be pulled into the wheel
// (and cascade down to level 0) when the clock crosses the page; events a
// single nanosecond to either side of the horizon must land on the right
// side; cancel/reschedule through the pull and cascade must stay valid.
#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/util/rng.h"

namespace perfiso {
namespace {

constexpr SimTime kHorizon = SimTime{1} << 24;  // one level-2 page, ~16.8 ms

TEST(WheelHorizonTest, EventExactlyOneHorizonAheadStartsInOverflow) {
  Simulator sim;
  // Put the clock at an arbitrary mid-page position first.
  sim.Schedule(12345, [] {});
  sim.RunUntilEmpty();
  ASSERT_EQ(sim.Now(), 12345);

  // t = now + 2^24 always lands in the next level-2 page, whatever the
  // clock's page offset — it must be a far-band resident, not wheel-resident.
  bool fired = false;
  const SimTime t = sim.Now() + kHorizon;
  sim.Schedule(t, [&] { fired = true; });
  EXPECT_EQ(sim.OverflowEvents(), 1u);
  sim.CheckEngineInvariants();
  sim.RunUntilEmpty();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), t);
  EXPECT_EQ(sim.OverflowEvents(), 0u);
  sim.CheckEngineInvariants();
}

TEST(WheelHorizonTest, PageBoundaryMinusOneStaysInWheel) {
  Simulator sim;
  // From t=0, the last timestamp of the current page is 2^24 - 1: same page,
  // so it belongs in the wheel even though it is nearly a full horizon away.
  bool fired = false;
  sim.Schedule(kHorizon - 1, [&] { fired = true; });
  EXPECT_EQ(sim.OverflowEvents(), 0u);
  sim.CheckEngineInvariants();
  // The first timestamp of the next page is one tick later — far band.
  sim.Schedule(kHorizon, [] {});
  EXPECT_EQ(sim.OverflowEvents(), 1u);
  sim.CheckEngineInvariants();
  sim.RunUntilEmpty();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), kHorizon);
}

TEST(WheelHorizonTest, EventAtExactPageBaseFiresOnTime) {
  Simulator sim;
  // A timestamp with all 24 page-offset bits zero is the very first slot of
  // its page: the overflow pull and the top-down cascades must place it in
  // level 0 slot 0 and fire it at exactly its timestamp.
  std::vector<SimTime> fire_times;
  sim.Schedule(2 * kHorizon, [&] { fire_times.push_back(sim.Now()); });
  sim.Schedule(2 * kHorizon + 1, [&] { fire_times.push_back(sim.Now()); });
  EXPECT_EQ(sim.OverflowEvents(), 2u);
  sim.RunUntilEmpty();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 2 * kHorizon);
  EXPECT_EQ(fire_times[1], 2 * kHorizon + 1);
  sim.CheckEngineInvariants();
}

TEST(WheelHorizonTest, OverflowSurvivesCascadeAcrossLevel2Page) {
  Simulator sim;
  // Three events in the next page at offsets that exercise all three wheel
  // levels after the pull: level-2 (offset with bits >= 18), level-1 (bits
  // >= 12), level-0 (bits < 12). Advance the clock across the page boundary
  // with a small step first (an unrelated near event) so SetClockTo performs
  // the pull + cascade rather than DrainNextSlot jumping page-aligned.
  std::vector<int> order;
  const SimTime page = kHorizon;  // next page base as seen from t=0
  sim.Schedule(page + (SimTime{3} << 18) + 7, [&] { order.push_back(2); });
  sim.Schedule(page + (SimTime{5} << 12) + 3, [&] { order.push_back(1); });
  sim.Schedule(page + 42, [&] { order.push_back(0); });
  EXPECT_EQ(sim.OverflowEvents(), 3u);
  // A near event inside the current page keeps the wheel non-empty so the
  // clock advances into the new page via the overflow-pull path.
  sim.Schedule(123, [] {});
  sim.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.Now(), page + (SimTime{3} << 18) + 7);
  sim.CheckEngineInvariants();
}

TEST(WheelHorizonTest, CancelAndRescheduleAcrossThePull) {
  Simulator sim;
  // Handles minted while events sit in the far band must stay valid after
  // the records migrate into the wheel (the pull rewrites band bookkeeping
  // but not generations).
  bool cancelled_fired = false;
  bool moved_fired = false;
  SimTime moved_fire_time = 0;
  EventHandle to_cancel = sim.Schedule(kHorizon + 100, [&] { cancelled_fired = true; });
  EventHandle to_move = sim.Schedule(kHorizon + 200, [&] {
    moved_fired = true;
    moved_fire_time = sim.Now();
  });
  EXPECT_EQ(sim.OverflowEvents(), 2u);

  // Walk the clock into the new page: the pull moves both records into the
  // wheel; then cancel one and reschedule the other while wheel-resident.
  sim.Schedule(kHorizon + 10, [&] {
    EXPECT_TRUE(sim.Cancel(to_cancel));
    EXPECT_TRUE(sim.Reschedule(to_move, sim.Now() + kHorizon));  // back out past the horizon
  });
  sim.RunUntilEmpty();
  EXPECT_FALSE(cancelled_fired);
  EXPECT_TRUE(moved_fired);
  EXPECT_EQ(moved_fire_time, kHorizon + 10 + kHorizon);
  sim.CheckEngineInvariants();
}

TEST(WheelHorizonTest, RepeatedHorizonHopsAgainstReferenceModel) {
  // Seeded stress across ~8 pages: schedule deltas clustered around the
  // horizon (2^24 +/- a few slots) plus same-timestamp pairs, and check the
  // engine's fire order against the (time, seq) reference ordering.
  Simulator sim;
  Rng rng(2024);
  struct Ref {
    SimTime time;
    uint64_t seq;
  };
  std::vector<Ref> expected;
  std::vector<Ref> fired;
  uint64_t seq = 0;
  SimTime base = 0;
  for (int round = 0; round < 64; ++round) {
    const uint64_t r = rng.Next();
    SimTime delta;
    switch (r % 4) {
      case 0:
        delta = kHorizon;  // exactly one page ahead
        break;
      case 1:
        delta = kHorizon - 1 - static_cast<SimTime>(r % 3);  // just inside
        break;
      case 2:
        delta = kHorizon + 1 + static_cast<SimTime>(r % 3);  // just outside
        break;
      default:
        delta = static_cast<SimTime>(r % 5000);  // near event
        break;
    }
    const SimTime t = base + delta;
    const uint64_t s = seq++;
    expected.push_back(Ref{t, s});
    sim.Schedule(t, [&fired, &sim, t, s] {
      EXPECT_EQ(sim.Now(), t);
      fired.push_back(Ref{t, s});
    });
    if (r % 8 == 0) {
      base = t;  // occasionally anchor later deltas on a scheduled time
    }
  }
  sim.RunUntilEmpty();
  std::sort(expected.begin(), expected.end(), [](const Ref& a, const Ref& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  ASSERT_EQ(fired.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fired[i].time, expected[i].time) << "position " << i;
    EXPECT_EQ(fired[i].seq, expected[i].seq) << "position " << i;
  }
  sim.CheckEngineInvariants();
}

TEST(WheelHorizonTest, RunUntilParksExactlyAtPageBoundary) {
  Simulator sim;
  // RunUntil to a page-aligned instant with a pending event exactly there:
  // the event is <= until, so it must fire, and the clock must equal the
  // boundary afterwards.
  bool fired = false;
  sim.Schedule(kHorizon, [&] { fired = true; });
  sim.RunUntil(kHorizon);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), kHorizon);
  // And one tick short: the event must NOT fire, and scheduling after the
  // park must still work on both sides of the (new, shifted) horizon.
  Simulator sim2;
  bool early_fired = false;
  sim2.Schedule(kHorizon, [&] { early_fired = true; });
  sim2.RunUntil(kHorizon - 1);
  EXPECT_FALSE(early_fired);
  EXPECT_EQ(sim2.Now(), kHorizon - 1);
  sim2.CheckEngineInvariants();
  sim2.RunUntilEmpty();
  EXPECT_TRUE(early_fired);
}

// --- NextEventTime(): the parallel scheduler's skip-ahead probe -------------

TEST(NextEventTimeTest, EmptyAndSimpleCases) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoPendingEvent);
  sim.Schedule(500, [] {});
  EXPECT_EQ(sim.NextEventTime(), 500);
  sim.RunUntilEmpty();
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoPendingEvent);
}

TEST(NextEventTimeTest, ReportsEarliestAcrossAllBands) {
  Simulator sim;
  sim.Schedule(3 * kHorizon + 17, [] {});  // far band
  EXPECT_EQ(sim.NextEventTime(), 3 * kHorizon + 17);
  sim.Schedule((SimTime{7} << 18) + 9, [] {});  // level 2
  EXPECT_EQ(sim.NextEventTime(), (SimTime{7} << 18) + 9);
  sim.Schedule((SimTime{2} << 12) + 5, [] {});  // level 1
  EXPECT_EQ(sim.NextEventTime(), (SimTime{2} << 12) + 5);
  sim.Schedule(99, [] {});  // level 0
  EXPECT_EQ(sim.NextEventTime(), 99);
}

TEST(NextEventTimeTest, FindsBucketMinimumNotBucketBase) {
  Simulator sim;
  // Two events in the same level-1 bucket: the probe must walk the bucket
  // and report the earlier timestamp, not just locate the bucket.
  sim.Schedule((SimTime{2} << 12) + 900, [] {});
  sim.Schedule((SimTime{2} << 12) + 30, [] {});
  EXPECT_EQ(sim.NextEventTime(), (SimTime{2} << 12) + 30);
}

TEST(NextEventTimeTest, TracksCancelAndAdvance) {
  Simulator sim;
  EventHandle first = sim.Schedule(1000, [] {});
  sim.Schedule(2000, [] {});
  EXPECT_EQ(sim.NextEventTime(), 1000);
  sim.Cancel(first);
  EXPECT_EQ(sim.NextEventTime(), 2000);
  sim.RunUntil(1500);
  EXPECT_EQ(sim.NextEventTime(), 2000);
  sim.RunUntilEmpty();
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoPendingEvent);
}

TEST(NextEventTimeTest, AgreesWithActualFireTimeUnderStress) {
  Simulator sim;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    sim.Schedule(static_cast<SimTime>(rng.Next() % (3 * static_cast<uint64_t>(kHorizon))),
                 [] {});
  }
  while (sim.PendingEvents() > 0) {
    const SimTime predicted = sim.NextEventTime();
    ASSERT_NE(predicted, Simulator::kNoPendingEvent);
    ASSERT_TRUE(sim.Step());
    EXPECT_EQ(sim.Now(), predicted);
  }
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoPendingEvent);
}

}  // namespace
}  // namespace perfiso
