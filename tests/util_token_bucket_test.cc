#include "src/util/token_bucket.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket tb(/*rate=*/100, /*burst=*/10);
  EXPECT_TRUE(tb.TryConsume(10, 0));
  EXPECT_FALSE(tb.TryConsume(1, 0));
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket tb(100, 10);
  EXPECT_TRUE(tb.TryConsume(10, 0));
  // 100 tokens/s -> 5 tokens after 50 ms.
  EXPECT_FALSE(tb.TryConsume(6, FromMillis(50)));
  EXPECT_TRUE(tb.TryConsume(5, FromMillis(50)));
}

TEST(TokenBucketTest, CapsAtBurst) {
  TokenBucket tb(100, 10);
  EXPECT_TRUE(tb.TryConsume(10, 0));
  // After 10 seconds the bucket holds only `burst` tokens.
  EXPECT_FALSE(tb.TryConsume(11, 10 * kSecond));
  EXPECT_TRUE(tb.TryConsume(10, 10 * kSecond));
}

TEST(TokenBucketTest, NextAvailableComputesWait) {
  TokenBucket tb(100, 10);
  EXPECT_TRUE(tb.TryConsume(10, 0));
  const SimTime when = tb.NextAvailable(5, 0);
  EXPECT_EQ(when, FromMillis(50));
  EXPECT_TRUE(tb.TryConsume(5, when));
}

TEST(TokenBucketTest, ForceConsumeGoesNegative) {
  TokenBucket tb(100, 10);
  tb.ForceConsume(20, 0);
  EXPECT_LT(tb.AvailableAt(0), 0);
  // Debt is paid back by refill before new consumption succeeds.
  EXPECT_FALSE(tb.TryConsume(1, FromMillis(90)));
  EXPECT_TRUE(tb.TryConsume(1, FromMillis(200)));
}

TEST(TokenBucketTest, RateChangeTakesEffect) {
  TokenBucket tb(100, 100);
  EXPECT_TRUE(tb.TryConsume(100, 0));
  tb.set_rate_per_sec(1000);
  EXPECT_TRUE(tb.TryConsume(99, FromMillis(100)));
}

}  // namespace
}  // namespace perfiso
